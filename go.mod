module bitcoinng

go 1.24
