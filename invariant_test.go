package bitcoinng

import (
	"testing"
	"time"
)

// TestClusterInvariantsClean: an interactive cluster with the full invariant
// catalogue armed — through a partition/heal cycle — stays violation-free:
// the periodic checks tick on the event loop, the final CheckInvariants
// covers the whole history, and the partition bookkeeping gates the
// consistency invariants correctly.
func TestClusterInvariantsClean(t *testing.T) {
	params := DefaultParams()
	params.RetargetWindow = 0
	params.TargetBlockInterval = 20 * time.Second
	params.MicroblockInterval = 2 * time.Second

	c, err := New(8,
		WithSeed(9),
		WithParams(params),
		WithFunding(100_000),
		WithInvariants(DefaultInvariants(InvariantOptions{})...),
		WithInvariantInterval(10*time.Second),
		WithScenario(NewScenario(
			At(time.Minute, Partition([]int{0, 1, 2, 3}, []int{4, 5, 6, 7})),
			At(2*time.Minute, Heal()),
		)),
	)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(5 * time.Minute)
	if errs := c.ScenarioErrors(); len(errs) != 0 {
		t.Fatalf("scenario errors: %v", errs)
	}
	if v := c.CheckInvariants(); len(v) != 0 {
		t.Fatalf("invariant violations on an honest cluster: %v", v)
	}
}

// TestExperimentInvariantsClean: the measured harness threads the same
// catalogue (WithInvariants -> experiment.Config.Invariants) and a clean
// honest run reports no violations — on the sharded engine, proving the
// checks run at engine-agnostic quiescent points.
func TestExperimentInvariantsClean(t *testing.T) {
	cfg := NewExperiment(8,
		WithSeed(3),
		WithTargetBlocks(6),
		WithParallelism(2),
		WithInvariants(DefaultInvariants(InvariantOptions{})...),
	)
	cfg.Params.TargetBlockInterval = 20 * time.Second
	cfg.Params.MicroblockInterval = 2 * time.Second
	res, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InvariantViolations) != 0 {
		t.Fatalf("invariant violations on an honest run: %v", res.InvariantViolations)
	}
	if res.Report.Blocks == 0 {
		t.Fatal("run produced no blocks")
	}
}
