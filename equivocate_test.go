package bitcoinng

import (
	"testing"
	"time"
)

// TestEquivocateLeaderLifecycle drives the §4.5 attack through the public
// API (the examples/doublespend scenario as a regression test): a leader
// forks its microblock chain, honest nodes gather evidence, the next leader
// places the poison, and the cheater's revenue is revoked network-wide.
func TestEquivocateLeaderLifecycle(t *testing.T) {
	params := DefaultParams()
	params.RetargetWindow = 0
	params.TargetBlockInterval = 30 * time.Second
	params.MicroblockInterval = 3 * time.Second

	c, err := New(8,
		WithSeed(7),
		WithParams(params),
		WithFunding(100_000),
		WithAutoMine(false),
	)
	if err != nil {
		t.Fatal(err)
	}
	attacker, honest := c.Node(0), c.Node(1)

	// Equivocating without leading is rejected.
	if _, _, err := c.EquivocateLeader(0, nil, nil); err == nil {
		t.Fatal("equivocation accepted from a non-leader")
	}

	attacker.MineBlock()
	c.Run(5 * time.Second)
	if !attacker.IsLeader() {
		t.Fatal("attacker does not lead")
	}
	w := attacker.Wallet()
	txA, err := w.Pay(attacker.Chain(), Address{0xaa}, 90_000, 100)
	if err != nil {
		t.Fatal(err)
	}
	txB, err := w.Pay(attacker.Chain(), Address{0xbb}, 90_000, 100)
	if err != nil {
		t.Fatal(err)
	}
	hashA, hashB, err := c.EquivocateLeader(0, txA, txB)
	if err != nil {
		t.Fatal(err)
	}
	if hashA == hashB {
		t.Fatal("equivocation produced identical microblocks")
	}
	c.Run(10 * time.Second)

	detected := 0
	for i := 1; i < c.Size(); i++ {
		if c.Node(i).FraudsDetected() > 0 {
			detected++
		}
	}
	if detected == 0 {
		t.Fatal("no honest node detected the fork")
	}

	before := honest.Balance(attacker.Address())
	honest.MineBlock()
	c.Run(30 * time.Second)
	after := honest.Balance(attacker.Address())
	if after >= before {
		t.Errorf("attacker balance %d -> %d; poison did not revoke revenue", before, after)
	}
	// Exactly one merchant got paid.
	a, b := honest.Balance(Address{0xaa}), honest.Balance(Address{0xbb})
	if (a == 0) == (b == 0) {
		t.Errorf("double spend outcome wrong: merchantA=%d merchantB=%d", a, b)
	}
	// The poisoner collected a reward above its key block subsidy.
	if got := honest.Balance(honest.Address()); got <= Amount(params.Subsidy) {
		t.Errorf("poisoner balance %d, want above subsidy %d", got, params.Subsidy)
	}
}
