package bitcoinng

import (
	"testing"
	"time"
)

// faultParams is the small-scale NG configuration the fault tests share:
// fast key blocks and microblocks so a few virtual minutes cover several
// epochs.
func faultParams() Params {
	params := DefaultParams()
	params.RetargetWindow = 0
	params.TargetBlockInterval = 20 * time.Second
	params.MicroblockInterval = 2 * time.Second
	return params
}

// TestClusterLeaderCrashRestartResync crashes the current epoch leader
// mid-epoch, lets the network move on without it, then restarts it and
// requires full reconvergence — the cluster-harness mirror of the
// experiment-side restart tests, including the durable-prefix and
// resync-convergence invariants running online.
func TestClusterLeaderCrashRestartResync(t *testing.T) {
	c, err := New(6, WithSeed(11), WithParams(faultParams()), WithFunding(1000),
		WithInvariants(DefaultInvariants(InvariantOptions{
			ForkBound: 6, ConvergenceDepth: 2, SettleGrace: 40 * time.Second,
		})...))
	if err != nil {
		t.Fatal(err)
	}
	c.Run(90 * time.Second)

	leader := c.Leader()
	if leader < 0 {
		t.Fatal("no epoch leader after 90s")
	}
	if err := c.Crash(leader); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(leader); err == nil {
		t.Error("double Crash did not error")
	}
	heightDown := c.Node(leader).Height()
	c.Run(90 * time.Second)

	// The network moved on without the crashed leader (a new epoch took
	// over), while the crashed node itself stayed frozen.
	if c.Node(leader).Height() != heightDown {
		t.Error("crashed node's chain advanced while down")
	}
	alive := (leader + 1) % c.Size()
	if c.Node(alive).Height() <= heightDown {
		t.Error("network did not progress past the crashed leader")
	}

	if err := c.Restart(leader); err != nil {
		t.Fatal(err)
	}
	c.Run(2 * time.Minute)

	if !c.Converged() {
		t.Error("cluster did not reconverge after leader restart")
	}
	if c.Node(leader).Height() <= heightDown {
		t.Error("restarted leader never caught up")
	}
	for _, v := range c.InvariantViolations() {
		t.Errorf("invariant violation: %s", v)
	}
}

// TestClusterStateDirProcessRestart exercises the true process-level restart
// path: a cluster with file-backed archives is run and abandoned, then a
// second cluster built over the same directory must come up with every
// node's durable prefix already in its chain before any new block flows.
func TestClusterStateDirProcessRestart(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(4, WithSeed(12), WithParams(faultParams()), WithFunding(1000),
		WithStateDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	c1.Run(2 * time.Minute)
	h1, tip1 := c1.Node(0).Height(), c1.Node(0).TipID()
	if h1 == 0 {
		t.Fatal("first cluster mined nothing")
	}

	c2, err := New(4, WithSeed(12), WithParams(faultParams()), WithFunding(1000),
		WithStateDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Before any virtual time passes, the rebuilt nodes sit exactly on
	// their persisted prefixes.
	if got := c2.Node(0).Height(); got != h1 {
		t.Fatalf("rebuilt node 0 at height %d, want persisted %d", got, h1)
	}
	if got := c2.Node(0).TipID(); got != tip1 {
		t.Fatalf("rebuilt node 0 tip %s, want persisted %s", got.Short(), tip1.Short())
	}
	// And the rebuilt cluster keeps mining on top of the recovered chain.
	c2.Run(time.Minute)
	if c2.Node(0).Height() <= h1 {
		t.Error("rebuilt cluster did not extend the recovered chain")
	}
}

// TestClusterLossyLinks: under a lossy-link window (drops, duplicates,
// reorders) the cluster keeps making progress and, once links heal, fully
// reconverges. Also pins the SetLoss validation contract.
func TestClusterLossyLinks(t *testing.T) {
	c, err := New(5, WithSeed(13), WithParams(faultParams()), WithFunding(1000))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetLoss(1.5, 0, 0); err == nil {
		t.Error("out-of-range drop probability accepted")
	}
	if err := c.SetLoss(0.2, 0.1, 0.15); err != nil {
		t.Fatal(err)
	}
	c.Run(3 * time.Minute)
	if c.Node(0).Height() == 0 {
		t.Error("no progress under lossy links")
	}
	if err := c.SetLoss(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	c.Run(2 * time.Minute)
	if !c.Converged() {
		t.Error("cluster did not reconverge after links healed")
	}
	stats := c.NetStats()
	if stats.MessagesDropped == 0 {
		t.Error("lossy window dropped nothing")
	}
}

// TestClusterRestartPreservesTieBreakInputs pins the arrival-time replay
// semantics: a cluster rebuilt over the same state directory must see every
// recovered block under its original local arrival time, because the
// first-seen tie-break consumes ReceivedAt — a replay that stamped "now"
// instead could flip fork choice on the recovered prefix relative to the
// first life.
func TestClusterRestartPreservesTieBreakInputs(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(4, WithSeed(21), WithParams(faultParams()), WithFunding(1000),
		WithStateDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	c1.Run(2 * time.Minute)
	st1 := c1.Node(0).Chain()
	main1 := st1.MainChain()
	if len(main1) < 2 {
		t.Fatal("first cluster mined nothing")
	}
	want := make(map[Hash]int64, len(main1))
	for _, n := range main1[1:] { // genesis never rides the archive
		want[n.Hash()] = n.ReceivedAt
	}
	if err := c1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	c2, err := New(4, WithSeed(21), WithParams(faultParams()), WithFunding(1000),
		WithStateDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st2 := c2.Node(0).Chain()
	if got, wantTip := st2.Tip().Hash(), st1.Tip().Hash(); got != wantTip {
		t.Fatalf("rebuilt tip %s, want %s", got.Short(), wantTip.Short())
	}
	for _, n := range st2.MainChain()[1:] {
		at, ok := want[n.Hash()]
		if !ok {
			t.Errorf("rebuilt chain holds %s, absent from the first life", n.Hash().Short())
			continue
		}
		if n.ReceivedAt != at {
			t.Errorf("block %s replayed with ReceivedAt %d, want original %d",
				n.Hash().Short(), n.ReceivedAt, at)
		}
	}
}
