package bitcoinng

import (
	"time"

	"bitcoinng/internal/experiment"
	"bitcoinng/internal/invariant"
	"bitcoinng/internal/protocol"
)

// Option configures node assembly for both harness entry points: New
// (interactive clusters) and NewExperiment (measured runs). One option
// vocabulary serves both; options that only apply to one harness (noted on
// each) are ignored by the other.
type Option func(*options)

type options struct {
	protocol      Protocol
	seed          int64
	params        Params
	paramsSet     bool
	autoMine      bool
	fund          Amount
	censors       []int
	strategies    map[int]string
	scenario      *Scenario
	workloadCount int
	txSize        int
	targetBlocks  int
	cacheOff      bool
	parallelism   int
	invariants    []invariant.Invariant
	invInterval   time.Duration
	stateDir      string
	storeURL      string
	compactDepth  uint64
}

func defaultOptions() options {
	return options{protocol: BitcoinNG, seed: 1, autoMine: true}
}

// WithProtocol selects the registered protocol to run; default BitcoinNG.
func WithProtocol(p Protocol) Option { return func(o *options) { o.protocol = p } }

// WithSeed makes the run deterministic from seed; default 1.
func WithSeed(seed int64) Option { return func(o *options) { o.seed = seed } }

// WithParams sets the consensus parameters; default DefaultParams with
// difficulty retargeting off (the scheduler sets rates).
func WithParams(p Params) Option {
	return func(o *options) { o.params, o.paramsSet = p, true }
}

// WithAutoMine toggles simulated miners with power following the paper's
// exponential rank distribution; default on for clusters. Pass false to
// script who mines when via MineBlock. Experiments always mine.
func WithAutoMine(on bool) Option { return func(o *options) { o.autoMine = on } }

// WithFunding pre-funds every cluster node's wallet from genesis
// (spendable immediately). Cluster-only: experiments pre-load a workload
// instead.
func WithFunding(perNode Amount) Option { return func(o *options) { o.fund = perNode } }

// WithScenario arms a scripted scenario at virtual time zero: partitions,
// churn, leader equivocation, latency spikes. Cluster.Play runs further
// scenarios relative to the current time.
func WithScenario(s *Scenario) Option { return func(o *options) { o.scenario = s } }

// WithCensors marks nodes that, while leading, publish empty microblocks —
// the §5.2 "Censorship Resistance" DoS behaviour whose influence ends with
// the next honest key block. Out-of-range indices are rejected at build
// time.
func WithCensors(nodes ...int) Option { return func(o *options) { o.censors = nodes } }

// WithStrategy assigns one node a registered mining strategy (the
// internal/strategy engine: "honest", "selfish", "greedymine", "feethief",
// or any custom registration) from build time onward; unassigned nodes run
// honest. Repeat the option per adversarial node. Unknown names and
// out-of-range indices are rejected at build time; the scenario step
// AdoptStrategy switches strategies mid-run instead.
func WithStrategy(node int, name string) Option {
	return func(o *options) {
		if o.strategies == nil {
			o.strategies = make(map[int]string)
		}
		o.strategies[node] = name
	}
}

// WithWorkload sizes the pre-loaded artificial transaction workload: count
// transactions of txSize bytes each (§7 "No Transaction Propagation").
// Experiment-only: clusters submit transactions from wallets.
func WithWorkload(count, txSize int) Option {
	return func(o *options) { o.workloadCount, o.txSize = count, txSize }
}

// WithTargetBlocks stops an experiment once this many payload blocks exist;
// the paper uses 50-100. Experiment-only.
func WithTargetBlocks(n int) Option { return func(o *options) { o.targetBlocks = n } }

// WithParallelism sets how many event-loop shards an experiment executes on
// (sim.ShardedLoop's conservative windowed engine): 0, the default, takes
// GOMAXPROCS; 1 recovers the classic single-threaded loop. Reports are
// byte-identical at any value for the same seed — parallelism changes wall
// time, never results. Experiment-only: interactive clusters stay
// single-threaded.
func WithParallelism(n int) Option { return func(o *options) { o.parallelism = n } }

// WithConnectCache toggles the shared content-addressed connect cache
// (default on): when on, nodes with identical validation rules replay each
// block's memoized UTXO delta instead of re-validating it. Results are
// byte-identical either way; pass false for determinism cross-checks or to
// measure the uncached baseline.
func WithConnectCache(on bool) Option { return func(o *options) { o.cacheOff = !on } }

// WithInvariants arms online invariant checking on both harnesses: the
// given catalogue (see Invariant, DefaultInvariants) is evaluated against
// every node's chain state at regular virtual-time ticks and at run end.
// Violations accumulate (Cluster.InvariantViolations /
// ExperimentResult.InvariantViolations) without stopping the run. Checks
// are read-only and deterministic, so experiment reports stay
// byte-identical with or without them, at any parallelism.
func WithInvariants(invs ...Invariant) Option {
	return func(o *options) { o.invariants = append(o.invariants, invs...) }
}

// WithStateDir gives every cluster node a file-backed durable block archive
// at dir/node-<i>.blocks (plus its arrival-time sidecar): Crash/Restart
// recover from disk, and a second cluster built over the same directory
// (same seed and size) resumes from the persisted prefixes like a process
// restart. Shorthand for WithStore("file:"+dir); WithStore wins when both
// are given. Clusters only; experiments take WithStore.
func WithStateDir(dir string) Option { return func(o *options) { o.stateDir = dir } }

// WithStore selects every node's storage backend — chain index and UTXO
// ledger — by locator: "" or "mem:" for the RAM-bound fast path (default),
// "file:<dir>" for file backends rooted at dir, "file:" for a throwaway
// temporary root. Experiment reports are byte-identical across backends for
// the same (config, seed); only Result.StoreStats differs. Both harnesses.
func WithStore(locator string) Option { return func(o *options) { o.storeURL = locator } }

// WithCompactDepth bounds resident chain state on long experiment runs: at
// every maintenance boundary each node evicts archived block bodies and undo
// records buried at least depth below its tip (bodies reload transparently
// from the chain index). Pick it well above any reorg the run can produce.
// Combined with a file-backed WithStore this is the beyond-RAM mode.
// Experiment-only.
func WithCompactDepth(depth uint64) Option { return func(o *options) { o.compactDepth = depth } }

// WithInvariantInterval spaces the online invariant checks; the default is
// the key-block interval.
func WithInvariantInterval(d time.Duration) Option {
	return func(o *options) { o.invInterval = d }
}

// New builds an interactive cluster of n nodes from functional options —
// the primary cluster entry point:
//
//	c, err := bitcoinng.New(10,
//		bitcoinng.WithParams(params),
//		bitcoinng.WithFunding(100_000),
//		bitcoinng.WithScenario(bitcoinng.NewScenario(
//			bitcoinng.At(time.Minute, bitcoinng.Partition([]int{0, 1, 2})),
//			bitcoinng.At(3*time.Minute, bitcoinng.Heal()),
//		)))
//
// Nothing runs until Run or Play advances virtual time.
func New(n int, opts ...Option) (*Cluster, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	return NewCluster(ClusterConfig{
		Protocol:            o.protocol,
		Nodes:               n,
		Seed:                o.seed,
		Params:              o.params,
		FundPerNode:         o.fund,
		AutoMine:            o.autoMine,
		Censors:             o.censors,
		Strategies:          o.strategies,
		Scenario:            o.scenario,
		DisableConnectCache: o.cacheOff,
		Invariants:          o.invariants,
		InvariantInterval:   o.invInterval,
		StateDir:            o.stateDir,
		StoreURL:            o.storeURL,
	})
}

// NewExperiment builds a measured-run configuration for n nodes from the
// same option vocabulary as New; pass the result to RunExperiment (after
// any direct field tweaks — the config struct stays fully exported).
func NewExperiment(n int, opts ...Option) ExperimentConfig {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	cfg := experiment.DefaultConfig(o.protocol, n, o.seed)
	if o.paramsSet {
		cfg.Params = o.params
	}
	if o.workloadCount > 0 {
		cfg.WorkloadCount = o.workloadCount
	}
	if o.txSize > 0 {
		cfg.TxSize = o.txSize
	}
	if o.targetBlocks > 0 {
		cfg.TargetBlocks = o.targetBlocks
	}
	cfg.Censors = o.censors
	cfg.Strategies = o.strategies
	cfg.Scenario = o.scenario
	cfg.DisableConnectCache = o.cacheOff
	cfg.Parallelism = o.parallelism
	cfg.Invariants = o.invariants
	cfg.InvariantInterval = o.invInterval
	cfg.StoreURL = o.storeURL
	cfg.CompactDepth = o.compactDepth
	return cfg
}

// The invariant engine, re-exported so callers compose catalogues without
// importing internal packages.
type (
	// Invariant is one online-checkable safety property; see
	// DefaultInvariants for the built-in catalogue.
	Invariant = invariant.Invariant
	// InvariantViolation is one recorded failure.
	InvariantViolation = invariant.Violation
	// InvariantOptions tunes the built-in catalogue.
	InvariantOptions = invariant.Options
)

// DefaultInvariants returns the built-in catalogue: UTXO value
// conservation, the §4.4 fee split, single leadership per epoch, the honest
// fork bound, intra-partition consistency, and post-heal convergence.
func DefaultInvariants(opts InvariantOptions) []Invariant {
	return invariant.Defaults(opts)
}

// The protocol registry, re-exported so new protocols plug into every
// harness (New, NewCluster, RunExperiment, cmd/) without touching them.
type (
	// ProtocolClient is a running consensus node: the surface every
	// harness drives. Optional capabilities (protocol.Leader,
	// protocol.Equivocator, ...) are discovered by interface assertion.
	ProtocolClient = protocol.Client
	// ProtocolSpec carries everything a client constructor needs.
	ProtocolSpec = protocol.Spec
	// ProtocolRegistration describes one protocol implementation: its
	// constructor and which block kind carries its transaction payload.
	ProtocolRegistration = protocol.Registration
)

// ErrUnknownProtocol is returned (wrapped) by every harness when asked for
// an unregistered protocol name.
var ErrUnknownProtocol = protocol.ErrUnknownProtocol

// RegisterProtocol adds a protocol implementation under name; it then runs
// under every harness. Registration errors on duplicates.
func RegisterProtocol(name Protocol, reg ProtocolRegistration) error {
	return protocol.Register(name, reg)
}

// RegisteredProtocols returns the registered protocol names, sorted.
func RegisteredProtocols() []string { return protocol.Names() }
