GO ?= go
BENCH_DATE := $(shell date +%Y%m%d)
BENCH_OUT ?= BENCH_$(BENCH_DATE).json

.PHONY: build vet test race bench bench-json bench-diff smoke determinism examples

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# bench-json records the Figure and substrate benchmarks as go test -json
# events in BENCH_<date>.json (override with BENCH_OUT=...) — committed when
# a PR claims a performance change, so the perf trajectory stays auditable.
bench-json:
	$(GO) test -json -bench=. -benchtime=1x -run='^$$' . > $(BENCH_OUT)
	@grep -c '"Action"' $(BENCH_OUT) >/dev/null && echo "wrote $(BENCH_OUT)"

# bench-diff renders per-benchmark ns/op deltas between two bench-json
# snapshots, flagging regressions >10%. Defaults to oldest vs newest
# committed snapshot; override with OLD=... NEW=...
OLD ?= $(firstword $(sort $(wildcard BENCH_*.json)))
NEW ?= $(lastword $(sort $(wildcard BENCH_*.json)))
bench-diff:
	$(GO) run ./cmd/ngbench -compare $(OLD) $(NEW)

# smoke is the CI scalability gate: a paper-scale (1000-node) Bitcoin-NG run
# kept to a handful of payload blocks so it finishes in well under the job's
# time budget.
smoke:
	$(GO) run ./cmd/ngbench -figure smoke -nodes 1000 -blocks 5

# examples RUNS every examples/ binary end to end (they all terminate on
# their own, livenet included), so the documented walkthroughs cannot rot
# while merely compiling. CI runs this as a smoke job.
examples:
	@set -e; for d in examples/*/; do \
		echo "== $$d"; \
		$(GO) run ./$$d > /dev/null; \
	done
	@echo "all examples ran clean"

# determinism cross-checks the parallel engine: the paper-scale smoke run's
# stdout must be byte-identical between the sequential loop and a 4-shard run.
determinism:
	$(GO) run ./cmd/ngbench -figure smoke -nodes 1000 -blocks 5 -parallelism 1 > /tmp/ng-smoke-seq.txt
	$(GO) run ./cmd/ngbench -figure smoke -nodes 1000 -blocks 5 -parallelism 4 > /tmp/ng-smoke-par.txt
	diff -u /tmp/ng-smoke-seq.txt /tmp/ng-smoke-par.txt
	@echo "determinism gate passed: sequential and sharded reports identical"
