GO ?= go

.PHONY: build vet test race bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .
