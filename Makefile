GO ?= go
BENCH_DATE := $(shell date +%Y%m%d)
BENCH_OUT ?= BENCH_$(BENCH_DATE).json

.PHONY: build vet lint test race race-soak race-faults bench bench-json bench-diff bench-trajectory smoke determinism throughput-smoke examples soak faults fuzz cover stores

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint is the static determinism/protocol-safety gate: go vet, then the
# project's own nglint suite — the per-function analyzers (walltime,
# globalrand, maporder, locksafe, wiresym) plus the interprocedural module
# analyzers (detflow, parity, errflow) — see DESIGN.md §9 — then staticcheck
# and govulncheck when installed (CI installs both; locally they are
# optional extras since the sandbox has no network). A finding, or an
# unjustified //nglint:allow, fails the build. NGLINT_FLAGS threads extra
# flags through (CI passes -cache to skip the type-check when sources are
# unchanged).
NGLINT_FLAGS ?=
lint: vet
	$(GO) run ./cmd/nglint $(NGLINT_FLAGS) ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "== staticcheck"; staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (CI runs it)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		echo "== govulncheck"; govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping (CI runs it)"; \
	fi

test: build
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# race-soak replays a reduced chaos soak under the race detector. The
# differential replay (parallelism 1 vs 4, connect cache on vs off) is
# where the sharded engine's worker goroutines actually interleave, so this
# is the race hunt for the recovery and streaming paths that `race` (short
# tests only) never reaches. Seed count is cut because -race costs ~10x.
RACE_SOAK_SEEDS ?= 8
race-soak:
	$(GO) run -race ./cmd/ngbench -figure chaos -seeds $(RACE_SOAK_SEEDS)

# race-faults re-runs the faults ladder's harness pins under -race: crash,
# restart, resync, and lossy-link paths all spin real goroutines (live
# transport, cluster runtime) that the plain faults gate only checks for
# correctness, not for data races.
race-faults:
	$(GO) test -race -count=1 -run 'TestSync|TestMalformedMessagesDropped|TestFetchGiveUpHandsOffToSync' ./internal/node
	$(GO) test -race -count=1 -run 'TestLiveMalformedFrameDropsPeer|TestCodecSyncRoundTrip' ./internal/p2p
	$(GO) test -race -count=1 -run 'TestRestartRecoversDurablePrefix|TestCrashedNodeIsInert' ./internal/experiment
	$(GO) test -race -count=1 -run 'TestMajorityCrashConverges|TestRegressionSeeds' ./internal/chaos
	$(GO) test -race -count=1 -run 'TestClusterLeaderCrashRestartResync|TestClusterStateDirProcessRestart|TestClusterLossyLinks' .

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# bench-json records the Figure and substrate benchmarks as go test -json
# events in BENCH_<date>.json (override with BENCH_OUT=...) — committed when
# a PR claims a performance change, so the perf trajectory stays auditable.
bench-json:
	$(GO) test -json -bench=. -benchtime=1x -run='^$$' . > $(BENCH_OUT)
	@grep -c '"Action"' $(BENCH_OUT) >/dev/null && echo "wrote $(BENCH_OUT)"

# bench-diff renders per-benchmark ns/op deltas between two bench-json
# snapshots, flagging regressions >10%. Defaults to oldest vs newest
# committed snapshot; override with OLD=... NEW=...
OLD ?= $(firstword $(sort $(wildcard BENCH_*.json)))
NEW ?= $(lastword $(sort $(wildcard BENCH_*.json)))
bench-diff:
	$(GO) run ./cmd/ngbench -compare $(OLD) $(NEW)

# bench-trajectory renders the whole committed perf history at once: every
# BENCH_*.json snapshot chronologically (the date-stamped names sort), one
# column per snapshot, with the cumulative first→last delta per benchmark.
bench-trajectory:
	$(GO) run ./cmd/ngbench -trajectory $(sort $(wildcard BENCH_*.json))

# smoke is the CI scalability gate: a paper-scale (1000-node) Bitcoin-NG run
# kept to a handful of payload blocks so it finishes in well under the job's
# time budget.
smoke:
	$(GO) run ./cmd/ngbench -figure smoke -nodes 1000 -blocks 5

# examples RUNS every examples/ binary end to end (they all terminate on
# their own, livenet included), so the documented walkthroughs cannot rot
# while merely compiling. CI runs this as a smoke job.
examples:
	@set -e; for d in examples/*/; do \
		echo "== $$d"; \
		$(GO) run ./$$d > /dev/null; \
	done
	@echo "all examples ran clean"

# determinism cross-checks the parallel engine: the paper-scale smoke run's
# stdout must be byte-identical between the sequential loop and a 4-shard run.
determinism:
	$(GO) run ./cmd/ngbench -figure smoke -nodes 1000 -blocks 5 -parallelism 1 > /tmp/ng-smoke-seq.txt
	$(GO) run ./cmd/ngbench -figure smoke -nodes 1000 -blocks 5 -parallelism 4 > /tmp/ng-smoke-par.txt
	diff -u /tmp/ng-smoke-seq.txt /tmp/ng-smoke-par.txt
	@echo "determinism gate passed: sequential and sharded reports identical"

# throughput-smoke is the sustained-load gate: a short offered-load sweep
# (streaming workload, open loop) whose stdout must be byte-identical
# between the sequential loop and a 4-shard run — the paced-pipeline
# determinism claim, checked end to end. Durations below ~2x the key-block
# interval mine nothing (the first NG key block lands around 100s), so the
# smoke keeps 30m of virtual time: long enough for the bitcoin baseline to
# visibly saturate (~3.4 tx/s) while NG tracks the offered rate.
throughput-smoke:
	$(GO) run ./cmd/ngbench -figure throughput -nodes 10 -rates 2,8 -duration 30m -parallelism 1 > /tmp/ng-tput-seq.txt
	$(GO) run ./cmd/ngbench -figure throughput -nodes 10 -rates 2,8 -duration 30m -parallelism 4 > /tmp/ng-tput-par.txt
	diff -u /tmp/ng-tput-seq.txt /tmp/ng-tput-par.txt
	@cat /tmp/ng-tput-par.txt
	@echo "throughput-smoke passed: sequential and sharded sweeps identical"

# soak is the chaos gate: SOAK_SEEDS randomized adversarial scenarios
# (internal/chaos) run under the online invariant catalogue, every seed
# replayed across both sim engines (-parallelism 1 vs 4) and with the
# connect cache on vs off; any invariant violation or report divergence
# fails. Failing seeds belong in internal/chaos/testdata/seeds.
SOAK_SEEDS ?= 50
soak:
	$(GO) run ./cmd/ngbench -figure chaos -seeds $(SOAK_SEEDS)

# faults runs the crash/recovery suite end to end: the sync protocol and
# malformed-message hardening units, the simulated and live transports, the
# experiment-harness crash/restart pins, the majority-crash differential, the
# committed chaos regression seeds (which include leader-crash + lossy
# programs), and the cluster-level leader-crash / process-restart / lossy
# tests.
faults:
	$(GO) test -run 'TestSync|TestMalformedMessagesDropped|TestFetchGiveUpHandsOffToSync' -count=1 ./internal/node
	$(GO) test -run 'TestLiveMalformedFrameDropsPeer|TestCodecSyncRoundTrip' -count=1 ./internal/p2p
	$(GO) test -run 'TestRestartRecoversDurablePrefix|TestCrashedNodeIsInert' -count=1 ./internal/experiment
	$(GO) test -run 'TestMajorityCrashConverges|TestRegressionSeeds' -count=1 ./internal/chaos
	$(GO) test -run 'TestClusterLeaderCrashRestartResync|TestClusterStateDirProcessRestart|TestClusterLossyLinks' -count=1 .

# stores is the storage-engine gate (DESIGN.md §12): the pluggable-backend
# unit suites (paged table, FileUTXO journal/checkpoint handshake, chain
# index, blockstore sync-policy + failure-injection durability), the
# durability/aliasing bugfix pins (Clone mutation isolation, reopened-index
# tie-break equivalence), the committed chaos regression seeds — each
# replayed under the mem vs file backend differential — and the beyond-RAM
# bounded-memory soak over file backends.
stores:
	$(GO) test -count=1 ./internal/store ./internal/blockstore
	$(GO) test -count=1 -run 'TestCloneMutationIsolation|TestSetCloneIsolationPagedBackend' ./internal/utxo ./internal/store
	$(GO) test -count=1 -run 'TestClusterRestartPreservesTieBreakInputs|TestClusterStateDirProcessRestart' .
	$(GO) test -count=1 -run 'TestRegressionSeeds' ./internal/chaos
	$(GO) test -count=1 -run 'TestBeyondRAMRunBounded' -timeout 20m ./internal/experiment

# fuzz runs a short campaign on every native fuzz target; raise FUZZTIME for
# a real hunt. Interesting inputs land in each package's testdata/fuzz and
# should be committed — the corpus replays under plain `go test` forever.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -fuzz=FuzzScenario -fuzztime=$(FUZZTIME) -run '^$$' ./internal/chaos
	$(GO) test -fuzz=FuzzBlockWire -fuzztime=$(FUZZTIME) -run '^$$' ./internal/types
	$(GO) test -fuzz=FuzzEnvelope -fuzztime=$(FUZZTIME) -run '^$$' ./internal/wire
	$(GO) test -fuzz=FuzzVarInt -fuzztime=$(FUZZTIME) -run '^$$' ./internal/wire
	$(GO) test -fuzz=FuzzNextTarget -fuzztime=$(FUZZTIME) -run '^$$' ./internal/chain
	$(GO) test -fuzz=FuzzBlockstoreReopen -fuzztime=$(FUZZTIME) -run '^$$' ./internal/blockstore

# cover prints per-package statement coverage and enforces floors on the
# consensus-critical packages: coverage there may only go up. CI publishes
# the table in the job summary.
COVER_FLOORS := internal/chain:78 internal/utxo:80
cover:
	@$(GO) test -cover ./... > /tmp/ng-cover.txt || { cat /tmp/ng-cover.txt; echo "cover: tests failed"; exit 1; }
	@cat /tmp/ng-cover.txt
	@set -e; for spec in $(COVER_FLOORS); do \
		pkg=$${spec%:*}; floor=$${spec#*:}; \
		pct=$$(awk -v pkg="bitcoinng/$$pkg" '$$2 == pkg { for (i = 1; i <= NF; i++) if ($$i ~ /%/) { gsub(/%/, "", $$i); print $$i } }' /tmp/ng-cover.txt); \
		[ -n "$$pct" ] || { echo "cover: no coverage reported for $$pkg"; exit 1; }; \
		awk -v p="$$pct" -v f="$$floor" 'BEGIN { exit (p + 0 >= f + 0) ? 0 : 1 }' || \
			{ echo "cover: FLOOR BREACH $$pkg at $$pct% < $$floor%"; exit 1; }; \
		echo "cover: floor ok $$pkg $$pct% >= $$floor%"; \
	done
