GO ?= go
BENCH_DATE := $(shell date +%Y%m%d)

.PHONY: build vet test race bench bench-json smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# bench-json records the Figure and substrate benchmarks as go test -json
# events in BENCH_<date>.json — one file per day, committed when a PR claims
# a performance change, so the perf trajectory of the repo stays auditable.
bench-json:
	$(GO) test -json -bench=. -benchtime=1x -run='^$$' . > BENCH_$(BENCH_DATE).json
	@grep -c '"Action"' BENCH_$(BENCH_DATE).json >/dev/null && echo "wrote BENCH_$(BENCH_DATE).json"

# smoke is the CI scalability gate: a paper-scale (1000-node) Bitcoin-NG run
# kept to a handful of payload blocks so it finishes in well under the job's
# time budget.
smoke:
	$(GO) run ./cmd/ngbench -figure smoke -nodes 1000 -blocks 5
