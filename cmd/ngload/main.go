// Command ngload is the sustained-load driver (txblaster): it streams
// signed transactions against an emulated network at a target rate (open
// loop) or outstanding window (closed loop) and reports offered vs
// confirmed throughput with confirmation-latency percentiles.
//
// Two harnesses:
//
//	ngload -rate 40 -duration 15m              # live cluster: blaster + relay
//	ngload -sim -rate 40 -duration 15m         # experiment harness: paced views
//
// The live path exercises real mempools (bounded, fee-indexed) and gossip
// transaction relay (batched per -batch); the -sim path exercises the
// streaming workload views of the measurement harness. Stdout is a
// deterministic function of the flags and seed on both paths; timing goes
// to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bitcoinng"
	"bitcoinng/internal/experiment"
	"bitcoinng/internal/mempool"
	"bitcoinng/internal/metrics"
)

func main() {
	var (
		simMode  = flag.Bool("sim", false, "drive the experiment harness (paced workload views) instead of the live cluster")
		proto    = flag.String("protocol", "bitcoin-ng", "protocol under load: bitcoin | bitcoin-ng | ghost")
		nodes    = flag.Int("nodes", 20, "network size")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		rate     = flag.Float64("rate", 0, "open-loop offered rate in tx/s of virtual time (0 = closed loop)")
		window   = flag.Int64("window", 0, "closed-loop outstanding-transaction target (default 1024)")
		duration = flag.Duration("duration", 15*time.Minute, "virtual duration of the blast")
		grace    = flag.Duration("grace", 30*time.Second, "post-blast settling time")
		txSize   = flag.Int("txsize", 476, "stream transaction size in bytes")
		lanes    = flag.Int("lanes", 0, "stream lane count (0 = default)")
		bw       = flag.Float64("bandwidth", 1_000_000, "per-pair bandwidth in bits/s (0 = paper's 100 kbit/s)")
		batch    = flag.Duration("batch", 200*time.Millisecond, "gossip tx-relay batching interval (live path; 0 = relay each tx immediately)")
		poolTxs  = flag.Int("mempool-txs", 100_000, "per-node mempool transaction bound (live path; 0 = unbounded)")
		parallel = flag.Int("parallelism", 1, "sim path: event-loop shards (reports are byte-identical at any value)")
	)
	flag.Parse()

	start := time.Now() //nglint:allow walltime stderr-only timing; stdout stays a pure function of flags+seed
	var err error
	if *simMode {
		err = runSim(*proto, *nodes, *seed, *rate, *window, *duration, *grace, *txSize, *lanes, *bw, *parallel)
	} else {
		err = runLive(*proto, *nodes, *seed, *rate, *window, *duration, *grace, *txSize, *lanes, *bw, *batch, *poolTxs)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ngload: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "(done in %v)\n", time.Since(start).Round(time.Millisecond)) //nglint:allow walltime stderr-only timing; stdout stays a pure function of flags+seed
}

// runLive blasts a cluster: real mempools, wallet-path submission, gossip
// relay with batching.
func runLive(proto string, nodes int, seed int64, rate float64, window int64,
	duration, grace time.Duration, txSize, lanes int, bw float64,
	batch time.Duration, poolTxs int) error {
	params := bitcoinng.DefaultParams()
	params.RetargetWindow = 0
	params.TxBatchInterval = batch
	c, err := bitcoinng.NewCluster(bitcoinng.ClusterConfig{
		Protocol:      bitcoinng.Protocol(proto),
		Nodes:         nodes,
		Seed:          seed,
		Params:        params,
		AutoMine:      true,
		RelayTxs:      true,
		StreamLoad:    &bitcoinng.StreamLoadConfig{TxSize: txSize, Lanes: lanes},
		MempoolLimits: mempool.Limits{MaxTxs: poolTxs},
		BandwidthBPS:  bw,
	})
	if err != nil {
		return err
	}
	report, err := c.Blast(bitcoinng.BlastConfig{
		Rate:     rate,
		Window:   window,
		Duration: duration,
		Grace:    grace,
	})
	if err != nil {
		return err
	}
	fmt.Printf("ngload live: %s, %d nodes, seed %d\n", proto, nodes, seed)
	report.Fprint(os.Stdout)
	rep := c.Report()
	fmt.Printf("chain: %d blocks (%d main), ledger %.2f tx/s\n",
		rep.Blocks, rep.MainChainBlocks, rep.TxFrequency)
	return nil
}

// runSim blasts the measurement harness: paced workload views over the
// streaming generator, byte-identical at any parallelism.
func runSim(proto string, nodes int, seed int64, rate float64, window int64,
	duration, grace time.Duration, txSize, lanes int, bw float64, parallel int) error {
	cfg := experiment.DefaultConfig(experiment.Protocol(proto), nodes, seed)
	cfg.TxSize = txSize
	cfg.StreamLanes = lanes
	cfg.Offered = rate
	if rate <= 0 {
		if window <= 0 {
			window = 1024
		}
		cfg.ClosedLoopWindow = int(window)
	}
	cfg.BandwidthBPS = bw
	cfg.TargetBlocks = 1 << 30 // time-bound run: MaxSimTime is the stop rule
	cfg.MaxSimTime = duration
	cfg.Grace = grace
	cfg.Parallelism = parallel
	res, err := experiment.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("ngload sim: %s, %d nodes, seed %d\n", proto, nodes, seed)
	if res.Load == nil {
		return fmt.Errorf("no load report (pacing not active)")
	}
	res.Load.Fprint(os.Stdout)
	metrics.FprintBackpressure(os.Stdout, res.Backpressure)
	fmt.Printf("chain: %d blocks (%d main), ledger %.2f tx/s\n",
		res.Report.Blocks, res.Report.MainChainBlocks, res.Report.TxFrequency)
	return nil
}
