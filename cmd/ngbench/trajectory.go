package main

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// trajectoryBench aggregates every committed bench-json snapshot into one
// chronological per-benchmark table: one column per snapshot, plus the
// cumulative first→last delta. The date-stamped BENCH_<date>[suffix].json
// naming makes lexical order chronological, so the caller just sorts the
// paths. Complements -compare, which is pairwise only.
func trajectoryBench(w io.Writer, paths []string) error {
	if len(paths) < 2 {
		return fmt.Errorf("need at least two snapshots, got %d", len(paths))
	}
	snaps := make([]map[string]float64, len(paths))
	for i, p := range paths {
		ns, err := parseBenchJSON(p)
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		if len(ns) == 0 {
			return fmt.Errorf("%s: no benchmark results found", p)
		}
		snaps[i] = ns
	}

	// Union of benchmark names across the whole history: benchmarks appear
	// and retire as the repo grows, and both halves of that story matter.
	nameSet := map[string]bool{}
	for _, s := range snaps {
		for name := range s {
			nameSet[name] = true
		}
	}
	names := make([]string, 0, len(nameSet))
	for name := range nameSet {
		names = append(names, name)
	}
	sort.Strings(names)

	// Header: snapshot columns keyed by the date part of the filename.
	labels := make([]string, len(paths))
	for i, p := range paths {
		labels[i] = strings.TrimSuffix(strings.TrimPrefix(filepath.Base(p), "BENCH_"), ".json")
	}
	fmt.Fprintf(w, "%-44s", "benchmark (ns/op)")
	for _, l := range labels {
		fmt.Fprintf(w, " %14s", l)
	}
	fmt.Fprintf(w, " %12s\n", "first→last")

	regressions := 0
	for _, name := range names {
		fmt.Fprintf(w, "%-44s", name)
		var first, last float64
		count := 0
		for _, s := range snaps {
			ns, ok := s[name]
			if !ok {
				fmt.Fprintf(w, " %14s", "-")
				continue
			}
			fmt.Fprintf(w, " %14.0f", ns)
			if count == 0 {
				first = ns
			}
			last = ns
			count++
		}
		if count < 2 {
			// One data point has no trajectory: a benchmark that just
			// arrived (or had already retired).
			label := "retired"
			if _, inLast := snaps[len(snaps)-1][name]; inLast {
				label = "new"
			}
			fmt.Fprintf(w, " %12s\n", label)
		} else {
			delta := (last - first) / first
			note := ""
			if delta > regressionThreshold {
				note = "  << REGRESSION"
				regressions++
			} else if delta < -regressionThreshold {
				note = "  improved"
			}
			fmt.Fprintf(w, " %+11.1f%%%s\n", 100*delta, note)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(w, "\n%d benchmark(s) drifted up more than %.0f%% across the trajectory\n",
			regressions, 100*regressionThreshold)
	} else {
		fmt.Fprintf(w, "\nno cumulative regressions beyond %.0f%%\n", 100*regressionThreshold)
	}
	return nil
}
