package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// compareBench reads two `go test -json` benchmark snapshots (the files
// `make bench-json` writes) and prints per-benchmark ns/op deltas, flagging
// changes beyond regressionThreshold. It keeps the perf trajectory of the
// repo auditable: each PR claiming a performance change records a snapshot,
// and `make bench-diff` renders the comparison.
func compareBench(w io.Writer, oldPath, newPath string) error {
	oldNs, err := parseBenchJSON(oldPath)
	if err != nil {
		return fmt.Errorf("%s: %w", oldPath, err)
	}
	newNs, err := parseBenchJSON(newPath)
	if err != nil {
		return fmt.Errorf("%s: %w", newPath, err)
	}
	if len(oldNs) == 0 {
		return fmt.Errorf("%s: no benchmark results found", oldPath)
	}
	if len(newNs) == 0 {
		return fmt.Errorf("%s: no benchmark results found", newPath)
	}

	names := make([]string, 0, len(oldNs))
	for name := range oldNs {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "%-44s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	regressions := 0
	for _, name := range names {
		o := oldNs[name]
		n, ok := newNs[name]
		if !ok {
			fmt.Fprintf(w, "%-44s %14.0f %14s %9s\n", name, o, "-", "gone")
			continue
		}
		delta := (n - o) / o
		note := ""
		switch {
		case delta > regressionThreshold:
			note = "  << REGRESSION"
			regressions++
		case delta < -regressionThreshold:
			note = "  improved"
		}
		fmt.Fprintf(w, "%-44s %14.0f %14.0f %+8.1f%%%s\n", name, o, n, 100*delta, note)
	}
	var added []string
	for name := range newNs {
		if _, ok := oldNs[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		fmt.Fprintf(w, "%-44s %14s %14.0f %9s\n", name, "-", newNs[name], "new")
	}
	if regressions > 0 {
		fmt.Fprintf(w, "\n%d benchmark(s) regressed more than %.0f%%\n",
			regressions, 100*regressionThreshold)
	} else {
		fmt.Fprintf(w, "\nno regressions beyond %.0f%%\n", 100*regressionThreshold)
	}
	return nil
}

// regressionThreshold flags ns/op growth beyond 10%.
const regressionThreshold = 0.10

// benchLine matches a benchmark result line inside test output, e.g.
// "BenchmarkMerkleRoot \t 1 \t 423099 ns/op \t 0.99 R2". Name variants with
// -cpu suffixes (BenchmarkFoo-8) normalize to the bare name.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op`)

// parseBenchJSON extracts benchmark ns/op values from a `go test -json`
// stream. A single result line can arrive split across several Output
// events (the test runner flushes mid-line), so the events are reassembled
// into the original output stream before matching.
func parseBenchJSON(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var output strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Action string
			Output string
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate stray non-JSON lines
		}
		if ev.Action == "output" {
			output.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	out := make(map[string]float64)
	for _, line := range strings.Split(output.String(), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		out[m[1]] = ns
	}
	return out, nil
}
