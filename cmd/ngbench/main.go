// Command ngbench regenerates the paper's evaluation figures: Figure 6
// (mining-power distribution), Figure 7 (propagation vs block size), Figure
// 8a (frequency sweep), Figure 8b (size sweep), the §5.1 incentive table,
// and the DESIGN.md ablations.
//
// Examples:
//
//	ngbench -figure 8a                      # laptop scale
//	ngbench -figure 8b -nodes 1000 -blocks 100   # paper scale (slow)
//	ngbench -figure all
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"bitcoinng/internal/chaos"
	"bitcoinng/internal/experiment"
	"bitcoinng/internal/incentive"
	"bitcoinng/internal/mining"
	"bitcoinng/internal/sim"
	"bitcoinng/internal/stats"
	"bitcoinng/internal/validate"
)

func main() {
	var (
		figure      = flag.String("figure", "all", "which figure: 6 | 7 | 8a | 8b | incentive | ablation | all, or a standalone run not part of all: smoke (scalability) | throughput (sustained-load saturation sweep) | greedymine | selfish (adversarial revenue sweeps) | chaos (randomized scenario soak)")
		nodes       = flag.Int("nodes", 0, "override network size (default: laptop scale 120)")
		blocks      = flag.Int("blocks", 0, "override payload blocks per run (default 40)")
		seed        = flag.Int64("seed", 1, "experiment seed")
		parallelism = flag.Int("parallelism", 0, "sweep worker pool width and smoke shard count (0 = GOMAXPROCS, 1 = sequential)")
		seeds       = flag.Int("seeds", 50, "chaos soak: number of generated scenarios")
		rates       = flag.String("rates", "", "throughput: comma-separated offered rates in tx/s (default 1,2,4,...,256)")
		duration    = flag.Duration("duration", 0, "throughput: virtual duration per sweep point (default 15m)")
		chaosDiff   = flag.Bool("chaos-diff", true, "chaos soak: replay every seed on the sharded engine and with the connect cache off, failing any report divergence")
		compareOld  = flag.String("compare", "", "compare two BENCH_*.json snapshots: -compare old.json new.json (other flags ignored)")
		trajectory  = flag.Bool("trajectory", false, "aggregate BENCH_*.json snapshots chronologically: -trajectory s1.json s2.json ... (other flags ignored)")
	)
	flag.Parse()

	if *trajectory {
		if err := trajectoryBench(os.Stdout, flag.Args()); err != nil {
			fmt.Fprintf(os.Stderr, "ngbench trajectory: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *compareOld != "" {
		newPath := flag.Arg(0)
		if newPath == "" {
			fmt.Fprintln(os.Stderr, "usage: ngbench -compare old.json new.json")
			os.Exit(2)
		}
		if err := compareBench(os.Stdout, *compareOld, newPath); err != nil {
			fmt.Fprintf(os.Stderr, "ngbench compare: %v\n", err)
			os.Exit(1)
		}
		return
	}

	scale := experiment.DefaultScale()
	scale.Seed = *seed
	scale.Parallelism = *parallelism
	if *nodes > 0 {
		scale.Nodes = *nodes
	}
	if *blocks > 0 {
		scale.Blocks = *blocks
	}

	run := func(name string, fn func() error) {
		if *figure != "all" && *figure != name {
			return
		}
		start := time.Now() //nglint:allow walltime stderr-only progress timing; stdout stays a pure function of flags+seed
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "ngbench %s: %v\n", name, err)
			os.Exit(1)
		}
		// Timing goes to stderr: stdout stays a deterministic function of
		// the flags and seed, so CI can diff runs byte for byte.
		fmt.Println()
		fmt.Fprintf(os.Stderr, "(%s done in %v)\n", name, time.Since(start).Round(time.Millisecond)) //nglint:allow walltime stderr-only progress timing; stdout stays a pure function of flags+seed
	}

	run("6", func() error { return figure6(*seed) })
	run("7", func() error {
		points, fit, err := experiment.Figure7(scale, nil)
		if err != nil {
			return err
		}
		experiment.FprintFig7(os.Stdout, points, fit)
		return nil
	})
	run("8a", func() error {
		points, err := experiment.Figure8a(scale, nil)
		if err != nil {
			return err
		}
		experiment.FprintFig8(os.Stdout,
			"Figure 8a — frequency sweep at constant payload throughput", "freq[1/s]", points)
		return nil
	})
	run("8b", func() error {
		points, err := experiment.Figure8b(scale, nil)
		if err != nil {
			return err
		}
		experiment.FprintFig8(os.Stdout,
			"Figure 8b — size sweep at high frequency", "size[B]", points)
		return nil
	})
	run("incentive", func() error { return incentiveTable() })
	run("ablation", func() error { return ablations(scale) })
	if *figure == "smoke" {
		run("smoke", func() error { return smoke(scale) })
	}
	// Sustained-load saturation sweep (internal/load + streaming workload):
	// both protocols blasted open-loop at rising offered rates; reports the
	// confirmed-throughput curve with latency percentiles, the saturation
	// knee, and the ceiling. Standalone like smoke: stdout is a
	// deterministic function of (nodes, seed, rates, duration) — CI diffs a
	// sequential against a sharded run byte for byte.
	if *figure == "throughput" {
		run("throughput", func() error { return throughputFigure(scale, *rates, *duration) })
	}
	// Adversarial revenue sweeps (internal/strategy): attacker revenue vs
	// mining power α, honest control vs deviation, with the empirical
	// profitability threshold. Standalone like smoke: each sweep runs 2
	// executions per α on the Sweep pool. Stdout is a deterministic
	// function of (nodes, blocks, seed) — the sharded engine
	// (-parallelism > 1) must produce byte-identical tables.
	if *figure == "greedymine" {
		run("greedymine", func() error { return attackSweep(scale, "greedymine") })
	}
	if *figure == "selfish" {
		run("selfish", func() error { return attackSweep(scale, "selfish") })
	}
	// Chaos soak (internal/chaos): N generated adversarial scenarios under
	// the online invariant catalogue, each optionally replayed across both
	// sim engines and cache modes. Standalone like smoke; stdout is a
	// deterministic function of (seeds, seed, chaos-diff) alone, so CI can
	// diff campaigns byte for byte. A non-zero exit means a seed failed —
	// commit it under internal/chaos/testdata/seeds before fixing.
	if *figure == "chaos" {
		run("chaos", func() error { return chaosSoak(*seeds, *seed, *chaosDiff, *parallelism) })
	}
}

// throughputFigure runs the sustained-load sweep and prints the saturation
// curve.
func throughputFigure(scale experiment.Scale, rateList string, duration time.Duration) error {
	var rates []float64
	if rateList != "" {
		for _, s := range strings.Split(rateList, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return fmt.Errorf("bad -rates entry %q: %w", s, err)
			}
			rates = append(rates, r)
		}
	}
	curve, err := experiment.ThroughputSweep(scale, rates, duration)
	if err != nil {
		return err
	}
	fmt.Println("Throughput — sustained open-loop load, bitcoin vs bitcoin-ng")
	curve.Fprint(os.Stdout)
	return nil
}

// chaosSoak runs the randomized-scenario campaign and fails on any
// invariant violation, scenario error, or cross-engine divergence.
func chaosSoak(seeds int, baseSeed int64, differential bool, parallelism int) error {
	report, err := chaos.Soak(chaos.SoakConfig{
		Seeds:        seeds,
		BaseSeed:     baseSeed,
		Parallelism:  parallelism,
		Differential: differential,
	})
	if err != nil {
		return err
	}
	report.Fprint(os.Stdout)
	if fails := report.Failures(); len(fails) > 0 {
		return fmt.Errorf("%d of %d seeds failed", len(fails), seeds)
	}
	return nil
}

// attackSweep reproduces the attacker-revenue-vs-α curve for one registered
// deviation strategy (Greedy-Mine per Hu et al. 2023; selfish mining per
// Eyal & Sirer) and locates the swept profitability threshold.
func attackSweep(scale experiment.Scale, strat string) error {
	points, err := experiment.AttackRevenueSweep(scale, strat, nil)
	if err != nil {
		return err
	}
	experiment.FprintAttackSweep(os.Stdout, strat, points)
	return nil
}

// smoke runs a single Bitcoin-NG experiment at the requested scale and
// prints the report plus validation-pipeline counters. CI runs it at paper
// scale (`-figure smoke -nodes 1000 -blocks 5`) under a time budget to catch
// scalability regressions before they land, and diffs the stdout of a
// sequential (-parallelism 1) against a sharded run: everything written to
// stdout here is a deterministic function of (nodes, blocks, seed) alone.
// Wall time, event counts, and cache counters — which legitimately vary with
// the engine — go to stderr.
func smoke(scale experiment.Scale) error {
	cfg := experiment.DefaultConfig(experiment.BitcoinNG, scale.Nodes, scale.Seed)
	cfg.TargetBlocks = scale.Blocks
	cfg.Parallelism = scale.Parallelism
	res, err := experiment.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("smoke: %d nodes, %d payload blocks, seed %d\n", scale.Nodes, scale.Blocks, scale.Seed)
	experiment.FprintReport(os.Stdout, "bitcoin-ng", res.Report)
	fmt.Printf("simulated %v (%d messages, %.1f MB sent)\n",
		res.SimTime.Round(time.Second), res.NetStats.MessagesSent, float64(res.NetStats.BytesSent)/1e6)
	stats := validate.Shared().Stats()
	fmt.Fprintf(os.Stderr, "connect cache: %d entries, %d hits, %d misses (%.1f%% hit rate)\n",
		stats.Entries, stats.Hits, stats.Misses, 100*stats.HitRate())
	// Report the effective shard count (mirroring the engine's resolution
	// of the 0 = GOMAXPROCS default and the clamp to the node count).
	eff := cfg.Parallelism
	if eff == 0 {
		eff = runtime.GOMAXPROCS(0)
	}
	if eff > cfg.Nodes {
		eff = cfg.Nodes
	}
	fmt.Fprintf(os.Stderr, "wall %v, %d events, parallelism %d\n",
		res.WallTime.Round(time.Millisecond), res.Events, eff)
	return nil
}

// figure6 prints the mining-power distribution by rank with its
// exponential re-fit (§7 "Mining Power").
func figure6(seed int64) error {
	rng := sim.NewRand(seed, 6)
	weeks := mining.SampleWeeks(rng, 52, 100, mining.DefaultExponent, 0.4)
	pct := mining.RankPercentiles(weeks, 20, []float64{0.25, 0.50, 0.75})

	fmt.Println("Figure 6 — weekly mining power by rank (top 20 pools)")
	fmt.Printf("%5s %9s %9s %9s\n", "rank", "p25", "p50", "p75")
	var ranks, logMedians []float64
	for k := 0; k < 20; k++ {
		fmt.Printf("%5d %9.4f %9.4f %9.4f\n", k+1, pct[0][k], pct[1][k], pct[2][k])
		ranks = append(ranks, float64(k+1))
		logMedians = append(logMedians, math.Log(pct[1][k]))
	}
	fit := stats.LinearFit(ranks, logMedians)
	fmt.Printf("exponential fit over medians: exponent=%.4f (paper: -0.27), R²=%.4f (paper: 0.99)\n",
		fit.Slope, fit.R2)
	return nil
}

// incentiveTable prints the §5.1 r_leader bounds.
func incentiveTable() error {
	fmt.Println("§5.1 — incentive-compatible r_leader window by attacker size α")
	fmt.Printf("%8s %10s %10s %8s %10s\n", "alpha", "lower", "upper", "window", "r=40% ok")
	for _, row := range incentive.Table([]float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 1.0 / 3.0}) {
		fmt.Printf("%8.4f %10.4f %10.4f %8v %10v\n",
			row.Alpha, row.Lower, row.Upper, row.WindowOpen, row.R40Valid)
	}
	rng := sim.NewRand(1, 51)
	attack := incentive.InclusionAttackEV(rng, incentive.DefaultAlpha, 0.40, 1_000_000)
	fmt.Printf("monte carlo (α=1/4, r=40%%): inclusion attack EV %.4f < honest %.4f ✓\n",
		attack, incentive.HonestInclusionEV(0.40))

	fmt.Println("\nSelfish-mining thresholds (Eyal & Sirer [21]; microblocks carry no weight, §5.1)")
	fmt.Printf("%8s %12s %28s\n", "gamma", "threshold", "with weighted microblocks")
	for _, g := range []float64{0, 0.25, 0.5, 1} {
		fmt.Printf("%8.2f %12.4f %28.4f\n",
			g, incentive.SelfishThresholdClosedForm(g),
			incentive.WeightedMicroblockAdvantage(g, 0.05, 10))
	}
	return nil
}

// ablations prints the DESIGN.md §5 design-choice comparisons.
func ablations(scale experiment.Scale) error {
	random, firstSeen, err := experiment.TieBreakAblation(scale)
	if err != nil {
		return err
	}
	fmt.Println("Ablation — fork-choice tie-breaking (Bitcoin at 10s blocks)")
	experiment.FprintReport(os.Stdout, "random", random)
	experiment.FprintReport(os.Stdout, "first-seen", firstSeen)

	points, err := experiment.KeyBlockIntervalAblation(scale, nil)
	if err != nil {
		return err
	}
	fmt.Println("\nAblation — Bitcoin-NG key block interval (10s microblocks)")
	experiment.FprintFig8(os.Stdout, "", "keyint[s]", points)
	return nil
}
