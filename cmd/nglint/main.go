// Command nglint runs the determinism & protocol-safety analyzer suite
// (internal/lint) over the whole module: the per-package analyzers
// (walltime, globalrand, maporder, locksafe, wiresym), the whole-module
// analyzers (detflow interprocedural nondeterminism taint, parity
// paired-surface diffing, errflow consensus error-drop tracking), plus
// verification of every //nglint:allow annotation.
//
// Usage:
//
//	nglint [-list] [-cache file] [./...]
//
// nglint always analyzes every package in the enclosing module (the only
// accepted pattern is ./..., for make/CI symmetry with go vet). It prints
// findings as file:line:col: analyzer: message and exits 1 if there are
// any. Test files are exempt by design — the contract governs production
// code.
//
// -cache names a file holding the content hash of the last clean run. When
// the hash of every .go file and go.mod still matches, nglint exits 0
// without re-analyzing; after a clean run it records the new hash. CI keys
// this file on a cache action so unchanged modules skip the type-check
// entirely. (Serializing the type-checked packages themselves is not viable
// stdlib-only: go/types has no exporter/importer pair for full typed ASTs,
// so the cache is all-or-nothing on source identity.)
//
// The suite is self-contained (stdlib go/ast + go/types; see
// internal/lint/analysis for why x/tools is not imported) and is wired into
// `make lint` and the CI lint job next to go vet, staticcheck, and
// govulncheck.
package main

import (
	"bufio"
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"bitcoinng/internal/lint/nglint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	cache := flag.String("cache", "", "clean-run hash file: skip analysis when sources are unchanged")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nglint [-list] [-cache file] [./...]\n\nAnalyzers:\n%s", nglint.Doc())
	}
	flag.Parse()
	if *list {
		fmt.Print(nglint.Doc())
		return
	}
	for _, arg := range flag.Args() {
		if arg != "./..." {
			fmt.Fprintf(os.Stderr, "nglint: only the ./... pattern is supported (got %q)\n", arg)
			os.Exit(2)
		}
	}

	root, modPath, err := findModule()
	if err != nil {
		fmt.Fprintf(os.Stderr, "nglint: %v\n", err)
		os.Exit(2)
	}

	var srcHash string
	if *cache != "" {
		srcHash, err = hashSources(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nglint: hashing sources: %v\n", err)
			os.Exit(2)
		}
		if prev, err := os.ReadFile(*cache); err == nil && strings.TrimSpace(string(prev)) == srcHash {
			fmt.Fprintf(os.Stderr, "nglint: sources unchanged since last clean run (%s), skipping\n", srcHash[:12])
			return
		}
	}

	findings, err := nglint.Run(modPath, root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nglint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		// Print module-relative paths: stable across machines, clickable
		// in CI logs.
		pos := f.Pos
		if rel, err := filepath.Rel(root, pos.Filename); err == nil {
			pos.Filename = rel
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "nglint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	if *cache != "" {
		if err := os.WriteFile(*cache, []byte(srcHash+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "nglint: writing cache: %v\n", err)
			// The run itself was clean; a cache write failure costs only
			// the next run's skip, not correctness.
		}
	}
}

// hashSources digests every production .go file and go.mod under root in a
// stable order. Test files are excluded — the suite never loads them, so
// they cannot change findings.
func hashSources(root string) (string, error) {
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") || d.Name() == "go.mod" {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	sort.Strings(files)
	h := sha256.New()
	for _, f := range files {
		rel, err := filepath.Rel(root, f)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s\n", rel)
		r, err := os.Open(f)
		if err != nil {
			return "", err
		}
		if _, err := io.Copy(h, r); err != nil {
			r.Close()
			return "", err
		}
		r.Close()
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

// findModule walks up from the working directory to go.mod and reads the
// module path.
func findModule() (root, modPath string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		gm := filepath.Join(dir, "go.mod")
		if f, err := os.Open(gm); err == nil {
			defer f.Close()
			sc := bufio.NewScanner(f)
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module directive in %s", gm)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("go.mod not found above %s", dir)
		}
		dir = parent
	}
}
