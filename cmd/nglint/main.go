// Command nglint runs the determinism & protocol-safety analyzer suite
// (internal/lint) over the whole module: walltime, globalrand, maporder,
// locksafe, wiresym, plus verification of every //nglint:allow annotation.
//
// Usage:
//
//	nglint [-list] [./...]
//
// nglint always analyzes every package in the enclosing module (the only
// accepted pattern is ./..., for make/CI symmetry with go vet). It prints
// findings as file:line:col: analyzer: message and exits 1 if there are
// any. Test files are exempt by design — the contract governs production
// code.
//
// The suite is self-contained (stdlib go/ast + go/types; see
// internal/lint/analysis for why x/tools is not imported) and is wired into
// `make lint` and the CI lint job next to go vet, staticcheck, and
// govulncheck.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"bitcoinng/internal/lint/nglint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nglint [-list] [./...]\n\nAnalyzers:\n%s", nglint.Doc())
	}
	flag.Parse()
	if *list {
		fmt.Print(nglint.Doc())
		return
	}
	for _, arg := range flag.Args() {
		if arg != "./..." {
			fmt.Fprintf(os.Stderr, "nglint: only the ./... pattern is supported (got %q)\n", arg)
			os.Exit(2)
		}
	}

	root, modPath, err := findModule()
	if err != nil {
		fmt.Fprintf(os.Stderr, "nglint: %v\n", err)
		os.Exit(2)
	}
	findings, err := nglint.Run(modPath, root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nglint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		// Print module-relative paths: stable across machines, clickable
		// in CI logs.
		pos := f.Pos
		if rel, err := filepath.Rel(root, pos.Filename); err == nil {
			pos.Filename = rel
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "nglint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// findModule walks up from the working directory to go.mod and reads the
// module path.
func findModule() (root, modPath string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		gm := filepath.Join(dir, "go.mod")
		if f, err := os.Open(gm); err == nil {
			defer f.Close()
			sc := bufio.NewScanner(f)
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module directive in %s", gm)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("go.mod not found above %s", dir)
		}
		dir = parent
	}
}
