// Command ngsim runs one measured blockchain experiment on the emulated
// network and prints the paper's §6 metrics.
//
// Examples:
//
//	ngsim -protocol bitcoin-ng -nodes 1000 -blocks 100 -micro-interval 10s
//	ngsim -protocol bitcoin -nodes 200 -interval 10s -size 20000 -seed 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bitcoinng/internal/experiment"
	protoreg "bitcoinng/internal/protocol"
)

func main() {
	var (
		protocol = flag.String("protocol", "bitcoin-ng",
			"protocol: "+strings.Join(protoreg.Names(), " | "))
		nodes     = flag.Int("nodes", 200, "network size (paper: 1000)")
		seed      = flag.Int64("seed", 1, "experiment seed (reproducible)")
		blocks    = flag.Int("blocks", 60, "payload blocks to run (paper: 50-100)")
		interval  = flag.Duration("interval", 100*time.Second, "PoW/key block interval")
		micro     = flag.Duration("micro-interval", 10*time.Second, "NG microblock interval")
		size      = flag.Int("size", 100_000, "block / microblock size cap in bytes")
		txSize    = flag.Int("tx-size", 476, "artificial transaction size in bytes")
		bandwidth = flag.Float64("bandwidth", 100_000, "per-pair bandwidth in bits/sec")
	)
	flag.Parse()

	cfg := experiment.DefaultConfig(experiment.Protocol(*protocol), *nodes, *seed)
	cfg.TargetBlocks = *blocks
	cfg.TxSize = *txSize
	cfg.BandwidthBPS = *bandwidth
	cfg.Params.TargetBlockInterval = *interval
	cfg.Params.MicroblockInterval = *micro
	cfg.Params.MaxBlockSize = *size

	res, err := experiment.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ngsim: %v\n", err)
		os.Exit(1)
	}
	r := res.Report
	fmt.Printf("protocol=%s nodes=%d seed=%d blocks(payload)=%d\n",
		cfg.Protocol, cfg.Nodes, cfg.Seed, cfg.TargetBlocks)
	fmt.Printf("generated: %d blocks (%d pow), main chain: %d (%d pow)\n",
		r.Blocks, r.PowBlocks, r.MainChainBlocks, r.MainPowBlocks)
	experiment.FprintReport(os.Stdout, string(cfg.Protocol), r)
	fmt.Printf("propagation p25/p50/p75: %.2fs / %.2fs / %.2fs\n",
		r.PropagationP25.Seconds(), r.PropagationP50.Seconds(), r.PropagationP75.Seconds())
	experiment.FprintRunStats(os.Stdout, res)
}
