// Command ngnode runs a live Bitcoin-NG node over TCP: real proof-of-work
// key-block mining at a configurable difficulty, microblock production while
// leading, and inv/getdata block relay with peers. The node is assembled
// through the protocol registry — the same path the simulator harnesses use
// — so protocol code runs unchanged between the emulator and live sockets.
//
// Start a two-node network on one machine:
//
//	ngnode -id 1 -listen 127.0.0.1:9401 -mine
//	ngnode -id 2 -listen 127.0.0.1:9402 -connect 127.0.0.1:9401 -mine
//
// Nodes must share the genesis parameters (-genesis-time) to peer.
package main

import (
	cryptorand "crypto/rand"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"bitcoinng/internal/chain"
	"bitcoinng/internal/crypto"
	"bitcoinng/internal/node"
	"bitcoinng/internal/p2p"
	"bitcoinng/internal/protocol"
	"bitcoinng/internal/store"
	"bitcoinng/internal/strategy"
	"bitcoinng/internal/types"
	"bitcoinng/internal/validate"
)

func main() {
	var (
		id          = flag.Int("id", 1, "unique node id on this network")
		listen      = flag.String("listen", "127.0.0.1:9401", "listen address")
		connect     = flag.String("connect", "", "comma-separated peer addresses to dial")
		mine        = flag.Bool("mine", false, "mine key blocks (real proof of work)")
		genesisTime = flag.Int64("genesis-time", 0, "genesis timestamp (all nodes must agree)")
		micro       = flag.Duration("micro-interval", 2*time.Second, "microblock interval while leading")
		status      = flag.Duration("status", 5*time.Second, "status print interval")
		exponent    = flag.Uint("difficulty-exp", 0x20, "compact target exponent byte (lower = harder)")
		datadir     = flag.String("datadir", "", "directory for block persistence (empty: in-memory only); shorthand for -store file:<dir>")
		storeURL    = flag.String("store", "", "storage locator for chain index and UTXO ledger (mem: | file:<dir>); overrides -datadir")
		stratName   = flag.String("strategy", "", "mining strategy ("+strings.Join(strategy.Names(), " | ")+"); empty = honest")
	)
	flag.Parse()
	log.SetPrefix(fmt.Sprintf("ngnode[%d] ", *id))
	log.SetFlags(log.Ltime | log.Lmicroseconds)

	// Trivially easy default difficulty so laptops find blocks in seconds;
	// the target is consensus-checked, so all nodes must agree.
	target := crypto.CompactTarget(uint32(*exponent)<<24 | 0x7fffff)
	genesis := types.GenesisBlock(types.GenesisSpec{
		TimeNanos: *genesisTime,
		Target:    target,
	})

	params := types.DefaultParams()
	params.RetargetWindow = 0 // fixed difficulty for demo networks
	params.MicroblockInterval = *micro
	params.MinMicroblockInterval = 10 * time.Millisecond

	// A live node's identity key comes from OS entropy; timestamp-seeded
	// PRNG keys are guessable and collide when nodes start together.
	key, err := crypto.GenerateKey(cryptorand.Reader)
	if err != nil {
		log.Fatalf("key generation: %v", err)
	}
	strat, err := strategy.New(*stratName)
	if err != nil {
		log.Fatalf("strategy: %v", err)
	}

	rt := p2p.New(p2p.Config{NodeID: *id, GenesisHash: genesis.Hash(), Seed: int64(*id)})
	defer rt.Close()

	// Storage backends come from one locator — the same factory the simulator
	// harnesses use — with -datadir kept as the file-backend shorthand.
	locator := *storeURL
	if locator == "" && *datadir != "" {
		locator = "file:" + *datadir
	}
	factory, err := store.NewFactory(locator)
	if err != nil {
		log.Fatalf("store: %v", err)
	}
	defer factory.Close()

	var spec = protocol.Spec{
		Protocol: protocol.BitcoinNG,
		Params:   params,
		Key:      key,
		Genesis:  genesis,
		// One live process usually hosts one node, but reorgs still
		// replay cached deltas instead of re-applying blocks.
		ConnectCache: validate.Shared(),
		Strategy:     strat,
	}
	var index store.ChainIndex
	if !factory.InMemory() {
		// The ledger store rebuilds from the chain index on every boot (the
		// replay below re-applies each block), so it must start empty —
		// chain.New applies genesis into it.
		ustore, err := factory.NewUTXO("node")
		if err != nil {
			log.Fatalf("store: %v", err)
		}
		if err := ustore.Reset(); err != nil {
			log.Fatalf("store reset: %v", err)
		}
		defer func() {
			if err := ustore.Close(); err != nil {
				log.Printf("utxo store close: %v", err)
			}
		}()
		spec.UTXO = ustore
		index, err = factory.NewChainIndex("node")
		if err != nil {
			log.Fatalf("chain index: %v", err)
		}
		defer func() {
			// A failed final flush loses the tail of the archive; say so
			// instead of exiting clean.
			if err := index.Close(); err != nil {
				log.Printf("chain index close: %v", err)
			}
		}()
	}

	client, err := protocol.Build(rt, spec)
	if err != nil {
		log.Fatalf("node: %v", err)
	}
	base := client.Base()
	rt.SetHandler(client.HandleMessage)

	// Persistence: replay stored blocks into the chain — each under its
	// recorded arrival time, so the first-seen tie-break resolves as it did
	// before the restart — then keep appending everything the chain accepts
	// (base.Persist covers gossip and self-mined paths alike).
	if index != nil {
		replayed := 0
		err := index.Replay(func(b types.Block, receivedAt int64) error {
			res, err := base.State.AddBlock(b, receivedAt)
			if err != nil {
				return err
			}
			if res.Status == chain.StatusOrphan || res.Status == chain.StatusInvalid {
				return fmt.Errorf("not connectable")
			}
			replayed++
			return nil
		})
		if err != nil {
			log.Fatalf("replay: %v", err)
		}
		log.Printf("replayed %d blocks (height %d)", replayed, base.State.Height())
		base.Persist = index
		base.State.Store().AttachBodySource(index)
	}

	addr, err := rt.Listen(*listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("listening on %s, address %s, genesis %s", addr, key.Public().Addr(), genesis.Hash().Short())

	for _, peerAddr := range strings.Split(*connect, ",") {
		peerAddr = strings.TrimSpace(peerAddr)
		if peerAddr == "" {
			continue
		}
		if err := rt.Connect(peerAddr); err != nil {
			log.Printf("connect %s: %v", peerAddr, err)
		} else {
			log.Printf("connected to %s", peerAddr)
		}
	}

	stop := make(chan struct{})
	if *mine {
		assembler, ok := client.(protocol.KeyBlockAssembler)
		if !ok {
			log.Fatalf("protocol %q cannot assemble key blocks for live mining", protocol.BitcoinNG)
		}
		go mineLoop(rt, base, assembler, stop)
	}

	ticker := time.NewTicker(*status) //nglint:allow walltime live-node operator status display; not part of any simulation
	defer ticker.Stop()
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	for {
		select {
		case <-ticker.C:
			rt.Do(func() {
				tip := base.State.Tip()
				leading := false
				if l, ok := client.(protocol.Leader); ok {
					leading = l.IsLeader()
				}
				var micros uint64
				if p, ok := client.(protocol.MicroblockProducer); ok {
					micros = p.MicroblocksMined()
				}
				log.Printf("height=%d keyheight=%d tip=%s leader=%v peers=%d micro=%d",
					tip.Height, tip.KeyHeight, tip.Hash().Short(), leading,
					len(rt.Peers()), micros)
			})
		case <-sigs:
			close(stop)
			log.Printf("shutting down")
			return
		}
	}
}

// mineLoop grinds real proofs of work on the current tip, refreshing the
// template whenever the chain moves.
func mineLoop(rt *p2p.Runtime, base *node.Base, assembler protocol.KeyBlockAssembler, stop chan struct{}) {
	var tipGen atomic.Uint64 // bumped on every template refresh
	for {
		select {
		case <-stop:
			return
		default:
		}
		var blk *types.KeyBlock
		var tipHash crypto.Hash
		rt.Do(func() {
			blk = assembler.AssembleKeyBlock()
			tipHash = base.State.Tip().Hash()
		})
		gen := tipGen.Add(1)
		found := false
		for nonce := uint64(0); ; nonce++ {
			select {
			case <-stop:
				return
			default:
			}
			blk.Header.Nonce = nonce
			if crypto.CheckProofOfWork(blk.Header.Hash(), blk.Header.Target) {
				found = true
				break
			}
			// Refresh the template periodically in case the tip moved.
			if nonce%50_000 == 0 && nonce > 0 {
				var cur crypto.Hash
				rt.Do(func() { cur = base.State.Tip().Hash() })
				if cur != tipHash || tipGen.Load() != gen {
					break
				}
			}
		}
		if !found {
			continue
		}
		rt.Do(func() {
			if base.State.Tip().Hash() == tipHash {
				res := base.SubmitOwnBlock(blk)
				log.Printf("mined key block %s (status %v)", blk.Hash().Short(), res.Status)
			}
		})
	}
}
