package bitcoinng

import (
	"time"

	"bitcoinng/internal/scenario"
)

// The composable Scenario API, re-exported from internal/scenario: a
// Scenario is an ordered list of timed steps that Cluster.Play (or
// ClusterConfig.Scenario / ExperimentConfig.Scenario) executes on the event
// loop. Steps are harness-agnostic — the same script runs against an
// interactive cluster and a measured experiment.
type (
	// Scenario is an ordered list of timed steps.
	Scenario = scenario.Scenario
	// ScenarioStep is one scripted action.
	ScenarioStep = scenario.Step
	// TimedStep is a ScenarioStep armed at an offset on the event loop.
	TimedStep = scenario.TimedStep
	// ScenarioRuntime is the harness surface steps act on; Cluster and
	// the experiment runner implement it.
	ScenarioRuntime = scenario.Runtime
)

// NewScenario composes a scenario from timed steps.
func NewScenario(steps ...TimedStep) *Scenario { return scenario.New(steps...) }

// At schedules a step at the given offset from the scenario's start.
func At(offset time.Duration, step ScenarioStep) TimedStep { return scenario.At(offset, step) }

// Partition cuts the network into the given groups of node indices; nodes
// not listed join group 0.
func Partition(groups ...[]int) ScenarioStep { return scenario.Partition(groups...) }

// Heal removes the partition; chains reconcile as the next blocks announce.
func Heal() ScenarioStep { return scenario.Heal() }

// Churn sets one node's mining rate (blocks/sec); zero pauses its miner.
func Churn(node int, blocksPerSec float64) ScenarioStep { return scenario.Churn(node, blocksPerSec) }

// ChurnAll sets every node's mining rate — the §5.2 "mining power suddenly
// leaves/returns" experiments.
func ChurnAll(blocksPerSec float64) ScenarioStep { return scenario.ChurnAll(blocksPerSec) }

// Equivocate makes the given leader sign two conflicting microblocks, each
// carrying one of the transactions (nil for empty), delivered to disjoint
// parts of the network (§4.5).
func Equivocate(leader int, txA, txB *Transaction) ScenarioStep {
	return scenario.Equivocate(leader, txA, txB)
}

// LatencySpike sets the absolute factor every link's propagation delay is
// scaled by, relative to the configured model: spikes replace one another
// rather than composing, LatencySpike(1) ends the spike, and a factor ≤ 0
// is a step error.
func LatencySpike(factor float64) ScenarioStep { return scenario.LatencySpike(factor) }

// AdoptStrategy switches one node's mining strategy to a registered name
// ("honest", "selfish", "greedymine", "feethief", or a custom registration)
// mid-run — attacks can switch on, and back off, on schedule.
func AdoptStrategy(node int, name string) ScenarioStep { return scenario.AdoptStrategy(node, name) }

// Call wraps an arbitrary action — mine a block, assert mid-run state,
// print a phase report — as a named step.
func Call(name string, fn func(rt ScenarioRuntime) error) ScenarioStep {
	return scenario.Call(name, fn)
}
