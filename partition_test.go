package bitcoinng

import (
	"testing"
	"time"
)

// TestPartitionHealDeepReorg cuts a Bitcoin-NG network in half, lets both
// sides elect their own leaders and serialize divergent histories, then
// heals the cut — all scripted as a Scenario played on the event loop. The
// lighter side must reorganize onto the heavier chain — microblocks, epoch
// fee records, and UTXO state all rolling back and forward correctly — and
// the whole network must converge.
func TestPartitionHealDeepReorg(t *testing.T) {
	params := DefaultParams()
	params.RetargetWindow = 0
	params.TargetBlockInterval = 20 * time.Second
	params.MicroblockInterval = 2 * time.Second

	c, err := New(10,
		WithSeed(5),
		WithParams(params),
		WithFunding(100_000),
	)
	if err != nil {
		t.Fatal(err)
	}

	var tipA, tipB Hash
	var sideAConsistent bool
	script := NewScenario(
		// A common prefix first; then cut nodes 0-4 from 5-9.
		At(time.Minute, Call("check common prefix", func(ScenarioRuntime) error {
			if !c.Converged() && c.Node(0).KeyHeight() == 0 {
				t.Error("no common prefix built")
			}
			return nil
		})),
		At(time.Minute, Partition([]int{0, 1, 2, 3, 4}, []int{5, 6, 7, 8, 9})),
		At(4*time.Minute, Call("capture divergent tips", func(ScenarioRuntime) error {
			tipA, tipB = c.Node(0).TipID(), c.Node(5).TipID()
			sideAConsistent = true
			for i := 1; i < 5; i++ {
				if c.Node(i).TipID() != tipA {
					sideAConsistent = false
				}
			}
			return nil
		})),
		// Heal; reconciliation happens when the next blocks announce
		// across the restored links and orphan-parent chasing pulls the
		// missing branch.
		At(4*time.Minute, Heal()),
	)
	if err := c.Play(script); err != nil {
		t.Fatal(err)
	}

	if tipA == tipB {
		t.Fatal("sides did not diverge under partition")
	}
	if !sideAConsistent {
		t.Error("nodes diverged within side A")
	}

	c.Run(3 * time.Minute)

	if !c.Converged() {
		t.Fatalf("network did not converge after heal: %s vs %s",
			c.Node(0).TipID().Short(), c.Node(5).TipID().Short())
	}
	// UTXO views agree at the same tip: spot-check every node's balance
	// of every wallet.
	for i := 1; i < c.Size(); i++ {
		for j := 0; j < c.Size(); j++ {
			want := c.Node(0).Balance(c.Node(j).Address())
			if got := c.Node(i).Balance(c.Node(j).Address()); got != want {
				t.Fatalf("node %d disagrees on node %d's balance: %d vs %d", i, j, got, want)
			}
		}
	}
	// The run kept making progress after the heal.
	r := c.Report()
	if r.MiningPowerUtilization >= 1.0 {
		t.Error("partition produced no pruned key blocks — the cut did nothing")
	}
}
