package bitcoinng

import (
	"testing"
	"time"
)

// TestPartitionHealDeepReorg cuts a Bitcoin-NG network in half, lets both
// sides elect their own leaders and serialize divergent histories, then
// heals the cut. The lighter side must reorganize onto the heavier chain —
// microblocks, epoch fee records, and UTXO state all rolling back and
// forward correctly — and the whole network must converge.
func TestPartitionHealDeepReorg(t *testing.T) {
	params := DefaultParams()
	params.RetargetWindow = 0
	params.TargetBlockInterval = 20 * time.Second
	params.MicroblockInterval = 2 * time.Second

	c, err := NewCluster(ClusterConfig{
		Protocol:    BitcoinNG,
		Nodes:       10,
		Seed:        5,
		Params:      params,
		FundPerNode: 100_000,
		AutoMine:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A common prefix first.
	c.Run(time.Minute)
	if !c.Converged() && c.Node(0).KeyHeight() == 0 {
		t.Fatal("no common prefix built")
	}

	// Cut: nodes 0-4 vs 5-9.
	c.Partition([]int{0, 1, 2, 3, 4}, []int{5, 6, 7, 8, 9})
	c.Run(3 * time.Minute)

	tipA := c.Node(0).TipID()
	tipB := c.Node(5).TipID()
	if tipA == tipB {
		t.Fatal("sides did not diverge under partition")
	}
	// Each side stayed internally consistent.
	for i := 1; i < 5; i++ {
		if c.Node(i).TipID() != tipA {
			t.Errorf("node %d diverged within side A", i)
		}
	}

	// Heal; reconciliation happens when the next blocks announce across
	// the restored links and orphan-parent chasing pulls the missing
	// branch.
	c.Heal()
	c.Run(3 * time.Minute)

	if !c.Converged() {
		t.Fatalf("network did not converge after heal: %s vs %s",
			c.Node(0).TipID().Short(), c.Node(5).TipID().Short())
	}
	// UTXO views agree at the same tip: spot-check every node's balance
	// of every wallet.
	for i := 1; i < c.Size(); i++ {
		for j := 0; j < c.Size(); j++ {
			want := c.Node(0).Balance(c.Node(j).Address())
			if got := c.Node(i).Balance(c.Node(j).Address()); got != want {
				t.Fatalf("node %d disagrees on node %d's balance: %d vs %d", i, j, got, want)
			}
		}
	}
	// The run kept making progress after the heal.
	r := c.Report()
	if r.MiningPowerUtilization >= 1.0 {
		t.Error("partition produced no pruned key blocks — the cut did nothing")
	}
}
