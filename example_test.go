package bitcoinng_test

import (
	"fmt"
	"time"

	"bitcoinng"
)

// ExampleNew runs a small Bitcoin-NG network for five virtual minutes and
// reads back the §6 security metrics. Clusters are deterministic from their
// seed, so this output is exact.
func ExampleNew() {
	params := bitcoinng.DefaultParams()
	params.RetargetWindow = 0
	params.TargetBlockInterval = 30 * time.Second
	params.MicroblockInterval = 5 * time.Second

	cluster, err := bitcoinng.New(10,
		bitcoinng.WithParams(params),
		bitcoinng.WithFunding(1_000_000),
	)
	if err != nil {
		panic(err)
	}
	cluster.Run(5 * time.Minute)

	r := cluster.Report()
	fmt.Printf("key blocks: %d\n", r.PowBlocks)
	fmt.Printf("mining power utilization: %.2f\n", r.MiningPowerUtilization)
	fmt.Printf("fairness: %.2f\n", r.Fairness)
	fmt.Printf("converged: %v\n", cluster.Converged())
	// Output:
	// key blocks: 7
	// mining power utilization: 1.00
	// fairness: 1.00
	// converged: true
}

// ExampleRunExperiment executes one measured run — the unit the paper's
// figure sweeps are made of — on the emulated network.
func ExampleRunExperiment() {
	cfg := bitcoinng.DefaultExperiment(bitcoinng.BitcoinNG, 30, 7)
	cfg.TargetBlocks = 20
	cfg.Params.MaxBlockSize = 20_000
	cfg.Params.TargetBlockInterval = 60 * time.Second
	cfg.Params.MicroblockInterval = 5 * time.Second

	res, err := bitcoinng.RunExperiment(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("microblocks serialized transactions: %v\n", res.Report.TxFrequency > 0)
	fmt.Printf("mining power utilization: %.2f\n", res.Report.MiningPowerUtilization)
	// Output:
	// microblocks serialized transactions: true
	// mining power utilization: 1.00
}
