package bitcoinng

import (
	"testing"
	"time"
)

func TestClusterNGLifecycle(t *testing.T) {
	params := DefaultParams()
	params.RetargetWindow = 0
	params.TargetBlockInterval = 30 * time.Second
	params.MicroblockInterval = 5 * time.Second
	c, err := New(10, WithParams(params), WithFunding(1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	c.Run(5 * time.Minute)

	if c.Node(0).KeyHeight() == 0 {
		t.Fatal("no key blocks mined")
	}
	if c.Node(0).Height() <= c.Node(0).KeyHeight() {
		t.Error("no microblocks on chain")
	}
	// Exactly one leader at a time (on a converged cluster).
	leaders := 0
	for i := 0; i < c.Size(); i++ {
		if c.Node(i).IsLeader() {
			leaders++
		}
	}
	if leaders > 1 {
		t.Errorf("%d simultaneous leaders", leaders)
	}
	r := c.Report()
	if r.MiningPowerUtilization < 0.8 {
		t.Errorf("MPU = %.3f", r.MiningPowerUtilization)
	}
}

func TestClusterPaymentConfirms(t *testing.T) {
	params := DefaultParams()
	params.RetargetWindow = 0
	params.TargetBlockInterval = 20 * time.Second
	params.MicroblockInterval = 2 * time.Second
	c, err := New(6, WithSeed(2), WithParams(params), WithFunding(10_000))
	if err != nil {
		t.Fatal(err)
	}
	payer := c.Node(0)
	// Pay a fresh address that earns no mining rewards, so the balance
	// delta is exactly the payment.
	dest := Address{0xde, 0xad}

	// Clusters don't relay transactions (paper methodology), so hand the
	// payment to every node's pool like the pre-loaded workload would be.
	tx, err := payer.Pay(dest, 2_500, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < c.Size(); i++ {
		if err := c.Node(i).SubmitTx(tx); err != nil {
			t.Fatalf("node %d rejected tx: %v", i, err)
		}
	}
	c.Run(3 * time.Minute)

	for i := 0; i < c.Size(); i++ {
		if got := c.Node(i).Balance(dest); got != 2_500 {
			t.Errorf("node %d sees dest balance %d, want 2500", i, got)
		}
	}
	// The payer paid amount + fee; mining rewards are still immature, and
	// the wallet's maturity-aware balance excludes them.
	if got := payer.Wallet().Balance(payer.Chain()); got != 10_000-2_600 {
		t.Errorf("payer balance = %d", got)
	}
}

func TestClusterBitcoinAndGhost(t *testing.T) {
	for _, p := range []Protocol{Bitcoin, GHOST} {
		params := DefaultParams()
		params.RetargetWindow = 0
		params.TargetBlockInterval = 20 * time.Second
		c, err := New(8, WithProtocol(p), WithSeed(3), WithParams(params), WithFunding(1000))
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		c.Run(4 * time.Minute)
		if c.Node(0).Height() == 0 {
			t.Errorf("%s: no blocks", p)
		}
		if c.Node(0).IsLeader() {
			t.Errorf("%s: leadership outside bitcoin-ng", p)
		}
	}
}

func TestClusterChurn(t *testing.T) {
	// §5.2: a sudden mining power drop stalls key blocks but microblocks
	// keep serializing under the incumbent leader.
	params := DefaultParams()
	params.RetargetWindow = 0
	params.TargetBlockInterval = 20 * time.Second
	params.MicroblockInterval = 2 * time.Second
	c, err := New(6, WithSeed(4), WithParams(params), WithFunding(1000))
	if err != nil {
		t.Fatal(err)
	}
	c.Run(2 * time.Minute)
	heightBefore := c.Node(0).Height()
	keysBefore := c.Node(0).KeyHeight()
	if keysBefore == 0 {
		t.Fatal("no key blocks before churn")
	}
	// 95% of mining power vanishes.
	for i := 0; i < c.Size(); i++ {
		c.Node(i).SetMiningRate(0.0001)
	}
	c.Run(2 * time.Minute)
	if c.Node(0).Height() <= heightBefore {
		t.Error("transaction serialization stopped during mining power drop")
	}
}

func TestClusterDeterminism(t *testing.T) {
	mk := func() Hash {
		c, err := New(5, WithSeed(9), WithFunding(1000))
		if err != nil {
			t.Fatal(err)
		}
		c.Run(5 * time.Minute)
		return c.Node(0).TipID()
	}
	if mk() != mk() {
		t.Error("same seed produced different cluster histories")
	}
}

// TestGossipRefetchUnderChurnAndLoss drives the block-fetch re-request path
// through churn: blocks flow while part of the network is partitioned off
// (getdata round trips are lost), the partition heals, and all mining then
// churns to zero. Every fetch must eventually resolve or give up — no
// pending entry may outlive the run and no stale timer may keep
// re-requesting — and the network must converge on one chain.
func TestGossipRefetchUnderChurnAndLoss(t *testing.T) {
	params := DefaultParams()
	params.RetargetWindow = 0
	params.TargetBlockInterval = 2 * time.Second
	params.FetchTimeout = 3 * time.Second

	// The Bitcoin client shares the node.Base gossip layer and, unlike
	// Bitcoin-NG, goes fully quiescent when mining churns to zero (an NG
	// leader keeps issuing microblocks forever), so "every fetch drains"
	// is a meaningful end-state invariant here.
	c, err := New(8,
		WithSeed(11),
		WithProtocol(Bitcoin),
		WithParams(params),
		WithScenario(NewScenario(
			At(2*time.Second, Partition([]int{0, 1})),
			At(14*time.Second, Heal()),
			At(18*time.Second, ChurnAll(0)), // churn: all mining power leaves
		)),
	)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(45 * time.Second) // past the last step plus several retry rounds
	if errs := c.ScenarioErrors(); len(errs) > 0 {
		t.Fatalf("scenario errors: %v", errs)
	}
	if got := c.net.Stats().MessagesLost; got == 0 {
		t.Fatal("partition lost no messages; the loss path was not exercised")
	}
	for i := 0; i < c.Size(); i++ {
		if got := c.nodes[i].base.Gossip.PendingFetches(); got != 0 {
			t.Errorf("node %d still has %d pending fetches after quiescence", i, got)
		}
	}
	if !c.Converged() {
		t.Error("network did not converge after churn and loss")
	}
}
