// Package protocol is the consensus-client registry: every way of running a
// node — interactive clusters (the root package), measured experiments
// (internal/experiment), and live binaries (cmd/ngnode) — assembles its
// clients through one Build call, so a new protocol variant (an attack
// client, a parameter fork) plugs into every harness by registering a
// constructor, without touching any of them.
//
// A protocol implementation satisfies Client: the universal surface the
// harnesses drive. Everything beyond it — leadership, equivocation, live
// key-block assembly — is an optional capability discovered by interface
// assertion, so protocols expose exactly what they implement and harness
// features degrade gracefully on clients that lack them.
package protocol

import (
	"fmt"

	"bitcoinng/internal/chain"
	"bitcoinng/internal/crypto"
	"bitcoinng/internal/node"
	"bitcoinng/internal/strategy"
	"bitcoinng/internal/types"
	"bitcoinng/internal/validate"
)

// Protocol names a registered consensus client implementation.
type Protocol string

// The built-in protocols, registered at package init.
const (
	// Bitcoin is the baseline Nakamoto blockchain (§3 of the paper).
	Bitcoin Protocol = "bitcoin"
	// BitcoinNG is the paper's contribution (§4): key blocks elect
	// leaders, microblocks serialize transactions.
	BitcoinNG Protocol = "bitcoin-ng"
	// GHOST is the heaviest-subtree baseline discussed in §9.
	GHOST Protocol = "ghost"
)

// Spec carries everything a client constructor needs. One Spec vocabulary
// serves every registered protocol; constructors ignore fields that do not
// apply to them.
type Spec struct {
	// Protocol selects the registered constructor.
	Protocol Protocol
	// Params are the consensus parameters under test.
	Params types.Params
	// Key signs the node's blocks (microblocks while leading, under NG)
	// and receives its rewards.
	Key *crypto.PrivateKey
	// Genesis is the shared genesis block.
	Genesis *types.PowBlock
	// Recorder receives metric events; nil discards them.
	Recorder node.Recorder
	// SimulatedMining marks blocks as scheduler-generated and accepts such
	// blocks from peers; live nodes leave it false and grind real nonces.
	SimulatedMining bool
	// CensorTransactions makes an NG node publish empty microblocks while
	// leading (§5.2 "Censorship Resistance"); other protocols ignore it.
	CensorTransactions bool
	// ConnectCache shares memoized connect-stage verdicts (UTXO deltas,
	// fees) between every node whose validation rules fingerprint matches
	// — the harnesses pass validate.Shared() so the 2nd..Nth node
	// connecting a block replays the first node's work. nil validates
	// everything locally.
	ConnectCache *validate.Cache
	// Strategy is the node's mining strategy (internal/strategy): which
	// block its key blocks extend, publish-vs-withhold decisions, and the
	// coinbase fee split. nil runs honest. Strategies bend production
	// choices only — validation of received blocks is unaffected, so the
	// connect cache stays shareable across strategies. Protocols without
	// strategic freedom ignore it.
	Strategy strategy.Strategy
	// UTXO, when set, is the node's ledger storage backend (internal/store
	// builds them from a locator); it must be empty or freshly Reset, since
	// the chain applies genesis into it. nil keeps the in-memory set.
	UTXO chain.UTXOStore
}

// Client is a running consensus protocol node: the surface every harness
// (cluster, experiment runner, live binary) drives, regardless of protocol.
type Client interface {
	// Base returns the protocol-independent node core (chain state,
	// mempool, gossip, metrics wiring).
	Base() *node.Base
	// HandleMessage is the node's network entry point.
	HandleMessage(from int, msg node.Message)
	// MineBlock forces one proof-of-work block find now — a key block
	// under Bitcoin-NG, a regular block otherwise — and returns it. It is
	// the simulated miner's onFind callback.
	MineBlock() types.Block
}

// CensorSet validates censor node indices against the network size and
// returns a membership set; both harnesses build their per-node
// Spec.CensorTransactions from it. Errors are left unprefixed for callers
// to wrap with their package name.
func CensorSet(nodes int, censors []int) (map[int]bool, error) {
	set := make(map[int]bool, len(censors))
	for _, id := range censors {
		if id < 0 || id >= nodes {
			return nil, fmt.Errorf("censor node %d out of range (network size %d)", id, nodes)
		}
		set[id] = true
	}
	return set, nil
}

// EquivocationVictim picks which node privately receives the second
// conflicting microblock: the leader's successor in index order. Both
// harnesses route through this, so the §4.5 delivery policy has one home.
func EquivocationVictim(leaderID, nodes int) int { return (leaderID + 1) % nodes }

// PublishEquivocation drives the §4.5 split-brain attack on a built
// network: leader — which must implement Equivocator and currently lead —
// signs two conflicting microblocks, each carrying one of the transactions
// (nil for empty); the first is published normally, the second slipped
// directly to victim (chosen via EquivocationVictim), as a targeted
// attacker would. Both harnesses (cluster and experiment runner) share this
// delivery policy.
func PublishEquivocation(leaderID int, leader, victim Client, txA, txB *types.Transaction) (*types.MicroBlock, *types.MicroBlock, error) {
	eq, ok := leader.(Equivocator)
	if !ok {
		return nil, nil, fmt.Errorf("protocol: client cannot equivocate")
	}
	mbA, mbB, err := eq.Equivocate(txA, txB)
	if err != nil {
		return nil, nil, err
	}
	leader.Base().ProcessBlock(mbA, -1)
	victim.Base().ProcessFn(mbB, leaderID)
	return mbA, mbB, nil
}

// Optional capabilities, discovered via interface assertion on a Client.
// Bitcoin-NG implements all of them; a custom protocol implements whichever
// subset it supports and the harnesses adapt.
type (
	// Leader is implemented by protocols with a notion of a current
	// leader (Bitcoin-NG: the miner of the latest key block).
	Leader interface {
		IsLeader() bool
	}

	// MicroblockProducer reports microblock production counts.
	MicroblockProducer interface {
		MicroblocksMined() uint64
	}

	// FraudWitness reports how many leader equivocations the node has
	// witnessed and holds poison evidence for (§4.5).
	FraudWitness interface {
		FraudsDetected() int
	}

	// Equivocator is implemented by clients that can act as a malicious
	// leader: sign two conflicting microblocks on the current tip for the
	// caller to deliver to disjoint parts of the network (§4.5).
	Equivocator interface {
		Equivocate(txA, txB *types.Transaction) (*types.MicroBlock, *types.MicroBlock, error)
	}

	// KeyBlockAssembler builds (without submitting) the next key block;
	// live miners grind nonces on the result out of the event loop.
	KeyBlockAssembler interface {
		AssembleKeyBlock() *types.KeyBlock
	}

	// Strategic is implemented by clients whose mining strategy can be
	// inspected and switched at runtime (the scenario layer's
	// AdoptStrategy step). SetStrategy(nil) restores honest; switching
	// abandons any blocks the previous strategy was withholding.
	Strategic interface {
		StrategyName() string
		SetStrategy(s strategy.Strategy)
	}
)

// AdoptStrategy switches a client's mining strategy to the registered name;
// both harnesses route their AdoptStrategy runtime step through this so the
// capability check and instantiation have one home. Errors are left
// unprefixed for callers to wrap with their package name.
func AdoptStrategy(c Client, name string) error {
	sc, ok := c.(Strategic)
	if !ok {
		return fmt.Errorf("client cannot switch mining strategy")
	}
	s, err := strategy.New(name)
	if err != nil {
		return err
	}
	sc.SetStrategy(s)
	return nil
}
