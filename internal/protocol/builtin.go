package protocol

import (
	"bitcoinng/internal/bitcoin"
	"bitcoinng/internal/core"
	"bitcoinng/internal/ghost"
	"bitcoinng/internal/node"
	"bitcoinng/internal/types"
)

func init() {
	MustRegister(Bitcoin, Registration{New: newBitcoin, Payload: types.KindPow})
	MustRegister(GHOST, Registration{New: newGHOST, Payload: types.KindPow})
	MustRegister(BitcoinNG, Registration{New: newBitcoinNG, Payload: types.KindMicro})
}

func bitcoinConfig(spec Spec) bitcoin.Config {
	return bitcoin.Config{
		Params:          spec.Params,
		Key:             spec.Key,
		Genesis:         spec.Genesis,
		Recorder:        spec.Recorder,
		SimulatedMining: spec.SimulatedMining,
		ConnectCache:    spec.ConnectCache,
		UTXO:            spec.UTXO,
	}
}

// bitcoinClient adapts *bitcoin.Node (which GHOST shares) to Client.
type bitcoinClient struct{ *bitcoin.Node }

func (c bitcoinClient) Base() *node.Base       { return c.Node.Base }
func (c bitcoinClient) MineBlock() types.Block { return c.Node.MineBlock() }

func newBitcoin(env node.Env, spec Spec) (Client, error) {
	n, err := bitcoin.New(env, bitcoinConfig(spec))
	if err != nil {
		return nil, err
	}
	return bitcoinClient{n}, nil
}

func newGHOST(env node.Env, spec Spec) (Client, error) {
	n, err := ghost.New(env, bitcoinConfig(spec))
	if err != nil {
		return nil, err
	}
	return bitcoinClient{n}, nil
}

// ngClient adapts *core.Node to Client. IsLeader, MicroblocksMined,
// Equivocate, and AssembleKeyBlock promote from the embedded node, so the
// adapter satisfies every optional capability.
type ngClient struct{ *core.Node }

func (c ngClient) Base() *node.Base       { return c.Node.Base }
func (c ngClient) MineBlock() types.Block { return c.Node.MineKeyBlock() }
func (c ngClient) FraudsDetected() int    { return len(c.Node.KnownFrauds()) }

func newBitcoinNG(env node.Env, spec Spec) (Client, error) {
	n, err := core.New(env, core.Config{
		Params:             spec.Params,
		Key:                spec.Key,
		Genesis:            spec.Genesis,
		Recorder:           spec.Recorder,
		SimulatedMining:    spec.SimulatedMining,
		CensorTransactions: spec.CensorTransactions,
		ConnectCache:       spec.ConnectCache,
		Strategy:           spec.Strategy,
		UTXO:               spec.UTXO,
	})
	if err != nil {
		return nil, err
	}
	return ngClient{n}, nil
}
