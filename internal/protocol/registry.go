package protocol

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"bitcoinng/internal/node"
	"bitcoinng/internal/types"
)

// ErrUnknownProtocol is wrapped by Build when the requested protocol has no
// registration; every harness surfaces this one error for a bad name.
var ErrUnknownProtocol = errors.New("protocol: unknown protocol")

// Registration describes one protocol implementation.
type Registration struct {
	// New constructs a client of this protocol on env.
	New func(env node.Env, spec Spec) (Client, error)
	// Payload is the block kind that carries the transaction payload:
	// KindMicro for Bitcoin-NG, KindPow for Bitcoin-style chains. The
	// experiment harness counts payload blocks toward its stop rule.
	Payload types.BlockKind
}

var (
	regMu    sync.RWMutex
	registry = make(map[Protocol]Registration)
)

// Register adds a protocol to the registry. It errors on an empty name, a
// nil constructor, or a duplicate registration.
func Register(name Protocol, reg Registration) error {
	if name == "" {
		return fmt.Errorf("protocol: registration needs a name")
	}
	if reg.New == nil {
		return fmt.Errorf("protocol: registration of %q needs a constructor", name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("protocol: %q already registered", name)
	}
	registry[name] = reg
	return nil
}

// MustRegister is Register that panics on error; package init paths use it.
func MustRegister(name Protocol, reg Registration) {
	if err := Register(name, reg); err != nil {
		panic(err)
	}
}

// Build constructs a client of spec.Protocol on env. An unregistered name
// returns an error wrapping ErrUnknownProtocol that lists what is available.
func Build(env node.Env, spec Spec) (Client, error) {
	regMu.RLock()
	reg, ok := registry[spec.Protocol]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q (registered: %s)",
			ErrUnknownProtocol, spec.Protocol, strings.Join(Names(), ", "))
	}
	return reg.New(env, spec)
}

// Payload returns the registered payload block kind for the protocol;
// unregistered names default to KindPow.
func Payload(name Protocol) types.BlockKind {
	regMu.RLock()
	defer regMu.RUnlock()
	if reg, ok := registry[name]; ok {
		return reg.Payload
	}
	return types.KindPow
}

// Names returns the registered protocol names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, string(name))
	}
	sort.Strings(out)
	return out
}
