package chaos

import (
	"testing"

	"bitcoinng/internal/experiment"
)

// fuzzGen keeps per-execution cost low enough for a fuzzing campaign
// (roughly 100-200ms per input on a laptop core): small networks, few
// payload blocks, at most two disruption phases.
var fuzzGen = GenConfig{
	MinNodes: 6, MaxNodes: 8,
	MinBlocks: 4, MaxBlocks: 6,
	MaxPhases: 2,
}

// FuzzScenario drives the whole chaos pipeline from a single fuzzed seed:
// generate a random-but-valid scenario, run it, and fail on any run error,
// scenario-step error, or invariant violation. The corpus under
// testdata/fuzz/FuzzScenario replays in ordinary `go test` runs, so every
// interesting seed the fuzzer ever finds becomes a permanent regression
// test the moment it is committed (see also testdata/seeds for full-scale
// replays).
//
//	go test -fuzz=FuzzScenario -fuzztime=60s ./internal/chaos
func FuzzScenario(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Add(int64(-1))
	f.Add(int64(1 << 40))
	f.Fuzz(func(t *testing.T, seed int64) {
		gen := Generate(fuzzGen, seed)
		res, err := experiment.Run(gen.Cfg)
		if err := Verdict(seed, res, err); err != nil {
			t.Fatalf("%s\nprogram: %s", err, gen.Desc)
		}
	})
}
