package chaos

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"bitcoinng/internal/experiment"
)

// Digest renders everything engine-independent about a result as a
// canonical string: the full metrics report, network totals, virtual
// duration, per-node revenue, scenario errors, and invariant violations.
// Two runs of the same seed must produce byte-identical digests at any
// Parallelism and with the connect cache on or off — the differential
// checker's failure condition is exactly a digest mismatch. Wall time and
// executed-event counts are deliberately excluded: they legitimately vary
// with the engine.
func Digest(res *experiment.Result) string {
	var b strings.Builder
	r := res.Report
	fmt.Fprintf(&b, "blocks=%d main=%d pow=%d mainpow=%d\n",
		r.Blocks, r.MainChainBlocks, r.PowBlocks, r.MainPowBlocks)
	fmt.Fprintf(&b, "consensus=%v fairness=%v mpu=%v prune=%v win=%v\n",
		r.ConsensusDelay, r.Fairness, r.MiningPowerUtilization, r.TimeToPrune, r.TimeToWin)
	fmt.Fprintf(&b, "txfreq=%v payload=%v forks=%v prop=%v/%v/%v\n",
		r.TxFrequency, r.PayloadBytesPerSec, r.ForksPerPowBlock,
		r.PropagationP25, r.PropagationP50, r.PropagationP75)
	fmt.Fprintf(&b, "sim=%v msgs=%d bytes=%d lost=%d drop=%d dup=%d reorder=%d maxqueue=%v\n",
		res.SimTime, res.NetStats.MessagesSent, res.NetStats.BytesSent,
		res.NetStats.MessagesLost, res.NetStats.MessagesDropped,
		res.NetStats.MessagesDuplicated, res.NetStats.MessagesReordered,
		res.NetStats.MaxQueueDelay)
	fmt.Fprintf(&b, "revenue=%v\n", res.Revenue)
	if res.Load != nil {
		l := res.Load
		fmt.Fprintf(&b, "load mode=%s offered=%d admitted=%d rejected=%d confirmed=%d p50=%v p90=%v p99=%v\n",
			l.Mode, l.Offered, l.Admitted, l.Offered-l.Admitted, l.Confirmed, l.P50, l.P90, l.P99)
	}
	for _, s := range res.Backpressure {
		fmt.Fprintf(&b, "bp %s samples=%d last=%g mean=%g max=%g\n",
			s.Name, s.Samples, s.Last, s.Mean, s.Max)
	}
	for _, e := range res.ScenarioErrors {
		fmt.Fprintf(&b, "scenario-error: %v\n", e)
	}
	for _, v := range res.InvariantViolations {
		fmt.Fprintf(&b, "violation: %s\n", v)
	}
	return b.String()
}

// ShortDigest is the first 8 hex characters of the digest's SHA-256 — a
// compact fingerprint for soak tables.
func ShortDigest(digest string) string {
	sum := sha256.Sum256([]byte(digest))
	return hex.EncodeToString(sum[:4])
}

// firstDiff returns the first line where two digests disagree, for error
// reports.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) || i < len(bl); i++ {
		var la, lb string
		if i < len(al) {
			la = al[i]
		}
		if i < len(bl) {
			lb = bl[i]
		}
		if la != lb {
			return fmt.Sprintf("line %d: %q vs %q", i+1, la, lb)
		}
	}
	return "digests equal"
}
