package chaos

import (
	"bytes"
	"reflect"
	"testing"

	"bitcoinng/internal/experiment"
)

// TestGenerateDeterministic: generation is a pure function of (config,
// seed) — identical programs, step schedules, and invariant wiring on every
// call — and different seeds actually explore different programs.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenConfig{}, 42)
	b := Generate(GenConfig{}, 42)
	if a.Desc != b.Desc {
		t.Fatalf("same seed, different programs:\n%s\n%s", a.Desc, b.Desc)
	}
	if len(a.Cfg.Scenario.Steps) != len(b.Cfg.Scenario.Steps) {
		t.Fatalf("same seed, different step counts: %d vs %d",
			len(a.Cfg.Scenario.Steps), len(b.Cfg.Scenario.Steps))
	}
	for i := range a.Cfg.Scenario.Steps {
		sa, sb := a.Cfg.Scenario.Steps[i], b.Cfg.Scenario.Steps[i]
		if sa.Offset != sb.Offset || sa.Step.Name != sb.Step.Name {
			t.Fatalf("step %d differs: %v %q vs %v %q",
				i, sa.Offset, sa.Step.Name, sb.Offset, sb.Step.Name)
		}
	}
	if !reflect.DeepEqual(a.Cfg.Strategies, b.Cfg.Strategies) ||
		!reflect.DeepEqual(a.Cfg.MiningShares, b.Cfg.MiningShares) {
		t.Fatal("same seed, different strategies or shares")
	}

	seen := map[string]bool{}
	for seed := int64(1); seed <= 12; seed++ {
		seen[Generate(GenConfig{}, seed).Desc] = true
	}
	if len(seen) < 10 {
		t.Errorf("12 seeds produced only %d distinct programs", len(seen))
	}
}

// TestRunDeterministic is the acceptance property "same seed => byte-
// identical report": two full executions of one generated scenario produce
// identical digests.
func TestRunDeterministic(t *testing.T) {
	gen := Generate(GenConfig{}, 5) // includes a partition phase
	r1, err := experiment.Run(gen.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := experiment.Run(gen.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	d1, d2 := Digest(r1), Digest(r2)
	if d1 != d2 {
		t.Fatalf("same seed diverged: %s", firstDiff(d1, d2))
	}
	if err := Verdict(gen.Seed, r1, nil); err != nil {
		t.Fatalf("seed 5 not clean: %v", err)
	}
}

// TestDifferential: the engine/cache cross-check passes on generated
// scenarios — parallelism 1 vs 4, connect cache on vs off.
func TestDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("3x replay per seed")
	}
	for _, seed := range []int64{2, 5} { // selfish+spike; partition+spike+adopt
		if err := Differential(Generate(GenConfig{}, seed)); err != nil {
			t.Errorf("differential failed: %v", err)
		}
	}
}

// TestSoakDeterministic: a whole campaign is a pure function of its
// configuration — two Soak calls render byte-identical reports.
func TestSoakDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 2x4 scenarios")
	}
	cfg := SoakConfig{Seeds: 4, BaseSeed: 1, Parallelism: 2}
	var out1, out2 bytes.Buffer
	r1, err := Soak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1.Fprint(&out1)
	r2, err := Soak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2.Fprint(&out2)
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Fatalf("soak reports differ:\n--- first\n%s--- second\n%s", out1.String(), out2.String())
	}
	if fails := r1.Failures(); len(fails) != 0 {
		t.Fatalf("soak seeds not clean: %v", fails)
	}
}
