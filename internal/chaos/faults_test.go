package chaos

import (
	"testing"
	"time"

	"bitcoinng/internal/experiment"
	"bitcoinng/internal/invariant"
	"bitcoinng/internal/scenario"
)

// majorityCrashConfig builds the acceptance scenario fresh for one engine
// variant: a Bitcoin-NG network where a majority of nodes — including
// whoever leads the current epoch, mid-epoch — crash simultaneously, stay
// down across key-block boundaries, then restart, recover their durable
// prefixes, and catch up over the sync protocol. Each call returns an
// independent config (fresh scenario closures, fresh crashed-set) so the
// differential variants cannot leak state into each other.
func majorityCrashConfig(parallelism int, cacheOff bool) experiment.Config {
	const nodes = 7
	cfg := experiment.DefaultConfig(experiment.BitcoinNG, nodes, 4242)
	cfg.Params.MaxBlockSize = 20_000
	cfg.Params.TargetBlockInterval = 30 * time.Second
	cfg.Params.MicroblockInterval = 5 * time.Second
	cfg.TargetBlocks = 15
	cfg.Parallelism = parallelism
	cfg.DisableConnectCache = cacheOff
	cfg.Invariants = invariant.Defaults(invariant.Options{
		ForkBound: 6, ConvergenceDepth: 2, SettleGrace: time.Minute,
	})
	cfg.InvariantInterval = 15 * time.Second

	var crashed []int
	cfg.Scenario = scenario.New(
		scenario.At(3*time.Minute, scenario.Call("crash-majority", func(rt scenario.Runtime) error {
			// The current epoch leader goes down first — mid-epoch, with
			// signed microblocks already durable — then enough others to
			// make it 4 of 7.
			leader := rt.Leader()
			if leader < 0 {
				leader = 0
			}
			crashed = append(crashed[:0], leader)
			if err := rt.Crash(leader); err != nil {
				return err
			}
			for i := 0; len(crashed) < nodes/2+1; i++ {
				if i == leader {
					continue
				}
				crashed = append(crashed, i)
				if err := rt.Crash(i); err != nil {
					return err
				}
			}
			return nil
		})),
		scenario.At(5*time.Minute, scenario.Call("restart-majority", func(rt scenario.Runtime) error {
			for _, i := range crashed {
				if err := rt.Restart(i); err != nil {
					return err
				}
			}
			return nil
		})),
		scenario.At(10*time.Minute, scenario.Call("settle", func(scenario.Runtime) error { return nil })),
	)
	return cfg
}

// TestMajorityCrashConverges is the PR's acceptance scenario: majority
// crash including the mid-epoch leader, zero invariant violations, and a
// byte-identical chaos digest across both sim engines and both cache modes.
func TestMajorityCrashConverges(t *testing.T) {
	var base string
	for i, v := range diffVariants {
		if i > 0 && testing.Short() {
			break // the differential replay triples the cost
		}
		res, err := experiment.Run(majorityCrashConfig(v.parallelism, v.cacheOff))
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if len(res.ScenarioErrors) != 0 {
			t.Fatalf("%s: scenario errors: %v", v.name, res.ScenarioErrors)
		}
		for _, viol := range res.InvariantViolations {
			t.Errorf("%s: invariant violation: %s", v.name, viol)
		}
		d := Digest(res)
		if i == 0 {
			base = d
			continue
		}
		if d != base {
			t.Errorf("digest diverges between %s and %s: %s",
				diffVariants[0].name, v.name, firstDiff(base, d))
		}
	}
}
