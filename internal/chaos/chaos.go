// Package chaos is the randomized-scenario fuzzing engine: it composes
// random-but-valid adversarial programs from the scenario vocabulary
// (partitions, heals, mining churn, leader equivocation, latency spikes,
// strategy switches) over random topologies, mining-share distributions,
// and attacker mixes, runs them under the full online invariant catalogue
// (internal/invariant), and differentially replays every seed across the
// two execution engines (sequential vs sharded) and with the connect cache
// on vs off.
//
// The ROADMAP's north star demands "as many scenarios as you can imagine";
// Niu et al. ("Incentive Analysis of Bitcoin-NG, Revisited") show the
// interesting violations live in combinations of strategy, timing, and
// topology that hand-written scenarios do not enumerate. This package is
// the machine that imagines them: every generated run derives from a single
// int64 seed through sim.NewRand, so a failure anywhere — a soak job, a
// fuzzing campaign, a one-off report — is replayed exactly by re-running
// the seed, and committed to testdata/seeds as a permanent regression.
package chaos

import (
	"fmt"

	"bitcoinng/internal/experiment"
)

// Generated is one fully assembled chaos run: the experiment configuration
// (scenario, strategies, invariants, shares all armed) plus a deterministic
// one-line description of the program for reports.
type Generated struct {
	// Seed reproduces the run: Generate(gen, Seed) returns an identical
	// configuration, and the configuration's own Seed field drives the
	// simulation.
	Seed int64
	// Cfg is ready for experiment.Run. Callers may adjust engine knobs
	// (Parallelism, DisableConnectCache) — the differential checker does —
	// but anything that changes the simulated behaviour breaks replay.
	Cfg experiment.Config
	// Desc summarizes the generated program (protocol, scale, adversaries,
	// step timeline); a pure function of the seed and generator config.
	Desc string
}

// Failure classifies why a chaos run is considered failed.
type Failure struct {
	Seed int64
	// Err is the run error, first invariant violation, or scenario-step
	// failure.
	Err error
}

func (f Failure) Error() string { return fmt.Sprintf("seed %d: %v", f.Seed, f.Err) }

// Verdict evaluates one completed run: a hard run error, any scenario-step
// error (the generator only emits valid steps, so a step failure is a
// harness bug), or any invariant violation fails the seed.
func Verdict(seed int64, res *experiment.Result, err error) error {
	if err != nil {
		return Failure{Seed: seed, Err: err}
	}
	if len(res.ScenarioErrors) > 0 {
		return Failure{Seed: seed, Err: fmt.Errorf("scenario step failed: %w", res.ScenarioErrors[0])}
	}
	if len(res.InvariantViolations) > 0 {
		return Failure{Seed: seed, Err: fmt.Errorf("invariant violated: %s", res.InvariantViolations[0])}
	}
	return nil
}
