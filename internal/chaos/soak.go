package chaos

import (
	"fmt"
	"io"

	"bitcoinng/internal/experiment"
	"bitcoinng/internal/invariant"
)

// SoakConfig sizes a soak campaign.
type SoakConfig struct {
	// Seeds is how many scenarios to generate and run; default 50.
	Seeds int
	// BaseSeed is the first seed; seeds run BaseSeed..BaseSeed+Seeds-1.
	// Zero is a valid base (replaying a seed-0 failure must not silently
	// run a different seed); ngbench supplies the default of 1.
	BaseSeed int64
	// Gen bounds the generator.
	Gen GenConfig
	// Parallelism bounds the experiment.Sweep worker pool the runs execute
	// on; 0 takes GOMAXPROCS.
	Parallelism int
	// Differential additionally replays every seed under the sharded engine
	// and with the connect cache off, failing any digest divergence. Tripling
	// the work, it is the default for CI soaks (cheap at chaos scale).
	Differential bool
}

// SeedOutcome is one seed's result in a soak report.
type SeedOutcome struct {
	Gen Generated
	// Digest is the canonical result digest of the baseline run (empty when
	// the run itself errored).
	Digest string
	// Violations are the baseline run's invariant violations.
	Violations []invariant.Violation
	// Err is the seed's failure — run error, scenario-step error, invariant
	// violation, or differential divergence — nil when clean.
	Err error
}

// SoakReport is a completed campaign.
type SoakReport struct {
	Cfg      SoakConfig
	Outcomes []SeedOutcome
}

// Failures lists every failed seed's error, in seed order.
func (r *SoakReport) Failures() []error {
	var out []error
	for i := range r.Outcomes {
		if err := r.Outcomes[i].Err; err != nil {
			out = append(out, err)
		}
	}
	return out
}

// Soak generates Seeds scenarios and runs them (and, with Differential,
// their engine/cache replays) concurrently on the experiment.Sweep pool.
// The returned report is a pure function of the configuration: same
// SoakConfig, byte-identical Fprint output — proven by
// TestSoakDeterministic and relied on by the CI soak gate.
//
// Soak itself never fails a campaign; callers decide what to do with
// report.Failures(). Returns an error only when the harness could not even
// execute (a Sweep infrastructure failure).
func Soak(cfg SoakConfig) (*SoakReport, error) {
	if cfg.Seeds <= 0 {
		cfg.Seeds = 50
	}

	gens := make([]Generated, cfg.Seeds)
	for i := range gens {
		gens[i] = Generate(cfg.Gen, cfg.BaseSeed+int64(i))
	}

	// Flatten (seed x variant) into one sweep so the pool keeps every core
	// busy; variant 0 is always the baseline.
	variants := diffVariants[:1]
	if cfg.Differential {
		variants = diffVariants
	}
	cfgs := make([]experiment.Config, 0, len(gens)*len(variants))
	for _, gen := range gens {
		for _, v := range variants {
			cfgs = append(cfgs, variantConfig(gen, v))
		}
	}
	results, sweepErr := experiment.Sweep(cfgs, cfg.Parallelism)

	report := &SoakReport{Cfg: cfg, Outcomes: make([]SeedOutcome, len(gens))}
	for i, gen := range gens {
		out := &report.Outcomes[i]
		out.Gen = gen
		base := results[i*len(variants)]
		if base == nil {
			out.Err = Failure{Seed: gen.Seed,
				Err: fmt.Errorf("run failed: %w", rerunError(gen, variants[0], sweepErr))}
			continue
		}
		out.Digest = Digest(base)
		out.Violations = base.InvariantViolations
		if err := Verdict(gen.Seed, base, nil); err != nil {
			out.Err = err
			continue
		}
		for j := 1; j < len(variants); j++ {
			res := results[i*len(variants)+j]
			if res == nil {
				out.Err = Failure{Seed: gen.Seed, Err: fmt.Errorf(
					"differential %s failed: %w", variants[j].name,
					rerunError(gen, variants[j], sweepErr))}
				break
			}
			if d := Digest(res); d != out.Digest {
				out.Err = Failure{Seed: gen.Seed, Err: fmt.Errorf(
					"differential divergence between %s and %s: %s",
					variants[0].name, variants[j].name, firstDiff(out.Digest, d))}
				break
			}
		}
	}
	return report, nil
}

// rerunError recovers a failed sweep point's own error: experiment.Sweep
// only surfaces the joined errors of every failed point, which would
// misattribute other seeds' failures to this row, so the (rare, already
// failing) configuration is re-run sequentially for its exact error. Runs
// are seed-deterministic, so the failure reproduces; if it somehow does
// not, the aggregate is returned rather than claiming success.
func rerunError(gen Generated, v engineVariant, sweepErr error) error {
	if _, err := experiment.Run(variantConfig(gen, v)); err != nil {
		return err
	}
	return fmt.Errorf("not reproducible sequentially; sweep reported: %v", sweepErr)
}

// Fprint writes the campaign as a deterministic table: one row per seed
// with its verdict, digest fingerprint, and generated program, then every
// failure in detail, then the summary line. CI diffs this output across
// engines; nothing host- or timing-dependent may appear here.
func (r *SoakReport) Fprint(w io.Writer) {
	diff := "off"
	if r.Cfg.Differential {
		diff = "on"
	}
	fmt.Fprintf(w, "chaos soak: %d seeds from %d, differential %s\n",
		r.Cfg.Seeds, r.Cfg.BaseSeed, diff)
	fmt.Fprintf(w, "%6s  %-4s  %-8s  %s\n", "seed", "ok", "digest", "program")
	for i := range r.Outcomes {
		o := &r.Outcomes[i]
		verdict := "ok"
		if o.Err != nil {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "%6d  %-4s  %-8s  %s\n",
			o.Gen.Seed, verdict, ShortDigest(o.Digest), o.Gen.Desc)
	}
	failures := r.Failures()
	for _, err := range failures {
		fmt.Fprintf(w, "FAIL %v\n", err)
	}
	fmt.Fprintf(w, "chaos soak: %d/%d seeds clean\n",
		len(r.Outcomes)-len(failures), len(r.Outcomes))
}
