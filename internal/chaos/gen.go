package chaos

import (
	"fmt"
	"strings"
	"time"

	"bitcoinng/internal/experiment"
	"bitcoinng/internal/invariant"
	"bitcoinng/internal/scenario"
	"bitcoinng/internal/sim"
	"bitcoinng/internal/strategy"
)

// genStream separates the generator's random stream from the simulation's
// own streams (which also derive from the seed).
const genStream = 0xC4A0F022

// GenConfig bounds the generator. The zero value takes laptop-scale
// defaults sized so a single run finishes in well under a second; Soak and
// the fuzz targets rely on that.
type GenConfig struct {
	// MinNodes and MaxNodes bound the network size. Defaults 8 and 14.
	MinNodes, MaxNodes int
	// MinBlocks and MaxBlocks bound the payload-block target. Defaults 6
	// and 12.
	MinBlocks, MaxBlocks int
	// MaxPhases bounds the number of disruption phases (each phase is one
	// partition window, latency spike, churn dip, equivocation, or strategy
	// switch). Default 4; at least one phase is always generated.
	MaxPhases int
	// ForkBound is the k of the no-honest-fork-beyond-k invariant.
	// Default 6.
	ForkBound int
	// Bitcoin6 and Ghost6 weight the protocol draw out of 6: a run is
	// Bitcoin with Bitcoin6/6 probability, GHOST with Ghost6/6, Bitcoin-NG
	// otherwise. Defaults 1 and 1 (NG 4/6) — NG is the contribution under
	// test; the baselines keep the generic machinery honest.
	Bitcoin6, Ghost6 int
	// Faults6 weights the crash/restart + lossy-link fault block out of 6:
	// a run draws fault phases with Faults6/6 probability. Default 3;
	// negative disables faults entirely.
	Faults6 int
}

func (g GenConfig) withDefaults() GenConfig {
	if g.MinNodes <= 0 {
		g.MinNodes = 8
	}
	if g.MaxNodes < g.MinNodes {
		g.MaxNodes = g.MinNodes + 6
	}
	if g.MinBlocks <= 0 {
		g.MinBlocks = 6
	}
	if g.MaxBlocks < g.MinBlocks {
		g.MaxBlocks = g.MinBlocks + 6
	}
	if g.MaxPhases <= 0 {
		g.MaxPhases = 4
	}
	if g.ForkBound <= 0 {
		g.ForkBound = 6
	}
	if g.Bitcoin6 == 0 && g.Ghost6 == 0 {
		g.Bitcoin6, g.Ghost6 = 1, 1
	}
	if g.Faults6 == 0 {
		g.Faults6 = 3
	}
	return g
}

// attackNames are the adversarial strategies the generator mixes in.
var attackNames = []string{strategy.SelfishName, strategy.GreedyMineName, strategy.FeeThiefName}

// Generate composes one random-but-valid chaos run from the seed. It is a
// pure function of (g, seed): every draw comes from one sim.NewRand stream
// in a fixed order, so the same seed always yields the same program — the
// property the regression-seed harness, the fuzz corpus, and the
// differential checker all build on.
//
// Validity is by construction: every Partition is healed, every
// LatencySpike restored, churn never pauses the whole network, strategy
// steps target only protocols with strategic freedom, and the scenario ends
// with a settle tail longer than the convergence invariant's grace so the
// post-heal convergence claim is actually asserted before the run ends.
func Generate(g GenConfig, seed int64) Generated {
	g = g.withDefaults()
	rng := sim.NewRand(seed, genStream)

	nodes := g.MinNodes + rng.Intn(g.MaxNodes-g.MinNodes+1)
	proto := experiment.BitcoinNG
	switch d := rng.Intn(6); {
	case d < g.Bitcoin6:
		proto = experiment.Bitcoin
	case d < g.Bitcoin6+g.Ghost6:
		proto = experiment.GHOST
	}
	ng := proto == experiment.BitcoinNG

	cfg := experiment.DefaultConfig(proto, nodes, seed)
	interval := time.Duration(20+rng.Intn(41)) * time.Second // 20..60s key blocks
	cfg.Params.TargetBlockInterval = interval
	if ng {
		cfg.Params.MicroblockInterval = time.Duration(2+rng.Intn(8)) * time.Second
	}
	cfg.Params.MaxBlockSize = 20_000 + rng.Intn(5)*10_000
	cfg.Params.RandomTieBreak = rng.Intn(2) == 0
	cfg.TargetBlocks = g.MinBlocks + rng.Intn(g.MaxBlocks-g.MinBlocks+1)

	var desc strings.Builder
	fmt.Fprintf(&desc, "%s n=%d ki=%s", proto, nodes, interval)
	if ng {
		fmt.Fprintf(&desc, " mb=%s", cfg.Params.MicroblockInterval)
	}
	fmt.Fprintf(&desc, " blk=%d", cfg.TargetBlocks)

	// Mining power: half the runs draw explicit random shares, the rest use
	// the paper's exponential rank distribution.
	if rng.Intn(2) == 0 {
		shares := make([]float64, nodes)
		for i := range shares {
			shares[i] = 0.2 + rng.Float64()
		}
		cfg.MiningShares = shares
		desc.WriteString(" shares=rand")
	}

	// Adversaries and censors (Bitcoin-NG only: the strategy engine and
	// microblock censorship are NG behaviours).
	if ng && rng.Intn(10) < 4 {
		adv := rng.Intn(nodes)
		name := attackNames[rng.Intn(len(attackNames))]
		cfg.Strategies = map[int]string{adv: name}
		if cfg.MiningShares != nil {
			// Give the attacker meaningful power (up to ~3x a typical node).
			cfg.MiningShares[adv] *= 1 + 2*rng.Float64()
		}
		fmt.Fprintf(&desc, " adv=%d:%s", adv, name)
	}
	if ng && rng.Intn(10) < 2 {
		censor := rng.Intn(nodes)
		cfg.Censors = []int{censor}
		fmt.Fprintf(&desc, " censor=%d", censor)
	}

	// Disruption phases: sequential windows with random gaps, every one
	// undone by its closing step.
	sc := scenario.New()
	desc.WriteString(" phases=[")
	cursor := interval / 2
	phases := 1 + rng.Intn(g.MaxPhases)
	for p := 0; p < phases; p++ {
		gap := time.Duration((0.3 + 0.9*rng.Float64()) * float64(interval))
		start := cursor + gap
		dur := time.Duration((0.5 + 2.5*rng.Float64()) * float64(interval))
		kinds := 3 // partition, spike, churn
		if ng {
			kinds = 5 // + equivocate, adopt-strategy
		}
		if p > 0 {
			desc.WriteString(" ")
		}
		switch rng.Intn(kinds) {
		case 0: // partition into two random groups, healed after dur
			perm := rng.Perm(nodes)
			cut := 1 + rng.Intn(nodes-1)
			sc.Add(
				scenario.At(start, scenario.Partition(perm[:cut], perm[cut:])),
				scenario.At(start+dur, scenario.Heal()),
			)
			fmt.Fprintf(&desc, "part@%s+%s(%d|%d)", start, dur, cut, nodes-cut)
			cursor = start + dur
		case 1: // latency spike, restored after dur
			factor := 1.5 + 4.5*rng.Float64()
			sc.Add(
				scenario.At(start, scenario.LatencySpike(factor)),
				scenario.At(start+dur, scenario.LatencySpike(1)),
			)
			fmt.Fprintf(&desc, "spike@%s+%sx%.2f", start, dur, factor)
			cursor = start + dur
		case 2: // pause one node's mining, resume at a fresh random rate
			node := rng.Intn(nodes)
			rate := (0.5 + 1.5*rng.Float64()) / (interval.Seconds() * float64(nodes))
			sc.Add(
				scenario.At(start, scenario.Churn(node, 0)),
				scenario.At(start+dur, scenario.Churn(node, rate)),
			)
			fmt.Fprintf(&desc, "churn@%s+%s(%d)", start, dur, node)
			cursor = start + dur
		case 3: // leader equivocation attempt (tolerant: non-leaders refuse)
			node := rng.Intn(nodes)
			sc.Add(scenario.At(start, tolerantEquivocate(node)))
			fmt.Fprintf(&desc, "equiv@%s(%d)", start, node)
			cursor = start
		case 4: // switch a node to an attack strategy, back to honest later
			node := rng.Intn(nodes)
			name := attackNames[rng.Intn(len(attackNames))]
			sc.Add(
				scenario.At(start, scenario.AdoptStrategy(node, name)),
				scenario.At(start+dur, scenario.AdoptStrategy(node, strategy.HonestName)),
			)
			fmt.Fprintf(&desc, "adopt@%s+%s(%d:%s)", start, dur, node, name)
			cursor = start + dur
		}
	}
	desc.WriteString("]")

	// Settle tail: the convergence invariant waits 2x the fork-bound settle
	// grace after the last disruption; keep the run alive past that so the
	// post-heal convergence claim is asserted at least once.
	settleGrace := 2 * interval
	settle := cursor + 2*settleGrace + interval/2
	sc.Add(scenario.At(settle, scenario.Call("settle", func(scenario.Runtime) error { return nil })))
	cfg.Scenario = sc

	cfg.Invariants = invariant.Defaults(invariant.Options{
		ForkBound:        g.ForkBound,
		ConvergenceDepth: 2,
		SettleGrace:      settleGrace,
	})
	cfg.InvariantInterval = interval / 2

	// Sustained load: roughly a third of the runs stream an open-loop paced
	// workload through the generator instead of pre-signing it up front, so
	// the chaos space covers the streaming pipeline (release floor, view
	// reinsert-on-reorg, backpressure accounting) under partitions and
	// attacks. Drawn last so earlier draws keep their positions across
	// generator versions and old regression seeds stay stable prefixes.
	if rng.Intn(3) == 0 {
		cfg.Offered = 2 + 8*rng.Float64() // 2..10 tx/s of virtual time
		fmt.Fprintf(&desc, " offered=%.2f/s", cfg.Offered)
	}

	// Fault phases: crash/restart windows and lossy-link weather. Appended
	// after every earlier draw (same discipline as the load draw above) so
	// old regression seeds keep their draw prefixes; closed like the
	// disruption phases — every crashed node restarted, loss always cleared
	// — so post-fault convergence is still the asserted end state. At least
	// two nodes stay up through any window.
	if g.Faults6 > 0 && rng.Intn(6) < g.Faults6 {
		desc.WriteString(" faults=[")
		fphases := 1 + rng.Intn(2)
		for p := 0; p < fphases; p++ {
			gap := time.Duration((0.3 + 0.9*rng.Float64()) * float64(interval))
			start := cursor + gap
			dur := time.Duration((1.0 + 2.0*rng.Float64()) * float64(interval))
			if p > 0 {
				desc.WriteString(" ")
			}
			if rng.Intn(2) == 0 { // crash a subset, restart all after dur
				maxDown := nodes - 2
				if maxDown > 3 {
					maxDown = 3
				}
				victims := rng.Perm(nodes)[:1+rng.Intn(maxDown)]
				for _, v := range victims {
					sc.Add(
						scenario.At(start, scenario.Crash(v)),
						scenario.At(start+dur, scenario.Restart(v)),
					)
				}
				fmt.Fprintf(&desc, "crash@%s+%s%v", start, dur, victims)
			} else { // lossy-link window, cleared after dur
				drop := 0.05 + 0.25*rng.Float64()
				dup := 0.1 * rng.Float64()
				reorder := 0.2 * rng.Float64()
				sc.Add(
					scenario.At(start, scenario.Lossy(drop, dup, reorder)),
					scenario.At(start+dur, scenario.Lossy(0, 0, 0)),
				)
				fmt.Fprintf(&desc, "lossy@%s+%s(d%.2f/u%.2f/r%.2f)", start, dur, drop, dup, reorder)
			}
			cursor = start + dur
		}
		desc.WriteString("]")
		// The faults moved the last disruption past the settle step already
		// scheduled above; a later one keeps the run alive long enough for
		// the convergence and resync invariants' post-fault assertion.
		sc.Add(scenario.At(cursor+2*settleGrace+interval/2,
			scenario.Call("settle-faults", func(scenario.Runtime) error { return nil })))
	}

	return Generated{Seed: seed, Cfg: cfg, Desc: desc.String()}
}

// tolerantEquivocate attempts the §4.5 split-brain attack on a node that
// may or may not currently lead. Non-leaders refuse to equivocate; that
// refusal is part of the fuzzed space, not a failure, so the error is
// deliberately dropped (a Verdict therefore never blames it). Leadership at
// the firing time is a deterministic function of the seed, so replays
// behave identically.
func tolerantEquivocate(node int) scenario.Step {
	return scenario.Call("chaos-equivocate", func(rt scenario.Runtime) error {
		_ = rt.Equivocate(node, nil, nil)
		return nil
	})
}
