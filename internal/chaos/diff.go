package chaos

import (
	"fmt"

	"bitcoinng/internal/experiment"
)

// engineVariant is one execution-engine/cache/storage combination the
// differential checker replays a seed under.
type engineVariant struct {
	name        string
	parallelism int
	cacheOff    bool
	// storeURL selects the storage backend ("" = in-memory, "file:" = a
	// throwaway file-backed root). Storage must never reach consensus, so
	// reports are byte-identical across backends too.
	storeURL string
}

// diffVariants cross-checks the two simulation engines (the classic
// sequential loop and the 4-shard conservative windowed engine), the
// connect cache (shared memoized connects vs full local re-validation), and
// the storage backends (in-memory vs file-backed journal/paged-table).
// The first entry is the baseline the others must match byte for byte.
var diffVariants = []engineVariant{
	{"parallelism=1 cache=on store=mem", 1, false, ""},
	{"parallelism=4 cache=on store=mem", 4, false, ""},
	{"parallelism=1 cache=off store=mem", 1, true, ""},
	{"parallelism=1 cache=on store=file", 1, false, "file:"},
	{"parallelism=4 cache=off store=file", 4, true, "file:"},
}

// variantConfig specializes a generated run to one variant. Only engine and
// storage knobs change; everything behavioural stays shared (the scenario,
// shares, and invariant instances are all read-only during a run).
func variantConfig(gen Generated, v engineVariant) experiment.Config {
	cfg := gen.Cfg
	cfg.Parallelism = v.parallelism
	cfg.DisableConnectCache = v.cacheOff
	cfg.StoreURL = v.storeURL
	return cfg
}

// Differential replays a generated run under every engine/cache variant and
// returns an error on the first digest divergence — the "same seed, same
// report, any engine" guarantee that makes every other chaos finding
// trustworthy (a violation that appeared on only one engine would be an
// engine bug, not a protocol bug).
func Differential(gen Generated) error {
	var base string
	for i, v := range diffVariants {
		res, err := experiment.Run(variantConfig(gen, v))
		if err != nil {
			return Failure{Seed: gen.Seed, Err: fmt.Errorf("differential %s: %w", v.name, err)}
		}
		d := Digest(res)
		if i == 0 {
			base = d
			continue
		}
		if d != base {
			return Failure{Seed: gen.Seed, Err: fmt.Errorf(
				"differential divergence between %s and %s: %s",
				diffVariants[0].name, v.name, firstDiff(base, d))}
		}
	}
	return nil
}
