package chaos

import (
	"bufio"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"bitcoinng/internal/experiment"
)

// TestRegressionSeeds replays every committed regression seed at full
// generator scale, including the engine/cache differential. The workflow:
// any seed that ever fails a soak, a fuzzing campaign, or CI gets a file
// under testdata/seeds (first line the decimal seed, the rest free-form
// notes on what it caught), and from then on an ordinary `go test` replays
// it forever — past failures become permanent tier-1 tests.
func TestRegressionSeeds(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "seeds", "*.seed"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no regression seeds committed; testdata/seeds must hold at least the initial set")
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			seed := readSeed(t, file)
			gen := Generate(GenConfig{}, seed)
			res, err := experiment.Run(gen.Cfg)
			if err := Verdict(seed, res, err); err != nil {
				t.Fatalf("%v\nprogram: %s", err, gen.Desc)
			}
			if testing.Short() {
				return // the differential replay triples the cost
			}
			if err := Differential(gen); err != nil {
				t.Fatalf("%v\nprogram: %s", err, gen.Desc)
			}
		})
	}
}

// readSeed parses a seed file: first non-empty, non-comment line is the
// decimal seed.
func readSeed(t *testing.T, file string) int64 {
	t.Helper()
	f, err := os.Open(file)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		seed, err := strconv.ParseInt(line, 10, 64)
		if err != nil {
			t.Fatalf("%s: bad seed line %q: %v", file, line, err)
		}
		return seed
	}
	t.Fatalf("%s: no seed line", file)
	return 0
}
