// Package blockstore persists blocks to an append-only file so a live node
// (cmd/ngnode) can restart without losing its chain. The format is a
// sequence of length-prefixed, checksummed records; the in-memory index is
// rebuilt by a single scan on open, and a torn final record (crash during
// append) is detected and truncated away.
//
// Layout per record:
//
//	magic  uint32  // record marker, catches misaligned scans
//	kind   uint8   // types.BlockKind
//	length uint32  // payload bytes
//	crc32  uint32  // IEEE checksum of the payload
//	payload [length]byte  // wire-encoded block
package blockstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
	"bitcoinng/internal/wire"
)

const (
	recordMagic  uint32 = 0x4e474253 // "SBGN" little-endian
	headerSize          = 4 + 1 + 4 + 4
	maxBlockSize        = wire.MaxMessageSize
)

// Store errors. ErrCorrupt is kept for callers that probed damage in older
// versions; Open now recovers the longest valid prefix instead of returning
// it.
var (
	ErrCorrupt  = errors.New("blockstore: corrupt record")
	ErrNotFound = errors.New("blockstore: block not found")
	ErrClosed   = errors.New("blockstore: closed")
)

// SyncPolicy says when Append makes records durable.
type SyncPolicy int

const (
	// SyncAlways fsyncs before Append acknowledges — the default. A block
	// the store accepted is on stable storage; a crash can only lose blocks
	// the caller was never told were safe.
	SyncAlways SyncPolicy = iota
	// SyncManual defers durability to explicit Sync calls. Batch harnesses
	// that sync at quiescent boundaries (and tolerate losing the tail back
	// to the last Sync) opt in; Durable reports the acknowledged watermark.
	SyncManual
)

// Store is an append-only block file with an in-memory offset index. It is
// not safe for concurrent use; the owning node serializes access.
type Store struct {
	f      *os.File
	path   string
	size   int64
	index  map[crypto.Hash]recordRef
	order  []crypto.Hash // append order, for replay
	closed bool

	policy SyncPolicy
	// durable is the byte offset up to which records are known to be on
	// stable storage (fsync acknowledged).
	durable int64
	// syncFn stands in for f.Sync so failure-injection tests can make
	// durability fail without a real bad disk.
	syncFn func() error
	// err is sticky: after a failed sync the durable watermark is unknown
	// territory, so every later mutation and sync reports the original
	// failure instead of pretending the store recovered.
	err error
}

type recordRef struct {
	offset int64
	kind   types.BlockKind
	length uint32
}

// Open opens (or creates) the store at path, scanning existing records to
// rebuild the index. A trailing partial record — a crash mid-append — is
// truncated away.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("blockstore: open %s: %w", path, err)
	}
	s := &Store{
		f:     f,
		path:  path,
		index: make(map[crypto.Hash]recordRef),
	}
	s.syncFn = s.f.Sync
	if err := s.scan(); err != nil {
		f.Close()
		return nil, err
	}
	// Whatever survived the scan was read back from the file, so it is the
	// durable prefix by construction.
	s.durable = s.size
	return s, nil
}

// SetSyncPolicy selects when appends become durable; see SyncPolicy.
func (s *Store) SetSyncPolicy(p SyncPolicy) { s.policy = p }

// SetSyncHook replaces the fsync primitive, letting tests inject durability
// failures. A nil hook restores the real fsync.
func (s *Store) SetSyncHook(hook func() error) {
	if hook == nil {
		s.syncFn = s.f.Sync
		return
	}
	s.syncFn = hook
}

// Durable returns the byte offset of the acknowledged-durable prefix. Under
// SyncAlways it tracks the file size; under SyncManual it advances only at
// Sync, and a crash may lose everything past it.
func (s *Store) Durable() int64 { return s.durable }

// scan rebuilds the index, recovering the longest valid record prefix: the
// first sign of corruption — bad magic, absurd length, checksum mismatch,
// undecodable payload, or a torn tail — stops the scan and everything from
// that offset on is truncated away. Open therefore never fails on damaged
// content, only on I/O errors; a crash or disk scribble costs the suffix, not
// the store. (Records are append-ordered, so any prefix is a usable chain
// history — exactly the durable-prefix contract the restart path asserts.)
func (s *Store) scan() error {
	info, err := s.f.Stat()
	if err != nil {
		return err
	}
	total := info.Size()
	var off int64
	hdr := make([]byte, headerSize)
	for off+headerSize <= total {
		if _, err := s.f.ReadAt(hdr, off); err != nil {
			return err
		}
		if binary.LittleEndian.Uint32(hdr[0:4]) != recordMagic {
			break // corruption: recover the prefix scanned so far
		}
		kind := types.BlockKind(hdr[4])
		length := binary.LittleEndian.Uint32(hdr[5:9])
		wantCRC := binary.LittleEndian.Uint32(hdr[9:13])
		if length > maxBlockSize {
			break // corrupt length field
		}
		if off+headerSize+int64(length) > total {
			break // torn tail: truncate below
		}
		payload := make([]byte, length)
		if _, err := s.f.ReadAt(payload, off+headerSize); err != nil {
			return err
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			break // corrupt payload
		}
		b, err := decodeBlock(kind, payload)
		if err != nil {
			break // checksum matched but content does not parse (bad kind?)
		}
		h := b.Hash()
		if _, dup := s.index[h]; !dup {
			s.index[h] = recordRef{offset: off, kind: kind, length: length}
			s.order = append(s.order, h)
		}
		off += headerSize + int64(length)
	}
	if off < total {
		if err := s.f.Truncate(off); err != nil {
			return fmt.Errorf("blockstore: truncating corrupt tail: %w", err)
		}
	}
	s.size = off
	return nil
}

func decodeBlock(kind types.BlockKind, payload []byte) (types.Block, error) {
	switch kind {
	case types.KindPow:
		b := new(types.PowBlock)
		return b, wire.Decode(payload, b)
	case types.KindKey:
		b := new(types.KeyBlock)
		return b, wire.Decode(payload, b)
	case types.KindMicro:
		b := new(types.MicroBlock)
		return b, wire.Decode(payload, b)
	default:
		return nil, fmt.Errorf("unknown block kind %d", kind)
	}
}

// Len returns the number of stored blocks.
func (s *Store) Len() int { return len(s.index) }

// Hashes returns the stored block hashes in append order. The caller owns
// the returned slice.
func (s *Store) Hashes() []crypto.Hash {
	out := make([]crypto.Hash, len(s.order))
	copy(out, s.order)
	return out
}

// Contains reports whether the block is stored.
func (s *Store) Contains(h crypto.Hash) bool {
	_, ok := s.index[h]
	return ok
}

// Append persists a block. Appending an already-stored block is a no-op, so
// callers can feed every accepted block without tracking. Under SyncAlways
// (the default) the record is fsynced before Append returns: an
// acknowledged block is durable, full stop. A failed sync unwinds the
// record — the file is truncated back so the on-disk prefix stays exactly
// the acknowledged set — and poisons the store (see Store.err).
func (s *Store) Append(b types.Block) error {
	if s.closed {
		return ErrClosed
	}
	if s.err != nil {
		return s.err
	}
	h := b.Hash()
	if _, dup := s.index[h]; dup {
		return nil
	}
	payload := wire.Encode(b)
	hdr := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(hdr[0:4], recordMagic)
	hdr[4] = byte(b.Kind())
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[9:13], crc32.ChecksumIEEE(payload))
	if _, err := s.f.WriteAt(hdr, s.size); err != nil {
		return fmt.Errorf("blockstore: append header: %w", err)
	}
	if _, err := s.f.WriteAt(payload, s.size+headerSize); err != nil {
		return fmt.Errorf("blockstore: append payload: %w", err)
	}
	newSize := s.size + headerSize + int64(len(payload))
	if s.policy == SyncAlways {
		if err := s.syncFn(); err != nil {
			// The record may or may not have reached the platter; cut it
			// off so disk and index agree on the durable prefix, then
			// refuse further work.
			_ = s.f.Truncate(s.size)
			s.err = fmt.Errorf("blockstore: append sync: %w", err)
			return s.err
		}
		s.durable = newSize
	}
	s.index[h] = recordRef{offset: s.size, kind: b.Kind(), length: uint32(len(payload))}
	s.order = append(s.order, h)
	s.size = newSize
	return nil
}

// Get loads a block by hash.
func (s *Store) Get(h crypto.Hash) (types.Block, error) {
	if s.closed {
		return nil, ErrClosed
	}
	ref, ok := s.index[h]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, h.Short())
	}
	payload := make([]byte, ref.length)
	if _, err := s.f.ReadAt(payload, ref.offset+headerSize); err != nil {
		return nil, fmt.Errorf("blockstore: read %s: %w", h.Short(), err)
	}
	return decodeBlock(ref.kind, payload)
}

// Replay streams every stored block in append order — parents before
// children for blocks a node accepted, which is exactly what chain
// reconstruction needs. Iteration stops at the first callback error.
func (s *Store) Replay(fn func(types.Block) error) error {
	if s.closed {
		return ErrClosed
	}
	for _, h := range s.order {
		b, err := s.Get(h)
		if err != nil {
			return err
		}
		if err := fn(b); err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes appended records to stable storage and advances the durable
// watermark. A failure is sticky: the watermark's true position is unknown,
// so the store refuses further mutations until reopened.
func (s *Store) Sync() error {
	if s.closed {
		return ErrClosed
	}
	if s.err != nil {
		return s.err
	}
	if err := s.syncFn(); err != nil {
		s.err = fmt.Errorf("blockstore: sync: %w", err)
		return s.err
	}
	s.durable = s.size
	return nil
}

// Close syncs and closes the file, reporting a sticky failure if one is
// pending — callers that ignored an Append error still hear about it here.
func (s *Store) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if s.err != nil {
		s.f.Close()
		return s.err
	}
	if err := s.syncFn(); err != nil {
		s.f.Close()
		return fmt.Errorf("blockstore: close sync: %w", err)
	}
	return s.f.Close()
}

// Path returns the backing file path.
func (s *Store) Path() string { return s.path }

// ReplayInto feeds every stored block into a chain state in append order,
// ignoring duplicates and stale orphans (a pruned parent may have been
// truncated). It returns how many blocks connected into the tree. io.EOF
// from the callback aborts cleanly for partial replays.
func ReplayInto(s *Store, add func(types.Block) error) (int, error) {
	n := 0
	err := s.Replay(func(b types.Block) error {
		if err := add(b); err != nil {
			if errors.Is(err, io.EOF) {
				return err
			}
			return nil // invalid/stale records are skipped, not fatal
		}
		n++
		return nil
	})
	if errors.Is(err, io.EOF) {
		err = nil
	}
	return n, err
}
