package blockstore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/sim"
	"bitcoinng/internal/types"
)

func tempStore(t *testing.T) *Store {
	t.Helper()
	path := filepath.Join(t.TempDir(), "blocks.dat")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func makeChain(t *testing.T, n int) []types.Block {
	t.Helper()
	key, err := crypto.GenerateKey(sim.NewRand(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	blocks := make([]types.Block, 0, n)
	prev := crypto.ZeroHash
	for i := 0; i < n; i++ {
		if i%3 == 2 {
			// Mix in microblocks.
			mb := &types.MicroBlock{
				Header: types.MicroBlockHeader{
					Prev:      prev,
					TxRoot:    crypto.MerkleRoot(nil),
					TimeNanos: int64(i),
				},
			}
			mb.Header.Sign(key)
			blocks = append(blocks, mb)
			prev = mb.Hash()
			continue
		}
		txs := []*types.Transaction{{
			Kind:    types.TxCoinbase,
			Outputs: []types.TxOutput{{Value: 1, To: key.Public().Addr()}},
			Height:  uint64(i + 1),
		}}
		kb := &types.KeyBlock{
			Header: types.KeyBlockHeader{
				Prev:       prev,
				MerkleRoot: crypto.MerkleRoot(types.TxIDs(txs)),
				TimeNanos:  int64(i),
				Target:     crypto.EasiestTarget,
				LeaderKey:  key.Public(),
			},
			Txs:          txs,
			SimulatedPoW: true,
		}
		blocks = append(blocks, kb)
		prev = kb.Hash()
	}
	return blocks
}

func TestAppendGetRoundTrip(t *testing.T) {
	s := tempStore(t)
	blocks := makeChain(t, 9)
	for _, b := range blocks {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 9 {
		t.Fatalf("len = %d", s.Len())
	}
	for _, b := range blocks {
		got, err := s.Get(b.Hash())
		if err != nil {
			t.Fatal(err)
		}
		if got.Hash() != b.Hash() || got.Kind() != b.Kind() {
			t.Errorf("round trip mismatch for %s", b.Hash().Short())
		}
	}
	if _, err := s.Get(crypto.HashBytes([]byte("nope"))); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing block err = %v", err)
	}
}

func TestAppendIdempotent(t *testing.T) {
	s := tempStore(t)
	blocks := makeChain(t, 3)
	for i := 0; i < 3; i++ {
		for _, b := range blocks {
			if err := s.Append(b); err != nil {
				t.Fatal(err)
			}
		}
	}
	if s.Len() != 3 {
		t.Errorf("len = %d after duplicate appends", s.Len())
	}
}

func TestReopenRebuildsIndex(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blocks.dat")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	blocks := makeChain(t, 12)
	for _, b := range blocks {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 12 {
		t.Fatalf("reopened len = %d", s2.Len())
	}
	// Replay preserves append order.
	var replayed []crypto.Hash
	if err := s2.Replay(func(b types.Block) error {
		replayed = append(replayed, b.Hash())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, b := range blocks {
		if replayed[i] != b.Hash() {
			t.Fatalf("replay order broken at %d", i)
		}
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blocks.dat")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	blocks := makeChain(t, 5)
	for _, b := range blocks {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Simulate a crash mid-append: chop bytes off the last record.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("open after torn tail: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 4 {
		t.Fatalf("len after torn tail = %d, want 4", s2.Len())
	}
	// The store accepts new appends after recovery.
	if err := s2.Append(blocks[4]); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 5 {
		t.Errorf("len after re-append = %d", s2.Len())
	}
}

func TestCorruptPayloadRecoversPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blocks.dat")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	blocks := makeChain(t, 3)
	for _, b := range blocks {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	// Record boundaries, for corrupting the middle record below.
	offsets := make([]int64, 0, 3)
	var off int64
	for _, b := range blocks {
		offsets = append(offsets, off)
		off += headerSize + int64(s.index[b.Hash()].length)
	}
	s.Close()

	// Flip a payload byte in the second record: reopen must recover exactly
	// the first record (the longest valid prefix) and truncate the rest.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[offsets[1]+headerSize+3] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatalf("open after corruption: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("len after corruption = %d, want 1", s2.Len())
	}
	if !s2.Contains(blocks[0].Hash()) {
		t.Error("surviving prefix lost the first record")
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != offsets[1] {
		t.Errorf("file size after recovery = %d, want %d", info.Size(), offsets[1])
	}
	// The store accepts new appends after recovery, re-persisting what the
	// corruption cost.
	for _, b := range blocks[1:] {
		if err := s2.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if s2.Len() != 3 {
		t.Errorf("len after re-append = %d, want 3", s2.Len())
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s := tempStore(t)
	blocks := makeChain(t, 1)
	if err := s.Append(blocks[0]); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Append(blocks[0]); !errors.Is(err, ErrClosed) {
		t.Errorf("append after close err = %v", err)
	}
	if _, err := s.Get(blocks[0].Hash()); !errors.Is(err, ErrClosed) {
		t.Errorf("get after close err = %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close err = %v", err)
	}
}

func TestReplayIntoSkipsInvalid(t *testing.T) {
	s := tempStore(t)
	blocks := makeChain(t, 6)
	for _, b := range blocks {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	// An adder that rejects microblocks: they are skipped, not fatal.
	n, err := ReplayInto(s, func(b types.Block) error {
		if b.Kind() == types.KindMicro {
			return errors.New("no microblocks today")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 { // 6 blocks, 2 are microblocks (i=2, i=5)
		t.Errorf("connected %d, want 4", n)
	}
}
