package blockstore

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/sim"
	"bitcoinng/internal/types"
)

// validStoreBytes builds the raw bytes of a healthy multi-record store, the
// seed material every fuzz mutation starts from.
func validStoreBytes(t interface {
	Helper()
	Fatal(...any)
	TempDir() string
}) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "seed.dat")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	key, err := crypto.GenerateKey(sim.NewRand(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	prev := crypto.ZeroHash
	for i := 0; i < 4; i++ {
		mb := &types.MicroBlock{
			Header: types.MicroBlockHeader{
				Prev:      prev,
				TxRoot:    crypto.MerkleRoot(nil),
				TimeNanos: int64(i),
			},
		}
		mb.Header.Sign(key)
		if err := s.Append(mb); err != nil {
			t.Fatal(err)
		}
		prev = mb.Hash()
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// referencePrefix independently parses the longest valid record prefix of
// data, returning the deduplicated block hashes in order — the oracle the
// fuzzed Open must agree with byte for byte.
func referencePrefix(data []byte) []crypto.Hash {
	var out []crypto.Hash
	seen := make(map[crypto.Hash]bool)
	off := 0
	for off+headerSize <= len(data) {
		if binary.LittleEndian.Uint32(data[off:off+4]) != recordMagic {
			break
		}
		kind := types.BlockKind(data[off+4])
		length := binary.LittleEndian.Uint32(data[off+5 : off+9])
		wantCRC := binary.LittleEndian.Uint32(data[off+9 : off+13])
		if length > maxBlockSize || off+headerSize+int(length) > len(data) {
			break
		}
		payload := data[off+headerSize : off+headerSize+int(length)]
		if crc32.ChecksumIEEE(payload) != wantCRC {
			break
		}
		b, err := decodeBlock(kind, payload)
		if err != nil {
			break
		}
		if h := b.Hash(); !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
		off += headerSize + int(length)
	}
	return out
}

// FuzzBlockstoreReopen throws arbitrary mutations of a valid store file —
// truncations, bit-flips, garbage — at Open. Reopening must never panic,
// must recover exactly the longest valid record prefix, and must leave the
// file re-appendable.
func FuzzBlockstoreReopen(f *testing.F) {
	raw := validStoreBytes(f)
	f.Add(raw)
	f.Add(raw[:len(raw)-5])             // torn tail
	f.Add(raw[:headerSize/2])           // partial first header
	f.Add([]byte{})                     // empty store
	flip := append([]byte(nil), raw...) // payload bit-flip in record 2
	flip[headerSize+int(binary.LittleEndian.Uint32(raw[5:9]))+headerSize+2] ^= 0x40
	f.Add(flip)
	magic := append([]byte(nil), raw...) // magic smashed mid-file
	magic[len(raw)/2] ^= 0xff
	f.Add(magic)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "blocks.dat")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(path)
		if err != nil {
			// Only genuine I/O failures may surface; corruption must not.
			t.Fatalf("open rejected corrupt-but-readable input: %v", err)
		}
		defer s.Close()
		want := referencePrefix(data)
		got := s.Hashes()
		if len(got) != len(want) {
			t.Fatalf("recovered %d records, reference prefix has %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("record %d: recovered %s, want %s", i, got[i].Short(), want[i].Short())
			}
		}
		// The recovered store must accept appends (the restart path
		// re-persists what corruption cost).
		key, err := crypto.GenerateKey(sim.NewRand(1, 1))
		if err != nil {
			t.Fatal(err)
		}
		mb := &types.MicroBlock{
			Header: types.MicroBlockHeader{
				Prev:      crypto.HashBytes([]byte("post-recovery")),
				TxRoot:    crypto.MerkleRoot(nil),
				TimeNanos: 99,
			},
		}
		mb.Header.Sign(key)
		if err := s.Append(mb); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if !s.Contains(mb.Hash()) {
			t.Fatal("append after recovery not indexed")
		}
	})
}
