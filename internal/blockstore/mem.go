package blockstore

import (
	"fmt"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
)

// Mem is the in-memory counterpart of Store: same append-order, same
// idempotent Append, no file. It backs the durable-persistence hook on the
// default simulation path, where "durable" means "survives the simulated
// crash" — the harness tears down a node's entire in-memory client but keeps
// its Mem archive, exactly as a real disk survives a process crash. Not safe
// for concurrent use; the owning node serializes access.
type Mem struct {
	blocks map[crypto.Hash]types.Block
	order  []crypto.Hash
}

// NewMem builds an empty in-memory archive.
func NewMem() *Mem {
	return &Mem{blocks: make(map[crypto.Hash]types.Block)}
}

// Len returns the number of stored blocks.
func (m *Mem) Len() int { return len(m.order) }

// Contains reports whether the block is stored.
func (m *Mem) Contains(h crypto.Hash) bool {
	_, ok := m.blocks[h]
	return ok
}

// Append stores a block; duplicates are a no-op, mirroring Store.
func (m *Mem) Append(b types.Block) error {
	h := b.Hash()
	if _, dup := m.blocks[h]; dup {
		return nil
	}
	m.blocks[h] = b
	m.order = append(m.order, h)
	return nil
}

// Get loads a block by hash.
func (m *Mem) Get(h crypto.Hash) (types.Block, error) {
	b, ok := m.blocks[h]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, h.Short())
	}
	return b, nil
}

// Hashes returns the stored block hashes in append order. The caller owns
// the returned slice.
func (m *Mem) Hashes() []crypto.Hash {
	out := make([]crypto.Hash, len(m.order))
	copy(out, m.order)
	return out
}

// Replay streams every stored block in append order, stopping at the first
// callback error.
func (m *Mem) Replay(fn func(types.Block) error) error {
	for _, h := range m.order {
		if err := fn(m.blocks[h]); err != nil {
			return err
		}
	}
	return nil
}
