package blockstore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// errDiskFull is the injected durability failure.
var errDiskFull = errors.New("injected: fsync failed")

// TestAppendSyncFailureUnwinds pins the durability bugfix: under the default
// SyncAlways policy a failed fsync must surface as an Append error, unwind
// the unacknowledged record from disk, and poison the store so later calls
// cannot silently widen the gap between the index and the platter.
func TestAppendSyncFailureUnwinds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blocks.dat")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	blocks := makeChain(t, 3)
	for _, b := range blocks[:2] {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if s.Durable() != s.size {
		t.Fatalf("SyncAlways watermark lags: durable=%d size=%d", s.Durable(), s.size)
	}
	durable := s.Durable()

	s.SetSyncHook(func() error { return errDiskFull })
	if err := s.Append(blocks[2]); !errors.Is(err, errDiskFull) {
		t.Fatalf("Append under failing sync = %v, want injected error", err)
	}
	if s.Contains(blocks[2].Hash()) {
		t.Fatal("unacknowledged block was indexed")
	}
	// Sticky: every later mutation reports the original failure.
	if err := s.Append(blocks[2]); !errors.Is(err, errDiskFull) {
		t.Fatalf("Append after poisoning = %v", err)
	}
	if err := s.Sync(); !errors.Is(err, errDiskFull) {
		t.Fatalf("Sync after poisoning = %v", err)
	}
	if err := s.Close(); !errors.Is(err, errDiskFull) {
		t.Fatalf("Close after poisoning = %v — the error was swallowed", err)
	}

	// The on-disk file must hold exactly the acknowledged prefix.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != durable {
		t.Fatalf("file size %d, want acknowledged prefix %d", info.Size(), durable)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 2 {
		t.Fatalf("reopen recovered %d blocks, want 2", r.Len())
	}
	for _, b := range blocks[:2] {
		if !r.Contains(b.Hash()) {
			t.Fatalf("acknowledged block %s lost", b.Hash().Short())
		}
	}
}

// TestSyncManualWatermark checks the opt-in batching policy: appends defer
// durability, Sync advances the watermark, and a crash at the watermark
// (simulated by truncating there) loses exactly the unacknowledged tail.
func TestSyncManualWatermark(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blocks.dat")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.SetSyncPolicy(SyncManual)
	blocks := makeChain(t, 4)
	for _, b := range blocks[:3] {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if s.Durable() != 0 {
		t.Fatalf("watermark advanced without Sync: %d", s.Durable())
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	mark := s.Durable()
	if mark != s.size {
		t.Fatalf("Sync left watermark at %d, size %d", mark, s.size)
	}
	if err := s.Append(blocks[3]); err != nil {
		t.Fatal(err)
	}
	if s.Durable() != mark {
		t.Fatal("SyncManual append moved the watermark")
	}
	// Close without relying on its implicit sync: simulate the crash by
	// cutting the file at the watermark after closing.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, mark); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 3 {
		t.Fatalf("crash at watermark recovered %d blocks, want 3", r.Len())
	}
}

// FuzzAppendSyncFailure drives the reopen oracle under injected durability
// failures: whatever Append acknowledged before the disk "died" must be
// recovered exactly by a reopen, regardless of when the failure hits.
func FuzzAppendSyncFailure(f *testing.F) {
	f.Add(uint8(0))
	f.Add(uint8(1))
	f.Add(uint8(3))
	f.Add(uint8(200))
	f.Fuzz(func(t *testing.T, failAfter uint8) {
		path := filepath.Join(t.TempDir(), "blocks.dat")
		s, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		syncs := 0
		real := s.f.Sync
		s.SetSyncHook(func() error {
			if syncs >= int(failAfter) {
				return errDiskFull
			}
			syncs++
			return real()
		})
		blocks := makeChain(t, 8)
		acked := 0
		for _, b := range blocks {
			if err := s.Append(b); err != nil {
				if !errors.Is(err, errDiskFull) {
					t.Fatalf("unexpected append error: %v", err)
				}
				break
			}
			acked++
		}
		s.Close()

		r, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if r.Len() != acked {
			t.Fatalf("acknowledged %d blocks, reopen recovered %d", acked, r.Len())
		}
		got := r.Hashes()
		for i := 0; i < acked; i++ {
			if got[i] != blocks[i].Hash() {
				t.Fatalf("record %d: recovered %s, want %s", i, got[i].Short(), blocks[i].Hash().Short())
			}
		}
	})
}
