package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
	"bitcoinng/internal/utxo"
)

// FileUTXO is the beyond-RAM ledger store: a utxo.Set over the paged on-disk
// table, made durable by an append-only op-log journal plus periodic full
// checkpoints. Every block application/redo/undo appends the block's delta
// to the journal; Sync fsyncs the journal (durability is acknowledged at
// quiescent boundaries, like the block archive) and, once enough records
// have accumulated, folds them into a fresh checkpoint and starts a new
// journal epoch.
//
// Crash consistency hangs on the epoch handshake: the checkpoint's meta
// record and the journal's leading record both carry an epoch number. A
// checkpoint is published atomically (write-temp, fsync, rename) with epoch
// E+1 while the live journal still says E; the journal is only reset to a
// new E+1 epoch record afterwards. On open, a journal whose epoch does not
// match the checkpoint is a leftover from a crash inside that window — its
// deltas are already folded into the checkpoint — and is discarded. Torn
// journal tails recover by longest-valid-prefix truncation, the same
// discipline as the block archive.
//
// Journal write errors are sticky: after the first failure the store refuses
// further mutations and surfaces the error on every ApplyBlock/Sync/Close,
// because acknowledging blocks that were never journaled would silently
// narrow the durable prefix.

// Journal and checkpoint record kinds.
const (
	recJEpoch   byte = 1 // journal: u64 epoch, always the first record
	recJApply   byte = 2 // journal: block hash + parent hash + encoded delta
	recJUndo    byte = 3 // journal: same payload, replayed in reverse
	recCkptMeta byte = 4 // checkpoint: u64 epoch, always the first record
	recCkptEnts byte = 5 // checkpoint: u32 count + (outpoint, entry) pairs
	recCkptPsn  byte = 6 // checkpoint: u32 count + coinbase txids
)

// ckptEntryBatch bounds one recCkptEnts record well under maxRecSize.
const ckptEntryBatch = 4096

// defaultCkptEvery is how many journaled deltas trigger a checkpoint at the
// next Sync.
const defaultCkptEvery = 512

type FileUTXO struct {
	set   *utxo.Set
	table *pagedTable

	journal *os.File
	jPath   string
	jOff    int64
	epoch   uint64

	ckptPath string
	// ckptEvery is the journal-record count that triggers a checkpoint at
	// the next Sync; tests lower it to force checkpoint cycles.
	ckptEvery  int
	jSinceCkpt int

	// jStats holds the journal/checkpoint counters; table counters live in
	// the paged table and the two are merged by Stats.
	jStats utxo.Stats

	err error // sticky journal failure
}

// OpenFileUTXO opens (or creates) the ledger store rooted at dir under the
// given name, recovering state from its checkpoint and journal. cachePages
// bounds the paged table's resident cache (≤ 0 takes the default).
func OpenFileUTXO(dir, name string, cachePages int) (*FileUTXO, error) {
	u := &FileUTXO{
		jPath:     filepath.Join(dir, name+".journal"),
		ckptPath:  filepath.Join(dir, name+".ckpt"),
		ckptEvery: defaultCkptEvery,
	}
	table, err := newPagedTable(filepath.Join(dir, name+".tab"), cachePages)
	if err != nil {
		return nil, err
	}
	u.table = table
	u.set = utxo.NewWith(table)
	if err := u.loadCheckpoint(); err != nil {
		table.Close()
		return nil, err
	}
	if err := u.openJournal(); err != nil {
		table.Close()
		return nil, err
	}
	return u, nil
}

// loadCheckpoint rebuilds the table from the checkpoint file, if present,
// and records its epoch. Entries load through the table's raw insert path so
// recovery does not count as ledger operations.
func (u *FileUTXO) loadCheckpoint() error {
	f, err := os.Open(u.ckptPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: checkpoint %s: %w", u.ckptPath, err)
	}
	defer f.Close()
	first := true
	_, err = scanRecs(f, func(kind byte, payload []byte) error {
		if first {
			first = false
			if kind != recCkptMeta || len(payload) != 8 {
				return fmt.Errorf("store: checkpoint %s: missing meta record", u.ckptPath)
			}
			u.epoch = binary.LittleEndian.Uint64(payload)
			return nil
		}
		switch kind {
		case recCkptEnts:
			if len(payload) < 4 {
				return fmt.Errorf("store: checkpoint %s: short entries record", u.ckptPath)
			}
			n := int(binary.LittleEndian.Uint32(payload))
			const pair = utxo.OutPointWireSize + utxo.EntryWireSize
			if len(payload) != 4+n*pair {
				return fmt.Errorf("store: checkpoint %s: entries record length mismatch", u.ckptPath)
			}
			for i := 0; i < n; i++ {
				off := 4 + i*pair
				op := utxo.GetOutPoint(payload[off:])
				e := utxo.GetEntry(payload[off+utxo.OutPointWireSize:])
				if err := u.table.put(op, e); err != nil {
					return err
				}
			}
		case recCkptPsn:
			if len(payload) < 4 {
				return fmt.Errorf("store: checkpoint %s: short poison record", u.ckptPath)
			}
			n := int(binary.LittleEndian.Uint32(payload))
			if len(payload) != 4+n*crypto.HashSize {
				return fmt.Errorf("store: checkpoint %s: poison record length mismatch", u.ckptPath)
			}
			for i := 0; i < n; i++ {
				var h crypto.Hash
				copy(h[:], payload[4+i*crypto.HashSize:])
				u.table.SetPoisoned(h, true)
			}
		default:
			return fmt.Errorf("store: checkpoint %s: unknown record kind %d", u.ckptPath, kind)
		}
		return nil
	})
	return err
}

// errStaleJournal aborts journal replay when the leading epoch record does
// not match the checkpoint: the journal predates the checkpoint and its
// deltas are already folded in.
var errStaleJournal = errors.New("store: stale journal epoch")

// openJournal opens the journal, replays the records of the current epoch
// onto the recovered table, truncates any torn tail, and leaves the file
// positioned for appends. A stale or headerless journal is discarded and
// restarted at the checkpoint's epoch.
func (u *FileUTXO) openJournal() error {
	f, err := os.OpenFile(u.jPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: journal %s: %w", u.jPath, err)
	}
	sawEpoch := false
	valid, err := scanRecs(f, func(kind byte, payload []byte) error {
		if !sawEpoch {
			if kind != recJEpoch || len(payload) != 8 {
				return errStaleJournal
			}
			if binary.LittleEndian.Uint64(payload) != u.epoch {
				return errStaleJournal
			}
			sawEpoch = true
			return nil
		}
		ref, d, err := decodeJournalOp(payload)
		if err != nil {
			return err
		}
		switch kind {
		case recJApply:
			u.set.RedoBlock(d, ref)
		case recJUndo:
			u.set.UndoBlock(d, ref)
		default:
			return fmt.Errorf("store: journal %s: unknown record kind %d", u.jPath, kind)
		}
		u.jSinceCkpt++
		return nil
	})
	switch {
	case err == errStaleJournal:
		// Crash window between checkpoint publication and journal reset, or
		// a brand-new file: restart the journal at the current epoch.
		valid = 0
		fallthrough
	case err == nil:
		info, statErr := f.Stat()
		if statErr != nil {
			f.Close()
			return statErr
		}
		if valid < info.Size() {
			if terr := f.Truncate(valid); terr != nil {
				f.Close()
				return fmt.Errorf("store: truncating journal %s: %w", u.jPath, terr)
			}
		}
	default:
		f.Close()
		return err
	}
	u.journal = f
	u.jOff = valid
	if u.jOff == 0 {
		if err := u.writeEpochRec(); err != nil {
			f.Close()
			return err
		}
	}
	return nil
}

func (u *FileUTXO) writeEpochRec() error {
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], u.epoch)
	n, err := appendRec(u.journal, u.jOff, recJEpoch, p[:])
	if err != nil {
		return err
	}
	u.jOff += n
	return nil
}

// encodeJournalOp frames a delta with the block it belongs to.
func encodeJournalOp(ref utxo.BlockRef, d *utxo.Delta) []byte {
	enc := utxo.EncodeDelta(d)
	out := make([]byte, 2*crypto.HashSize+len(enc))
	copy(out[0:], ref.Block[:])
	copy(out[crypto.HashSize:], ref.Parent[:])
	copy(out[2*crypto.HashSize:], enc)
	return out
}

func decodeJournalOp(payload []byte) (utxo.BlockRef, *utxo.Delta, error) {
	if len(payload) < 2*crypto.HashSize {
		return utxo.BlockRef{}, nil, errors.New("store: journal record too short")
	}
	var ref utxo.BlockRef
	copy(ref.Block[:], payload[0:])
	copy(ref.Parent[:], payload[crypto.HashSize:])
	d, err := utxo.DecodeDelta(payload[2*crypto.HashSize:])
	return ref, d, err
}

// journalOp appends one apply/undo record; failures become sticky.
func (u *FileUTXO) journalOp(kind byte, ref utxo.BlockRef, d *utxo.Delta) error {
	if u.err != nil {
		return u.err
	}
	payload := encodeJournalOp(ref, d)
	n, err := appendRec(u.journal, u.jOff, kind, payload)
	if err != nil {
		u.err = fmt.Errorf("store: utxo journal: %w", err)
		return u.err
	}
	u.jOff += n
	u.jSinceCkpt++
	u.jStats.JournalRecords++
	u.jStats.JournalBytes += uint64(n)
	return nil
}

// --- store.UTXO / chain.UTXOStore surface ---

func (u *FileUTXO) Lookup(op types.OutPoint) (utxo.Entry, bool) { return u.set.Lookup(op) }
func (u *FileUTXO) Len() int                                    { return u.set.Len() }
func (u *FileUTXO) Range(fn func(op types.OutPoint, e utxo.Entry) bool) {
	u.set.Range(fn)
}
func (u *FileUTXO) BalanceOf(addr crypto.Address) types.Amount { return u.set.BalanceOf(addr) }
func (u *FileUTXO) Poisoned(coinbaseID crypto.Hash) bool       { return u.set.Poisoned(coinbaseID) }

// ApplyBlock validates and applies the block, then journals its delta. A
// journal failure rolls the application back and returns the error: the
// store must never hold state it cannot recover.
func (u *FileUTXO) ApplyBlock(txs []*types.Transaction, ctx utxo.BlockContext) (*utxo.Delta, []types.Amount, error) {
	if u.err != nil {
		return nil, nil, u.err
	}
	d, fees, err := u.set.ApplyBlock(txs, ctx)
	if err != nil {
		return nil, nil, err
	}
	if jerr := u.journalOp(recJApply, ctx.Ref, d); jerr != nil {
		u.set.UndoBlock(d, ctx.Ref)
		return nil, nil, jerr
	}
	return d, fees, nil
}

// RedoBlock replays a recorded delta forward and journals it. Like the
// in-memory set it has no error channel; a journal failure leaves the state
// applied and sticks, surfacing at the next ApplyBlock/Sync/Close.
func (u *FileUTXO) RedoBlock(d *utxo.Delta, at utxo.BlockRef) {
	u.set.RedoBlock(d, at)
	_ = u.journalOp(recJApply, at, d)
}

// UndoBlock reverses a block application and journals the reversal.
func (u *FileUTXO) UndoBlock(d *utxo.Delta, at utxo.BlockRef) {
	u.set.UndoBlock(d, at)
	_ = u.journalOp(recJUndo, at, d)
}

// Stats merges the paged table's counters with the journal's.
func (u *FileUTXO) Stats() utxo.Stats {
	s := u.table.Stats()
	s.Add(u.jStats)
	return s
}

// Reset drops all state — table, journal, checkpoint — and starts a fresh
// epoch. Cumulative counters and a sticky journal error survive; a store
// that cannot journal stays failed until reopened.
func (u *FileUTXO) Reset() error {
	if u.err != nil {
		return u.err
	}
	if err := u.table.Reset(); err != nil {
		return err
	}
	if err := os.Remove(u.ckptPath); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: removing checkpoint: %w", err)
	}
	if err := u.journal.Truncate(0); err != nil {
		return fmt.Errorf("store: resetting journal: %w", err)
	}
	u.jOff = 0
	u.jSinceCkpt = 0
	u.epoch++
	return u.writeEpochRec()
}

// Sync makes all acknowledged state durable: table pages flushed, journal
// fsynced, and — once enough records accumulated since the last checkpoint —
// the journal folded into a fresh checkpoint.
func (u *FileUTXO) Sync() error {
	if u.err != nil {
		return u.err
	}
	if err := u.table.Sync(); err != nil {
		return err
	}
	if err := u.journal.Sync(); err != nil {
		u.err = fmt.Errorf("store: utxo journal sync: %w", err)
		return u.err
	}
	if u.jSinceCkpt >= u.ckptEvery {
		return u.checkpoint()
	}
	return nil
}

// checkpoint publishes the current table as a checkpoint file and resets the
// journal to a new epoch. The temp-write/fsync/rename/reset sequence is the
// crash-safety protocol documented on the type.
func (u *FileUTXO) checkpoint() error {
	tmp := u.ckptPath + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: checkpoint temp: %w", err)
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	var off int64
	var meta [8]byte
	binary.LittleEndian.PutUint64(meta[:], u.epoch+1)
	n, err := appendRec(f, off, recCkptMeta, meta[:])
	if err != nil {
		return fail(err)
	}
	off += n

	const pair = utxo.OutPointWireSize + utxo.EntryWireSize
	batch := make([]byte, 4, 4+ckptEntryBatch*pair)
	count := 0
	flushBatch := func() error {
		if count == 0 {
			return nil
		}
		binary.LittleEndian.PutUint32(batch[0:4], uint32(count))
		n, err := appendRec(f, off, recCkptEnts, batch)
		if err != nil {
			return err
		}
		off += n
		batch = batch[:4]
		count = 0
		return nil
	}
	var rangeErr error
	u.table.Range(func(op types.OutPoint, e utxo.Entry) bool {
		var buf [pair]byte
		utxo.PutOutPoint(buf[:], op)
		utxo.PutEntry(buf[utxo.OutPointWireSize:], e)
		batch = append(batch, buf[:]...)
		count++
		if count == ckptEntryBatch {
			if rangeErr = flushBatch(); rangeErr != nil {
				return false
			}
		}
		return true
	})
	if rangeErr != nil {
		return fail(rangeErr)
	}
	if err := flushBatch(); err != nil {
		return fail(err)
	}

	if len(u.table.poisoned) > 0 {
		ids := make([]crypto.Hash, 0, len(u.table.poisoned))
		for id := range u.table.poisoned {
			ids = append(ids, id)
		}
		// Checkpoint bytes must be a pure function of state, not of map
		// iteration order.
		sort.Slice(ids, func(i, j int) bool { return bytes.Compare(ids[i][:], ids[j][:]) < 0 })
		p := make([]byte, 4+len(ids)*crypto.HashSize)
		binary.LittleEndian.PutUint32(p[0:4], uint32(len(ids)))
		for i, id := range ids {
			copy(p[4+i*crypto.HashSize:], id[:])
		}
		n, err := appendRec(f, off, recCkptPsn, p)
		if err != nil {
			return fail(err)
		}
		off += n
	}

	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("store: checkpoint sync: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, u.ckptPath); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: checkpoint publish: %w", err)
	}
	// Checkpoint is live; retire the journal into the new epoch.
	u.epoch++
	if err := u.journal.Truncate(0); err != nil {
		u.err = fmt.Errorf("store: journal reset: %w", err)
		return u.err
	}
	u.jOff = 0
	if err := u.writeEpochRec(); err != nil {
		u.err = err
		return u.err
	}
	if err := u.journal.Sync(); err != nil {
		u.err = fmt.Errorf("store: journal sync: %w", err)
		return u.err
	}
	u.jSinceCkpt = 0
	u.jStats.Checkpoints++
	return nil
}

// Close flushes and releases everything, surfacing any sticky failure.
func (u *FileUTXO) Close() error {
	var first error
	if u.err != nil {
		first = u.err
	}
	if u.journal != nil {
		if err := u.journal.Sync(); err != nil && first == nil {
			first = fmt.Errorf("store: utxo journal sync: %w", err)
		}
		if err := u.journal.Close(); err != nil && first == nil {
			first = err
		}
		u.journal = nil
	}
	if err := u.table.Close(); err != nil && first == nil {
		first = err
	}
	return first
}
