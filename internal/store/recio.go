package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// Checksummed record I/O shared by the UTXO journal, its checkpoints, and
// the chain index's arrival-time sidecar. The layout matches the blockstore
// record idiom — magic, kind, length, CRC, payload — so every durable file
// in the system recovers the same way: scan the longest valid prefix,
// truncate whatever a crash tore off the tail.
const (
	recMagic      uint32 = 0x4e475354 // "TSGN" little-endian ("NG STore")
	recHeaderSize        = 4 + 1 + 4 + 4
	// maxRecSize bounds a single record payload; anything larger is treated
	// as a corrupt length field during recovery.
	maxRecSize = 16 << 20
)

// appendRec writes one record at off and returns the bytes consumed. The
// caller owns offset bookkeeping and syncing.
func appendRec(f *os.File, off int64, kind byte, payload []byte) (int64, error) {
	hdr := make([]byte, recHeaderSize)
	binary.LittleEndian.PutUint32(hdr[0:4], recMagic)
	hdr[4] = kind
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[9:13], crc32.ChecksumIEEE(payload))
	if _, err := f.WriteAt(hdr, off); err != nil {
		return 0, fmt.Errorf("store: record header: %w", err)
	}
	if _, err := f.WriteAt(payload, off+recHeaderSize); err != nil {
		return 0, fmt.Errorf("store: record payload: %w", err)
	}
	return recHeaderSize + int64(len(payload)), nil
}

// scanRecs streams every valid record from the start of f and returns the
// byte length of the longest valid prefix. The first sign of damage — bad
// magic, absurd length, checksum mismatch, torn tail — stops the scan; the
// caller decides whether to truncate. A callback error aborts with that
// error.
func scanRecs(f *os.File, fn func(kind byte, payload []byte) error) (int64, error) {
	info, err := f.Stat()
	if err != nil {
		return 0, err
	}
	total := info.Size()
	var off int64
	hdr := make([]byte, recHeaderSize)
	for off+recHeaderSize <= total {
		if _, err := f.ReadAt(hdr, off); err != nil {
			return off, err
		}
		if binary.LittleEndian.Uint32(hdr[0:4]) != recMagic {
			break
		}
		kind := hdr[4]
		length := binary.LittleEndian.Uint32(hdr[5:9])
		wantCRC := binary.LittleEndian.Uint32(hdr[9:13])
		if length > maxRecSize {
			break
		}
		if off+recHeaderSize+int64(length) > total {
			break // torn tail
		}
		payload := make([]byte, length)
		if _, err := f.ReadAt(payload, off+recHeaderSize); err != nil {
			return off, err
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			break
		}
		if err := fn(kind, payload); err != nil {
			return off, err
		}
		off += recHeaderSize + int64(length)
	}
	return off, nil
}

// openRecFile opens (or creates) a record file, replays its valid prefix
// through fn, truncates any damaged tail, and returns the file positioned
// for appends at the returned offset.
func openRecFile(path string, fn func(kind byte, payload []byte) error) (*os.File, int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("store: open %s: %w", path, err)
	}
	valid, err := scanRecs(f, fn)
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	info, statErr := f.Stat()
	if statErr != nil {
		f.Close()
		return nil, 0, statErr
	}
	if valid < info.Size() {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("store: truncating torn tail of %s: %w", path, err)
		}
	}
	return f, valid, nil
}
