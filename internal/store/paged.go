package store

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
	"bitcoinng/internal/utxo"
)

// pagedTable is an on-disk open-addressing hash table of UTXO entries behind
// a bounded write-back page cache: the utxo.Backend whose resident size does
// not grow with the ledger. Slots are fixed-width (flag + outpoint + entry)
// and probe linearly; deletes leave tombstones that a growth rebuild sweeps
// away. The table file is derived state — FileUTXO rebuilds it from its
// checkpoint and journal on every open — so it carries no header and is
// never fsynced for durability, only written back under cache pressure.
//
// The poisoned-coinbase side set stays in memory: it holds one hash per
// proven cheater, a population bounded by the number of fraud events, not by
// ledger size.
const (
	pageSize = 4096
	// slotSize is flag (1) + outpoint (36) + entry (49).
	slotSize     = 1 + utxo.OutPointWireSize + utxo.EntryWireSize
	slotsPerPage = uint64(pageSize / slotSize)
	// minSlots is the initial capacity; always a power of two so the probe
	// mask stays a single AND.
	minSlots = 1 << 10
	// defaultCachePages bounds the resident cache at 256 KiB per table.
	defaultCachePages = 64
)

// Slot occupancy flags.
const (
	slotEmpty byte = iota
	slotLive
	slotTomb
)

type tablePage struct {
	no    int64
	buf   []byte
	dirty bool
	el    *list.Element
}

type pagedTable struct {
	f        *os.File
	path     string
	nSlots   uint64
	count    uint64 // live entries
	tombs    uint64 // tombstoned slots (reclaimed on grow)
	cache    map[int64]*tablePage
	lru      *list.List // front = most recently used
	maxPages int
	poisoned map[crypto.Hash]bool
	stats    utxo.Stats
}

// newPagedTable creates (truncating any previous content) the table file.
// cachePages ≤ 0 takes the default budget.
func newPagedTable(path string, cachePages int) (*pagedTable, error) {
	if cachePages <= 0 {
		cachePages = defaultCachePages
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: table %s: %w", path, err)
	}
	return &pagedTable{
		f:        f,
		path:     path,
		nSlots:   minSlots,
		cache:    make(map[int64]*tablePage),
		lru:      list.New(),
		maxPages: cachePages,
		poisoned: make(map[crypto.Hash]bool),
	}, nil
}

// hashOf derives the probe start from the outpoint. TxIDs are cryptographic
// hashes, so their first eight bytes are already uniform; the index is
// spread by a Fibonacci multiplier so a transaction's outputs don't cluster
// into one probe run.
func hashOf(op types.OutPoint) uint64 {
	return binary.LittleEndian.Uint64(op.TxID[:8]) ^ (uint64(op.Index)+1)*0x9E3779B97F4A7C15
}

// page returns the cached page, faulting it in (and evicting the coldest
// dirty page) on a miss. Pages beyond the file's current size read as
// zeroes, which is exactly an empty slot run.
func (t *pagedTable) page(no int64) (*tablePage, error) {
	if p, ok := t.cache[no]; ok {
		t.stats.CacheHits++
		t.lru.MoveToFront(p.el)
		return p, nil
	}
	t.stats.CacheMisses++
	if len(t.cache) >= t.maxPages {
		if err := t.evictOne(); err != nil {
			return nil, err
		}
	}
	buf := make([]byte, pageSize)
	if _, err := t.f.ReadAt(buf, no*pageSize); err != nil && err != io.EOF {
		return nil, fmt.Errorf("store: table read page %d: %w", no, err)
	}
	t.stats.PageReads++
	p := &tablePage{no: no, buf: buf}
	p.el = t.lru.PushFront(p)
	t.cache[no] = p
	return p, nil
}

func (t *pagedTable) evictOne() error {
	el := t.lru.Back()
	if el == nil {
		return nil
	}
	p := el.Value.(*tablePage)
	if p.dirty {
		if err := t.writePage(p); err != nil {
			return err
		}
	}
	t.lru.Remove(el)
	delete(t.cache, p.no)
	return nil
}

func (t *pagedTable) writePage(p *tablePage) error {
	if _, err := t.f.WriteAt(p.buf, p.no*pageSize); err != nil {
		return fmt.Errorf("store: table write page %d: %w", p.no, err)
	}
	t.stats.PageWrites++
	p.dirty = false
	return nil
}

// flush writes every dirty cached page back.
func (t *pagedTable) flush() error {
	for el := t.lru.Front(); el != nil; el = el.Next() {
		p := el.Value.(*tablePage)
		if p.dirty {
			if err := t.writePage(p); err != nil {
				return err
			}
		}
	}
	return nil
}

// slot returns the page holding slot i and the offset of the slot within it.
func (t *pagedTable) slot(i uint64) (*tablePage, int, error) {
	p, err := t.page(int64(i / slotsPerPage))
	if err != nil {
		return nil, 0, err
	}
	return p, int(i%slotsPerPage) * slotSize, nil
}

// find locates op's slot. It returns (slot index, true) for a live match, or
// (insertion slot, false) when absent — the first tombstone on the probe
// path if one was crossed, else the terminating empty slot.
func (t *pagedTable) find(op types.OutPoint) (uint64, bool, error) {
	mask := t.nSlots - 1
	i := hashOf(op) & mask
	insert := uint64(0)
	haveInsert := false
	for probed := uint64(0); probed < t.nSlots; probed++ {
		p, off, err := t.slot(i)
		if err != nil {
			return 0, false, err
		}
		switch p.buf[off] {
		case slotEmpty:
			if haveInsert {
				return insert, false, nil
			}
			return i, false, nil
		case slotTomb:
			if !haveInsert {
				insert, haveInsert = i, true
			}
		case slotLive:
			if utxo.GetOutPoint(p.buf[off+1:]) == op {
				return i, true, nil
			}
		}
		i = (i + 1) & mask
	}
	// Table full of live+tombstone slots; growth keeps load ≤ 0.7 so this
	// is unreachable unless the file was corrupted under us.
	return 0, false, fmt.Errorf("store: table probe exhausted %d slots", t.nSlots)
}

func (t *pagedTable) readSlot(i uint64) (types.OutPoint, utxo.Entry, error) {
	p, off, err := t.slot(i)
	if err != nil {
		return types.OutPoint{}, utxo.Entry{}, err
	}
	return utxo.GetOutPoint(p.buf[off+1:]), utxo.GetEntry(p.buf[off+1+utxo.OutPointWireSize:]), nil
}

func (t *pagedTable) writeSlot(i uint64, flag byte, op types.OutPoint, e utxo.Entry) error {
	p, off, err := t.slot(i)
	if err != nil {
		return err
	}
	p.buf[off] = flag
	if flag == slotLive {
		utxo.PutOutPoint(p.buf[off+1:], op)
		utxo.PutEntry(p.buf[off+1+utxo.OutPointWireSize:], e)
	}
	p.dirty = true
	return nil
}

// fail converts an I/O error into a panic. Backend accessors (Get/Put/
// Delete/Range) have no error channel — the in-memory backend cannot fail —
// and a table that can no longer read its own pages cannot serve a ledger;
// crashing is the honest move, exactly like an evicted body that will not
// reload.
func fail(err error) {
	panic(fmt.Sprintf("store: paged table: %v", err))
}

func (t *pagedTable) Get(op types.OutPoint) (utxo.Entry, bool) {
	t.stats.Gets++
	i, ok, err := t.find(op)
	if err != nil {
		fail(err)
	}
	if !ok {
		return utxo.Entry{}, false
	}
	_, e, err := t.readSlot(i)
	if err != nil {
		fail(err)
	}
	return e, true
}

func (t *pagedTable) Put(op types.OutPoint, e utxo.Entry) {
	t.stats.Puts++
	if err := t.put(op, e); err != nil {
		fail(err)
	}
}

func (t *pagedTable) put(op types.OutPoint, e utxo.Entry) error {
	i, ok, err := t.find(op)
	if err != nil {
		return err
	}
	if !ok {
		// Check whether the insertion slot recycles a tombstone before
		// overwriting it.
		p, off, err := t.slot(i)
		if err != nil {
			return err
		}
		if p.buf[off] == slotTomb {
			t.tombs--
		}
		t.count++
	}
	if err := t.writeSlot(i, slotLive, op, e); err != nil {
		return err
	}
	if (t.count+t.tombs)*10 >= t.nSlots*7 {
		return t.grow()
	}
	return nil
}

func (t *pagedTable) Delete(op types.OutPoint) {
	t.stats.Deletes++
	i, ok, err := t.find(op)
	if err != nil {
		fail(err)
	}
	if !ok {
		return
	}
	if err := t.writeSlot(i, slotTomb, types.OutPoint{}, utxo.Entry{}); err != nil {
		fail(err)
	}
	t.count--
	t.tombs++
}

func (t *pagedTable) Len() int { return int(t.count) }

// Range iterates live slots in slot order — deterministic for a given
// operation history, unlike a map range, but still unspecified to callers
// (it reshuffles on growth), so consumers sort just as they must for the
// in-memory backend.
func (t *pagedTable) Range(fn func(op types.OutPoint, e utxo.Entry) bool) {
	for i := uint64(0); i < t.nSlots; i++ {
		p, off, err := t.slot(i)
		if err != nil {
			fail(err)
		}
		if p.buf[off] != slotLive {
			continue
		}
		op := utxo.GetOutPoint(p.buf[off+1:])
		e := utxo.GetEntry(p.buf[off+1+utxo.OutPointWireSize:])
		if !fn(op, e) {
			return
		}
	}
}

func (t *pagedTable) Poisoned(id crypto.Hash) bool { return t.poisoned[id] }

func (t *pagedTable) SetPoisoned(id crypto.Hash, on bool) {
	if on {
		t.poisoned[id] = true
	} else {
		delete(t.poisoned, id)
	}
}

// Snapshot materializes an isolated in-memory copy. Snapshots exist to
// stage branch validation, which no production path does against a file
// backend today; the O(n) copy keeps the two-sided isolation contract exact
// rather than complicating the table with copy-on-write overlays.
func (t *pagedTable) Snapshot() utxo.Backend {
	c := utxo.NewMemBackend()
	t.Range(func(op types.OutPoint, e utxo.Entry) bool {
		c.Put(op, e)
		return true
	})
	for id := range t.poisoned {
		c.SetPoisoned(id, true)
	}
	return c
}

// Reset drops every entry and poison mark, shrinking the table back to its
// initial capacity. Cumulative counters survive, like the in-memory backend.
func (t *pagedTable) Reset() error {
	if err := t.f.Truncate(0); err != nil {
		return fmt.Errorf("store: table reset: %w", err)
	}
	t.cache = make(map[int64]*tablePage)
	t.lru.Init()
	t.nSlots = minSlots
	t.count = 0
	t.tombs = 0
	t.poisoned = make(map[crypto.Hash]bool)
	return nil
}

// Sync writes dirty pages back. The table is derived state, so no fsync:
// its durability comes from the journal and checkpoint that rebuild it.
func (t *pagedTable) Sync() error { return t.flush() }

func (t *pagedTable) Close() error {
	if t.f == nil {
		return nil
	}
	err := t.flush()
	if cerr := t.f.Close(); err == nil {
		err = cerr
	}
	t.f = nil
	return err
}

func (t *pagedTable) Stats() utxo.Stats { return t.stats }

// grow rebuilds the table at double capacity, sweeping tombstones. The old
// file is scanned sequentially with a scratch page (after flushing the
// cache), entries re-probe into a fresh table file, and the new file is
// renamed over the old. Page-transfer counters keep accumulating; logical
// Get/Put counters do not (growth is not a ledger operation).
func (t *pagedTable) grow() error {
	if err := t.flush(); err != nil {
		return err
	}
	tmp := t.path + ".grow"
	nt, err := newPagedTable(tmp, t.maxPages)
	if err != nil {
		return err
	}
	nt.nSlots = t.nSlots * 2
	scratch := make([]byte, pageSize)
	oldPages := int64((t.nSlots + slotsPerPage - 1) / slotsPerPage)
	for no := int64(0); no < oldPages; no++ {
		if _, err := t.f.ReadAt(scratch, no*pageSize); err != nil && err != io.EOF {
			nt.Close()
			os.Remove(tmp)
			return fmt.Errorf("store: grow read page %d: %w", no, err)
		}
		t.stats.PageReads++
		base := uint64(no) * slotsPerPage
		for s := uint64(0); s < slotsPerPage; s++ {
			idx := base + s
			if idx >= t.nSlots {
				break
			}
			off := int(s) * slotSize
			if scratch[off] != slotLive {
				continue
			}
			op := utxo.GetOutPoint(scratch[off+1:])
			e := utxo.GetEntry(scratch[off+1+utxo.OutPointWireSize:])
			i, _, err := nt.find(op)
			if err == nil {
				err = nt.writeSlot(i, slotLive, op, e)
			}
			if err != nil {
				nt.Close()
				os.Remove(tmp)
				return err
			}
			nt.count++
		}
		// Zero the scratch for short tail reads of the next page.
		for i := range scratch {
			scratch[i] = 0
		}
	}
	if err := nt.flush(); err != nil {
		nt.Close()
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, t.path); err != nil {
		nt.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: grow swap: %w", err)
	}
	t.f.Close()
	t.f = nt.f
	t.nSlots = nt.nSlots
	t.tombs = 0
	t.cache = nt.cache
	t.lru = nt.lru
	t.stats.PageReads += nt.stats.PageReads
	t.stats.PageWrites += nt.stats.PageWrites
	t.stats.CacheHits += nt.stats.CacheHits
	t.stats.CacheMisses += nt.stats.CacheMisses
	return nil
}
