package store

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"bitcoinng/internal/blockstore"
	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
)

// The chain index pairs a block archive with an arrival-time table. Arrival
// times feed the first-seen tie-break, so they are consensus input: a node
// rebuilt from its index must replay the same (block, receivedAt) pairs its
// first life recorded, or the rebuilt fork choice could prefer a different
// tip than the one the node already acted on.

// MemIndex is the in-memory chain index: the original simulated-durability
// archive plus arrival times.
type MemIndex struct {
	mem   *blockstore.Mem
	times map[crypto.Hash]int64
}

// NewMemIndex builds an empty in-memory index.
func NewMemIndex() *MemIndex {
	return &MemIndex{mem: blockstore.NewMem(), times: make(map[crypto.Hash]int64)}
}

// Append stores the block with its arrival time; duplicates keep the
// original time (the first-seen rule is about the first arrival).
func (m *MemIndex) Append(b types.Block, receivedAt int64) error {
	h := b.Hash()
	if _, dup := m.times[h]; dup {
		return nil
	}
	m.times[h] = receivedAt
	return m.mem.Append(b)
}

// Get loads a block by hash.
func (m *MemIndex) Get(h crypto.Hash) (types.Block, error) { return m.mem.Get(h) }

// Contains reports whether the block is stored.
func (m *MemIndex) Contains(h crypto.Hash) bool { return m.mem.Contains(h) }

// Len returns the number of stored blocks.
func (m *MemIndex) Len() int { return m.mem.Len() }

// Hashes returns the stored block hashes in append order.
func (m *MemIndex) Hashes() []crypto.Hash { return m.mem.Hashes() }

// ReceivedAt returns the recorded arrival time for a stored block.
func (m *MemIndex) ReceivedAt(h crypto.Hash) (int64, bool) {
	t, ok := m.times[h]
	return t, ok
}

// Replay streams blocks in append order with their recorded arrival times.
func (m *MemIndex) Replay(fn func(b types.Block, receivedAt int64) error) error {
	return m.mem.Replay(func(b types.Block) error {
		return fn(b, m.times[b.Hash()])
	})
}

// Sync is a no-op: the in-memory index is "durable" only against simulated
// crashes, exactly like the archive it wraps.
func (m *MemIndex) Sync() error { return nil }

// Close releases nothing; the index stays readable (the simulated-crash
// harness keeps reading the survivor).
func (m *MemIndex) Close() error { return nil }

// recTime is the arrival-time sidecar's record kind: block hash + int64
// arrival time, little-endian.
const recTime byte = 1

// FileIndex is the durable chain index: the checksummed block archive plus
// an arrival-time sidecar in the same record format. The time record is
// written before its block, so a crash between the two leaves at worst an
// orphaned time (harmless), never a block without its time. Replay falls
// back to the block's header timestamp if a torn sidecar tail lost a time —
// a documented best-effort window for unsynced crashes; a Sync/Close'd
// index replays exactly.
type FileIndex struct {
	blocks *blockstore.Store
	times  *os.File
	tPath  string
	tOff   int64
	seen   map[crypto.Hash]int64
}

// OpenFileIndex opens (or creates) the chain index rooted at dir under the
// given name, recovering both files' longest valid prefixes.
func OpenFileIndex(dir, name string) (*FileIndex, error) {
	ix := &FileIndex{
		tPath: filepath.Join(dir, name+".times"),
		seen:  make(map[crypto.Hash]int64),
	}
	tf, off, err := openRecFile(ix.tPath, func(kind byte, payload []byte) error {
		if kind != recTime || len(payload) != crypto.HashSize+8 {
			return fmt.Errorf("store: times %s: bad record", ix.tPath)
		}
		var h crypto.Hash
		copy(h[:], payload)
		if _, dup := ix.seen[h]; !dup {
			ix.seen[h] = int64(binary.LittleEndian.Uint64(payload[crypto.HashSize:]))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	ix.times = tf
	ix.tOff = off
	bs, err := blockstore.Open(filepath.Join(dir, name+".blocks"))
	if err != nil {
		tf.Close()
		return nil, err
	}
	ix.blocks = bs
	return ix, nil
}

// Blocks exposes the underlying archive (the durability fuzz harness drives
// its sync policy directly).
func (ix *FileIndex) Blocks() *blockstore.Store { return ix.blocks }

// Append persists the block with its arrival time; duplicates keep the
// original time.
func (ix *FileIndex) Append(b types.Block, receivedAt int64) error {
	h := b.Hash()
	if _, dup := ix.seen[h]; dup {
		return nil
	}
	payload := make([]byte, crypto.HashSize+8)
	copy(payload, h[:])
	binary.LittleEndian.PutUint64(payload[crypto.HashSize:], uint64(receivedAt))
	n, err := appendRec(ix.times, ix.tOff, recTime, payload)
	if err != nil {
		return fmt.Errorf("store: times %s: %w", ix.tPath, err)
	}
	ix.tOff += n
	if err := ix.blocks.Append(b); err != nil {
		return err
	}
	ix.seen[h] = receivedAt
	return nil
}

// Get loads a block by hash.
func (ix *FileIndex) Get(h crypto.Hash) (types.Block, error) { return ix.blocks.Get(h) }

// Contains reports whether the block is stored.
func (ix *FileIndex) Contains(h crypto.Hash) bool { return ix.blocks.Contains(h) }

// Len returns the number of stored blocks.
func (ix *FileIndex) Len() int { return ix.blocks.Len() }

// Hashes returns the stored block hashes in append order.
func (ix *FileIndex) Hashes() []crypto.Hash { return ix.blocks.Hashes() }

// ReceivedAt returns the recorded arrival time for a stored block.
func (ix *FileIndex) ReceivedAt(h crypto.Hash) (int64, bool) {
	t, ok := ix.seen[h]
	return t, ok
}

// Replay streams blocks in append order with their recorded arrival times,
// falling back to the header timestamp for a time lost to a torn sidecar.
func (ix *FileIndex) Replay(fn func(b types.Block, receivedAt int64) error) error {
	return ix.blocks.Replay(func(b types.Block) error {
		t, ok := ix.seen[b.Hash()]
		if !ok {
			t = b.Time()
		}
		return fn(b, t)
	})
}

// Sync fsyncs the sidecar and the block archive.
func (ix *FileIndex) Sync() error {
	if err := ix.times.Sync(); err != nil {
		return fmt.Errorf("store: times sync: %w", err)
	}
	return ix.blocks.Sync()
}

// Close flushes and releases both files.
func (ix *FileIndex) Close() error {
	var first error
	if ix.times != nil {
		if err := ix.times.Sync(); err != nil && first == nil {
			first = err
		}
		if err := ix.times.Close(); err != nil && first == nil {
			first = err
		}
		ix.times = nil
	}
	if ix.blocks != nil {
		if err := ix.blocks.Close(); err != nil && first == nil {
			first = err
		}
		ix.blocks = nil
	}
	return first
}
