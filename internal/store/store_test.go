package store

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/sim"
	"bitcoinng/internal/types"
	"bitcoinng/internal/utxo"
)

func testKey(t testing.TB, seed int64) *crypto.PrivateKey {
	t.Helper()
	k, err := crypto.GenerateKey(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	return k
}

func outpoint(seed int64, idx uint32) types.OutPoint {
	var h crypto.Hash
	r := rand.New(rand.NewSource(seed))
	r.Read(h[:])
	return types.OutPoint{TxID: h, Index: idx}
}

func TestFactoryLocators(t *testing.T) {
	f, err := NewFactory("")
	if err != nil || !f.InMemory() {
		t.Fatalf("empty locator: %v inMemory=%v", err, f.InMemory())
	}
	if _, err := NewFactory("bolt:x"); err == nil {
		t.Fatal("unknown locator accepted")
	}
	dir := t.TempDir()
	f, err = NewFactory("file:" + dir)
	if err != nil || f.InMemory() || f.Dir() != dir {
		t.Fatalf("file locator: %v dir=%q", err, f.Dir())
	}
	// Ephemeral root is created and removed by Close.
	f, err = NewFactory("file:")
	if err != nil {
		t.Fatal(err)
	}
	root := f.Dir()
	if root == "" {
		t.Fatal("ephemeral factory has no root")
	}
	if _, err := os.Stat(root); err != nil {
		t.Fatalf("ephemeral root missing: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(root); !os.IsNotExist(err) {
		t.Fatalf("ephemeral root survived Close: %v", err)
	}
}

// TestPagedTableGrowAndDelete pushes the table through several growth
// rebuilds with a tiny page cache and verifies every entry survives, then
// deletes half and verifies tombstone behavior.
func TestPagedTableGrowAndDelete(t *testing.T) {
	tab, err := newPagedTable(filepath.Join(t.TempDir(), "u.tab"), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()

	const n = 5000 // minSlots is 1024, so this forces multiple doublings
	ops := make([]types.OutPoint, n)
	for i := range ops {
		ops[i] = outpoint(int64(i), uint32(i%7))
		tab.Put(ops[i], utxo.Entry{Value: types.Amount(i), Height: uint64(i)})
	}
	if tab.Len() != n {
		t.Fatalf("Len = %d, want %d", tab.Len(), n)
	}
	for i, op := range ops {
		e, ok := tab.Get(op)
		if !ok || e.Value != types.Amount(i) {
			t.Fatalf("entry %d: ok=%v value=%d", i, ok, e.Value)
		}
	}
	// Delete odd entries; evens must survive, odds must stay gone even
	// after tombstones are crossed on probe paths.
	for i := 1; i < n; i += 2 {
		tab.Delete(ops[i])
	}
	if tab.Len() != n/2 {
		t.Fatalf("Len after deletes = %d, want %d", tab.Len(), n/2)
	}
	for i, op := range ops {
		_, ok := tab.Get(op)
		if want := i%2 == 0; ok != want {
			t.Fatalf("entry %d present=%v, want %v", i, ok, want)
		}
	}
	// Re-insert a deleted key: must reuse a tombstone, not duplicate.
	tab.Put(ops[1], utxo.Entry{Value: 777})
	if e, ok := tab.Get(ops[1]); !ok || e.Value != 777 {
		t.Fatalf("reinserted entry: ok=%v value=%d", ok, e.Value)
	}
	if tab.Len() != n/2+1 {
		t.Fatalf("Len after reinsert = %d", tab.Len())
	}
	// Range must see exactly the live set.
	seen := 0
	tab.Range(func(op types.OutPoint, e utxo.Entry) bool { seen++; return true })
	if seen != tab.Len() {
		t.Fatalf("Range saw %d entries, Len is %d", seen, tab.Len())
	}
	st := tab.Stats()
	if st.PageReads == 0 || st.PageWrites == 0 || st.CacheMisses == 0 {
		t.Errorf("expected nonzero paging counters, got %+v", st)
	}
}

// TestPagedTableSnapshotIsolation checks the two-sided isolation contract
// the in-memory backend documents, on the file backend.
func TestPagedTableSnapshotIsolation(t *testing.T) {
	tab, err := newPagedTable(filepath.Join(t.TempDir(), "u.tab"), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()
	a, b := outpoint(1, 0), outpoint(2, 0)
	var cb crypto.Hash
	cb[0] = 9
	tab.Put(a, utxo.Entry{Value: 10})
	tab.SetPoisoned(cb, true)

	snap := tab.Snapshot()
	snap.Put(b, utxo.Entry{Value: 20})
	snap.Delete(a)
	snap.SetPoisoned(cb, false)
	tab.Put(a, utxo.Entry{Value: 11})

	if _, ok := tab.Get(b); ok {
		t.Error("snapshot Put leaked into table")
	}
	if e, ok := tab.Get(a); !ok || e.Value != 11 {
		t.Errorf("table entry a: ok=%v e=%+v", ok, e)
	}
	if !tab.Poisoned(cb) {
		t.Error("snapshot SetPoisoned(false) leaked into table")
	}
	if e, ok := snap.Get(a); ok {
		t.Errorf("table Put after snapshot leaked in: %+v", e)
	}
	if snap.Poisoned(cb) {
		t.Error("snapshot still poisoned")
	}
}

// fundedFileUTXO opens a FileUTXO and applies a height-0 coinbase paying
// amounts to key, returning the outpoints.
func applyFunding(t *testing.T, u UTXO, key *crypto.PrivateKey, amounts ...types.Amount) []types.OutPoint {
	t.Helper()
	outs := make([]types.TxOutput, len(amounts))
	for i, a := range amounts {
		outs[i] = types.TxOutput{Value: a, To: key.Public().Addr()}
	}
	cb := &types.Transaction{Kind: types.TxCoinbase, Outputs: outs}
	ref := utxo.BlockRef{Block: crypto.Hash{1}, Parent: crypto.ZeroHash}
	ctx := utxo.BlockContext{Height: 0, Params: types.DefaultParams(), Ref: ref}
	if _, _, err := u.ApplyBlock([]*types.Transaction{cb}, ctx); err != nil {
		t.Fatalf("funding: %v", err)
	}
	ops := make([]types.OutPoint, len(amounts))
	for i := range ops {
		ops[i] = types.OutPoint{TxID: cb.ID(), Index: uint32(i)}
	}
	return ops
}

func collectEntries(u UTXO) []string {
	var out []string
	u.Range(func(op types.OutPoint, e utxo.Entry) bool {
		out = append(out, fmt.Sprintf("%s:%d:%d:%v:%v", op.TxID.Short(), op.Index,
			e.Value, e.Coinbase, e.Revoked))
		return true
	})
	sort.Strings(out)
	return out
}

// TestFileUTXOReopenFidelity applies blocks, closes cleanly, reopens, and
// requires the recovered state to match entry for entry.
func TestFileUTXOReopenFidelity(t *testing.T) {
	dir := t.TempDir()
	u, err := OpenFileUTXO(dir, "n0", 8)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, 1)
	ops := applyFunding(t, u, key, 100, 50, 25)

	tx := &types.Transaction{
		Kind:    types.TxRegular,
		Inputs:  []types.TxInput{{Prev: ops[0]}},
		Outputs: []types.TxOutput{{Value: 90, To: crypto.Address{7}}},
	}
	tx.SignInput(0, key)
	ref := utxo.BlockRef{Block: crypto.Hash{2}, Parent: crypto.Hash{1}}
	ctx := utxo.BlockContext{Height: 1, Params: types.DefaultParams(), Ref: ref}
	if _, _, err := u.ApplyBlock([]*types.Transaction{tx}, ctx); err != nil {
		t.Fatal(err)
	}
	want := collectEntries(u)
	wantLen := u.Len()
	if err := u.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenFileUTXO(dir, "n0", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != wantLen {
		t.Fatalf("reopened Len = %d, want %d", r.Len(), wantLen)
	}
	if got := collectEntries(r); !equalStrings(got, want) {
		t.Fatalf("reopened entries mismatch:\n got %v\nwant %v", got, want)
	}
	if got := r.BalanceOf(crypto.Address{7}); got != 90 {
		t.Fatalf("reopened BalanceOf = %d, want 90", got)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFileUTXOCheckpointCycle forces a checkpoint, keeps mutating, and
// verifies reopen recovers checkpoint + post-checkpoint journal exactly.
func TestFileUTXOCheckpointCycle(t *testing.T) {
	dir := t.TempDir()
	u, err := OpenFileUTXO(dir, "n0", 8)
	if err != nil {
		t.Fatal(err)
	}
	u.ckptEvery = 1 // checkpoint on every Sync
	key := testKey(t, 2)
	applyFunding(t, u, key, 10, 20, 30)
	if err := u.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := u.Stats().Checkpoints; got != 1 {
		t.Fatalf("Checkpoints = %d, want 1", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "n0.ckpt")); err != nil {
		t.Fatalf("checkpoint file missing: %v", err)
	}
	// Post-checkpoint mutation lives only in the new journal epoch.
	key2 := testKey(t, 3)
	applyFunding(t, u, key2, 40)
	want := collectEntries(u)
	if err := u.Sync(); err != nil { // second checkpoint
		t.Fatal(err)
	}
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenFileUTXO(dir, "n0", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := collectEntries(r); !equalStrings(got, want) {
		t.Fatalf("post-checkpoint reopen mismatch:\n got %v\nwant %v", got, want)
	}
}

// TestFileUTXOTornJournalRecovery truncates the journal mid-record and
// appends garbage, then requires reopen to recover exactly the longest
// valid prefix.
func TestFileUTXOTornJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	u, err := OpenFileUTXO(dir, "n0", 8)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, 4)
	applyFunding(t, u, key, 100)
	want := collectEntries(u)
	if err := u.Sync(); err != nil {
		t.Fatal(err)
	}
	durable := u.jOff
	// A second funding block rides the journal tail we are about to tear.
	applyFunding(t, u, testKey(t, 5), 60)
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}

	jPath := filepath.Join(dir, "n0.journal")
	info, err := os.Stat(jPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() <= durable {
		t.Fatalf("journal did not grow past durable watermark (%d <= %d)", info.Size(), durable)
	}
	// Tear the tail: cut into the middle of the last record, then smear
	// garbage after it.
	if err := os.Truncate(jPath, durable+7); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(jPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(strings.Repeat("garbage", 3))); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := OpenFileUTXO(dir, "n0", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := collectEntries(r); !equalStrings(got, want) {
		t.Fatalf("torn-tail recovery mismatch:\n got %v\nwant %v", got, want)
	}
	// The torn tail must be gone from disk so appends restart cleanly.
	if info, err := os.Stat(jPath); err != nil || info.Size() != durable {
		t.Fatalf("journal not truncated to valid prefix: size=%d want=%d err=%v",
			info.Size(), durable, err)
	}
}

// TestFileUTXOStaleJournalDiscarded simulates a crash between checkpoint
// publication and journal reset: the journal's epoch predates the
// checkpoint, so its records must be discarded, not replayed twice.
func TestFileUTXOStaleJournalDiscarded(t *testing.T) {
	dir := t.TempDir()
	u, err := OpenFileUTXO(dir, "n0", 8)
	if err != nil {
		t.Fatal(err)
	}
	u.ckptEvery = 1
	key := testKey(t, 6)
	applyFunding(t, u, key, 100)
	if err := u.Sync(); err != nil { // checkpoint, journal now epoch 1
		t.Fatal(err)
	}
	want := collectEntries(u)
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}
	// Forge the crash window: overwrite the journal with an epoch-0 header
	// and a bogus apply record — a stale journal from before the checkpoint.
	jPath := filepath.Join(dir, "n0.journal")
	jf, err := os.OpenFile(jPath, os.O_RDWR|os.O_TRUNC, 0)
	if err != nil {
		t.Fatal(err)
	}
	var off int64
	var epoch0 [8]byte
	n, err := appendRec(jf, off, recJEpoch, epoch0[:])
	if err != nil {
		t.Fatal(err)
	}
	off += n
	// Re-journal the same funding delta; replaying it onto the checkpoint
	// would panic (duplicate create → redo of existing outputs) or corrupt.
	d, _, ferr := func() (*utxo.Delta, []types.Amount, error) {
		s := utxo.New()
		outs := []types.TxOutput{{Value: 100, To: key.Public().Addr()}}
		cb := &types.Transaction{Kind: types.TxCoinbase, Outputs: outs}
		return s.ApplyBlock([]*types.Transaction{cb},
			utxo.BlockContext{Height: 0, Params: types.DefaultParams()})
	}()
	if ferr != nil {
		t.Fatal(ferr)
	}
	if _, err := appendRec(jf, off, recJApply,
		encodeJournalOp(utxo.BlockRef{Block: crypto.Hash{1}}, d)); err != nil {
		t.Fatal(err)
	}
	jf.Close()

	r, err := OpenFileUTXO(dir, "n0", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := collectEntries(r); !equalStrings(got, want) {
		t.Fatalf("stale journal not discarded:\n got %v\nwant %v", got, want)
	}
}

// TestFileUTXOResetStartsClean mirrors the restart path: Reset must drop
// table, journal, and checkpoint so a chain replay starts from genesis.
func TestFileUTXOResetStartsClean(t *testing.T) {
	dir := t.TempDir()
	u, err := OpenFileUTXO(dir, "n0", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	u.ckptEvery = 1
	applyFunding(t, u, testKey(t, 7), 10, 20)
	if err := u.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := u.Reset(); err != nil {
		t.Fatal(err)
	}
	if u.Len() != 0 {
		t.Fatalf("Len after Reset = %d", u.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, "n0.ckpt")); !os.IsNotExist(err) {
		t.Fatalf("checkpoint survived Reset: %v", err)
	}
	// The store must accept fresh state after Reset.
	applyFunding(t, u, testKey(t, 8), 5)
	if u.Len() != 1 {
		t.Fatalf("Len after post-Reset apply = %d", u.Len())
	}
}

func makeChain(t *testing.T, n int) []types.Block {
	t.Helper()
	key, err := crypto.GenerateKey(sim.NewRand(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	blocks := make([]types.Block, 0, n)
	prev := crypto.ZeroHash
	for i := 0; i < n; i++ {
		if i%3 == 2 {
			mb := &types.MicroBlock{
				Header: types.MicroBlockHeader{
					Prev:      prev,
					TxRoot:    crypto.MerkleRoot(nil),
					TimeNanos: int64(i),
				},
			}
			mb.Header.Sign(key)
			blocks = append(blocks, mb)
			prev = mb.Hash()
			continue
		}
		txs := []*types.Transaction{{
			Kind:    types.TxCoinbase,
			Outputs: []types.TxOutput{{Value: 1, To: key.Public().Addr()}},
			Height:  uint64(i + 1),
		}}
		kb := &types.KeyBlock{
			Header: types.KeyBlockHeader{
				Prev:       prev,
				MerkleRoot: crypto.MerkleRoot(types.TxIDs(txs)),
				TimeNanos:  int64(i),
				Target:     crypto.EasiestTarget,
				LeaderKey:  key.Public(),
			},
			Txs:          txs,
			SimulatedPoW: true,
		}
		blocks = append(blocks, kb)
		prev = kb.Hash()
	}
	return blocks
}

// indexContract drives the behavior both ChainIndex implementations must
// share: append order, duplicate-keeps-original-time, ReceivedAt, Replay.
func indexContract(t *testing.T, ix ChainIndex) {
	t.Helper()
	blocks := makeChain(t, 6)
	for i, b := range blocks {
		if err := ix.Append(b, int64(1000+i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	// Duplicate append keeps the FIRST time.
	if err := ix.Append(blocks[2], 9999); err != nil {
		t.Fatal(err)
	}
	if got, ok := ix.ReceivedAt(blocks[2].Hash()); !ok || got != 1002 {
		t.Fatalf("ReceivedAt after dup = %d ok=%v, want 1002", got, ok)
	}
	if ix.Len() != len(blocks) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(blocks))
	}
	hs := ix.Hashes()
	for i, b := range blocks {
		if hs[i] != b.Hash() {
			t.Fatalf("Hashes[%d] out of order", i)
		}
		if !ix.Contains(b.Hash()) {
			t.Fatalf("Contains(%d) = false", i)
		}
		got, err := ix.Get(b.Hash())
		if err != nil || got.Hash() != b.Hash() {
			t.Fatalf("Get(%d): %v", i, err)
		}
	}
	i := 0
	err := ix.Replay(func(b types.Block, at int64) error {
		if b.Hash() != blocks[i].Hash() || at != int64(1000+i) {
			t.Fatalf("Replay %d: hash/time mismatch (at=%d)", i, at)
		}
		i++
		return nil
	})
	if err != nil || i != len(blocks) {
		t.Fatalf("Replay: %v after %d blocks", err, i)
	}
}

func TestMemIndexContract(t *testing.T) { indexContract(t, NewMemIndex()) }

func TestFileIndexContract(t *testing.T) {
	ix, err := OpenFileIndex(t.TempDir(), "n0")
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	indexContract(t, ix)
}

// TestFileIndexReopenTimes is the satellite-3 core: a reopened index must
// serve the same (block, receivedAt) pairs, so the rebuilt node's first-seen
// tie-break sees the inputs its first life recorded — not the reopen clock.
func TestFileIndexReopenTimes(t *testing.T) {
	dir := t.TempDir()
	ix, err := OpenFileIndex(dir, "n0")
	if err != nil {
		t.Fatal(err)
	}
	blocks := makeChain(t, 5)
	for i, b := range blocks {
		if err := ix.Append(b, int64(5000+i*3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenFileIndex(dir, "n0")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != len(blocks) {
		t.Fatalf("reopened Len = %d", r.Len())
	}
	i := 0
	err = r.Replay(func(b types.Block, at int64) error {
		if b.Hash() != blocks[i].Hash() {
			t.Fatalf("Replay %d: wrong block", i)
		}
		if at != int64(5000+i*3) {
			t.Fatalf("Replay %d: receivedAt=%d, want %d — reopen lost arrival times", i, at, 5000+i*3)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Appending a block the first life stored must stay a no-op.
	if err := r.Append(blocks[0], 99999); err != nil {
		t.Fatal(err)
	}
	if got, _ := r.ReceivedAt(blocks[0].Hash()); got != 5000 {
		t.Fatalf("duplicate append after reopen changed time: %d", got)
	}
}

// TestFactoryBuildsWorkingStores exercises both factory paths end to end.
func TestFactoryBuildsWorkingStores(t *testing.T) {
	for _, url := range []string{"mem:", "file:" + t.TempDir()} {
		f, err := NewFactory(url)
		if err != nil {
			t.Fatal(err)
		}
		u, err := f.NewUTXO("n0")
		if err != nil {
			t.Fatalf("%s: NewUTXO: %v", url, err)
		}
		applyFunding(t, u, testKey(t, 9), 42)
		if u.Len() != 1 {
			t.Fatalf("%s: Len = %d", url, u.Len())
		}
		if err := u.Sync(); err != nil {
			t.Fatalf("%s: Sync: %v", url, err)
		}
		if err := u.Close(); err != nil {
			t.Fatalf("%s: Close: %v", url, err)
		}
		ix, err := f.NewChainIndex("n0")
		if err != nil {
			t.Fatalf("%s: NewChainIndex: %v", url, err)
		}
		indexContract(t, ix)
		if err := ix.Close(); err != nil {
			t.Fatalf("%s: index Close: %v", url, err)
		}
		f.Close()
	}
}

// TestSetCloneIsolationPagedBackend runs the Set.Clone mutation-isolation
// contract over the paged-table backend: the snapshot materializes in
// memory, so branch validation staged on a clone never touches the disk
// image, and later table writes never reach an outstanding clone.
func TestSetCloneIsolationPagedBackend(t *testing.T) {
	tab, err := newPagedTable(filepath.Join(t.TempDir(), "iso.tab"), 8)
	if err != nil {
		t.Fatal(err)
	}
	s := utxo.NewWith(tab)
	defer s.Close()
	key := testKey(t, 31)
	ops := applyFunding(t, s, key, 1000, 500)
	before := collectEntries(s)

	clone := s.Clone()
	ctx := utxo.BlockContext{Height: 500, Params: types.DefaultParams()}

	// Clone → table: a spend staged on the clone leaves the disk image and
	// the live set untouched.
	spend := &types.Transaction{
		Kind:   types.TxRegular,
		Inputs: []types.TxInput{{Prev: ops[0]}},
		Outputs: []types.TxOutput{
			{Value: 1000, To: key.Public().Addr()},
		},
	}
	spend.SignInput(0, key)
	if _, _, err := clone.ApplyBlock([]*types.Transaction{spend}, ctx); err != nil {
		t.Fatal(err)
	}
	if got := collectEntries(s); !equalStrings(got, before) {
		t.Errorf("clone spend reached the paged table:\n got %v\nwant %v", got, before)
	}

	// Table → clone: a spend applied to the live set leaves the clone's
	// view untouched.
	cloneBefore := collectEntries(clone)
	spend2 := &types.Transaction{
		Kind:   types.TxRegular,
		Inputs: []types.TxInput{{Prev: ops[1]}},
		Outputs: []types.TxOutput{
			{Value: 500, To: key.Public().Addr()},
		},
	}
	spend2.SignInput(0, key)
	if _, _, err := s.ApplyBlock([]*types.Transaction{spend2}, ctx); err != nil {
		t.Fatal(err)
	}
	if got := collectEntries(clone); !equalStrings(got, cloneBefore) {
		t.Errorf("live spend reached the clone:\n got %v\nwant %v", got, cloneBefore)
	}
}
