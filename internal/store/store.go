// Package store is the pluggable persistence layer under a node: ledger
// (UTXO) storage and the chain index (block bodies + arrival times), each
// with an in-memory and a file-backed implementation selected through one
// URL-style locator. The file backends keep the working set on disk behind a
// bounded page cache, so total chain state can exceed process RAM; the
// in-memory backends are the original RAM-bound fast path.
//
// Both implementations of each interface must behave identically at the
// consensus surface — the chaos differential replays whole experiments
// across backends and byte-compares the reports — and the parity linter
// holds their method sets structurally in sync.
package store

import (
	"fmt"
	"os"
	"strings"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
	"bitcoinng/internal/utxo"
)

// UTXO is the full lifecycle surface of a pluggable ledger store: the
// chain.UTXOStore contract (stated structurally here to keep this package
// below the chain layer) plus the lifecycle the harnesses drive. *utxo.Set
// satisfies it in memory; FileUTXO is the beyond-RAM implementation.
type UTXO interface {
	Lookup(op types.OutPoint) (utxo.Entry, bool)
	Len() int
	Range(fn func(op types.OutPoint, e utxo.Entry) bool)
	BalanceOf(addr crypto.Address) types.Amount
	Poisoned(coinbaseID crypto.Hash) bool
	ApplyBlock(txs []*types.Transaction, ctx utxo.BlockContext) (*utxo.Delta, []types.Amount, error)
	RedoBlock(d *utxo.Delta, at utxo.BlockRef)
	UndoBlock(d *utxo.Delta, at utxo.BlockRef)
	Stats() utxo.Stats

	// Reset drops all state; the restart path resets before replaying the
	// durable chain prefix so a half-synced store never double-applies.
	Reset() error
	// Sync flushes buffered state to stable storage (and lets file backends
	// take periodic checkpoints); call it at quiescent boundaries.
	Sync() error
	// Close releases resources; the store is unusable afterwards.
	Close() error
}

// ChainIndex is a node's durable chain archive: every accepted block in
// append order together with its local arrival time. The arrival time is
// part of consensus-visible state — the first-seen tie-break reads it — so a
// reopened index must replay the same (block, receivedAt) pairs the first
// life recorded, or the rebuilt node would break ties differently than it
// did before the restart.
type ChainIndex interface {
	// Append persists a block with its arrival time. Appending an
	// already-stored block is a no-op that keeps the original time (the
	// first-seen rule is exactly about the FIRST arrival).
	Append(b types.Block, receivedAt int64) error
	// Get loads a block by hash.
	Get(h crypto.Hash) (types.Block, error)
	// Contains reports whether the block is stored.
	Contains(h crypto.Hash) bool
	// Len returns the number of stored blocks.
	Len() int
	// Hashes returns the stored block hashes in append order.
	Hashes() []crypto.Hash
	// ReceivedAt returns the recorded arrival time for a stored block.
	ReceivedAt(h crypto.Hash) (int64, bool)
	// Replay streams every stored block in append order with its recorded
	// arrival time. Iteration stops at the first callback error.
	Replay(fn func(b types.Block, receivedAt int64) error) error
	// Sync flushes appended records to stable storage.
	Sync() error
	// Close releases resources.
	Close() error
}

// Factory builds per-node stores from one URL-style locator:
//
//	mem:             in-memory backends (the default)
//	file:<dir>       file backends rooted at <dir>
//	file:            file backends in a fresh temporary directory that
//	                 Close removes — the chaos differential's throwaway mode
//
// Every store a factory hands out is independent; Close closes the factory's
// bookkeeping only (per-store Close is the owner's job), plus the temporary
// root when the factory created one.
type Factory struct {
	dir       string // empty for mem:
	ephemeral bool   // dir was created by NewFactory and is removed on Close
}

// NewFactory parses the locator. An empty string means "mem:".
func NewFactory(url string) (*Factory, error) {
	switch {
	case url == "" || url == "mem:" || url == "mem":
		return &Factory{}, nil
	case strings.HasPrefix(url, "file:"):
		dir := strings.TrimPrefix(url, "file:")
		if dir == "" {
			tmp, err := os.MkdirTemp("", "ngstore-")
			if err != nil {
				return nil, fmt.Errorf("store: temp root: %w", err)
			}
			return &Factory{dir: tmp, ephemeral: true}, nil
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: root %s: %w", dir, err)
		}
		return &Factory{dir: dir}, nil
	default:
		return nil, fmt.Errorf("store: unknown locator %q (want mem: or file:<dir>)", url)
	}
}

// InMemory reports whether the factory hands out RAM-bound stores.
func (f *Factory) InMemory() bool { return f.dir == "" }

// Dir returns the file root ("" for mem:).
func (f *Factory) Dir() string { return f.dir }

// NewUTXO builds the named ledger store.
func (f *Factory) NewUTXO(name string) (UTXO, error) {
	if f.dir == "" {
		return utxo.New(), nil
	}
	return OpenFileUTXO(f.dir, name, 0)
}

// NewChainIndex builds the named chain index.
func (f *Factory) NewChainIndex(name string) (ChainIndex, error) {
	if f.dir == "" {
		return NewMemIndex(), nil
	}
	return OpenFileIndex(f.dir, name)
}

// Close removes the temporary root when the factory created one.
func (f *Factory) Close() error {
	if f.ephemeral && f.dir != "" {
		dir := f.dir
		f.dir = ""
		return os.RemoveAll(dir)
	}
	return nil
}
