package bitcoin

import (
	"fmt"

	"bitcoinng/internal/chain"
	"bitcoinng/internal/crypto"
	"bitcoinng/internal/mining"
	"bitcoinng/internal/node"
	"bitcoinng/internal/types"
	"bitcoinng/internal/validate"
)

// coinbaseReserve is the block-size headroom kept for the header and
// coinbase when filling a block from the mempool (header ≈ 90 B, one-output
// coinbase ≈ 60 B).
const coinbaseReserve = 160

// Config configures a Bitcoin node.
type Config struct {
	// Params are the consensus parameters (block size cap, subsidy,
	// maturity, retarget schedule, tie-break rule).
	Params types.Params
	// Key receives this node's coinbase rewards.
	Key *crypto.PrivateKey
	// Genesis is the shared genesis block.
	Genesis *types.PowBlock
	// Recorder receives metric events; nil discards them.
	Recorder node.Recorder
	// SimulatedMining marks blocks as scheduler-generated and accepts such
	// blocks from peers (the experiments' regtest mode). Live nodes leave
	// it false and grind real nonces.
	SimulatedMining bool
	// ForkChoice overrides the fork-choice rule; nil selects the heaviest
	// chain. internal/ghost substitutes the heaviest-subtree rule (§9).
	ForkChoice chain.ForkChoice
	// ConnectCache, when set, shares memoized connect verdicts (UTXO
	// deltas, fees) with every other node whose rules fingerprint matches;
	// nil validates everything locally.
	ConnectCache *validate.Cache
	// UTXO, when set, swaps the ledger storage backend (internal/store);
	// nil keeps the in-memory set.
	UTXO chain.UTXOStore
}

// Node is a Bitcoin protocol node.
type Node struct {
	*node.Base
	cfg   Config
	miner *mining.Miner
}

// New builds a Bitcoin node on env. Call Miner().SetRate and Start (or drive
// MineBlock directly) to produce blocks.
func New(env node.Env, cfg Config) (*Node, error) {
	if cfg.Key == nil {
		return nil, fmt.Errorf("bitcoin: config needs a key")
	}
	choice := cfg.ForkChoice
	if choice == nil {
		choice = &chain.HeaviestChain{RandomTieBreak: cfg.Params.RandomTieBreak, Rand: env.Rand()}
	}
	st, err := chain.New(cfg.Genesis, cfg.Params, Rules{AllowSimulatedPoW: cfg.SimulatedMining}, choice,
		chain.WithConnectCache(cfg.ConnectCache), chain.WithUTXOStore(cfg.UTXO))
	if err != nil {
		return nil, err
	}
	n := &Node{
		Base: node.NewBase(env, st, cfg.Recorder),
		cfg:  cfg,
	}
	return n, nil
}

// AttachMiner wires a simulated-mining scheduler that assembles and submits
// a block each time it fires. The experiment harness sets the rate from the
// node's share of mining power.
func (n *Node) AttachMiner(m *mining.Miner) {
	n.miner = m
}

// Miner returns the node's mining scheduler; nil until AttachMiner.
func (n *Node) Miner() *mining.Miner { return n.miner }

// MineBlock assembles a block on the current tip and submits it, returning
// the block. It is the scheduler's onFind callback and is also called
// directly by tests.
func (n *Node) MineBlock() *types.PowBlock {
	b := n.AssembleBlock()
	n.SubmitOwnBlock(b)
	return b
}

// AssembleBlock builds (without submitting) the next block: mempool
// transactions up to the size cap, a coinbase claiming subsidy plus fees,
// and the scheduled difficulty target.
func (n *Node) AssembleBlock() *types.PowBlock {
	tip := n.State.Tip()
	params := n.cfg.Params
	candidates := n.Pool.Select(params.MaxBlockSize - coinbaseReserve)
	txs, fees := FilterSpendable(n.State, candidates, tip.KeyHeight+1)

	coinbase := &types.Transaction{
		Kind:    types.TxCoinbase,
		Outputs: []types.TxOutput{{Value: params.Subsidy + fees, To: n.cfg.Key.Public().Addr()}},
		Height:  tip.KeyHeight + 1,
	}
	all := append([]*types.Transaction{coinbase}, txs...)

	target := chain.NextTarget(tip, params)
	b := &types.PowBlock{
		Header: types.PowHeader{
			Prev:       tip.Hash(),
			MerkleRoot: crypto.MerkleRoot(types.TxIDs(all)),
			TimeNanos:  n.Env.Now(),
			Target:     target,
		},
		Txs:          all,
		SimulatedPoW: n.cfg.SimulatedMining,
	}
	return b
}

// FilterSpendable drops candidate transactions a block built at the given
// key height could not connect: inputs missing from the UTXO set, revoked,
// owned by someone else, immature coinbases, or value overflows. It tracks
// intra-block spends so chained candidates survive, and returns total fees.
// Bitcoin-NG microblock assembly (internal/core) reuses it.
func FilterSpendable(st *chain.State, candidates []*types.Transaction, atKeyHeight uint64) ([]*types.Transaction, types.Amount) {
	var (
		out      []*types.Transaction
		fees     types.Amount
		produced = make(map[types.OutPoint]types.Amount)
		consumed = make(map[types.OutPoint]bool)
	)
	maturity := uint64(st.Params().CoinbaseMaturity)
	for _, tx := range candidates {
		var in types.Amount
		ok := true
		for i := range tx.Inputs {
			op := tx.Inputs[i].Prev
			if consumed[op] {
				ok = false
				break
			}
			if v, hit := produced[op]; hit {
				in += v
				continue
			}
			e, hit := st.UTXO().Lookup(op)
			if !hit || e.Revoked || e.To != tx.InputAddr(i) {
				ok = false
				break
			}
			if e.Coinbase && atKeyHeight-e.Height < maturity {
				ok = false
				break
			}
			in += e.Value
		}
		if !ok || tx.OutputSum() > in {
			continue
		}
		for i := range tx.Inputs {
			consumed[tx.Inputs[i].Prev] = true
		}
		for i := range tx.Outputs {
			produced[types.OutPoint{TxID: tx.ID(), Index: uint32(i)}] = tx.Outputs[i].Value
		}
		out = append(out, tx)
		fees += in - tx.OutputSum()
	}
	return out, fees
}
