// Package bitcoin implements the baseline Bitcoin protocol the paper
// compares against (§3): proof-of-work blocks on a heaviest-chain rule,
// block-filling from the mempool, and coinbase economics. The node runs
// unchanged on the simulator and on real TCP, with mining supplied either by
// the exponential scheduler (§7 "Simulated Mining") or by a real hash loop.
package bitcoin

import (
	"errors"
	"fmt"
	"time"

	"bitcoinng/internal/chain"
	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
)

// MaxFutureSkew is how far a block timestamp may lead the local clock
// (Bitcoin uses two hours).
const MaxFutureSkew = 2 * time.Hour

// MedianTimeWindow is the median-time-past window (Bitcoin uses 11).
const MedianTimeWindow = 11

// Rule violations.
var (
	ErrWrongBlockKind  = errors.New("bitcoin: only pow blocks are valid")
	ErrTimeTooNew      = errors.New("bitcoin: block timestamp too far in the future")
	ErrTimeTooOld      = errors.New("bitcoin: block timestamp before median time past")
	ErrWrongTarget     = errors.New("bitcoin: block target does not match schedule")
	ErrSimulatedPoW    = errors.New("bitcoin: simulated proof of work not allowed live")
	ErrBadCoinbaseAmt  = errors.New("bitcoin: coinbase exceeds subsidy plus fees")
	ErrBadCoinbaseHt   = errors.New("bitcoin: coinbase height mismatch")
	ErrPoisonInBitcoin = errors.New("bitcoin: poison transactions are not part of this protocol")
)

// Rules implements chain.Protocol for Bitcoin.
type Rules struct {
	// AllowSimulatedPoW accepts scheduler-generated blocks (regtest mode);
	// live deployments leave it false and require real proofs of work.
	AllowSimulatedPoW bool
}

// RulesID implements chain.Protocol. GHOST shares these rules (it differs
// only in fork choice, which is per-node state), so its nodes share the
// same connect-cache universe — soundly, since their connect verdicts agree.
func (r Rules) RulesID() string {
	return fmt.Sprintf("bitcoin/simpow=%t", r.AllowSimulatedPoW)
}

// CheckBlock implements chain.Protocol.
func (r Rules) CheckBlock(st *chain.State, parent *chain.Node, b types.Block, now int64) error {
	pb, ok := b.(*types.PowBlock)
	if !ok {
		return fmt.Errorf("%w: got %v", ErrWrongBlockKind, b.Kind())
	}
	if pb.SimulatedPoW && !r.AllowSimulatedPoW {
		return ErrSimulatedPoW
	}
	if err := pb.CheckWellFormed(); err != nil {
		return err
	}
	for i, tx := range pb.Txs {
		if tx.Kind == types.TxPoison {
			return fmt.Errorf("%w: tx %d", ErrPoisonInBitcoin, i)
		}
	}
	if pb.Header.TimeNanos > now+int64(MaxFutureSkew) {
		return ErrTimeTooNew
	}
	if !pb.SimulatedPoW {
		if pb.Header.TimeNanos <= chain.MedianTimePast(parent, MedianTimeWindow) {
			return ErrTimeTooOld
		}
		if want := chain.NextTarget(parent, st.Params()); pb.Header.Target != want {
			return fmt.Errorf("%w: got %#x want %#x", ErrWrongTarget, uint32(pb.Header.Target), uint32(want))
		}
	}
	return nil
}

// ConnectCheck implements chain.Protocol: the coinbase may claim at most the
// subsidy plus this block's fees and must commit to its height.
func (r Rules) ConnectCheck(st *chain.State, n *chain.Node, fees []types.Amount) error {
	var total types.Amount
	for _, f := range fees {
		total += f
	}
	coinbase := n.Block().Transactions()[0]
	if coinbase.Height != n.KeyHeight {
		return fmt.Errorf("%w: got %d want %d", ErrBadCoinbaseHt, coinbase.Height, n.KeyHeight)
	}
	if max := st.Params().Subsidy + total; coinbase.OutputSum() > max {
		return fmt.Errorf("%w: %d > %d", ErrBadCoinbaseAmt, coinbase.OutputSum(), max)
	}
	return nil
}

// PoisonTargets implements chain.Protocol: Bitcoin has no poison
// transactions; CheckBlock already rejected them, so any sighting here is a
// programming error surfaced as a validation failure.
func (r Rules) PoisonTargets(st *chain.State, parent *chain.Node, b types.Block) (map[crypto.Hash]crypto.Hash, error) {
	for _, tx := range b.Transactions() {
		if tx.Kind == types.TxPoison {
			return nil, ErrPoisonInBitcoin
		}
	}
	return nil, nil
}
