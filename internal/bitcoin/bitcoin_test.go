package bitcoin

import (
	"errors"
	"testing"
	"time"

	"bitcoinng/internal/chain"
	"bitcoinng/internal/crypto"
	"bitcoinng/internal/sim"
	"bitcoinng/internal/simnet"
	"bitcoinng/internal/types"
	"bitcoinng/internal/validate"
)

// cluster is a small emulated Bitcoin network for tests.
type cluster struct {
	loop    *sim.Loop
	net     *simnet.Network
	nodes   []*Node
	keys    []*crypto.PrivateKey
	genesis *types.PowBlock
	params  types.Params
}

func newCluster(t *testing.T, n int, seed int64, params types.Params) *cluster {
	t.Helper()
	loop := sim.NewLoop(0)
	netCfg := simnet.DefaultConfig(n, seed)
	network := simnet.New(loop, netCfg)

	keys := make([]*crypto.PrivateKey, n)
	for i := range keys {
		k, err := crypto.GenerateKey(sim.NewRand(seed, uint64(1000+i)))
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = k
	}
	// Fund node 0 with outputs for workload transactions.
	payouts := make([]types.TxOutput, 64)
	for i := range payouts {
		payouts[i] = types.TxOutput{Value: 10_000, To: keys[0].Public().Addr()}
	}
	genesis := types.GenesisBlock(types.GenesisSpec{
		TimeNanos: 0,
		Target:    crypto.EasiestTarget,
		Payouts:   payouts,
	})

	c := &cluster{loop: loop, net: network, keys: keys, genesis: genesis, params: params}
	for i := 0; i < n; i++ {
		env := simnet.NewNodeEnv(loop, network, i, seed)
		bn, err := New(env, Config{
			Params:          params,
			Key:             keys[i],
			Genesis:         genesis,
			SimulatedMining: true,
			ConnectCache:    validate.Shared(),
		})
		if err != nil {
			t.Fatal(err)
		}
		env.Deliver(bn.HandleMessage)
		c.nodes = append(c.nodes, bn)
	}
	return c
}

// preload puts the same artificial transactions in every node's pool,
// following the paper's §7 methodology.
func (c *cluster) preload(t *testing.T, count int, padding int) {
	t.Helper()
	cbID := c.genesis.Txs[0].ID()
	for i := 0; i < count; i++ {
		tx := &types.Transaction{
			Kind:    types.TxRegular,
			Inputs:  []types.TxInput{{Prev: types.OutPoint{TxID: cbID, Index: uint32(i)}}},
			Outputs: []types.TxOutput{{Value: 9_000, To: crypto.Address{byte(i)}}}, // 1000 fee
			Padding: make([]byte, padding),
		}
		tx.SignInput(0, c.keys[0])
		for _, n := range c.nodes {
			if err := n.Pool.Add(tx); err != nil {
				t.Fatalf("preload: %v", err)
			}
		}
	}
}

func testParams() types.Params {
	p := types.DefaultParams()
	p.TargetBlockInterval = 10 * time.Second
	p.MaxBlockSize = 50_000
	p.RandomTieBreak = false
	p.RetargetWindow = 0 // fixed difficulty under simulated mining
	return p
}

func TestClusterConvergence(t *testing.T) {
	c := newCluster(t, 8, 1, testParams())
	c.preload(t, 32, 100)

	// Round-robin mining: each node mines once, with time to propagate.
	for round := 0; round < 3; round++ {
		for _, n := range c.nodes {
			n.MineBlock()
			c.loop.RunFor(5 * time.Second)
		}
	}
	c.loop.RunFor(time.Minute)

	tip := c.nodes[0].State.Tip().Hash()
	for i, n := range c.nodes {
		if n.State.Tip().Hash() != tip {
			t.Errorf("node %d tip %s != node 0 tip %s", i,
				n.State.Tip().Hash().Short(), tip.Short())
		}
	}
	if h := c.nodes[0].State.Height(); h != 24 {
		t.Errorf("height %d, want 24", h)
	}
	// Workload transactions made it into blocks.
	confirmed := 0
	for _, n := range c.nodes[0].State.MainChain() {
		for _, tx := range n.Block().Transactions() {
			if tx.Kind == types.TxRegular {
				confirmed++
			}
		}
	}
	if confirmed != 32 {
		t.Errorf("confirmed %d transactions, want 32", confirmed)
	}
}

func TestSimultaneousMinersFork(t *testing.T) {
	c := newCluster(t, 6, 2, testParams())
	// Two miners find blocks at the same instant: a fork forms, then the
	// next block resolves it.
	c.nodes[0].MineBlock()
	c.nodes[1].MineBlock()
	c.loop.RunFor(30 * time.Second)

	// Both blocks exist in every tree; tips may differ between nodes
	// (first-seen tie-break) but heights agree.
	for i, n := range c.nodes {
		if n.State.Height() != 1 {
			t.Errorf("node %d height %d", i, n.State.Height())
		}
		if n.State.Store().Len() != 3 { // genesis + 2 competitors
			t.Errorf("node %d knows %d blocks", i, n.State.Store().Len())
		}
	}
	// A new block on top of node 2's tip resolves the fork network-wide.
	c.nodes[2].MineBlock()
	c.loop.RunFor(30 * time.Second)
	tip := c.nodes[0].State.Tip().Hash()
	for i, n := range c.nodes {
		if n.State.Tip().Hash() != tip {
			t.Errorf("node %d did not converge after fork", i)
		}
		if n.State.Height() != 2 {
			t.Errorf("node %d height %d after resolution", i, n.State.Height())
		}
	}
}

func TestBlockRespectsSizeCap(t *testing.T) {
	params := testParams()
	params.MaxBlockSize = 2000
	c := newCluster(t, 2, 3, params)
	c.preload(t, 30, 300) // each tx ~450+ bytes; only a few fit

	b := c.nodes[0].AssembleBlock()
	if b.WireSize() > params.MaxBlockSize {
		t.Errorf("block size %d exceeds cap %d", b.WireSize(), params.MaxBlockSize)
	}
	if len(b.Txs) < 2 {
		t.Error("block did not include any workload transactions")
	}
}

func TestCoinbaseClaimsFees(t *testing.T) {
	c := newCluster(t, 2, 4, testParams())
	c.preload(t, 4, 0) // 4 txs, 1000 fee each
	b := c.nodes[0].AssembleBlock()
	wantFees := types.Amount(4 * 1000)
	if got := b.Txs[0].OutputSum(); got != c.params.Subsidy+wantFees {
		t.Errorf("coinbase = %d, want subsidy %d + fees %d", got, c.params.Subsidy, wantFees)
	}
	// The assembled block connects.
	res := c.nodes[0].SubmitOwnBlock(b)
	if res.Status != chain.StatusMainChain {
		t.Errorf("own block status %v", res.Status)
	}
}

func TestRulesRejectWrongKind(t *testing.T) {
	c := newCluster(t, 2, 5, testParams())
	leader := c.keys[0]
	kb := &types.KeyBlock{
		Header: types.KeyBlockHeader{
			Prev:      c.genesis.Hash(),
			TimeNanos: 1,
			Target:    crypto.EasiestTarget,
			LeaderKey: leader.Public(),
		},
		Txs: []*types.Transaction{{
			Kind:    types.TxCoinbase,
			Outputs: []types.TxOutput{{Value: 1, To: leader.Public().Addr()}},
			Height:  1,
		}},
		SimulatedPoW: true,
	}
	kb.Header.MerkleRoot = crypto.MerkleRoot(types.TxIDs(kb.Txs))
	_, err := c.nodes[0].State.AddBlock(kb, 0)
	if !errors.Is(err, ErrWrongBlockKind) {
		t.Errorf("key block in bitcoin: err = %v", err)
	}
}

func TestRulesRejectFutureTimestamp(t *testing.T) {
	c := newCluster(t, 2, 6, testParams())
	b := c.nodes[0].AssembleBlock()
	b.Header.TimeNanos = c.loop.Now() + int64(MaxFutureSkew) + 1
	_, err := c.nodes[0].State.AddBlock(b, c.loop.Now())
	if !errors.Is(err, ErrTimeTooNew) {
		t.Errorf("future block err = %v", err)
	}
}

func TestRulesRejectPoison(t *testing.T) {
	c := newCluster(t, 2, 7, testParams())
	b := c.nodes[0].AssembleBlock()
	poison := &types.Transaction{
		Kind:     types.TxPoison,
		Outputs:  []types.TxOutput{{Value: 0, To: crypto.Address{1}}},
		Evidence: &types.PoisonEvidence{},
	}
	b.Txs = append(b.Txs, poison)
	b.Header.MerkleRoot = crypto.MerkleRoot(types.TxIDs(b.Txs))
	_, err := c.nodes[0].State.AddBlock(b, c.loop.Now())
	if !errors.Is(err, ErrPoisonInBitcoin) {
		t.Errorf("poison in bitcoin: err = %v", err)
	}
}

func TestRulesRejectOverclaimingCoinbase(t *testing.T) {
	c := newCluster(t, 2, 8, testParams())
	b := c.nodes[0].AssembleBlock()
	b.Txs[0].Outputs[0].Value = c.params.Subsidy + 1 // no fees collected
	b.Txs[0].Invalidate()
	b.Header.MerkleRoot = crypto.MerkleRoot(types.TxIDs(b.Txs))
	_, err := c.nodes[0].State.AddBlock(b, c.loop.Now())
	if !errors.Is(err, ErrBadCoinbaseAmt) {
		t.Errorf("overclaiming coinbase err = %v", err)
	}
}

func TestRulesRejectWrongCoinbaseHeight(t *testing.T) {
	c := newCluster(t, 2, 9, testParams())
	b := c.nodes[0].AssembleBlock()
	b.Txs[0].Height = 7
	b.Txs[0].Invalidate()
	b.Header.MerkleRoot = crypto.MerkleRoot(types.TxIDs(b.Txs))
	_, err := c.nodes[0].State.AddBlock(b, c.loop.Now())
	if !errors.Is(err, ErrBadCoinbaseHt) {
		t.Errorf("wrong coinbase height err = %v", err)
	}
}

func TestLiveRejectsSimulatedPoW(t *testing.T) {
	// A live-mode node must reject scheduler-generated blocks.
	loop := sim.NewLoop(0)
	network := simnet.New(loop, simnet.DefaultConfig(2, 10))
	key, _ := crypto.GenerateKey(sim.NewRand(10, 1))
	genesis := types.GenesisBlock(types.GenesisSpec{Target: crypto.EasiestTarget})
	env := simnet.NewNodeEnv(loop, network, 0, 10)
	live, err := New(env, Config{
		Params:          testParams(),
		Key:             key,
		Genesis:         genesis,
		SimulatedMining: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	fake := &types.PowBlock{
		Header: types.PowHeader{
			Prev:      genesis.Hash(),
			TimeNanos: 1,
			Target:    crypto.EasiestTarget,
		},
		Txs: []*types.Transaction{{
			Kind:    types.TxCoinbase,
			Outputs: []types.TxOutput{{Value: 1, To: key.Public().Addr()}},
			Height:  1,
		}},
		SimulatedPoW: true,
	}
	fake.Header.MerkleRoot = crypto.MerkleRoot(types.TxIDs(fake.Txs))
	if _, err := live.State.AddBlock(fake, 1); !errors.Is(err, ErrSimulatedPoW) {
		t.Errorf("live node accepted simulated block: %v", err)
	}
}

func TestLiveMiningRoundTrip(t *testing.T) {
	// A real proof-of-work block at trivial difficulty: grind nonces until
	// the hash satisfies the (easy) target, then connect it on a live
	// node. This is the cmd/ngnode code path.
	loop := sim.NewLoop(0)
	network := simnet.New(loop, simnet.DefaultConfig(2, 11))
	key, _ := crypto.GenerateKey(sim.NewRand(11, 1))
	genesis := types.GenesisBlock(types.GenesisSpec{Target: crypto.EasiestTarget})
	env := simnet.NewNodeEnv(loop, network, 0, 11)
	live, err := New(env, Config{
		Params:  testParams(),
		Key:     key,
		Genesis: genesis,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Advance past genesis so the timestamp clears median-time-past.
	loop.RunFor(time.Second)
	b := live.AssembleBlock()
	b.SimulatedPoW = false
	// EasiestTarget accepts any hash, so nonce 0 suffices; still, exercise
	// the loop shape used by the live miner.
	for nonce := uint64(0); ; nonce++ {
		b.Header.Nonce = nonce
		if crypto.CheckProofOfWork(b.Header.Hash(), b.Header.Target) {
			break
		}
	}
	res := live.SubmitOwnBlock(b)
	if res.Status != chain.StatusMainChain {
		t.Errorf("live-mined block status %v", res.Status)
	}
}

func TestMedianTimePastAndNextTarget(t *testing.T) {
	params := testParams()
	params.RetargetWindow = 4
	c := newCluster(t, 2, 12, params)
	n := c.nodes[0]
	// Mine a few blocks with the loop advancing so timestamps climb.
	for i := 0; i < 6; i++ {
		n.MineBlock()
		c.loop.RunFor(10 * time.Second)
	}
	tip := n.State.Tip()
	mtp := chain.MedianTimePast(tip, 11)
	if mtp <= 0 || mtp > tip.Block().Time() {
		t.Errorf("median time past %d out of range", mtp)
	}
	// NextTarget stays finite and positive through a retarget boundary.
	got := chain.NextTarget(tip, params)
	if got == 0 {
		t.Error("NextTarget returned zero target")
	}
}
