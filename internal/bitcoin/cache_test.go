package bitcoin

import (
	"errors"
	"testing"
	"time"

	"bitcoinng/internal/chain"
	"bitcoinng/internal/crypto"
	"bitcoinng/internal/sim"
	"bitcoinng/internal/types"
	"bitcoinng/internal/utxo"
	"bitcoinng/internal/validate"
)

// newCachedState builds a chain.State over the given params wired to cache.
func newCachedState(t *testing.T, genesis *types.PowBlock, params types.Params, cache *validate.Cache) *chain.State {
	t.Helper()
	st, err := chain.New(genesis, params, Rules{AllowSimulatedPoW: true},
		&chain.HeaviestChain{RandomTieBreak: false}, chain.WithConnectCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// powBlockOn assembles a simulated-PoW block with the given coinbase value.
func powBlockOn(prev crypto.Hash, at int64, height uint64, value types.Amount) *types.PowBlock {
	coinbase := &types.Transaction{
		Kind:    types.TxCoinbase,
		Outputs: []types.TxOutput{{Value: value, To: crypto.Address{0xcb}}},
		Height:  height,
	}
	return &types.PowBlock{
		Header: types.PowHeader{
			Prev:       prev,
			MerkleRoot: crypto.MerkleRoot(types.TxIDs([]*types.Transaction{coinbase})),
			TimeNanos:  at,
			Target:     crypto.EasiestTarget,
		},
		Txs:          []*types.Transaction{coinbase},
		SimulatedPoW: true,
	}
}

// TestConnectCacheDoesNotLeakAcrossRules is the soundness core of the shared
// cache: the same block judged under different consensus parameters lands in
// different fingerprint universes, so a verdict computed under generous
// rules can never leak to a node running strict ones (and vice versa).
func TestConnectCacheDoesNotLeakAcrossRules(t *testing.T) {
	genesis := types.GenesisBlock(types.GenesisSpec{Target: crypto.EasiestTarget})
	cache := validate.NewCache(64)

	generous := types.DefaultParams()
	generous.RetargetWindow = 0
	strict := generous
	strict.Subsidy = generous.Subsidy / 2

	blk := powBlockOn(genesis.Hash(), 1, 1, generous.Subsidy) // full subsidy claimed

	// The generous node accepts and memoizes the connect outcome.
	stA := newCachedState(t, genesis, generous, cache)
	res, err := stA.AddBlock(blk, 2)
	if err != nil || res.Status != chain.StatusMainChain {
		t.Fatalf("generous rules: status %v, err %v", res.Status, err)
	}

	// The strict node shares the cache object but must reject: its coinbase
	// cap is half the claimed amount.
	stB := newCachedState(t, genesis, strict, cache)
	if _, err := stB.AddBlock(blk, 2); !errors.Is(err, ErrBadCoinbaseAmt) {
		t.Fatalf("strict rules accepted an overpaying coinbase through the cache: err %v", err)
	}

	// A third node with the generous rules replays the memoized delta: same
	// verdict, same resulting state, strictly more cache hits.
	before := cache.Stats().Hits
	stC := newCachedState(t, genesis, generous, cache)
	res, err = stC.AddBlock(blk, 2)
	if err != nil || res.Status != chain.StatusMainChain {
		t.Fatalf("replaying node: status %v, err %v", res.Status, err)
	}
	if cache.Stats().Hits <= before {
		t.Fatal("replaying node did not hit the cache")
	}
	if stC.UTXO().Len() != stA.UTXO().Len() {
		t.Fatalf("replayed UTXO set diverged: %d vs %d entries", stC.UTXO().Len(), stA.UTXO().Len())
	}
	if got := stC.UTXO().BalanceOf(crypto.Address{0xcb}); got != generous.Subsidy {
		t.Fatalf("replayed coinbase balance = %d, want %d", got, generous.Subsidy)
	}
}

// TestConnectCacheSharesNegativeVerdicts asserts the 2nd node rejecting an
// invalid block takes the memoized path and reaches the same verdict.
func TestConnectCacheSharesNegativeVerdicts(t *testing.T) {
	genesis := types.GenesisBlock(types.GenesisSpec{Target: crypto.EasiestTarget})
	cache := validate.NewCache(64)
	params := types.DefaultParams()
	params.RetargetWindow = 0

	bad := powBlockOn(genesis.Hash(), 1, 1, params.Subsidy+1) // over-claims by 1

	stA := newCachedState(t, genesis, params, cache)
	if _, err := stA.AddBlock(bad, 2); !errors.Is(err, ErrBadCoinbaseAmt) {
		t.Fatalf("first node verdict = %v", err)
	}
	before := cache.Stats().Hits
	stB := newCachedState(t, genesis, params, cache)
	if _, err := stB.AddBlock(bad, 2); !errors.Is(err, ErrBadCoinbaseAmt) {
		t.Fatalf("second node verdict = %v", err)
	}
	if cache.Stats().Hits <= before {
		t.Fatal("negative verdict was not shared")
	}
	if stB.UTXO().Len() != stA.UTXO().Len() {
		t.Fatal("rejected block mutated a UTXO set")
	}
}

// TestConnectCacheReorgReplaysDeltas reorganizes a cached chain: the losing
// branch disconnects through the shared deltas and the winning branch
// connects from cache on the node that saw the blocks in the other order.
func TestConnectCacheReorgReplaysDeltas(t *testing.T) {
	genesis := types.GenesisBlock(types.GenesisSpec{Target: crypto.EasiestTarget})
	cache := validate.NewCache(64)
	params := types.DefaultParams()
	params.RetargetWindow = 0

	a1 := powBlockOn(genesis.Hash(), 1, 1, params.Subsidy)
	b1 := powBlockOn(genesis.Hash(), 2, 1, params.Subsidy-1) // sibling branch
	b2 := powBlockOn(b1.Hash(), 3, 2, params.Subsidy)

	// Node A: sees a1 first, then reorgs to b1+b2.
	stA := newCachedState(t, genesis, params, cache)
	for _, blk := range []*types.PowBlock{a1, b1, b2} {
		if _, err := stA.AddBlock(blk, 4); err != nil {
			t.Fatal(err)
		}
	}
	// Node B: sees the winning branch first, then the stale sibling.
	stB := newCachedState(t, genesis, params, cache)
	for _, blk := range []*types.PowBlock{b1, b2, a1} {
		if _, err := stB.AddBlock(blk, 4); err != nil {
			t.Fatal(err)
		}
	}
	if stA.Tip().Hash() != b2.Hash() || stB.Tip().Hash() != b2.Hash() {
		t.Fatalf("tips diverged: %s vs %s", stA.Tip().Hash().Short(), stB.Tip().Hash().Short())
	}
	if stA.UTXO().Len() != stB.UTXO().Len() {
		t.Fatalf("UTXO sets diverged after reorg: %d vs %d", stA.UTXO().Len(), stB.UTXO().Len())
	}
}

// TestClusterConvergesWithSharedCache runs the existing propagation cluster
// against one shared cache and cross-checks the final UTXO sets entry by
// entry against a cache-free node that replays the same chain.
func TestClusterConvergesWithSharedCache(t *testing.T) {
	params := types.DefaultParams()
	params.RetargetWindow = 0
	params.TargetBlockInterval = 10 * time.Second
	c := newCluster(t, 5, 11, params)
	c.preload(t, 32, 100)
	rng := sim.NewRand(11, 0x77)
	for i := 0; i < 8; i++ {
		c.nodes[rng.Intn(len(c.nodes))].MineBlock()
		c.loop.RunFor(5 * time.Second)
	}
	c.loop.RunFor(time.Minute)

	tip := c.nodes[0].State.Tip().Hash()
	for i, n := range c.nodes[1:] {
		if n.State.Tip().Hash() != tip {
			t.Fatalf("node %d tip diverged", i+1)
		}
	}
	// Replay the main chain into a fresh cache-less state; the UTXO set
	// must match the cluster nodes' replayed-from-cache sets exactly.
	fresh, err := chain.New(c.genesis, params, Rules{AllowSimulatedPoW: true},
		&chain.HeaviestChain{RandomTieBreak: false})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.nodes[0].State.MainChain()[1:] {
		if _, err := fresh.AddBlock(n.Block(), n.Block().Time()+1); err != nil {
			t.Fatal(err)
		}
	}
	want := fresh.UTXO()
	got := c.nodes[0].State.UTXO()
	if got.Len() != want.Len() {
		t.Fatalf("UTXO size: cached %d, uncached %d", got.Len(), want.Len())
	}
	want.Range(func(op types.OutPoint, e utxo.Entry) bool {
		ge, ok := got.Lookup(op)
		if !ok || ge != e {
			t.Errorf("entry %v: cached %+v, uncached %+v (present %v)", op, ge, e, ok)
			return false
		}
		return true
	})
}
