// Package stats provides the small statistics toolkit the experiment
// harness and benchmarks use: percentiles, moments, and least-squares linear
// regression with R² (the paper fits its mining-power model with a 0.99
// coefficient of determination, §7, and reports a linear size/latency
// relation, Fig. 7).
package stats

import (
	"math"
	"sort"
)

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of values using linear
// interpolation between order statistics. It copies and sorts internally;
// NaN is returned for an empty input.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	return PercentileSorted(sorted, p)
}

// PercentileSorted is Percentile over already-sorted input, without copying.
func PercentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean; NaN for empty input.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// StdDev returns the sample standard deviation (n-1 denominator); zero for
// fewer than two values.
func StdDev(values []float64) float64 {
	if len(values) < 2 {
		return 0
	}
	m := Mean(values)
	var ss float64
	for _, v := range values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(values)-1))
}

// MinMax returns the extremes; NaNs for empty input.
func MinMax(values []float64) (min, max float64) {
	if len(values) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = values[0], values[0]
	for _, v := range values[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Fit is a least-squares line y = Slope*x + Intercept with its coefficient
// of determination.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit fits a line through (x[i], y[i]). It requires len(x) == len(y)
// and at least two points; degenerate inputs yield NaN fields.
func LinearFit(x, y []float64) Fit {
	n := len(x)
	if n != len(y) || n < 2 {
		return Fit{Slope: math.NaN(), Intercept: math.NaN(), R2: math.NaN()}
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{Slope: math.NaN(), Intercept: math.NaN(), R2: math.NaN()}
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	r2 := 1.0
	if syy > 0 {
		r2 = (sxy * sxy) / (sxx * syy)
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2}
}

// Summary bundles the descriptive statistics the benchmark tables print.
type Summary struct {
	N                  int
	Mean, Min, Max     float64
	P25, P50, P75, P90 float64
}

// Summarize computes a Summary; an empty input yields NaN fields.
func Summarize(values []float64) Summary {
	s := Summary{N: len(values)}
	if len(values) == 0 {
		nan := math.NaN()
		s.Mean, s.Min, s.Max = nan, nan, nan
		s.P25, s.P50, s.P75, s.P90 = nan, nan, nan, nan
		return s
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	s.Mean = Mean(values)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.P25 = PercentileSorted(sorted, 0.25)
	s.P50 = PercentileSorted(sorted, 0.50)
	s.P75 = PercentileSorted(sorted, 0.75)
	s.P90 = PercentileSorted(sorted, 0.90)
	return s
}
