package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPercentileBasics(t *testing.T) {
	v := []float64{4, 1, 3, 2, 5}
	if got := Percentile(v, 0.5); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := Percentile(v, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(v, 1); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	// Interpolation: p25 of 1..5 is 2.
	if got := Percentile(v, 0.25); got != 2 {
		t.Errorf("p25 = %v", got)
	}
	// p90 of 1..5: pos = 3.6 -> 4*(0.4) + 5*(0.6) = 4.6.
	if got := Percentile(v, 0.9); !almost(got, 4.6, 1e-12) {
		t.Errorf("p90 = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("empty percentile not NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	v := []float64{3, 1, 2}
	Percentile(v, 0.5)
	if v[0] != 3 || v[1] != 1 || v[2] != 2 {
		t.Error("input mutated")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		var v []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				v = append(v, x)
			}
		}
		if len(v) == 0 {
			return true
		}
		pa := math.Mod(math.Abs(a), 1)
		pb := math.Mod(math.Abs(b), 1)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(v, pa) <= Percentile(v, pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(v); got != 5 {
		t.Errorf("mean = %v", got)
	}
	// Sample stddev of this classic set is ~2.138.
	if got := StdDev(v); !almost(got, 2.138, 0.001) {
		t.Errorf("stddev = %v", got)
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("single-element stddev != 0")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %v, %v", min, max)
	}
	min, max = MinMax(nil)
	if !math.IsNaN(min) || !math.IsNaN(max) {
		t.Error("empty MinMax not NaN")
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 2x + 1
	fit := LinearFit(x, y)
	if !almost(fit.Slope, 2, 1e-12) || !almost(fit.Intercept, 1, 1e-12) {
		t.Errorf("fit = %+v", fit)
	}
	if !almost(fit.R2, 1, 1e-12) {
		t.Errorf("R2 = %v", fit.R2)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var x, y []float64
	for i := 0; i < 500; i++ {
		xi := float64(i)
		x = append(x, xi)
		y = append(y, 3*xi+10+rng.NormFloat64()*5)
	}
	fit := LinearFit(x, y)
	if !almost(fit.Slope, 3, 0.05) {
		t.Errorf("slope = %v", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v for strongly linear data", fit.R2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if fit := LinearFit([]float64{1}, []float64{2}); !math.IsNaN(fit.Slope) {
		t.Error("single point fit not NaN")
	}
	if fit := LinearFit([]float64{1, 2}, []float64{1}); !math.IsNaN(fit.Slope) {
		t.Error("mismatched lengths not NaN")
	}
	// Vertical line: all x equal.
	if fit := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); !math.IsNaN(fit.Slope) {
		t.Error("vertical data not NaN")
	}
	// Horizontal line: slope 0, R2 defined as 1 (perfect fit).
	fit := LinearFit([]float64{1, 2, 3}, []float64{5, 5, 5})
	if fit.Slope != 0 || fit.R2 != 1 {
		t.Errorf("horizontal fit = %+v", fit)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if s.N != 10 || s.Min != 1 || s.Max != 10 {
		t.Errorf("summary = %+v", s)
	}
	if !almost(s.Mean, 5.5, 1e-12) || !almost(s.P50, 5.5, 1e-12) {
		t.Errorf("summary = %+v", s)
	}
	if !almost(s.P90, 9.1, 1e-9) {
		t.Errorf("P90 = %v", s.P90)
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Mean) {
		t.Errorf("empty summary = %+v", empty)
	}
}
