package strategy

import (
	"bitcoinng/internal/chain"
	"bitcoinng/internal/types"
)

// Selfish is Eyal-Sirer key-block withholding ([21], the paper's §5.1
// adversary): mined key blocks are kept private and the attacker mines on
// its secret chain, releasing it reactively as the honest chain advances.
// Microblocks carry no weight (§4.2), so the state machine operates on key
// blocks exactly as the original does on Bitcoin blocks; microblocks the
// attacker produces while leading its private chain are withheld with it
// and released alongside their key blocks (peers would otherwise chase the
// parent gap as orphans and reveal the chain anyway).
//
// The state machine, keyed on the attacker's private lead in chain weight:
//
//	lead 1, honest matches  → release everything: a 1-1 race the network's
//	                          tie-breaking (γ) decides.
//	lead 2, honest advances → release everything: the attacker is still one
//	                          ahead and wins outright.
//	lead ≥ 3, honest advances → release the oldest private segment up to the
//	                          honest height, keep the rest secret.
//	honest overtakes        → abandon the private chain (its blocks are
//	                          never announced; the revenue is lost).
//
// While a released race is unresolved the attacker keeps mining on its own
// branch and publishes instantly on a find, converting the tie into a win.
type Selfish struct {
	Honest
	// private is the withheld chain segment, oldest first: key blocks plus
	// the microblocks between them.
	private []*chain.Node
	// privateTip is the node the attacker currently mines on; nil when not
	// withholding and not racing.
	privateTip *chain.Node
	// publicBest is the heaviest block observed arriving from peers.
	publicBest *chain.Node
	// racing marks a fully released private chain tied with the honest
	// chain, awaiting resolution.
	racing bool
}

// NewSelfish returns a fresh attacker instance (the state machine is
// per-node).
func NewSelfish() *Selfish { return &Selfish{} }

// Name implements Strategy.
func (s *Selfish) Name() string { return SelfishName }

// KeyBlockParent implements Strategy: mine on the private chain while one
// exists (even mid-race), the public tip otherwise.
func (s *Selfish) KeyBlockParent(v View) *chain.Node {
	if s.privateTip != nil {
		return s.privateTip
	}
	return v.Tip()
}

// OnKeyBlockMined implements Strategy.
func (s *Selfish) OnKeyBlockMined(v View, b *types.KeyBlock) Action {
	if s.racing {
		// Mining on our own branch during a 1-1 race: publishing now makes
		// it strictly heaviest and ends the race in our favour.
		s.reset()
		return Publish
	}
	return Withhold
}

// OnMicroBlockMined implements Strategy: microblocks on the private chain
// stay private.
func (s *Selfish) OnMicroBlockMined(v View, b *types.MicroBlock) Action {
	if s.privateTip != nil && !s.racing {
		return Withhold
	}
	return Publish
}

// OnOwnBlockAdded implements Strategy: withheld blocks extend the private
// segment.
func (s *Selfish) OnOwnBlockAdded(v View, n *chain.Node, act Action) {
	if act != Withhold {
		return
	}
	s.private = append(s.private, n)
	s.privateTip = n
}

// OnExternalBlock implements Strategy: advance the public view and run the
// release rules.
func (s *Selfish) OnExternalBlock(v View, n *chain.Node) []types.Block {
	if n.Block().Kind() == types.KindMicro {
		return nil // no weight: the race standings are unchanged
	}
	if s.publicBest == nil || n.Weight.Cmp(s.publicBest.Weight) > 0 {
		s.publicBest = n
	}
	if s.racing {
		// Any new key block extends one branch past the tie and resolves
		// the race (including honest miners extending OUR released branch).
		s.reset()
		return nil
	}
	if s.privateTip == nil {
		return nil
	}
	switch s.privateTip.Weight.Cmp(s.publicBest.Weight) {
	case -1:
		// Honest overtook: the private chain can no longer win. Abandon it
		// unannounced; fork choice has already moved the node's tip.
		s.reset()
		return nil
	case 0:
		// Lead was one key block and honest just matched it: release
		// everything and race.
		release := s.takePrivate(s.privateTip.KeyHeight)
		s.racing = true
		return release
	}
	// Still ahead. One honest key block behind means our lead was two:
	// releasing everything wins outright. Further behind, release only the
	// oldest segment up to the public height, keeping the rest secret. The
	// difference is signed: under active retargeting per-block weights are
	// unequal, so a heavier private chain can sit at a LOWER key height —
	// that degenerate lead also takes the release-everything branch (which
	// resets the state machine) instead of underflowing.
	lead := int64(s.privateTip.KeyHeight) - int64(s.publicBest.KeyHeight)
	if lead <= 1 {
		release := s.takePrivate(s.privateTip.KeyHeight)
		s.reset()
		return release
	}
	return s.takePrivate(s.publicBest.KeyHeight)
}

// takePrivate removes and returns the private prefix of blocks whose key
// height does not exceed upTo (microblocks ride with their epoch's key
// block), oldest first.
func (s *Selfish) takePrivate(upTo uint64) []types.Block {
	var out []types.Block
	i := 0
	for ; i < len(s.private) && s.private[i].KeyHeight <= upTo; i++ {
		out = append(out, s.private[i].Block())
	}
	s.private = s.private[i:]
	return out
}

// reset abandons all withholding state; remaining private blocks are never
// announced.
func (s *Selfish) reset() {
	s.private = nil
	s.privateTip = nil
	s.racing = false
}
