// Package strategy is the pluggable mining-strategy engine: the set of
// choices a Bitcoin-NG miner is free to make without violating consensus —
// which block its next key block extends, whether to publish or withhold
// blocks it produced, and how its coinbase splits the previous epoch's fees
// — extracted behind one interface that internal/core consults instead of
// hard-coding honest behaviour.
//
// The paper's §5 incentive bounds exist precisely because rational
// deviations are possible; this package turns those deviations into
// first-class experiment inputs. Built-in strategies:
//
//   - "honest": the paper's protocol-following miner.
//   - "selfish": Eyal-Sirer key-block withholding ([21]; §5.1 "Heaviest
//     Chain Extension" — microblocks carry no weight, so the attack
//     operates on key blocks exactly as on Bitcoin blocks).
//   - "greedymine": the microblock-ignoring extension attack of Greedy-Mine
//     (Hu et al., 2023): key blocks extend the epoch's key block directly,
//     pruning its microblocks so their fee split is never paid and the
//     transactions return to the pool for the attacker to re-serialize.
//   - "feethief": a leader that claims the previous leader's 40% fee share
//     for itself; honest validators reject such key blocks (core's
//     ErrFeeSplitShort), so the strategy documents-by-execution that the
//     split is consensus, not a convention.
//
// Every hook runs on the owning node's event goroutine — strategies need no
// locking, and their decisions are a deterministic function of the node's
// local view, which keeps sharded-engine runs byte-identical to sequential
// ones (DESIGN.md §7).
package strategy

import (
	"fmt"
	"sort"
	"sync"

	"bitcoinng/internal/chain"
	"bitcoinng/internal/types"
)

// Action is a strategy's verdict on a block the node just produced.
type Action int

const (
	// Publish processes the block locally and announces it to peers: the
	// honest path.
	Publish Action = iota
	// Withhold processes the block locally — the node keeps mining on it —
	// but suppresses the announcement; the strategy releases it later (or
	// abandons it).
	Withhold
)

// String returns the action name.
func (a Action) String() string {
	switch a {
	case Publish:
		return "publish"
	case Withhold:
		return "withhold"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// View is the read-only node surface strategies decide on.
type View interface {
	// NodeID returns the deciding node's index.
	NodeID() int
	// Now returns the current time in Unix nanoseconds.
	Now() int64
	// Tip returns the node's current main-chain tip, including any blocks
	// the strategy has withheld (the local view is the attacker's view).
	Tip() *chain.Node
	// Leading reports whether the node currently leads (the tip epoch's
	// key block is its own).
	Leading() bool
}

// Strategy makes the mining choices consensus leaves open. All hooks run on
// the node's event goroutine; implementations keep per-node state freely but
// must be deterministic functions of the views and nodes they were shown.
type Strategy interface {
	// Name returns the registered strategy name.
	Name() string

	// KeyBlockParent picks the block the node's next key block extends.
	// The honest choice is v.Tip(); returning nil falls back to it.
	KeyBlockParent(v View) *chain.Node

	// SplitFee divides the previous epoch's microblock fees between this
	// node's key-block coinbase (mine) and the previous leader (prev).
	// Honest strategies return the params split (§4.4: 40% to the
	// serializing leader, 60% to the next); claiming more than `mine`
	// shorts the previous leader and honest validators reject the block.
	SplitFee(params types.Params, epochFees types.Amount) (mine, prev types.Amount)

	// OnKeyBlockMined decides a freshly assembled key block's fate before
	// it is processed.
	OnKeyBlockMined(v View, b *types.KeyBlock) Action

	// OnMicroBlockMined decides a freshly signed microblock's fate before
	// it is processed.
	OnMicroBlockMined(v View, b *types.MicroBlock) Action

	// OnOwnBlockAdded observes the tree node of a block this node produced
	// right after it entered the local tree, along with the action that
	// admitted it — withholding strategies record their private chain here.
	OnOwnBlockAdded(v View, n *chain.Node, act Action)

	// OnExternalBlock observes a block from a peer entering the node's
	// tree and returns previously withheld blocks to announce now, oldest
	// first (a release must include the withheld microblocks between key
	// blocks, or peers chase the gap as orphans).
	OnExternalBlock(v View, n *chain.Node) (release []types.Block)
}

// Honest is the paper's protocol-following strategy and the zero-config
// default. Custom strategies embed it and override the hooks they bend.
type Honest struct{}

// Name implements Strategy.
func (Honest) Name() string { return "honest" }

// KeyBlockParent implements Strategy: extend the current tip.
func (Honest) KeyBlockParent(v View) *chain.Node { return v.Tip() }

// SplitFee implements Strategy: the params split — the previous leader's
// LeaderFeeFrac share is paid in full.
func (Honest) SplitFee(params types.Params, epochFees types.Amount) (mine, prev types.Amount) {
	prev, mine = params.SplitFee(epochFees)
	return mine, prev
}

// OnKeyBlockMined implements Strategy: publish immediately.
func (Honest) OnKeyBlockMined(View, *types.KeyBlock) Action { return Publish }

// OnMicroBlockMined implements Strategy: publish immediately.
func (Honest) OnMicroBlockMined(View, *types.MicroBlock) Action { return Publish }

// OnOwnBlockAdded implements Strategy: nothing to track.
func (Honest) OnOwnBlockAdded(View, *chain.Node, Action) {}

// OnExternalBlock implements Strategy: nothing withheld, nothing to release.
func (Honest) OnExternalBlock(View, *chain.Node) []types.Block { return nil }

// Registry of strategy constructors. Strategies carry per-node state, so the
// registry stores factories and New hands every node a fresh instance.
var (
	regMu    sync.RWMutex
	registry = map[string]func() Strategy{}
)

// Built-in strategy names.
const (
	HonestName     = "honest"
	SelfishName    = "selfish"
	GreedyMineName = "greedymine"
	FeeThiefName   = "feethief"
)

func init() {
	MustRegister(HonestName, func() Strategy { return Honest{} })
	MustRegister(SelfishName, func() Strategy { return NewSelfish() })
	MustRegister(GreedyMineName, func() Strategy { return GreedyMine{} })
	MustRegister(FeeThiefName, func() Strategy { return FeeThief{} })
}

// ErrUnknown is returned (wrapped) for unregistered strategy names.
var ErrUnknown = fmt.Errorf("strategy: unknown strategy")

// Register adds a strategy factory under name; it errors on duplicates.
func Register(name string, factory func() Strategy) error {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("strategy: %q already registered", name)
	}
	registry[name] = factory
	return nil
}

// MustRegister is Register for package-init use; it panics on error.
func MustRegister(name string, factory func() Strategy) {
	if err := Register(name, factory); err != nil {
		panic(err)
	}
}

// New returns a fresh instance of the named strategy. The empty name is the
// honest default.
func New(name string) (Strategy, error) {
	if name == "" {
		name = HonestName
	}
	regMu.RLock()
	factory, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q (registered: %v)", ErrUnknown, name, Names())
	}
	return factory(), nil
}

// Names returns the registered strategy names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ForNodes validates a node-index→strategy-name assignment against the
// network size and instantiates one fresh strategy per assigned node; the
// returned slice holds nil for unassigned (honest) nodes. Errors are left
// unprefixed for callers to wrap with their package name.
func ForNodes(nodes int, byNode map[int]string) ([]Strategy, error) {
	if len(byNode) == 0 {
		return make([]Strategy, nodes), nil
	}
	// Validate in sorted node order so that when several entries are bad,
	// the error reported (and hence differential digests of failing runs)
	// does not depend on map iteration order.
	ids := make([]int, 0, len(byNode))
	for id := range byNode {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]Strategy, nodes)
	for _, id := range ids {
		if id < 0 || id >= nodes {
			return nil, fmt.Errorf("strategy node %d out of range (network size %d)", id, nodes)
		}
		s, err := New(byNode[id])
		if err != nil {
			return nil, err
		}
		out[id] = s
	}
	return out, nil
}
