package strategy

import (
	"errors"
	"math/big"
	"testing"

	"bitcoinng/internal/chain"
	"bitcoinng/internal/types"
)

type fakeView struct {
	tip     *chain.Node
	leading bool
}

func (v fakeView) NodeID() int      { return 0 }
func (v fakeView) Now() int64       { return 0 }
func (v fakeView) Tip() *chain.Node { return v.tip }
func (v fakeView) Leading() bool    { return v.leading }

// keyNode builds a synthetic key-block tree node: strategies only read
// Parent, KeyAncestor, KeyHeight, Weight, and the block kind.
func keyNode(parent *chain.Node, keyHeight uint64, weight int64) *chain.Node {
	n := chain.DetachedNode(&types.KeyBlock{
		Header:       types.KeyBlockHeader{TimeNanos: int64(keyHeight)*1e9 + weight},
		SimulatedPoW: true,
	})
	n.Parent = parent
	n.KeyHeight = keyHeight
	n.Weight = big.NewInt(weight)
	n.KeyAncestor = n
	return n
}

func microNode(parent *chain.Node) *chain.Node {
	n := chain.DetachedNode(&types.MicroBlock{Header: types.MicroBlockHeader{TimeNanos: int64(parent.KeyHeight) * 7}})
	n.Parent = parent
	n.KeyHeight = parent.KeyHeight
	n.Weight = parent.Weight
	n.KeyAncestor = parent.KeyAncestor
	return n
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{HonestName, SelfishName, GreedyMineName, FeeThiefName} {
		s, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, s.Name())
		}
	}
	if s, err := New(""); err != nil || s.Name() != HonestName {
		t.Errorf("empty name: %v, %v — want the honest default", s, err)
	}
	if _, err := New("nope"); !errors.Is(err, ErrUnknown) {
		t.Errorf("unknown name error = %v, want ErrUnknown", err)
	}
	if err := Register(HonestName, func() Strategy { return Honest{} }); err == nil {
		t.Error("duplicate registration accepted")
	}
	// Selfish instances must not share state.
	a, _ := New(SelfishName)
	b, _ := New(SelfishName)
	if a.(*Selfish) == b.(*Selfish) {
		t.Error("New returned a shared selfish instance")
	}
}

func TestForNodes(t *testing.T) {
	ss, err := ForNodes(3, map[int]string{2: GreedyMineName})
	if err != nil {
		t.Fatal(err)
	}
	if ss[0] != nil || ss[1] != nil || ss[2] == nil || ss[2].Name() != GreedyMineName {
		t.Errorf("assignment mismatch: %v", ss)
	}
	if _, err := ForNodes(3, map[int]string{3: HonestName}); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := ForNodes(3, map[int]string{0: "nope"}); !errors.Is(err, ErrUnknown) {
		t.Errorf("unknown strategy error = %v", err)
	}
}

func TestHonestSplitFee(t *testing.T) {
	params := types.DefaultParams() // 40% to the serializing leader
	mine, prev := Honest{}.SplitFee(params, 1000)
	if mine != 600 || prev != 400 {
		t.Errorf("honest split = (%d, %d), want (600, 400)", mine, prev)
	}
	if mine+prev != 1000 {
		t.Error("split creates or destroys value")
	}
}

func TestFeeThiefKeepsEverything(t *testing.T) {
	mine, prev := FeeThief{}.SplitFee(types.DefaultParams(), 1000)
	if mine != 1000 || prev != 0 {
		t.Errorf("feethief split = (%d, %d), want (1000, 0)", mine, prev)
	}
}

func TestGreedyMineParent(t *testing.T) {
	k1 := keyNode(nil, 1, 1)
	m1 := microNode(k1)
	m2 := microNode(m1)

	// Not leading: prune the epoch's microblocks.
	if got := (GreedyMine{}).KeyBlockParent(fakeView{tip: m2}); got != k1 {
		t.Errorf("greedymine parent = %v, want the epoch key block", got)
	}
	// Leading: own microblocks are kept (pruning would forfeit the
	// serializer share).
	if got := (GreedyMine{}).KeyBlockParent(fakeView{tip: m2, leading: true}); got != m2 {
		t.Errorf("leading greedymine parent = %v, want the tip", got)
	}
	// A bare key-block tip degenerates to honest either way.
	if got := (GreedyMine{}).KeyBlockParent(fakeView{tip: k1}); got != k1 {
		t.Errorf("key-tip greedymine parent = %v, want the tip", got)
	}
}

func TestSelfishWithholdAndRace(t *testing.T) {
	s := NewSelfish()
	pub := keyNode(nil, 0, 0)
	v := fakeView{tip: pub}

	// Found a key block: withhold, mine on it.
	a1 := keyNode(pub, 1, 1)
	if act := s.OnKeyBlockMined(v, a1.Block().(*types.KeyBlock)); act != Withhold {
		t.Fatalf("first find action = %v, want withhold", act)
	}
	s.OnOwnBlockAdded(v, a1, Withhold)
	if got := s.KeyBlockParent(fakeView{tip: pub}); got != a1 {
		t.Fatalf("mining parent = %v, want the private tip", got)
	}

	// Private microblocks stay private and extend the segment.
	m1 := microNode(a1)
	if act := s.OnMicroBlockMined(v, m1.Block().(*types.MicroBlock)); act != Withhold {
		t.Fatalf("private microblock action = %v, want withhold", act)
	}
	s.OnOwnBlockAdded(v, m1, Withhold)

	// Honest microblocks never move the race standings.
	if rel := s.OnExternalBlock(v, microNode(pub)); rel != nil {
		t.Fatalf("external microblock released %d blocks", len(rel))
	}

	// Honest matches our weight: release everything, race.
	h1 := keyNode(pub, 1, 1)
	rel := s.OnExternalBlock(v, h1)
	if len(rel) != 2 || rel[0] != a1.Block() || rel[1] != m1.Block() {
		t.Fatalf("race release = %v, want [a1, m1]", rel)
	}
	if !s.racing {
		t.Fatal("not racing after an equal-weight release")
	}
	// Still mining on our branch mid-race.
	if got := s.KeyBlockParent(fakeView{tip: h1}); got != m1 {
		t.Fatalf("race mining parent = %v, want our released tip", got)
	}

	// Winning the race by mining: publish instantly, state resets.
	a2 := keyNode(m1, 2, 2)
	if act := s.OnKeyBlockMined(v, a2.Block().(*types.KeyBlock)); act != Publish {
		t.Fatalf("race-winning find action = %v, want publish", act)
	}
	if s.racing || s.privateTip != nil || len(s.private) != 0 {
		t.Fatal("state not reset after winning the race")
	}
}

func TestSelfishLeadTwoWinsOutright(t *testing.T) {
	s := NewSelfish()
	pub := keyNode(nil, 0, 0)
	v := fakeView{tip: pub}

	a1 := keyNode(pub, 1, 1)
	a2 := keyNode(a1, 2, 2)
	for _, n := range []*chain.Node{a1, a2} {
		s.OnKeyBlockMined(v, n.Block().(*types.KeyBlock))
		s.OnOwnBlockAdded(v, n, Withhold)
	}
	// Honest reaches weight 1: we are one ahead after releasing all.
	rel := s.OnExternalBlock(v, keyNode(pub, 1, 1))
	if len(rel) != 2 || rel[0] != a1.Block() || rel[1] != a2.Block() {
		t.Fatalf("lead-2 release = %v, want the full private chain", rel)
	}
	if s.privateTip != nil || s.racing {
		t.Fatal("state not reset after an outright win")
	}
}

func TestSelfishLongLeadReleasesIncrementally(t *testing.T) {
	s := NewSelfish()
	pub := keyNode(nil, 0, 0)
	v := fakeView{tip: pub}

	a1 := keyNode(pub, 1, 1)
	m1 := microNode(a1)
	a2 := keyNode(m1, 2, 2)
	a3 := keyNode(a2, 3, 3)
	for _, n := range []*chain.Node{a1, m1, a2, a3} {
		s.OnOwnBlockAdded(v, n, Withhold)
	}

	// Honest reaches key height 1 (lead 2): release just the first private
	// epoch, keep the rest secret.
	rel := s.OnExternalBlock(v, keyNode(pub, 1, 1))
	if len(rel) != 2 || rel[0] != a1.Block() || rel[1] != m1.Block() {
		t.Fatalf("incremental release = %v, want [a1, m1]", rel)
	}
	if s.privateTip != a3 || len(s.private) != 2 {
		t.Fatalf("private segment after partial release: tip %v, %d blocks", s.privateTip, len(s.private))
	}
	// Honest reaches weight 2 (lead 1): release the rest and win outright.
	rel = s.OnExternalBlock(v, keyNode(pub, 2, 2))
	if len(rel) != 2 || rel[0] != a2.Block() || rel[1] != a3.Block() {
		t.Fatalf("final release = %v, want [a2, a3]", rel)
	}
	if s.privateTip != nil {
		t.Fatal("state not reset after the final release")
	}
}

func TestSelfishAbandonsWhenOvertaken(t *testing.T) {
	s := NewSelfish()
	pub := keyNode(nil, 0, 0)
	v := fakeView{tip: pub}

	a1 := keyNode(pub, 1, 1)
	s.OnOwnBlockAdded(v, a1, Withhold)
	// Honest jumps straight to weight 2 (we missed their first block):
	// abandon, release nothing.
	if rel := s.OnExternalBlock(v, keyNode(keyNode(pub, 1, 1), 2, 2)); rel != nil {
		t.Fatalf("overtaken release = %v, want none", rel)
	}
	if s.privateTip != nil || len(s.private) != 0 {
		t.Fatal("private chain not abandoned after being overtaken")
	}
	// Back to honest behaviour.
	if act := s.OnMicroBlockMined(v, &types.MicroBlock{}); act != Publish {
		t.Fatalf("post-abandon microblock action = %v, want publish", act)
	}
}

// TestSelfishUnequalWeightsLead: under active retargeting per-block weights
// are unequal, so a heavier private chain can sit at a lower key height.
// The signed lead must route this through the release-everything branch and
// reset the machine — the unsigned subtraction used to underflow, release
// the chain, and keep withholding on an already-public tip.
func TestSelfishUnequalWeightsLead(t *testing.T) {
	s := NewSelfish()
	pub := keyNode(nil, 0, 0)
	v := fakeView{tip: pub}

	heavy := keyNode(pub, 1, 5) // one heavy private key block
	s.OnOwnBlockAdded(v, heavy, Withhold)

	// Honest advances to key height 3 but only weight 4: we are heavier at
	// a lower height.
	h3 := keyNode(keyNode(keyNode(pub, 1, 2), 2, 3), 3, 4)
	rel := s.OnExternalBlock(v, h3)
	if len(rel) != 1 || rel[0] != heavy.Block() {
		t.Fatalf("release = %v, want the full private chain", rel)
	}
	if s.privateTip != nil || len(s.private) != 0 || s.racing {
		t.Fatal("state machine not reset after releasing at a degenerate lead")
	}
}
