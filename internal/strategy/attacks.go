package strategy

import (
	"bitcoinng/internal/chain"
	"bitcoinng/internal/types"
)

// GreedyMine is the microblock-ignoring extension attack of Greedy-Mine (Hu
// et al., 2023): the miner's key blocks extend the current epoch's key block
// directly, pruning every microblock the incumbent leader issued since.
// Because microblocks carry no weight (§4.2), the greedy block ties — and
// with the paper's random tie-breaking often beats — an honest block built
// on the same epoch's microblock chain, while the pruned microblocks' fee
// split is never paid: their transactions return to the pool for the
// attacker, now leader, to re-serialize and collect the serializer share on.
type GreedyMine struct{ Honest }

// Name implements Strategy.
func (GreedyMine) Name() string { return GreedyMineName }

// KeyBlockParent implements Strategy: extend the epoch's key block, not the
// microblock tip — unless the attacker leads the epoch itself, in which case
// pruning would forfeit its own serializer share and the rational move is
// the honest one.
func (GreedyMine) KeyBlockParent(v View) *chain.Node {
	if v.Leading() {
		return v.Tip()
	}
	return v.Tip().KeyAncestor
}

// FeeThief is a leader that claims the previous leader's LeaderFeeFrac (40%)
// share of the epoch's fees for itself. The split is consensus, not a
// convention: honest validators reject such key blocks during connect
// (core's ErrFeeSplitShort), so the thief's blocks never enter an honest
// main chain and the strategy earns nothing.
type FeeThief struct{ Honest }

// Name implements Strategy.
func (FeeThief) Name() string { return FeeThiefName }

// SplitFee implements Strategy: keep everything, pay the previous leader
// nothing.
func (FeeThief) SplitFee(params types.Params, epochFees types.Amount) (mine, prev types.Amount) {
	return epochFees, 0
}
