package utxo

import (
	"reflect"
	"testing"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
)

// TestPoisonRevokeOrderDeterministic pins the determinism bug nglint's
// maporder analyzer found in applyPoison: revocations were appended to the
// delta op log while ranging over the entries map, so two applications of
// the same poison block could record differently-ordered (and thus
// differently-replaying) deltas. The delta is shared across nodes by the
// connect cache, so op order is consensus-adjacent state. Revocations must
// come out in ascending output-index order on every run.
func TestPoisonRevokeOrderDeterministic(t *testing.T) {
	params := types.DefaultParams()
	cheater := testKey(t, 20)
	poisoner := testKey(t, 21)

	const nOutputs = 12
	outs := make([]types.TxOutput, nOutputs)
	for i := range outs {
		outs[i] = types.TxOutput{Value: 100, To: cheater.Public().Addr()}
	}

	var first []types.OutPoint
	for trial := 0; trial < 8; trial++ {
		s := New()
		cb := &types.Transaction{Kind: types.TxCoinbase, Outputs: outs, Height: 3}
		if _, _, err := s.ApplyBlock([]*types.Transaction{cb}, BlockContext{Height: 3, Params: params}); err != nil {
			t.Fatal(err)
		}
		poison := &types.Transaction{
			Kind:     types.TxPoison,
			Outputs:  []types.TxOutput{{Value: 60, To: poisoner.Public().Addr()}}, // 5% of 1200
			Evidence: &types.PoisonEvidence{Culprit: crypto.Hash{1}},
		}
		ctx := BlockContext{
			Height:        4,
			Params:        params,
			PoisonTargets: map[crypto.Hash]crypto.Hash{poison.ID(): cb.ID()},
		}
		undo, _, err := s.ApplyBlock([]*types.Transaction{poison}, ctx)
		if err != nil {
			t.Fatalf("trial %d: poison rejected: %v", trial, err)
		}

		var got []types.OutPoint
		for _, op := range undo.ops {
			if op.kind == opRevoke {
				got = append(got, op.op)
			}
		}
		if len(got) != nOutputs {
			t.Fatalf("trial %d: %d revoke ops, want %d", trial, len(got), nOutputs)
		}
		for i := 1; i < len(got); i++ {
			if got[i-1].Index >= got[i].Index {
				t.Fatalf("trial %d: revoke ops not in ascending index order at %d: %v then %v",
					trial, i, got[i-1], got[i])
			}
		}
		if trial == 0 {
			first = got
		} else if !reflect.DeepEqual(first, got) {
			t.Fatalf("trial %d: revoke order diverged from trial 0:\n%v\nvs\n%v", trial, got, first)
		}
	}
}
