package utxo

import (
	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
)

// Backend is the storage engine under a Set: a mutable map from outpoint to
// entry plus the poisoned-coinbase side set. The Set owns all validation and
// delta bookkeeping; a backend only stores. Implementations need not be safe
// for concurrent use — the owning Set serializes access.
//
// The in-memory backend lives here; internal/store adds a file-backed paged
// table so the set can exceed process RAM. Both must behave identically for
// every method below (the chaos differential replays whole experiments across
// backends and byte-compares the reports).
type Backend interface {
	// Get returns the entry for op, if present.
	Get(op types.OutPoint) (Entry, bool)
	// Put inserts or overwrites the entry for op.
	Put(op types.OutPoint, e Entry)
	// Delete removes the entry for op; deleting a missing entry is a no-op.
	Delete(op types.OutPoint)
	// Len returns the number of stored entries.
	Len() int
	// Range iterates entries in backend-specific (but run-deterministic)
	// order until fn returns false. Callers must not mutate during iteration.
	Range(fn func(op types.OutPoint, e Entry) bool)
	// Poisoned reports whether the coinbase txid is in the poisoned set.
	Poisoned(id crypto.Hash) bool
	// SetPoisoned adds (on) or removes (!on) a coinbase txid from the
	// poisoned set.
	SetPoisoned(id crypto.Hash, on bool)
	// Snapshot returns an isolated copy: mutations on either side must not
	// be visible on the other (staged branch validation depends on it).
	Snapshot() Backend
	// Reset drops all entries and poison marks, returning the backend to
	// its empty state (restart-replay begins here).
	Reset() error
	// Sync flushes buffered mutations to stable storage (no-op in memory).
	Sync() error
	// Close releases resources; the backend is unusable afterwards.
	Close() error
	// Stats returns cumulative operation counters.
	Stats() Stats
}

// Stats counts backend operations. All fields are cumulative since
// construction (Reset does not zero them); samplers subtract snapshots.
// Counters are deterministic functions of the operation sequence — no
// timings — so they can be surfaced in metrics without perturbing the
// engine-differential digests.
type Stats struct {
	// Logical entry operations.
	Gets, Puts, Deletes uint64
	// Page-cache hits/misses (file backends; zero in memory).
	CacheHits, CacheMisses uint64
	// Pages transferred to/from disk.
	PageReads, PageWrites uint64
	// Journal appends (file backends).
	JournalRecords, JournalBytes uint64
	// Checkpoints written (file backends).
	Checkpoints uint64
}

// Add accumulates other into s, for aggregating per-node stats fleet-wide.
func (s *Stats) Add(o Stats) {
	s.Gets += o.Gets
	s.Puts += o.Puts
	s.Deletes += o.Deletes
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.PageReads += o.PageReads
	s.PageWrites += o.PageWrites
	s.JournalRecords += o.JournalRecords
	s.JournalBytes += o.JournalBytes
	s.Checkpoints += o.Checkpoints
}

// Sub returns s - o, for turning cumulative counters into per-interval
// deltas at the harness's quiescent sampling boundaries.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Gets:           s.Gets - o.Gets,
		Puts:           s.Puts - o.Puts,
		Deletes:        s.Deletes - o.Deletes,
		CacheHits:      s.CacheHits - o.CacheHits,
		CacheMisses:    s.CacheMisses - o.CacheMisses,
		PageReads:      s.PageReads - o.PageReads,
		PageWrites:     s.PageWrites - o.PageWrites,
		JournalRecords: s.JournalRecords - o.JournalRecords,
		JournalBytes:   s.JournalBytes - o.JournalBytes,
		Checkpoints:    s.Checkpoints - o.Checkpoints,
	}
}

// memBackend is the original map-based storage: fastest, RAM-bound.
type memBackend struct {
	entries  map[types.OutPoint]Entry
	poisoned map[crypto.Hash]bool
	stats    Stats
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() Backend {
	return &memBackend{
		entries:  make(map[types.OutPoint]Entry),
		poisoned: make(map[crypto.Hash]bool),
	}
}

func (m *memBackend) Get(op types.OutPoint) (Entry, bool) {
	m.stats.Gets++
	e, ok := m.entries[op]
	return e, ok
}

func (m *memBackend) Put(op types.OutPoint, e Entry) {
	m.stats.Puts++
	m.entries[op] = e
}

func (m *memBackend) Delete(op types.OutPoint) {
	m.stats.Deletes++
	delete(m.entries, op)
}

func (m *memBackend) Len() int { return len(m.entries) }

func (m *memBackend) Range(fn func(op types.OutPoint, e Entry) bool) {
	for op, e := range m.entries {
		if !fn(op, e) {
			return
		}
	}
}

func (m *memBackend) Poisoned(id crypto.Hash) bool { return m.poisoned[id] }

func (m *memBackend) SetPoisoned(id crypto.Hash, on bool) {
	if on {
		m.poisoned[id] = true
	} else {
		delete(m.poisoned, id)
	}
}

// Snapshot deep-copies both maps. The poisoned set is copied too — sharing
// it would let a staged branch's poison transaction leak into the active
// state (and vice versa), silently rejecting valid poisons after a reorg.
func (m *memBackend) Snapshot() Backend {
	c := &memBackend{
		entries:  make(map[types.OutPoint]Entry, len(m.entries)),
		poisoned: make(map[crypto.Hash]bool, len(m.poisoned)),
	}
	for op, e := range m.entries {
		c.entries[op] = e
	}
	for id := range m.poisoned {
		c.poisoned[id] = true
	}
	return c
}

func (m *memBackend) Reset() error {
	m.entries = make(map[types.OutPoint]Entry)
	m.poisoned = make(map[crypto.Hash]bool)
	return nil
}

func (m *memBackend) Sync() error  { return nil }
func (m *memBackend) Close() error { return nil }

func (m *memBackend) Stats() Stats { return m.stats }
