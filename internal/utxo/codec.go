package utxo

import (
	"encoding/binary"
	"fmt"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
)

// Wire sizes for the fixed-width entry encoding shared by the file-backed
// store's op-log journal, checkpoint, and paged table (internal/store).
const (
	// OutPointWireSize is TxID (32) + Index (4).
	OutPointWireSize = crypto.HashSize + 4
	// EntryWireSize is Value (8) + To (32) + Height (8) + flags (1).
	EntryWireSize = 8 + crypto.HashSize + 8 + 1
	// deltaOpWireSize is kind (1) + outpoint + entry.
	deltaOpWireSize = 1 + OutPointWireSize + EntryWireSize
)

const (
	entryFlagCoinbase = 1 << 0
	entryFlagRevoked  = 1 << 1
)

// PutOutPoint encodes op into dst, which must be at least OutPointWireSize
// bytes.
func PutOutPoint(dst []byte, op types.OutPoint) {
	copy(dst[:crypto.HashSize], op.TxID[:])
	binary.LittleEndian.PutUint32(dst[crypto.HashSize:], op.Index)
}

// GetOutPoint decodes an outpoint written by PutOutPoint.
func GetOutPoint(src []byte) types.OutPoint {
	var op types.OutPoint
	copy(op.TxID[:], src[:crypto.HashSize])
	op.Index = binary.LittleEndian.Uint32(src[crypto.HashSize:])
	return op
}

// PutEntry encodes e into dst, which must be at least EntryWireSize bytes.
func PutEntry(dst []byte, e Entry) {
	binary.LittleEndian.PutUint64(dst[0:8], uint64(e.Value))
	copy(dst[8:8+crypto.HashSize], e.To[:])
	binary.LittleEndian.PutUint64(dst[8+crypto.HashSize:16+crypto.HashSize], e.Height)
	var flags byte
	if e.Coinbase {
		flags |= entryFlagCoinbase
	}
	if e.Revoked {
		flags |= entryFlagRevoked
	}
	dst[16+crypto.HashSize] = flags
}

// GetEntry decodes an entry written by PutEntry.
func GetEntry(src []byte) Entry {
	var e Entry
	e.Value = types.Amount(binary.LittleEndian.Uint64(src[0:8]))
	copy(e.To[:], src[8:8+crypto.HashSize])
	e.Height = binary.LittleEndian.Uint64(src[8+crypto.HashSize : 16+crypto.HashSize])
	flags := src[16+crypto.HashSize]
	e.Coinbase = flags&entryFlagCoinbase != 0
	e.Revoked = flags&entryFlagRevoked != 0
	return e
}

// EncodeDelta serializes a delta's ordered op log: a little-endian uint32
// count followed by fixed-width ops. The encoding is canonical — equal
// deltas encode to equal bytes — so journal contents are comparable across
// runs in the store differential tests.
func EncodeDelta(d *Delta) []byte {
	out := make([]byte, 4+len(d.ops)*deltaOpWireSize)
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(d.ops)))
	off := 4
	for i := range d.ops {
		op := &d.ops[i]
		out[off] = op.kind
		PutOutPoint(out[off+1:], op.op)
		PutEntry(out[off+1+OutPointWireSize:], op.entry)
		off += deltaOpWireSize
	}
	return out
}

// DecodeDelta parses an encoding produced by EncodeDelta.
func DecodeDelta(data []byte) (*Delta, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("utxo: delta truncated: %d bytes", len(data))
	}
	n := int(binary.LittleEndian.Uint32(data[0:4]))
	if want := 4 + n*deltaOpWireSize; len(data) != want {
		return nil, fmt.Errorf("utxo: delta length %d, want %d for %d ops", len(data), want, n)
	}
	d := &Delta{ops: make([]deltaOp, n)}
	off := 4
	for i := 0; i < n; i++ {
		kind := data[off]
		if kind > opPoison {
			return nil, fmt.Errorf("utxo: delta op %d: unknown kind %d", i, kind)
		}
		d.ops[i] = deltaOp{
			kind:  kind,
			op:    GetOutPoint(data[off+1:]),
			entry: GetEntry(data[off+1+OutPointWireSize:]),
		}
		off += deltaOpWireSize
	}
	return d, nil
}
