// Package utxo implements the replicated state machine the blockchain
// serializes (§2, §3 of the paper): an unspent-transaction-output set with
// atomic block application, undo records for chain reorganizations, coinbase
// maturity, and Bitcoin-NG poison revocation of fraudulent leader revenue
// (§4.5).
//
// Storage is pluggable: the Set holds all validation and delta bookkeeping
// and delegates raw entry storage to a Backend (in-memory here, file-backed
// paged table in internal/store), so chain state can exceed process RAM
// without the consensus logic knowing.
package utxo

import (
	"errors"
	"fmt"
	"sort"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
)

// Entry is one unspent output.
type Entry struct {
	Value types.Amount
	To    crypto.Address
	// Coinbase entries are spendable only after the maturity period
	// (§4.4) and are the only entries poison transactions can revoke.
	Coinbase bool
	// Height is the key-height (PoW-block height for Bitcoin) of the block
	// that created the entry, used for the maturity check.
	Height uint64
	// Revoked entries belonged to a leader proven fraudulent (§4.5); they
	// can never be spent.
	Revoked bool
}

// Validation errors.
var (
	ErrMissingInput    = errors.New("utxo: input not found or already spent")
	ErrWrongOwner      = errors.New("utxo: input key does not own the output")
	ErrImmature        = errors.New("utxo: coinbase output not yet mature")
	ErrRevokedInput    = errors.New("utxo: output revoked by poison transaction")
	ErrValueOverflow   = errors.New("utxo: outputs exceed inputs")
	ErrUnknownCulprit  = errors.New("utxo: poison target coinbase unknown")
	ErrAlreadyPoisoned = errors.New("utxo: cheater already poisoned")
	ErrExcessReward    = errors.New("utxo: poison reward exceeds allowed fraction")
	ErrDuplicateOutput = errors.New("utxo: output already exists")
)

// BlockRef identifies the block a delta belongs to, so journaling backends
// can label op-log records. The in-memory path ignores it.
type BlockRef struct {
	Block  crypto.Hash
	Parent crypto.Hash
}

// BlockContext carries the contextual information ApplyBlock needs.
type BlockContext struct {
	// Height is the key-height of the block being applied (microblocks use
	// their epoch's key height).
	Height uint64
	// Params supplies CoinbaseMaturity and PoisonRewardFrac.
	Params types.Params
	// PoisonTargets maps a poison transaction's ID to the coinbase
	// transaction ID of the culprit it revokes. The chain layer resolves
	// the mapping from the evidence (culprit key block → its coinbase)
	// after verifying the fraud proof.
	PoisonTargets map[crypto.Hash]crypto.Hash
	// Ref identifies the block being applied (zero for contexts built by
	// tests that never journal). File-backed stores record it in the op
	// log; the in-memory set ignores it.
	Ref BlockRef
}

// Set is the UTXO set. It is not safe for concurrent use; each protocol node
// owns one (or a small number, for staging branch validation).
type Set struct {
	be Backend
}

// New returns an empty set over the in-memory backend.
func New() *Set { return NewWith(NewMemBackend()) }

// NewWith returns a set over the given storage backend.
func NewWith(be Backend) *Set { return &Set{be: be} }

// Len returns the number of unspent entries.
func (s *Set) Len() int { return s.be.Len() }

// Lookup returns the entry for op, if present.
func (s *Set) Lookup(op types.OutPoint) (Entry, bool) { return s.be.Get(op) }

// Range iterates the unspent entries in unspecified order until fn returns
// false. Callers must not mutate the set during iteration. Consumers that
// need an order (wallets, reports) must sort — the order differs between
// backends even within one run.
func (s *Set) Range(fn func(op types.OutPoint, e Entry) bool) { s.be.Range(fn) }

// BalanceOf sums the spendable (non-revoked) value paid to addr. It is a
// linear scan intended for wallets and tests, not consensus.
func (s *Set) BalanceOf(addr crypto.Address) types.Amount {
	var sum types.Amount
	s.be.Range(func(_ types.OutPoint, e Entry) bool {
		if e.To == addr && !e.Revoked {
			sum += e.Value
		}
		return true
	})
	return sum
}

// Clone returns an isolated snapshot, used to stage validation of a
// candidate branch without touching the active state. Mutations on the
// clone never reach the original and vice versa; how that isolation is
// achieved (deep copy, copy-on-write overlay) is the backend's business.
func (s *Set) Clone() *Set { return &Set{be: s.be.Snapshot()} }

// Reset drops all entries and poison marks, returning the set to its empty
// state. The restart path resets before replaying the durable chain prefix
// so a half-synced store can never double-apply.
func (s *Set) Reset() error { return s.be.Reset() }

// Sync flushes buffered state to stable storage (no-op in memory).
func (s *Set) Sync() error { return s.be.Sync() }

// Close releases backend resources; the set is unusable afterwards.
func (s *Set) Close() error { return s.be.Close() }

// Stats returns the backend's cumulative operation counters.
func (s *Set) Stats() Stats { return s.be.Stats() }

// Delta op kinds.
const (
	opCreate uint8 = iota // entry added to the set
	opSpend               // entry consumed (Entry holds the old value)
	opRevoke              // entry flipped to Revoked
	opPoison              // coinbase txid marked poisoned (Op.TxID holds it)
)

// deltaOp is one recorded mutation. Ops form an ordered log so a delta
// replays forward correctly even when a block spends outputs it created
// (intra-block chains), and reverses backward for reorganizations.
type deltaOp struct {
	kind  uint8
	op    types.OutPoint
	entry Entry // old entry for opSpend, new entry for opCreate
}

// Delta records one block's effect on the set as an ordered mutation log. It
// serves two roles: the undo record for disconnecting the block during a
// reorganization, and — because create ops carry the full entries — a redo
// record that replays the block onto another set in the same pre-state
// without re-validating anything (the connect cache in internal/validate
// shares one Delta across every node that connects the block). A Delta is
// immutable once returned by ApplyBlock; Redo/Undo only read it.
type Delta struct {
	ops []deltaOp
}

// Ops returns the number of recorded mutations.
func (d *Delta) Ops() int { return len(d.ops) }

// checkSpend validates that input i of tx may spend from the set at the
// given context and returns the entry.
func (s *Set) checkSpend(tx *types.Transaction, i int, ctx *BlockContext) (Entry, error) {
	in := &tx.Inputs[i]
	e, ok := s.be.Get(in.Prev)
	if !ok {
		return Entry{}, fmt.Errorf("%w: %v", ErrMissingInput, in.Prev)
	}
	if e.Revoked {
		return Entry{}, fmt.Errorf("%w: %v", ErrRevokedInput, in.Prev)
	}
	if tx.InputAddr(i) != e.To {
		return Entry{}, fmt.Errorf("%w: %v", ErrWrongOwner, in.Prev)
	}
	if e.Coinbase && ctx.Height-e.Height < uint64(ctx.Params.CoinbaseMaturity) {
		return Entry{}, fmt.Errorf("%w: %v at height %d, needs %d confirmations",
			ErrImmature, in.Prev, e.Height, ctx.Params.CoinbaseMaturity)
	}
	return e, nil
}

// applyTx validates and applies one transaction, appending to the delta log.
// Signature validity is intrinsic (checked by CheckWellFormed before the
// block reaches the state machine); applyTx checks the contextual rules.
func (s *Set) applyTx(tx *types.Transaction, ctx *BlockContext, d *Delta) (fee types.Amount, err error) {
	txid := tx.ID()
	switch tx.Kind {
	case types.TxPoison:
		if err := s.applyPoison(tx, txid, ctx, d); err != nil {
			return 0, err
		}
	case types.TxCoinbase:
		// Amount correctness is the chain layer's concern (it knows the
		// subsidy and collected fees); here a coinbase just mints.
	default:
		var inSum types.Amount
		for i := range tx.Inputs {
			e, err := s.checkSpend(tx, i, ctx)
			if err != nil {
				return 0, fmt.Errorf("tx %s input %d: %w", txid.Short(), i, err)
			}
			inSum += e.Value
			d.ops = append(d.ops, deltaOp{kind: opSpend, op: tx.Inputs[i].Prev, entry: e})
			s.be.Delete(tx.Inputs[i].Prev)
		}
		outSum := tx.OutputSum()
		if outSum > inSum {
			return 0, fmt.Errorf("tx %s: %w (%d > %d)", txid.Short(), ErrValueOverflow, outSum, inSum)
		}
		fee = inSum - outSum
	}

	// Genesis payouts (height 0) are exempt from maturity so experiment
	// workloads can spend immediately.
	isCoinbase := tx.Kind == types.TxCoinbase && ctx.Height > 0
	for i := range tx.Outputs {
		op := types.OutPoint{TxID: txid, Index: uint32(i)}
		if _, exists := s.be.Get(op); exists {
			return 0, fmt.Errorf("%w: %v", ErrDuplicateOutput, op)
		}
		e := Entry{
			Value:    tx.Outputs[i].Value,
			To:       tx.Outputs[i].To,
			Coinbase: isCoinbase,
			Height:   ctx.Height,
		}
		s.be.Put(op, e)
		d.ops = append(d.ops, deltaOp{kind: opCreate, op: op, entry: e})
	}
	return fee, nil
}

// applyPoison revokes the culprit's unspent coinbase outputs and checks the
// poisoner's reward does not exceed the allowed fraction of the revoked
// value (§4.5: "a poison transaction grants the current leader a fraction of
// that compensation, e.g., 5%"; the rest is lost).
func (s *Set) applyPoison(tx *types.Transaction, txid crypto.Hash, ctx *BlockContext, d *Delta) error {
	culpritCB, ok := ctx.PoisonTargets[txid]
	if !ok {
		return fmt.Errorf("%w: poison %s", ErrUnknownCulprit, txid.Short())
	}
	if s.be.Poisoned(culpritCB) {
		// "Only one poison transaction can be placed per cheater."
		return fmt.Errorf("%w: coinbase %s", ErrAlreadyPoisoned, culpritCB.Short())
	}
	// Collect the revocable outputs first and sort them: the delta op log
	// is ordered (undo replays it back to front), so appending in backend
	// iteration order would make the log — and anything derived from it —
	// differ run to run for the same (config, seed). A coinbase has a
	// handful of outputs, so the full-set scan is acceptable even on the
	// paged file backend (poison transactions are rare by construction).
	var revoke []types.OutPoint
	s.be.Range(func(op types.OutPoint, e Entry) bool {
		if op.TxID == culpritCB && !e.Revoked {
			revoke = append(revoke, op)
		}
		return true
	})
	sort.Slice(revoke, func(i, j int) bool { return revoke[i].Index < revoke[j].Index })
	var revokedValue types.Amount
	for _, op := range revoke {
		e, _ := s.be.Get(op)
		e.Revoked = true
		s.be.Put(op, e)
		d.ops = append(d.ops, deltaOp{kind: opRevoke, op: op})
		revokedValue += e.Value
	}
	reward := types.Amount(float64(revokedValue) * ctx.Params.PoisonRewardFrac)
	if tx.OutputSum() > reward {
		return fmt.Errorf("%w: %d > %d", ErrExcessReward, tx.OutputSum(), reward)
	}
	s.be.SetPoisoned(culpritCB, true)
	d.ops = append(d.ops, deltaOp{kind: opPoison, op: types.OutPoint{TxID: culpritCB}})
	return nil
}

// ApplyBlock validates and applies a block's transactions atomically. On
// success it returns the delta record and the fee collected from each
// transaction (indexed like txs). On failure the set is unchanged.
//
// Later transactions may spend outputs created by earlier transactions in
// the same block, matching Bitcoin semantics.
func (s *Set) ApplyBlock(txs []*types.Transaction, ctx BlockContext) (*Delta, []types.Amount, error) {
	d := &Delta{}
	fees := make([]types.Amount, len(txs))
	for i, tx := range txs {
		fee, err := s.applyTx(tx, &ctx, d)
		if err != nil {
			s.UndoBlock(d, ctx.Ref)
			return nil, nil, fmt.Errorf("block tx %d: %w", i, err)
		}
		fees[i] = fee
	}
	return d, fees, nil
}

// RedoBlock replays a recorded delta forward onto the set without any
// validation. It is only sound when the set is in the exact pre-state the
// delta was recorded against — the connect cache guarantees this by content
// addressing (equal block hash implies equal history below it). A missing
// spend target means that guarantee was broken and panics: serving a
// corrupted ledger is worse than crashing. `at` names the block the delta
// came from, for journaling backends.
func (s *Set) RedoBlock(d *Delta, at BlockRef) {
	for i := range d.ops {
		op := &d.ops[i]
		switch op.kind {
		case opCreate:
			s.be.Put(op.op, op.entry)
		case opSpend:
			if _, ok := s.be.Get(op.op); !ok {
				panic(fmt.Sprintf("utxo: redo spends missing entry %v", op.op))
			}
			s.be.Delete(op.op)
		case opRevoke:
			e, ok := s.be.Get(op.op)
			if !ok {
				panic(fmt.Sprintf("utxo: redo revokes missing entry %v", op.op))
			}
			e.Revoked = true
			s.be.Put(op.op, e)
		case opPoison:
			s.be.SetPoisoned(op.op.TxID, true)
		}
	}
}

// UndoBlock reverses a block application. Deltas must be undone in reverse
// order of the blocks they came from. `at` names the block being undone,
// for journaling backends.
func (s *Set) UndoBlock(d *Delta, at BlockRef) {
	for i := len(d.ops) - 1; i >= 0; i-- {
		op := &d.ops[i]
		switch op.kind {
		case opCreate:
			s.be.Delete(op.op)
		case opSpend:
			s.be.Put(op.op, op.entry)
		case opRevoke:
			if e, ok := s.be.Get(op.op); ok {
				e.Revoked = false
				s.be.Put(op.op, e)
			}
		case opPoison:
			s.be.SetPoisoned(op.op.TxID, false)
		}
	}
}

// Poisoned reports whether the coinbase txid has been revoked by a poison
// transaction.
func (s *Set) Poisoned(coinbaseID crypto.Hash) bool { return s.be.Poisoned(coinbaseID) }
