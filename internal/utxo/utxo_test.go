package utxo

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
)

func testKey(t testing.TB, seed int64) *crypto.PrivateKey {
	t.Helper()
	k, err := crypto.GenerateKey(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	return k
}

func ctxAt(height uint64) BlockContext {
	return BlockContext{Height: height, Params: types.DefaultParams()}
}

// fund applies a height-0 coinbase paying amounts to key's address and
// returns the outpoints (exempt from maturity, like genesis payouts).
func fund(t *testing.T, s *Set, key *crypto.PrivateKey, amounts ...types.Amount) []types.OutPoint {
	t.Helper()
	outs := make([]types.TxOutput, len(amounts))
	for i, a := range amounts {
		outs[i] = types.TxOutput{Value: a, To: key.Public().Addr()}
	}
	cb := &types.Transaction{Kind: types.TxCoinbase, Outputs: outs}
	if _, _, err := s.ApplyBlock([]*types.Transaction{cb}, ctxAt(0)); err != nil {
		t.Fatalf("fund: %v", err)
	}
	ops := make([]types.OutPoint, len(amounts))
	for i := range ops {
		ops[i] = types.OutPoint{TxID: cb.ID(), Index: uint32(i)}
	}
	return ops
}

func spendTx(key *crypto.PrivateKey, from types.OutPoint, pay types.Amount, to crypto.Address, change types.Amount) *types.Transaction {
	tx := &types.Transaction{
		Kind:   types.TxRegular,
		Inputs: []types.TxInput{{Prev: from}},
		Outputs: []types.TxOutput{
			{Value: pay, To: to},
			{Value: change, To: key.Public().Addr()},
		},
	}
	tx.SignInput(0, key)
	return tx
}

func TestApplySpendAndFee(t *testing.T) {
	s := New()
	key := testKey(t, 1)
	ops := fund(t, s, key, 100)

	dest := crypto.Address{9}
	tx := spendTx(key, ops[0], 60, dest, 30) // fee 10
	_, fees, err := s.ApplyBlock([]*types.Transaction{tx}, ctxAt(1))
	if err != nil {
		t.Fatalf("ApplyBlock: %v", err)
	}
	if fees[0] != 10 {
		t.Errorf("fee = %d, want 10", fees[0])
	}
	if got := s.BalanceOf(dest); got != 60 {
		t.Errorf("dest balance = %d", got)
	}
	if got := s.BalanceOf(key.Public().Addr()); got != 30 {
		t.Errorf("change balance = %d", got)
	}
	// Spent output is gone.
	if _, ok := s.Lookup(ops[0]); ok {
		t.Error("spent output still present")
	}
}

func TestDoubleSpendRejected(t *testing.T) {
	s := New()
	key := testKey(t, 2)
	ops := fund(t, s, key, 100)
	tx1 := spendTx(key, ops[0], 50, crypto.Address{1}, 50)
	tx2 := spendTx(key, ops[0], 50, crypto.Address{2}, 50)
	if _, _, err := s.ApplyBlock([]*types.Transaction{tx1}, ctxAt(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ApplyBlock([]*types.Transaction{tx2}, ctxAt(2)); !errors.Is(err, ErrMissingInput) {
		t.Errorf("double spend err = %v, want ErrMissingInput", err)
	}
}

func TestIntraBlockChainedSpend(t *testing.T) {
	s := New()
	key := testKey(t, 3)
	ops := fund(t, s, key, 100)
	tx1 := spendTx(key, ops[0], 70, key.Public().Addr(), 30)
	// tx2 spends tx1's first output inside the same block.
	tx2 := spendTx(key, types.OutPoint{TxID: tx1.ID(), Index: 0}, 70, crypto.Address{5}, 0)
	if _, _, err := s.ApplyBlock([]*types.Transaction{tx1, tx2}, ctxAt(1)); err != nil {
		t.Fatalf("chained spend rejected: %v", err)
	}
	if got := s.BalanceOf(crypto.Address{5}); got != 70 {
		t.Errorf("balance = %d", got)
	}
}

func TestAtomicFailureLeavesSetUnchanged(t *testing.T) {
	s := New()
	key := testKey(t, 4)
	ops := fund(t, s, key, 100)
	before := s.Len()

	good := spendTx(key, ops[0], 50, crypto.Address{1}, 50)
	bad := spendTx(key, types.OutPoint{Index: 99}, 1, crypto.Address{2}, 0) // missing input
	_, _, err := s.ApplyBlock([]*types.Transaction{good, bad}, ctxAt(1))
	if err == nil {
		t.Fatal("block with bad tx accepted")
	}
	if s.Len() != before {
		t.Error("failed block mutated the set")
	}
	if _, ok := s.Lookup(ops[0]); !ok {
		t.Error("failed block consumed an input")
	}
}

func TestWrongOwnerRejected(t *testing.T) {
	s := New()
	owner := testKey(t, 5)
	thief := testKey(t, 6)
	ops := fund(t, s, owner, 100)
	tx := spendTx(thief, ops[0], 100, crypto.Address{1}, 0)
	if _, _, err := s.ApplyBlock([]*types.Transaction{tx}, ctxAt(1)); !errors.Is(err, ErrWrongOwner) {
		t.Errorf("err = %v, want ErrWrongOwner", err)
	}
}

func TestValueOverflowRejected(t *testing.T) {
	s := New()
	key := testKey(t, 7)
	ops := fund(t, s, key, 100)
	tx := spendTx(key, ops[0], 200, crypto.Address{1}, 0)
	if _, _, err := s.ApplyBlock([]*types.Transaction{tx}, ctxAt(1)); !errors.Is(err, ErrValueOverflow) {
		t.Errorf("err = %v, want ErrValueOverflow", err)
	}
}

func TestCoinbaseMaturity(t *testing.T) {
	s := New()
	key := testKey(t, 8)
	params := types.DefaultParams()
	params.CoinbaseMaturity = 10

	// A coinbase at height 5 paying the key.
	cb := &types.Transaction{
		Kind:    types.TxCoinbase,
		Outputs: []types.TxOutput{{Value: 50, To: key.Public().Addr()}},
		Height:  5,
	}
	ctx := BlockContext{Height: 5, Params: params}
	if _, _, err := s.ApplyBlock([]*types.Transaction{cb}, ctx); err != nil {
		t.Fatal(err)
	}
	op := types.OutPoint{TxID: cb.ID(), Index: 0}
	spend := spendTx(key, op, 50, crypto.Address{1}, 0)

	// Spending at height 14 (9 confirmations) is immature.
	if _, _, err := s.ApplyBlock([]*types.Transaction{spend}, BlockContext{Height: 14, Params: params}); !errors.Is(err, ErrImmature) {
		t.Errorf("immature spend err = %v", err)
	}
	// At height 15 it matures.
	if _, _, err := s.ApplyBlock([]*types.Transaction{spend}, BlockContext{Height: 15, Params: params}); err != nil {
		t.Errorf("mature spend rejected: %v", err)
	}
}

func TestUndoRestoresExactState(t *testing.T) {
	s := New()
	key := testKey(t, 9)
	ops := fund(t, s, key, 100, 40)

	snapshot := s.Clone()
	tx := spendTx(key, ops[0], 60, crypto.Address{3}, 40)
	undo, _, err := s.ApplyBlock([]*types.Transaction{tx}, ctxAt(1))
	if err != nil {
		t.Fatal(err)
	}
	s.UndoBlock(undo, BlockRef{})

	if s.Len() != snapshot.Len() {
		t.Fatalf("len after undo = %d, want %d", s.Len(), snapshot.Len())
	}
	for _, op := range ops {
		got, ok := s.Lookup(op)
		want, _ := snapshot.Lookup(op)
		if !ok || got != want {
			t.Errorf("entry %v = %+v, want %+v", op, got, want)
		}
	}
}

// TestApplyUndoIdentityProperty drives random spend sequences and checks
// apply-then-undo is an identity on the set.
func TestApplyUndoIdentityProperty(t *testing.T) {
	f := func(seed int64, nTx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		key, err := crypto.GenerateKey(rng)
		if err != nil {
			return false
		}
		// Fund with several outputs.
		outs := make([]types.TxOutput, 8)
		for i := range outs {
			outs[i] = types.TxOutput{Value: types.Amount(100 + rng.Intn(1000)), To: key.Public().Addr()}
		}
		cb := &types.Transaction{Kind: types.TxCoinbase, Outputs: outs}
		if _, _, err := s.ApplyBlock([]*types.Transaction{cb}, ctxAt(0)); err != nil {
			return false
		}
		snapshot := s.Clone()

		// Build a block spending a random subset.
		var txs []*types.Transaction
		n := int(nTx%6) + 1
		for i := 0; i < n && i < len(outs); i++ {
			op := types.OutPoint{TxID: cb.ID(), Index: uint32(i)}
			e, _ := s.Lookup(op)
			tx := spendTx(key, op, e.Value/2, crypto.Address{byte(i)}, e.Value/4)
			txs = append(txs, tx)
		}
		undo, _, err := s.ApplyBlock(txs, ctxAt(1))
		if err != nil {
			return false
		}
		s.UndoBlock(undo, BlockRef{})
		if s.Len() != snapshot.Len() {
			return false
		}
		for i := range outs {
			op := types.OutPoint{TxID: cb.ID(), Index: uint32(i)}
			a, okA := s.Lookup(op)
			b, okB := snapshot.Lookup(op)
			if okA != okB || a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPoisonRevocation(t *testing.T) {
	s := New()
	cheater := testKey(t, 10)
	poisoner := testKey(t, 11)
	params := types.DefaultParams() // 5% reward

	// The cheater's key block coinbase minted 1000.
	cb := &types.Transaction{
		Kind:    types.TxCoinbase,
		Outputs: []types.TxOutput{{Value: 1000, To: cheater.Public().Addr()}},
		Height:  3,
	}
	if _, _, err := s.ApplyBlock([]*types.Transaction{cb}, BlockContext{Height: 3, Params: params}); err != nil {
		t.Fatal(err)
	}

	poison := &types.Transaction{
		Kind:     types.TxPoison,
		Outputs:  []types.TxOutput{{Value: 50, To: poisoner.Public().Addr()}}, // exactly 5%
		Evidence: &types.PoisonEvidence{Culprit: crypto.Hash{1}},
	}
	ctx := BlockContext{
		Height:        4,
		Params:        params,
		PoisonTargets: map[crypto.Hash]crypto.Hash{poison.ID(): cb.ID()},
	}
	undo, _, err := s.ApplyBlock([]*types.Transaction{poison}, ctx)
	if err != nil {
		t.Fatalf("poison rejected: %v", err)
	}

	// The cheater's output is revoked and unspendable.
	op := types.OutPoint{TxID: cb.ID(), Index: 0}
	e, ok := s.Lookup(op)
	if !ok || !e.Revoked {
		t.Fatal("culprit output not revoked")
	}
	spend := spendTx(cheater, op, 1000, crypto.Address{1}, 0)
	farCtx := BlockContext{Height: 500, Params: params}
	if _, _, err := s.ApplyBlock([]*types.Transaction{spend}, farCtx); !errors.Is(err, ErrRevokedInput) {
		t.Errorf("revoked spend err = %v", err)
	}
	if !s.Poisoned(cb.ID()) {
		t.Error("coinbase not marked poisoned")
	}

	// Undo restores spendability.
	s.UndoBlock(undo, BlockRef{})
	if e, _ := s.Lookup(op); e.Revoked {
		t.Error("undo did not clear revocation")
	}
	if s.Poisoned(cb.ID()) {
		t.Error("undo did not clear poisoned mark")
	}
}

func TestPoisonOnlyOncePerCheater(t *testing.T) {
	s := New()
	cheater := testKey(t, 12)
	params := types.DefaultParams()
	cb := &types.Transaction{
		Kind:    types.TxCoinbase,
		Outputs: []types.TxOutput{{Value: 1000, To: cheater.Public().Addr()}},
		Height:  3,
	}
	if _, _, err := s.ApplyBlock([]*types.Transaction{cb}, BlockContext{Height: 3, Params: params}); err != nil {
		t.Fatal(err)
	}
	mkPoison := func(n byte) *types.Transaction {
		return &types.Transaction{
			Kind:     types.TxPoison,
			Outputs:  []types.TxOutput{{Value: 1, To: crypto.Address{n}}},
			Evidence: &types.PoisonEvidence{Culprit: crypto.Hash{n}},
		}
	}
	p1, p2 := mkPoison(1), mkPoison(2)
	ctx := BlockContext{
		Height: 4,
		Params: params,
		PoisonTargets: map[crypto.Hash]crypto.Hash{
			p1.ID(): cb.ID(),
			p2.ID(): cb.ID(),
		},
	}
	if _, _, err := s.ApplyBlock([]*types.Transaction{p1}, ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ApplyBlock([]*types.Transaction{p2}, ctx); !errors.Is(err, ErrAlreadyPoisoned) {
		t.Errorf("second poison err = %v", err)
	}
}

func TestPoisonRewardBounded(t *testing.T) {
	s := New()
	cheater := testKey(t, 13)
	params := types.DefaultParams()
	cb := &types.Transaction{
		Kind:    types.TxCoinbase,
		Outputs: []types.TxOutput{{Value: 1000, To: cheater.Public().Addr()}},
		Height:  3,
	}
	if _, _, err := s.ApplyBlock([]*types.Transaction{cb}, BlockContext{Height: 3, Params: params}); err != nil {
		t.Fatal(err)
	}
	greedy := &types.Transaction{
		Kind:     types.TxPoison,
		Outputs:  []types.TxOutput{{Value: 51, To: crypto.Address{1}}}, // > 5%
		Evidence: &types.PoisonEvidence{Culprit: crypto.Hash{1}},
	}
	ctx := BlockContext{
		Height:        4,
		Params:        params,
		PoisonTargets: map[crypto.Hash]crypto.Hash{greedy.ID(): cb.ID()},
	}
	if _, _, err := s.ApplyBlock([]*types.Transaction{greedy}, ctx); !errors.Is(err, ErrExcessReward) {
		t.Errorf("greedy poison err = %v", err)
	}
}

func TestPoisonUnknownTarget(t *testing.T) {
	s := New()
	poison := &types.Transaction{
		Kind:     types.TxPoison,
		Outputs:  []types.TxOutput{{Value: 0, To: crypto.Address{1}}},
		Evidence: &types.PoisonEvidence{},
	}
	if _, _, err := s.ApplyBlock([]*types.Transaction{poison}, ctxAt(1)); !errors.Is(err, ErrUnknownCulprit) {
		t.Errorf("err = %v", err)
	}
}

func TestCloneIsolation(t *testing.T) {
	s := New()
	key := testKey(t, 14)
	ops := fund(t, s, key, 100)
	c := s.Clone()
	tx := spendTx(key, ops[0], 100, crypto.Address{1}, 0)
	if _, _, err := c.ApplyBlock([]*types.Transaction{tx}, ctxAt(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Lookup(ops[0]); !ok {
		t.Error("mutating clone affected original")
	}
}

// TestCloneMutationIsolation pins the Set.Clone contract in both directions
// and for both kinds of state a snapshot can alias: the entry table and the
// poison-mark set. A branch staged on a clone must never bleed into the
// active state, and the active state must never bleed into an outstanding
// clone — either leak silently corrupts reorg validation.
func TestCloneMutationIsolation(t *testing.T) {
	owner := testKey(t, 20)
	params := types.DefaultParams()
	s := New()
	cb := &types.Transaction{
		Kind: types.TxCoinbase,
		Outputs: []types.TxOutput{
			{Value: 1000, To: owner.Public().Addr()},
			{Value: 500, To: owner.Public().Addr()},
		},
		Height: 1,
	}
	if _, _, err := s.ApplyBlock([]*types.Transaction{cb}, BlockContext{Height: 1, Params: params}); err != nil {
		t.Fatal(err)
	}

	clone := s.Clone()
	op0 := types.OutPoint{TxID: cb.ID(), Index: 0}
	op1 := types.OutPoint{TxID: cb.ID(), Index: 1}
	far := BlockContext{Height: 500, Params: params}

	// Clone → original: spending op0 on the clone must leave the original's
	// entry untouched.
	if _, _, err := clone.ApplyBlock([]*types.Transaction{spendTx(owner, op0, 1000, crypto.Address{9}, 0)}, far); err != nil {
		t.Fatal(err)
	}
	if _, ok := clone.Lookup(op0); ok {
		t.Fatal("clone still holds its spent output")
	}
	if _, ok := s.Lookup(op0); !ok {
		t.Error("spend staged on the clone reached the original")
	}

	// Original → clone: spending op1 on the original must leave the clone's
	// entry untouched.
	if _, _, err := s.ApplyBlock([]*types.Transaction{spendTx(owner, op1, 500, crypto.Address{9}, 0)}, far); err != nil {
		t.Fatal(err)
	}
	if _, ok := clone.Lookup(op1); !ok {
		t.Error("spend on the original reached the clone")
	}

	// Poison marks: a poison staged on the clone must not make the active
	// state reject the real poison later (ErrAlreadyPoisoned), and poisoning
	// the active state must not mark the clone.
	mkPoison := func(n byte) *types.Transaction {
		return &types.Transaction{
			Kind:     types.TxPoison,
			Outputs:  []types.TxOutput{{Value: 25, To: owner.Public().Addr()}},
			Evidence: &types.PoisonEvidence{Culprit: crypto.Hash{n}},
		}
	}
	p1 := mkPoison(1)
	if _, _, err := clone.ApplyBlock([]*types.Transaction{p1}, BlockContext{
		Height: 501, Params: params,
		PoisonTargets: map[crypto.Hash]crypto.Hash{p1.ID(): cb.ID()},
	}); err != nil {
		t.Fatalf("poison on clone: %v", err)
	}
	if !clone.Poisoned(cb.ID()) {
		t.Fatal("clone not poisoned after applying poison")
	}
	if s.Poisoned(cb.ID()) {
		t.Error("poison staged on the clone marked the original")
	}
	p2 := mkPoison(2)
	if _, _, err := s.ApplyBlock([]*types.Transaction{p2}, BlockContext{
		Height: 502, Params: params,
		PoisonTargets: map[crypto.Hash]crypto.Hash{p2.ID(): cb.ID()},
	}); err != nil {
		t.Fatalf("poison on original after staged clone poison: %v", err)
	}
	clone2 := s.Clone()
	if !clone2.Poisoned(cb.ID()) {
		t.Error("fresh clone lost the original's poison mark")
	}
}
