package core

import (
	"fmt"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
)

// Equivocate makes this node — which must currently lead — sign two
// conflicting microblocks on its tip, each carrying one of the transactions:
// the split-brain double-spend of §4.5. The blocks are returned unpublished;
// the caller delivers them to disjoint parts of the network, as a targeted
// attacker would. Honest nodes that see both detect the fraud and poison
// this leader once they lead.
func (n *Node) Equivocate(txA, txB *types.Transaction) (*types.MicroBlock, *types.MicroBlock, error) {
	if !n.IsLeader() {
		return nil, nil, fmt.Errorf("core: node is not the current leader")
	}
	tip := n.State.Tip()
	now := n.Env.Now()
	minGap := int64(n.cfg.Params.MinMicroblockInterval)
	build := func(tx *types.Transaction, extraNanos int64) *types.MicroBlock {
		var txs []*types.Transaction
		if tx != nil {
			txs = []*types.Transaction{tx}
		}
		mb := &types.MicroBlock{
			Header: types.MicroBlockHeader{
				Prev:      tip.Hash(),
				TxRoot:    crypto.MerkleRoot(types.TxIDs(txs)),
				TimeNanos: now + minGap + extraNanos,
			},
			Txs: txs,
		}
		mb.Header.Sign(n.cfg.Key)
		return mb
	}
	// Distinct timestamps give the siblings distinct hashes even when both
	// carry the same (or no) transactions.
	return build(txA, 0), build(txB, 1), nil
}
