// Package core implements Bitcoin-NG (§4 of the paper), the repository's
// primary contribution: leader election through proof-of-work key blocks,
// transaction serialization through signed microblocks issued by the current
// leader, the 40%/60% fee split between consecutive leaders, key-block-only
// chain weight, and poison transactions that revoke the revenue of leaders
// who fork their own microblock chain.
package core

import (
	"errors"
	"fmt"
	"time"

	"bitcoinng/internal/chain"
	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
)

// MaxFutureSkew is how far a key block or microblock timestamp may lead the
// local clock.
const MaxFutureSkew = 2 * time.Hour

// MedianTimeWindow is the median-time-past window over key blocks.
const MedianTimeWindow = 11

// Rule violations.
var (
	ErrWrongBlockKind = errors.New("core: pow blocks are not part of bitcoin-ng")
	ErrTimeTooNew     = errors.New("core: block timestamp too far in the future")
	ErrTimeTooOld     = errors.New("core: key block timestamp before median time past")
	ErrWrongTarget    = errors.New("core: key block target does not match schedule")
	ErrSimulatedPoW   = errors.New("core: simulated proof of work not allowed live")
	ErrNoEpoch        = errors.New("core: microblock without a key-block epoch")
	ErrMicroTooSoon   = errors.New("core: microblock violates minimum interval")
	ErrMicroTooBig    = errors.New("core: microblock exceeds maximum size")
	ErrBadCoinbaseHt  = errors.New("core: coinbase height mismatch")
	ErrBadCoinbaseAmt = errors.New("core: coinbase exceeds subsidy plus epoch fees")
	ErrFeeSplitShort  = errors.New("core: previous leader paid less than the fee split")
	ErrBadEvidence    = errors.New("core: poison evidence does not prove a fork")
	ErrPoisonTooSoon  = errors.New("core: poison before the culprit's subsequent key block")
)

// Rules implements chain.Protocol for Bitcoin-NG.
type Rules struct {
	// AllowSimulatedPoW accepts scheduler-generated key blocks (the
	// experiments' regtest mode); live deployments require real PoW.
	AllowSimulatedPoW bool
}

// RulesID implements chain.Protocol. Behavioural node flags that do not
// change validation (censorship, equivocation) deliberately stay out of the
// identifier: a censoring node judges blocks exactly like an honest one, so
// sharing verdicts between them is sound.
func (r Rules) RulesID() string {
	return fmt.Sprintf("bitcoin-ng/simpow=%t", r.AllowSimulatedPoW)
}

// CheckBlock implements chain.Protocol.
func (r Rules) CheckBlock(st *chain.State, parent *chain.Node, b types.Block, now int64) error {
	switch blk := b.(type) {
	case *types.KeyBlock:
		return r.checkKeyBlock(st, parent, blk, now)
	case *types.MicroBlock:
		return r.checkMicroBlock(st, parent, blk, now)
	default:
		return fmt.Errorf("%w: got %v", ErrWrongBlockKind, b.Kind())
	}
}

func (r Rules) checkKeyBlock(st *chain.State, parent *chain.Node, b *types.KeyBlock, now int64) error {
	if b.SimulatedPoW && !r.AllowSimulatedPoW {
		return ErrSimulatedPoW
	}
	if err := b.CheckWellFormed(); err != nil {
		return err
	}
	if b.Header.TimeNanos > now+int64(MaxFutureSkew) {
		return ErrTimeTooNew
	}
	if !b.SimulatedPoW {
		if b.Header.TimeNanos <= chain.MedianTimePast(parent, MedianTimeWindow) {
			return ErrTimeTooOld
		}
		if want := chain.NextTarget(parent, st.Params()); b.Header.Target != want {
			return fmt.Errorf("%w: got %#x want %#x", ErrWrongTarget, uint32(b.Header.Target), uint32(want))
		}
	}
	return nil
}

func (r Rules) checkMicroBlock(st *chain.State, parent *chain.Node, b *types.MicroBlock, now int64) error {
	// The signing key is the public key in the epoch's key block (§4.2).
	// The genesis PoW block has no leader key, so no microblock may extend
	// it before the first key block.
	key, ok := parent.KeyAncestor.Block().(*types.KeyBlock)
	if !ok {
		return ErrNoEpoch
	}
	if err := b.CheckWellFormed(key.Header.LeaderKey); err != nil {
		return err
	}
	if b.WireSize() > st.Params().MaxBlockSize {
		return fmt.Errorf("%w: %d > %d", ErrMicroTooBig, b.WireSize(), st.Params().MaxBlockSize)
	}
	// §4.2: "if the timestamp of a microblock is in the future, or if its
	// difference with its predecessor's timestamp is smaller than the
	// minimum, then the microblock is invalid" — the rate cap that stops a
	// leader from swamping the system.
	if b.Header.TimeNanos > now+int64(MaxFutureSkew) {
		return ErrTimeTooNew
	}
	if gap := b.Header.TimeNanos - parent.Block().Time(); gap < int64(st.Params().MinMicroblockInterval) {
		return fmt.Errorf("%w: gap %v < %v", ErrMicroTooSoon,
			time.Duration(gap), st.Params().MinMicroblockInterval)
	}
	return nil
}

// ConnectCheck implements chain.Protocol. For key blocks it enforces the
// remuneration scheme of §4.4: the coinbase mints at most the subsidy plus
// the previous epoch's microblock fees, of which the previous leader must
// receive at least the LeaderFeeFrac share (40%).
func (r Rules) ConnectCheck(st *chain.State, n *chain.Node, fees []types.Amount) error {
	if n.Block().Kind() != types.KindKey {
		return nil // microblock fees are recorded by the chain layer
	}
	params := st.Params()
	coinbase := n.Block().Transactions()[0]
	if coinbase.Height != n.KeyHeight {
		return fmt.Errorf("%w: got %d want %d", ErrBadCoinbaseHt, coinbase.Height, n.KeyHeight)
	}
	epochFees := st.EpochFeesAt(n.Parent)
	if max := params.Subsidy + epochFees; coinbase.OutputSum() > max {
		return fmt.Errorf("%w: %d > %d", ErrBadCoinbaseAmt, coinbase.OutputSum(), max)
	}
	leaderShare, _ := params.SplitFee(epochFees)
	if leaderShare > 0 {
		prevLeader, ok := prevLeaderAddress(n.Parent)
		if ok {
			var paid types.Amount
			for i := range coinbase.Outputs {
				if coinbase.Outputs[i].To == prevLeader {
					paid += coinbase.Outputs[i].Value
				}
			}
			if paid < leaderShare {
				return fmt.Errorf("%w: paid %d, owes %d", ErrFeeSplitShort, paid, leaderShare)
			}
		}
	}
	return nil
}

// prevLeaderAddress returns where the previous epoch's leader collects: the
// first coinbase output of the previous key block.
func prevLeaderAddress(parent *chain.Node) (crypto.Address, bool) {
	prev := parent.KeyAncestor
	cb := prev.Block().Transactions()[0]
	if len(cb.Outputs) == 0 {
		return crypto.Address{}, false
	}
	return cb.Outputs[0].To, true
}

// PoisonTargets implements chain.Protocol: each poison transaction must
// carry a fraud proof (§4.5) — a microblock header signed by the culprit
// leader that conflicts with a main-chain microblock (same predecessor,
// different block) — and may only appear after the culprit's subsequent key
// block. The returned map directs the UTXO layer to revoke the culprit's
// coinbase.
func (r Rules) PoisonTargets(st *chain.State, parent *chain.Node, b types.Block) (map[crypto.Hash]crypto.Hash, error) {
	var targets map[crypto.Hash]crypto.Hash
	for _, tx := range b.Transactions() {
		if tx.Kind != types.TxPoison {
			continue
		}
		ev := tx.Evidence
		// The referenced culprit key block and on-chain conflict microblock
		// must sit in the connecting block's own ancestry, in one epoch.
		// Every resolution failure collapses into the one ErrBadEvidence so
		// the verdict — including its error — is a pure function of the
		// ancestor chain: whether an unrelated side-branch block happens to
		// be in this node's store must not show through (the connect cache
		// shares the error object across nodes).
		culprit, okC := st.Store().Get(ev.Culprit)
		conflict, okF := st.Store().Get(ev.Conflict)
		if !okC || culprit.Block().Kind() != types.KindKey ||
			!okF || conflict.Block().Kind() != types.KindMicro ||
			conflict.KeyAncestor != culprit || !conflict.IsAncestorOf(parent) {
			return nil, fmt.Errorf("%w: conflict not in the culprit's epoch on this chain", ErrBadEvidence)
		}
		// The pruned half must be a *different* microblock with the same
		// predecessor, signed by the culprit's leader key: two signed
		// successors of one block is the fork proof.
		if ev.Pruned.Prev != conflict.Block().PrevHash() || ev.Pruned.Hash() == conflict.Hash() {
			return nil, fmt.Errorf("%w: headers do not conflict", ErrBadEvidence)
		}
		leaderKey := culprit.Block().(*types.KeyBlock).Header.LeaderKey
		if !ev.Pruned.VerifySignature(leaderKey) {
			return nil, fmt.Errorf("%w: pruned header not signed by culprit", ErrBadEvidence)
		}
		// "The poison transaction has to be placed after the subsequent
		// key block" (§4.5).
		if parent.KeyAncestor.KeyHeight <= culprit.KeyHeight {
			return nil, ErrPoisonTooSoon
		}
		if targets == nil {
			targets = make(map[crypto.Hash]crypto.Hash)
		}
		targets[tx.ID()] = culprit.Block().Transactions()[0].ID()
	}
	return targets, nil
}
