package core

import (
	"bytes"
	"sort"

	"bitcoinng/internal/chain"
	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
)

// fraudRecord remembers one observed microblock fork: two signed microblocks
// extending the same predecessor in the same epoch. Which sibling counts as
// "pruned" is decided at poison-assembly time, against the then-current main
// chain.
type fraudRecord struct {
	culprit  *chain.Node // the key block whose leader forked
	siblingA *chain.Node
	siblingB *chain.Node
}

// detectFraud inspects a newly added microblock for a same-epoch sibling
// conflict. Honest leaders extend linearly, so two microblock children of
// one parent within an epoch is proof of leader equivocation (§4.5: a leader
// "publishing different replicated-state-machine states to different
// machines").
func (n *Node) detectFraud(added *chain.Node) {
	parent := added.Parent
	culprit := added.KeyAncestor
	if culprit.Block().Kind() != types.KindKey {
		return
	}
	if _, seen := n.fraud[culprit.Hash()]; seen {
		return // one poison per cheater (§4.5)
	}
	for _, sib := range parent.Children() {
		if sib == added || sib.Block().Kind() != types.KindMicro {
			continue
		}
		if sib.KeyAncestor != culprit {
			continue
		}
		n.fraud[culprit.Hash()] = &fraudRecord{culprit: culprit, siblingA: sib, siblingB: added}
		return
	}
}

// eligiblePoisons builds the poison transactions this node, as current
// leader at tip, may place now: the fraud is provable against the current
// main chain, the culprit's subsequent key block exists, and the culprit has
// not been poisoned already. The poisoner claims PoisonRewardFrac of the
// still-revocable coinbase value (§4.5).
func (n *Node) eligiblePoisons(tip *chain.Node) []*types.Transaction {
	if len(n.fraud) == 0 {
		return nil
	}
	// Iterate culprits in hash order: the transactions land in this
	// leader's next microblock, so their order is consensus-visible and
	// must not depend on map iteration.
	culprits := make([]crypto.Hash, 0, len(n.fraud))
	for h := range n.fraud {
		culprits = append(culprits, h)
	}
	sort.Slice(culprits, func(i, j int) bool {
		return bytes.Compare(culprits[i][:], culprits[j][:]) < 0
	})
	var out []*types.Transaction
	for _, culpritHash := range culprits {
		rec := n.fraud[culpritHash]
		coinbase := rec.culprit.Block().Transactions()[0]
		coinbaseID := coinbase.ID()
		if n.State.UTXO().Poisoned(coinbaseID) {
			delete(n.fraud, culpritHash) // someone else placed it
			continue
		}
		// Placement rule: only after the culprit's subsequent key block.
		if tip.KeyAncestor.KeyHeight <= rec.culprit.KeyHeight {
			continue
		}
		// One sibling must be on the main chain (conflict), the other off
		// it (pruned). If the fork is not visible from this chain, wait.
		conflict, pruned := rec.siblingA, rec.siblingB
		if !conflict.IsAncestorOf(tip) {
			conflict, pruned = pruned, conflict
		}
		if !conflict.IsAncestorOf(tip) || pruned.IsAncestorOf(tip) {
			continue
		}
		var revocable types.Amount
		for i := range coinbase.Outputs {
			op := types.OutPoint{TxID: coinbaseID, Index: uint32(i)}
			if e, ok := n.State.UTXO().Lookup(op); ok && !e.Revoked {
				revocable += e.Value
			}
		}
		reward := types.Amount(float64(revocable) * n.cfg.Params.PoisonRewardFrac)
		prunedMicro := pruned.Block().(*types.MicroBlock)
		out = append(out, &types.Transaction{
			Kind:    types.TxPoison,
			Outputs: []types.TxOutput{{Value: reward, To: n.cfg.Key.Public().Addr()}},
			Evidence: &types.PoisonEvidence{
				Culprit:  culpritHash,
				Pruned:   prunedMicro.Header,
				Conflict: conflict.Hash(),
			},
		})
	}
	return out
}

// KnownFrauds returns the culprit key-block hashes this node has evidence
// against (diagnostics and tests).
func (n *Node) KnownFrauds() []crypto.Hash {
	out := make([]crypto.Hash, 0, len(n.fraud))
	for h := range n.fraud {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i][:], out[j][:]) < 0 })
	return out
}
