package core

import (
	"testing"
	"time"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/sim"
	"bitcoinng/internal/simnet"
	"bitcoinng/internal/types"
)

// TestCensoringLeaderInfluenceEnds reproduces §5.2 "Censorship Resistance":
// a malicious leader publishes empty microblocks — a DoS on the ledger — but
// its influence ends when the next honest leader's key block arrives, after
// which the backlog serializes.
func TestCensoringLeaderInfluenceEnds(t *testing.T) {
	params := ngParams()
	loop := sim.NewLoop(0)
	network := simnet.New(loop, simnet.DefaultConfig(4, 31))

	nodes := make([]*Node, 4)
	keys := makeKeys(t, 4, 31)
	genesis, fundedKey, fundedOuts := fundedGenesis(t, 31, 20)
	for i := range nodes {
		env := simnet.NewNodeEnv(loop, network, i, 31)
		n, err := New(env, Config{
			Params:             params,
			Key:                keys[i],
			Genesis:            genesis,
			SimulatedMining:    true,
			CensorTransactions: i == 0, // node 0 censors
		})
		if err != nil {
			t.Fatal(err)
		}
		env.Deliver(n.HandleMessage)
		nodes[i] = n
	}
	// Same pending transactions everywhere.
	for _, op := range fundedOuts {
		tx := &types.Transaction{
			Kind:    types.TxRegular,
			Inputs:  []types.TxInput{{Prev: op}},
			Outputs: []types.TxOutput{{Value: 9_000, To: keys[1].Public().Addr()}},
		}
		tx.SignInput(0, fundedKey)
		for _, n := range nodes {
			if err := n.Pool.Add(tx); err != nil {
				t.Fatal(err)
			}
		}
	}

	// The censor leads first: microblocks flow but stay empty.
	nodes[0].MineKeyBlock()
	loop.RunFor(30 * time.Second)
	confirmed := func(n *Node) int {
		count := 0
		for _, c := range n.State.MainChain() {
			for _, tx := range c.Block().Transactions() {
				if tx.Kind == types.TxRegular {
					count++
				}
			}
		}
		return count
	}
	if nodes[1].State.Height() < 3 {
		t.Fatalf("censoring leader stopped producing microblocks entirely (height %d)",
			nodes[1].State.Height())
	}
	if got := confirmed(nodes[1]); got != 0 {
		t.Fatalf("censor leaked %d transactions", got)
	}

	// An honest node takes over: the backlog serializes immediately.
	nodes[1].MineKeyBlock()
	loop.RunFor(30 * time.Second)
	if got := confirmed(nodes[1]); got != 20 {
		t.Errorf("confirmed %d transactions after honest takeover, want 20", got)
	}
}

func makeKeys(t *testing.T, n int, seed int64) []*crypto.PrivateKey {
	t.Helper()
	keys := make([]*crypto.PrivateKey, n)
	for i := range keys {
		k, err := crypto.GenerateKey(sim.NewRand(seed, uint64(500+i)))
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = k
	}
	return keys
}

func fundedGenesis(t *testing.T, seed int64, outputs int) (*types.PowBlock, *crypto.PrivateKey, []types.OutPoint) {
	t.Helper()
	key, err := crypto.GenerateKey(sim.NewRand(seed, 999))
	if err != nil {
		t.Fatal(err)
	}
	payouts := make([]types.TxOutput, outputs)
	for i := range payouts {
		payouts[i] = types.TxOutput{Value: 10_000, To: key.Public().Addr()}
	}
	genesis := types.GenesisBlock(types.GenesisSpec{
		Target:  crypto.EasiestTarget,
		Payouts: payouts,
	})
	ops := make([]types.OutPoint, outputs)
	cbID := genesis.Txs[0].ID()
	for i := range ops {
		ops[i] = types.OutPoint{TxID: cbID, Index: uint32(i)}
	}
	return genesis, key, ops
}
