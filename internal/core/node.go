package core

import (
	"fmt"

	"bitcoinng/internal/bitcoin"
	"bitcoinng/internal/chain"
	"bitcoinng/internal/crypto"
	"bitcoinng/internal/mining"
	"bitcoinng/internal/node"
	"bitcoinng/internal/strategy"
	"bitcoinng/internal/types"
	"bitcoinng/internal/validate"
)

// microReserve is the microblock-size headroom for the signed header
// (microblocks carry no coinbase).
const microReserve = 128

// Config configures a Bitcoin-NG node.
type Config struct {
	// Params are the consensus parameters; MicroblockInterval sets the
	// leader's issue rate and TargetBlockInterval the key-block rate.
	Params types.Params
	// Key signs this node's microblocks when it leads and receives its
	// rewards. Its public key is embedded in the node's key blocks (§4.1).
	Key *crypto.PrivateKey
	// Genesis is the shared genesis block.
	Genesis *types.PowBlock
	// Recorder receives metric events; nil discards them.
	Recorder node.Recorder
	// SimulatedMining marks key blocks as scheduler-generated and accepts
	// such blocks from peers; live nodes grind real nonces.
	SimulatedMining bool
	// CensorTransactions makes this node, while leading, publish empty
	// microblocks — the §5.2 "Censorship Resistance" DoS behaviour whose
	// influence ends with the next honest key block.
	CensorTransactions bool
	// ConnectCache, when set, shares memoized connect verdicts (UTXO
	// deltas, epoch fees) with every other node whose rules fingerprint
	// matches; nil validates everything locally.
	ConnectCache *validate.Cache
	// UTXO, when set, swaps the ledger storage backend (internal/store);
	// nil keeps the in-memory set.
	UTXO chain.UTXOStore
	// Strategy selects the node's mining strategy — which block its key
	// blocks extend, whether produced blocks are published or withheld,
	// and how its coinbase splits the epoch fees. nil runs honest.
	// Strategies bend production choices only; validation of received
	// blocks is unaffected.
	Strategy strategy.Strategy
}

// Node is a Bitcoin-NG protocol node. Beyond the shared Base it tracks
// leadership: when the main chain's latest key block is its own, it issues
// signed microblocks at the configured rate until deposed (§4.2).
type Node struct {
	*node.Base
	cfg   Config
	miner *mining.Miner
	strat strategy.Strategy

	microTimer node.Timer
	// leading reports whether the microblock production loop is armed.
	leading bool
	// fraud accumulates detected microblock forks by culprit key block,
	// to be poisoned once this node leads (§4.5).
	fraud map[crypto.Hash]*fraudRecord
	// microMined counts microblocks this node produced.
	microMined uint64
}

// New builds a Bitcoin-NG node on env.
func New(env node.Env, cfg Config) (*Node, error) {
	if cfg.Key == nil {
		return nil, fmt.Errorf("core: config needs a key")
	}
	st, err := chain.New(cfg.Genesis, cfg.Params, Rules{AllowSimulatedPoW: cfg.SimulatedMining},
		&chain.HeaviestChain{RandomTieBreak: cfg.Params.RandomTieBreak, Rand: env.Rand()},
		chain.WithConnectCache(cfg.ConnectCache), chain.WithUTXOStore(cfg.UTXO))
	if err != nil {
		return nil, err
	}
	strat := cfg.Strategy
	if strat == nil {
		strat = strategy.Honest{}
	}
	n := &Node{
		Base:  node.NewBase(env, st, cfg.Recorder),
		cfg:   cfg,
		strat: strat,
		fraud: make(map[crypto.Hash]*fraudRecord),
	}
	n.Base.OnTipChange = n.onTipChange
	n.Base.ProcessFn = n.ProcessBlock
	return n, nil
}

// stratView adapts the node to the strategy.View surface.
type stratView struct{ n *Node }

func (v stratView) NodeID() int      { return v.n.Env.NodeID() }
func (v stratView) Now() int64       { return v.n.Env.Now() }
func (v stratView) Tip() *chain.Node { return v.n.State.Tip() }
func (v stratView) Leading() bool    { return v.n.IsLeader() }
func (n *Node) view() strategy.View  { return stratView{n} }

// StrategyName returns the active mining strategy's registered name.
func (n *Node) StrategyName() string { return n.strat.Name() }

// SetStrategy switches the node's mining strategy from now on; nil restores
// honest. The previous strategy instance is dropped with its state, so any
// blocks it was withholding are abandoned unannounced.
func (n *Node) SetStrategy(s strategy.Strategy) {
	if s == nil {
		s = strategy.Honest{}
	}
	n.strat = s
}

// AttachMiner wires the key-block scheduler.
func (n *Node) AttachMiner(m *mining.Miner) { n.miner = m }

// Miner returns the key-block scheduler; nil until AttachMiner.
func (n *Node) Miner() *mining.Miner { return n.miner }

// MicroblocksMined returns how many microblocks this node has produced.
func (n *Node) MicroblocksMined() uint64 { return n.microMined }

// IsLeader reports whether this node currently leads (the main chain's
// latest key block carries its public key).
func (n *Node) IsLeader() bool {
	key, ok := n.State.Tip().KeyAncestor.Block().(*types.KeyBlock)
	return ok && key.Header.LeaderKey == n.cfg.Key.Public()
}

// ProcessBlock wraps Base.ProcessBlock with microblock fraud detection — a
// valid microblock whose parent already has a different microblock child in
// the same epoch proves the leader forked its own chain (§4.5) — and with
// the strategy's external-block hook, through which withholding strategies
// release private blocks as the public chain advances. The gossip layer
// routes through this method via Base.ProcessFn.
func (n *Node) ProcessBlock(blk types.Block, from int) *chain.AddResult {
	res := n.Base.ProcessBlock(blk, from)
	for _, added := range res.Added {
		if added.Block().Kind() == types.KindMicro {
			n.detectFraud(added)
		}
	}
	if from >= 0 {
		for _, added := range res.Added {
			for _, rel := range n.strat.OnExternalBlock(n.view(), added) {
				n.Gossip.Announce(rel, -1)
			}
		}
	}
	return res
}

// MineKeyBlock assembles and submits a key block on the parent the node's
// strategy selects (the tip for honest nodes): the scheduler's onFind
// callback. The strategy also decides whether the block is announced or
// withheld. Becoming the leader starts microblock production through the
// tip-change hook.
func (n *Node) MineKeyBlock() *types.KeyBlock {
	b := n.AssembleKeyBlock()
	n.submitOwn(b, n.strat.OnKeyBlockMined(n.view(), b))
	return b
}

// submitOwn routes a self-produced block through the publish or withhold
// path and informs the strategy of the resulting tree node.
func (n *Node) submitOwn(b types.Block, act strategy.Action) {
	var res *chain.AddResult
	if act == strategy.Withhold {
		res = n.Base.SubmitOwnBlockQuiet(b)
	} else {
		res = n.SubmitOwnBlock(b)
	}
	if res != nil && res.Node != nil {
		n.strat.OnOwnBlockAdded(n.view(), res.Node, act)
	}
}

// AssembleKeyBlock builds (without submitting) the next key block on the
// parent the node's strategy selects; honest nodes extend the tip.
func (n *Node) AssembleKeyBlock() *types.KeyBlock {
	parent := n.strat.KeyBlockParent(n.view())
	if parent == nil {
		parent = n.State.Tip()
	}
	return n.AssembleKeyBlockOn(parent)
}

// AssembleKeyBlockOn builds (without submitting) a key block extending
// parent. Its coinbase implements §4.4: mint subsidy + previous epoch's
// fees, paying this node the subsidy plus its own share and the previous
// leader its placement share — both as directed by the strategy (honest:
// 60%/40%).
func (n *Node) AssembleKeyBlockOn(parent *chain.Node) *types.KeyBlock {
	params := n.cfg.Params
	epochFees := n.State.EpochFeesAt(parent)
	mine, prevShare := n.strat.SplitFee(params, epochFees)

	outputs := []types.TxOutput{{
		Value: params.Subsidy + mine,
		To:    n.cfg.Key.Public().Addr(),
	}}
	if prevShare > 0 {
		if prev, ok := prevLeaderAddress(parent); ok {
			outputs = append(outputs, types.TxOutput{Value: prevShare, To: prev})
		}
	}
	coinbase := &types.Transaction{
		Kind:    types.TxCoinbase,
		Outputs: outputs,
		Height:  parent.KeyHeight + 1,
	}
	txs := []*types.Transaction{coinbase}
	target := chain.NextTarget(parent, params)
	return &types.KeyBlock{
		Header: types.KeyBlockHeader{
			Prev:       parent.Hash(),
			MerkleRoot: crypto.MerkleRoot(types.TxIDs(txs)),
			TimeNanos:  n.Env.Now(),
			Target:     target,
			LeaderKey:  n.cfg.Key.Public(),
		},
		Txs:          txs,
		SimulatedPoW: n.cfg.SimulatedMining,
	}
}

// onTipChange arms or disarms microblock production as leadership changes.
func (n *Node) onTipChange(res *chain.AddResult) {
	if n.IsLeader() {
		if !n.leading {
			n.leading = true
			n.scheduleMicroblock()
		}
		return
	}
	n.leading = false
	if n.microTimer != nil {
		n.microTimer.Stop()
		n.microTimer = nil
	}
}

func (n *Node) scheduleMicroblock() {
	n.microTimer = n.Env.After(n.cfg.Params.MicroblockInterval, func() {
		n.microTimer = nil
		if !n.leading || !n.IsLeader() {
			n.leading = false
			return
		}
		n.MineMicroBlock()
		if n.leading {
			n.scheduleMicroblock()
		}
	})
}

// MineMicroBlock assembles, signs, and submits one microblock on the
// current tip; the strategy decides whether it is announced or withheld. It
// returns nil without side effects when the node does not lead or the
// minimum interval has not elapsed.
func (n *Node) MineMicroBlock() *types.MicroBlock {
	if !n.IsLeader() {
		return nil
	}
	b := n.AssembleMicroBlock()
	if b == nil {
		return nil
	}
	n.microMined++
	n.submitOwn(b, n.strat.OnMicroBlockMined(n.view(), b))
	return b
}

// AssembleMicroBlock builds and signs (without submitting) the next
// microblock: mempool transactions up to the size cap plus any eligible
// poison transactions for frauds this node has witnessed.
func (n *Node) AssembleMicroBlock() *types.MicroBlock {
	tip := n.State.Tip()
	params := n.cfg.Params
	now := n.Env.Now()
	if now-tip.Block().Time() < int64(params.MinMicroblockInterval) {
		return nil // respect the §4.2 rate cap
	}
	var txs []*types.Transaction
	if !n.cfg.CensorTransactions {
		candidates := n.Pool.Select(params.MaxBlockSize - microReserve)
		txs, _ = bitcoin.FilterSpendable(n.State, candidates, tip.KeyHeight)
		txs = append(txs, n.eligiblePoisons(tip)...)
	}

	b := &types.MicroBlock{
		Header: types.MicroBlockHeader{
			Prev:      tip.Hash(),
			TxRoot:    crypto.MerkleRoot(types.TxIDs(txs)),
			TimeNanos: now,
		},
		Txs: txs,
	}
	b.Header.Sign(n.cfg.Key)
	return b
}
