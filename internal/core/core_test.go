package core

import (
	"errors"
	"testing"
	"time"

	"bitcoinng/internal/chain"
	"bitcoinng/internal/crypto"
	"bitcoinng/internal/sim"
	"bitcoinng/internal/simnet"
	"bitcoinng/internal/types"
)

// ngCluster is a small emulated Bitcoin-NG network for tests.
type ngCluster struct {
	loop    *sim.Loop
	net     *simnet.Network
	nodes   []*Node
	keys    []*crypto.PrivateKey
	genesis *types.PowBlock
	params  types.Params
}

func ngParams() types.Params {
	p := types.DefaultParams()
	p.TargetBlockInterval = 100 * time.Second
	p.MicroblockInterval = 5 * time.Second
	p.MinMicroblockInterval = 10 * time.Millisecond
	p.MaxBlockSize = 50_000
	p.RandomTieBreak = false
	p.RetargetWindow = 0
	return p
}

func newNGCluster(t *testing.T, n int, seed int64, params types.Params) *ngCluster {
	t.Helper()
	loop := sim.NewLoop(0)
	network := simnet.New(loop, simnet.DefaultConfig(n, seed))
	keys := make([]*crypto.PrivateKey, n)
	for i := range keys {
		k, err := crypto.GenerateKey(sim.NewRand(seed, uint64(1000+i)))
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = k
	}
	payouts := make([]types.TxOutput, 64)
	for i := range payouts {
		payouts[i] = types.TxOutput{Value: 10_000, To: keys[0].Public().Addr()}
	}
	genesis := types.GenesisBlock(types.GenesisSpec{
		Target:  crypto.EasiestTarget,
		Payouts: payouts,
	})
	c := &ngCluster{loop: loop, net: network, keys: keys, genesis: genesis, params: params}
	for i := 0; i < n; i++ {
		env := simnet.NewNodeEnv(loop, network, i, seed)
		ng, err := New(env, Config{
			Params:          params,
			Key:             keys[i],
			Genesis:         genesis,
			SimulatedMining: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		env.Deliver(ng.HandleMessage)
		c.nodes = append(c.nodes, ng)
	}
	return c
}

func (c *ngCluster) preload(t *testing.T, count, padding int) {
	t.Helper()
	cbID := c.genesis.Txs[0].ID()
	for i := 0; i < count; i++ {
		tx := &types.Transaction{
			Kind:    types.TxRegular,
			Inputs:  []types.TxInput{{Prev: types.OutPoint{TxID: cbID, Index: uint32(i)}}},
			Outputs: []types.TxOutput{{Value: 9_000, To: crypto.Address{byte(i)}}},
			Padding: make([]byte, padding),
		}
		tx.SignInput(0, c.keys[0])
		for _, n := range c.nodes {
			if err := n.Pool.Add(tx); err != nil {
				t.Fatalf("preload: %v", err)
			}
		}
	}
}

func TestLeaderProducesMicroblocks(t *testing.T) {
	c := newNGCluster(t, 4, 1, ngParams())
	c.preload(t, 20, 100)

	c.nodes[0].MineKeyBlock()
	if !c.nodes[0].IsLeader() {
		t.Fatal("key block miner is not leader")
	}
	// Microblocks at 5s intervals: after 26s expect 5.
	c.loop.RunFor(26 * time.Second)
	if got := c.nodes[0].MicroblocksMined(); got != 5 {
		t.Errorf("leader produced %d microblocks, want 5", got)
	}
	// All nodes follow the microblock chain.
	c.loop.RunFor(20 * time.Second)
	tip := c.nodes[0].State.Tip().Hash()
	for i, n := range c.nodes {
		if n.State.Tip().Hash() != tip {
			t.Errorf("node %d tip mismatch", i)
		}
	}
	// Transactions got serialized.
	confirmed := 0
	for _, n := range c.nodes[0].State.MainChain() {
		for _, tx := range n.Block().Transactions() {
			if tx.Kind == types.TxRegular {
				confirmed++
			}
		}
	}
	if confirmed == 0 {
		t.Error("no transactions serialized into microblocks")
	}
}

func TestLeadershipHandsOver(t *testing.T) {
	c := newNGCluster(t, 4, 2, ngParams())
	c.nodes[0].MineKeyBlock()
	c.loop.RunFor(12 * time.Second)
	if !c.nodes[0].IsLeader() {
		t.Fatal("node 0 should lead")
	}
	// Node 1 finds the next key block; node 0 must stop producing.
	c.nodes[1].MineKeyBlock()
	c.loop.RunFor(5 * time.Second)
	if c.nodes[0].IsLeader() {
		t.Error("deposed leader still leads")
	}
	if !c.nodes[1].IsLeader() {
		t.Error("new leader not leading")
	}
	mined := c.nodes[0].MicroblocksMined()
	c.loop.RunFor(30 * time.Second)
	if c.nodes[0].MicroblocksMined() != mined {
		t.Error("deposed leader kept producing microblocks")
	}
	if c.nodes[1].MicroblocksMined() == 0 {
		t.Error("new leader produced no microblocks")
	}
}

// TestFigure2ForkOnLeaderSwitch reproduces the paper's Figure 2: the old
// leader's latest microblocks are pruned when the new key block extends an
// earlier microblock.
func TestFigure2ForkOnLeaderSwitch(t *testing.T) {
	c := newNGCluster(t, 2, 3, ngParams())
	a, b := c.nodes[0], c.nodes[1]

	a.MineKeyBlock()
	c.loop.RunFor(11 * time.Second) // a produced micro m1, m2 (5s, 10s)
	// b mines its key block on its current view; then a's later
	// microblocks (m3...) arrive at b as a short fork, which b prunes.
	b.MineKeyBlock()
	m3 := a.MineMicroBlock() // a hasn't heard b's key block yet
	if m3 == nil {
		t.Fatal("a should still believe it leads")
	}
	c.loop.RunFor(30 * time.Second)

	// The leader keeps producing, so the follower may trail by in-flight
	// microblocks; convergence means a's tip lies on b's main chain.
	tipA, ok := b.State.Store().Get(a.State.Tip().Hash())
	if !ok || !b.State.MainChainContains(tipA) {
		t.Fatalf("nodes did not converge after leader switch")
	}
	// m3 is pruned: known to b (or a) but not on the main chain.
	if n, ok := a.State.Store().Get(m3.Hash()); ok {
		if a.State.MainChainContains(n) {
			t.Error("pruned microblock still on main chain")
		}
	}
	// The winning chain runs through b's key block.
	if a.State.Tip().KeyAncestor.Block().(*types.KeyBlock).Header.LeaderKey != c.keys[1].Public() {
		t.Error("main chain does not end in b's epoch")
	}
}

func TestFeeSplit4060(t *testing.T) {
	c := newNGCluster(t, 2, 4, ngParams())
	c.preload(t, 10, 0) // fees: 10 × 1000
	a, b := c.nodes[0], c.nodes[1]

	a.MineKeyBlock()
	c.loop.RunFor(26 * time.Second) // a serializes the pool: 10000 in fees
	epochFees := types.Amount(10 * 1000)

	kb := b.AssembleKeyBlock()
	// Coinbase: b takes subsidy + 60%; a (prev leader) gets 40%.
	if len(kb.Txs[0].Outputs) != 2 {
		t.Fatalf("coinbase outputs = %d, want 2", len(kb.Txs[0].Outputs))
	}
	self, prev := kb.Txs[0].Outputs[0], kb.Txs[0].Outputs[1]
	if self.To != c.keys[1].Public().Addr() || prev.To != c.keys[0].Public().Addr() {
		t.Error("coinbase recipients wrong")
	}
	wantPrev := types.Amount(float64(epochFees) * 0.40)
	if prev.Value != wantPrev {
		t.Errorf("prev leader share = %d, want %d", prev.Value, wantPrev)
	}
	if self.Value != c.params.Subsidy+epochFees-wantPrev {
		t.Errorf("new leader share = %d", self.Value)
	}
	// It connects.
	res := b.SubmitOwnBlock(kb)
	if res.Status != chain.StatusMainChain {
		t.Errorf("fee-split key block status %v", res.Status)
	}
}

func TestFeeSplitEnforced(t *testing.T) {
	c := newNGCluster(t, 2, 5, ngParams())
	c.preload(t, 10, 0)
	a, b := c.nodes[0], c.nodes[1]
	a.MineKeyBlock()
	c.loop.RunFor(26 * time.Second)

	// b tries to keep everything.
	kb := b.AssembleKeyBlock()
	kb.Txs[0].Outputs = []types.TxOutput{{
		Value: kb.Txs[0].OutputSum(),
		To:    c.keys[1].Public().Addr(),
	}}
	kb.Txs[0].Invalidate()
	kb.Header.MerkleRoot = crypto.MerkleRoot(types.TxIDs(kb.Txs))
	_, err := b.State.AddBlock(kb, c.loop.Now())
	if !errors.Is(err, ErrFeeSplitShort) {
		t.Errorf("greedy coinbase err = %v", err)
	}

	// Claiming more than subsidy+fees also fails.
	kb2 := b.AssembleKeyBlock()
	kb2.Txs[0].Outputs[0].Value += 1
	kb2.Txs[0].Invalidate()
	kb2.Header.MerkleRoot = crypto.MerkleRoot(types.TxIDs(kb2.Txs))
	_, err = b.State.AddBlock(kb2, c.loop.Now())
	if !errors.Is(err, ErrBadCoinbaseAmt) {
		t.Errorf("minting coinbase err = %v", err)
	}
}

func TestMicroblockRateLimit(t *testing.T) {
	params := ngParams()
	params.MinMicroblockInterval = time.Second
	c := newNGCluster(t, 2, 6, params)
	a := c.nodes[0]
	a.MineKeyBlock()
	c.loop.RunFor(6 * time.Second) // one microblock at t≈5s

	// A microblock violating the minimum spacing is invalid (§4.2).
	tip := a.State.Tip()
	mb := &types.MicroBlock{
		Header: types.MicroBlockHeader{
			Prev:      tip.Hash(),
			TxRoot:    crypto.MerkleRoot(nil),
			TimeNanos: tip.Block().Time() + int64(500*time.Millisecond),
		},
	}
	mb.Header.Sign(c.keys[0])
	_, err := a.State.AddBlock(mb, c.loop.Now())
	if !errors.Is(err, ErrMicroTooSoon) {
		t.Errorf("too-soon microblock err = %v", err)
	}

	// A microblock from the future is invalid.
	mb2 := &types.MicroBlock{
		Header: types.MicroBlockHeader{
			Prev:      tip.Hash(),
			TxRoot:    crypto.MerkleRoot(nil),
			TimeNanos: c.loop.Now() + int64(MaxFutureSkew) + 1,
		},
	}
	mb2.Header.Sign(c.keys[0])
	_, err = a.State.AddBlock(mb2, c.loop.Now())
	if !errors.Is(err, ErrTimeTooNew) {
		t.Errorf("future microblock err = %v", err)
	}
}

func TestMicroblockWrongSignerRejected(t *testing.T) {
	c := newNGCluster(t, 2, 7, ngParams())
	a, b := c.nodes[0], c.nodes[1]
	a.MineKeyBlock()
	c.loop.RunFor(time.Second)

	// b (not the leader) signs a microblock: invalid.
	tip := b.State.Tip()
	mb := &types.MicroBlock{
		Header: types.MicroBlockHeader{
			Prev:      tip.Hash(),
			TxRoot:    crypto.MerkleRoot(nil),
			TimeNanos: c.loop.Now(),
		},
	}
	mb.Header.Sign(c.keys[1])
	if _, err := b.State.AddBlock(mb, c.loop.Now()); !errors.Is(err, types.ErrBadSignature) {
		t.Errorf("wrong-signer microblock err = %v", err)
	}
}

func TestNoMicroblockBeforeFirstKeyBlock(t *testing.T) {
	c := newNGCluster(t, 2, 8, ngParams())
	mb := &types.MicroBlock{
		Header: types.MicroBlockHeader{
			Prev:      c.genesis.Hash(),
			TxRoot:    crypto.MerkleRoot(nil),
			TimeNanos: 1,
		},
	}
	mb.Header.Sign(c.keys[0])
	if _, err := c.nodes[0].State.AddBlock(mb, 1); !errors.Is(err, ErrNoEpoch) {
		t.Errorf("genesis microblock err = %v", err)
	}
}

func TestPowBlockRejected(t *testing.T) {
	c := newNGCluster(t, 2, 9, ngParams())
	pb := &types.PowBlock{
		Header: types.PowHeader{Prev: c.genesis.Hash(), Target: crypto.EasiestTarget},
		Txs: []*types.Transaction{{
			Kind:    types.TxCoinbase,
			Outputs: []types.TxOutput{{Value: 1, To: crypto.Address{1}}},
			Height:  1,
		}},
		SimulatedPoW: true,
	}
	pb.Header.MerkleRoot = crypto.MerkleRoot(types.TxIDs(pb.Txs))
	if _, err := c.nodes[0].State.AddBlock(pb, 1); !errors.Is(err, ErrWrongBlockKind) {
		t.Errorf("pow block in NG err = %v", err)
	}
}

// TestPoisonLifecycle drives the full §4.5 story: a malicious leader forks
// its microblock chain to double-spend, an honest node detects the fork,
// becomes leader, places a poison transaction, and the cheater's revenue is
// revoked with 5% going to the poisoner.
func TestPoisonLifecycle(t *testing.T) {
	params := ngParams()
	params.CoinbaseMaturity = 100 // revenue still locked when poison lands
	c := newNGCluster(t, 2, 10, params)
	cheater, honest := c.nodes[0], c.nodes[1]

	kb := cheater.MineKeyBlock()
	c.loop.RunFor(2 * time.Second)

	// The cheater signs two microblocks extending the same parent.
	tip := cheater.State.Tip()
	mk := func(marker byte) *types.MicroBlock {
		mb := &types.MicroBlock{
			Header: types.MicroBlockHeader{
				Prev:      tip.Hash(),
				TimeNanos: c.loop.Now(),
			},
			Txs: nil,
		}
		// Distinct TxRoot via a marker transaction.
		tx := &types.Transaction{
			Kind:    types.TxRegular,
			Inputs:  []types.TxInput{{Prev: types.OutPoint{Index: uint32(marker)}}},
			Outputs: []types.TxOutput{{Value: 0, To: crypto.Address{marker}}},
		}
		tx.SignInput(0, c.keys[0])
		_ = tx // keep microblocks empty but distinct via timestamp instead
		mb.Header.TimeNanos += int64(marker) * int64(time.Millisecond) * 20
		mb.Header.TxRoot = crypto.MerkleRoot(nil)
		mb.Header.Sign(c.keys[0])
		return mb
	}
	mbA, mbB := mk(1), mk(2)

	// Both reach the honest node (split-brain attempt).
	honest.ProcessBlock(mbA, 0)
	honest.ProcessBlock(mbB, 0)
	if len(honest.KnownFrauds()) != 1 {
		t.Fatalf("honest node recorded %d frauds, want 1", len(honest.KnownFrauds()))
	}

	// Honest node becomes the next leader and places the poison.
	c.loop.RunFor(time.Second)
	honest.MineKeyBlock()
	c.loop.RunFor(10 * time.Second) // microblock containing the poison

	// The cheater's key block coinbase is revoked on the honest chain.
	cbID := kb.Txs[0].ID()
	if !honest.State.UTXO().Poisoned(cbID) {
		t.Fatal("cheater's coinbase not poisoned")
	}
	// The poisoner received its 5% reward.
	reward := honest.State.UTXO().BalanceOf(c.keys[1].Public().Addr())
	wantMin := types.Amount(float64(params.Subsidy) * params.PoisonRewardFrac)
	if reward < wantMin {
		t.Errorf("poisoner balance %d, want at least %d", reward, wantMin)
	}
	// And the poison propagates: the cheater's own chain applies it too.
	c.loop.RunFor(20 * time.Second)
	if !cheater.State.UTXO().Poisoned(cbID) {
		t.Error("poison did not propagate to the cheater")
	}
}

func TestPoisonRejectedBeforeNextKeyBlock(t *testing.T) {
	c := newNGCluster(t, 2, 11, ngParams())
	cheater, honest := c.nodes[0], c.nodes[1]
	kb := cheater.MineKeyBlock()
	c.loop.RunFor(2 * time.Second)

	tip := honest.State.Tip()
	mkMicro := func(ts int64) *types.MicroBlock {
		mb := &types.MicroBlock{
			Header: types.MicroBlockHeader{
				Prev:      tip.Hash(),
				TxRoot:    crypto.MerkleRoot(nil),
				TimeNanos: ts,
			},
		}
		mb.Header.Sign(c.keys[0])
		return mb
	}
	onChain := mkMicro(c.loop.Now())
	pruned := mkMicro(c.loop.Now() + int64(time.Millisecond*50))
	honest.ProcessBlock(onChain, 0)
	honest.ProcessBlock(pruned, 0)

	// Hand-build a poison placed in the same epoch (before the next key
	// block): must be rejected (§4.5 placement rule).
	conflictNode, _ := honest.State.Store().Get(onChain.Hash())
	_ = conflictNode
	poison := &types.Transaction{
		Kind:    types.TxPoison,
		Outputs: []types.TxOutput{{Value: 0, To: c.keys[1].Public().Addr()}},
		Evidence: &types.PoisonEvidence{
			Culprit:  kb.Hash(),
			Pruned:   pruned.Header,
			Conflict: onChain.Hash(),
		},
	}
	mb := &types.MicroBlock{
		Header: types.MicroBlockHeader{
			Prev:      honest.State.Tip().Hash(),
			TxRoot:    crypto.MerkleRoot(types.TxIDs([]*types.Transaction{poison})),
			TimeNanos: c.loop.Now() + int64(time.Second),
		},
		Txs: []*types.Transaction{poison},
	}
	mb.Header.Sign(c.keys[0]) // current leader is still the cheater
	_, err := honest.State.AddBlock(mb, c.loop.Now()+int64(time.Second))
	if !errors.Is(err, ErrPoisonTooSoon) {
		t.Errorf("same-epoch poison err = %v", err)
	}
}

func TestPoisonBogusEvidenceRejected(t *testing.T) {
	c := newNGCluster(t, 3, 12, ngParams())
	a, b := c.nodes[0], c.nodes[1]
	a.MineKeyBlock()
	c.loop.RunFor(6 * time.Second) // one honest microblock
	b.MineKeyBlock()
	c.loop.RunFor(2 * time.Second)

	// Evidence whose "pruned" header is signed by the wrong key.
	tipMicro := a.State.Tip().KeyAncestor // b's key block
	_ = tipMicro
	var conflict *chain.Node
	for _, n := range a.State.MainChain() {
		if n.Block().Kind() == types.KindMicro {
			conflict = n
			break
		}
	}
	if conflict == nil {
		t.Fatal("no microblock on chain")
	}
	forged := types.MicroBlockHeader{
		Prev:      conflict.Block().PrevHash(),
		TxRoot:    crypto.HashBytes([]byte("x")),
		TimeNanos: 1,
	}
	forged.Sign(c.keys[2]) // not the epoch leader
	poison := &types.Transaction{
		Kind:    types.TxPoison,
		Outputs: []types.TxOutput{{Value: 0, To: c.keys[1].Public().Addr()}},
		Evidence: &types.PoisonEvidence{
			Culprit:  conflict.KeyAncestor.Hash(),
			Pruned:   forged,
			Conflict: conflict.Hash(),
		},
	}
	mb := &types.MicroBlock{
		Header: types.MicroBlockHeader{
			Prev:      b.State.Tip().Hash(),
			TxRoot:    crypto.MerkleRoot(types.TxIDs([]*types.Transaction{poison})),
			TimeNanos: c.loop.Now(),
		},
		Txs: []*types.Transaction{poison},
	}
	mb.Header.Sign(c.keys[1]) // b leads now
	_, err := b.State.AddBlock(mb, c.loop.Now())
	if !errors.Is(err, ErrBadEvidence) {
		t.Errorf("forged evidence err = %v", err)
	}
}

func TestKeyBlockForkResolution(t *testing.T) {
	// Figure 3: two key blocks at the same height; the fork persists until
	// the next key block tips the balance.
	c := newNGCluster(t, 2, 13, ngParams())
	a, b := c.nodes[0], c.nodes[1]
	a.MineKeyBlock()
	c.loop.RunFor(time.Second)

	// Both mine the next key block nearly simultaneously.
	a.MineKeyBlock()
	b.MineKeyBlock()
	c.loop.RunFor(10 * time.Second)
	// Both branches exist; nodes disagree or agree by tie-break, but the
	// next key block resolves it decisively.
	a.MineKeyBlock()
	c.loop.RunFor(10 * time.Second)
	if a.State.Tip().Hash() != b.State.Tip().Hash() {
		t.Error("key block fork did not resolve")
	}
	if a.State.KeyHeight() != 3 {
		t.Errorf("key height %d, want 3", a.State.KeyHeight())
	}
}
