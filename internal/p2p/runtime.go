package p2p

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/node"
	"bitcoinng/internal/sim"
	"bitcoinng/internal/validate"
	"bitcoinng/internal/wire"
)

// Config configures a live runtime.
type Config struct {
	// NodeID is this node's unique identity in the live network.
	NodeID int
	// Genesis pins the network: peers with different genesis hashes are
	// rejected during the handshake.
	GenesisHash crypto.Hash
	// Seed drives the node's random stream (tie-breaking).
	Seed int64
}

// Runtime implements node.Env over TCP. All protocol callbacks (message
// handlers, timers) execute on one event-loop goroutine, matching the
// simulator's single-threaded delivery contract, so node code needs no
// locks.
type Runtime struct {
	cfg Config
	rng *rand.Rand

	events chan func()
	quit   chan struct{}
	wg     sync.WaitGroup

	mu       sync.Mutex
	listener net.Listener
	peers    map[int]*peer

	handler func(from int, msg node.Message)
}

// New creates a runtime; call SetHandler, then Listen and/or Connect.
func New(cfg Config) *Runtime {
	rt := &Runtime{
		cfg:    cfg,
		rng:    sim.NewRand(cfg.Seed, uint64(cfg.NodeID)),
		events: make(chan func(), 1024),
		quit:   make(chan struct{}),
		peers:  make(map[int]*peer),
	}
	rt.wg.Add(1)
	go rt.loop()
	return rt
}

// SetHandler registers the message sink (typically Base.HandleMessage).
func (rt *Runtime) SetHandler(h func(from int, msg node.Message)) {
	rt.handler = h
}

// loop is the single-threaded executor.
func (rt *Runtime) loop() {
	defer rt.wg.Done()
	for {
		select {
		case fn := <-rt.events:
			fn()
		case <-rt.quit:
			return
		}
	}
}

// Do runs fn on the event loop and waits for it — the safe way for external
// goroutines (miners, CLIs) to touch protocol state.
func (rt *Runtime) Do(fn func()) {
	done := make(chan struct{})
	select {
	case rt.events <- func() { fn(); close(done) }:
	case <-rt.quit:
		return
	}
	select {
	case <-done:
	case <-rt.quit:
	}
}

// post schedules fn asynchronously on the event loop.
func (rt *Runtime) post(fn func()) {
	select {
	case rt.events <- fn:
	case <-rt.quit:
	}
}

// Now implements node.Env using the wall clock.
func (rt *Runtime) Now() int64 { return time.Now().UnixNano() } //nglint:allow walltime live harness IS the wall-clock node.Env implementation; simulations use sim.Loop's virtual clock

// liveTimer wraps time.Timer as a node.Timer whose callback runs on the
// event loop.
type liveTimer struct {
	t       *time.Timer
	stopped bool
	mu      sync.Mutex
}

func (lt *liveTimer) Stop() bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if lt.stopped {
		return false
	}
	lt.stopped = true
	return lt.t.Stop()
}

// After implements node.Env.
func (rt *Runtime) After(d time.Duration, fn func()) node.Timer {
	lt := &liveTimer{}
	//nglint:allow walltime live node.Env timers are real timers; the deterministic counterpart is sim.Loop.After
	lt.t = time.AfterFunc(d, func() {
		rt.post(func() {
			lt.mu.Lock()
			stopped := lt.stopped
			lt.mu.Unlock()
			if !stopped {
				fn()
			}
		})
	})
	return lt
}

// NodeID implements node.Env.
func (rt *Runtime) NodeID() int { return rt.cfg.NodeID }

// Peers implements node.Env.
func (rt *Runtime) Peers() []int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	ids := make([]int, 0, len(rt.peers))
	for id := range rt.peers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Rand implements node.Env.
func (rt *Runtime) Rand() *rand.Rand { return rt.rng }

// Send implements node.Env: non-blocking enqueue to the peer's writer.
func (rt *Runtime) Send(peerID int, msg node.Message) {
	rt.mu.Lock()
	p := rt.peers[peerID]
	rt.mu.Unlock()
	if p == nil {
		return // disconnected; gossip retry logic recovers
	}
	env, err := encodeMessage(msg)
	if err != nil {
		return
	}
	p.send(env)
}

// Listen accepts inbound connections on addr ("host:port").
func (rt *Runtime) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("p2p: listen %s: %w", addr, err)
	}
	rt.mu.Lock()
	rt.listener = ln
	rt.mu.Unlock()
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			rt.wg.Add(1)
			go func() {
				defer rt.wg.Done()
				rt.setupPeer(conn, false)
			}()
		}
	}()
	return ln.Addr(), nil
}

// Connect dials a peer and completes the handshake synchronously.
func (rt *Runtime) Connect(addr string) error {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("p2p: dial %s: %w", addr, err)
	}
	return rt.setupPeer(conn, true)
}

// handshake errors.
var (
	errBadVersion = errors.New("p2p: version mismatch")
	errBadGenesis = errors.New("p2p: different genesis")
	errSelfID     = errors.New("p2p: peer has our node id")
)

// setupPeer performs the version/verack handshake and registers the peer.
// The dialer speaks first.
func (rt *Runtime) setupPeer(conn net.Conn, dialer bool) error {
	fail := func(err error) error {
		conn.Close()
		return err
	}
	deadline := time.Now().Add(10 * time.Second) //nglint:allow walltime TCP handshake I/O deadline on a live socket
	conn.SetDeadline(deadline)

	ours := &versionPayload{
		Version: protocolVersion,
		NodeID:  uint64(rt.cfg.NodeID),
		Genesis: rt.cfg.GenesisHash,
	}
	sendVersion := func() error {
		env := &wire.Envelope{Type: wire.MsgVersion, Payload: wire.Encode(ours)}
		_, err := env.WriteTo(conn)
		return err
	}
	recvVersion := func() (*versionPayload, error) {
		env, err := wire.ReadEnvelope(conn)
		if err != nil {
			return nil, err
		}
		if env.Type != wire.MsgVersion {
			return nil, fmt.Errorf("p2p: expected version, got %v", env.Type)
		}
		theirs := new(versionPayload)
		if err := wire.Decode(env.Payload, theirs); err != nil {
			return nil, err
		}
		if theirs.Version != protocolVersion {
			return nil, errBadVersion
		}
		if crypto.Hash(theirs.Genesis) != rt.cfg.GenesisHash {
			return nil, errBadGenesis
		}
		if int(theirs.NodeID) == rt.cfg.NodeID {
			return nil, errSelfID
		}
		return theirs, nil
	}
	ack := func() error {
		env := &wire.Envelope{Type: wire.MsgVerAck, Payload: []byte{}}
		_, err := env.WriteTo(conn)
		return err
	}
	recvAck := func() error {
		env, err := wire.ReadEnvelope(conn)
		if err != nil {
			return err
		}
		if env.Type != wire.MsgVerAck {
			return fmt.Errorf("p2p: expected verack, got %v", env.Type)
		}
		return nil
	}

	var theirs *versionPayload
	var err error
	if dialer {
		if err = sendVersion(); err != nil {
			return fail(err)
		}
		if theirs, err = recvVersion(); err != nil {
			return fail(err)
		}
		if err = ack(); err != nil {
			return fail(err)
		}
		if err = recvAck(); err != nil {
			return fail(err)
		}
	} else {
		if theirs, err = recvVersion(); err != nil {
			return fail(err)
		}
		if err = sendVersion(); err != nil {
			return fail(err)
		}
		if err = recvAck(); err != nil {
			return fail(err)
		}
		if err = ack(); err != nil {
			return fail(err)
		}
	}
	conn.SetDeadline(time.Time{})

	p := newPeer(rt, int(theirs.NodeID), conn)
	rt.mu.Lock()
	if old := rt.peers[p.id]; old != nil {
		old.close()
	}
	rt.peers[p.id] = p
	rt.mu.Unlock()
	p.start()
	return nil
}

// dropPeer unregisters a dead connection.
func (rt *Runtime) dropPeer(p *peer) {
	rt.mu.Lock()
	if rt.peers[p.id] == p {
		delete(rt.peers, p.id)
	}
	rt.mu.Unlock()
}

// deliver routes an inbound message to the handler on the event loop. Block
// payloads get their stateless verification (stage 1: hashes, PoW, Merkle
// roots, transaction signatures) pre-warmed on the worker pool first: the
// reader goroutine owns the freshly decoded object exclusively, the pool's
// barrier completes before the post, and the single-threaded protocol loop
// then only sees verdict-cache hits instead of paying milliseconds of
// signature checks per block.
//
// A frame that fails to decode is returned as an error, and the reader drops
// the connection: a handshaked peer sending garbage is either corrupting
// traffic or hostile, and continuing to parse its stream risks
// desynchronized framing. The node itself stays up — malformed input must
// never panic past this boundary.
func (rt *Runtime) deliver(from int, env *wire.Envelope) error {
	msg, err := decodeMessage(env)
	if err != nil {
		return err // malformed; caller drops the peer
	}
	if bm, ok := msg.(*node.BlockMsg); ok {
		validate.SharedPool().WarmBlock(bm.Block)
	}
	rt.post(func() {
		if rt.handler != nil {
			rt.handler(from, msg)
		}
	})
	return nil
}

// Close shuts the runtime down: listener, peers, event loop.
func (rt *Runtime) Close() {
	rt.mu.Lock()
	if rt.listener != nil {
		rt.listener.Close()
	}
	ids := make([]int, 0, len(rt.peers))
	for id := range rt.peers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	peers := make([]*peer, 0, len(ids))
	for _, id := range ids {
		peers = append(peers, rt.peers[id])
	}
	rt.peers = map[int]*peer{}
	rt.mu.Unlock()
	for _, p := range peers {
		p.close()
	}
	close(rt.quit)
	rt.wg.Wait()
}
