package p2p

import (
	"net"
	"sync"

	"bitcoinng/internal/wire"
)

// peer is one live connection: a reader goroutine decoding frames into the
// runtime's event loop and a writer goroutine draining a bounded queue, so a
// slow peer cannot block the node.
type peer struct {
	rt   *Runtime
	id   int
	conn net.Conn

	outbox    chan *wire.Envelope
	closeOnce sync.Once
	done      chan struct{}
}

// outboxDepth bounds per-peer queued frames; beyond it frames drop and the
// gossip retry machinery recovers (backpressure without head-of-line
// blocking the event loop).
const outboxDepth = 256

func newPeer(rt *Runtime, id int, conn net.Conn) *peer {
	return &peer{
		rt:     rt,
		id:     id,
		conn:   conn,
		outbox: make(chan *wire.Envelope, outboxDepth),
		done:   make(chan struct{}),
	}
}

func (p *peer) start() {
	p.rt.wg.Add(2)
	go p.readLoop()
	go p.writeLoop()
}

func (p *peer) readLoop() {
	defer p.rt.wg.Done()
	defer p.close()
	for {
		env, err := wire.ReadEnvelope(p.conn)
		if err != nil {
			return
		}
		if err := p.rt.deliver(p.id, env); err != nil {
			return // undecodable frame: drop the peer, keep the node
		}
	}
}

func (p *peer) writeLoop() {
	defer p.rt.wg.Done()
	for {
		select {
		case env := <-p.outbox:
			if _, err := env.WriteTo(p.conn); err != nil {
				p.close()
				return
			}
		case <-p.done:
			return
		}
	}
}

// send enqueues a frame, dropping when the peer is saturated.
func (p *peer) send(env *wire.Envelope) {
	select {
	case p.outbox <- env:
	case <-p.done:
	default:
		// Outbox full: drop. Inventory re-announcement and fetch retry
		// make block relay loss-tolerant.
	}
}

func (p *peer) close() {
	p.closeOnce.Do(func() {
		close(p.done)
		p.conn.Close()
		p.rt.dropPeer(p)
	})
}
