package p2p

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"bitcoinng/internal/bitcoin"
	"bitcoinng/internal/core"
	"bitcoinng/internal/crypto"
	"bitcoinng/internal/node"
	"bitcoinng/internal/sim"
	"bitcoinng/internal/types"
	"bitcoinng/internal/wire"
)

// liveNG is one live Bitcoin-NG node for tests.
type liveNG struct {
	rt   *Runtime
	node *core.Node
	key  *crypto.PrivateKey
}

func liveParams() types.Params {
	p := types.DefaultParams()
	p.RetargetWindow = 0
	p.MicroblockInterval = 30 * time.Millisecond
	p.MinMicroblockInterval = time.Millisecond
	p.RandomTieBreak = false
	return p
}

func startLiveNG(t *testing.T, id int, genesis *types.PowBlock) (*liveNG, string) {
	t.Helper()
	key, err := crypto.GenerateKey(sim.NewRand(int64(id), 77))
	if err != nil {
		t.Fatal(err)
	}
	rt := New(Config{NodeID: id, GenesisHash: genesis.Hash(), Seed: int64(id)})
	n, err := core.New(rt, core.Config{
		Params:          liveParams(),
		Key:             key,
		Genesis:         genesis,
		SimulatedMining: true, // scheduler-free tests trigger mining directly
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.SetHandler(func(from int, msg node.Message) { n.HandleMessage(from, msg) })
	addr, err := rt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return &liveNG{rt: rt, node: n, key: key}, addr.String()
}

// waitFor polls cond via the runtime's event loop until it holds or the
// deadline passes.
func waitFor(t *testing.T, rt *Runtime, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		ok := false
		rt.Do(func() { ok = cond() })
		if ok {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return false
}

func TestLiveHandshakeAndRelay(t *testing.T) {
	genesis := types.GenesisBlock(types.GenesisSpec{Target: crypto.EasiestTarget})
	a, _ := startLiveNG(t, 1, genesis)
	b, addrB := startLiveNG(t, 2, genesis)
	c, addrC := startLiveNG(t, 3, genesis)

	// Line topology: a — b — c. Blocks must relay across b to reach c.
	if err := a.rt.Connect(addrB); err != nil {
		t.Fatal(err)
	}
	if err := b.rt.Connect(addrC); err != nil {
		t.Fatal(err)
	}
	if len(a.rt.Peers()) != 1 || len(b.rt.Peers()) != 2 {
		t.Fatalf("peer counts: a=%d b=%d", len(a.rt.Peers()), len(b.rt.Peers()))
	}

	var kb *types.KeyBlock
	a.rt.Do(func() { kb = a.node.MineKeyBlock() })
	if kb == nil {
		t.Fatal("no key block mined")
	}
	if !waitFor(t, c.rt, 5*time.Second, func() bool {
		return c.node.State.HasBlock(kb.Hash())
	}) {
		t.Fatal("key block did not relay across the line")
	}
}

func TestLiveLeaderMicroblocks(t *testing.T) {
	genesis := types.GenesisBlock(types.GenesisSpec{Target: crypto.EasiestTarget})
	a, _ := startLiveNG(t, 1, genesis)
	b, addrB := startLiveNG(t, 2, genesis)
	if err := a.rt.Connect(addrB); err != nil {
		t.Fatal(err)
	}
	a.rt.Do(func() { a.node.MineKeyBlock() })

	// The leader's microblock timers run on real time; follower b must
	// track the chain as it grows.
	if !waitFor(t, b.rt, 5*time.Second, func() bool {
		return b.node.State.Height() >= 3
	}) {
		t.Fatal("microblocks did not propagate live")
	}
	var leading bool
	a.rt.Do(func() { leading = a.node.IsLeader() })
	if !leading {
		t.Error("miner is not leader")
	}
}

func TestLiveRejectsWrongGenesis(t *testing.T) {
	g1 := types.GenesisBlock(types.GenesisSpec{Target: crypto.EasiestTarget})
	g2 := types.GenesisBlock(types.GenesisSpec{Target: crypto.EasiestTarget, TimeNanos: 42})
	a, _ := startLiveNG(t, 1, g1)
	_, addrB := startLiveNG(t, 2, g2)
	if err := a.rt.Connect(addrB); err == nil {
		t.Error("handshake succeeded across different genesis blocks")
	}
	_ = a
}

func TestLiveRejectsDuplicateNodeID(t *testing.T) {
	g := types.GenesisBlock(types.GenesisSpec{Target: crypto.EasiestTarget})
	a, _ := startLiveNG(t, 7, g)
	_, addrB := startLiveNG(t, 7, g)
	if err := a.rt.Connect(addrB); err == nil {
		t.Error("handshake succeeded with duplicate node id")
	}
}

func TestLiveRealProofOfWork(t *testing.T) {
	// A live Bitcoin node mining real PoW at trivial difficulty: the
	// cmd/ngnode code path end to end over TCP.
	genesis := types.GenesisBlock(types.GenesisSpec{Target: crypto.EasiestTarget})
	params := types.DefaultParams()
	params.RetargetWindow = 0
	params.RandomTieBreak = false

	mk := func(id int) (*Runtime, *bitcoin.Node, string) {
		key, err := crypto.GenerateKey(sim.NewRand(int64(id), 99))
		if err != nil {
			t.Fatal(err)
		}
		rt := New(Config{NodeID: id, GenesisHash: genesis.Hash(), Seed: int64(id)})
		n, err := bitcoin.New(rt, bitcoin.Config{
			Params:  params,
			Key:     key,
			Genesis: genesis,
			// SimulatedMining false: peers demand real proofs of work.
		})
		if err != nil {
			t.Fatal(err)
		}
		rt.SetHandler(func(from int, msg node.Message) { n.HandleMessage(from, msg) })
		addr, err := rt.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rt.Close)
		return rt, n, addr.String()
	}
	rtA, nodeA, _ := mk(1)
	rtB, nodeB, addrB := mk(2)
	if err := rtA.Connect(addrB); err != nil {
		t.Fatal(err)
	}

	// Mine for real: grind nonces until the (easy) target is met.
	var blk *types.PowBlock
	rtA.Do(func() {
		blk = nodeA.AssembleBlock()
		for nonce := uint64(0); ; nonce++ {
			blk.Header.Nonce = nonce
			if crypto.CheckProofOfWork(blk.Header.Hash(), blk.Header.Target) {
				break
			}
		}
		nodeA.SubmitOwnBlock(blk)
	})
	if !waitFor(t, rtB, 5*time.Second, func() bool {
		return nodeB.State.Tip().Hash() == blk.Hash()
	}) {
		t.Fatal("real-PoW block did not reach the peer")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	key, _ := crypto.GenerateKey(sim.NewRand(1, 1))
	mb := &types.MicroBlock{
		Header: types.MicroBlockHeader{
			Prev:      crypto.HashBytes([]byte("p")),
			TxRoot:    crypto.MerkleRoot(nil),
			TimeNanos: 99,
		},
	}
	mb.Header.Sign(key)
	msgs := []node.Message{
		&node.InvMsg{Items: []node.Inv{{Type: wire.MsgKeyBlock, Hash: crypto.HashBytes([]byte("x"))}}},
		&node.GetDataMsg{Items: []node.Inv{{Type: wire.MsgBlock, Hash: crypto.HashBytes([]byte("y"))}}},
		&node.BlockMsg{Block: mb},
	}
	for _, in := range msgs {
		env, err := encodeMessage(in)
		if err != nil {
			t.Fatalf("encode %T: %v", in, err)
		}
		out, err := decodeMessage(env)
		if err != nil {
			t.Fatalf("decode %T: %v", in, err)
		}
		switch m := out.(type) {
		case *node.InvMsg:
			if m.Items[0] != in.(*node.InvMsg).Items[0] {
				t.Error("inv round trip mismatch")
			}
		case *node.GetDataMsg:
			if m.Items[0] != in.(*node.GetDataMsg).Items[0] {
				t.Error("getdata round trip mismatch")
			}
		case *node.BlockMsg:
			if m.Block.Hash() != mb.Hash() {
				t.Error("block round trip mismatch")
			}
		}
	}
}

func TestCodecTxBatchRoundTrip(t *testing.T) {
	key, _ := crypto.GenerateKey(sim.NewRand(2, 1))
	var txs []*types.Transaction
	for i := 0; i < 5; i++ {
		tx := &types.Transaction{
			Kind:    types.TxRegular,
			Inputs:  []types.TxInput{{Prev: types.OutPoint{Index: uint32(i)}}},
			Outputs: []types.TxOutput{{Value: 1, To: crypto.Address{byte(i)}}},
			Padding: make([]byte, i*17),
		}
		tx.SignInput(0, key)
		txs = append(txs, tx)
	}
	in := &node.TxBatchMsg{Txs: txs}
	env, err := encodeMessage(in)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	out, err := decodeMessage(env)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	got, ok := out.(*node.TxBatchMsg)
	if !ok {
		t.Fatalf("decoded %T, want *node.TxBatchMsg", out)
	}
	if len(got.Txs) != len(txs) {
		t.Fatalf("round trip returned %d txs, want %d", len(got.Txs), len(txs))
	}
	for i := range txs {
		if got.Txs[i].ID() != txs[i].ID() {
			t.Errorf("tx %d round trip mismatch", i)
		}
	}

	// The empty batch stays legal (a flush race can drain a queue).
	env, err = encodeMessage(&node.TxBatchMsg{})
	if err != nil {
		t.Fatalf("encode empty: %v", err)
	}
	if out, err := decodeMessage(env); err != nil {
		t.Fatalf("decode empty: %v", err)
	} else if len(out.(*node.TxBatchMsg).Txs) != 0 {
		t.Fatal("empty batch round trip not empty")
	}
}

func TestCodecSyncRoundTrip(t *testing.T) {
	key, _ := crypto.GenerateKey(sim.NewRand(3, 1))
	mb := &types.MicroBlock{
		Header: types.MicroBlockHeader{
			Prev:      crypto.HashBytes([]byte("q")),
			TxRoot:    crypto.MerkleRoot(nil),
			TimeNanos: 5,
		},
	}
	mb.Header.Sign(key)

	gb := &node.GetBlocksMsg{Locator: []node.BlockID{
		crypto.HashBytes([]byte("a")),
		crypto.HashBytes([]byte("b")),
	}}
	env, err := encodeMessage(gb)
	if err != nil {
		t.Fatalf("encode getblocks: %v", err)
	}
	out, err := decodeMessage(env)
	if err != nil {
		t.Fatalf("decode getblocks: %v", err)
	}
	got, ok := out.(*node.GetBlocksMsg)
	if !ok || len(got.Locator) != 2 || got.Locator[0] != gb.Locator[0] || got.Locator[1] != gb.Locator[1] {
		t.Errorf("getblocks round trip mismatch: %#v", out)
	}

	bb := &node.BlockBatchMsg{Blocks: []types.Block{mb}, More: true}
	env, err = encodeMessage(bb)
	if err != nil {
		t.Fatalf("encode blockbatch: %v", err)
	}
	out, err = decodeMessage(env)
	if err != nil {
		t.Fatalf("decode blockbatch: %v", err)
	}
	gotB, ok := out.(*node.BlockBatchMsg)
	if !ok || len(gotB.Blocks) != 1 || gotB.Blocks[0].Hash() != mb.Hash() || !gotB.More {
		t.Errorf("blockbatch round trip mismatch: %#v", out)
	}

	// The empty terminal batch (More=false, no blocks) must survive framing —
	// it is the sync protocol's only exit signal.
	env, err = encodeMessage(&node.BlockBatchMsg{})
	if err != nil {
		t.Fatalf("encode empty batch: %v", err)
	}
	if out, err := decodeMessage(env); err != nil {
		t.Fatalf("decode empty batch: %v", err)
	} else if b := out.(*node.BlockBatchMsg); len(b.Blocks) != 0 || b.More {
		t.Error("empty batch round trip not empty")
	}
}

// rawHandshake dials addr and completes the version/verack exchange as a bare
// TCP client with the given claimed node id, returning the open connection.
func rawHandshake(t *testing.T, addr string, id uint64, genesis crypto.Hash) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	v := &versionPayload{Version: protocolVersion, NodeID: id, Genesis: genesis}
	if _, err := (&wire.Envelope{Type: wire.MsgVersion, Payload: wire.Encode(v)}).WriteTo(conn); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadEnvelope(conn); err != nil {
		t.Fatalf("no version back: %v", err)
	}
	if _, err := (&wire.Envelope{Type: wire.MsgVerAck, Payload: []byte{}}).WriteTo(conn); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadEnvelope(conn); err != nil {
		t.Fatalf("no verack back: %v", err)
	}
	return conn
}

// TestLiveMalformedFrameDropsPeer: a handshaked peer that sends an
// undecodable (but correctly framed) payload is disconnected, and a peer that
// violates framing itself (oversized declared length) likewise — in both
// cases the node survives and keeps serving well-behaved connections.
func TestLiveMalformedFrameDropsPeer(t *testing.T) {
	genesis := types.GenesisBlock(types.GenesisSpec{Target: crypto.EasiestTarget})
	a, addrA := startLiveNG(t, 1, genesis)

	// Phase 1: valid framing, garbage payload (a truncated CompactSize makes
	// the inv list undecodable).
	conn := rawHandshake(t, addrA, 50, genesis.Hash())
	defer conn.Close()
	if !waitFor(t, a.rt, 5*time.Second, func() bool { return len(a.rt.Peers()) == 1 }) {
		t.Fatal("raw peer not registered")
	}
	if _, err := (&wire.Envelope{Type: wire.MsgInv, Payload: []byte{0xfd}}).WriteTo(conn); err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, a.rt, 5*time.Second, func() bool { return len(a.rt.Peers()) == 0 }) {
		t.Fatal("malformed payload did not drop the peer")
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := wire.ReadEnvelope(conn); err == nil {
		t.Error("connection still open after malformed payload")
	}

	// Phase 2: framing-level violation — a header declaring an oversized
	// payload is rejected before allocation and the connection dies.
	conn2 := rawHandshake(t, addrA, 51, genesis.Hash())
	defer conn2.Close()
	if !waitFor(t, a.rt, 5*time.Second, func() bool { return len(a.rt.Peers()) == 1 }) {
		t.Fatal("second raw peer not registered")
	}
	hdr := make([]byte, 13)
	binary.LittleEndian.PutUint32(hdr[0:4], wire.Magic)
	hdr[4] = byte(wire.MsgInv)
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(wire.MaxMessageSize+1))
	if _, err := conn2.Write(hdr); err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, a.rt, 5*time.Second, func() bool { return len(a.rt.Peers()) == 0 }) {
		t.Fatal("oversized frame did not drop the peer")
	}

	// The node itself is unharmed: a well-behaved connection still completes
	// the handshake and receives gossip.
	conn3 := rawHandshake(t, addrA, 52, genesis.Hash())
	defer conn3.Close()
	if !waitFor(t, a.rt, 5*time.Second, func() bool { return len(a.rt.Peers()) == 1 }) {
		t.Fatal("node stopped accepting peers after malformed input")
	}
	var kb *types.KeyBlock
	a.rt.Do(func() { kb = a.node.MineKeyBlock() })
	if kb == nil {
		t.Fatal("no key block mined")
	}
	conn3.SetReadDeadline(time.Now().Add(5 * time.Second))
	env, err := wire.ReadEnvelope(conn3)
	if err != nil {
		t.Fatalf("no gossip after recovery: %v", err)
	}
	if env.Type != wire.MsgInv {
		t.Errorf("first gossip frame is %v, want inv", env.Type)
	}
}
