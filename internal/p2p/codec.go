// Package p2p runs protocol nodes over real TCP connections: framed wire
// messages, a version/verack handshake, per-connection reader and writer
// goroutines, and a single-threaded event loop that preserves the node.Env
// execution model. The same bitcoin/core node code that runs on the
// discrete-event simulator runs here unchanged — the repository's analogue
// of the paper's unchanged-client methodology (§7).
package p2p

import (
	"fmt"

	"bitcoinng/internal/node"
	"bitcoinng/internal/types"
	"bitcoinng/internal/wire"
)

// protocolVersion is the handshake version; peers must match exactly.
const protocolVersion uint32 = 1

// versionPayload is the handshake body.
type versionPayload struct {
	Version uint32
	NodeID  uint64
	Genesis [32]byte
}

func (v *versionPayload) EncodeWire(w *wire.Writer) {
	w.Uint32(v.Version)
	w.Uint64(v.NodeID)
	w.Bytes32(v.Genesis)
}

func (v *versionPayload) DecodeWire(r *wire.Reader) {
	v.Version = r.Uint32()
	v.NodeID = r.Uint64()
	v.Genesis = r.Bytes32()
}

// encodeInvItems serializes inv/getdata item lists.
func encodeInvItems(items []node.Inv) []byte {
	w := wire.NewWriter(1 + 33*len(items))
	w.VarInt(uint64(len(items)))
	for _, it := range items {
		w.Uint8(uint8(it.Type))
		w.Bytes32(it.Hash)
	}
	return w.Bytes()
}

func decodeInvItems(payload []byte) ([]node.Inv, error) {
	r := wire.NewReader(payload)
	n := r.Length(1 << 16)
	items := make([]node.Inv, 0, n)
	for i := 0; i < n; i++ {
		t := wire.MsgType(r.Uint8())
		h := r.Bytes32()
		items = append(items, node.Inv{Type: t, Hash: h})
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return items, nil
}

// encodeTxBatch serializes a txbatch: a CompactSize count followed by each
// transaction as VarBytes, so a corrupt member fails cleanly at its length
// prefix instead of desynchronizing the rest of the batch.
func encodeTxBatch(txs []*types.Transaction) []byte {
	w := wire.NewWriter(1 + 512*len(txs))
	w.VarInt(uint64(len(txs)))
	for _, tx := range txs {
		w.VarBytes(wire.Encode(tx))
	}
	return w.Bytes()
}

func decodeTxBatch(payload []byte) ([]*types.Transaction, error) {
	r := wire.NewReader(payload)
	n := r.Length(1 << 16)
	txs := make([]*types.Transaction, 0, n)
	for i := 0; i < n; i++ {
		raw := r.VarBytes(1 << 20)
		if r.Err() != nil {
			break
		}
		tx := new(types.Transaction)
		if err := wire.Decode(raw, tx); err != nil {
			return nil, err
		}
		txs = append(txs, tx)
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return txs, nil
}

// encodeLocator serializes a getblocks locator: a CompactSize count followed
// by the block hashes, tip-first.
func encodeLocator(loc []node.BlockID) []byte {
	w := wire.NewWriter(1 + 32*len(loc))
	w.VarInt(uint64(len(loc)))
	for _, h := range loc {
		w.Bytes32(h)
	}
	return w.Bytes()
}

func decodeLocator(payload []byte) ([]node.BlockID, error) {
	r := wire.NewReader(payload)
	n := r.Length(1 << 16)
	loc := make([]node.BlockID, 0, n)
	for i := 0; i < n; i++ {
		loc = append(loc, r.Bytes32())
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return loc, nil
}

// encodeBlockBatch serializes a blockbatch: the More flag, a CompactSize
// count, then each block as its message type plus VarBytes payload — the
// per-member length prefix keeps one corrupt block from desynchronizing the
// rest of the frame.
func encodeBlockBatch(m *node.BlockBatchMsg) []byte {
	w := wire.NewWriter(2 + 1024*len(m.Blocks))
	w.Bool(m.More)
	w.VarInt(uint64(len(m.Blocks)))
	for _, b := range m.Blocks {
		w.Uint8(uint8(types.BlockMsgType(b)))
		w.VarBytes(wire.Encode(b))
	}
	return w.Bytes()
}

func decodeBlockBatch(payload []byte) (*node.BlockBatchMsg, error) {
	r := wire.NewReader(payload)
	more := r.Bool()
	n := r.Length(1 << 16)
	m := &node.BlockBatchMsg{Blocks: make([]types.Block, 0, n), More: more}
	for i := 0; i < n; i++ {
		t := wire.MsgType(r.Uint8())
		raw := r.VarBytes(wire.MaxMessageSize)
		if r.Err() != nil {
			break
		}
		b, err := types.DecodeBlockMsg(t, raw)
		if err != nil {
			return nil, err
		}
		m.Blocks = append(m.Blocks, b)
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// encodeMessage frames a gossip message for the TCP transport.
func encodeMessage(msg node.Message) (*wire.Envelope, error) {
	switch m := msg.(type) {
	case *node.InvMsg:
		return &wire.Envelope{Type: wire.MsgInv, Payload: encodeInvItems(m.Items)}, nil
	case *node.GetDataMsg:
		return &wire.Envelope{Type: wire.MsgGetData, Payload: encodeInvItems(m.Items)}, nil
	case *node.BlockMsg:
		return &wire.Envelope{Type: types.BlockMsgType(m.Block), Payload: wire.Encode(m.Block)}, nil
	case *node.TxMsg:
		return &wire.Envelope{Type: wire.MsgTx, Payload: wire.Encode(m.Tx)}, nil
	case *node.TxBatchMsg:
		return &wire.Envelope{Type: wire.MsgTxBatch, Payload: encodeTxBatch(m.Txs)}, nil
	case *node.GetBlocksMsg:
		return &wire.Envelope{Type: wire.MsgGetBlocks, Payload: encodeLocator(m.Locator)}, nil
	case *node.BlockBatchMsg:
		return &wire.Envelope{Type: wire.MsgBlockBatch, Payload: encodeBlockBatch(m)}, nil
	default:
		return nil, fmt.Errorf("p2p: cannot encode message type %T", msg)
	}
}

// decodeMessage parses a framed gossip message.
func decodeMessage(env *wire.Envelope) (node.Message, error) {
	switch env.Type {
	case wire.MsgInv:
		items, err := decodeInvItems(env.Payload)
		if err != nil {
			return nil, err
		}
		return &node.InvMsg{Items: items}, nil
	case wire.MsgGetData:
		items, err := decodeInvItems(env.Payload)
		if err != nil {
			return nil, err
		}
		return &node.GetDataMsg{Items: items}, nil
	case wire.MsgBlock, wire.MsgKeyBlock, wire.MsgMicroBlock:
		b, err := types.DecodeBlockMsg(env.Type, env.Payload)
		if err != nil {
			return nil, err
		}
		return &node.BlockMsg{Block: b}, nil
	case wire.MsgTx:
		tx := new(types.Transaction)
		if err := wire.Decode(env.Payload, tx); err != nil {
			return nil, err
		}
		return &node.TxMsg{Tx: tx}, nil
	case wire.MsgTxBatch:
		txs, err := decodeTxBatch(env.Payload)
		if err != nil {
			return nil, err
		}
		return &node.TxBatchMsg{Txs: txs}, nil
	case wire.MsgGetBlocks:
		loc, err := decodeLocator(env.Payload)
		if err != nil {
			return nil, err
		}
		return &node.GetBlocksMsg{Locator: loc}, nil
	case wire.MsgBlockBatch:
		return decodeBlockBatch(env.Payload)
	default:
		return nil, fmt.Errorf("p2p: cannot decode message type %v", env.Type)
	}
}
