// Package node is the protocol-node framework shared by internal/bitcoin
// and internal/core: the Env runtime abstraction, the gossip message
// vocabulary, the inv/getdata block relay, and the Base node core (chain +
// mempool + relay wiring).
//
// Protocol code is written once against Env and runs unchanged on the
// discrete-event simulator (internal/simnet via the experiment harness) and
// on real TCP sockets (internal/p2p) — the repository's analogue of the
// paper's "unchanged clients" methodology (§7).
package node

import (
	"math/rand"
	"time"
)

// Timer is a cancellable scheduled callback; sim.Timer and the p2p runtime's
// timers implement it.
type Timer interface {
	// Stop cancels the timer, reporting whether it was still pending.
	Stop() bool
}

// Env is the runtime a protocol node runs on: a clock, a scheduler, an
// identity, and links to peers.
//
// Implementations must deliver callbacks single-threaded per node: a node's
// handlers never run concurrently, so nodes need no internal locking.
type Env interface {
	// Now returns the current time in Unix nanoseconds.
	Now() int64
	// After schedules fn to run d from now.
	After(d time.Duration, fn func()) Timer
	// NodeID returns this node's index in the experiment (or a unique id
	// for live nodes).
	NodeID() int
	// Peers returns the ids of directly connected peers.
	Peers() []int
	// Send transmits a gossip message to a peer.
	Send(peer int, msg Message)
	// Rand returns this node's deterministic random stream.
	Rand() *rand.Rand
}

// Recorder receives the node events the §6 metrics are computed from.
// internal/metrics implements it; NopRecorder discards.
type Recorder interface {
	// BlockGenerated fires once, on the generating node, when a block is
	// assembled.
	BlockGenerated(nodeID int, at int64, block BlockInfo)
	// BlockAccepted fires on every node whose chain accepts the block
	// (including the generator), before any tip change it causes.
	BlockAccepted(nodeID int, at int64, blockID BlockID)
	// TipChanged fires when a node's main chain changes: connected and
	// disconnected block ids, oldest first.
	TipChanged(nodeID int, at int64, tip BlockID, connected, disconnected []BlockID)
}

// NopRecorder discards all events.
type NopRecorder struct{}

// BlockGenerated implements Recorder.
func (NopRecorder) BlockGenerated(int, int64, BlockInfo) {}

// BlockAccepted implements Recorder.
func (NopRecorder) BlockAccepted(int, int64, BlockID) {}

// TipChanged implements Recorder.
func (NopRecorder) TipChanged(int, int64, BlockID, []BlockID, []BlockID) {}
