package node_test

import (
	"testing"
	"time"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/node"
	"bitcoinng/internal/types"
)

// extendChain mines n blocks on top of base's current tip, adding each
// directly to its state, and returns the blocks.
func extendChain(t *testing.T, h *harness, owner int, key *crypto.PrivateKey, n int) []types.Block {
	t.Helper()
	base := h.bases[owner]
	blocks := make([]types.Block, 0, n)
	for i := 0; i < n; i++ {
		tip := base.State.Tip()
		b := mineOn(t, key, tip.Hash(), tip.Height+1)
		if _, err := base.State.AddBlock(b, 0); err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, b)
	}
	return blocks
}

// TestSyncCatchUp: a node far behind recovers the whole suffix through
// repeated locator exchanges, then terminates on the empty non-More batch.
func TestSyncCatchUp(t *testing.T) {
	h, _, key := newHarness(t, 2)
	// Node 0 is 80 blocks ahead — more than two 32-block batches.
	extendChain(t, h, 0, key, 80)

	h.bases[1].Sync.Start(0)
	h.drain()

	if got, want := h.bases[1].State.Height(), h.bases[0].State.Height(); got != want {
		t.Fatalf("synced height = %d, want %d", got, want)
	}
	if h.bases[1].State.Tip().Hash() != h.bases[0].State.Tip().Hash() {
		t.Error("tips diverge after sync")
	}
	if h.bases[1].Sync.Active() {
		t.Error("sync still active after terminal batch")
	}
}

// TestSyncFromFork: the locator finds the common ancestor, so a node on a
// stale branch downloads only the winning suffix and reorgs onto it.
func TestSyncFromFork(t *testing.T) {
	h, _, key := newHarness(t, 2)
	// Shared prefix of 5 blocks on both nodes.
	shared := extendChain(t, h, 0, key, 5)
	for _, b := range shared {
		if _, err := h.bases[1].State.AddBlock(b, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Node 1 mines 2 blocks of its own branch; node 0's branch grows by 10
	// and wins.
	fork := h.bases[1].State.Tip()
	b := mineOn(t, key, fork.Hash(), fork.Height+1)
	b.Header.TimeNanos = 7777 // distinct hash from node 0's branch
	if _, err := h.bases[1].State.AddBlock(b, 0); err != nil {
		t.Fatal(err)
	}
	extendChain(t, h, 0, key, 10)

	h.bases[1].Sync.Start(0)
	h.drain()

	if h.bases[1].State.Tip().Hash() != h.bases[0].State.Tip().Hash() {
		t.Error("forked node did not reorg onto the synced branch")
	}
}

// TestSyncTimeoutRotatesPeers: an unresponsive peer costs one backoff, then
// the next peer serves the exchange.
func TestSyncTimeoutRotatesPeers(t *testing.T) {
	h, _, key := newHarness(t, 3)
	extendChain(t, h, 0, key, 3)
	// Node 1 has the same chain so either source can serve it.
	for _, bn := range h.bases[0].State.MainChain()[1:] {
		if _, err := h.bases[1].State.AddBlock(bn.Block(), 0); err != nil {
			t.Fatal(err)
		}
	}

	h.mute[0] = true
	h.bases[2].Sync.Start(0) // preferred peer is mute
	h.drain()
	if h.bases[2].State.Height() != 0 {
		t.Fatal("blocks arrived from a mute peer")
	}
	// First sync backoff is [20s, 25s); after it the syncer rotates.
	h.advance(25 * time.Second)
	h.drain()
	if got, want := h.bases[2].State.Height(), h.bases[0].State.Height(); got != want {
		t.Errorf("height after rotation = %d, want %d", got, want)
	}
	if h.bases[2].Sync.Active() {
		t.Error("sync still active after rotation served it")
	}
}

// TestSyncStrayBatchDoesNotAdvance: batches from peers other than the one
// currently asked are ingested as data but must not drive the state machine
// (a lossy network duplicating an old batch cannot double-advance the sync).
func TestSyncStrayBatchDoesNotAdvance(t *testing.T) {
	h, genesis, key := newHarness(t, 3)
	b1 := mineOn(t, key, genesis.Hash(), 1)

	h.mute[0] = true
	h.bases[2].Sync.Start(0)
	h.drain()
	if !h.bases[2].Sync.Active() {
		t.Fatal("sync not active")
	}
	// A stray batch from peer 1 (not the asked peer) with More set: the data
	// lands, the machine stays pointed at peer 0.
	h.bases[2].HandleMessage(1, &node.BlockBatchMsg{Blocks: []types.Block{b1}, More: true})
	if !h.bases[2].State.HasBlock(b1.Hash()) {
		t.Error("stray batch's block was discarded")
	}
	if !h.bases[2].Sync.Active() {
		t.Error("stray batch terminated the sync")
	}
	// No GetBlocksMsg to peer 1 may have been triggered by the stray batch.
	for _, qm := range h.envs[2].queue {
		if _, ok := qm.msg.(*node.GetBlocksMsg); ok && qm.to == 1 {
			t.Error("stray batch advanced the state machine")
		}
	}
}

// TestSyncServerBounds: the responder ignores empty and oversized locators
// outright and never serves more than a batch at a time.
func TestSyncServerBounds(t *testing.T) {
	h, _, key := newHarness(t, 2)
	extendChain(t, h, 0, key, 40)

	h.bases[0].HandleMessage(1, &node.GetBlocksMsg{})
	h.bases[0].HandleMessage(1, &node.GetBlocksMsg{Locator: make([]node.BlockID, 65)})
	if len(h.envs[0].queue) != 0 {
		t.Fatal("responder answered a malformed locator")
	}

	loc := []node.BlockID{h.bases[0].State.Store().Genesis().Hash()}
	h.bases[0].HandleMessage(1, &node.GetBlocksMsg{Locator: loc})
	if len(h.envs[0].queue) != 1 {
		t.Fatalf("queued %d replies, want 1", len(h.envs[0].queue))
	}
	batch, ok := h.envs[0].queue[0].msg.(*node.BlockBatchMsg)
	if !ok {
		t.Fatalf("reply is %T, want *node.BlockBatchMsg", h.envs[0].queue[0].msg)
	}
	if len(batch.Blocks) != 32 {
		t.Errorf("batch carries %d blocks, want 32", len(batch.Blocks))
	}
	if !batch.More {
		t.Error("40-deep suffix served without More")
	}
}
