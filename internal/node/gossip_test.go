package node_test

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"bitcoinng/internal/bitcoin"
	"bitcoinng/internal/chain"
	"bitcoinng/internal/crypto"
	"bitcoinng/internal/node"
	"bitcoinng/internal/types"
)

// harness is a hand-pumped message fabric: Sends are queued and delivered
// only when the test calls pump, and timers fire only when the test advances
// the clock. It gives the gossip tests full control over ordering and loss.
type harness struct {
	t     *testing.T
	now   int64
	envs  map[int]*fakeEnv
	bases map[int]*node.Base
	mute  map[int]bool // nodes that drop all incoming messages
}

type queuedMsg struct {
	from, to int
	msg      node.Message
}

type fakeTimer struct {
	at      int64
	fn      func()
	stopped bool
}

func (ft *fakeTimer) Stop() bool {
	was := !ft.stopped && ft.fn != nil
	ft.stopped = true
	return was
}

type fakeEnv struct {
	h      *harness
	id     int
	peers  []int
	queue  []queuedMsg
	timers []*fakeTimer
	rng    *rand.Rand
}

func (e *fakeEnv) Now() int64 { return e.h.now }
func (e *fakeEnv) After(d time.Duration, fn func()) node.Timer {
	ft := &fakeTimer{at: e.h.now + int64(d), fn: fn}
	e.timers = append(e.timers, ft)
	return ft
}
func (e *fakeEnv) NodeID() int      { return e.id }
func (e *fakeEnv) Peers() []int     { return e.peers }
func (e *fakeEnv) Rand() *rand.Rand { return e.rng }
func (e *fakeEnv) Send(p int, m node.Message) {
	e.queue = append(e.queue, queuedMsg{from: e.id, to: p, msg: m})
}

func newHarness(t *testing.T, n int) (*harness, *types.PowBlock, *crypto.PrivateKey) {
	t.Helper()
	params := types.DefaultParams()
	params.RandomTieBreak = false
	return newHarnessParams(t, n, params)
}

func newHarnessParams(t *testing.T, n int, params types.Params) (*harness, *types.PowBlock, *crypto.PrivateKey) {
	t.Helper()
	key, err := crypto.GenerateKey(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	genesis := types.GenesisBlock(types.GenesisSpec{Target: crypto.EasiestTarget})
	h := &harness{
		t:     t,
		envs:  make(map[int]*fakeEnv),
		bases: make(map[int]*node.Base),
		mute:  make(map[int]bool),
	}
	for i := 0; i < n; i++ {
		peers := make([]int, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				peers = append(peers, j)
			}
		}
		env := &fakeEnv{h: h, id: i, peers: peers, rng: rand.New(rand.NewSource(int64(i)))}
		st, err := chain.New(genesis, params, bitcoin.Rules{AllowSimulatedPoW: true},
			&chain.HeaviestChain{})
		if err != nil {
			t.Fatal(err)
		}
		h.envs[i] = env
		h.bases[i] = node.NewBase(env, st, nil)
	}
	return h, genesis, key
}

// pump delivers every queued message once (messages generated during
// delivery wait for the next round). It returns how many were delivered.
func (h *harness) pump() int {
	var all []queuedMsg
	ids := make([]int, 0, len(h.envs))
	for id := range h.envs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		e := h.envs[id]
		all = append(all, e.queue...)
		e.queue = nil
	}
	for _, qm := range all {
		if h.mute[qm.to] {
			continue
		}
		h.bases[qm.to].HandleMessage(qm.from, qm.msg)
	}
	return len(all)
}

// drain pumps until quiescent.
func (h *harness) drain() {
	for h.pump() > 0 {
	}
}

// advance moves the clock and fires due timers.
func (h *harness) advance(d time.Duration) {
	h.now += int64(d)
	for _, e := range h.envs {
		timers := e.timers
		e.timers = nil
		for _, ft := range timers {
			if ft.stopped {
				continue
			}
			if ft.at <= h.now {
				fn := ft.fn
				ft.fn = nil
				fn()
			} else {
				e.timers = append(e.timers, ft)
			}
		}
	}
}

func mineOn(t *testing.T, key *crypto.PrivateKey, prev crypto.Hash, height uint64) *types.PowBlock {
	t.Helper()
	txs := []*types.Transaction{{
		Kind:    types.TxCoinbase,
		Outputs: []types.TxOutput{{Value: 50, To: key.Public().Addr()}},
		Height:  height,
	}}
	return &types.PowBlock{
		Header: types.PowHeader{
			Prev:       prev,
			MerkleRoot: crypto.MerkleRoot(types.TxIDs(txs)),
			TimeNanos:  int64(height),
			Target:     crypto.EasiestTarget,
		},
		Txs:          txs,
		SimulatedPoW: true,
	}
}

func TestInvGetDataBlockFlow(t *testing.T) {
	h, genesis, key := newHarness(t, 3)
	b1 := mineOn(t, key, genesis.Hash(), 1)

	h.bases[0].SubmitOwnBlock(b1)

	// Round 1: invs to peers 1 and 2.
	if n := h.pump(); n != 2 {
		t.Fatalf("round 1 delivered %d messages, want 2 invs", n)
	}
	// Round 2: getdata back to 0 (from both).
	if n := h.pump(); n != 2 {
		t.Fatalf("round 2 delivered %d, want 2 getdata", n)
	}
	// Round 3: block to 1 and 2.
	h.drain()
	for i := 1; i <= 2; i++ {
		if !h.bases[i].State.HasBlock(b1.Hash()) {
			t.Errorf("node %d did not receive the block", i)
		}
		if h.bases[i].State.Tip().Hash() != b1.Hash() {
			t.Errorf("node %d tip not at b1", i)
		}
	}
}

func TestDuplicateInvFetchedOnce(t *testing.T) {
	h, genesis, key := newHarness(t, 3)
	b1 := mineOn(t, key, genesis.Hash(), 1)
	inv := node.Inv{Type: types.BlockMsgType(b1), Hash: b1.Hash()}

	// Node 2 hears the same inv from 0 and 1.
	h.bases[2].HandleMessage(0, &node.InvMsg{Items: []node.Inv{inv}})
	h.bases[2].HandleMessage(1, &node.InvMsg{Items: []node.Inv{inv}})

	// Only one getdata goes out.
	var getdatas int
	for _, qm := range h.envs[2].queue {
		if _, ok := qm.msg.(*node.GetDataMsg); ok {
			getdatas++
		}
	}
	if getdatas != 1 {
		t.Errorf("sent %d getdata, want 1", getdatas)
	}
}

func TestFetchRetryAfterTimeout(t *testing.T) {
	h, genesis, key := newHarness(t, 3)
	b1 := mineOn(t, key, genesis.Hash(), 1)
	// Node 1 also has the block so it can serve it later.
	h.bases[1].State.AddBlock(b1, 0)

	h.mute[0] = true // node 0 will swallow the first getdata
	inv := node.Inv{Type: types.BlockMsgType(b1), Hash: b1.Hash()}
	h.bases[2].HandleMessage(0, &node.InvMsg{Items: []node.Inv{inv}})
	h.bases[2].HandleMessage(1, &node.InvMsg{Items: []node.Inv{inv}})
	h.drain() // getdata to 0 is dropped

	if h.bases[2].State.HasBlock(b1.Hash()) {
		t.Fatal("block arrived despite muted peer")
	}
	// After the fetch timeout the node retries with announcer 1.
	h.advance(25 * time.Second)
	h.drain()
	if !h.bases[2].State.HasBlock(b1.Hash()) {
		t.Error("fetch was not retried from the second announcer")
	}
}

// TestFetchTimeoutConfigurable asserts the retry timer follows
// Params.FetchTimeout rather than the built-in default — LatencySpike
// scenarios at large scale factors stretch propagation past 20 s and must be
// able to stretch the re-request window with it.
func TestFetchTimeoutConfigurable(t *testing.T) {
	params := types.DefaultParams()
	params.RandomTieBreak = false
	params.FetchTimeout = 2 * time.Minute
	h, genesis, key := newHarnessParams(t, 3, params)
	b1 := mineOn(t, key, genesis.Hash(), 1)
	h.bases[1].State.AddBlock(b1, 0)

	h.mute[0] = true
	inv := node.Inv{Type: types.BlockMsgType(b1), Hash: b1.Hash()}
	h.bases[2].HandleMessage(0, &node.InvMsg{Items: []node.Inv{inv}})
	h.bases[2].HandleMessage(1, &node.InvMsg{Items: []node.Inv{inv}})
	h.drain()

	// The stock 20s default would have retried here; the configured window
	// has not elapsed, so no retry yet.
	h.advance(25 * time.Second)
	h.drain()
	if h.bases[2].State.HasBlock(b1.Hash()) {
		t.Fatal("fetch retried before the configured timeout")
	}
	// The jittered window is [2min, 2.5min); advancing past its upper bound
	// guarantees the retry fired.
	h.advance(150 * time.Second)
	h.drain()
	if !h.bases[2].State.HasBlock(b1.Hash()) {
		t.Error("fetch was not retried after the configured timeout")
	}
}

func TestOrphanParentChase(t *testing.T) {
	h, genesis, key := newHarness(t, 2)
	b1 := mineOn(t, key, genesis.Hash(), 1)
	b2 := mineOn(t, key, b1.Hash(), 2)
	h.bases[0].State.AddBlock(b1, 0)
	h.bases[0].State.AddBlock(b2, 0)

	// Node 1 receives b2 out of the blue: it must chase b1 from sender.
	h.bases[1].HandleMessage(0, &node.BlockMsg{Block: b2})
	h.drain()
	if !h.bases[1].State.HasBlock(b1.Hash()) || !h.bases[1].State.HasBlock(b2.Hash()) {
		t.Error("orphan parent not fetched")
	}
	if h.bases[1].State.Tip().Hash() != b2.Hash() {
		t.Error("orphan cascade did not connect")
	}
}

func TestNoRelayBackToSender(t *testing.T) {
	h, genesis, key := newHarness(t, 2)
	b1 := mineOn(t, key, genesis.Hash(), 1)
	h.bases[1].HandleMessage(0, &node.BlockMsg{Block: b1})
	// Node 1 must not announce b1 back to node 0.
	for _, qm := range h.envs[1].queue {
		if inv, ok := qm.msg.(*node.InvMsg); ok && qm.to == 0 {
			for _, item := range inv.Items {
				if item.Hash == b1.Hash() {
					t.Error("block announced back to its sender")
				}
			}
		}
	}
}

func TestTxRelayFloodsWhenEnabled(t *testing.T) {
	h, _, key := newHarness(t, 3)
	for _, base := range h.bases {
		base.RelayTxs = true
	}
	tx := &types.Transaction{
		Kind:    types.TxRegular,
		Inputs:  []types.TxInput{{Prev: types.OutPoint{Index: 1}}},
		Outputs: []types.TxOutput{{Value: 1, To: crypto.Address{1}}},
	}
	tx.SignInput(0, key)

	if err := h.bases[0].SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	h.drain()
	for i := 1; i < 3; i++ {
		pool := h.bases[i].Pool.(interface{ Contains(crypto.Hash) bool })
		if !pool.Contains(tx.ID()) {
			t.Errorf("node %d did not pool the relayed tx", i)
		}
	}
	// Resubmitting is rejected as a duplicate.
	if err := h.bases[0].SubmitTx(tx); err == nil {
		t.Error("duplicate SubmitTx accepted")
	}
	// Malformed transactions are refused outright.
	bad := &types.Transaction{Kind: types.TxRegular}
	if err := h.bases[0].SubmitTx(bad); err == nil {
		t.Error("malformed SubmitTx accepted")
	}
}

func TestTxRelayOffByDefault(t *testing.T) {
	h, _, key := newHarness(t, 2)
	tx := &types.Transaction{
		Kind:    types.TxRegular,
		Inputs:  []types.TxInput{{Prev: types.OutPoint{Index: 2}}},
		Outputs: []types.TxOutput{{Value: 1, To: crypto.Address{1}}},
	}
	tx.SignInput(0, key)
	if err := h.bases[0].SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	h.drain()
	if h.bases[1].Pool.Len() != 0 {
		t.Error("transaction relayed despite RelayTxs=false (experiments must not relay, §7)")
	}
}

func TestStaleGetDataIgnored(t *testing.T) {
	h, _, _ := newHarness(t, 2)
	unknown := crypto.HashBytes([]byte("nope"))
	h.bases[0].HandleMessage(1, &node.GetDataMsg{Items: []node.Inv{{Hash: unknown}}})
	if len(h.envs[0].queue) != 0 {
		t.Error("node responded to getdata for unknown block")
	}
}

func TestMessageSizes(t *testing.T) {
	inv := &node.InvMsg{Items: make([]node.Inv, 3)}
	if inv.Size() != 13+1+3*33 {
		t.Errorf("inv size = %d", inv.Size())
	}
	gd := &node.GetDataMsg{Items: make([]node.Inv, 1)}
	if gd.Size() != 13+1+33 {
		t.Errorf("getdata size = %d", gd.Size())
	}
	key, _ := crypto.GenerateKey(rand.New(rand.NewSource(9)))
	b := mineOn(t, key, crypto.Hash{}, 1)
	bm := &node.BlockMsg{Block: b}
	if bm.Size() != 13+b.WireSize() {
		t.Errorf("block msg size = %d, want 13+%d", bm.Size(), b.WireSize())
	}
}

// TestFetchTimerClearedOnDirectInjection is the regression test for a fetch
// entry outliving its block: when a block enters the chain without passing
// through handleBlock (delivered directly by a harness, or adopted from the
// orphan stash), the armed retry timer used to keep re-requesting a block
// the node already had. The timer must clear the stale entry instead.
func TestFetchTimerClearedOnDirectInjection(t *testing.T) {
	h, genesis, key := newHarness(t, 3)
	b1 := mineOn(t, key, genesis.Hash(), 1)

	// Node 2 starts a fetch whose getdata response never arrives.
	h.mute[0] = true
	inv := node.Inv{Type: types.BlockMsgType(b1), Hash: b1.Hash()}
	h.bases[2].HandleMessage(0, &node.InvMsg{Items: []node.Inv{inv}})
	h.drain()
	if got := h.bases[2].Gossip.PendingFetches(); got != 1 {
		t.Fatalf("pending fetches = %d, want 1", got)
	}

	// The block arrives outside the fetch path (direct injection).
	h.bases[2].ProcessBlock(b1, -1)

	// The retry timer fires: it must drop the stale entry without sending
	// another getdata.
	h.envs[2].queue = nil
	h.advance(25 * time.Second)
	if got := h.bases[2].Gossip.PendingFetches(); got != 0 {
		t.Errorf("pending fetches after timer = %d, want 0", got)
	}
	for _, qm := range h.envs[2].queue {
		if _, ok := qm.msg.(*node.GetDataMsg); ok {
			t.Error("stale timer re-requested a block the node already has")
		}
	}
}

// TestFetchGiveUpHandsOffToSync: when the capped-backoff retry schedule is
// exhausted and the block never arrives, the pending entry is dropped and
// catch-up sync takes over, recovering the block through the locator
// exchange once a peer answers again.
func TestFetchGiveUpHandsOffToSync(t *testing.T) {
	h, genesis, key := newHarness(t, 3)
	b1 := mineOn(t, key, genesis.Hash(), 1)
	// Both peers hold the block so whichever one sync rotates to can serve it.
	h.bases[0].State.AddBlock(b1, 0)
	h.bases[1].State.AddBlock(b1, 0)

	h.mute[0] = true
	h.mute[1] = true
	inv := node.Inv{Type: types.BlockMsgType(b1), Hash: b1.Hash()}
	h.bases[2].HandleMessage(0, &node.InvMsg{Items: []node.Inv{inv}})
	h.bases[2].HandleMessage(1, &node.InvMsg{Items: []node.Inv{inv}})
	h.drain()

	// Capped exponential backoff with ≤25% jitter off a 20 s base: each
	// advance covers the widest possible wait for that attempt, so after the
	// fourth the fetcher has exhausted its schedule and given up.
	for _, d := range []time.Duration{
		25 * time.Second, 50 * time.Second, 100 * time.Second, 200 * time.Second,
	} {
		h.advance(d)
		h.drain()
	}
	if got := h.bases[2].Gossip.PendingFetches(); got != 0 {
		t.Errorf("pending fetches after give-up = %d, want 0", got)
	}
	if !h.bases[2].Sync.Active() {
		t.Fatal("give-up did not hand off to catch-up sync")
	}

	// Once peers answer again, the next sync retry recovers the block and the
	// exchange terminates.
	h.mute[0] = false
	h.mute[1] = false
	for i := 0; i < 4 && !h.bases[2].State.HasBlock(b1.Hash()); i++ {
		h.advance(200 * time.Second)
		h.drain()
	}
	if !h.bases[2].State.HasBlock(b1.Hash()) {
		t.Error("catch-up sync did not recover the block")
	}
	if h.bases[2].Sync.Active() {
		t.Error("sync still active after a terminal batch")
	}
}

// relayTx builds a well-formed loose transaction for relay tests (inputs
// reference nonexistent outputs; the pool's fee resolver degrades them to
// rate zero, which is fine for unbounded pools).
func relayTx(t *testing.T, key *crypto.PrivateKey, idx uint32) *types.Transaction {
	t.Helper()
	tx := &types.Transaction{
		Kind:    types.TxRegular,
		Inputs:  []types.TxInput{{Prev: types.OutPoint{Index: idx}}},
		Outputs: []types.TxOutput{{Value: 1, To: key.Public().Addr()}},
	}
	tx.SignInput(0, key)
	return tx
}

// TestTxRelayImmediate: with TxBatchInterval unset each submitted
// transaction goes out at once in its own TxMsg.
func TestTxRelayImmediate(t *testing.T) {
	h, _, key := newHarness(t, 3)
	for _, b := range h.bases {
		b.RelayTxs = true
	}
	if err := h.bases[0].SubmitTx(relayTx(t, key, 1)); err != nil {
		t.Fatal(err)
	}
	var txMsgs int
	for _, qm := range h.envs[0].queue {
		if _, ok := qm.msg.(*node.TxMsg); ok {
			txMsgs++
		}
	}
	if txMsgs != 2 {
		t.Fatalf("immediate relay sent %d TxMsgs, want 2 (one per peer)", txMsgs)
	}
	h.drain()
	if h.bases[1].Pool.Len() != 1 || h.bases[2].Pool.Len() != 1 {
		t.Fatal("peers did not pool the relayed transaction")
	}
}

// TestTxRelayBatching: with TxBatchInterval set, transactions coalesce
// until the flush timer fires, then go out as one txbatch per peer.
func TestTxRelayBatching(t *testing.T) {
	params := types.DefaultParams()
	params.RandomTieBreak = false
	params.TxBatchInterval = time.Second
	h, _, key := newHarnessParams(t, 3, params)
	for _, b := range h.bases {
		b.RelayTxs = true
	}
	for i := uint32(1); i <= 3; i++ {
		if err := h.bases[0].SubmitTx(relayTx(t, key, i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(h.envs[0].queue) != 0 {
		t.Fatalf("batching sent %d messages before the flush", len(h.envs[0].queue))
	}
	if got := h.bases[0].Gossip.QueuedTxs(); got != 6 {
		t.Fatalf("queued = %d, want 6 (3 txs x 2 peers)", got)
	}

	h.advance(time.Second)
	var batches int
	for _, qm := range h.envs[0].queue {
		b, ok := qm.msg.(*node.TxBatchMsg)
		if !ok {
			t.Fatalf("flush sent %T, want *node.TxBatchMsg", qm.msg)
		}
		if len(b.Txs) != 3 {
			t.Fatalf("batch carries %d txs, want 3", len(b.Txs))
		}
		batches++
	}
	if batches != 2 {
		t.Fatalf("flush sent %d batches, want 2 (one per peer)", batches)
	}
	if got := h.bases[0].Gossip.QueuedTxs(); got != 0 {
		t.Fatalf("queued after flush = %d, want 0", got)
	}

	// Delivery pools all three at each peer; the peers re-queue them for
	// their own relay (minus the sender) rather than echoing immediately.
	h.pump()
	if h.bases[1].Pool.Len() != 3 || h.bases[2].Pool.Len() != 3 {
		t.Fatal("peers did not pool the batched transactions")
	}
	if got := h.bases[1].Gossip.QueuedTxs(); got != 3 {
		t.Fatalf("peer re-relay queued = %d, want 3 (one peer besides the sender)", got)
	}

	// One envelope per batch beats per-tx framing.
	batch := &node.TxBatchMsg{Txs: []*types.Transaction{
		relayTx(t, key, 7), relayTx(t, key, 8), relayTx(t, key, 9),
	}}
	var singles int
	for _, tx := range batch.Txs {
		singles += (&node.TxMsg{Tx: tx}).Size()
	}
	if batch.Size() >= singles {
		t.Fatalf("batch size %d not smaller than %d for per-tx relay", batch.Size(), singles)
	}
}
