package node

import "bitcoinng/internal/types"

// TxPool is the transaction-pool interface a node's block assembly draws
// from. internal/mempool provides the general implementation; the experiment
// harness substitutes a shared-workload pool that holds one copy of the
// artificial transaction set for all thousand nodes (§7 "No Transaction
// Propagation" pre-loads identical pools everywhere).
type TxPool interface {
	// Add inserts a loose transaction (live relay and wallets).
	Add(tx *types.Transaction) error
	// Select returns transactions fitting maxBytes, in the pool's
	// deterministic order, without removing them.
	Select(maxBytes int) []*types.Transaction
	// RemoveConfirmed drops transactions confirmed by a connected block
	// and anything conflicting with them.
	RemoveConfirmed(txs []*types.Transaction)
	// Reinsert returns transactions from a disconnected block.
	Reinsert(txs []*types.Transaction)
	// Len reports the number of pending transactions.
	Len() int
}
