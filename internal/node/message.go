package node

import (
	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
	"bitcoinng/internal/wire"
)

// BlockID identifies a block in gossip and metrics events.
type BlockID = crypto.Hash

// BlockInfo is the generation-time metadata the metrics registry keeps per
// block (the simulator's equivalent of the paper's instrumented logs).
type BlockInfo struct {
	ID       BlockID
	Parent   BlockID
	Kind     types.BlockKind
	Time     int64 // header timestamp, Unix nanos
	Size     int   // wire size in bytes
	Payload  int   // bytes of regular-transaction payload
	TxCount  int   // regular transactions carried
	Work     bool  // carries proof-of-work weight
	MinerID  int   // generating node
	LeaderID int   // for microblocks: the epoch leader (== MinerID)
}

// InfoFor builds BlockInfo for a freshly generated block.
func InfoFor(b types.Block, minerID int) BlockInfo {
	info := BlockInfo{
		ID:       b.Hash(),
		Parent:   b.PrevHash(),
		Kind:     b.Kind(),
		Time:     b.Time(),
		Size:     b.WireSize(),
		Work:     b.Kind() != types.KindMicro,
		MinerID:  minerID,
		LeaderID: minerID,
	}
	for _, tx := range b.Transactions() {
		if tx.Kind == types.TxRegular {
			info.TxCount++
			info.Payload += tx.WireSize()
		}
	}
	return info
}

// Message is a gossip-layer message. Concrete types are InvMsg, GetDataMsg,
// BlockMsg, and TxMsg. Size reports the bytes the network model charges,
// matching what the TCP framing would send.
type Message interface {
	// Size returns the framed wire size in bytes.
	Size() int
	// Type returns the envelope message type.
	Type() wire.MsgType
}

// envelopeOverhead is the framing cost per message (magic + type + length +
// checksum), mirroring wire.Envelope.
const envelopeOverhead = 13

// invItemSize is one announced hash plus its type tag.
const invItemSize = 33

// Inv names one announced or requested block.
type Inv struct {
	Type wire.MsgType // MsgBlock, MsgKeyBlock, or MsgMicroBlock
	Hash BlockID
}

// InvMsg announces inventory to a peer ("Any miner may add a valid block to
// the chain by simply publishing it over an overlay network", §3 — relay is
// announce/request/deliver like the operational client's inv/getdata).
type InvMsg struct {
	Items []Inv
}

// Size implements Message.
func (m *InvMsg) Size() int { return envelopeOverhead + 1 + invItemSize*len(m.Items) }

// Type implements Message.
func (m *InvMsg) Type() wire.MsgType { return wire.MsgInv }

// GetDataMsg requests previously announced inventory.
type GetDataMsg struct {
	Items []Inv
}

// Size implements Message.
func (m *GetDataMsg) Size() int { return envelopeOverhead + 1 + invItemSize*len(m.Items) }

// Type implements Message.
func (m *GetDataMsg) Type() wire.MsgType { return wire.MsgGetData }

// BlockMsg delivers a full block.
type BlockMsg struct {
	Block types.Block
}

// Size implements Message.
func (m *BlockMsg) Size() int { return envelopeOverhead + m.Block.WireSize() }

// Type implements Message.
func (m *BlockMsg) Type() wire.MsgType { return types.BlockMsgType(m.Block) }

// GetBlocksMsg asks a peer for the main-chain blocks after the fork point: the
// locator lists block hashes from the requester's tip back to genesis with
// exponentially growing gaps (the operational client's getblocks shape), so
// the responder can find the highest common block with O(log height) entries.
type GetBlocksMsg struct {
	Locator []BlockID
}

// Size implements Message.
func (m *GetBlocksMsg) Size() int {
	return envelopeOverhead + compactSizeLen(len(m.Locator)) + crypto.HashSize*len(m.Locator)
}

// Type implements Message.
func (m *GetBlocksMsg) Type() wire.MsgType { return wire.MsgGetBlocks }

// BlockBatchMsg answers GetBlocksMsg with a bounded run of main-chain blocks
// in parent-before-child order. More signals the responder's chain continued
// past the batch limit, telling the requester to ask again from its new tip.
type BlockBatchMsg struct {
	Blocks []types.Block
	More   bool
}

// Size implements Message.
func (m *BlockBatchMsg) Size() int {
	n := envelopeOverhead + compactSizeLen(len(m.Blocks)) + 1
	for _, b := range m.Blocks {
		n += compactSizeLen(b.WireSize()) + b.WireSize()
	}
	return n
}

// Type implements Message.
func (m *BlockBatchMsg) Type() wire.MsgType { return wire.MsgBlockBatch }

// TxMsg relays a loose transaction (used by the live node; experiments
// pre-load mempools instead, §7 "No Transaction Propagation").
type TxMsg struct {
	Tx *types.Transaction
}

// Size implements Message.
func (m *TxMsg) Size() int { return envelopeOverhead + m.Tx.WireSize() }

// Type implements Message.
func (m *TxMsg) Type() wire.MsgType { return wire.MsgTx }

// TxBatchMsg relays several loose transactions in one envelope. Under
// sustained load the per-transaction envelope and event overhead of TxMsg
// dominates relay cost; batching amortizes it (enabled by
// Params.TxBatchInterval).
type TxBatchMsg struct {
	Txs []*types.Transaction
}

// Size implements Message.
func (m *TxBatchMsg) Size() int {
	n := envelopeOverhead + compactSizeLen(len(m.Txs))
	for _, tx := range m.Txs {
		n += compactSizeLen(tx.WireSize()) + tx.WireSize()
	}
	return n
}

// Type implements Message.
func (m *TxBatchMsg) Type() wire.MsgType { return wire.MsgTxBatch }

// compactSizeLen is the encoded size of a CompactSize count.
func compactSizeLen(n int) int {
	switch {
	case n < 0xfd:
		return 1
	case n <= 0xffff:
		return 3
	case n <= 0xffffffff:
		return 5
	}
	return 9
}
