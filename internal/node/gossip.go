package node

import (
	"slices"
	"time"

	"bitcoinng/internal/types"
)

// defaultFetchTimeout is the base re-request backoff for a requested block,
// when Params.FetchTimeout is unset.
const defaultFetchTimeout = 20 * time.Second

// maxFetchAttempts bounds how many getdata requests one fetch issues before
// giving up (a future inv restarts it, and the catch-up syncer covers nodes
// that fell genuinely behind).
const maxFetchAttempts = 4

// fetchJitter is the proportional jitter band on each backoff interval:
// timeouts are multiplied by a factor drawn uniformly from [1, 1+fetchJitter).
const fetchJitter = 0.25

// fetchTimeout resolves the configured base re-request timeout.
func (g *Gossip) fetchTimeout() time.Duration {
	if t := g.base.State.Params().FetchTimeout; t > 0 {
		return t
	}
	return defaultFetchTimeout
}

// fetchBackoff is the wait before retry number attempt (0-based): capped
// exponential growth from the base timeout, with multiplicative jitter drawn
// from the node's injected deterministic stream so simultaneous retries
// across the network decorrelate without breaking replay.
func (g *Gossip) fetchBackoff(attempt int) time.Duration {
	d := g.fetchTimeout() * (1 << attempt)
	if cap := 8 * g.fetchTimeout(); d > cap {
		d = cap
	}
	return time.Duration(float64(d) * (1 + fetchJitter*g.env.Rand().Float64()))
}

// pendingFetch tracks an outstanding getdata. The request message is built
// once and reused across retry rounds (messages are read-only after send).
type pendingFetch struct {
	req        GetDataMsg
	announcers []int // peers that announced it, in order heard
	attempts   int   // requests sent so far; also indexes the rotation
	timer      Timer
}

func newPendingFetch(inv Inv, from int) *pendingFetch {
	pf := &pendingFetch{announcers: []int{from}}
	pf.req.Items = []Inv{inv}
	return pf
}

func (pf *pendingFetch) hash() BlockID { return pf.req.Items[0].Hash }

// Gossip implements inventory-based block relay over Env: announce new
// blocks with inv, request unknown announcements with getdata, deliver with
// block messages, and re-request from alternate announcers on timeout.
type Gossip struct {
	env  Env
	base *Base

	pending map[BlockID]*pendingFetch

	// knownHash/knownBy, while a fetched block is being processed, name the
	// peers that announced it to us: they provably have it, so the relay
	// suppresses the useless inv back to them (the operational client's
	// known-inventory filtering). Valid only for the duration of the
	// handleBlock call that set them.
	knownHash BlockID
	knownBy   []int

	// txQueue coalesces outgoing loose transactions per peer while the
	// flush timer runs (Params.TxBatchInterval > 0). Flushes iterate
	// env.Peers() order, never the map, so send order is deterministic.
	txQueue map[int][]*types.Transaction
	txFlush Timer
}

// NewGossip wires a relay for base.
func NewGossip(env Env, base *Base) *Gossip {
	return &Gossip{env: env, base: base, pending: make(map[BlockID]*pendingFetch)}
}

// Announce sends an inv for b to every peer except `except` (the peer the
// block came from; pass -1 to reach everyone) and except peers that already
// announced the block to us. One message object fans out to all peers:
// gossip messages are read-only after send, so the simulated network can
// deliver the same object everywhere.
func (g *Gossip) Announce(b types.Block, except int) {
	h := b.Hash()
	var known []int
	if h == g.knownHash {
		known = g.knownBy
	}
	msg := &InvMsg{Items: []Inv{{Type: types.BlockMsgType(b), Hash: h}}}
	for _, p := range g.env.Peers() {
		if p == except || slices.Contains(known, p) {
			continue
		}
		g.env.Send(p, msg)
	}
}

// maxInvItems bounds accepted inv/getdata item lists; an oversized message is
// a protocol violation and is ignored whole rather than partially honored.
const maxInvItems = 1024

// HandleMessage dispatches one gossip message. Unknown message types are
// ignored (forward compatibility), and malformed payloads — nil blocks or
// transactions, oversized item lists — are dropped without reaching protocol
// code, so a byzantine peer cannot panic the node.
func (g *Gossip) HandleMessage(from int, msg Message) {
	switch m := msg.(type) {
	case *InvMsg:
		if len(m.Items) > maxInvItems {
			return
		}
		g.handleInv(from, m)
	case *GetDataMsg:
		if len(m.Items) > maxInvItems {
			return
		}
		g.handleGetData(from, m)
	case *BlockMsg:
		if m.Block == nil {
			return
		}
		g.handleBlock(from, m)
	case *TxMsg:
		g.base.handleTx(from, m.Tx)
	case *TxBatchMsg:
		for _, tx := range m.Txs {
			g.base.handleTx(from, tx)
		}
	case *GetBlocksMsg:
		g.base.Sync.handleGetBlocks(from, m)
	case *BlockBatchMsg:
		g.base.Sync.handleBlockBatch(from, m)
	}
}

// RelayTx forwards a loose transaction to every peer except `except` (-1
// reaches everyone). With Params.TxBatchInterval unset each transaction goes
// out immediately in its own TxMsg; otherwise transactions coalesce per
// peer until one shared flush timer fires.
func (g *Gossip) RelayTx(tx *types.Transaction, except int) {
	interval := g.base.State.Params().TxBatchInterval
	if interval <= 0 {
		msg := &TxMsg{Tx: tx}
		for _, p := range g.env.Peers() {
			if p == except {
				continue
			}
			g.env.Send(p, msg)
		}
		return
	}
	if g.txQueue == nil {
		g.txQueue = make(map[int][]*types.Transaction)
	}
	for _, p := range g.env.Peers() {
		if p == except {
			continue
		}
		g.txQueue[p] = append(g.txQueue[p], tx)
	}
	if g.txFlush == nil {
		g.txFlush = g.env.After(interval, g.flushTxs)
	}
}

// flushTxs drains the per-peer transaction queues, one txbatch per peer
// with queued traffic, in env.Peers() order.
func (g *Gossip) flushTxs() {
	g.txFlush = nil
	for _, p := range g.env.Peers() {
		q := g.txQueue[p]
		if len(q) == 0 {
			continue
		}
		delete(g.txQueue, p)
		g.env.Send(p, &TxBatchMsg{Txs: q})
	}
	// A peer that vanished from Peers() between queue and flush would leak
	// its queue; drop any leftovers.
	clear(g.txQueue)
}

// QueuedTxs returns how many transactions await a relay flush (diagnostics
// and backpressure sampling).
func (g *Gossip) QueuedTxs() int {
	n := 0
	for _, q := range g.txQueue {
		n += len(q)
	}
	return n
}

func (g *Gossip) handleInv(from int, m *InvMsg) {
	for _, inv := range m.Items {
		if g.base.State.HasBlock(inv.Hash) {
			continue
		}
		if pf, ok := g.pending[inv.Hash]; ok {
			// Already fetching: remember this announcer as a fallback.
			pf.announcers = append(pf.announcers, from)
			continue
		}
		pf := newPendingFetch(inv, from)
		g.pending[inv.Hash] = pf
		g.request(pf)
	}
}

// request asks an announcer for the block and arms the backoff timer. The
// first request goes to the first announcer heard; each timeout rotates to
// the next announcer (wrapping, so a single source still gets every retry)
// under a capped exponential backoff, until maxFetchAttempts is exhausted.
func (g *Gossip) request(pf *pendingFetch) {
	if pf.attempts >= maxFetchAttempts {
		// Out of retries; give up the targeted fetch and fall back to
		// catch-up sync toward the last announcer asked — if the block still
		// matters we are likely behind by more than one fetch can bridge.
		delete(g.pending, pf.hash())
		g.base.Sync.Start(pf.announcers[(pf.attempts-1)%len(pf.announcers)])
		return
	}
	peer := pf.announcers[pf.attempts%len(pf.announcers)]
	backoff := g.fetchBackoff(pf.attempts)
	pf.attempts++
	g.env.Send(peer, &pf.req)
	pf.timer = g.env.After(backoff, func() {
		pf.timer = nil
		// The identity check (not just presence) guards against a stale
		// timer driving a superseded fetch: acting on pf after the map
		// entry was replaced would re-request from the old announcer list
		// and arm a second timer for the same hash.
		if g.pending[pf.hash()] != pf {
			return
		}
		// A block can enter the chain without passing through handleBlock
		// — injected directly by a harness (equivocation delivery) or
		// adopted from the orphan stash — leaving its fetch entry armed.
		// Without this check the timer keeps re-requesting a block the
		// node already has until the announcer list runs dry.
		if g.base.State.HasBlock(pf.hash()) {
			delete(g.pending, pf.hash())
			return
		}
		g.request(pf)
	})
}

func (g *Gossip) handleGetData(from int, m *GetDataMsg) {
	for _, inv := range m.Items {
		n, ok := g.base.State.Store().Get(inv.Hash)
		if !ok {
			continue // we never announce what we don't have; stale request
		}
		g.env.Send(from, &BlockMsg{Block: n.Block()})
	}
}

func (g *Gossip) handleBlock(from int, m *BlockMsg) {
	h := m.Block.Hash()
	if pf, ok := g.pending[h]; ok {
		if pf.timer != nil {
			pf.timer.Stop()
		}
		delete(g.pending, h)
		// Everyone who announced the block provably has it; the Announce
		// issued while processing skips them.
		g.knownHash, g.knownBy = h, pf.announcers
	}
	g.base.ProcessFn(m.Block, from)
	g.knownHash, g.knownBy = BlockID{}, nil
}

// PendingFetches returns how many block fetches are outstanding
// (diagnostics and leak tests).
func (g *Gossip) PendingFetches() int { return len(g.pending) }

// RequestBlock explicitly fetches a block from a specific peer (used to
// chase an orphan's missing parent).
func (g *Gossip) RequestBlock(inv Inv, from int) {
	if g.base.State.HasBlock(inv.Hash) {
		return
	}
	if pf, ok := g.pending[inv.Hash]; ok {
		pf.announcers = append(pf.announcers, from)
		return
	}
	pf := newPendingFetch(inv, from)
	g.pending[inv.Hash] = pf
	g.request(pf)
}
