package node

import (
	"time"

	"bitcoinng/internal/types"
)

// fetchTimeout is how long to wait for a requested block before asking the
// next peer that announced it.
const fetchTimeout = 20 * time.Second

// pendingFetch tracks an outstanding getdata.
type pendingFetch struct {
	inv        Inv
	announcers []int // peers that announced it, in order heard
	asked      int   // how many announcers were tried
	timer      Timer
}

// Gossip implements inventory-based block relay over Env: announce new
// blocks with inv, request unknown announcements with getdata, deliver with
// block messages, and re-request from alternate announcers on timeout.
type Gossip struct {
	env  Env
	base *Base

	pending map[BlockID]*pendingFetch
}

// NewGossip wires a relay for base.
func NewGossip(env Env, base *Base) *Gossip {
	return &Gossip{env: env, base: base, pending: make(map[BlockID]*pendingFetch)}
}

// Announce sends an inv for b to every peer except `except` (the peer the
// block came from; pass -1 to reach everyone).
func (g *Gossip) Announce(b types.Block, except int) {
	inv := Inv{Type: types.BlockMsgType(b), Hash: b.Hash()}
	for _, p := range g.env.Peers() {
		if p == except {
			continue
		}
		g.env.Send(p, &InvMsg{Items: []Inv{inv}})
	}
}

// HandleMessage dispatches one gossip message. Unknown message types are
// ignored (forward compatibility).
func (g *Gossip) HandleMessage(from int, msg Message) {
	switch m := msg.(type) {
	case *InvMsg:
		g.handleInv(from, m)
	case *GetDataMsg:
		g.handleGetData(from, m)
	case *BlockMsg:
		g.handleBlock(from, m)
	case *TxMsg:
		g.base.handleTx(from, m.Tx)
	}
}

func (g *Gossip) handleInv(from int, m *InvMsg) {
	for _, inv := range m.Items {
		if g.base.State.HasBlock(inv.Hash) {
			continue
		}
		if pf, ok := g.pending[inv.Hash]; ok {
			// Already fetching: remember this announcer as a fallback.
			pf.announcers = append(pf.announcers, from)
			continue
		}
		pf := &pendingFetch{inv: inv, announcers: []int{from}}
		g.pending[inv.Hash] = pf
		g.request(pf)
	}
}

// request asks the next untried announcer for the block and arms the retry
// timer.
func (g *Gossip) request(pf *pendingFetch) {
	if pf.asked >= len(pf.announcers) {
		// Out of sources; give up. A future inv restarts the fetch.
		delete(g.pending, pf.inv.Hash)
		return
	}
	peer := pf.announcers[pf.asked]
	pf.asked++
	g.env.Send(peer, &GetDataMsg{Items: []Inv{pf.inv}})
	pf.timer = g.env.After(fetchTimeout, func() {
		if _, still := g.pending[pf.inv.Hash]; still {
			g.request(pf)
		}
	})
}

func (g *Gossip) handleGetData(from int, m *GetDataMsg) {
	for _, inv := range m.Items {
		n, ok := g.base.State.Store().Get(inv.Hash)
		if !ok {
			continue // we never announce what we don't have; stale request
		}
		g.env.Send(from, &BlockMsg{Block: n.Block})
	}
}

func (g *Gossip) handleBlock(from int, m *BlockMsg) {
	h := m.Block.Hash()
	if pf, ok := g.pending[h]; ok {
		if pf.timer != nil {
			pf.timer.Stop()
		}
		delete(g.pending, h)
	}
	g.base.ProcessFn(m.Block, from)
}

// RequestBlock explicitly fetches a block from a specific peer (used to
// chase an orphan's missing parent).
func (g *Gossip) RequestBlock(inv Inv, from int) {
	if g.base.State.HasBlock(inv.Hash) {
		return
	}
	if pf, ok := g.pending[inv.Hash]; ok {
		pf.announcers = append(pf.announcers, from)
		return
	}
	pf := &pendingFetch{inv: inv, announcers: []int{from}}
	g.pending[inv.Hash] = pf
	g.request(pf)
}
