package node

import "bitcoinng/internal/types"

// Syncer is the locator-based catch-up protocol: a node that suspects it is
// behind (after a restart, or when orphan-driven fetching runs dry) sends a
// GetBlocksMsg whose locator walks its main chain with exponentially growing
// gaps; the responder finds the highest locator entry on its own main chain
// and returns the blocks after it in bounded batches. The requester re-asks
// while batches signal More, and on timeout rotates to the next peer under
// the same capped exponential backoff discipline as the gossip fetcher —
// every wait drawn from the node's injected deterministic stream, so a
// replayed seed resynchronizes identically.
type Syncer struct {
	env  Env
	base *Base

	active   bool
	peer     int // peer the outstanding request went to
	rotation int // cursor into env.Peers() for timeout rotation
	attempt  int // consecutive timeouts since the last useful batch
	timer    Timer
}

const (
	// syncBatchSize bounds how many blocks one BlockBatchMsg carries.
	syncBatchSize = 32
	// maxLocatorLen bounds accepted locators (a well-formed locator for a
	// chain of 2^50 blocks is still under this).
	maxLocatorLen = 64
	// maxSyncBatch bounds accepted batches; anything larger is a protocol
	// violation and is ignored whole.
	maxSyncBatch = 4 * syncBatchSize
)

func newSyncer(env Env, base *Base) *Syncer {
	return &Syncer{env: env, base: base, peer: -1}
}

// Active reports whether a catch-up exchange is in flight.
func (s *Syncer) Active() bool { return s.active }

// Start begins (or re-kicks) catch-up sync. preferred, when a valid peer id,
// receives the first request — restarted nodes pass -1 and take the rotation
// order; orphan-path kicks pass the peer that revealed the gap. A Start while
// a sync is already in flight is a no-op: the running exchange covers it.
func (s *Syncer) Start(preferred int) {
	if s.active {
		return
	}
	peers := s.env.Peers()
	if len(peers) == 0 {
		return
	}
	s.active = true
	s.attempt = 0
	if preferred >= 0 {
		for _, p := range peers {
			if p == preferred {
				s.requestFrom(preferred)
				return
			}
		}
	}
	s.requestFrom(s.nextPeer())
}

// nextPeer advances the rotation cursor.
func (s *Syncer) nextPeer() int {
	peers := s.env.Peers()
	p := peers[s.rotation%len(peers)]
	s.rotation++
	return p
}

// requestFrom sends one GetBlocksMsg and arms the response timeout.
func (s *Syncer) requestFrom(peer int) {
	s.peer = peer
	s.env.Send(peer, &GetBlocksMsg{Locator: s.locator()})
	s.timer = s.env.After(s.base.Gossip.fetchBackoff(s.attempt), s.onTimeout)
}

// onTimeout rotates to the next peer under growing backoff. There is no
// give-up: a response (even an empty "nothing newer" one) is the only exit,
// so a node cut off by loss or partition keeps probing at the capped rate
// until the network lets it converge.
func (s *Syncer) onTimeout() {
	s.timer = nil
	if !s.active {
		return
	}
	s.attempt++
	p := s.nextPeer()
	if p == s.peer && len(s.env.Peers()) > 1 {
		// A timeout means the asked peer is unresponsive; with alternatives
		// available the retry must go elsewhere, not back to it.
		p = s.nextPeer()
	}
	s.requestFrom(p)
}

// locator lists block hashes from the tip backwards: the last 10 blocks
// densely, then exponentially sparser, always ending at genesis (the
// operational client's block-locator shape).
func (s *Syncer) locator() []BlockID {
	var loc []BlockID
	step := uint64(1)
	for n := s.base.State.Tip(); n != nil; {
		loc = append(loc, n.Hash())
		if n.Height == 0 {
			break
		}
		if len(loc) >= 10 {
			step *= 2
		}
		var h uint64
		if n.Height > step {
			h = n.Height - step
		}
		n = n.AncestorAtHeight(h)
	}
	return loc
}

// handleGetBlocks serves one bounded batch after the requester's fork point.
// Malformed locators (empty or oversized) are ignored without reply.
func (s *Syncer) handleGetBlocks(from int, m *GetBlocksMsg) {
	if len(m.Locator) == 0 || len(m.Locator) > maxLocatorLen {
		return
	}
	st := s.base.State
	fork := st.Store().Genesis()
	for _, h := range m.Locator {
		if n, ok := st.Store().Get(h); ok && st.MainChainContains(n) {
			fork = n
			break
		}
	}
	mc := st.MainChain()
	start := int(fork.Height) + 1
	if start >= len(mc) {
		// Nothing newer than the requester's fork point; an empty non-More
		// batch lets its sync terminate.
		s.env.Send(from, &BlockBatchMsg{})
		return
	}
	end := start + syncBatchSize
	more := end < len(mc)
	if !more {
		end = len(mc)
	}
	batch := &BlockBatchMsg{Blocks: make([]types.Block, 0, end-start), More: more}
	for _, n := range mc[start:end] {
		batch.Blocks = append(batch.Blocks, n.Block())
	}
	s.env.Send(from, batch)
}

// handleBlockBatch ingests a sync response. Blocks flow through the normal
// ProcessFn path (validation, fraud detection, persistence, relay), in
// parent-before-child order, so a batch behaves exactly like a fast replay of
// ordinary gossip. Only a response from the currently-asked peer advances the
// sync state machine; stray or duplicated batches are ingested as free data.
func (s *Syncer) handleBlockBatch(from int, m *BlockBatchMsg) {
	if len(m.Blocks) > maxSyncBatch {
		return // protocol violation; ignore whole
	}
	for _, b := range m.Blocks {
		if b == nil {
			return // malformed
		}
		s.base.ProcessFn(b, from)
	}
	if !s.active || from != s.peer {
		return
	}
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	if m.More {
		// Progress: reset the backoff and continue with the same peer from
		// our (now advanced) tip.
		s.attempt = 0
		s.requestFrom(from)
		return
	}
	s.active = false
	s.peer = -1
}
