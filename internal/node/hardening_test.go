package node_test

import (
	"testing"

	"bitcoinng/internal/node"
	"bitcoinng/internal/types"
)

// TestMalformedMessagesDropped feeds the gossip dispatcher every class of
// malformed message a byzantine peer can produce on the simulated path — nil
// payloads, oversized item lists, bogus locators and batches — and asserts
// the node neither panics nor responds nor mutates chain state. The live TCP
// path has the mirror-image test in internal/p2p (there a malformed frame
// additionally drops the connection).
func TestMalformedMessagesDropped(t *testing.T) {
	h, genesis, key := newHarness(t, 2)
	base := h.bases[1]
	tipBefore := base.State.Tip().Hash()

	malformed := []node.Message{
		&node.BlockMsg{Block: nil},
		&node.TxMsg{Tx: nil},
		&node.TxBatchMsg{Txs: []*types.Transaction{nil, nil}},
		&node.InvMsg{Items: make([]node.Inv, 4096)},     // over maxInvItems
		&node.GetDataMsg{Items: make([]node.Inv, 4096)}, // over maxInvItems
		&node.GetBlocksMsg{},                            // empty locator
		&node.GetBlocksMsg{Locator: make([]node.BlockID, 256)}, // oversized locator
		&node.BlockBatchMsg{Blocks: []types.Block{nil}},
		&node.BlockBatchMsg{Blocks: make([]types.Block, 1024)}, // over maxSyncBatch
	}
	for _, msg := range malformed {
		base.HandleMessage(0, msg) // must not panic
	}
	if len(h.envs[1].queue) != 0 {
		t.Errorf("node replied to malformed input: %d messages queued", len(h.envs[1].queue))
	}
	if base.State.Tip().Hash() != tipBefore {
		t.Error("malformed input moved the tip")
	}
	if got := base.Gossip.PendingFetches(); got != 0 {
		t.Errorf("malformed input armed %d fetches", got)
	}
	if base.Pool.Len() != 0 {
		t.Error("malformed input pooled a transaction")
	}

	// The node is still fully functional afterwards: a legitimate block
	// relays normally.
	b1 := mineOn(t, key, genesis.Hash(), 1)
	h.bases[0].SubmitOwnBlock(b1)
	h.drain()
	if !base.State.HasBlock(b1.Hash()) {
		t.Error("node stopped relaying after malformed input")
	}
}
