package node

import (
	"bitcoinng/internal/chain"
	"bitcoinng/internal/mempool"
	"bitcoinng/internal/types"
	"bitcoinng/internal/wire"
)

// Base is the protocol-independent core of a node: chain state, mempool,
// relay, and metrics wiring. internal/bitcoin and internal/core embed it and
// add block production.
// BlockArchive is the durable-persistence hook: every block accepted into the
// tree is appended — with its local arrival time, which the first-seen
// tie-break consumes on replay — before it is relayed, so a crashed node can
// be rebuilt from its archive's prefix with the same tie-break inputs. The
// chain-index backends in internal/store implement it (in-memory for the
// default sim path, file-backed for cluster/ngnode).
type BlockArchive interface {
	Append(b types.Block, receivedAt int64) error
}

type Base struct {
	Env      Env
	State    *chain.State
	Pool     TxPool
	Gossip   *Gossip
	Sync     *Syncer
	Recorder Recorder

	// Persist, if set, receives every block accepted into the tree (before
	// relay). A persistence error is deliberately non-fatal to the node —
	// consensus must not stall on a full disk — but the block is then simply
	// not durable and a crash loses it, exactly like the operational client.
	Persist BlockArchive

	// OnTipChange, if set, runs after the main chain moves and the mempool
	// is updated. Bitcoin-NG uses it to start or stop microblock
	// production as leadership changes.
	OnTipChange func(res *chain.AddResult)

	// ProcessFn is the block-ingest entry point used by the gossip layer.
	// It defaults to ProcessBlock; protocols that wrap ingestion (e.g.
	// Bitcoin-NG's fraud detection) replace it with their own method.
	ProcessFn func(blk types.Block, from int) *chain.AddResult

	// RelayTxs enables loose-transaction relay (live nodes); experiments
	// leave it false per the paper's methodology (§7).
	RelayTxs bool
}

// NewBase wires the core. The caller supplies the chain state (built with
// its protocol's rules and fork choice).
func NewBase(env Env, st *chain.State, rec Recorder) *Base {
	if rec == nil {
		rec = NopRecorder{}
	}
	pool := mempool.New()
	// Resolve input values against the confirmed UTXO set so the pool can
	// fee-prioritize and make bounded-admission decisions. Unresolvable
	// inputs (unconfirmed parents outside the pool) degrade the rate to
	// zero rather than failing admission.
	pool.SetFeeResolver(func(op types.OutPoint) (types.Amount, bool) {
		e, ok := st.UTXO().Lookup(op)
		return e.Value, ok
	})
	b := &Base{
		Env:      env,
		State:    st,
		Pool:     pool,
		Recorder: rec,
	}
	b.Gossip = NewGossip(env, b)
	b.Sync = newSyncer(env, b)
	b.ProcessFn = b.ProcessBlock
	return b
}

// HandleMessage is the node's network entry point.
func (b *Base) HandleMessage(from int, msg Message) {
	b.Gossip.HandleMessage(from, msg)
}

// SubmitOwnBlock records and processes a self-generated block, then relays
// it. It returns the chain's verdict (always StatusMainChain for honest
// production, since nodes mine on their own tip).
func (b *Base) SubmitOwnBlock(blk types.Block) *chain.AddResult {
	b.Recorder.BlockGenerated(b.Env.NodeID(), b.Env.Now(), InfoFor(blk, b.Env.NodeID()))
	return b.ProcessFn(blk, -1)
}

// SubmitOwnBlockQuiet records and processes a self-generated block WITHOUT
// announcing it to peers — the strategy layer's withholding path. The block
// enters the local tree (the node mines on it) and stays fetchable by hash;
// a later Gossip.Announce releases it.
func (b *Base) SubmitOwnBlockQuiet(blk types.Block) *chain.AddResult {
	b.Recorder.BlockGenerated(b.Env.NodeID(), b.Env.Now(), InfoFor(blk, b.Env.NodeID()))
	return b.processBlock(blk, -1, false)
}

// ProcessBlock validates, stores, relays, and accounts a block received from
// peer `from` (-1 for self).
func (b *Base) ProcessBlock(blk types.Block, from int) *chain.AddResult {
	return b.processBlock(blk, from, true)
}

func (b *Base) processBlock(blk types.Block, from int, relay bool) *chain.AddResult {
	now := b.Env.Now()
	res, err := b.State.AddBlock(blk, now)
	if err != nil {
		// Invalid blocks are dropped silently: the sender may be
		// malicious, and Bitcoin's client likewise just rejects.
		return res
	}
	switch res.Status {
	case chain.StatusDuplicate:
		return res
	case chain.StatusOrphan:
		// Chase the missing parent from whoever sent the child. The inv
		// type tag is advisory; lookups are by hash.
		if from >= 0 {
			b.Gossip.RequestBlock(Inv{Type: wire.MsgBlock, Hash: blk.PrevHash()}, from)
		}
		return res
	}

	// Persist, account, and relay every block that entered the tree (in that
	// order: a block must be durable before the node vouches for it to
	// peers; withheld blocks skip only the relay).
	for _, n := range res.Added {
		if b.Persist != nil {
			_ = b.Persist.Append(n.Block(), n.ReceivedAt) // non-fatal: see Persist docs
		}
		b.Recorder.BlockAccepted(b.Env.NodeID(), now, n.Hash())
		if relay {
			b.Gossip.Announce(n.Block(), from)
		}
	}

	if res.TipChanged() {
		for _, n := range res.Disconnected {
			b.Pool.Reinsert(n.Block().Transactions())
		}
		for _, n := range res.Connected {
			b.Pool.RemoveConfirmed(n.Block().Transactions())
		}
		b.Recorder.TipChanged(b.Env.NodeID(), now, b.State.Tip().Hash(),
			ids(res.Connected), ids(res.Disconnected))
		if b.OnTipChange != nil {
			b.OnTipChange(res)
		}
	}
	return res
}

// handleTx pools and optionally relays a loose transaction.
func (b *Base) handleTx(from int, tx *types.Transaction) {
	if tx == nil {
		return // malformed relay; never let a byzantine peer panic the node
	}
	if err := tx.CheckWellFormed(); err != nil {
		return
	}
	if err := b.Pool.Add(tx); err != nil {
		return // duplicate or conflicting
	}
	if !b.RelayTxs {
		return
	}
	b.Gossip.RelayTx(tx, from)
}

// SubmitTx inserts a locally created transaction (wallet path) and relays it
// when RelayTxs is on.
func (b *Base) SubmitTx(tx *types.Transaction) error {
	if err := tx.CheckWellFormed(); err != nil {
		return err
	}
	if err := b.Pool.Add(tx); err != nil {
		return err
	}
	if b.RelayTxs {
		b.Gossip.RelayTx(tx, -1)
	}
	return nil
}

func ids(nodes []*chain.Node) []BlockID {
	out := make([]BlockID, len(nodes))
	for i, n := range nodes {
		out[i] = n.Hash()
	}
	return out
}
