package sim

import (
	"fmt"
	"testing"
	"time"
)

// shardedHarness is a toy multi-node message simulation used to cross-check
// the sharded engine against the sequential loop: n nodes, each with a timer
// process, exchanging messages whose delay is at least minDelay.
type toyNode struct {
	id      int
	loop    *Loop
	log     *[]string
	counter int
}

// toyMsg is a cross-node message; in sharded mode it is routed through the
// outbox the way simnet routes deliveries.
type toyMsg struct {
	to      *toyNode
	payload int
}

func (m *toyMsg) Run() {
	n := m.to
	*n.log = append(*n.log, fmt.Sprintf("%d recv %d @%d", n.id, m.payload, n.loop.Now()))
}

// runToy executes the same deterministic workload on either engine and
// returns the merged, per-node-ordered log. send delays are ≥ minDelay so a
// lookahead of minDelay is valid.
func runToy(t *testing.T, shards int, until int64) []string {
	t.Helper()
	const nodes = 6
	const minDelay = 50

	var sl *ShardedLoop
	loopFor := make([]*Loop, nodes)
	shardOf := make([]int, nodes)
	if shards == 1 {
		l := NewLoop(0)
		for i := range loopFor {
			loopFor[i] = l
		}
	} else {
		sl = NewShardedLoop(0, shards)
		sl.SetLookahead(minDelay)
		defer sl.Close()
		for i := range loopFor {
			shardOf[i] = i % shards
			loopFor[i] = sl.Shard(i % shards)
		}
	}

	logs := make([][]string, nodes)
	ns := make([]*toyNode, nodes)
	for i := range ns {
		ns[i] = &toyNode{id: i, loop: loopFor[i], log: &logs[i]}
	}

	// Cross-shard sends go through per-shard outboxes, merged at barriers in
	// (arrival, sendTime, shard) order with the send time as heap priority —
	// the same protocol simnet uses.
	type pending struct {
		arrival, sent int64
		msg           *toyMsg
	}
	outbox := make([][]pending, shards)
	send := func(from, to, payload int, delay int64) {
		l := loopFor[from]
		arrival := l.Now() + delay
		m := &toyMsg{to: ns[to], payload: payload}
		if shards == 1 || shardOf[from] == shardOf[to] {
			l.PostEvent(arrival, m)
			return
		}
		outbox[shardOf[from]] = append(outbox[shardOf[from]], pending{arrival, l.Now(), m})
	}
	if sl != nil {
		sl.OnBarrier(func() {
			var all []pending
			for s := range outbox {
				all = append(all, outbox[s]...)
				outbox[s] = outbox[s][:0]
			}
			// Stable insertion sort by (arrival, sent); concatenation order
			// keeps the shard tie-break.
			for i := 1; i < len(all); i++ {
				for j := i; j > 0 && (all[j].arrival < all[j-1].arrival ||
					(all[j].arrival == all[j-1].arrival && all[j].sent < all[j-1].sent)); j-- {
					all[j], all[j-1] = all[j-1], all[j]
				}
			}
			for _, p := range all {
				loopFor[p.msg.to.id].PostEventPrio(p.arrival, p.sent, p.msg)
			}
		})
	}

	// Deterministic per-node timer processes: node i ticks every 7+i units,
	// sending to (i+1)%n and (i+3)%n with delays derived from the tick. The
	// sender id lands in the delay's low bits so two different senders never
	// produce the same (send time, arrival time) pair — the full double-tie
	// the engine's determinism guarantee excludes (see ShardedLoop doc) —
	// while same-arrival ties across *different* send times (which the
	// priority key must resolve) stay plentiful.
	for i := range ns {
		i := i
		var tick func()
		period := int64(7 + i)
		tick = func() {
			n := ns[i]
			n.counter++
			*n.log = append(*n.log, fmt.Sprintf("%d tick %d @%d", i, n.counter, n.loop.Now()))
			send(i, (i+1)%nodes, n.counter, minDelay+16*int64(n.counter%17)+int64(i))
			send(i, (i+3)%nodes, -n.counter, minDelay+16*int64((n.counter*5)%13)+int64(i))
			n.loop.After(time.Duration(period), tick)
		}
		loopFor[i].After(time.Duration(period), tick)
	}

	if sl != nil {
		sl.RunUntil(until)
	} else {
		loopFor[0].RunUntil(until)
	}

	var merged []string
	for i := range logs {
		merged = append(merged, logs[i]...)
	}
	return merged
}

// TestShardedMatchesSequential runs the toy workload on 1, 2, 3, and 5
// shards and requires identical per-node event logs.
func TestShardedMatchesSequential(t *testing.T) {
	want := runToy(t, 1, 2000)
	if len(want) == 0 {
		t.Fatal("sequential run produced no events")
	}
	for _, shards := range []int{2, 3, 5} {
		got := runToy(t, shards, 2000)
		if len(got) != len(want) {
			t.Fatalf("%d shards: %d events, want %d", shards, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%d shards: event %d = %q, want %q", shards, i, got[i], want[i])
			}
		}
	}
}

// TestShardedGlobalEvents checks that globals fire at their exact virtual
// time, before same-instant shard events, in scheduling order.
func TestShardedGlobalEvents(t *testing.T) {
	sl := NewShardedLoop(0, 2)
	defer sl.Close()
	sl.SetLookahead(10)

	var order []string
	sl.Shard(0).At(100, func() { order = append(order, "shard@100") })
	sl.Shard(1).At(150, func() { order = append(order, "shard@150") })
	sl.ScheduleGlobal(100, func() {
		order = append(order, fmt.Sprintf("globalA@%d", sl.Now()))
	})
	sl.ScheduleGlobal(100, func() { order = append(order, "globalB") })

	sl.RunUntil(200)
	want := []string{"globalA@100", "globalB", "shard@100", "shard@150"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if sl.Now() != 200 {
		t.Fatalf("Now() = %d, want 200", sl.Now())
	}
	if sl.Executed() != 4 { // 2 shard events + 2 globals
		t.Fatalf("Executed() = %d, want 4", sl.Executed())
	}
}

// TestShardedGlobalSeesAlignedClocks: a global scheduled between events must
// observe every shard clock at exactly its instant.
func TestShardedGlobalSeesAlignedClocks(t *testing.T) {
	sl := NewShardedLoop(0, 3)
	defer sl.Close()
	sl.SetLookahead(5)
	sl.Shard(2).At(500, func() {})
	sl.ScheduleGlobal(123, func() {
		for i := 0; i < sl.Shards(); i++ {
			if got := sl.Shard(i).Now(); got != 123 {
				t.Errorf("shard %d clock = %d at global, want 123", i, got)
			}
		}
	})
	sl.RunUntil(1000)
}

// TestShardedWindowRespectsLookahead: an event posted cross-window must not
// fire before a barrier has run.
func TestShardedBarrierHookRuns(t *testing.T) {
	sl := NewShardedLoop(0, 2)
	defer sl.Close()
	sl.SetLookahead(10)
	barriers := 0
	sl.OnBarrier(func() { barriers++ })
	for i := int64(1); i <= 5; i++ {
		sl.Shard(0).At(i*100, func() {})
	}
	sl.RunUntil(1000)
	if barriers == 0 {
		t.Fatal("barrier hook never ran")
	}
	if sl.Executed() != 5 {
		t.Fatalf("Executed() = %d, want 5", sl.Executed())
	}
}

// TestShardedPanicPropagates: a panic on a shard goroutine surfaces on the
// driver with the shard's stack, instead of deadlocking.
func TestShardedPanicPropagates(t *testing.T) {
	sl := NewShardedLoop(0, 2)
	defer sl.Close()
	sl.Shard(1).At(10, func() { panic("boom") })
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic to propagate")
		}
	}()
	sl.RunUntil(100)
}

// TestShardedEmptyJump: with no events pending, RunUntil must not iterate
// windows (it jumps straight to the deadline).
func TestShardedEmptyJump(t *testing.T) {
	sl := NewShardedLoop(0, 4)
	defer sl.Close()
	sl.SetLookahead(1) // worst case window size
	windows := 0
	sl.OnBarrier(func() { windows++ })
	sl.RunUntil(int64(time.Hour))
	if windows > 1 {
		t.Fatalf("empty run used %d windows, want ≤ 1", windows)
	}
}
