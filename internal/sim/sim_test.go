package sim

import (
	"math"
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	l := NewLoop(0)
	var order []int
	l.At(30, func() { order = append(order, 3) })
	l.At(10, func() { order = append(order, 1) })
	l.At(20, func() { order = append(order, 2) })
	l.Drain(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if l.Now() != 30 {
		t.Errorf("clock = %d", l.Now())
	}
	if l.Executed() != 3 {
		t.Errorf("executed = %d", l.Executed())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	l := NewLoop(0)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		l.At(5, func() { order = append(order, i) })
	}
	l.Drain(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events misordered: %v", order)
		}
	}
}

func TestTimerStop(t *testing.T) {
	l := NewLoop(0)
	fired := false
	tm := l.At(10, func() { fired = true })
	if !tm.Stop() {
		t.Error("Stop returned false for pending timer")
	}
	if tm.Stop() {
		t.Error("second Stop returned true")
	}
	l.Drain(0)
	if fired {
		t.Error("stopped timer fired")
	}
}

func TestPastEventsFireNow(t *testing.T) {
	l := NewLoop(100)
	var at int64
	l.At(50, func() { at = l.Now() })
	l.Drain(0)
	if at != 100 {
		t.Errorf("past event fired at %d", at)
	}
}

func TestRunUntil(t *testing.T) {
	l := NewLoop(0)
	var fired []int64
	for _, at := range []int64{10, 20, 30, 40} {
		at := at
		l.At(at, func() { fired = append(fired, at) })
	}
	l.RunUntil(25)
	if len(fired) != 2 {
		t.Errorf("fired %v before deadline 25", fired)
	}
	if l.Now() != 25 {
		t.Errorf("clock = %d, want 25", l.Now())
	}
	l.RunFor(time.Duration(15))
	if len(fired) != 4 || l.Now() != 40 {
		t.Errorf("fired %v clock %d", fired, l.Now())
	}
	// RunUntil past the last event advances the clock to the deadline.
	l.RunUntil(100)
	if l.Now() != 100 {
		t.Errorf("clock = %d, want 100", l.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	l := NewLoop(0)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			l.After(10, tick)
		}
	}
	l.After(10, tick)
	l.Drain(0)
	if count != 5 || l.Now() != 50 {
		t.Errorf("count = %d clock = %d", count, l.Now())
	}
}

func TestDrainGuard(t *testing.T) {
	l := NewLoop(0)
	var tick func()
	tick = func() { l.After(1, tick) } // endless
	l.After(1, tick)
	l.Drain(100)
	if l.Executed() != 100 {
		t.Errorf("executed = %d, want 100", l.Executed())
	}
}

func TestDeriveSeedIndependence(t *testing.T) {
	seen := make(map[int64]bool)
	for stream := uint64(0); stream < 1000; stream++ {
		s := DeriveSeed(42, stream)
		if seen[s] {
			t.Fatalf("seed collision at stream %d", stream)
		}
		seen[s] = true
	}
	if DeriveSeed(42, 0) == DeriveSeed(43, 0) {
		t.Error("different base seeds gave the same derived seed")
	}
	if DeriveSeed(42, 7) != DeriveSeed(42, 7) {
		t.Error("derive not deterministic")
	}
}

func TestExponentialMean(t *testing.T) {
	rng := NewRand(1, 0)
	const mean = 1e9
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(Exponential(rng, mean))
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.05 {
		t.Errorf("sample mean %.3g, want ~%.3g", got, mean)
	}
}

func TestExponentialNeverZero(t *testing.T) {
	rng := NewRand(2, 0)
	for i := 0; i < 1000; i++ {
		if Exponential(rng, 0.001) < 1 {
			t.Fatal("Exponential returned < 1ns")
		}
	}
}
