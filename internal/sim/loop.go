// Package sim is a deterministic discrete-event simulation kernel: a virtual
// clock, an ordered event queue, and seeded random streams.
//
// It is the substrate that replaces the paper's 1000-node hardware emulation
// testbed (§7): protocol nodes run unchanged against a virtual clock, so a
// thousand nodes running hours of protocol time execute in seconds of wall
// time, with every run exactly reproducible from its seed.
package sim

import (
	"time"
)

// Timestamps are Unix nanoseconds on the virtual clock; durations are
// time.Duration as usual.

// Timer is a scheduled callback that can be cancelled. Only At hands out
// timers; the PostEvent fast path schedules fire-and-forget events with no
// cancellation handle and no per-event allocation.
type Timer struct {
	loop  *Loop
	index int // heap index, -1 when fired or stopped
}

// Stop cancels the timer; it reports whether the callback was still pending.
// The event is removed from the queue eagerly, so heavy arm-then-cancel
// traffic (block-fetch retry timers) does not grow the heap with dead
// entries.
func (t *Timer) Stop() bool {
	if t.index < 0 {
		return false
	}
	t.loop.remove(t.index)
	t.index = -1
	return true
}

// Runnable is a pre-allocated event body for PostEvent: schedulers with
// per-message state (the network's in-flight deliveries) implement it once
// per message instead of allocating closures per scheduling hop.
type Runnable interface {
	Run()
}

// event is one scheduled callback, stored by value: the (at, prio, seq)
// ordering keys live inline in the heap slice, so sift comparisons touch no
// pointers. Exactly one of fn and r is set.
type event struct {
	at   int64
	prio int64 // virtual time the event was scheduled at (see eventQueue)
	seq  uint64
	fn   func()
	r    Runnable
	t    *Timer // cancellation handle; nil for PostEvent events
}

// eventQueue is a binary min-heap of events ordered by (time, priority,
// sequence). Priority is the virtual time the event was scheduled at: on a
// single loop it is nondecreasing in sequence number, so the order is exactly
// the classic (time, sequence) FIFO — simultaneous events fire in scheduling
// order. The sharded loop relies on the extra key: a cross-shard delivery is
// re-posted into the destination shard at a window barrier, after local
// events that were scheduled later in virtual time, and carrying the original
// scheduling time as prio restores the global chronological tie-break the
// sequential engine would have used. The heap is hand-rolled rather than
// container/heap because the standard interface boxes every pushed and popped
// value into an `any`, which made event scheduling one of the top allocation
// sites of a paper-scale run.
type eventQueue []event

func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	if q[i].prio != q[j].prio {
		return q[i].prio < q[j].prio
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	if q[i].t != nil {
		q[i].t.index = i
	}
	if q[j].t != nil {
		q[j].t.index = j
	}
}

func (q eventQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q eventQueue) siftDown(i int) {
	n := len(q)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && q.less(right, left) {
			least = right
		}
		if !q.less(least, i) {
			return
		}
		q.swap(i, least)
		i = least
	}
}

// Loop is the event loop. It is single-threaded: callbacks run inline on the
// goroutine calling Run, so simulation code needs no locking.
type Loop struct {
	now   int64
	queue eventQueue
	seq   uint64
	// Executed counts fired events, a cheap progress/cost measure.
	executed uint64
}

// NewLoop returns a loop whose clock starts at start (Unix nanoseconds).
func NewLoop(start int64) *Loop {
	return &Loop{now: start}
}

// Now returns the current virtual time in Unix nanoseconds.
func (l *Loop) Now() int64 { return l.now }

// Executed returns the number of events fired so far.
func (l *Loop) Executed() uint64 { return l.executed }

// Pending returns the number of scheduled events.
func (l *Loop) Pending() int { return len(l.queue) }

// At schedules fn at absolute virtual time at; times in the past fire at the
// current instant (after already-queued events for that instant). The
// returned Timer can cancel the event; callers that never cancel should
// prefer Post, which skips the handle allocation.
func (l *Loop) At(at int64, fn func()) *Timer {
	t := &Timer{loop: l}
	l.push(at, fn, t)
	return t
}

// PostEvent schedules a Runnable with no cancellation handle and no closure
// allocation; the same Runnable may be re-posted from inside its own Run.
func (l *Loop) PostEvent(at int64, r Runnable) {
	l.PostEventPrio(at, l.now, r)
}

// PostEventPrio is PostEvent with an explicit scheduling-time priority. The
// sharded engine uses it when merging a cross-shard delivery into this loop
// at a window barrier: prio carries the virtual time the message was sent at,
// so same-instant arrivals keep the chronological order the sequential engine
// would have produced. Ordinary callers should use PostEvent.
func (l *Loop) PostEventPrio(at, prio int64, r Runnable) {
	if at < l.now {
		at = l.now
	}
	l.queue = append(l.queue, event{at: at, prio: prio, seq: l.seq, r: r})
	l.seq++
	l.queue.siftUp(len(l.queue) - 1)
}

func (l *Loop) push(at int64, fn func(), t *Timer) {
	if at < l.now {
		at = l.now
	}
	if t != nil {
		t.index = len(l.queue)
	}
	l.queue = append(l.queue, event{at: at, prio: l.now, seq: l.seq, fn: fn, t: t})
	l.seq++
	l.queue.siftUp(len(l.queue) - 1)
}

// pop removes and returns the earliest event; the queue must be non-empty.
func (l *Loop) pop() event {
	q := l.queue
	ev := q[0]
	last := len(q) - 1
	q.swap(0, last)
	q[last] = event{}
	l.queue = q[:last]
	l.queue.siftDown(0)
	if ev.t != nil {
		ev.t.index = -1
	}
	return ev
}

// remove deletes the event at heap index i (Timer.Stop's eager removal).
func (l *Loop) remove(i int) {
	q := l.queue
	last := len(q) - 1
	if i != last {
		q.swap(i, last)
	}
	q[last] = event{}
	l.queue = q[:last]
	if i != last {
		l.queue.siftDown(i)
		l.queue.siftUp(i)
	}
}

// After schedules fn d from now.
func (l *Loop) After(d time.Duration, fn func()) *Timer {
	return l.At(l.now+int64(d), fn)
}

// NextEventAt returns the virtual time of the earliest scheduled event; ok is
// false when the queue is empty. The sharded driver uses it to size windows.
func (l *Loop) NextEventAt() (at int64, ok bool) {
	if len(l.queue) == 0 {
		return 0, false
	}
	return l.queue[0].at, true
}

// AdvanceTo moves the clock forward to t without firing anything. The caller
// must have established that no event is scheduled before t (the sharded
// driver advances idle shards across a window this way); violating that
// invariant panics rather than silently firing events late.
func (l *Loop) AdvanceTo(t int64) {
	if len(l.queue) > 0 && l.queue[0].at < t {
		panic("sim: AdvanceTo would skip a scheduled event")
	}
	if l.now < t {
		l.now = t
	}
}

// Step fires the next event; it reports false when the queue is empty.
func (l *Loop) Step() bool {
	if len(l.queue) == 0 {
		return false
	}
	ev := l.pop()
	l.now = ev.at
	l.executed++
	if ev.r != nil {
		ev.r.Run()
	} else {
		ev.fn()
	}
	return true
}

// RunUntil processes events until the virtual clock would pass deadline or
// the queue empties. Events scheduled exactly at deadline still fire. The
// clock ends at deadline if it was reached, else at the last event.
func (l *Loop) RunUntil(deadline int64) {
	for len(l.queue) > 0 && l.queue[0].at <= deadline {
		l.Step()
	}
	if l.now < deadline {
		l.now = deadline
	}
}

// RunFor advances the clock by d.
func (l *Loop) RunFor(d time.Duration) { l.RunUntil(l.now + int64(d)) }

// Drain runs until the queue is empty (or maxEvents fire, as a runaway
// guard; pass 0 for no limit).
func (l *Loop) Drain(maxEvents uint64) {
	fired := uint64(0)
	for l.Step() {
		fired++
		if maxEvents > 0 && fired >= maxEvents {
			return
		}
	}
}
