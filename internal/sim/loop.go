// Package sim is a deterministic discrete-event simulation kernel: a virtual
// clock, an ordered event queue, and seeded random streams.
//
// It is the substrate that replaces the paper's 1000-node hardware emulation
// testbed (§7): protocol nodes run unchanged against a virtual clock, so a
// thousand nodes running hours of protocol time execute in seconds of wall
// time, with every run exactly reproducible from its seed.
package sim

import (
	"container/heap"
	"time"
)

// Timestamps are Unix nanoseconds on the virtual clock; durations are
// time.Duration as usual.

// Timer is a scheduled callback that can be cancelled.
type Timer struct {
	at    int64
	seq   uint64
	fn    func()
	index int // heap index, -1 when fired or stopped
}

// Stop cancels the timer; it reports whether the callback was still pending.
func (t *Timer) Stop() bool {
	if t.index < 0 || t.fn == nil {
		return false
	}
	t.fn = nil
	return true
}

// eventQueue orders timers by (time, sequence): simultaneous events fire in
// scheduling order, which keeps runs deterministic.
type eventQueue []*Timer

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	t := x.(*Timer)
	t.index = len(*q)
	*q = append(*q, t)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*q = old[:n-1]
	return t
}

// Loop is the event loop. It is single-threaded: callbacks run inline on the
// goroutine calling Run, so simulation code needs no locking.
type Loop struct {
	now   int64
	queue eventQueue
	seq   uint64
	// Executed counts fired events, a cheap progress/cost measure.
	executed uint64
}

// NewLoop returns a loop whose clock starts at start (Unix nanoseconds).
func NewLoop(start int64) *Loop {
	return &Loop{now: start}
}

// Now returns the current virtual time in Unix nanoseconds.
func (l *Loop) Now() int64 { return l.now }

// Executed returns the number of events fired so far.
func (l *Loop) Executed() uint64 { return l.executed }

// Pending returns the number of scheduled events.
func (l *Loop) Pending() int { return len(l.queue) }

// At schedules fn at absolute virtual time at; times in the past fire at the
// current instant (after already-queued events for that instant).
func (l *Loop) At(at int64, fn func()) *Timer {
	if at < l.now {
		at = l.now
	}
	t := &Timer{at: at, seq: l.seq, fn: fn}
	l.seq++
	heap.Push(&l.queue, t)
	return t
}

// After schedules fn d from now.
func (l *Loop) After(d time.Duration, fn func()) *Timer {
	return l.At(l.now+int64(d), fn)
}

// Step fires the next event; it reports false when the queue is empty.
func (l *Loop) Step() bool {
	for len(l.queue) > 0 {
		t := heap.Pop(&l.queue).(*Timer)
		if t.fn == nil {
			continue // stopped
		}
		l.now = t.at
		fn := t.fn
		t.fn = nil
		l.executed++
		fn()
		return true
	}
	return false
}

// RunUntil processes events until the virtual clock would pass deadline or
// the queue empties. Events scheduled exactly at deadline still fire. The
// clock ends at deadline if it was reached, else at the last event.
func (l *Loop) RunUntil(deadline int64) {
	for len(l.queue) > 0 {
		// Peek without popping: stopped timers at the head are skipped
		// by Step, so inspect the first live one.
		next := l.queue[0]
		if next.fn == nil {
			heap.Pop(&l.queue)
			continue
		}
		if next.at > deadline {
			break
		}
		l.Step()
	}
	if l.now < deadline {
		l.now = deadline
	}
}

// RunFor advances the clock by d.
func (l *Loop) RunFor(d time.Duration) { l.RunUntil(l.now + int64(d)) }

// Drain runs until the queue is empty (or maxEvents fire, as a runaway
// guard; pass 0 for no limit).
func (l *Loop) Drain(maxEvents uint64) {
	fired := uint64(0)
	for l.Step() {
		fired++
		if maxEvents > 0 && fired >= maxEvents {
			return
		}
	}
}
