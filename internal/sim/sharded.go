package sim

import (
	"fmt"
	"math"
	"runtime/debug"
	"time"
)

// ShardedLoop runs S event loops in lockstep windows — a conservative
// (CMB/YAWNS-style) parallel discrete-event engine. Simulation state is
// partitioned across shards; each shard owns one Loop and executes its
// events on its own goroutine. Shards only interact through messages whose
// delivery delay is bounded below by the lookahead, so a window of virtual
// time (now, T] with T ≤ earliest-pending + lookahead can execute on every
// shard concurrently: nothing a shard does inside the window can affect
// another shard until strictly after T. At each window barrier the driver
// runs the registered barrier hooks (cross-shard message injection, metric
// merges) single-threaded, which also publishes all shard memory writes to
// the other shards for the next window.
//
// Determinism: each shard's execution is a deterministic function of its own
// event stream, and cross-shard injections are ordered by (arrival time,
// scheduling time, sender shard) at the barrier — the same order the
// sequential engine's (time, priority, sequence) heap would have produced.
// A run therefore yields the same result at any shard count, including one,
// up to exact virtual-time ties between events on different shards (which
// the continuous latency and mining distributions make vanishingly rare; the
// CI determinism gate cross-checks sequential against sharded reports).
type ShardedLoop struct {
	loops     []*Loop
	lookahead int64
	now       int64

	barrierFns   []func()
	globals      []globalEvent
	globalsFired uint64

	start  []chan int64
	done   chan workerResult
	closed bool
}

// globalEvent is a driver-level callback at an exact virtual time: scenario
// steps and other cross-shard control actions. They run between windows with
// every shard clock aligned to the event time, before any shard event at
// that instant — matching the sequential engine, where such steps are
// scheduled at run start and so carry the lowest priority at their instant.
type globalEvent struct {
	at  int64
	seq uint64
	fn  func()
}

type workerResult struct {
	shard    int
	panicked any
	stack    []byte
}

// NewShardedLoop creates a sharded engine whose clocks start at start.
func NewShardedLoop(start int64, shards int) *ShardedLoop {
	if shards < 1 {
		panic(fmt.Sprintf("sim: need at least 1 shard, got %d", shards))
	}
	sl := &ShardedLoop{
		loops:     make([]*Loop, shards),
		lookahead: int64(time.Millisecond),
		now:       start,
		start:     make([]chan int64, shards),
		done:      make(chan workerResult, shards),
	}
	for i := range sl.loops {
		sl.loops[i] = NewLoop(start)
		sl.start[i] = make(chan int64)
		go sl.worker(i)
	}
	return sl
}

func (sl *ShardedLoop) worker(i int) {
	loop := sl.loops[i]
	for deadline := range sl.start[i] {
		res := workerResult{shard: i}
		func() {
			defer func() {
				if r := recover(); r != nil {
					res.panicked = r
					res.stack = debug.Stack()
				}
			}()
			loop.RunUntil(deadline)
		}()
		sl.done <- res
	}
}

// Close shuts the worker goroutines down. The loops stay readable; no
// further Run* calls are allowed.
func (sl *ShardedLoop) Close() {
	if sl.closed {
		return
	}
	sl.closed = true
	for _, ch := range sl.start {
		close(ch)
	}
}

// Shards returns the shard count.
func (sl *ShardedLoop) Shards() int { return len(sl.loops) }

// Shard returns shard i's loop; simulation objects owned by that shard
// schedule against it.
func (sl *ShardedLoop) Shard(i int) *Loop { return sl.loops[i] }

// SetLookahead sets the conservative window bound: the minimum virtual delay
// of any cross-shard interaction. Values below 1ns are clamped to 1ns (the
// engine stays correct but degenerates to one instant per window).
func (sl *ShardedLoop) SetLookahead(d time.Duration) {
	sl.lookahead = int64(d)
	if sl.lookahead < 1 {
		sl.lookahead = 1
	}
}

// OnBarrier registers fn to run single-threaded at every window barrier, in
// registration order: cross-shard message injection, metric merges.
func (sl *ShardedLoop) OnBarrier(fn func()) {
	sl.barrierFns = append(sl.barrierFns, fn)
}

// ScheduleGlobal schedules a driver-level callback at absolute virtual time
// at (clamped to now). It runs between windows with all shard clocks at
// exactly that time, before any shard event scheduled at the same instant.
// Same-time globals fire in scheduling order.
func (sl *ShardedLoop) ScheduleGlobal(at int64, fn func()) {
	if at < sl.now {
		at = sl.now
	}
	sl.globals = append(sl.globals, globalEvent{at: at, seq: uint64(len(sl.globals)), fn: fn})
}

// Now returns the barrier-aligned virtual time.
func (sl *ShardedLoop) Now() int64 { return sl.now }

// Executed returns the number of events fired across all shards, plus fired
// globals — the same count a sequential run reports, where globals are
// ordinary timers.
func (sl *ShardedLoop) Executed() uint64 {
	n := sl.globalsFired
	for _, l := range sl.loops {
		n += l.Executed()
	}
	return n
}

// Pending returns the number of scheduled shard events (globals excluded).
func (sl *ShardedLoop) Pending() int {
	n := 0
	for _, l := range sl.loops {
		n += l.Pending()
	}
	return n
}

// RunFor advances the engine by d.
func (sl *ShardedLoop) RunFor(d time.Duration) { sl.RunUntil(sl.now + int64(d)) }

// RunUntil processes events in conservative windows until the clock reaches
// deadline; shard events scheduled exactly at deadline still fire, matching
// Loop.RunUntil. Pending globals at or before deadline fire at their exact
// instants.
func (sl *ShardedLoop) RunUntil(deadline int64) {
	if sl.closed {
		panic("sim: RunUntil on a closed ShardedLoop")
	}
	for {
		gIdx := sl.nextGlobal()
		if gIdx < 0 || sl.globals[gIdx].at > deadline {
			sl.runWindows(deadline)
			return
		}
		gAt := sl.globals[gIdx].at
		// Drain everything strictly before the global's instant, align every
		// shard clock to it, fire the global (and any others at the same
		// instant), then let the shards' own events at that instant run in
		// the next windows.
		sl.runWindows(gAt - 1)
		for _, l := range sl.loops {
			l.AdvanceTo(gAt)
		}
		sl.now = gAt
		sl.fireGlobalsAt(gAt)
		sl.barrier()
	}
}

// nextGlobal returns the index of the earliest pending global (lowest
// (at, seq)), or -1.
func (sl *ShardedLoop) nextGlobal() int {
	best := -1
	for i := range sl.globals {
		if sl.globals[i].fn == nil {
			continue
		}
		if best < 0 || sl.globals[i].at < sl.globals[best].at ||
			(sl.globals[i].at == sl.globals[best].at && sl.globals[i].seq < sl.globals[best].seq) {
			best = i
		}
	}
	return best
}

func (sl *ShardedLoop) fireGlobalsAt(at int64) {
	for {
		i := sl.nextGlobal()
		if i < 0 || sl.globals[i].at != at {
			break
		}
		fn := sl.globals[i].fn
		sl.globals[i].fn = nil
		sl.globalsFired++
		fn()
	}
	// Compact once everything fired.
	if sl.nextGlobal() < 0 {
		sl.globals = sl.globals[:0]
	}
}

// runWindows advances all shards to target in conservative windows.
func (sl *ShardedLoop) runWindows(target int64) {
	for sl.now < target {
		earliest := int64(math.MaxInt64)
		for _, l := range sl.loops {
			if at, ok := l.NextEventAt(); ok && at < earliest {
				earliest = at
			}
		}
		T := target
		if earliest <= target {
			// Anything a shard does at time t ≥ earliest reaches another
			// shard strictly after t + lookahead > earliest + lookahead - 1.
			if w := earliest + sl.lookahead - 1; w < T {
				T = w
			}
			if T < earliest {
				T = earliest // lookahead-1 window floor: one instant
			}
		}
		sl.runWindow(T)
		sl.now = T
		sl.barrier()
	}
}

// runWindow executes one window: shards with work run concurrently up to T,
// idle shards advance their clock on the driver.
func (sl *ShardedLoop) runWindow(T int64) {
	dispatched := 0
	for i, l := range sl.loops {
		if at, ok := l.NextEventAt(); ok && at <= T {
			sl.start[i] <- T
			dispatched++
		} else {
			l.AdvanceTo(T)
		}
	}
	var failure *workerResult
	for ; dispatched > 0; dispatched-- {
		res := <-sl.done
		if res.panicked != nil && failure == nil {
			failure = &res
		}
	}
	if failure != nil {
		panic(fmt.Sprintf("sim: shard %d panicked: %v\n%s",
			failure.shard, failure.panicked, failure.stack))
	}
}

// barrier runs the registered hooks single-threaded between windows.
func (sl *ShardedLoop) barrier() {
	for _, fn := range sl.barrierFns {
		fn()
	}
}
