package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// checkHeap verifies the heap invariant and that every Timer's index points
// back at its own event.
func checkHeap(t *testing.T, l *Loop) {
	t.Helper()
	q := l.queue
	for i := 1; i < len(q); i++ {
		parent := (i - 1) / 2
		if q.less(i, parent) {
			t.Fatalf("heap invariant broken at %d: child (%d,%d,%d) < parent (%d,%d,%d)",
				i, q[i].at, q[i].prio, q[i].seq, q[parent].at, q[parent].prio, q[parent].seq)
		}
	}
	for i := range q {
		if q[i].t != nil && q[i].t.index != i {
			t.Fatalf("timer at heap slot %d has index %d", i, q[i].t.index)
		}
	}
}

// TestHeapPropertyRandomOps drives the hand-rolled event heap through random
// interleavings of At, PostEvent, Timer.Stop (at random live indices), and
// pop, checking after every operation that the heap invariant and the timer
// back-indices hold, and that the events that actually fire do so in
// nondecreasing (time, priority, sequence) order matching a reference model.
func TestHeapPropertyRandomOps(t *testing.T) {
	type ref struct {
		at, prio int64
		seq      uint64
	}
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 1))
		l := NewLoop(0)
		var timers []*Timer
		var model []ref // live events, unordered
		var fired []ref
		refLess := func(a, b ref) bool {
			if a.at != b.at {
				return a.at < b.at
			}
			if a.prio != b.prio {
				return a.prio < b.prio
			}
			return a.seq < b.seq
		}
		removeRef := func(r ref) {
			for i := range model {
				if model[i] == r {
					model = append(model[:i], model[i+1:]...)
					return
				}
			}
			t.Fatalf("trial %d: fired event %+v not in model", trial, r)
		}
		for op := 0; op < 400; op++ {
			switch k := rng.Intn(10); {
			case k < 4: // At with a cancellable timer
				at := l.Now() + rng.Int63n(1000)
				r := ref{at: at, prio: l.Now(), seq: l.seq}
				tm := l.At(at, func() { fired = append(fired, r); removeRef(r) })
				timers = append(timers, tm)
				model = append(model, r)
			case k < 7: // PostEvent (fire-and-forget)
				at := l.Now() + rng.Int63n(1000)
				r := ref{at: at, prio: l.Now(), seq: l.seq}
				l.PostEvent(at, firedFn(func() { fired = append(fired, r); removeRef(r) }))
				model = append(model, r)
			case k < 9: // Stop a random timer (possibly already fired/stopped)
				if len(timers) == 0 {
					continue
				}
				i := rng.Intn(len(timers))
				tm := timers[i]
				wasLive := tm.index >= 0
				var evRef ref
				if wasLive {
					evRef = ref{at: l.queue[tm.index].at, prio: l.queue[tm.index].prio, seq: l.queue[tm.index].seq}
				}
				if tm.Stop() != wasLive {
					t.Fatalf("trial %d: Stop() reported %v for live=%v", trial, !wasLive, wasLive)
				}
				if wasLive {
					removeRef(evRef)
				}
			default: // pop one event
				if l.Pending() > 0 {
					l.Step()
				}
			}
			checkHeap(t, l)
		}
		// Drain the rest and verify global firing order matches the model.
		l.Drain(0)
		if len(model) != 0 {
			t.Fatalf("trial %d: %d events never fired", trial, len(model))
		}
		for i := 1; i < len(fired); i++ {
			if refLess(fired[i], fired[i-1]) {
				t.Fatalf("trial %d: out-of-order firing at %d: %+v after %+v",
					trial, i, fired[i], fired[i-1])
			}
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return refLess(fired[i], fired[j]) }) {
			t.Fatalf("trial %d: fired order not sorted", trial)
		}
	}
}

// firedFn adapts a func to Runnable for PostEvent in tests.
type firedFn func()

func (f firedFn) Run() { f() }

// reposter re-posts itself from inside Run: the documented PostEvent
// reentrancy contract.
type reposter struct {
	l     *Loop
	left  int
	fires []int64
	step  int64
}

func (r *reposter) Run() {
	r.fires = append(r.fires, r.l.Now())
	r.left--
	if r.left > 0 {
		r.l.PostEvent(r.l.Now()+r.step, r)
	}
}

// TestPostEventReentrant posts a Runnable that re-posts itself from inside
// Run — both for a future instant and for the current one — during Run, Step,
// and RunUntil.
func TestPostEventReentrant(t *testing.T) {
	l := NewLoop(0)
	r := &reposter{l: l, left: 5, step: 10}
	l.PostEvent(0, r)
	l.RunUntil(100)
	if len(r.fires) != 5 {
		t.Fatalf("fired %d times, want 5", len(r.fires))
	}
	for i, at := range r.fires {
		if at != int64(i*10) {
			t.Fatalf("fire %d at %d, want %d", i, at, i*10)
		}
	}

	// Same-instant re-posting: each re-post lands after already-queued events
	// at the instant, and all fire within one RunUntil of that instant.
	l2 := NewLoop(0)
	var order []string
	z := &reposter{l: l2, left: 3, step: 0}
	l2.PostEvent(50, z)
	l2.At(50, func() { order = append(order, "timer@50") })
	l2.RunUntil(50)
	if len(z.fires) != 3 || len(order) != 1 {
		t.Fatalf("same-instant reentrancy: fires=%v order=%v", z.fires, order)
	}
	for _, at := range z.fires {
		if at != 50 {
			t.Fatalf("same-instant re-post fired at %d", at)
		}
	}
	if l2.Pending() != 0 {
		t.Fatalf("pending = %d after drain", l2.Pending())
	}
}
