package sim

import (
	"math/rand"
)

// DeriveSeed mixes a base seed with a stream identifier so each node and
// each subsystem gets an independent, reproducible random stream. The mix is
// SplitMix64, whose avalanche behaviour keeps derived streams uncorrelated
// even for adjacent identifiers.
func DeriveSeed(base int64, stream uint64) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// NewRand returns a deterministic *rand.Rand for the given base seed and
// stream identifier.
func NewRand(base int64, stream uint64) *rand.Rand {
	return rand.New(rand.NewSource(DeriveSeed(base, stream)))
}

// Exponential draws an exponentially distributed duration in nanoseconds
// with the given mean. Block inter-generation times are exponential (§7
// "Simulated Mining": the geometric trial process is approximated by an
// exponential distribution).
func Exponential(rng *rand.Rand, meanNanos float64) int64 {
	d := rng.ExpFloat64() * meanNanos
	if d < 1 {
		d = 1 // never zero: keeps event ordering strict
	}
	const maxDelay = float64(1 << 62)
	if d > maxDelay {
		d = maxDelay
	}
	return int64(d)
}
