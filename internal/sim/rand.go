package sim

import (
	"math/rand"
)

// DeriveSeed mixes a base seed with a stream identifier so each node and
// each subsystem gets an independent, reproducible random stream. The mix is
// SplitMix64, whose avalanche behaviour keeps derived streams uncorrelated
// even for adjacent identifiers.
func DeriveSeed(base int64, stream uint64) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// xoshiro is a xoshiro256++ rand.Source64. The standard library's default
// source pays an ~600-word seeding loop per stream; experiment builds create
// several streams per node, which made seeding a top-3 cost of paper-scale
// runs. xoshiro256++ seeds with four SplitMix64 steps, passes the usual
// statistical batteries, and stays fully deterministic per (seed, stream).
type xoshiro struct {
	s [4]uint64
}

func (x *xoshiro) seed(v uint64) {
	// SplitMix64 expansion, the initialization the xoshiro authors
	// recommend; it cannot produce the all-zero state.
	for i := range x.s {
		v += 0x9e3779b97f4a7c15
		z := v
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		x.s[i] = z ^ (z >> 31)
	}
}

func rotl(v uint64, k uint) uint64 { return v<<k | v>>(64-k) }

func (x *xoshiro) Uint64() uint64 {
	s := &x.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func (x *xoshiro) Int63() int64 { return int64(x.Uint64() >> 1) }

func (x *xoshiro) Seed(seed int64) { x.seed(uint64(seed)) }

// NewRand returns a deterministic *rand.Rand for the given base seed and
// stream identifier.
func NewRand(base int64, stream uint64) *rand.Rand {
	src := &xoshiro{}
	src.seed(uint64(DeriveSeed(base, stream)))
	return rand.New(src)
}

// Exponential draws an exponentially distributed duration in nanoseconds
// with the given mean. Block inter-generation times are exponential (§7
// "Simulated Mining": the geometric trial process is approximated by an
// exponential distribution).
func Exponential(rng *rand.Rand, meanNanos float64) int64 {
	d := rng.ExpFloat64() * meanNanos
	if d < 1 {
		d = 1 // never zero: keeps event ordering strict
	}
	const maxDelay = float64(1 << 62)
	if d > maxDelay {
		d = maxDelay
	}
	return int64(d)
}
