package mining

import (
	"math/rand"

	"bitcoinng/internal/sim"
)

// Miner triggers block generation for one node at exponentially distributed
// intervals whose rate is proportional to the node's mining power. It is the
// in-simulation equivalent of the paper's scheduler + regression-test-mode
// client (§7 "Simulated Mining"): no hashes are computed, but the arrival
// process matches real mining statistically.
//
// The exponential distribution is memoryless, so rate changes (difficulty
// retargets, churn experiments) simply cancel the pending draw and redraw at
// the new rate without biasing inter-block times.
type Miner struct {
	loop   *sim.Loop
	rng    *rand.Rand
	onFind func()

	rate    float64 // expected blocks per second; 0 = not mining
	timer   *sim.Timer
	running bool
	found   uint64
}

// NewMiner creates a miner that calls onFind each time it wins a block.
// onFind runs on the simulation goroutine; it typically assembles and
// broadcasts a block, then mining continues automatically.
func NewMiner(loop *sim.Loop, rng *rand.Rand, onFind func()) *Miner {
	return &Miner{loop: loop, rng: rng, onFind: onFind}
}

// Rate returns the current expected block-find rate in blocks per second.
func (m *Miner) Rate() float64 { return m.rate }

// Found returns how many blocks this miner has found.
func (m *Miner) Found() uint64 { return m.found }

// SetRate changes the block-find rate, rescheduling the pending draw.
// A rate of zero (or less) pauses mining — the churn experiments use this
// to model miners leaving (§5.2 "Resilience to Mining Power Variation").
func (m *Miner) SetRate(blocksPerSec float64) {
	m.rate = blocksPerSec
	if m.running {
		m.schedule()
	}
}

// Start begins mining. It is idempotent.
func (m *Miner) Start() {
	if m.running {
		return
	}
	m.running = true
	m.schedule()
}

// Stop pauses mining, cancelling any pending find.
func (m *Miner) Stop() {
	m.running = false
	if m.timer != nil {
		m.timer.Stop()
		m.timer = nil
	}
}

func (m *Miner) schedule() {
	if m.timer != nil {
		m.timer.Stop()
		m.timer = nil
	}
	if !m.running || m.rate <= 0 {
		return
	}
	meanNanos := 1e9 / m.rate
	delay := sim.Exponential(m.rng, meanNanos)
	m.timer = m.loop.At(m.loop.Now()+delay, func() {
		m.timer = nil
		if !m.running {
			return
		}
		m.found++
		m.onFind()
		m.schedule()
	})
}
