package mining

import (
	"math"
	"testing"
	"time"

	"bitcoinng/internal/sim"
	"bitcoinng/internal/stats"
)

func TestExponentialSharesNormalized(t *testing.T) {
	for _, n := range []int{1, 5, 100, 1000} {
		shares := ExponentialShares(n, DefaultExponent)
		if len(shares) != n {
			t.Fatalf("n=%d: got %d shares", n, len(shares))
		}
		var sum float64
		for i, s := range shares {
			if s <= 0 {
				t.Fatalf("n=%d: share %d not positive", n, i)
			}
			if i > 0 && s > shares[i-1] {
				t.Fatalf("n=%d: shares not decreasing at %d", n, i)
			}
			sum += s
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("n=%d: shares sum to %v", n, sum)
		}
	}
	if ExponentialShares(0, 0.27) != nil {
		t.Error("n=0 should yield nil")
	}
}

func TestLargestShareNearQuarter(t *testing.T) {
	// §8.1: Bitcoin's MPU tends toward 1/4, "the size of the largest
	// miner" — the model's top share at scale is just under 24%.
	got := LargestShare(1000, DefaultExponent)
	if got < 0.20 || got > 0.27 {
		t.Errorf("largest share = %.4f, want ≈ 0.24", got)
	}
	// Successive ranks decay by exp(-0.27).
	shares := ExponentialShares(1000, DefaultExponent)
	ratio := shares[1] / shares[0]
	if math.Abs(ratio-math.Exp(-0.27)) > 1e-9 {
		t.Errorf("rank decay ratio = %v", ratio)
	}
}

func TestSampleWeeksShape(t *testing.T) {
	rng := sim.NewRand(1, 1)
	weeks := SampleWeeks(rng, 52, 50, DefaultExponent, 0.5)
	if len(weeks) != 52 {
		t.Fatalf("weeks = %d", len(weeks))
	}
	for w, s := range weeks {
		var sum float64
		for i, v := range s.Shares {
			if i > 0 && v > s.Shares[i-1] {
				t.Fatalf("week %d not ranked descending", w)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("week %d shares sum to %v", w, sum)
		}
	}
}

// TestFigure6FitRecoversExponent is the core Figure 6 reproduction check:
// per-rank medians of the sampled weeks must fit an exponential with
// exponent ≈ −0.27 and R² ≈ 0.99.
func TestFigure6FitRecoversExponent(t *testing.T) {
	rng := sim.NewRand(42, 2)
	weeks := SampleWeeks(rng, 52, 100, DefaultExponent, 0.4)
	pct := RankPercentiles(weeks, 20, []float64{0.25, 0.50, 0.75})
	medians := pct[1]

	var ranks, logShares []float64
	for k, m := range medians {
		ranks = append(ranks, float64(k+1))
		logShares = append(logShares, math.Log(m))
	}
	fit := stats.LinearFit(ranks, logShares)
	if math.Abs(fit.Slope-(-DefaultExponent)) > 0.04 {
		t.Errorf("fitted exponent %.4f, want ≈ -0.27", fit.Slope)
	}
	if fit.R2 < 0.97 {
		t.Errorf("R² = %.4f, paper reports 0.99", fit.R2)
	}
	// Percentile bands are ordered.
	for k := 0; k < 20; k++ {
		if !(pct[0][k] <= pct[1][k] && pct[1][k] <= pct[2][k]) {
			t.Errorf("rank %d: percentile bands out of order", k)
		}
	}
}

func TestMinerExponentialIntervals(t *testing.T) {
	loop := sim.NewLoop(0)
	rng := sim.NewRand(7, 3)
	var finds []int64
	m := NewMiner(loop, rng, func() { finds = append(finds, loop.Now()) })
	m.SetRate(1.0 / 10) // one block per 10 seconds
	m.Start()
	loop.RunFor(10000 * time.Second)
	m.Stop()

	n := len(finds)
	if n < 800 || n > 1200 {
		t.Fatalf("found %d blocks in 10000s at rate 0.1/s", n)
	}
	// Mean interval ≈ 10s.
	var sum float64
	prev := int64(0)
	for _, f := range finds {
		sum += float64(f - prev)
		prev = f
	}
	mean := sum / float64(n) / 1e9
	if math.Abs(mean-10)/10 > 0.15 {
		t.Errorf("mean interval %.2fs, want ≈10s", mean)
	}
	if m.Found() != uint64(n) {
		t.Errorf("Found() = %d, want %d", m.Found(), n)
	}
}

func TestMinerRateProportionality(t *testing.T) {
	loop := sim.NewLoop(0)
	fast := NewMiner(loop, sim.NewRand(1, 10), nil)
	slow := NewMiner(loop, sim.NewRand(1, 11), nil)
	var fastN, slowN int
	*fast = *NewMiner(loop, sim.NewRand(1, 10), func() { fastN++ })
	*slow = *NewMiner(loop, sim.NewRand(1, 11), func() { slowN++ })
	fast.SetRate(0.9)
	slow.SetRate(0.1)
	fast.Start()
	slow.Start()
	loop.RunFor(5000 * time.Second)
	total := fastN + slowN
	share := float64(fastN) / float64(total)
	if math.Abs(share-0.9) > 0.03 {
		t.Errorf("fast miner share %.3f, want ≈0.9", share)
	}
}

func TestMinerStopAndZeroRate(t *testing.T) {
	loop := sim.NewLoop(0)
	count := 0
	m := NewMiner(loop, sim.NewRand(2, 0), func() { count++ })
	m.SetRate(100)
	m.Start()
	loop.RunFor(time.Second)
	found := count
	if found == 0 {
		t.Fatal("no blocks at rate 100/s")
	}
	m.Stop()
	loop.RunFor(10 * time.Second)
	if count != found {
		t.Error("miner found blocks after Stop")
	}
	// Zero rate pauses without stopping.
	m.Start()
	m.SetRate(0)
	loop.RunFor(10 * time.Second)
	if count != found {
		t.Error("miner found blocks at rate 0")
	}
	// Restoring the rate resumes.
	m.SetRate(100)
	loop.RunFor(time.Second)
	if count == found {
		t.Error("miner did not resume after rate restored")
	}
}

func TestMinerStartIdempotent(t *testing.T) {
	loop := sim.NewLoop(0)
	count := 0
	m := NewMiner(loop, sim.NewRand(3, 0), func() { count++ })
	m.SetRate(10)
	m.Start()
	m.Start() // must not double-schedule
	loop.RunFor(100 * time.Second)
	// ~1000 expected; a double-schedule would give ~2000.
	if count > 1500 {
		t.Errorf("found %d blocks; Start is not idempotent", count)
	}
}
