// Package ghost assembles the GHOST baseline the paper discusses and
// evaluated (§9): Bitcoin's block format and economics with the
// heaviest-subtree fork-choice rule of Sompolinsky and Zohar, in the
// propagate-all-blocks variant (our gossip layer already relays side-chain
// blocks, which is exactly the configuration §9 measured and found to
// underperform at high rates due to relay overhead).
package ghost

import (
	"bitcoinng/internal/bitcoin"
	"bitcoinng/internal/chain"
	"bitcoinng/internal/node"
)

// Node is a Bitcoin node running the GHOST fork-choice rule.
type Node = bitcoin.Node

// New builds a GHOST node: identical to a Bitcoin node except that fork
// choice descends into the child with the heaviest subtree instead of
// following cumulative chain weight.
func New(env node.Env, cfg bitcoin.Config) (*Node, error) {
	cfg.ForkChoice = &chain.GHOST{
		RandomTieBreak: cfg.Params.RandomTieBreak,
		Rand:           env.Rand(),
	}
	return bitcoin.New(env, cfg)
}
