package ghost

import (
	"testing"
	"time"

	"bitcoinng/internal/bitcoin"
	"bitcoinng/internal/crypto"
	"bitcoinng/internal/sim"
	"bitcoinng/internal/simnet"
	"bitcoinng/internal/types"
)

func TestGhostClusterConverges(t *testing.T) {
	loop := sim.NewLoop(0)
	network := simnet.New(loop, simnet.DefaultConfig(6, 1))
	params := types.DefaultParams()
	params.RandomTieBreak = false
	params.RetargetWindow = 0

	genesis := types.GenesisBlock(types.GenesisSpec{Target: crypto.EasiestTarget})
	var nodes []*Node
	for i := 0; i < 6; i++ {
		key, err := crypto.GenerateKey(sim.NewRand(1, uint64(100+i)))
		if err != nil {
			t.Fatal(err)
		}
		env := simnet.NewNodeEnv(loop, network, i, 1)
		n, err := New(env, bitcoin.Config{
			Params:          params,
			Key:             key,
			Genesis:         genesis,
			SimulatedMining: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		env.Deliver(n.HandleMessage)
		nodes = append(nodes, n)
	}

	// Create competing forks, then let one side accumulate subtree weight.
	nodes[0].MineBlock()
	nodes[1].MineBlock() // same height: fork
	loop.RunFor(30 * time.Second)
	for round := 0; round < 4; round++ {
		nodes[round%6].MineBlock()
		loop.RunFor(30 * time.Second)
	}

	tip := nodes[0].State.Tip().Hash()
	for i, n := range nodes {
		if n.State.Tip().Hash() != tip {
			t.Errorf("node %d tip differs under GHOST", i)
		}
	}
	if h := nodes[0].State.Height(); h < 4 {
		t.Errorf("height %d too small", h)
	}
}
