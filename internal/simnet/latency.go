// Package simnet emulates the peer-to-peer network of the paper's testbed
// (§7 "Network"): a random overlay in which every node connects to at least
// five uniformly random peers, per-pair latencies drawn from a measured-shape
// histogram, and ~100 kbit/s per-pair bandwidth with store-and-forward
// transfer delays. Message delivery is driven by the discrete-event loop in
// internal/sim.
package simnet

import (
	"math/rand"
	"sort"
	"time"
)

// LatencyModel samples one-way propagation delays for a link.
type LatencyModel interface {
	Sample(rng *rand.Rand) time.Duration
}

// Fixed is a constant-latency model, useful in tests.
type Fixed time.Duration

// Sample implements LatencyModel.
func (f Fixed) Sample(*rand.Rand) time.Duration { return time.Duration(f) }

// Uniform samples uniformly from [Min, Max).
type Uniform struct {
	Min, Max time.Duration
}

// Sample implements LatencyModel.
func (u Uniform) Sample(rng *rand.Rand) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(rng.Int63n(int64(u.Max-u.Min)))
}

// HistogramBucket is one bucket of a latency histogram: delays in [Min, Max)
// with relative Weight.
type HistogramBucket struct {
	Min, Max time.Duration
	Weight   float64
}

// Histogram samples from weighted buckets, uniformly within a bucket. The
// paper built its histogram by measuring latency to all visible Bitcoin
// nodes from a vantage point; DefaultLatency reproduces the qualitative
// shape (regional / continental / intercontinental mixture with a heavy
// tail) — the substitution is recorded in DESIGN.md §2.
type Histogram struct {
	buckets []HistogramBucket
	cum     []float64 // cumulative weights, normalized to 1
}

// NewHistogram builds a sampler from buckets; weights need not sum to one.
func NewHistogram(buckets []HistogramBucket) *Histogram {
	h := &Histogram{buckets: buckets, cum: make([]float64, len(buckets))}
	var total float64
	for _, b := range buckets {
		total += b.Weight
	}
	acc := 0.0
	for i, b := range buckets {
		acc += b.Weight / total
		h.cum[i] = acc
	}
	return h
}

// Sample implements LatencyModel.
func (h *Histogram) Sample(rng *rand.Rand) time.Duration {
	u := rng.Float64()
	i := sort.SearchFloat64s(h.cum, u)
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	b := h.buckets[i]
	return Uniform{Min: b.Min, Max: b.Max}.Sample(rng)
}

// DefaultLatency is the synthetic stand-in for the paper's measured latency
// histogram (April 2015 vantage-point scan): ~110 ms median with a heavy
// intercontinental tail.
func DefaultLatency() *Histogram {
	return NewHistogram([]HistogramBucket{
		{Min: 5 * time.Millisecond, Max: 25 * time.Millisecond, Weight: 0.10},
		{Min: 25 * time.Millisecond, Max: 75 * time.Millisecond, Weight: 0.25},
		{Min: 75 * time.Millisecond, Max: 150 * time.Millisecond, Weight: 0.30},
		{Min: 150 * time.Millisecond, Max: 250 * time.Millisecond, Weight: 0.25},
		{Min: 250 * time.Millisecond, Max: 400 * time.Millisecond, Weight: 0.10},
	})
}
