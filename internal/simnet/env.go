package simnet

import (
	"math/rand"
	"time"

	"bitcoinng/internal/node"
	"bitcoinng/internal/sim"
)

// NodeEnv implements node.Env over the emulated network: the virtual clock
// for time and scheduling, the overlay for peer messaging, and a per-node
// deterministic random stream. The experiment harness builds one per node;
// protocol code cannot tell it apart from the live TCP environment.
type NodeEnv struct {
	Loop *sim.Loop
	Net  *Network
	ID   int
	Rng  *rand.Rand
}

// NewNodeEnv builds the environment for node id, deriving its random stream
// from the experiment seed.
func NewNodeEnv(loop *sim.Loop, net *Network, id int, seed int64) *NodeEnv {
	return &NodeEnv{
		Loop: loop,
		Net:  net,
		ID:   id,
		Rng:  sim.NewRand(seed, uint64(id)+1),
	}
}

// Now implements node.Env.
func (e *NodeEnv) Now() int64 { return e.Loop.Now() }

// After implements node.Env.
func (e *NodeEnv) After(d time.Duration, fn func()) node.Timer {
	return e.Loop.After(d, fn)
}

// NodeID implements node.Env.
func (e *NodeEnv) NodeID() int { return e.ID }

// Peers implements node.Env.
func (e *NodeEnv) Peers() []int { return e.Net.Peers(e.ID) }

// Send implements node.Env, charging the message's framed size to the
// bandwidth model.
func (e *NodeEnv) Send(peer int, msg node.Message) {
	e.Net.Send(e.ID, peer, msg, msg.Size())
}

// Rand implements node.Env.
func (e *NodeEnv) Rand() *rand.Rand { return e.Rng }

// Deliver wires the network's delivery callback for node id to a handler
// (typically Base.HandleMessage).
func (e *NodeEnv) Deliver(h func(from int, msg node.Message)) {
	e.Net.Handle(e.ID, func(from int, payload any, size int) {
		if msg, ok := payload.(node.Message); ok {
			h(from, msg)
		}
	})
}
