package simnet

import (
	"math/rand"
	"time"

	"bitcoinng/internal/node"
	"bitcoinng/internal/sim"
)

// NodeEnv implements node.Env over the emulated network: the virtual clock
// for time and scheduling, the overlay for peer messaging, and a per-node
// deterministic random stream. The experiment harness builds one per node;
// protocol code cannot tell it apart from the live TCP environment.
type NodeEnv struct {
	Loop *sim.Loop
	Net  *Network
	ID   int
	Rng  *rand.Rand

	// gen is the node's incarnation number. Timers armed under an older
	// incarnation become no-ops, so a crash cancels every pending callback
	// of the torn-down client (microblock schedule, fetch timeouts, tx
	// flushes) without tracking them individually. Bumped by Crash, read
	// only on the node's own shard.
	gen uint64
}

// NewNodeEnv builds the environment for node id, deriving its random stream
// from the experiment seed.
func NewNodeEnv(loop *sim.Loop, net *Network, id int, seed int64) *NodeEnv {
	return &NodeEnv{
		Loop: loop,
		Net:  net,
		ID:   id,
		Rng:  sim.NewRand(seed, uint64(id)+1),
	}
}

// Now implements node.Env.
func (e *NodeEnv) Now() int64 { return e.Loop.Now() }

// After implements node.Env. The callback is bound to the node's current
// incarnation: if the node crashes before it fires, it does nothing.
func (e *NodeEnv) After(d time.Duration, fn func()) node.Timer {
	g := e.gen
	return e.Loop.After(d, func() {
		if e.gen == g {
			fn()
		}
	})
}

// Bump advances the node's incarnation, neutering every timer armed before
// the call. Invoked on crash, while the loops are quiescent.
func (e *NodeEnv) Bump() { e.gen++ }

// NodeID implements node.Env.
func (e *NodeEnv) NodeID() int { return e.ID }

// Peers implements node.Env.
func (e *NodeEnv) Peers() []int { return e.Net.Peers(e.ID) }

// Send implements node.Env, charging the message's framed size to the
// bandwidth model.
func (e *NodeEnv) Send(peer int, msg node.Message) {
	e.Net.Send(e.ID, peer, msg, msg.Size())
}

// Rand implements node.Env.
func (e *NodeEnv) Rand() *rand.Rand { return e.Rng }

// Deliver wires the network's delivery callback for node id to a handler
// (typically Base.HandleMessage).
func (e *NodeEnv) Deliver(h func(from int, msg node.Message)) {
	e.Net.Handle(e.ID, func(from int, payload any, size int) {
		if msg, ok := payload.(node.Message); ok {
			h(from, msg)
		}
	})
}
