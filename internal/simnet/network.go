package simnet

import (
	"fmt"
	"math/rand"
	"time"

	"bitcoinng/internal/sim"
)

// Config describes the emulated network.
type Config struct {
	// Nodes is the network size (the paper runs 1000).
	Nodes int
	// MinPeers is the minimum outbound degree; each node connects to this
	// many uniformly random peers and links are bidirectional, so the
	// effective degree averages about twice this ("connecting each node to
	// at least 5 other nodes, chosen uniformly at random", §7).
	MinPeers int
	// Latency samples the fixed one-way propagation delay of each link.
	Latency LatencyModel
	// BandwidthBPS is the per-pair bandwidth in bits per second ("about
	// 100kbit/sec among each pair of nodes", §7).
	BandwidthBPS float64
	// ProcPerByte and ProcPerMsg model receiver-side processing (block
	// verification, mempool updates). Messages queue at a busy receiver;
	// this is what eventually caps throughput by node capacity (§8.2).
	ProcPerByte time.Duration
	ProcPerMsg  time.Duration
	// Seed drives topology construction and latency assignment.
	Seed int64
}

// DefaultConfig mirrors the paper's testbed parameters at a configurable
// scale.
func DefaultConfig(nodes int, seed int64) Config {
	return Config{
		Nodes:        nodes,
		MinPeers:     5,
		Latency:      DefaultLatency(),
		BandwidthBPS: 100_000,
		ProcPerByte:  50 * time.Nanosecond, // ~20 MB/s verification rate
		ProcPerMsg:   100 * time.Microsecond,
		Seed:         seed,
	}
}

// Handler receives a delivered message: the sending node, an opaque payload,
// and the wire size the network charged for it.
type Handler func(from int, payload any, size int)

// link is one direction of an edge with store-and-forward queueing.
type link struct {
	latency int64 // nanos, fixed per edge
	freeAt  int64 // when the sender-side pipe drains
}

// Stats aggregates network-wide counters.
type Stats struct {
	MessagesSent  uint64
	BytesSent     uint64
	MessagesLost  uint64        // dropped by an active partition
	MaxQueueDelay time.Duration // worst sender-side bandwidth queuing seen
}

// edge is one neighbor entry in a node's adjacency list, carrying the
// direction's link state inline so the per-message lookup is a short scan
// over a node's (small) neighbor list instead of a map probe.
type edge struct {
	peer int
	out  *link
}

// Network is the emulated overlay.
type Network struct {
	loop     *sim.Loop
	cfg      Config
	adj      [][]int  // peer ids per node (Peers view)
	edges    [][]edge // peer ids + outbound link state per node
	handlers []Handler
	busyAt   []int64 // per-node receiver busy-until
	stats    Stats
	// group assigns each node to a partition group; messages between
	// different groups are silently dropped. nil means fully connected.
	group []int
	// latencyScale multiplies per-link propagation delay (the LatencySpike
	// scenario step); zero or one means unscaled.
	latencyScale float64
}

// New builds the topology: MinPeers uniformly random outbound links per
// node, made bidirectional, then patched to a single connected component
// (wiring representatives of stray components together, as a bootstrap node
// list would).
func New(loop *sim.Loop, cfg Config) *Network {
	if cfg.Nodes < 2 {
		panic(fmt.Sprintf("simnet: need at least 2 nodes, got %d", cfg.Nodes))
	}
	if cfg.Latency == nil {
		cfg.Latency = DefaultLatency()
	}
	// A node cannot have more neighbors than there are other nodes; small
	// test networks just become cliques.
	if cfg.MinPeers > cfg.Nodes-1 {
		cfg.MinPeers = cfg.Nodes - 1
	}
	n := &Network{
		loop:     loop,
		cfg:      cfg,
		adj:      make([][]int, cfg.Nodes),
		edges:    make([][]edge, cfg.Nodes),
		handlers: make([]Handler, cfg.Nodes),
		busyAt:   make([]int64, cfg.Nodes),
	}
	const topologyStream = 0x7e7 // dedicated stream id for topology building
	rng := sim.NewRand(cfg.Seed, topologyStream)
	for i := 0; i < cfg.Nodes; i++ {
		for len(n.adj[i]) < cfg.MinPeers {
			j := rng.Intn(cfg.Nodes)
			if j == i || n.connected(i, j) {
				continue
			}
			n.connect(i, j, rng)
		}
	}
	n.ensureConnected(rng)
	return n
}

func (n *Network) connected(i, j int) bool {
	return n.linkTo(i, j) != nil
}

// linkTo returns the i->j link, or nil when not neighbors. Degrees are small
// (MinPeers-scale), so a linear scan beats hashing a composite key on the
// per-message path.
func (n *Network) linkTo(i, j int) *link {
	for _, e := range n.edges[i] {
		if e.peer == j {
			return e.out
		}
	}
	return nil
}

func (n *Network) connect(i, j int, rng *rand.Rand) {
	lat := int64(n.cfg.Latency.Sample(rng))
	n.edges[i] = append(n.edges[i], edge{peer: j, out: &link{latency: lat}})
	n.edges[j] = append(n.edges[j], edge{peer: i, out: &link{latency: lat}})
	n.adj[i] = append(n.adj[i], j)
	n.adj[j] = append(n.adj[j], i)
}

// ensureConnected unions stray components into one.
func (n *Network) ensureConnected(rng *rand.Rand) {
	parent := make([]int, n.cfg.Nodes)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for i, es := range n.edges {
		for _, e := range es {
			union(i, e.peer)
		}
	}
	root := find(0)
	for i := 1; i < n.cfg.Nodes; i++ {
		if find(i) != root {
			n.connect(root, i, rng)
			union(root, i)
		}
	}
}

// Size returns the number of nodes.
func (n *Network) Size() int { return n.cfg.Nodes }

// Peers returns node id's neighbors; callers must not mutate the slice.
func (n *Network) Peers(id int) []int { return n.adj[id] }

// Handle registers the delivery callback for node id.
func (n *Network) Handle(id int, h Handler) { n.handlers[id] = h }

// Stats returns aggregate counters.
func (n *Network) Stats() Stats { return n.stats }

// SetPartition splits the network: group[i] is node i's side, and messages
// between different sides vanish (a WAN cut). Pass nil to heal. In-flight
// messages already past the cut still deliver, like packets in transit when
// a link fails.
func (n *Network) SetPartition(group []int) {
	if group != nil && len(group) != n.cfg.Nodes {
		panic(fmt.Sprintf("simnet: partition of %d nodes on a %d-node network", len(group), n.cfg.Nodes))
	}
	n.group = group
}

// ScaleLatency multiplies every link's propagation delay from now on;
// messages already in flight keep the delay they were sent with, like
// packets on the wire when a route degrades. A factor of 1 (or 0) restores
// the configured model.
func (n *Network) ScaleLatency(factor float64) { n.latencyScale = factor }

// PartitionAssignment expands explicit groups of node indices into the
// per-node assignment SetPartition takes: listed nodes get group index+1,
// everyone unlisted joins group 0. An out-of-range index is an error (left
// unprefixed for callers to wrap with their package name).
func PartitionAssignment(nodes int, groups [][]int) ([]int, error) {
	assignment := make([]int, nodes)
	for g, members := range groups {
		for _, id := range members {
			if id < 0 || id >= nodes {
				return nil, fmt.Errorf("partition node %d out of range (network size %d)", id, nodes)
			}
			assignment[id] = g + 1
		}
	}
	return assignment, nil
}

// Send transmits payload of the given wire size from -> to. Delivery time is
// queueing (sender-side pipe busy) + transfer (size over bandwidth) +
// propagation (link latency) + receiver processing (queued behind earlier
// arrivals). Sends between unconnected nodes panic: the overlay has no
// routing, only direct links, like Bitcoin's gossip.
func (n *Network) Send(from, to int, payload any, size int) {
	l := n.linkTo(from, to)
	if l == nil {
		panic(fmt.Sprintf("simnet: no link %d->%d", from, to))
	}
	if n.group != nil && n.group[from] != n.group[to] {
		n.stats.MessagesLost++
		return
	}
	now := n.loop.Now()
	start := now
	if l.freeAt > start {
		start = l.freeAt
	}
	if q := time.Duration(start - now); q > n.stats.MaxQueueDelay {
		n.stats.MaxQueueDelay = q
	}
	transfer := int64(float64(size*8) / n.cfg.BandwidthBPS * float64(time.Second))
	l.freeAt = start + transfer
	latency := l.latency
	if n.latencyScale > 0 {
		latency = int64(float64(latency) * n.latencyScale)
	}
	arrival := l.freeAt + latency

	n.stats.MessagesSent++
	n.stats.BytesSent += uint64(size)

	d := &delivery{n: n, from: from, to: to, payload: payload, size: size}
	n.loop.PostEvent(arrival, d)
}

// delivery carries one in-flight message through its two scheduling hops
// (arrival at the receiver, then completion of receiver-side processing)
// with a single allocation: it is its own event (sim.Runnable), re-posting
// itself for the second hop.
type delivery struct {
	n        *Network
	from, to int
	size     int
	payload  any
	arrived  bool
}

// Run implements sim.Runnable. The first hop lands at propagation end, where
// receiver processing serializes behind earlier work (§8.2 — node capacity
// is what ultimately caps throughput); the second hand the message to the
// receiver once processed.
func (d *delivery) Run() {
	n := d.n
	if !d.arrived {
		d.arrived = true
		procStart := n.loop.Now()
		if n.busyAt[d.to] > procStart {
			procStart = n.busyAt[d.to]
		}
		done := procStart + int64(n.cfg.ProcPerMsg) + int64(n.cfg.ProcPerByte)*int64(d.size)
		n.busyAt[d.to] = done
		n.loop.PostEvent(done, d)
		return
	}
	if h := n.handlers[d.to]; h != nil {
		h(d.from, d.payload, d.size)
	}
}

// Broadcast sends payload to every neighbor of from.
func (n *Network) Broadcast(from int, payload any, size int) {
	for _, p := range n.adj[from] {
		n.Send(from, p, payload, size)
	}
}
