package simnet

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"bitcoinng/internal/sim"
)

// Config describes the emulated network.
type Config struct {
	// Nodes is the network size (the paper runs 1000).
	Nodes int
	// MinPeers is the minimum outbound degree; each node connects to this
	// many uniformly random peers and links are bidirectional, so the
	// effective degree averages about twice this ("connecting each node to
	// at least 5 other nodes, chosen uniformly at random", §7).
	MinPeers int
	// Latency samples the fixed one-way propagation delay of each link.
	Latency LatencyModel
	// BandwidthBPS is the per-pair bandwidth in bits per second ("about
	// 100kbit/sec among each pair of nodes", §7).
	BandwidthBPS float64
	// ProcPerByte and ProcPerMsg model receiver-side processing (block
	// verification, mempool updates). Messages queue at a busy receiver;
	// this is what eventually caps throughput by node capacity (§8.2).
	ProcPerByte time.Duration
	ProcPerMsg  time.Duration
	// Seed drives topology construction and latency assignment.
	Seed int64
}

// DefaultConfig mirrors the paper's testbed parameters at a configurable
// scale.
func DefaultConfig(nodes int, seed int64) Config {
	return Config{
		Nodes:        nodes,
		MinPeers:     5,
		Latency:      DefaultLatency(),
		BandwidthBPS: 100_000,
		ProcPerByte:  50 * time.Nanosecond, // ~20 MB/s verification rate
		ProcPerMsg:   100 * time.Microsecond,
		Seed:         seed,
	}
}

// Handler receives a delivered message: the sending node, an opaque payload,
// and the wire size the network charged for it.
type Handler func(from int, payload any, size int)

// link is one direction of an edge with store-and-forward queueing.
type link struct {
	latency   int64   // nanos, fixed per edge
	freeAt    int64   // when the sender-side pipe drains
	lossScale float64 // per-link fault susceptibility factor in [0.5, 1.5)
}

// Stats aggregates network-wide counters.
type Stats struct {
	MessagesSent       uint64
	BytesSent          uint64
	MessagesLost       uint64        // dropped by an active partition or a down endpoint
	MessagesDropped    uint64        // dropped by the lossy-link fault model
	MessagesDuplicated uint64        // delivered twice by the fault model
	MessagesReordered  uint64        // delayed past their propagation slot by the fault model
	MaxQueueDelay      time.Duration // worst sender-side bandwidth queuing seen
}

// Loss is the network-wide lossy-link fault model: per-message probabilities
// of dropping, duplicating, or delaying (reordering) a send. Each directed
// link scales these by its own seed-deterministic susceptibility factor in
// [0.5, 1.5), so faults concentrate unevenly the way real flaky paths do.
type Loss struct {
	Drop      float64
	Duplicate float64
	Reorder   float64
}

func (l Loss) active() bool { return l.Drop > 0 || l.Duplicate > 0 || l.Reorder > 0 }

// edge is one neighbor entry in a node's adjacency list, carrying the
// direction's link state inline so the per-message lookup is a short scan
// over a node's (small) neighbor list instead of a map probe.
type edge struct {
	peer int
	out  *link
}

// Network is the emulated overlay. It runs either on a single event loop
// (the default) or sharded across the loops of a sim.ShardedLoop (see Shard):
// per-node and per-directed-link state is then touched only by its owning
// shard, cross-shard deliveries queue in per-shard outboxes merged at window
// barriers, and counters are kept per shard and summed on read.
type Network struct {
	loop     *sim.Loop
	cfg      Config
	adj      [][]int  // peer ids per node (Peers view)
	edges    [][]edge // peer ids + outbound link state per node
	handlers []Handler
	busyAt   []int64 // per-node receiver busy-until; owned by the node's shard
	stats    []Stats // per shard; length 1 when unsharded
	// group assigns each node to a partition group; messages between
	// different groups are silently dropped. nil means fully connected.
	// Written only while the loops are quiescent (setup or a barrier).
	group []int
	// latencyScale multiplies per-link propagation delay (the LatencySpike
	// scenario step); 1 means unscaled. Always positive. Same write
	// discipline as group.
	latencyScale float64
	// loss is the active lossy-link fault model (zero value = clean links).
	// Same write discipline as group.
	loss Loss
	// down marks crashed nodes: sends from or to a down node vanish, and
	// in-flight messages are discarded on arrival. Same write discipline as
	// group.
	down []bool
	// faultRng holds one deterministic stream per sender node for fault
	// draws. Draws happen inside the sender's event handlers, so each stream
	// has a single consuming goroutine and a deterministic draw order.
	faultRng []*rand.Rand

	// Sharded mode (nil/empty when running on a single loop).
	shardLoops []*sim.Loop
	shardOf    []int      // node -> shard
	outbox     [][]outMsg // per sender shard, drained by FlushOutboxes
}

// outMsg is one cross-shard delivery waiting for the next window barrier.
type outMsg struct {
	arrival int64 // virtual delivery time at the receiver
	sent    int64 // virtual send time (the heap priority after injection)
	d       *delivery
}

// New builds the topology: MinPeers uniformly random outbound links per
// node, made bidirectional, then patched to a single connected component
// (wiring representatives of stray components together, as a bootstrap node
// list would).
func New(loop *sim.Loop, cfg Config) *Network {
	if cfg.Nodes < 2 {
		panic(fmt.Sprintf("simnet: need at least 2 nodes, got %d", cfg.Nodes))
	}
	if cfg.Latency == nil {
		cfg.Latency = DefaultLatency()
	}
	// A node cannot have more neighbors than there are other nodes; small
	// test networks just become cliques.
	if cfg.MinPeers > cfg.Nodes-1 {
		cfg.MinPeers = cfg.Nodes - 1
	}
	n := &Network{
		loop:         loop,
		cfg:          cfg,
		adj:          make([][]int, cfg.Nodes),
		edges:        make([][]edge, cfg.Nodes),
		handlers:     make([]Handler, cfg.Nodes),
		busyAt:       make([]int64, cfg.Nodes),
		stats:        make([]Stats, 1),
		latencyScale: 1,
		down:         make([]bool, cfg.Nodes),
		faultRng:     make([]*rand.Rand, cfg.Nodes),
	}
	const faultStream = 0x50000 // per-sender fault streams: faultStream+id
	for i := 0; i < cfg.Nodes; i++ {
		n.faultRng[i] = sim.NewRand(cfg.Seed, faultStream+uint64(i))
	}
	const topologyStream = 0x7e7 // dedicated stream id for topology building
	rng := sim.NewRand(cfg.Seed, topologyStream)
	for i := 0; i < cfg.Nodes; i++ {
		for len(n.adj[i]) < cfg.MinPeers {
			j := rng.Intn(cfg.Nodes)
			if j == i || n.connected(i, j) {
				continue
			}
			n.connect(i, j, rng)
		}
	}
	n.ensureConnected(rng)
	return n
}

func (n *Network) connected(i, j int) bool {
	return n.linkTo(i, j) != nil
}

// linkTo returns the i->j link, or nil when not neighbors. Degrees are small
// (MinPeers-scale), so a linear scan beats hashing a composite key on the
// per-message path.
func (n *Network) linkTo(i, j int) *link {
	for _, e := range n.edges[i] {
		if e.peer == j {
			return e.out
		}
	}
	return nil
}

func (n *Network) connect(i, j int, rng *rand.Rand) {
	lat := int64(n.cfg.Latency.Sample(rng))
	n.edges[i] = append(n.edges[i], edge{peer: j, out: &link{latency: lat, lossScale: linkLossScale(n.cfg.Seed, i, j)}})
	n.edges[j] = append(n.edges[j], edge{peer: i, out: &link{latency: lat, lossScale: linkLossScale(n.cfg.Seed, j, i)}})
	n.adj[i] = append(n.adj[i], j)
	n.adj[j] = append(n.adj[j], i)
}

// linkLossScale derives the directed link's fault susceptibility in [0.5, 1.5)
// by hashing (seed, from, to) with a splitmix64 finalizer. Hashing — rather
// than drawing from the topology stream — keeps every pre-fault seed's
// topology and latency assignment byte-identical to what it was before the
// fault model existed.
func linkLossScale(seed int64, from, to int) float64 {
	x := uint64(seed) ^ uint64(from)<<32 ^ uint64(to)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return 0.5 + float64(x>>11)/float64(1<<53)
}

// ensureConnected unions stray components into one.
func (n *Network) ensureConnected(rng *rand.Rand) {
	parent := make([]int, n.cfg.Nodes)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for i, es := range n.edges {
		for _, e := range es {
			union(i, e.peer)
		}
	}
	root := find(0)
	for i := 1; i < n.cfg.Nodes; i++ {
		if find(i) != root {
			n.connect(root, i, rng)
			union(root, i)
		}
	}
}

// Size returns the number of nodes.
func (n *Network) Size() int { return n.cfg.Nodes }

// Peers returns node id's neighbors; callers must not mutate the slice.
func (n *Network) Peers(id int) []int { return n.adj[id] }

// Handle registers the delivery callback for node id.
func (n *Network) Handle(id int, h Handler) { n.handlers[id] = h }

// Stats merges the per-shard counters into one network-wide view: the
// volume counters (MessagesSent, BytesSent, MessagesLost) are summed across
// shards, while MaxQueueDelay — a worst-case observation, not a volume — is
// the maximum over shards. Call it only while the loops are quiescent
// (between Run slices or after the run).
func (n *Network) Stats() Stats {
	var total Stats
	for i := range n.stats {
		s := &n.stats[i]
		total.MessagesSent += s.MessagesSent
		total.BytesSent += s.BytesSent
		total.MessagesLost += s.MessagesLost
		total.MessagesDropped += s.MessagesDropped
		total.MessagesDuplicated += s.MessagesDuplicated
		total.MessagesReordered += s.MessagesReordered
		if s.MaxQueueDelay > total.MaxQueueDelay {
			total.MaxQueueDelay = s.MaxQueueDelay
		}
	}
	return total
}

// Shard switches the network into sharded mode: node i schedules against
// loops[shardOf[i]], and deliveries between nodes on different shards are
// buffered until FlushOutboxes runs at a window barrier. Call it once,
// before any traffic, with the per-shard loops of a sim.ShardedLoop; the
// caller must register FlushOutboxes as a barrier hook.
func (n *Network) Shard(loops []*sim.Loop, shardOf []int) {
	if len(shardOf) != n.cfg.Nodes {
		panic(fmt.Sprintf("simnet: shard map for %d nodes on a %d-node network", len(shardOf), n.cfg.Nodes))
	}
	for _, s := range shardOf {
		if s < 0 || s >= len(loops) {
			panic(fmt.Sprintf("simnet: shard %d out of range (%d shards)", s, len(loops)))
		}
	}
	n.shardLoops = loops
	n.shardOf = shardOf
	n.outbox = make([][]outMsg, len(loops))
	n.stats = make([]Stats, len(loops))
}

// loopFor returns the event loop that owns node id.
func (n *Network) loopFor(id int) *sim.Loop {
	if n.shardLoops == nil {
		return n.loop
	}
	return n.shardLoops[n.shardOf[id]]
}

// MinCrossShardLatency returns the smallest propagation delay of any link
// between nodes on different shards — the sharded engine's lookahead — under
// the current latency scale (a spike widens the safe window, a shrink
// narrows it; a scaled minimum that truncates to zero clamps to 1ns, the
// engine's degenerate-but-safe floor). Links within a shard don't bound the
// window: their deliveries stay on one loop. Returns 0 when unsharded or
// when no link crosses shards (then any window size is safe).
func (n *Network) MinCrossShardLatency() time.Duration {
	if n.shardOf == nil {
		return 0
	}
	min := int64(0)
	for i, es := range n.edges {
		for _, e := range es {
			if n.shardOf[i] == n.shardOf[e.peer] {
				continue
			}
			if min == 0 || e.out.latency < min {
				min = e.out.latency
			}
		}
	}
	if min > 0 && n.latencyScale != 1 {
		if min = int64(float64(min) * n.latencyScale); min < 1 {
			min = 1
		}
	}
	return time.Duration(min)
}

// FlushOutboxes injects buffered cross-shard deliveries into their receiving
// shards' loops, ordered by (arrival, send time, sender shard) — exactly the
// (time, priority, sequence) order the sequential engine's single heap would
// have given them. Runs at window barriers, while all shards are quiescent.
func (n *Network) FlushOutboxes() {
	total := 0
	for s := range n.outbox {
		total += len(n.outbox[s])
	}
	if total == 0 {
		return
	}
	all := make([]outMsg, 0, total)
	for s := range n.outbox {
		all = append(all, n.outbox[s]...)
		n.outbox[s] = n.outbox[s][:0]
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].arrival != all[j].arrival {
			return all[i].arrival < all[j].arrival
		}
		return all[i].sent < all[j].sent
	})
	for i := range all {
		m := &all[i]
		n.loopFor(m.d.to).PostEventPrio(m.arrival, m.sent, m.d)
	}
}

// SetPartition splits the network: group[i] is node i's side, and messages
// between different sides vanish (a WAN cut). Pass nil to heal. In-flight
// messages already past the cut still deliver, like packets in transit when
// a link fails.
func (n *Network) SetPartition(group []int) {
	if group != nil && len(group) != n.cfg.Nodes {
		panic(fmt.Sprintf("simnet: partition of %d nodes on a %d-node network", len(group), n.cfg.Nodes))
	}
	n.group = group
}

// ScaleLatency sets the absolute propagation-delay factor applied to every
// link from now on: each link's configured delay is multiplied by factor.
// Calls replace one another rather than composing — ScaleLatency(2) followed
// by ScaleLatency(3) is a 3x spike, not 6x — and 1 restores the configured
// model. Messages already in flight keep the delay they were sent with, like
// packets on the wire when a route degrades. factor must be positive: zero
// would stall lookahead in the sharded engine and negative delays are
// meaningless, so both panic (the scenario layer validates upstream and
// surfaces a step error instead).
func (n *Network) ScaleLatency(factor float64) {
	if factor <= 0 {
		panic(fmt.Sprintf("simnet: latency scale factor %v must be > 0", factor))
	}
	n.latencyScale = factor
}

// SetLoss installs (or, with the zero value, clears) the lossy-link fault
// model. Like SetPartition it must run while the loops are quiescent; messages
// already in flight are unaffected.
func (n *Network) SetLoss(l Loss) {
	if l.Drop < 0 || l.Duplicate < 0 || l.Reorder < 0 ||
		l.Drop > 1 || l.Duplicate > 1 || l.Reorder > 1 {
		panic(fmt.Sprintf("simnet: loss probabilities out of [0,1]: %+v", l))
	}
	n.loss = l
}

// SetNodeDown marks node id as crashed (true) or back up (false). While down,
// sends from or to the node count as lost and in-flight messages are
// discarded at arrival. Must run while the loops are quiescent.
func (n *Network) SetNodeDown(id int, down bool) {
	n.down[id] = down
}

// NodeDown reports whether id is currently marked crashed.
func (n *Network) NodeDown(id int) bool { return n.down[id] }

// PartitionAssignment expands explicit groups of node indices into the
// per-node assignment SetPartition takes: listed nodes get group index+1,
// everyone unlisted joins group 0. An out-of-range index is an error (left
// unprefixed for callers to wrap with their package name).
func PartitionAssignment(nodes int, groups [][]int) ([]int, error) {
	assignment := make([]int, nodes)
	for g, members := range groups {
		for _, id := range members {
			if id < 0 || id >= nodes {
				return nil, fmt.Errorf("partition node %d out of range (network size %d)", id, nodes)
			}
			assignment[id] = g + 1
		}
	}
	return assignment, nil
}

// Send transmits payload of the given wire size from -> to. Delivery time is
// queueing (sender-side pipe busy) + transfer (size over bandwidth) +
// propagation (link latency) + receiver processing (queued behind earlier
// arrivals). Sends between unconnected nodes panic: the overlay has no
// routing, only direct links, like Bitcoin's gossip.
//
// In sharded mode Send runs on the sending node's shard (or on the driver at
// a barrier): it touches only that shard's link state and counters, and a
// delivery crossing shards is buffered for FlushOutboxes instead of being
// posted directly into a loop another goroutine is draining.
func (n *Network) Send(from, to int, payload any, size int) {
	l := n.linkTo(from, to)
	if l == nil {
		panic(fmt.Sprintf("simnet: no link %d->%d", from, to))
	}
	shard := 0
	if n.shardOf != nil {
		shard = n.shardOf[from]
	}
	st := &n.stats[shard]
	if n.down[from] || n.down[to] {
		st.MessagesLost++
		return
	}
	if n.group != nil && n.group[from] != n.group[to] {
		st.MessagesLost++
		return
	}
	// Lossy-link faults draw from the sender's dedicated stream, in a fixed
	// order per send (drop, then duplicate, then reorder), so the draw
	// sequence is a deterministic function of the sender's event order —
	// identical on the sequential and sharded engines.
	var extraDelay, dupDelay int64
	duplicate := false
	if n.loss.active() {
		frng := n.faultRng[from]
		scale := l.lossScale
		if p := n.loss.Drop * scale; p > 0 && frng.Float64() < p {
			st.MessagesDropped++
			return
		}
		span := l.latency
		if span < 1 {
			span = 1
		}
		if p := n.loss.Duplicate * scale; p > 0 && frng.Float64() < p {
			duplicate = true
			dupDelay = 1 + frng.Int63n(span)
		}
		if p := n.loss.Reorder * scale; p > 0 && frng.Float64() < p {
			st.MessagesReordered++
			extraDelay = 1 + frng.Int63n(2*span)
		}
	}
	now := n.loopFor(from).Now()
	start := now
	if l.freeAt > start {
		start = l.freeAt
	}
	if q := time.Duration(start - now); q > st.MaxQueueDelay {
		st.MaxQueueDelay = q
	}
	transfer := int64(float64(size*8) / n.cfg.BandwidthBPS * float64(time.Second))
	l.freeAt = start + transfer
	latency := l.latency
	if n.latencyScale != 1 {
		latency = int64(float64(latency) * n.latencyScale)
	}
	// Fault delays only ever add latency, so the sharded engine's lookahead
	// (MinCrossShardLatency, a lower bound on cross-shard arrival) stays safe.
	arrival := l.freeAt + latency + extraDelay

	st.MessagesSent++
	st.BytesSent += uint64(size)

	n.post(shard, arrival, now, &delivery{n: n, from: from, to: to, payload: payload, size: size})
	if duplicate {
		st.MessagesDuplicated++
		n.post(shard, arrival+dupDelay, now, &delivery{n: n, from: from, to: to, payload: payload, size: size})
	}
}

// post routes one delivery to the receiver's loop, buffering cross-shard
// sends for FlushOutboxes.
func (n *Network) post(senderShard int, arrival, sent int64, d *delivery) {
	if n.shardOf != nil && n.shardOf[d.to] != senderShard {
		n.outbox[senderShard] = append(n.outbox[senderShard], outMsg{arrival: arrival, sent: sent, d: d})
		return
	}
	n.loopFor(d.to).PostEvent(arrival, d)
}

// delivery carries one in-flight message through its two scheduling hops
// (arrival at the receiver, then completion of receiver-side processing)
// with a single allocation: it is its own event (sim.Runnable), re-posting
// itself for the second hop.
type delivery struct {
	n        *Network
	from, to int
	size     int
	payload  any
	arrived  bool
}

// Run implements sim.Runnable. The first hop lands at propagation end, where
// receiver processing serializes behind earlier work (§8.2 — node capacity
// is what ultimately caps throughput); the second hand the message to the
// receiver once processed. Both hops run on the receiving node's shard, so
// busyAt[to] has a single writing goroutine.
func (d *delivery) Run() {
	n := d.n
	if n.down[d.to] {
		// The receiver crashed while this message was in flight (or before
		// it cleared receiver-side processing): it vanishes with the
		// receiver's in-memory state.
		shard := 0
		if n.shardOf != nil {
			shard = n.shardOf[d.to]
		}
		n.stats[shard].MessagesLost++
		return
	}
	if !d.arrived {
		d.arrived = true
		loop := n.loopFor(d.to)
		procStart := loop.Now()
		if n.busyAt[d.to] > procStart {
			procStart = n.busyAt[d.to]
		}
		done := procStart + int64(n.cfg.ProcPerMsg) + int64(n.cfg.ProcPerByte)*int64(d.size)
		n.busyAt[d.to] = done
		loop.PostEvent(done, d)
		return
	}
	if h := n.handlers[d.to]; h != nil {
		h(d.from, d.payload, d.size)
	}
}

// Broadcast sends payload to every neighbor of from.
func (n *Network) Broadcast(from int, payload any, size int) {
	for _, p := range n.adj[from] {
		n.Send(from, p, payload, size)
	}
}
