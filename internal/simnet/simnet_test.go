package simnet

import (
	"math/rand"
	"testing"
	"time"

	"bitcoinng/internal/sim"
)

func TestTopologyDegreeAndSymmetry(t *testing.T) {
	loop := sim.NewLoop(0)
	net := New(loop, DefaultConfig(200, 1))
	for i := 0; i < net.Size(); i++ {
		if len(net.Peers(i)) < 5 {
			t.Errorf("node %d degree %d < 5", i, len(net.Peers(i)))
		}
		for _, j := range net.Peers(i) {
			found := false
			for _, k := range net.Peers(j) {
				if k == i {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("edge %d->%d not symmetric", i, j)
			}
		}
	}
}

func TestTopologyConnected(t *testing.T) {
	loop := sim.NewLoop(0)
	net := New(loop, DefaultConfig(500, 2))
	seen := make([]bool, net.Size())
	queue := []int{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range net.Peers(v) {
			if !seen[w] {
				seen[w] = true
				count++
				queue = append(queue, w)
			}
		}
	}
	if count != net.Size() {
		t.Errorf("reachable %d of %d nodes", count, net.Size())
	}
}

func TestTopologyDeterministic(t *testing.T) {
	a := New(sim.NewLoop(0), DefaultConfig(100, 7))
	b := New(sim.NewLoop(0), DefaultConfig(100, 7))
	for i := 0; i < 100; i++ {
		pa, pb := a.Peers(i), b.Peers(i)
		if len(pa) != len(pb) {
			t.Fatalf("node %d degree differs", i)
		}
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("node %d peer %d differs", i, j)
			}
		}
	}
	// Different seed, different topology (overwhelmingly likely).
	c := New(sim.NewLoop(0), DefaultConfig(100, 8))
	same := true
	for i := 0; i < 100 && same; i++ {
		pa, pc := a.Peers(i), c.Peers(i)
		if len(pa) != len(pc) {
			same = false
			break
		}
		for j := range pa {
			if pa[j] != pc[j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical topology")
	}
}

func TestDeliveryTiming(t *testing.T) {
	loop := sim.NewLoop(0)
	cfg := Config{
		Nodes:        2,
		MinPeers:     1,
		Latency:      Fixed(100 * time.Millisecond),
		BandwidthBPS: 100_000, // 100 kbit/s
		Seed:         1,
	}
	net := New(loop, cfg)
	var deliveredAt int64
	var gotSize int
	net.Handle(1, func(from int, payload any, size int) {
		deliveredAt = loop.Now()
		gotSize = size
	})
	// 12500 bytes = 100000 bits = 1 second of transfer at 100 kbit/s.
	net.Send(0, 1, "blk", 12500)
	loop.Drain(0)
	want := int64(time.Second + 100*time.Millisecond)
	if deliveredAt != want {
		t.Errorf("delivered at %d, want %d", deliveredAt, want)
	}
	if gotSize != 12500 {
		t.Errorf("size = %d", gotSize)
	}
}

func TestBandwidthQueueing(t *testing.T) {
	loop := sim.NewLoop(0)
	cfg := Config{
		Nodes:        2,
		MinPeers:     1,
		Latency:      Fixed(0),
		BandwidthBPS: 100_000,
		Seed:         1,
	}
	net := New(loop, cfg)
	var arrivals []int64
	net.Handle(1, func(from int, payload any, size int) {
		arrivals = append(arrivals, loop.Now())
	})
	// Two back-to-back 1-second transfers share the pipe: second arrives
	// at 2s, not 1s.
	net.Send(0, 1, "a", 12500)
	net.Send(0, 1, "b", 12500)
	loop.Drain(0)
	if len(arrivals) != 2 {
		t.Fatalf("delivered %d", len(arrivals))
	}
	if arrivals[0] != int64(time.Second) || arrivals[1] != int64(2*time.Second) {
		t.Errorf("arrivals = %v", arrivals)
	}
	if net.Stats().MaxQueueDelay != time.Second {
		t.Errorf("max queue delay = %v", net.Stats().MaxQueueDelay)
	}
}

func TestLinksQueueIndependently(t *testing.T) {
	loop := sim.NewLoop(0)
	cfg := Config{
		Nodes:        3,
		MinPeers:     2,
		Latency:      Fixed(0),
		BandwidthBPS: 100_000,
		Seed:         1,
	}
	net := New(loop, cfg)
	var at1, at2 int64
	net.Handle(1, func(int, any, int) { at1 = loop.Now() })
	net.Handle(2, func(int, any, int) { at2 = loop.Now() })
	// The paper's model is per-pair bandwidth: parallel links don't share.
	net.Send(0, 1, "a", 12500)
	net.Send(0, 2, "b", 12500)
	loop.Drain(0)
	if at1 != int64(time.Second) || at2 != int64(time.Second) {
		t.Errorf("arrivals %d, %d — links not independent", at1, at2)
	}
}

func TestReceiverProcessingSerializes(t *testing.T) {
	loop := sim.NewLoop(0)
	cfg := Config{
		Nodes:        3,
		MinPeers:     2,
		Latency:      Fixed(0),
		BandwidthBPS: 1e12, // effectively infinite pipe
		ProcPerMsg:   100 * time.Millisecond,
		Seed:         1,
	}
	net := New(loop, cfg)
	var arrivals []int64
	net.Handle(2, func(int, any, int) { arrivals = append(arrivals, loop.Now()) })
	// Two messages from different senders arrive together; processing
	// serializes them 100ms apart.
	net.Send(0, 2, "a", 10)
	net.Send(1, 2, "b", 10)
	loop.Drain(0)
	if len(arrivals) != 2 {
		t.Fatalf("delivered %d", len(arrivals))
	}
	gap := arrivals[1] - arrivals[0]
	if gap != int64(100*time.Millisecond) {
		t.Errorf("processing gap = %v", time.Duration(gap))
	}
}

func TestBroadcastReachesAllPeers(t *testing.T) {
	loop := sim.NewLoop(0)
	net := New(loop, DefaultConfig(50, 3))
	got := make(map[int]bool)
	for _, p := range net.Peers(0) {
		p := p
		net.Handle(p, func(from int, payload any, size int) {
			if from == 0 {
				got[p] = true
			}
		})
	}
	net.Broadcast(0, "hello", 100)
	loop.Drain(0)
	if len(got) != len(net.Peers(0)) {
		t.Errorf("broadcast reached %d of %d peers", len(got), len(net.Peers(0)))
	}
}

func TestHistogramSampling(t *testing.T) {
	h := NewHistogram([]HistogramBucket{
		{Min: 10 * time.Millisecond, Max: 20 * time.Millisecond, Weight: 1},
		{Min: 100 * time.Millisecond, Max: 200 * time.Millisecond, Weight: 1},
	})
	rng := rand.New(rand.NewSource(1))
	low, high := 0, 0
	for i := 0; i < 10000; i++ {
		d := h.Sample(rng)
		switch {
		case d >= 10*time.Millisecond && d < 20*time.Millisecond:
			low++
		case d >= 100*time.Millisecond && d < 200*time.Millisecond:
			high++
		default:
			t.Fatalf("sample %v outside buckets", d)
		}
	}
	ratio := float64(low) / float64(low+high)
	if ratio < 0.45 || ratio > 0.55 {
		t.Errorf("bucket ratio %.3f, want ~0.5", ratio)
	}
}

func TestDefaultLatencyShape(t *testing.T) {
	h := DefaultLatency()
	rng := rand.New(rand.NewSource(2))
	var samples []time.Duration
	for i := 0; i < 10000; i++ {
		samples = append(samples, h.Sample(rng))
	}
	var sum time.Duration
	for _, s := range samples {
		if s < 5*time.Millisecond || s > 400*time.Millisecond {
			t.Fatalf("sample %v out of range", s)
		}
		sum += s
	}
	mean := sum / time.Duration(len(samples))
	if mean < 80*time.Millisecond || mean > 180*time.Millisecond {
		t.Errorf("mean latency %v outside plausible internet range", mean)
	}
}

func TestSendWithoutLinkPanics(t *testing.T) {
	loop := sim.NewLoop(0)
	cfg := Config{Nodes: 10, MinPeers: 1, Latency: Fixed(0), BandwidthBPS: 1, Seed: 1}
	net := New(loop, cfg)
	// Find a non-adjacent pair.
	var a, b int
	found := false
	for i := 0; i < 10 && !found; i++ {
		for j := 0; j < 10; j++ {
			if i == j || net.connected(i, j) {
				continue
			}
			a, b = i, j
			found = true
			break
		}
	}
	if !found {
		t.Skip("graph complete at this size")
	}
	defer func() {
		if recover() == nil {
			t.Error("send without link did not panic")
		}
	}()
	net.Send(a, b, "x", 1)
}

// TestStatsShardedMerge pins the per-field merge semantics of Stats(): the
// volume counters sum across shards while MaxQueueDelay, a worst-case
// observation, takes the maximum.
func TestStatsShardedMerge(t *testing.T) {
	net := New(sim.NewLoop(0), DefaultConfig(4, 1))
	net.Shard([]*sim.Loop{sim.NewLoop(0), sim.NewLoop(0)}, []int{0, 0, 1, 1})
	net.stats[0] = Stats{MessagesSent: 3, BytesSent: 100, MessagesLost: 1, MaxQueueDelay: 5 * time.Millisecond}
	net.stats[1] = Stats{MessagesSent: 4, BytesSent: 200, MessagesLost: 2, MaxQueueDelay: 9 * time.Millisecond}
	want := Stats{MessagesSent: 7, BytesSent: 300, MessagesLost: 3, MaxQueueDelay: 9 * time.Millisecond}
	if got := net.Stats(); got != want {
		t.Errorf("merged stats = %+v, want %+v", got, want)
	}
	// The maximum must win regardless of which shard holds it.
	net.stats[0].MaxQueueDelay = 20 * time.Millisecond
	want.MaxQueueDelay = 20 * time.Millisecond
	if got := net.Stats(); got != want {
		t.Errorf("merged stats = %+v, want %+v", got, want)
	}
}

// TestScaleLatencyAbsoluteFactor pins the spike contract: factors are
// absolute multiples of the configured model (calls replace, never
// compose), 1 restores it, and non-positive factors panic.
func TestScaleLatencyAbsoluteFactor(t *testing.T) {
	loop := sim.NewLoop(0)
	net := New(loop, Config{
		Nodes:        2,
		MinPeers:     1,
		Latency:      Fixed(100 * time.Millisecond),
		BandwidthBPS: 1e12, // negligible transfer time
		Seed:         1,
	})
	var arrivals []time.Duration
	var sent int64
	net.Handle(1, func(from int, payload any, size int) {
		arrivals = append(arrivals, time.Duration(loop.Now()-sent))
	})
	deliver := func() time.Duration {
		sent = loop.Now()
		net.Send(0, 1, "x", 1)
		loop.RunFor(10 * time.Second)
		return arrivals[len(arrivals)-1]
	}

	base := deliver()
	if base < 100*time.Millisecond || base > 101*time.Millisecond {
		t.Fatalf("baseline delivery %v, want ~100ms", base)
	}
	net.ScaleLatency(2)
	if d := deliver(); d < 2*base || d > 2*base+time.Millisecond {
		t.Errorf("2x spike delivery %v, want ~%v", d, 2*base)
	}
	// Overlapping spike: absolute 3x, NOT 2x*3 = 6x.
	net.ScaleLatency(3)
	if d := deliver(); d < 3*base || d > 3*base+time.Millisecond {
		t.Errorf("overlapping 3x spike delivery %v, want ~%v (absolute, not composed)", d, 3*base)
	}
	net.ScaleLatency(1)
	if d := deliver(); d != base {
		t.Errorf("restored delivery %v, want %v", d, base)
	}

	for _, bad := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ScaleLatency(%v) did not panic", bad)
				}
			}()
			net.ScaleLatency(bad)
		}()
	}
}
