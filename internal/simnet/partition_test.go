package simnet

import (
	"testing"
	"time"

	"bitcoinng/internal/sim"
)

func TestPartitionDropsCrossTraffic(t *testing.T) {
	loop := sim.NewLoop(0)
	cfg := Config{
		Nodes:        4,
		MinPeers:     3, // clique
		Latency:      Fixed(time.Millisecond),
		BandwidthBPS: 1e9,
		Seed:         1,
	}
	net := New(loop, cfg)
	received := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		net.Handle(i, func(int, any, int) { received[i]++ })
	}

	// Partition {0,1} | {2,3}: cross-group messages vanish.
	net.SetPartition([]int{0, 0, 1, 1})
	net.Send(0, 1, "in-group", 10)
	net.Send(0, 2, "cross", 10)
	net.Send(3, 2, "in-group", 10)
	net.Send(3, 0, "cross", 10)
	loop.Drain(0)

	if received[1] != 1 || received[2] != 1 {
		t.Errorf("in-group delivery broken: %v", received)
	}
	if received[0] != 0 || received[3] != 0 {
		t.Errorf("cross-group message leaked: %v", received)
	}
	if net.Stats().MessagesLost != 2 {
		t.Errorf("lost = %d, want 2", net.Stats().MessagesLost)
	}

	// Heal: everything flows again.
	net.SetPartition(nil)
	net.Send(0, 2, "healed", 10)
	loop.Drain(0)
	if received[2] != 2 {
		t.Errorf("post-heal delivery broken: %v", received)
	}
}

func TestPartitionSizeValidated(t *testing.T) {
	loop := sim.NewLoop(0)
	net := New(loop, DefaultConfig(4, 1))
	defer func() {
		if recover() == nil {
			t.Error("wrong-size partition accepted")
		}
	}()
	net.SetPartition([]int{0, 1})
}
