// Package drops exercises every drop form errflow recognizes, plus the
// interprocedural wrapper rule: wrap() is tainted only because it calls
// into the consensus root package.
package drops

import "errfx/consensus"

// wrap is one hop above the root; errflow's fixpoint taints it.
func wrap(x int) error {
	return consensus.Validate(x)
}

func bare() {
	consensus.Validate(1) // want `error from errfx/consensus.Validate is silently discarded \(the call's results are ignored\)`
}

func blankWrap() {
	_ = wrap(2) // want `error from errfx/drops.wrap is assigned to _ \(wraps errfx/consensus.Validate\)`
}

func blankSlot(s *consensus.Store) int {
	n, _ := s.Apply(3) // want `error from errfx/consensus.\(Store\).Apply is assigned to _`
	return n
}

func deferred(s *consensus.Store) {
	defer s.Flush() // want `error from errfx/consensus.\(Store\).Flush is silently discarded \(deferred results are unobservable\)`
}

func spawned() {
	go consensus.Validate(4) // want `error from errfx/consensus.Validate is silently discarded \(goroutine results are unobservable\)`
}

// handled propagates properly — no finding anywhere in here.
func handled(s *consensus.Store, x int) error {
	if err := consensus.Validate(x); err != nil {
		return err
	}
	if _, err := s.Apply(x); err != nil {
		return err
	}
	return s.Flush()
}
