// Package consensus is the errflow fixture's stand-in for a validation
// root: every error-returning function here is consensus-critical.
package consensus

import "errors"

// Validate rejects negative values.
func Validate(x int) error {
	if x < 0 {
		return errors.New("consensus: negative")
	}
	return nil
}

// Store is a stand-in for a persistence layer.
type Store struct {
	n int
}

// Apply persists one value and reports the new count.
func (s *Store) Apply(x int) (int, error) {
	if x < 0 {
		return 0, errors.New("consensus: apply negative")
	}
	s.n++
	return s.n, nil
}

// Flush is a stand-in for a durability barrier.
func (s *Store) Flush() error {
	if s.n > 1000 {
		return errors.New("consensus: flush overflow")
	}
	return nil
}
