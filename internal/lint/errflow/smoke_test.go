package errflow_test

import (
	"testing"

	"bitcoinng/internal/lint/dataflow"
	"bitcoinng/internal/lint/errflow"
	"bitcoinng/internal/lint/linttest"
	"bitcoinng/internal/lint/load"
)

// TestModuleSweep runs errflow over the real module: every finding must
// carry a valid position, and the count is bounded to catch a propagation
// bug that taints everything.
func TestModuleSweep(t *testing.T) {
	root := linttest.ModuleRoot(t)
	l := load.New("bitcoinng", root)
	paths, err := l.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*load.Package
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			t.Fatalf("loading %s: %v", p, err)
		}
		pkgs = append(pkgs, pkg)
	}
	prog := dataflow.NewProgram(l.Fset(), pkgs)
	diags := errflow.Run(prog, errflow.ConsensusRoots, errflow.InZone)
	for _, d := range diags {
		if !d.Pos.IsValid() {
			t.Errorf("diagnostic without position: %s", d.Message)
		}
		t.Logf("%s: %s", l.Fset().Position(d.Pos), d.Message)
	}
	if len(diags) > 40 {
		t.Errorf("errflow produced %d findings — smells like a propagation false-positive flood", len(diags))
	}
}
