package errflow_test

import (
	"testing"

	"bitcoinng/internal/lint/dataflow"
	"bitcoinng/internal/lint/errflow"
	"bitcoinng/internal/lint/linttest"
)

// TestFixtures runs the analyzer over a synthetic consensus root plus a
// package exercising every recognized drop form. The production Analyzer
// hard-codes the real module's root packages, so this drives Run directly
// with the fixture's root set.
func TestFixtures(t *testing.T) {
	l, pkgs := linttest.LoadFixtures(t, "errfx/consensus", "errfx/drops")
	prog := dataflow.NewProgram(l.Fset(), pkgs)
	diags := errflow.Run(prog,
		map[string]bool{"errfx/consensus": true},
		func(string) bool { return true })
	linttest.CheckAll(t, l.Fset(), pkgs, diags)
}
