// Package errflow finds silently discarded errors on consensus-critical
// paths, interprocedurally.
//
// An error born in validation, chain state, UTXO application, or durable
// storage means the node's view of the chain may be wrong; dropping it is
// how a fork, a corrupt archive, or an accepted-invalid block becomes
// silent. `go vet` has no opinion on `_ =` and unused-variable checking
// stops at the first bounce, so this analyzer computes, over the module
// call graph, which functions can surface an error originating in a
// consensus package (directly, or by wrapping such a callee), and flags
// every call site that discards one:
//
//   - a call statement whose results are ignored entirely,
//   - an assignment with the blank identifier in the error slot,
//   - a `go` or `defer` of such a call (the error is unobservable even in
//     principle).
//
// Interface-dispatched calls are not resolved (no static callee); the
// analyzer is deliberately unsound in that direction rather than guessing.
// Intentional drops — best-effort teardown, errors already reported on
// another channel — carry a //nglint:allow errflow annotation with the
// justification.
package errflow

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"bitcoinng/internal/lint/analysis"
	"bitcoinng/internal/lint/dataflow"
)

// Analyzer is the nglint entry point.
var Analyzer = &analysis.ModuleAnalyzer{
	Name: "errflow",
	Doc:  "errors originating in validation/chain/utxo/storage code must not be discarded, no matter how many wrappers deep",
	Run: func(pass *analysis.ModulePass) error {
		prog := dataflow.NewProgram(pass.Fset, pass.Pkgs)
		for _, d := range Run(prog, ConsensusRoots, InZone) {
			pass.Report(d)
		}
		return nil
	},
}

// ConsensusRoots are the packages whose errors are consensus-critical:
// every error-returning function declared here seeds the propagation.
var ConsensusRoots = map[string]bool{
	"bitcoinng/internal/validate":   true,
	"bitcoinng/internal/chain":      true,
	"bitcoinng/internal/utxo":       true,
	"bitcoinng/internal/blockstore": true,
}

// InZone reports whether discarded errors in pkgPath are worth flagging:
// everything in the module except the lint tooling itself.
func InZone(pkgPath string) bool {
	return !strings.Contains(pkgPath, "/lint")
}

// Run computes error-origin summaries over the program and returns drop
// findings sorted by position.
func Run(prog *dataflow.Program, roots map[string]bool, inZone func(string) bool) []analysis.Diagnostic {
	e := &engine{prog: prog, origin: map[dataflow.FuncID]dataflow.FuncID{}}

	// Seed: error-returning functions declared in a consensus package.
	for _, f := range prog.Order {
		if roots[f.Pkg.Path] && returnsError(f.Sig) {
			e.origin[f.ID] = f.ID
		}
	}
	// Propagate to wrappers: an error-returning function that statically
	// calls a tainted function can be forwarding its error. Fixpoint over
	// the call graph; monotone, so it terminates.
	for changed := true; changed; {
		changed = false
		for _, f := range prog.Order {
			if _, done := e.origin[f.ID]; done || !returnsError(f.Sig) || f.Decl.Body == nil {
				continue
			}
			ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
				if _, done := e.origin[f.ID]; done {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := prog.Callee(f.Pkg.Info, call)
				if callee == nil {
					return true
				}
				if _, tainted := e.origin[callee.ID]; tainted {
					e.origin[f.ID] = callee.ID
					changed = true
					return false
				}
				return true
			})
		}
	}

	// Scan for drops.
	for _, f := range prog.Order {
		if !inZone(f.Pkg.Path) || f.Decl.Body == nil {
			continue
		}
		e.scan(f)
	}
	sort.Slice(e.diags, func(i, j int) bool {
		if e.diags[i].Pos != e.diags[j].Pos {
			return e.diags[i].Pos < e.diags[j].Pos
		}
		return e.diags[i].Message < e.diags[j].Message
	})
	return e.diags
}

type engine struct {
	prog *dataflow.Program
	// origin maps a function that can return a consensus error to the
	// callee that makes it so (itself, for the root packages).
	origin map[dataflow.FuncID]dataflow.FuncID
	diags  []analysis.Diagnostic
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	return types.TypeString(res.At(res.Len()-1).Type(), nil) == "error"
}

// scan walks one function body for call sites that discard a tainted
// callee's error.
func (e *engine) scan(f *dataflow.Func) {
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.ExprStmt:
			if call, ok := v.X.(*ast.CallExpr); ok {
				e.checkDrop(f, call, "the call's results are ignored")
				// The call's arguments may themselves contain drops;
				// recurse normally.
			}
		case *ast.GoStmt:
			e.checkDrop(f, v.Call, "goroutine results are unobservable")
		case *ast.DeferStmt:
			e.checkDrop(f, v.Call, "deferred results are unobservable")
		case *ast.AssignStmt:
			e.checkBlank(f, v)
		}
		return true
	})
}

// checkDrop flags call if its statically resolved callee can return a
// consensus error (which this statement form necessarily discards).
func (e *engine) checkDrop(f *dataflow.Func, call *ast.CallExpr, how string) {
	callee := e.prog.Callee(f.Pkg.Info, call)
	if callee == nil {
		return
	}
	org, tainted := e.origin[callee.ID]
	if !tainted {
		return
	}
	e.diags = append(e.diags, analysis.Diagnostic{
		Pos:     call.Pos(),
		Message: fmt.Sprintf("error from %s is silently discarded (%s)%s — a dropped validation/sync/persistence failure turns into silent state divergence", callee.ID, how, e.via(callee.ID, org)),
	})
}

// checkBlank flags assignments that send a tainted callee's error to the
// blank identifier.
func (e *engine) checkBlank(f *dataflow.Func, a *ast.AssignStmt) {
	if len(a.Rhs) != 1 {
		return
	}
	call, ok := a.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	callee := e.prog.Callee(f.Pkg.Info, call)
	if callee == nil {
		return
	}
	org, tainted := e.origin[callee.ID]
	if !tainted {
		return
	}
	// The error is the callee's last result; with a single lhs the single
	// result is the error itself.
	slot := len(a.Lhs) - 1
	if id, ok := a.Lhs[slot].(*ast.Ident); ok && id.Name == "_" {
		e.diags = append(e.diags, analysis.Diagnostic{
			Pos:     a.Pos(),
			Message: fmt.Sprintf("error from %s is assigned to _%s — a dropped validation/sync/persistence failure turns into silent state divergence", callee.ID, e.via(callee.ID, org)),
		})
	}
}

// via renders the propagation step that tainted the callee, so the reader
// sees why a wrapper three packages away is consensus-critical.
func (e *engine) via(callee, org dataflow.FuncID) string {
	if callee == org {
		return ""
	}
	return fmt.Sprintf(" (wraps %s)", org)
}
