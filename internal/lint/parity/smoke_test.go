package parity_test

import (
	"testing"

	"bitcoinng/internal/lint/dataflow"
	"bitcoinng/internal/lint/linttest"
	"bitcoinng/internal/lint/load"
	"bitcoinng/internal/lint/parity"
)

func TestModuleSweepParity(t *testing.T) {
	root := linttest.ModuleRoot(t)
	l := load.New("bitcoinng", root)
	paths, err := l.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*load.Package
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			t.Fatalf("loading %s: %v", p, err)
		}
		pkgs = append(pkgs, pkg)
	}
	prog := dataflow.NewProgram(l.Fset(), pkgs)
	for _, d := range parity.Run(prog, parity.Default()) {
		t.Logf("%s: %s", l.Fset().Position(d.Pos), d.Message)
	}
}
