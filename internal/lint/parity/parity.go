// Package parity statically diffs surfaces that the codebase promises to
// keep in lockstep but that the compiler cannot couple:
//
//   - interface parity: every type that sets out to implement a harness
//     interface (it declares at least half of the methods) must implement
//     all of it. Inside the module the compiler enforces this at the
//     assignment site — but a harness loaded with soft type errors, or an
//     implementation whose interface assertion was lost in a refactor,
//     silently drifts. The check also names the missing methods directly,
//     where the compiler error names only the first.
//
//   - wire-codec parity: the set of gossip message types must be closed
//     under encode (p2p transport), decode, and dispatch (gossip
//     type-switch). A type handled by three of the four surfaces is a
//     protocol message that one transport silently cannot carry.
//
//   - catalogue parity: every exported invariant constructor must be wired
//     into the default catalogue, or a scenario harness that asks for "all
//     invariants" silently runs without it.
//
//   - hook parity: every method of the strategy interface must be invoked
//     by the mining/processing harness somewhere; an unthreaded hook means
//     adversarial strategies implement dead code and the experiment
//     silently measures honest behavior.
//
// All type matching is by package-path-qualified name strings, not
// types.Object identity: the source loader hands full loads and imports
// distinct *types.Package instances for the same path, and sandbox loads
// (non-module paths, soft type errors tolerated) never share identity with
// anything.
package parity

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"bitcoinng/internal/lint/analysis"
	"bitcoinng/internal/lint/dataflow"
	"bitcoinng/internal/lint/load"
)

// Analyzer is the nglint entry point, running the default contracts.
var Analyzer = &analysis.ModuleAnalyzer{
	Name: "parity",
	Doc:  "paired surfaces must not drift: harness interfaces fully implemented, wire message types encodable+decodable+dispatchable, invariant catalogue complete, strategy hooks threaded",
	Run: func(pass *analysis.ModulePass) error {
		prog := dataflow.NewProgram(pass.Fset, pass.Pkgs)
		for _, d := range Run(prog, Default()) {
			pass.Report(d)
		}
		return nil
	},
}

// ImplContract names an interface whose implementations must be complete: a
// type declaring at least half of the interface's methods is considered an
// intended implementation and every missing method is reported.
type ImplContract struct {
	IfacePkg, IfaceName string
	// Exempt maps package-qualified type names ("pkg/path.Type") to the
	// reason their partial overlap is deliberate — a lower-layer primitive
	// that shares the vocabulary without implementing the contract.
	Exempt map[string]string
}

// MsgContract couples the wire message surfaces.
type MsgContract struct {
	// ConstPkg/ConstType name the message-type constant universe.
	ConstPkg, ConstType string
	// ConstExempt maps constant names to the reason they are exempt from
	// the must-be-used rule (e.g. a value documented as never sent).
	ConstExempt map[string]string
	// IfacePkg/IfaceName name the in-memory message interface; ImplPkg is
	// where its implementations live.
	IfacePkg, IfaceName, ImplPkg string
	// Encoder and Dispatcher type-switch directly over message types;
	// Decoder constructs them anywhere in its call closure.
	Encoder, Decoder, Dispatcher dataflow.FuncID
}

// CatalogueContract requires every exported constructor returning ResultType
// (declared in Pkg) to be called inside Aggregator's body.
type CatalogueContract struct {
	Pkg, ResultType string
	Aggregator      dataflow.FuncID
}

// HookContract requires every method of the named interface to have at
// least one call site somewhere in the module.
type HookContract struct {
	IfacePkg, IfaceName string
}

// Contracts is the full parity specification. Tests substitute narrower
// ones; nglint runs Default().
type Contracts struct {
	Impl      []ImplContract
	Msg       []MsgContract
	Catalogue []CatalogueContract
	Hooks     []HookContract
}

// Default returns the repository's parity contracts.
func Default() Contracts {
	return Contracts{
		Impl: []ImplContract{
			{IfacePkg: "bitcoinng/internal/scenario", IfaceName: "Runtime"},
			// The storage backends pair up behind each interface (mem/file);
			// the chaos differential byte-compares runs across them, which
			// only means anything if both sides expose the whole surface.
			{
				IfacePkg: "bitcoinng/internal/store", IfaceName: "UTXO",
				Exempt: map[string]string{
					"bitcoinng/internal/store.pagedTable": "on-disk hash table under FileUTXO; shares the ledger vocabulary (Len/Range/Poisoned/...) one layer below the contract",
					"bitcoinng/internal/utxo.memBackend":  "map-based table under *utxo.Set; same one-layer-below vocabulary overlap as store.pagedTable",
				},
			},
			{
				IfacePkg: "bitcoinng/internal/store", IfaceName: "ChainIndex",
				Exempt: map[string]string{
					"bitcoinng/internal/blockstore.Store": "hash-keyed block archive primitive under FileIndex; has no arrival-time column by design",
					"bitcoinng/internal/blockstore.Mem":   "in-memory mirror of blockstore.Store; same deliberate gap",
				},
			},
		},
		Msg: []MsgContract{{
			ConstPkg:  "bitcoinng/internal/wire",
			ConstType: "MsgType",
			ConstExempt: map[string]string{
				"MsgInvalid": "zero value, documented never sent",
			},
			IfacePkg:   "bitcoinng/internal/node",
			IfaceName:  "Message",
			ImplPkg:    "bitcoinng/internal/node",
			Encoder:    "bitcoinng/internal/p2p.encodeMessage",
			Decoder:    "bitcoinng/internal/p2p.decodeMessage",
			Dispatcher: "bitcoinng/internal/node.(Gossip).HandleMessage",
		}},
		Catalogue: []CatalogueContract{{
			Pkg:        "bitcoinng/internal/invariant",
			ResultType: "Invariant",
			Aggregator: "bitcoinng/internal/invariant.Defaults",
		}},
		Hooks: []HookContract{
			{IfacePkg: "bitcoinng/internal/strategy", IfaceName: "Strategy"},
		},
	}
}

// Run applies the contracts to the loaded program. Contracts whose anchor
// (interface, constant universe, aggregator) is absent from the load are
// skipped: sandbox loads analyze single packages.
func Run(prog *dataflow.Program, c Contracts) []analysis.Diagnostic {
	r := &runner{prog: prog}
	for _, ic := range c.Impl {
		r.implContract(ic)
	}
	for _, mc := range c.Msg {
		r.msgContract(mc)
	}
	for _, cc := range c.Catalogue {
		r.catalogueContract(cc)
	}
	for _, hc := range c.Hooks {
		r.hookContract(hc)
	}
	sort.Slice(r.diags, func(i, j int) bool {
		if r.diags[i].Pos != r.diags[j].Pos {
			return r.diags[i].Pos < r.diags[j].Pos
		}
		return r.diags[i].Message < r.diags[j].Message
	})
	return r.diags
}

type runner struct {
	prog  *dataflow.Program
	diags []analysis.Diagnostic
}

func (r *runner) reportf(pos token.Pos, format string, args ...any) {
	r.diags = append(r.diags, analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

func (r *runner) pos(p token.Pos) string {
	pp := r.prog.Fset.Position(p)
	name := pp.Filename
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, pp.Line)
}

// findTypesPkg resolves a package path to type information, searching the
// loaded packages first and their transitive imports second (a sandbox load
// sees module packages only as imports).
func (r *runner) findTypesPkg(path string) *types.Package {
	for _, p := range r.prog.Pkgs {
		if p.Path == path {
			return p.Types
		}
	}
	seen := map[*types.Package]bool{}
	var find func(p *types.Package) *types.Package
	find = func(p *types.Package) *types.Package {
		if p == nil || seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == path {
			return p
		}
		for _, imp := range p.Imports() {
			if got := find(imp); got != nil {
				return got
			}
		}
		return nil
	}
	for _, p := range r.prog.Pkgs {
		if got := find(p.Types); got != nil {
			return got
		}
	}
	return nil
}

// findIface resolves pkgPath.name to its interface type.
func (r *runner) findIface(pkgPath, name string) *types.Interface {
	tp := r.findTypesPkg(pkgPath)
	if tp == nil {
		return nil
	}
	tn, ok := tp.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	iface, _ := tn.Type().Underlying().(*types.Interface)
	return iface
}

// ifaceMethods returns the interface's method names with positions, sorted.
func ifaceMethods(iface *types.Interface) []*types.Func {
	var out []*types.Func
	for i := 0; i < iface.NumMethods(); i++ {
		out = append(out, iface.Method(i))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// --- interface implementation parity -----------------------------------

func (r *runner) implContract(c ImplContract) {
	iface := r.findIface(c.IfacePkg, c.IfaceName)
	if iface == nil {
		return
	}
	want := ifaceMethods(iface)
	short := c.IfacePkg[strings.LastIndex(c.IfacePkg, "/")+1:] + "." + c.IfaceName
	for _, pkg := range r.prog.Pkgs {
		scope := pkg.Types.Scope()
		for _, nm := range scope.Names() {
			tn, ok := scope.Lookup(nm).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if _, exempt := c.Exempt[pkg.Path+"."+nm]; exempt {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			ms := types.NewMethodSet(types.NewPointer(named))
			have := map[string]bool{}
			for i := 0; i < ms.Len(); i++ {
				have[ms.At(i).Obj().Name()] = true
			}
			hits := 0
			var missing []string
			for _, m := range want {
				if have[m.Name()] {
					hits++
				} else {
					missing = append(missing, fmt.Sprintf("%s (interface method at %s)", m.Name(), r.pos(m.Pos())))
				}
			}
			// At least half the interface: an intended implementation, not
			// a coincidental name overlap.
			if len(missing) == 0 || hits < (len(want)+1)/2 {
				continue
			}
			r.reportf(tn.Pos(), "%s implements %d of %d %s methods but is missing %s — the harnesses must stay step-for-step interchangeable",
				nm, hits, len(want), short, strings.Join(missing, ", "))
		}
	}
}

// --- wire message parity ------------------------------------------------

func (r *runner) msgContract(c MsgContract) {
	constUniverse := r.msgConsts(c)
	if constUniverse != nil {
		r.checkConstsUsed(c, constUniverse)
		r.checkCodecClosureParity(c, constUniverse)
	}
	iface := r.findIface(c.IfacePkg, c.IfaceName)
	if iface == nil {
		return
	}
	impls := r.msgImpls(c, iface)
	if len(impls) == 0 {
		return
	}
	if enc, ok := r.prog.Funcs[c.Encoder]; ok {
		cases := r.typeSwitchCases(enc)
		for _, im := range impls {
			if !cases[im.Name()] {
				r.reportf(im.Pos(), "message type %s is not a case in %s (%s) — the TCP transport cannot send it while the simulator can",
					im.Name(), c.Encoder, r.posOfFunc(c.Encoder))
			}
		}
	}
	if dec, ok := r.prog.Funcs[c.Decoder]; ok {
		refs := r.closureTypeRefs(dec, c.ImplPkg)
		for _, im := range impls {
			if !refs[im.Name()] {
				r.reportf(im.Pos(), "message type %s is never constructed in the call closure of %s (%s) — peers can send what this transport cannot receive",
					im.Name(), c.Decoder, r.posOfFunc(c.Decoder))
			}
		}
	}
	if dsp, ok := r.prog.Funcs[c.Dispatcher]; ok {
		cases := r.typeSwitchCases(dsp)
		for _, im := range impls {
			if !cases[im.Name()] {
				r.reportf(im.Pos(), "message type %s has no case in %s (%s) — received messages of this type are silently dropped",
					im.Name(), c.Dispatcher, r.posOfFunc(c.Dispatcher))
			}
		}
	}
}

func (r *runner) posOfFunc(id dataflow.FuncID) string {
	if f, ok := r.prog.Funcs[id]; ok {
		return r.pos(f.Decl.Pos())
	}
	return "?"
}

// msgConsts returns the exported constants of the contract's message-type
// universe, or nil if the declaring package is not part of the load.
func (r *runner) msgConsts(c MsgContract) map[string]*types.Const {
	var declPkg *load.Package
	for _, p := range r.prog.Pkgs {
		if p.Path == c.ConstPkg {
			declPkg = p
		}
	}
	if declPkg == nil {
		return nil
	}
	want := c.ConstPkg + "." + c.ConstType
	out := map[string]*types.Const{}
	scope := declPkg.Types.Scope()
	for _, nm := range scope.Names() {
		cn, ok := scope.Lookup(nm).(*types.Const)
		if !ok || !cn.Exported() {
			continue
		}
		if types.TypeString(cn.Type(), nil) == want {
			out[nm] = cn
		}
	}
	return out
}

// checkConstsUsed reports message-type constants never referenced outside
// their declaring package: a type tag no codec or dispatcher knows.
func (r *runner) checkConstsUsed(c MsgContract, universe map[string]*types.Const) {
	used := map[string]bool{}
	want := c.ConstPkg + "." + c.ConstType
	for _, pkg := range r.prog.Pkgs {
		if pkg.Path == c.ConstPkg {
			continue
		}
		for id, obj := range pkg.Info.Uses {
			cn, ok := obj.(*types.Const)
			if !ok || types.TypeString(cn.Type(), nil) != want {
				continue
			}
			if _, known := universe[id.Name]; known {
				used[id.Name] = true
			}
		}
	}
	var names []string
	for nm := range universe {
		names = append(names, nm)
	}
	sort.Strings(names)
	for _, nm := range names {
		if used[nm] {
			continue
		}
		if why, exempt := c.ConstExempt[nm]; exempt {
			_ = why
			continue
		}
		r.reportf(universe[nm].Pos(), "wire message type %s is declared but never encoded, decoded, or dispatched outside %s — a dead protocol surface or a missing codec case",
			nm, c.ConstPkg)
	}
}

// checkCodecClosureParity diffs the message-type constants reachable from
// the encoder's call closure against the decoder's: every type one side of
// the codec knows, the other must too.
func (r *runner) checkCodecClosureParity(c MsgContract, universe map[string]*types.Const) {
	enc, okE := r.prog.Funcs[c.Encoder]
	dec, okD := r.prog.Funcs[c.Decoder]
	if !okE || !okD {
		return
	}
	want := c.ConstPkg + "." + c.ConstType
	encRefs := r.closureConstRefs(enc, want, universe)
	decRefs := r.closureConstRefs(dec, want, universe)
	var names []string
	for nm := range universe {
		names = append(names, nm)
	}
	sort.Strings(names)
	for _, nm := range names {
		if _, exempt := c.ConstExempt[nm]; exempt {
			continue
		}
		switch {
		case encRefs[nm] && !decRefs[nm]:
			r.reportf(universe[nm].Pos(), "codec asymmetry: %s is referenced in the call closure of %s (%s) but not of %s (%s) — the transport can produce frames it cannot parse",
				nm, c.Encoder, r.posOfFunc(c.Encoder), c.Decoder, r.posOfFunc(c.Decoder))
		case decRefs[nm] && !encRefs[nm]:
			r.reportf(universe[nm].Pos(), "codec asymmetry: %s is referenced in the call closure of %s (%s) but not of %s (%s) — the transport accepts frames it can never send",
				nm, c.Decoder, r.posOfFunc(c.Decoder), c.Encoder, r.posOfFunc(c.Encoder))
		}
	}
}

// msgImpls returns the named types in ImplPkg implementing the message
// interface (by full method-name coverage).
func (r *runner) msgImpls(c MsgContract, iface *types.Interface) []*types.TypeName {
	var implPkg *load.Package
	for _, p := range r.prog.Pkgs {
		if p.Path == c.ImplPkg {
			implPkg = p
		}
	}
	if implPkg == nil {
		return nil
	}
	want := ifaceMethods(iface)
	var out []*types.TypeName
	scope := implPkg.Types.Scope()
	for _, nm := range scope.Names() {
		tn, ok := scope.Lookup(nm).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		ms := types.NewMethodSet(types.NewPointer(named))
		have := map[string]bool{}
		for i := 0; i < ms.Len(); i++ {
			have[ms.At(i).Obj().Name()] = true
		}
		all := true
		for _, m := range want {
			if !have[m.Name()] {
				all = false
				break
			}
		}
		if all {
			out = append(out, tn)
		}
	}
	return out
}

// typeSwitchCases returns the base names of all case types in the first
// type switch of f's body.
func (r *runner) typeSwitchCases(f *dataflow.Func) map[string]bool {
	out := map[string]bool{}
	if f.Decl.Body == nil {
		return out
	}
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSwitchStmt)
		if !ok {
			return true
		}
		for _, s := range ts.Body.List {
			cc, ok := s.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, e := range cc.List {
				t := f.Pkg.Info.TypeOf(e)
				if t == nil {
					continue
				}
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
				}
				if named, ok := t.(*types.Named); ok {
					out[named.Obj().Name()] = true
				}
			}
		}
		return false
	})
	return out
}

// closure returns f plus every function statically reachable from it
// through the loaded program.
func (r *runner) closure(root *dataflow.Func) []*dataflow.Func {
	seen := map[dataflow.FuncID]bool{root.ID: true}
	work := []*dataflow.Func{root}
	out := []*dataflow.Func{root}
	for len(work) > 0 {
		f := work[0]
		work = work[1:]
		if f.Decl.Body == nil {
			continue
		}
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := r.prog.Callee(f.Pkg.Info, call)
			if callee != nil && !seen[callee.ID] {
				seen[callee.ID] = true
				work = append(work, callee)
				out = append(out, callee)
			}
			return true
		})
	}
	return out
}

// closureConstRefs collects which universe constants are referenced
// anywhere in root's call closure.
func (r *runner) closureConstRefs(root *dataflow.Func, typeStr string, universe map[string]*types.Const) map[string]bool {
	out := map[string]bool{}
	for _, f := range r.closure(root) {
		if f.Decl.Body == nil {
			continue
		}
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			cn, ok := f.Pkg.Info.Uses[id].(*types.Const)
			if !ok || types.TypeString(cn.Type(), nil) != typeStr {
				return true
			}
			if _, known := universe[id.Name]; known {
				out[id.Name] = true
			}
			return true
		})
	}
	return out
}

// closureTypeRefs collects which named types of implPkg are referenced
// anywhere in root's call closure.
func (r *runner) closureTypeRefs(root *dataflow.Func, implPkg string) map[string]bool {
	out := map[string]bool{}
	for _, f := range r.closure(root) {
		if f.Decl.Body == nil {
			continue
		}
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			tn, ok := f.Pkg.Info.Uses[id].(*types.TypeName)
			if !ok || tn.Pkg() == nil || tn.Pkg().Path() != implPkg {
				return true
			}
			out[tn.Name()] = true
			return true
		})
	}
	return out
}

// --- catalogue parity ---------------------------------------------------

func (r *runner) catalogueContract(c CatalogueContract) {
	var pkg *load.Package
	for _, p := range r.prog.Pkgs {
		if p.Path == c.Pkg {
			pkg = p
		}
	}
	agg, ok := r.prog.Funcs[c.Aggregator]
	if pkg == nil || !ok || agg.Decl.Body == nil {
		return
	}
	resultType := c.Pkg + "." + c.ResultType
	called := map[string]bool{}
	ast.Inspect(agg.Decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if fn, ok := agg.Pkg.Info.Uses[id].(*types.Func); ok {
			called[fn.Name()] = true
		}
		return true
	})
	scope := pkg.Types.Scope()
	for _, nm := range scope.Names() {
		fn, ok := scope.Lookup(nm).(*types.Func)
		if !ok || !fn.Exported() {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Results().Len() != 1 {
			continue
		}
		if types.TypeString(sig.Results().At(0).Type(), nil) != resultType {
			continue
		}
		if !called[nm] {
			r.reportf(fn.Pos(), "invariant constructor %s is not part of %s (%s) — harnesses running the default catalogue never check it",
				nm, c.Aggregator, r.posOfFunc(c.Aggregator))
		}
	}
}

// --- hook parity --------------------------------------------------------

func (r *runner) hookContract(c HookContract) {
	iface := r.findIface(c.IfacePkg, c.IfaceName)
	if iface == nil {
		return
	}
	want := c.IfacePkg + "." + c.IfaceName
	called := map[string]bool{}
	for _, f := range r.prog.Order {
		if f.Decl.Body == nil {
			continue
		}
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := f.Pkg.Info.Selections[sel]
			if s == nil || s.Kind() != types.MethodVal {
				return true
			}
			recv := s.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if types.TypeString(recv, nil) == want {
				called[sel.Sel.Name] = true
			}
			return true
		})
	}
	short := c.IfacePkg[strings.LastIndex(c.IfacePkg, "/")+1:] + "." + c.IfaceName
	for _, m := range ifaceMethods(iface) {
		if !called[m.Name()] {
			r.reportf(m.Pos(), "hook %s.%s is declared but no harness ever invokes it — implementations are dead code and experiments silently measure default behavior",
				short, m.Name())
		}
	}
}
