package parity_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bitcoinng/internal/lint/dataflow"
	"bitcoinng/internal/lint/linttest"
	"bitcoinng/internal/lint/load"
	"bitcoinng/internal/lint/parity"
)

// TestFixtures drives all four contract families over a synthetic surface
// with one deliberate gap per family.
func TestFixtures(t *testing.T) {
	l, pkgs := linttest.LoadFixtures(t,
		"parityfx/iface", "parityfx/impl",
		"parityfx/wiremsg", "parityfx/codec",
		"parityfx/cat", "parityfx/hooks")
	prog := dataflow.NewProgram(l.Fset(), pkgs)
	c := parity.Contracts{
		Impl: []parity.ImplContract{
			{IfacePkg: "parityfx/iface", IfaceName: "Runner"},
		},
		Msg: []parity.MsgContract{{
			ConstPkg:    "parityfx/wiremsg",
			ConstType:   "Kind",
			ConstExempt: map[string]string{"KindZero": "zero value, never framed"},
			IfacePkg:    "parityfx/codec",
			IfaceName:   "Message",
			ImplPkg:     "parityfx/codec",
			Encoder:     "parityfx/codec.encode",
			Decoder:     "parityfx/codec.decode",
			Dispatcher:  "parityfx/codec.dispatch",
		}},
		Catalogue: []parity.CatalogueContract{{
			Pkg:        "parityfx/cat",
			ResultType: "Check",
			Aggregator: "parityfx/cat.All",
		}},
		Hooks: []parity.HookContract{
			{IfacePkg: "parityfx/hooks", IfaceName: "Hook"},
		},
	}
	diags := parity.Run(prog, c)
	linttest.CheckAll(t, l.Fset(), pkgs, diags)
}

// TestRemovedCrashCaught is the acceptance test from the issue: a copy of
// the experiment harness with its Crash implementation renamed away must
// fail the Runtime interface-parity contract. The sandbox package resolves
// scenario.Runtime through its own imports, so the contract needs no
// module-wide load.
func TestRemovedCrashCaught(t *testing.T) {
	root := linttest.ModuleRoot(t)
	src := filepath.Join(root, "internal", "experiment")
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	renamed := false
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if s := string(b); strings.Contains(s, "func (r *runner) Crash(") {
			b = []byte(strings.Replace(s, "func (r *runner) Crash(", "func (r *runner) crashRemoved(", 1))
			renamed = true
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if !renamed {
		t.Fatal("did not find the runner.Crash declaration to remove — the harness has moved")
	}

	// A non-module import path tolerates the soft type errors the rename
	// leaves behind (runner no longer satisfies scenario.Runtime).
	l := load.New("bitcoinng", root)
	pkg, err := l.LoadDir("experiment_x", dst)
	if err != nil {
		t.Fatalf("loading mutilated copy: %v", err)
	}
	prog := dataflow.NewProgram(l.Fset(), []*load.Package{pkg})
	c := parity.Contracts{Impl: []parity.ImplContract{
		{IfacePkg: "bitcoinng/internal/scenario", IfaceName: "Runtime"},
	}}
	found := false
	for _, d := range parity.Run(prog, c) {
		t.Logf("%s: %s", l.Fset().Position(d.Pos), d.Message)
		if strings.Contains(d.Message, "runner implements") && strings.Contains(d.Message, "missing Crash") {
			found = true
		}
	}
	if !found {
		t.Errorf("removing runner.Crash produced no interface-parity finding; a harness could silently lose a Runtime method")
	}

	// Control: the intact harness passes the same contract.
	clean := load.New("bitcoinng", root)
	cpkg, err := clean.LoadDir("experiment_ok", src)
	if err != nil {
		t.Fatal(err)
	}
	cprog := dataflow.NewProgram(clean.Fset(), []*load.Package{cpkg})
	for _, d := range parity.Run(cprog, c) {
		t.Errorf("intact experiment copy produced finding: %s: %s", clean.Fset().Position(d.Pos), d.Message)
	}
}
