// Package iface declares the fixture's harness-runtime interface.
package iface

// Runner is a four-method stand-in for scenario.Runtime.
type Runner interface {
	Start(node int) error
	Stop(node int) error
	Crash(node int) error
	Tick() int
}
