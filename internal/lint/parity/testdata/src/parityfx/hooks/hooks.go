// Package hooks is the hook-parity fixture: every interface method must
// be invoked somewhere, or implementations are dead code.
package hooks

// Hook is a stand-in for strategy.Strategy.
type Hook interface {
	Before(step int)
	After(step int) // want `hook hooks.Hook.After is declared but no harness ever invokes it`
}

// drive threads only Before through the harness.
func drive(h Hook, steps int) {
	for i := 0; i < steps; i++ {
		h.Before(i)
	}
}
