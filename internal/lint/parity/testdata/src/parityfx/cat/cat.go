// Package cat is the catalogue-parity fixture: exported Check
// constructors must all appear in All().
package cat

// Check is a stand-in for invariant.Invariant.
type Check struct{ name string }

func NewHeight() Check { return Check{"height"} }

func NewWeight() Check { return Check{"weight"} }

// NewOrphan exists but was never wired into the default catalogue.
func NewOrphan() Check { return Check{"orphan"} } // want `invariant constructor NewOrphan is not part of parityfx/cat.All`

// All is the default catalogue.
func All() []Check {
	return []Check{NewHeight(), NewWeight()}
}
