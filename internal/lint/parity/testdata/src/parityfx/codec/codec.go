// Package codec holds the fixture's message interface, its
// implementations, and a deliberately lopsided encode/decode/dispatch
// trio: encode lost MsgC, dispatch lost MsgB.
package codec

import "parityfx/wiremsg"

// Message is the in-memory message interface.
type Message interface {
	Kind() wiremsg.Kind
}

type MsgA struct{}

func (*MsgA) Kind() wiremsg.Kind { return wiremsg.KindA }

type MsgB struct{} // want `message type MsgB has no case in parityfx/codec.dispatch .* — received messages of this type are silently dropped`

func (*MsgB) Kind() wiremsg.Kind { return wiremsg.KindB }

type MsgC struct{} // want `message type MsgC is not a case in parityfx/codec.encode .* — the TCP transport cannot send it while the simulator can`

func (*MsgC) Kind() wiremsg.Kind { return wiremsg.KindC }

// encode frames a message; the MsgC case is missing.
func encode(m Message) []byte {
	switch m.(type) {
	case *MsgA:
		return []byte{byte(wiremsg.KindA)}
	case *MsgB:
		return []byte{byte(wiremsg.KindB)}
	}
	return nil
}

// decode parses a frame; it knows every kind, including one encode does
// not produce.
func decode(k wiremsg.Kind) Message {
	switch k {
	case wiremsg.KindA:
		return &MsgA{}
	case wiremsg.KindB:
		return &MsgB{}
	case wiremsg.KindC:
		return &MsgC{}
	}
	return nil
}

// dispatch routes a received message; the MsgB case is missing.
func dispatch(m Message) int {
	switch m.(type) {
	case *MsgA:
		return 1
	case *MsgC:
		return 3
	}
	return 0
}
