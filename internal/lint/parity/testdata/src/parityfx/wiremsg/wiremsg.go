// Package wiremsg declares the fixture's message-type constant universe.
// Codec-asymmetry and dead-surface findings anchor at the constant
// declarations here.
package wiremsg

// Kind tags a frame on the wire.
type Kind uint8

const (
	// KindZero is the zero value; the contract exempts it.
	KindZero Kind = iota
	KindA
	KindB
	KindC    // want `codec asymmetry: KindC is referenced in the call closure of parityfx/codec.decode .* but not of parityfx/codec.encode .* — the transport accepts frames it can never send`
	KindDead // want `wire message type KindDead is declared but never encoded, decoded, or dispatched outside parityfx/wiremsg`
)
