// Package impl holds two intended Runner implementations: one complete,
// one that silently lost a method.
package impl

import "parityfx/iface"

// Good implements all four Runner methods.
type Good struct{ now int }

var _ iface.Runner = (*Good)(nil)

func (g *Good) Start(node int) error { return nil }
func (g *Good) Stop(node int) error  { return nil }
func (g *Good) Crash(node int) error { return nil }
func (g *Good) Tick() int            { g.now++; return g.now }

// Bad covers three of the four methods — enough overlap to be an intended
// implementation, so the missing Crash is a parity break, not noise.
type Bad struct{ now int } // want `Bad implements 3 of 4 iface.Runner methods but is missing Crash`

func (b *Bad) Start(node int) error { return nil }
func (b *Bad) Stop(node int) error  { return nil }
func (b *Bad) Tick() int            { b.now++; return b.now }

// Unrelated shares only one method name with Runner — below the half
// threshold, so it draws no finding.
type Unrelated struct{}

func (Unrelated) Tick() int { return 0 }
