// Package load parses and type-checks this module's packages from source,
// with no dependency on golang.org/x/tools/go/packages (the build
// environment is hermetic). Imports are resolved recursively: paths under
// the module prefix map into the repository, everything else maps into
// GOROOT/src (with the GOROOT vendor directory as fallback), and "unsafe"
// maps to types.Unsafe. The module has no third-party requirements, so this
// two-way split is complete.
//
// Test files (_test.go) are deliberately excluded everywhere: the nglint
// contract governs production code, and tests legitimately use wall clocks,
// ad-hoc randomness, and unordered iteration.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one fully loaded module package, ready for analysis.
type Package struct {
	Path  string   // import path, e.g. "bitcoinng/internal/sim"
	Dir   string   // absolute directory
	Files []*ast.File
	// Filenames[i] is the absolute path of Files[i].
	Filenames []string
	// Src maps absolute filename to raw source, used by the driver to
	// distinguish trailing from standalone //nglint:allow comments.
	Src   map[string][]byte
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages. It caches by import path, so a
// shared Loader across many target packages type-checks the standard
// library closure once.
type Loader struct {
	ModulePath string // e.g. "bitcoinng"
	ModuleDir  string // absolute repository root

	fset *token.FileSet
	ctx  build.Context
	// cache maps import path to the finished type-checked package.
	cache map[string]*types.Package
	// loading guards against import cycles.
	loading map[string]bool
	// typeErrs accumulates soft type errors per import path.
	typeErrs map[string][]error
}

// New returns a Loader rooted at moduleDir for the given module path.
func New(modulePath, moduleDir string) *Loader {
	ctx := build.Default
	// Pure-Go file sets everywhere: cgo-gated files cannot be
	// type-checked from source, and every package this module touches has
	// a pure-Go fallback.
	ctx.CgoEnabled = false
	return &Loader{
		ModulePath: modulePath,
		ModuleDir:  moduleDir,
		fset:       token.NewFileSet(),
		ctx:        ctx,
		cache:      map[string]*types.Package{"unsafe": types.Unsafe},
		loading:    map[string]bool{},
		typeErrs:   map[string][]error{},
	}
}

// Fset returns the shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer by loading path recursively. Only type
// information is retained for dependencies.
func (l *Loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	dir, err := l.resolveDir(path)
	if err != nil {
		return nil, err
	}
	_, tpkg, _, err := l.check(path, dir, false)
	return tpkg, err
}

// resolveDir maps an import path to a source directory.
func (l *Loader) resolveDir(path string) (string, error) {
	if path == l.ModulePath {
		return l.ModuleDir, nil
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), nil
	}
	root := l.ctx.GOROOT
	dir := filepath.Join(root, "src", filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return dir, nil
	}
	vdir := filepath.Join(root, "src", "vendor", filepath.FromSlash(path))
	if st, err := os.Stat(vdir); err == nil && st.IsDir() {
		return vdir, nil
	}
	return "", fmt.Errorf("cannot resolve import %q (not under %s or GOROOT)", path, l.ModulePath)
}

// check parses and type-checks the package in dir under import path. When
// full is true the syntax, sources, and types.Info are returned for
// analysis; otherwise only the types.Package is built.
func (l *Loader) check(path, dir string, full bool) ([]*ast.File, *types.Package, *Package, error) {
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	names := append([]string{}, bp.GoFiles...)
	sort.Strings(names)

	var (
		files     []*ast.File
		filenames []string
		src       map[string][]byte
	)
	mode := parser.SkipObjectResolution
	if full {
		mode |= parser.ParseComments
		src = map[string][]byte{}
	}
	for _, name := range names {
		fn := filepath.Join(dir, name)
		b, err := os.ReadFile(fn)
		if err != nil {
			return nil, nil, nil, err
		}
		f, err := parser.ParseFile(l.fset, fn, b, mode)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
		filenames = append(filenames, fn)
		if full {
			src[fn] = b
		}
	}

	var info *types.Info
	if full {
		info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Sizes:       types.SizesFor("gc", l.ctx.GOARCH),
		Error: func(err error) {
			l.typeErrs[path] = append(l.typeErrs[path], err)
		},
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	// Module packages must type-check cleanly: the repository builds, so
	// an error here means the loader resolved something wrong, and
	// analyzers would see broken type info. Standard-library packages are
	// allowed soft errors (assembly-backed declarations and linknames
	// resolve to valid-but-bodyless Go), as long as a usable package came
	// back.
	if errs := l.typeErrs[path]; len(errs) > 0 && strings.HasPrefix(path, l.ModulePath) {
		return nil, nil, nil, fmt.Errorf("type-checking %s: %v", path, errs[0])
	}
	// A full (analysis) load may re-check a path that was already imported
	// types-only by an earlier target. Keep the first types.Package in the
	// cache so importers stay stable; the fresh one is internally
	// consistent with the new Info, which is all a per-package pass needs.
	if _, ok := l.cache[path]; !ok {
		l.cache[path] = tpkg
	}

	var pkg *Package
	if full {
		pkg = &Package{
			Path:      path,
			Dir:       dir,
			Files:     files,
			Filenames: filenames,
			Src:       src,
			Types:     tpkg,
			Info:      info,
		}
	}
	return files, tpkg, pkg, nil
}

// Load fully loads the package at the given import path for analysis.
func (l *Loader) Load(path string) (*Package, error) {
	dir, err := l.resolveDir(path)
	if err != nil {
		return nil, err
	}
	return l.LoadDir(path, dir)
}

// LoadDir fully loads the package in dir, registering it under the given
// import path. Used by linttest to load fixture directories that live under
// testdata (invisible to the go tool) while still resolving their imports of
// real module packages.
func (l *Loader) LoadDir(path, dir string) (*Package, error) {
	_, _, pkg, err := l.check(path, dir, true)
	return pkg, err
}

// ModulePackages returns the import paths of every package in the module,
// in sorted order: the repository root plus every directory under it with
// buildable Go files, skipping testdata, hidden directories, and this lint
// suite's own fixture trees.
func (l *Loader) ModulePackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.ModuleDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModuleDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if _, err := l.ctx.ImportDir(p, 0); err != nil {
			// No buildable Go files here; keep walking subdirectories.
			return nil //nolint:nilerr
		}
		rel, err := filepath.Rel(l.ModuleDir, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.ModulePath)
		} else {
			paths = append(paths, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}
