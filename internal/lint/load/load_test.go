package load

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot walks up from the working directory to the directory holding
// go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}

func TestLoadModulePackage(t *testing.T) {
	l := New("bitcoinng", moduleRoot(t))
	pkg, err := l.Load("bitcoinng/internal/wire")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Name() != "wire" {
		t.Fatalf("package name = %q, want wire", pkg.Types.Name())
	}
	if pkg.Types.Scope().Lookup("Writer") == nil {
		t.Fatal("wire.Writer not found in package scope")
	}
	// Test files must not be loaded: the lint contract exempts them.
	for _, fn := range pkg.Filenames {
		if strings.HasSuffix(fn, "_test.go") {
			t.Fatalf("test file loaded: %s", fn)
		}
	}
	// Comments must be retained for //nglint:allow handling.
	hasComments := false
	for _, f := range pkg.Files {
		if len(f.Comments) > 0 {
			hasComments = true
		}
	}
	if !hasComments {
		t.Fatal("no comments retained in parsed files")
	}
}

// TestLoadHeavyDependencies exercises the source importer against the
// deepest stdlib closures the module actually pulls in (ed25519 reaches the
// FIPS tree, p2p reaches net and time, the root package reaches fmt/sort).
func TestLoadHeavyDependencies(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a large stdlib closure from source")
	}
	l := New("bitcoinng", moduleRoot(t))
	for _, path := range []string{
		"bitcoinng/internal/crypto",
		"bitcoinng/internal/p2p",
		"bitcoinng",
	} {
		pkg, err := l.Load(path)
		if err != nil {
			t.Fatalf("Load(%s): %v", path, err)
		}
		if !pkg.Types.Complete() {
			t.Fatalf("%s: incomplete package", path)
		}
		if len(pkg.Files) == 0 {
			t.Fatalf("%s: no files", path)
		}
		var found token.Pos
		for _, f := range pkg.Files {
			found = f.Pos()
		}
		if !found.IsValid() {
			t.Fatalf("%s: invalid file positions", path)
		}
	}
}

func TestModulePackagesEnumeration(t *testing.T) {
	l := New("bitcoinng", moduleRoot(t))
	paths, err := l.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"bitcoinng", "bitcoinng/cmd/nglint", "bitcoinng/internal/sim", "bitcoinng/internal/wire"}
	have := map[string]bool{}
	for _, p := range paths {
		have[p] = true
		if strings.Contains(p, "testdata") {
			t.Fatalf("testdata package enumerated: %s", p)
		}
	}
	for _, w := range want {
		if !have[w] {
			t.Fatalf("ModulePackages missing %s (got %d paths)", w, len(paths))
		}
	}
}
