// Package ws is the wiresym fixture: codec pairs over the real wire
// package, good and deliberately broken.
package ws

import "bitcoinng/internal/wire"

// Good is fully symmetric.
type Good struct {
	A       uint64
	B       bool
	Payload []byte
}

func (g *Good) EncodeWire(w *wire.Writer) {
	w.Uint64(g.A)
	w.Bool(g.B)
	w.VarBytes(g.Payload)
}

func (g *Good) DecodeWire(r *wire.Reader) {
	g.A = r.Uint64()
	g.B = r.Bool()
	g.Payload = r.VarBytes(wire.MaxMessageSize)
}

// Swapped decodes fields in the wrong order.
type Swapped struct{ A, B uint64 }

func (s *Swapped) EncodeWire(w *wire.Writer) {
	w.Uint64(s.A)
	w.Uint64(s.B)
}

func (s *Swapped) DecodeWire(r *wire.Reader) {
	s.B = r.Uint64() // want `wire field-order mismatch in method Swapped: step 1 encodes u64\(A\) but decodes into u64\(B\)`
	s.A = r.Uint64()
}

// KindMismatch reads a different width than it wrote.
type KindMismatch struct{ A uint32 }

func (k *KindMismatch) EncodeWire(w *wire.Writer) { w.Uint32(k.A) }

func (k *KindMismatch) DecodeWire(r *wire.Reader) {
	k.A = uint32(r.Uint64()) // want `encode step 1 is u32\(A\) but decode step 1 is u64`
}

// Missing forgets a trailing field on decode.
type Missing struct{ A, B uint64 }

func (m *Missing) EncodeWire(w *wire.Writer) {
	w.Uint64(m.A)
	w.Uint64(m.B)
}

func (m *Missing) DecodeWire(r *wire.Reader) { // want `decode reads fewer steps than encode writes \(2 vs 1`
	m.A = r.Uint64()
}

// List exercises helper pairs and loop grouping: encodeItems/decodeItems
// must agree, and the method pair delegating to them must agree.
type List struct{ Items []uint64 }

func encodeItems(w *wire.Writer, items []uint64) {
	w.VarInt(uint64(len(items)))
	for _, it := range items {
		w.Uint64(it)
	}
}

func decodeItems(r *wire.Reader) []uint64 {
	n := r.Length(1 << 10)
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64()
	}
	return out
}

func (l *List) EncodeWire(w *wire.Writer) { encodeItems(w, l.Items) }
func (l *List) DecodeWire(r *wire.Reader) { l.Items = decodeItems(r) }

// FlatList encodes element-wise but decodes the whole list in one step:
// the loop structure diverges.
type FlatList struct{ Items []uint64 }

func encodeFlat(w *wire.Writer, f *FlatList) {
	w.VarInt(uint64(len(f.Items)))
	for _, it := range f.Items {
		w.Uint64(it)
	}
}

func decodeFlat(r *wire.Reader, f *FlatList) { // want `wire asymmetry in helper flat: decode reads more steps than encode writes \(4 vs 5; first unmatched: u64\)`
	n := r.Length(1 << 10)
	f.Items = make([]uint64, n)
	for i := range f.Items {
		f.Items[i] = r.Uint64()
	}
	_ = r.Uint64() // the stray extra read the analyzer pins
}

// OptGood uses the discriminated-optional idiom symmetrically: encode
// writes the presence bool in both branches, decode reads it in the
// condition. No diagnostic.
type OptGood struct {
	A   uint64
	Ext *Good
}

func (o *OptGood) EncodeWire(w *wire.Writer) {
	w.Uint64(o.A)
	if o.Ext != nil {
		w.Bool(true)
		o.Ext.EncodeWire(w)
	} else {
		w.Bool(false)
	}
}

func (o *OptGood) DecodeWire(r *wire.Reader) {
	o.A = r.Uint64()
	if r.Bool() {
		o.Ext = &Good{}
		o.Ext.DecodeWire(r)
	} else {
		o.Ext = nil
	}
}

// OptBad forgets the absent-case write: when Ext is nil the encoder emits
// nothing, so the decoder's presence bool reads payload bytes.
type OptBad struct {
	A   uint64
	Ext *Good
}

func (o *OptBad) EncodeWire(w *wire.Writer) {
	w.Uint64(o.A)
	if o.Ext != nil {
		w.Bool(true)
		o.Ext.EncodeWire(w)
	}
}

func (o *OptBad) DecodeWire(r *wire.Reader) {
	o.A = r.Uint64()
	if r.Bool() { // want `wire asymmetry in method OptBad: encode step 3 is sub-codec\(Ext\) but decode step 3 is optional group start`
		o.Ext = &Good{}
		o.Ext.DecodeWire(r)
	}
}
