// Package wire reproduces the PR-5 wire.Reader.Bool bug shape: a bool
// decoder that accepts any nonzero byte. The companion canonicality check
// must fire on it. (The package is genuinely named wire: the check scopes
// itself to codec packages.)
package wire

import "errors"

// ErrShort is unrelated to canonicality on purpose.
var ErrShort = errors.New("short read")

// Reader is a minimal decode cursor.
type Reader struct {
	buf []byte
	off int
	err error
}

// Uint8 decodes one byte.
func (r *Reader) Uint8() uint8 {
	if r.off >= len(r.buf) {
		r.err = ErrShort
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Bool is the bug: 0x02..0xff all decode as true, so re-encoding produces
// different bytes than were received.
func (r *Reader) Bool() bool { // want `decodes a bool without rejecting non-canonical bytes`
	return r.Uint8() != 0
}
