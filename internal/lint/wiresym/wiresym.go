// Package wiresym statically checks that wire codecs are symmetric.
//
// Every serialized structure in this repository pairs an
// EncodeWire(*wire.Writer) with a DecodeWire(*wire.Reader) (plus free
// encodeX/decodeX helper pairs), and the whole system leans on the
// decode-then-reencode identity: block hashes are computed over serialized
// headers, relays re-emit what they decoded, and the connect cache is
// content-addressed. PR 5's fuzz campaign proved the failure class is real
// — wire.Reader.Bool accepted any nonzero byte, so a relay could re-encode
// different bytes than it received — and that class is statically visible:
// the write sequence and the read sequence must match step for step.
//
// For each Encode/Decode pair in a package the analyzer extracts the
// ordered sequence of codec operations (Writer/Reader method calls on the
// codec parameter, nested EncodeWire/DecodeWire sub-codecs, and helper
// calls that forward the codec parameter), including loop structure, and
// diagnoses the first divergence in operation kind (Writer.VarInt pairs
// with Reader.VarInt or the bounded Reader.Length), loop shape, or — when
// both sides name one — target field.
//
// As a companion check, any method on a type named Reader in a package
// named wire that yields a bool must reject non-canonical input (reference
// ErrNonCanonical): a bool has exactly two valid encodings, and accepting
// more silently breaks the reencode identity (the PR-5 bug).
package wiresym

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"bitcoinng/internal/lint/analysis"
	"bitcoinng/internal/lint/astutil"
)

// Analyzer is the wiresym check.
var Analyzer = &analysis.Analyzer{
	Name: "wiresym",
	Doc: "checks EncodeWire/DecodeWire (and encodeX/decodeX helper) pairs " +
		"write and read the same codec sequence in the same order, and " +
		"that wire.Reader bool decoders reject non-canonical bytes",
	Run: run,
}

// writerCodecs / readerCodecs are the codec entry points; values give the
// abstract kind used for matching.
var writerCodecs = map[string]string{
	"Uint8": "u8", "Bool": "bool", "Uint16": "u16", "Uint32": "u32",
	"Uint64": "u64", "Int64": "i64", "VarInt": "varint", "Bytes32": "b32",
	"VarBytes": "varbytes", "Raw": "raw",
}

var readerCodecs = map[string]string{
	"Uint8": "u8", "Bool": "bool", "Uint16": "u16", "Uint32": "u32",
	"Uint64": "u64", "Int64": "i64", "VarInt": "varint", "Length": "varint",
	"Bytes32": "b32", "VarBytes": "varbytes", "Raw": "raw",
}

// step is one element of a codec sequence.
type step struct {
	kind  string // codec kind, "sub", "helper:<name>", "loop{", "}loop"
	field string // best-effort field name, "" when unknown
	pos   token.Pos
}

// side describes one half of a codec pair.
type side struct {
	fn    *ast.FuncDecl
	steps []step
}

func run(pass *analysis.Pass) error {
	encs := map[string]*side{} // pair key -> encode side
	decs := map[string]*side{} // pair key -> decode side

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if param, encode, key := codecFunc(pass, fd); param != nil {
				s := &side{fn: fd, steps: extract(pass, fd.Body, param, encode)}
				if encode {
					encs[key] = s
				} else {
					decs[key] = s
				}
			}
			checkCanonicalBool(pass, fd)
		}
	}

	var keys []string
	for k := range encs {
		if decs[k] != nil {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		compare(pass, k, encs[k], decs[k])
	}
	return nil
}

// codecFunc classifies fd as one half of a codec pair: an
// EncodeWire/DecodeWire method (key = receiver type name) or a free
// function named [Ee]ncodeX/[Dd]ecodeX whose parameters include the codec
// type (key = "helper " + normalized X). Returns the codec parameter
// object.
func codecFunc(pass *analysis.Pass, fd *ast.FuncDecl) (param types.Object, encode bool, key string) {
	findParam := func(pkgName, typeName string) types.Object {
		for _, fld := range fd.Type.Params.List {
			t := pass.TypeOf(fld.Type)
			if n := astutil.Named(t); n != nil && n.Obj().Pkg() != nil &&
				n.Obj().Pkg().Name() == pkgName && n.Obj().Name() == typeName {
				if len(fld.Names) == 1 {
					return pass.Info.Defs[fld.Names[0]]
				}
			}
		}
		return nil
	}

	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		switch name {
		case "EncodeWire":
			if p := findParam("wire", "Writer"); p != nil {
				return p, true, "method " + recvTypeName(pass, fd)
			}
		case "DecodeWire":
			if p := findParam("wire", "Reader"); p != nil {
				return p, false, "method " + recvTypeName(pass, fd)
			}
		}
		return nil, false, ""
	}
	low := strings.ToLower(name)
	if rest, ok := cutAny(low, "encode", "write"); ok && rest != "" {
		if p := findParam("wire", "Writer"); p != nil {
			return p, true, "helper " + rest
		}
	}
	if rest, ok := cutAny(low, "decode", "read"); ok && rest != "" {
		if p := findParam("wire", "Reader"); p != nil {
			return p, false, "helper " + rest
		}
	}
	return nil, false, ""
}

func cutAny(s string, prefixes ...string) (string, bool) {
	for _, p := range prefixes {
		if rest, ok := strings.CutPrefix(s, p); ok {
			return rest, true
		}
	}
	return "", false
}

func recvTypeName(pass *analysis.Pass, fd *ast.FuncDecl) string {
	if n := astutil.Named(pass.TypeOf(fd.Recv.List[0].Type)); n != nil {
		return n.Obj().Name()
	}
	return "?"
}

// extract walks body in source order, flattening statements into the codec
// step sequence. Loops contribute loop{ ... }loop groups so a list encoded
// element-wise must be decoded element-wise.
func extract(pass *analysis.Pass, body *ast.BlockStmt, param types.Object, encode bool) []step {
	var steps []step
	var walkStmt func(ast.Stmt)

	usesParam := func(e ast.Expr) bool {
		id, ok := astutil.Unwrap(pass.Info, e).(*ast.Ident)
		return ok && astutil.Obj(pass.Info, id) == param
	}

	// stepOf classifies a call; field is filled by the caller for decode
	// assignments.
	stepOf := func(call *ast.CallExpr) (step, bool) {
		if recv, _, m, ok := astutil.MethodCall(pass.Info, call); ok {
			if usesParam(recv) {
				table := writerCodecs
				if !encode {
					table = readerCodecs
				}
				if kind, ok := table[m]; ok {
					st := step{kind: kind, pos: call.Pos()}
					if encode && len(call.Args) > 0 {
						st.field = astutil.FieldName(pass.Info, call.Args[0])
					}
					return st, true
				}
				return step{}, false // bookkeeping (Err, Len, ...)
			}
			// Sub-codec: x.EncodeWire(w) / x.DecodeWire(r).
			if (m == "EncodeWire" || m == "DecodeWire") && len(call.Args) == 1 && usesParam(call.Args[0]) {
				return step{kind: "sub", field: astutil.FieldName(pass.Info, recv), pos: call.Pos()}, true
			}
			return step{}, false
		}
		// Helper call forwarding the codec param.
		var fname string
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			fname = fun.Name
		case *ast.SelectorExpr:
			fname = fun.Sel.Name
		default:
			return step{}, false
		}
		forwards := false
		var firstOther ast.Expr
		for _, a := range call.Args {
			if usesParam(a) {
				forwards = true
			} else if firstOther == nil {
				firstOther = a
			}
		}
		if !forwards {
			return step{}, false
		}
		norm := strings.ToLower(fname)
		for _, p := range []string{"encode", "decode", "write", "read"} {
			if rest, ok := strings.CutPrefix(norm, p); ok && rest != "" {
				norm = rest
				break
			}
		}
		st := step{kind: "helper:" + norm, pos: call.Pos()}
		if firstOther != nil {
			st.field = astutil.FieldName(pass.Info, firstOther)
		}
		return st, true
	}

	// walkExpr collects codec calls nested in an expression, in source
	// order, attaching fieldHint to the outermost decode step.
	var walkExpr func(e ast.Expr, fieldHint string)
	walkExpr = func(e ast.Expr, fieldHint string) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if st, ok := stepOf(call); ok {
				if !encode && st.field == "" {
					st.field = fieldHint
				}
				steps = append(steps, st)
				fieldHint = "" // only the first step gets the hint
				return false   // don't descend into matched call's args twice
			}
			return true
		})
	}

	walkStmt = func(s ast.Stmt) {
		switch v := s.(type) {
		case nil:
		case *ast.BlockStmt:
			for _, st := range v.List {
				walkStmt(st)
			}
		case *ast.ExprStmt:
			walkExpr(v.X, "")
		case *ast.AssignStmt:
			hint := ""
			if len(v.Lhs) == 1 {
				hint = astutil.FieldName(pass.Info, v.Lhs[0])
			}
			for _, rhs := range v.Rhs {
				walkExpr(rhs, hint)
			}
		case *ast.DeclStmt:
			if gd, ok := v.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						hint := ""
						if len(vs.Names) == 1 {
							hint = vs.Names[0].Name
						}
						for _, val := range vs.Values {
							walkExpr(val, hint)
						}
					}
				}
			}
		case *ast.ForStmt:
			mark := len(steps)
			walkStmt(v.Init)
			walkExpr(v.Cond, "")
			walkStmt(v.Body)
			wrapLoop(&steps, mark, v.Pos())
		case *ast.RangeStmt:
			mark := len(steps)
			walkExpr(v.X, "")
			walkStmt(v.Body)
			wrapLoop(&steps, mark, v.Pos())
		case *ast.IfStmt:
			walkStmt(v.Init)
			condMark := len(steps)
			walkExpr(v.Cond, "")
			condSteps := len(steps) - condMark
			thenMark := len(steps)
			walkStmt(v.Body)
			thenSteps := append([]step{}, steps[thenMark:]...)
			steps = steps[:thenMark]
			elseMark := len(steps)
			walkStmt(v.Else)
			elseSteps := append([]step{}, steps[elseMark:]...)
			steps = steps[:elseMark]
			switch {
			case len(elseSteps) == 1 && len(thenSteps) > 0 && thenSteps[0].kind == elseSteps[0].kind:
				// Discriminated optional, encode side: both branches write
				// the discriminator (`if ok { w.Bool(true); X... } else {
				// w.Bool(false) }`). Hoist it, group the payload.
				steps = append(steps, thenSteps[0])
				wrapOpt(&steps, thenSteps[1:], v.Pos())
			case condSteps > 0 && len(elseSteps) == 0:
				// Discriminated optional, decode side: the condition reads
				// the discriminator (`if r.Bool() { X... }`).
				wrapOpt(&steps, thenSteps, v.Pos())
			default:
				steps = append(steps, thenSteps...)
				steps = append(steps, elseSteps...)
			}
		case *ast.SwitchStmt:
			walkStmt(v.Init)
			walkExpr(v.Tag, "")
			walkStmt(v.Body)
		case *ast.CaseClause:
			for _, st := range v.Body {
				walkStmt(st)
			}
		case *ast.ReturnStmt:
			for _, e := range v.Results {
				walkExpr(e, "")
			}
		}
	}
	walkStmt(body)
	return steps
}

// wrapOpt appends inner wrapped in optional-group markers (no markers when
// inner is empty).
func wrapOpt(steps *[]step, inner []step, pos token.Pos) {
	if len(inner) == 0 {
		return
	}
	*steps = append(*steps, step{kind: "opt{", pos: pos})
	*steps = append(*steps, inner...)
	*steps = append(*steps, step{kind: "}opt", pos: pos})
}

// wrapLoop wraps steps[mark:] in loop markers if the loop body produced any
// codec steps.
func wrapLoop(steps *[]step, mark int, pos token.Pos) {
	if len(*steps) == mark {
		return
	}
	inner := append([]step{}, (*steps)[mark:]...)
	*steps = (*steps)[:mark]
	*steps = append(*steps, step{kind: "loop{", pos: pos})
	*steps = append(*steps, inner...)
	*steps = append(*steps, step{kind: "}loop", pos: pos})
}

// kindsMatch reports whether an encode step kind pairs with a decode one.
func kindsMatch(enc, dec string) bool {
	return enc == dec // tables already map Writer.VarInt/Reader.Length to "varint"
}

func describe(s step) string {
	k := s.kind
	switch k {
	case "sub":
		k = "sub-codec"
	case "loop{":
		return "loop start"
	case "}loop":
		return "loop end"
	case "opt{":
		return "optional group start"
	case "}opt":
		return "optional group end"
	}
	if s.field != "" {
		return k + "(" + s.field + ")"
	}
	return k
}

func compare(pass *analysis.Pass, key string, enc, dec *side) {
	n := len(enc.steps)
	if len(dec.steps) < n {
		n = len(dec.steps)
	}
	for i := 0; i < n; i++ {
		e, d := enc.steps[i], dec.steps[i]
		if !kindsMatch(e.kind, d.kind) {
			pass.Reportf(d.pos,
				"wire asymmetry in %s: encode step %d is %s but decode step %d is %s — decode-reencode identity breaks",
				key, i+1, describe(e), i+1, describe(d))
			return
		}
		if e.field != "" && d.field != "" && !strings.EqualFold(e.field, d.field) {
			pass.Reportf(d.pos,
				"wire field-order mismatch in %s: step %d encodes %s but decodes into %s",
				key, i+1, describe(e), describe(d))
			return
		}
	}
	if len(enc.steps) != len(dec.steps) {
		long, short, where := enc, dec, dec.fn.Name.Pos()
		dir := "decode reads fewer steps than encode writes"
		if len(dec.steps) > len(enc.steps) {
			long, short = dec, enc
			dir = "decode reads more steps than encode writes"
		}
		_ = short
		pass.Reportf(where,
			"wire asymmetry in %s: %s (%d vs %d; first unmatched: %s)",
			key, dir, len(enc.steps), len(dec.steps), describe(long.steps[n]))
	}
}

// checkCanonicalBool enforces the PR-5 lesson inside codec packages: a
// Reader method producing a bool must reject non-canonical bytes.
func checkCanonicalBool(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
		return
	}
	if pass.Pkg.Name() != "wire" {
		return
	}
	n := astutil.Named(pass.TypeOf(fd.Recv.List[0].Type))
	if n == nil || n.Obj().Name() != "Reader" {
		return
	}
	res := fd.Type.Results
	if res == nil || len(res.List) != 1 {
		return
	}
	if t := pass.TypeOf(res.List[0].Type); t == nil || !types.Identical(t, types.Typ[types.Bool]) {
		return
	}
	ok := false
	ast.Inspect(fd.Body, func(nd ast.Node) bool {
		if id, isID := nd.(*ast.Ident); isID && strings.Contains(id.Name, "Canonical") {
			ok = true
		}
		return !ok
	})
	if !ok {
		pass.Reportf(fd.Name.Pos(),
			"Reader.%s decodes a bool without rejecting non-canonical bytes (no ErrNonCanonical path): any-nonzero-is-true breaks the decode-reencode identity (the FuzzBlockWire PR-5 bug)",
			fd.Name.Name)
	}
}
