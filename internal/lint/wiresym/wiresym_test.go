package wiresym_test

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"bitcoinng/internal/lint/analysis"
	"bitcoinng/internal/lint/linttest"
	"bitcoinng/internal/lint/load"
	"bitcoinng/internal/lint/wiresym"
)

func TestFixture(t *testing.T) {
	diags := linttest.Run(t, wiresym.Analyzer, "ws")
	if len(diags) == 0 {
		t.Fatal("wiresym fixture produced no diagnostics: the rule does not fire")
	}
}

func TestCanonicalBoolFixture(t *testing.T) {
	linttest.Run(t, wiresym.Analyzer, "wirecanon")
}

// runOnDir applies wiresym to the package in dir under the given import
// path and returns the diagnostics.
func runOnDir(t *testing.T, importPath, dir string) []analysis.Diagnostic {
	t.Helper()
	l := load.New("bitcoinng", linttest.ModuleRoot(t))
	pkg, err := l.LoadDir(importPath, dir)
	if err != nil {
		t.Fatal(err)
	}
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer: wiresym.Analyzer,
		Fset:     l.Fset(),
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		PkgPath:  pkg.Path,
		Info:     pkg.Info,
		Report:   func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := wiresym.Analyzer.Run(pass); err != nil {
		t.Fatal(err)
	}
	return diags
}

// TestRealWirePackageClean pins the acceptance baseline: the real
// internal/wire package passes wiresym with zero findings.
func TestRealWirePackageClean(t *testing.T) {
	root := linttest.ModuleRoot(t)
	diags := runOnDir(t, "bitcoinng/internal/wire", filepath.Join(root, "internal", "wire"))
	for _, d := range diags {
		t.Errorf("unexpected wiresym diagnostic on internal/wire: %s", d.Message)
	}
}

// TestRevertedBoolFixIsCaught is the acceptance-criteria check for the PR-5
// regression class: it takes the real internal/wire sources, reverts
// Reader.Bool to the pre-fix any-nonzero-is-true body, and asserts wiresym
// reports it. If wire.go's Bool is ever refactored such that the rewrite
// below no longer applies, this test fails loudly rather than silently
// passing.
func TestRevertedBoolFixIsCaught(t *testing.T) {
	root := linttest.ModuleRoot(t)
	src, err := os.ReadFile(filepath.Join(root, "internal", "wire", "wire.go"))
	if err != nil {
		t.Fatal(err)
	}
	boolRe := regexp.MustCompile(`(?s)func \(r \*Reader\) Bool\(\) bool \{.*?\n\}`)
	if !boolRe.Match(src) {
		t.Fatal("could not locate Reader.Bool in internal/wire/wire.go; update this test's pattern")
	}
	reverted := boolRe.ReplaceAll(src, []byte(
		"func (r *Reader) Bool() bool {\n\treturn r.Uint8() != 0\n}"))
	if string(reverted) == string(src) {
		t.Fatal("revert rewrite was a no-op")
	}

	dir := t.TempDir()
	// Copy the rest of the package so the reverted file still type-checks
	// in context.
	entries, err := os.ReadDir(filepath.Join(root, "internal", "wire"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) != ".go" || name == "wire.go" ||
			len(name) > 8 && name[len(name)-8:] == "_test.go" {
			continue
		}
		b, err := os.ReadFile(filepath.Join(root, "internal", "wire", name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "wire.go"), reverted, 0o644); err != nil {
		t.Fatal(err)
	}

	diags := runOnDir(t, "wire_reverted", dir)
	found := false
	for _, d := range diags {
		if regexp.MustCompile(`Bool decodes a bool without rejecting non-canonical bytes`).MatchString(d.Message) {
			found = true
		}
	}
	if !found {
		t.Fatalf("wiresym did not catch the reverted Reader.Bool fix; diagnostics: %v", diags)
	}
}
