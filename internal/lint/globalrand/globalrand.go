// Package globalrand forbids process-global and ad-hoc randomness.
//
// Every random draw in this repository must flow from an injected
// *rand.Rand created by sim.NewRand(base, stream): that is what makes a
// whole chaos scenario replayable from one seed, keeps sweep points
// independent of scheduling order, and lets the sharded engine hand each
// node an uncorrelated stream. Two constructs break that contract:
//
//   - package-level math/rand functions (rand.Intn, rand.Float64, ...) draw
//     from the process-global source, which is shared across goroutines and
//     seeded once per process — results then depend on global call order;
//   - ad-hoc rand.New(rand.NewSource(seed)) bypasses sim.DeriveSeed's
//     stream separation (and the fast xoshiro source), so two subsystems
//     fed the same base seed produce correlated streams.
//
// Passing *rand.Rand values around, and calling methods on them, is the
// sanctioned pattern and is never flagged. Test files are exempt (they are
// not loaded at all).
package globalrand

import (
	"go/ast"

	"bitcoinng/internal/lint/analysis"
	"bitcoinng/internal/lint/astutil"
)

// Analyzer is the globalrand check.
var Analyzer = &analysis.Analyzer{
	Name: "globalrand",
	Doc: "forbids package-level math/rand and math/rand/v2 functions and " +
		"ad-hoc rand.New(rand.NewSource(...)); all randomness must flow " +
		"from an injected *rand.Rand born in sim.NewRand",
	Run: run,
}

func randPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := astutil.PkgFuncCall(pass.Info, call)
			if !ok || !randPkg(pkg) {
				return true
			}
			switch name {
			case "New":
				// rand.New is the one constructor sim.NewRand itself
				// needs (wrapping its xoshiro source). Only the ad-hoc
				// composite that rebuilds a stdlib source inline is
				// banned.
				if len(call.Args) == 1 && isNewSourceCall(pass, call.Args[0]) {
					pass.Reportf(call.Pos(),
						"ad-hoc rand.New(rand.NewSource(...)): derive streams with sim.NewRand(base, stream) so seeds stay uncorrelated and replayable")
					return false // don't double-report the inner NewSource
				}
			case "NewSource", "NewPCG", "NewChaCha8":
				pass.Reportf(call.Pos(),
					"%s.%s builds an ad-hoc random source: derive streams with sim.NewRand(base, stream)", pkg, name)
			default:
				pass.Reportf(call.Pos(),
					"package-level %s.%s draws from the process-global source: results depend on global call order; take an injected *rand.Rand from sim.NewRand", pkg, name)
			}
			return true
		})
	}
	return nil
}

func isNewSourceCall(pass *analysis.Pass, e ast.Expr) bool {
	inner, ok := astutil.Unwrap(pass.Info, e).(*ast.CallExpr)
	if !ok {
		return false
	}
	pkg, name, ok := astutil.PkgFuncCall(pass.Info, inner)
	return ok && randPkg(pkg) && (name == "NewSource" || name == "NewPCG" || name == "NewChaCha8")
}
