package globalrand_test

import (
	"testing"

	"bitcoinng/internal/lint/globalrand"
	"bitcoinng/internal/lint/linttest"
)

func TestFixture(t *testing.T) {
	diags := linttest.Run(t, globalrand.Analyzer, "gr")
	if len(diags) == 0 {
		t.Fatal("globalrand fixture produced no diagnostics: the rule does not fire")
	}
}
