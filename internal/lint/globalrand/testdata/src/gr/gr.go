// Package gr is the globalrand fixture.
package gr

import (
	"math/rand"
	v2 "math/rand/v2"
)

func bad(n int) {
	_ = rand.Intn(n)                 // want `package-level math/rand\.Intn draws from the process-global source`
	_ = rand.Float64()               // want `package-level math/rand\.Float64`
	_ = rand.New(rand.NewSource(42)) // want `ad-hoc rand\.New\(rand\.NewSource\(\.\.\.\)\)`
	_ = rand.NewSource(7)            // want `math/rand\.NewSource builds an ad-hoc random source`
	_ = v2.IntN(n)                   // want `package-level math/rand/v2\.IntN`
	_ = v2.NewPCG(1, 2)              // want `math/rand/v2\.NewPCG builds an ad-hoc random source`
}

// ok: methods on an injected *rand.Rand are the sanctioned pattern.
func ok(rng *rand.Rand) int { return rng.Intn(9) }

// okNew mirrors sim.NewRand itself: wrapping a custom (non-stdlib-source)
// value in rand.New is the one blessed constructor shape.
func okNew(src rand.Source) *rand.Rand { return rand.New(src) }
