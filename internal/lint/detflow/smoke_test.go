package detflow_test

import (
	"testing"

	"bitcoinng/internal/lint/dataflow"
	"bitcoinng/internal/lint/detflow"
	"bitcoinng/internal/lint/linttest"
	"bitcoinng/internal/lint/load"
)

// TestModuleSweep runs the full interprocedural analysis over the real
// module: it must terminate and every diagnostic it produces must carry a
// valid position. The findings themselves are asserted by `make lint`
// (exit-0 after triage); here we log them so an engine regression that
// floods the module with findings is visible in test output.
func TestModuleSweep(t *testing.T) {
	root := linttest.ModuleRoot(t)
	l := load.New("bitcoinng", root)
	paths, err := l.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*load.Package
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			t.Fatalf("loading %s: %v", p, err)
		}
		pkgs = append(pkgs, pkg)
	}
	prog := dataflow.NewProgram(l.Fset(), pkgs)
	diags := detflow.Run(prog, detflow.InZone)
	for _, d := range diags {
		if !d.Pos.IsValid() {
			t.Errorf("diagnostic without position: %s", d.Message)
		}
		t.Logf("%s: %s", l.Fset().Position(d.Pos), d.Message)
	}
	if len(diags) > 60 {
		t.Errorf("detflow produced %d findings on the module — smells like an engine false-positive flood", len(diags))
	}
}
