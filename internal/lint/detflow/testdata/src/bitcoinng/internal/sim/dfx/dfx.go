// Package dfx exercises the detflow interprocedural taint engine. The
// fixture path places it inside the deterministic zone.
package dfx

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// --- direct source-to-sink flow ----------------------------------------

func direct(w io.Writer) {
	t := time.Now() // want `time.Now \(wall-clock\) flows to stream write`
	fmt.Fprintf(w, "at %v\n", t)
}

// --- two-hop laundering: the taint crosses two function boundaries ------

func stamp() time.Time {
	return time.Now() // want `time.Now \(wall-clock\) flows to stream write .* at dfx/dfx.go:33`
}

func wrap() time.Time {
	// An intermediate hop: a purely syntactic checker sees nothing here.
	t := stamp()
	return t
}

func launder(w io.Writer) {
	fmt.Fprintf(w, "laundered %v\n", wrap())
}

// --- environment source, sunk through a helper --------------------------

func env(w io.Writer) {
	host := os.Getenv("HOSTNAME") // want `os.Getenv \(environment\) flows to stream write`
	emit(w, host)
}

func emit(w io.Writer, s string) {
	fmt.Fprintf(w, "%s\n", s)
}

// --- sorting sanitizes map-iteration order ------------------------------

func sorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// --- storing under the range's own key is order-independent -------------

func rekey(w io.Writer, m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v + 1
	}
	return out
}

// --- commutative folds launder order; string concatenation keeps it -----

func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func concat(w io.Writer, m map[string]int) {
	s := ""            // the taint is reported at the range, not here
	for k := range m { // want `range over map \(map-iteration-order\) flows to stream write`
		s += k
	}
	fmt.Fprintf(w, "%s\n", s)
}

// --- unsorted map-range order escaping an exported function -------------

func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map \(map-iteration-order\) escapes through a result`
		out = append(out, k)
	}
	return out
}
