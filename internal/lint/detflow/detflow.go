// Package detflow is the interprocedural nondeterminism-taint analyzer.
//
// The per-function analyzers (walltime, globalrand, maporder) flag
// nondeterminism sources syntactically at the call site; what they cannot
// see is a value laundered through helper calls — a wall-clock read
// returned through two hops, a map-range key passed to a function that
// writes it into a digest, a delta built in map order inside an unexported
// helper and returned from an exported consensus entry point. detflow
// closes that gap: it taints values produced by time.Now-family calls,
// global/OS randomness, map-iteration order, and environment reads, then
// propagates the taint through the module call graph on the dataflow
// engine's per-function summaries until it reaches a determinism sink —
// stream writes feeding reports/digests/wire encodings, sim event
// scheduling, invariant snapshot construction — or escapes through an
// exported deterministic-zone function's results or pointer parameters
// (map order only: that is the consensus-forking class, cf. the PR-6
// applyPoison bug).
//
// Division of labor with the syntactic suite: a MapOrder sink lexically
// inside the introducing range statement is maporder's finding, not ours;
// everything crossing a statement or call boundary is ours. Soundness
// caveats (dynamic dispatch, globals, aliasing) are documented in
// DESIGN.md §9.
package detflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"bitcoinng/internal/lint/analysis"
	"bitcoinng/internal/lint/astutil"
	"bitcoinng/internal/lint/dataflow"
)

// Analyzer is the detflow check.
var Analyzer = &analysis.ModuleAnalyzer{
	Name: "detflow",
	Doc: "interprocedural taint analysis: wall-clock/randomness/map-order/" +
		"environment values propagated through calls must not reach " +
		"determinism sinks (stream writes, sim scheduling, invariant " +
		"snapshots) or escape exported deterministic-zone functions",
	Run: run,
}

func run(pass *analysis.ModulePass) error {
	prog := dataflow.NewProgram(pass.Fset, pass.Pkgs)
	for _, d := range Run(prog, InZone) {
		pass.Report(d)
	}
	return nil
}

// InZone is the default deterministic-flow zone: every module package
// except the live transport (bitcoinng/internal/p2p — wall time is its
// job), the lint suite itself, and the CLIs/examples (operator-facing
// output; the determinism gates cover them end to end dynamically).
func InZone(pkgPath string) bool {
	if pkgPath == "bitcoinng" {
		return true
	}
	if !strings.HasPrefix(pkgPath, "bitcoinng/internal/") {
		return false
	}
	rest := strings.TrimPrefix(pkgPath, "bitcoinng/internal/")
	if rest == "p2p" || strings.HasPrefix(rest, "p2p/") {
		return false
	}
	if rest == "lint" || strings.HasPrefix(rest, "lint/") {
		return false
	}
	return true
}

// Run analyzes prog with the determinism source/sink model and returns
// formatted diagnostics. The zone predicate is a parameter so the
// regression tests can analyze sandbox copies loaded under non-module
// paths.
func Run(prog *dataflow.Program, inZone func(string) bool) []analysis.Diagnostic {
	eng := dataflow.Analyze(prog, Config(inZone))
	var out []analysis.Diagnostic
	for _, f := range eng.Findings() {
		if f.SameRange {
			// The syntactic maporder analyzer owns sinks inside the
			// introducing range statement.
			continue
		}
		out = append(out, analysis.Diagnostic{
			Pos: f.Taint.Pos,
			Message: fmt.Sprintf("%s (%s) flows to %s at %s%s — deterministic output must be a pure function of (config, seed)",
				f.Taint.What, f.Taint.Kind, f.SinkDesc, shortPos(prog.Fset, f.SinkPos), viaPath(f.Path)),
		})
	}
	out = append(out, escapes(prog, eng, inZone)...)
	return out
}

// escapes reports MapOrder taint leaving an exported in-zone function
// through its results or reference parameters: even without a visible sink,
// order-dependent data published from a consensus entry point (the
// applyPoison delta) is a replay-divergence bug waiting for a caller.
func escapes(prog *dataflow.Program, eng *dataflow.Engine, inZone func(string) bool) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	seen := map[[2]token.Pos]bool{}
	report := func(t dataflow.Taint, f *dataflow.Func, how string) {
		key := [2]token.Pos{t.Pos, f.Decl.Pos()}
		if t.Kind != dataflow.KindMapOrder || seen[key] {
			return
		}
		seen[key] = true
		out = append(out, analysis.Diagnostic{
			Pos: t.Pos,
			Message: fmt.Sprintf("%s (%s) escapes through %s of exported %s — callers observe a different order every run; sort before publishing",
				t.What, t.Kind, how, f.ID),
		})
	}
	for _, f := range prog.Order {
		if !inZone(f.Pkg.Path) || !f.Exported() {
			continue
		}
		sum := eng.Summary(f.ID)
		if sum == nil {
			continue
		}
		for _, m := range sum.Results {
			for _, ts := range m {
				for t := range ts {
					report(t, f, "a result")
				}
			}
		}
		for _, m := range sum.ParamTaints {
			for _, ts := range m {
				for t := range ts {
					report(t, f, "a pointer parameter")
				}
			}
		}
	}
	return out
}

// Config builds the engine configuration for the given zone predicate.
func Config(inZone func(string) bool) dataflow.Config {
	return dataflow.Config{
		SourceCall:        sourceCall,
		SinkCall:          sinkCall,
		SinkComposite:     sinkComposite,
		Sanitizer:         sanitizer,
		UnorderedCallback: unorderedCallback,
		InZone:            inZone,
	}
}

// unorderedCallback classifies Range-style iterator methods whose callee the
// engine could not resolve (interface dispatch: utxo.Backend.Range,
// chain.UTXOStore.Range, sync.Map.Range). Their contract specifies no
// visiting order, so the callback parameters carry map-order taint exactly
// like map-range loop variables. Resolved concrete Range methods are
// excluded upstream: the engine models those bodies precisely, and the map
// range inside them seeds the taint itself.
func unorderedCallback(f *dataflow.Func, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Range" {
		return "", false
	}
	return "Range over unordered store", true
}

// randConstructors are the math/rand entry points that take an explicit
// seed/source and are therefore deterministic when seeded deterministically
// — everything else in math/rand{,/v2} reads the shared global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// sourceCalls maps package → function → taint kind for everything that
// samples ambient state.
var sourceCalls = map[string]map[string]dataflow.Kind{
	"time": {
		"Now": dataflow.KindWalltime, "Since": dataflow.KindWalltime,
		"Until": dataflow.KindWalltime,
	},
	"os": {
		"Getenv": dataflow.KindEnv, "LookupEnv": dataflow.KindEnv,
		"Environ": dataflow.KindEnv, "Getpid": dataflow.KindEnv,
		"Getppid": dataflow.KindEnv, "Hostname": dataflow.KindEnv,
	},
	"runtime": {
		"NumCPU": dataflow.KindEnv, "NumGoroutine": dataflow.KindEnv,
	},
	"crypto/rand": {
		"Read": dataflow.KindRand, "Int": dataflow.KindRand,
		"Prime": dataflow.KindRand, "Text": dataflow.KindRand,
	},
	// maps.Keys/Values/All iterate in randomized order exactly like a
	// range statement.
	"maps": {
		"Keys": dataflow.KindMapOrder, "Values": dataflow.KindMapOrder,
		"All": dataflow.KindMapOrder,
	},
}

func sourceCall(f *dataflow.Func, call *ast.CallExpr) (dataflow.Taint, bool) {
	pkg, name, ok := astutil.PkgFuncCall(f.Pkg.Info, call)
	if !ok {
		return dataflow.Taint{}, false
	}
	kind, ok := sourceCalls[pkg][name]
	if !ok && (pkg == "math/rand" || pkg == "math/rand/v2") && !randConstructors[name] {
		kind, ok = dataflow.KindRand, true
	}
	if !ok {
		return dataflow.Taint{}, false
	}
	return dataflow.Taint{
		Kind: kind,
		Pos:  call.Pos(),
		What: pkg + "." + name,
		Pkg:  f.Pkg.Path,
	}, true
}

// streamFuncs write their value arguments into an ordered stream; the map
// holds the index of the first value argument (-2 means "all arguments").
var streamFuncs = map[string]map[string]int{
	"fmt": {
		"Fprint": 1, "Fprintf": 1, "Fprintln": 1,
		"Print": 0, "Printf": 0, "Println": 0,
	},
	"io":              {"WriteString": 1, "Copy": 1},
	"encoding/binary": {"Write": 2},
}

// streamMethods emit into an ordered stream when the receiver implements
// io.Writer (bytes.Buffer, strings.Builder, hash.Hash, wire.Writer, ...).
var streamMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// simDispatch are the event-scheduling methods: a tainted delay or payload
// makes event ordering itself nondeterministic.
var simDispatch = map[[2]string]map[string]bool{
	{"bitcoinng/internal/sim", "Loop"}: {
		"PostEvent": true, "PostEventPrio": true, "At": true, "After": true,
	},
	{"bitcoinng/internal/sim", "ShardedLoop"}: {
		"ScheduleGlobal": true, "OnBarrier": true,
	},
}

func sinkCall(f *dataflow.Func, call *ast.CallExpr) (string, []int, bool) {
	info := f.Pkg.Info
	if pkg, name, ok := astutil.PkgFuncCall(info, call); ok {
		if first, ok := streamFuncs[pkg][name]; ok {
			var idxs []int
			for i := first; i < len(call.Args); i++ {
				idxs = append(idxs, i)
			}
			return "stream write (" + pkg + "." + name + ")", idxs, true
		}
		return "", nil, false
	}
	if _, recvT, name, ok := astutil.MethodCall(info, call); ok {
		if n := astutil.Named(recvT); n != nil && n.Obj().Pkg() != nil {
			key := [2]string{n.Obj().Pkg().Path(), n.Obj().Name()}
			if simDispatch[key][name] {
				idxs := make([]int, len(call.Args))
				for i := range idxs {
					idxs[i] = i
				}
				return "sim event scheduling (" + n.Obj().Name() + "." + name + ")", idxs, true
			}
		}
		if streamMethods[name] && implementsWriter(recvT) {
			idxs := make([]int, len(call.Args))
			for i := range idxs {
				idxs[i] = i
			}
			return "stream write (io.Writer." + name + ")", idxs, true
		}
	}
	return "", nil, false
}

// sinkComposite flags tainted fields in invariant snapshot structs: the
// invariant checker's view of the world must itself be deterministic.
func sinkComposite(f *dataflow.Func, lit *ast.CompositeLit) (string, bool) {
	t := f.Pkg.Info.TypeOf(lit)
	if t == nil {
		return "", false
	}
	if astutil.NamedIs(t, "bitcoinng/internal/invariant", "Snapshot") ||
		astutil.NamedIs(t, "bitcoinng/internal/invariant", "NodeState") {
		return "invariant snapshot", true
	}
	return "", false
}

// sortFuncs mirror maporder's blessed reordering calls.
var sortFuncs = map[string]map[string]bool{
	"sort": {"Strings": true, "Ints": true, "Float64s": true, "Slice": true,
		"SliceStable": true, "Sort": true, "Stable": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

func sanitizer(f *dataflow.Func, call *ast.CallExpr) (int, bool) {
	pkg, name, ok := astutil.PkgFuncCall(f.Pkg.Info, call)
	if !ok || !sortFuncs[pkg][name] {
		return 0, false
	}
	return 0, true
}

// writerIface is io.Writer built structurally (packages that never import
// io still check).
var writerIface = func() *types.Interface {
	byteSlice := types.NewSlice(types.Typ[types.Byte])
	results := types.NewTuple(
		types.NewVar(token.NoPos, nil, "", types.Typ[types.Int]),
		types.NewVar(token.NoPos, nil, "", types.Universe.Lookup("error").Type()),
	)
	sig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "", byteSlice)), results, false)
	m := types.NewFunc(token.NoPos, nil, "Write", sig)
	return types.NewInterfaceType([]*types.Func{m}, nil).Complete()
}()

func implementsWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if types.Implements(t, writerIface) {
		return true
	}
	if _, ok := t.Underlying().(*types.Pointer); !ok {
		if p := types.NewPointer(t); types.Implements(p, writerIface) {
			return true
		}
	}
	return false
}

// shortPos renders a position as the last two path elements plus line —
// long enough to be unambiguous in this repository, short enough to read.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	dir, base := filepath.Split(p.Filename)
	return fmt.Sprintf("%s%s:%d", filepath.Base(filepath.Clean(dir))+string(filepath.Separator), base, p.Line)
}

// viaPath renders the interprocedural call chain.
func viaPath(path []dataflow.FuncID) string {
	if len(path) == 0 {
		return ""
	}
	parts := make([]string, len(path))
	for i, id := range path {
		parts[i] = strings.TrimPrefix(string(id), "bitcoinng/internal/")
		parts[i] = strings.TrimPrefix(parts[i], "bitcoinng/")
	}
	return " (via " + strings.Join(parts, " -> ") + ")"
}
