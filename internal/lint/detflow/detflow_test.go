package detflow_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"bitcoinng/internal/lint/dataflow"
	"bitcoinng/internal/lint/detflow"
	"bitcoinng/internal/lint/linttest"
	"bitcoinng/internal/lint/load"
)

// TestFixtures drives the engine over the golden fixture: direct flows,
// two-hop laundering, sanitizers, order-independent transforms, and the
// exported-escape rule.
func TestFixtures(t *testing.T) {
	linttest.RunModule(t, detflow.Analyzer, "bitcoinng/internal/sim/dfx")
}

// TestRevertedPoisonSortCaught is the regression acceptance test for the
// PR-6 applyPoison map-order bug: a copy of the real utxo package with the
// fixing sort.Slice removed must re-trigger an interprocedural finding —
// the unsorted delta op log escapes through utxo.(Set).ApplyBlock's result,
// three calls above the range that introduced the order dependence.
func TestRevertedPoisonSortCaught(t *testing.T) {
	root := linttest.ModuleRoot(t)
	src := filepath.Join(root, "internal", "utxo")
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	sortRe := regexp.MustCompile(`(?m)^\s*sort\.Slice\(revoke.*$`)
	reverted := false
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if sortRe.Match(b) {
			b = sortRe.ReplaceAll(b, nil)
			reverted = true
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if !reverted {
		t.Fatal("did not find the applyPoison sort.Slice(revoke...) to revert — the fixture regression has moved")
	}

	// A non-module import path tolerates the soft type errors the surgery
	// leaves behind (an unused sort import at worst).
	l := load.New("bitcoinng", root)
	pkg, err := l.LoadDir("utxo_reverted", dst)
	if err != nil {
		t.Fatalf("loading reverted copy: %v", err)
	}
	prog := dataflow.NewProgram(l.Fset(), []*load.Package{pkg})
	diags := detflow.Run(prog, func(path string) bool { return path == "utxo_reverted" })

	found := false
	for _, d := range diags {
		t.Logf("%s: %s", l.Fset().Position(d.Pos), d.Message)
		if strings.Contains(d.Message, "map-iteration-order") && strings.Contains(d.Message, "ApplyBlock") {
			found = true
		}
	}
	if !found {
		t.Errorf("reverting the applyPoison sort produced no map-order escape through ApplyBlock; detflow would miss the original bug")
	}

	// Control: the engine on the intact package stays quiet — the sort is
	// what makes the difference, not fixture noise.
	clean := load.New("bitcoinng", root)
	cpkg, err := clean.LoadDir("utxo_intact", src)
	if err != nil {
		t.Fatal(err)
	}
	cprog := dataflow.NewProgram(clean.Fset(), []*load.Package{cpkg})
	for _, d := range detflow.Run(cprog, func(path string) bool { return path == "utxo_intact" }) {
		t.Errorf("intact utxo copy produced finding: %s: %s", clean.Fset().Position(d.Pos), d.Message)
	}
}
