// Package linttest is the golden-fixture harness for the nglint analyzers,
// a stdlib-only analogue of golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is a directory of Go files under the analyzer's testdata/src
// tree forming one package. Expected diagnostics are annotated in the
// fixture source with analysistest's comment convention:
//
//	for k := range m { // want `append to "out"`
//
// Each `// want` comment carries one or more backquoted or double-quoted
// regular expressions; every expectation must be matched by a diagnostic
// reported on that line, and every diagnostic must be expected. Fixtures
// may import real module packages (e.g. bitcoinng/internal/wire), which the
// loader resolves from the repository.
package linttest

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"bitcoinng/internal/lint/analysis"
	"bitcoinng/internal/lint/load"
)

var wantRe = regexp.MustCompile("//[ \t]*want[ \t]+(.*)$")
var argRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// ModuleRoot walks up from the current working directory to the directory
// containing go.mod.
func ModuleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("linttest: go.mod not found above working directory")
		}
		dir = parent
	}
}

// Run loads testdata/src/<name> (relative to the calling test's directory),
// applies the analyzer, and compares diagnostics against // want comments.
// The fixture's directory path doubles as its import path, so a fixture
// under testdata/src/bitcoinng/internal/sim/fx is analyzed as a
// deterministic-zone package. It returns the raw diagnostics for extra
// assertions.
func Run(t *testing.T, a *analysis.Analyzer, name string) []analysis.Diagnostic {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(cwd, "testdata", "src", filepath.FromSlash(name))
	l := load.New("bitcoinng", ModuleRoot(t))
	pkg, err := l.LoadDir(name, dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer: a,
		Fset:     l.Fset(),
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		PkgPath:  pkg.Path,
		Info:     pkg.Info,
		Report:   func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	Check(t, l.Fset(), pkg, diags)
	return diags
}

// LoadFixtures loads the named fixture packages (testdata/src/<name>,
// relative to the calling test) in the given order with one shared loader,
// so later fixtures can import earlier ones by their fixture path. Fixture
// paths without the module prefix tolerate soft type errors, which sandbox
// tests rely on to analyze deliberately broken copies of real packages.
func LoadFixtures(t *testing.T, names ...string) (*load.Loader, []*load.Package) {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	l := load.New("bitcoinng", ModuleRoot(t))
	var pkgs []*load.Package
	for _, name := range names {
		dir := filepath.Join(cwd, "testdata", "src", filepath.FromSlash(name))
		pkg, err := l.LoadDir(name, dir)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", name, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return l, pkgs
}

// RunModule loads the named fixture packages (dependencies first), applies
// the module analyzer to all of them at once, and compares diagnostics
// against the union of the fixtures' want comments.
func RunModule(t *testing.T, a *analysis.ModuleAnalyzer, names ...string) []analysis.Diagnostic {
	t.Helper()
	l, pkgs := LoadFixtures(t, names...)
	var diags []analysis.Diagnostic
	pass := &analysis.ModulePass{
		Analyzer: a,
		Fset:     l.Fset(),
		Pkgs:     pkgs,
		Report:   func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	CheckAll(t, l.Fset(), pkgs, diags)
	return diags
}

// Check compares diagnostics against one fixture package's want comments.
func Check(t *testing.T, fset *token.FileSet, pkg *load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	CheckAll(t, fset, []*load.Package{pkg}, diags)
}

// CheckAll compares diagnostics against the want comments of several fixture
// packages at once — module analyzers report across package boundaries.
func CheckAll(t *testing.T, fset *token.FileSet, pkgs []*load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	// Gather expectations.
	wants := map[key][]*regexp.Regexp{}
	for _, pkg := range pkgs {
		for i, f := range pkg.Files {
			fn := pkg.Filenames[i]
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					line := fset.Position(c.Pos()).Line
					for _, am := range argRe.FindAllStringSubmatch(m[1], -1) {
						pat := am[1]
						if pat == "" {
							pat = am[2]
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", fn, line, pat, err)
						}
						wants[key{fn, line}] = append(wants[key{fn, line}], re)
					}
				}
			}
		}
	}
	// Match diagnostics.
	matched := map[*regexp.Regexp]bool{}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		found := false
		for _, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched[re] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			if !matched[re] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			}
		}
	}
}
