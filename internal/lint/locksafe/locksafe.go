// Package locksafe builds a per-package lock-ordering graph and flags two
// hazards around the repository's concurrency surfaces.
//
//  1. Lock-order cycles. Two sync.Mutex/RWMutex values acquired in opposite
//     orders on two code paths deadlock under contention. The analyzer
//     identifies each mutex by its anchor — "Type.field" for a mutex field,
//     "pkg.var" for a package-level mutex — walks every function tracking
//     the held set (Lock/RLock push, Unlock/RUnlock pop, defer Unlock holds
//     to function end), propagates acquisitions through same-package calls
//     to a fixpoint, and reports any cycle in the resulting acquired-while-
//     holding graph.
//
//  2. Locks held across deterministic dispatch. validate.Pool.Run (and its
//     Warm* wrappers) blocks until worker goroutines finish: holding a
//     mutex across it deadlocks the pool the moment a worker touches the
//     same lock — the striped connect-cache hazard. sim.Loop.PostEvent/
//     PostEventPrio/At/After and sim.ShardedLoop.ScheduleGlobal/OnBarrier
//     enqueue callbacks that run on a shard's execution context; capturing
//     a held mutex there is a latent cross-shard deadlock and, worse, makes
//     event timing depend on lock contention. Holding any mutex at such a
//     call site is flagged.
//
// The analysis is intraprocedural with one-level-of-package call summaries:
// conservative enough to gate CI, precise enough that the repository's real
// locking (leaf mutexes guarding short sections) passes clean.
package locksafe

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"bitcoinng/internal/lint/analysis"
	"bitcoinng/internal/lint/astutil"
)

// Analyzer is the locksafe check.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc: "flags lock-order cycles between sync.Mutex/RWMutex values and " +
		"mutexes held across validate.Pool.Run / sim.Loop event scheduling",
	Run: run,
}

// dispatchMethods maps receiver type (package path, type name) to the
// method names that dispatch work onto other goroutines/shards.
var dispatchMethods = map[[2]string]map[string]bool{
	{"bitcoinng/internal/validate", "Pool"}: {
		"Run": true, "WarmTransactions": true, "WarmBlock": true,
	},
	{"bitcoinng/internal/sim", "Loop"}: {
		"PostEvent": true, "PostEventPrio": true, "At": true, "After": true,
	},
	{"bitcoinng/internal/sim", "ShardedLoop"}: {
		"ScheduleGlobal": true, "OnBarrier": true,
	},
}

// lockID names a mutex by its anchor so distinct instances of the same
// field share one graph node ("Collector.mu"), which is what lock-ordering
// is about.
type lockID string

type edge struct {
	from, to lockID
	pos      ast.Node // acquisition site creating the edge
}

type funcInfo struct {
	decl *ast.FuncDecl
	// acquires is the set of locks the function may take, directly or
	// through same-package calls (fixpoint).
	acquires map[lockID]bool
	// callees lists same-package functions invoked.
	callees []*funcInfo
}

func run(pass *analysis.Pass) error {
	// Index package functions for call summaries.
	funcs := map[types.Object]*funcInfo{}
	var order []*funcInfo
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			fi := &funcInfo{decl: fd, acquires: map[lockID]bool{}}
			funcs[obj] = fi
			order = append(order, fi)
		}
	}

	// Pass 1: direct acquisitions and callee lists. Iterate the declaration
	// order slice, not the map: report order must be deterministic (this
	// package must hold itself to the maporder rule).
	for _, fi := range order {
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, kind := lockOp(pass, call); id != "" && (kind == opLock || kind == opRLock) {
				fi.acquires[id] = true
			}
			if callee := calleeObj(pass, call); callee != nil {
				if cf, ok := funcs[callee]; ok {
					fi.callees = append(fi.callees, cf)
				}
			}
			return true
		})
	}

	// Fixpoint: propagate callee acquisitions.
	for changed := true; changed; {
		changed = false
		for _, fi := range order {
			for _, cf := range fi.callees {
				for id := range cf.acquires {
					if !fi.acquires[id] {
						fi.acquires[id] = true
						changed = true
					}
				}
			}
		}
	}

	// Pass 2: walk each function with a held-set, collecting order edges
	// and dispatch-while-holding diagnostics.
	var edges []edge
	for _, fi := range order {
		edges = append(edges, walkHeld(pass, funcs, fi)...)
	}

	reportCycles(pass, edges)
	return nil
}

type opKind int

const (
	opNone opKind = iota
	opLock
	opRLock
	opUnlock
	opRUnlock
)

// lockOp classifies call as a mutex operation and returns the lock's ID.
func lockOp(pass *analysis.Pass, call *ast.CallExpr) (lockID, opKind) {
	recv, recvT, name, ok := astutil.MethodCall(pass.Info, call)
	if !ok {
		return "", opNone
	}
	var kind opKind
	switch name {
	case "Lock":
		kind = opLock
	case "RLock":
		kind = opRLock
	case "Unlock":
		kind = opUnlock
	case "RUnlock":
		kind = opRUnlock
	default:
		return "", opNone
	}
	if !astutil.NamedIs(recvT, "sync", "Mutex") && !astutil.NamedIs(recvT, "sync", "RWMutex") {
		return "", opNone
	}
	return anchor(pass, recv), kind
}

// anchor names the mutex expression: "Type.field" when the mutex is reached
// through a selector whose base has a named type, "pkg.name" for
// package-level variables, else the printed leaf.
func anchor(pass *analysis.Pass, e ast.Expr) lockID {
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if base := pass.TypeOf(sel.X); base != nil {
			if n := astutil.Named(base); n != nil {
				return lockID(n.Obj().Name() + "." + sel.Sel.Name)
			}
		}
		return lockID("?." + sel.Sel.Name)
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := astutil.Obj(pass.Info, id); obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return lockID(obj.Pkg().Name() + "." + id.Name)
		}
		return lockID(id.Name)
	}
	return lockID(fmt.Sprintf("expr@%d", e.Pos()))
}

type held struct {
	id     lockID
	rlock  bool
	defers bool // released only by a deferred unlock (held to return)
}

// walkHeld runs a linear, order-sensitive scan of fi's body, maintaining
// the held stack. Control flow is flattened: branches are scanned in source
// order with the held set shared, which over-approximates "may be held" —
// exactly the right polarity for a gate.
func walkHeld(pass *analysis.Pass, funcs map[types.Object]*funcInfo, fi *funcInfo) []edge {
	var (
		edges []edge
		hs    []held
	)
	release := func(id lockID) {
		for i := len(hs) - 1; i >= 0; i-- {
			if hs[i].id == id && !hs[i].defers {
				hs = append(hs[:i], hs[i+1:]...)
				return
			}
		}
	}
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			// A closure body runs later on an unknown goroutine; its own
			// acquisitions are scanned when the literal is a callee of a
			// dispatch, and a fresh conservative scan here would conflate
			// scopes. Skip.
			return false
		case *ast.DeferStmt:
			if id, kind := lockOp(pass, v.Call); id != "" && (kind == opUnlock || kind == opRUnlock) {
				for i := len(hs) - 1; i >= 0; i-- {
					if hs[i].id == id {
						hs[i].defers = true
						break
					}
				}
			}
			return false
		case *ast.CallExpr:
			if id, kind := lockOp(pass, v); id != "" {
				switch kind {
				case opLock, opRLock:
					for _, h := range hs {
						if h.id != id {
							edges = append(edges, edge{from: h.id, to: id, pos: v})
						} else if kind == opLock && !h.rlock {
							pass.Reportf(v.Pos(), "lock %s acquired while already held (self-deadlock on this path)", id)
						}
					}
					hs = append(hs, held{id: id, rlock: kind == opRLock})
				case opUnlock, opRUnlock:
					release(id)
				}
				return true
			}
			// Dispatch while holding?
			if len(hs) > 0 {
				if _, recvT, name, ok := astutil.MethodCall(pass.Info, v); ok {
					if n := astutil.Named(recvT); n != nil && n.Obj().Pkg() != nil {
						key := [2]string{n.Obj().Pkg().Path(), n.Obj().Name()}
						if dispatchMethods[key][name] {
							pass.Reportf(v.Pos(),
								"mutex %s held across %s.%s: the callback runs on pool/shard context and re-entry deadlocks (release before dispatching)",
								hs[len(hs)-1].id, n.Obj().Name(), name)
						}
					}
				}
			}
			// Same-package call: edges to everything the callee acquires,
			// in sorted order so report positions are stable run to run.
			if callee := calleeObj(pass, v); callee != nil {
				if cf, ok := funcs[callee]; ok {
					ids := make([]lockID, 0, len(cf.acquires))
					for id := range cf.acquires {
						ids = append(ids, id)
					}
					sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
					for _, h := range hs {
						for _, id := range ids {
							if id != h.id {
								edges = append(edges, edge{from: h.id, to: id, pos: v})
							}
						}
					}
				}
			}
		}
		return true
	})
	return edges
}

// calleeObj resolves the static callee of call when it is a same-package
// function or method declaration.
func calleeObj(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		if s, ok := pass.Info.Selections[fun]; ok && s.Kind() == types.MethodVal {
			return s.Obj()
		}
		return pass.Info.Uses[fun.Sel]
	}
	return nil
}

// reportCycles finds cycles in the acquired-while-holding graph and reports
// each once, at the edge completing the cycle.
func reportCycles(pass *analysis.Pass, edges []edge) {
	adj := map[lockID]map[lockID]edge{}
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = map[lockID]edge{}
		}
		if _, dup := adj[e.from][e.to]; !dup {
			adj[e.from][e.to] = e
		}
	}
	// For determinism, iterate nodes sorted.
	var nodes []lockID
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	seen := map[string]bool{}
	for _, start := range nodes {
		var path []lockID
		var dfs func(lockID) bool
		onPath := map[lockID]bool{}
		dfs = func(n lockID) bool {
			path = append(path, n)
			onPath[n] = true
			var outs []lockID
			for to := range adj[n] {
				outs = append(outs, to)
			}
			sort.Slice(outs, func(i, j int) bool { return outs[i] < outs[j] })
			for _, to := range outs {
				if to == start && len(path) > 1 {
					key := cycleKey(path)
					if !seen[key] {
						seen[key] = true
						e := adj[n][start]
						var names []string
						for _, p := range path {
							names = append(names, string(p))
						}
						names = append(names, string(start))
						pass.Reportf(e.pos.Pos(),
							"lock-order cycle: %s — acquiring in opposite orders on different paths deadlocks under contention",
							strings.Join(names, " -> "))
					}
					continue
				}
				if !onPath[to] && to > start { // canonical: smallest node first
					if dfs(to) {
						return true
					}
				}
			}
			path = path[:len(path)-1]
			onPath[n] = false
			return false
		}
		dfs(start)
	}
}

// cycleKey canonicalizes a cycle path for dedup.
func cycleKey(path []lockID) string {
	var parts []string
	for _, p := range path {
		parts = append(parts, string(p))
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}
