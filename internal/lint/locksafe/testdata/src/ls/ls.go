// Package ls is the locksafe fixture. It imports the real validate and sim
// packages so dispatch-method detection is exercised against the actual
// receiver types.
package ls

import (
	"sync"

	"bitcoinng/internal/sim"
	"bitcoinng/internal/validate"
)

type S struct {
	a sync.Mutex
	b sync.Mutex
	n int
}

// f establishes the order S.a -> S.b.
func (s *S) f() {
	s.a.Lock()
	s.b.Lock()
	s.n++
	s.b.Unlock()
	s.a.Unlock()
}

// g acquires in the opposite order, closing the cycle.
func (s *S) g() {
	s.b.Lock()
	s.a.Lock() // want `lock-order cycle: S\.a -> S\.b -> S\.a`
	s.n++
	s.a.Unlock()
	s.b.Unlock()
}

// rec self-deadlocks.
func (s *S) rec() {
	s.a.Lock()
	s.a.Lock() // want `lock S\.a acquired while already held`
	s.n++
	s.a.Unlock()
	s.a.Unlock()
}

// heldAcrossPool blocks the pool while holding S.a: a worker touching S.a
// deadlocks the run.
func (s *S) heldAcrossPool(p *validate.Pool) {
	s.a.Lock()
	defer s.a.Unlock()
	p.Run(3, func(i int) { s.n += i }) // want `mutex S\.a held across Pool\.Run`
}

// heldAcrossLoop schedules an event while holding S.b.
func (s *S) heldAcrossLoop(l *sim.Loop) {
	s.b.Lock()
	l.At(10, func() { s.n++ }) // want `mutex S\.b held across Loop\.At`
	s.b.Unlock()
}

// okDispatch releases before dispatching.
func (s *S) okDispatch(p *validate.Pool) {
	s.a.Lock()
	s.n++
	s.a.Unlock()
	p.Run(3, func(i int) { s.n += i })
}

// T is independent: a one-way order (T.x before T.y, never reversed) is not
// a cycle.
type T struct {
	x sync.Mutex
	y sync.RWMutex
	n int
}

func (t *T) readThenWrite() {
	t.x.Lock()
	t.y.RLock()
	t.n++
	t.y.RUnlock()
	t.x.Unlock()
}

func (t *T) sameOrderAgain() {
	t.x.Lock()
	defer t.x.Unlock()
	t.y.Lock()
	defer t.y.Unlock()
	t.n++
}

// viaHelper closes a cycle interprocedurally: U.b is taken by the helper
// while U.a is held, and elsewhere U.a is taken while U.b is held.
type U struct {
	a sync.Mutex
	b sync.Mutex
	n int
}

func (u *U) helperB() {
	u.b.Lock()
	u.n++
	u.b.Unlock()
}

func (u *U) lockAThenHelper() {
	u.a.Lock()
	defer u.a.Unlock()
	u.helperB()
}

func (u *U) lockBThenA() {
	u.b.Lock()
	u.a.Lock() // want `lock-order cycle: U\.a -> U\.b -> U\.a`
	u.n++
	u.a.Unlock()
	u.b.Unlock()
}
