package locksafe_test

import (
	"testing"

	"bitcoinng/internal/lint/linttest"
	"bitcoinng/internal/lint/locksafe"
)

func TestFixture(t *testing.T) {
	diags := linttest.Run(t, locksafe.Analyzer, "ls")
	if len(diags) == 0 {
		t.Fatal("locksafe fixture produced no diagnostics: the rule does not fire")
	}
}
