// Package astutil holds the small AST/type helpers shared by the nglint
// analyzers.
package astutil

import (
	"go/ast"
	"go/types"
)

// PkgFuncCall reports whether call invokes a package-level function through
// a package selector (e.g. time.Now(), rand.Intn(n)), returning the
// package's import path and the function name.
func PkgFuncCall(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	id, okID := sel.X.(*ast.Ident)
	if !okID {
		return "", "", false
	}
	pn, okPkg := info.Uses[id].(*types.PkgName)
	if !okPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// MethodCall reports whether call invokes a method via a selector,
// returning the receiver expression, its static type, and the method name.
func MethodCall(info *types.Info, call *ast.CallExpr) (recv ast.Expr, recvType types.Type, name string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return nil, nil, "", false
	}
	s, okS := info.Selections[sel]
	if !okS || s.Kind() != types.MethodVal {
		return nil, nil, "", false
	}
	return sel.X, s.Recv(), sel.Sel.Name, true
}

// Named returns the named type underlying t, unwrapping one level of
// pointer and any aliases, or nil.
func Named(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// NamedIs reports whether t (possibly behind a pointer) is the named type
// pkgPath.name.
func NamedIs(t types.Type, pkgPath, name string) bool {
	n := Named(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// Unwrap strips parens and value conversions (T(x), including unary &/*)
// down to the underlying operand expression.
func Unwrap(info *types.Info, e ast.Expr) ast.Expr {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.CallExpr:
			// A conversion like uint64(x) has exactly one argument
			// and a type as its callee.
			if len(v.Args) == 1 {
				if tv, ok := info.Types[v.Fun]; ok && tv.IsType() {
					e = v.Args[0]
					continue
				}
			}
			return e
		default:
			return e
		}
	}
}

// FieldName returns the final selected field name of e after unwrapping
// conversions ("h.Height" or "uint64(h.Height)" → "Height"), or "" when e
// is not a selector or identifier.
func FieldName(info *types.Info, e ast.Expr) string {
	switch v := Unwrap(info, e).(type) {
	case *ast.SelectorExpr:
		return v.Sel.Name
	case *ast.Ident:
		if v.Name == "_" {
			return ""
		}
		return v.Name
	}
	return ""
}

// RootIdent returns the leftmost identifier of a selector chain
// (a.b.c → a), or nil.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// Obj returns the object an identifier resolves to, checking uses then
// definitions.
func Obj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
