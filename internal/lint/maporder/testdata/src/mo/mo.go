// Package mo is the maporder fixture.
package mo

import (
	"fmt"
	"io"
	"slices"
	"sort"
)

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside range over map without a later sort`
	}
	return keys
}

func okSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func okSlicesSorted(m map[int]string) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	slices.Sort(ks)
	return ks
}

type pair struct {
	k string
	v int
}

func okSortSlice(m map[string]int) []pair {
	var ps []pair
	for k, v := range m {
		ps = append(ps, pair{k, v})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].k < ps[j].k })
	return ps
}

func badWrite(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt\.Fprintf inside range over map writes a stream`
	}
}

type sink interface {
	Write(p []byte) (int, error)
}

func badHash(h sink, m map[string]bool) {
	for k := range m {
		h.Write([]byte(k)) // want `Write on an io\.Writer inside range over map`
	}
}

func badSend(ch chan string, m map[string]int) {
	for k := range m {
		ch <- k // want `send on channel inside range over map`
	}
}

// okFold: commutative reductions don't observe order.
func okFold(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// okLocal: the accumulator is declared inside the loop, so it never holds
// elements from two different keys.
func okLocal(m map[string][]int) map[string]int {
	out := map[string]int{}
	for k, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		out[k] = len(doubled)
	}
	return out
}

// okSliceRange: ranging a slice is always ordered.
func okSliceRange(w io.Writer, xs []string) {
	for _, x := range xs {
		fmt.Fprintln(w, x)
	}
}
