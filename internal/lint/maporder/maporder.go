// Package maporder flags map iteration whose order can leak into
// deterministic output.
//
// Go randomizes map iteration order on purpose, so any loop that folds a
// map into an ordered artifact — a slice that is never sorted, a stream
// written to an io.Writer, bytes fed to a hash — produces different output
// on every run. That is precisely the bug class that would silently break
// chaos.Digest (seed-replayable scenario fingerprints) and
// metrics.ShardedCollector merging (byte-identical reports at any
// parallelism), and no fixed-seed test is guaranteed to catch it because
// the nondeterminism lives in the runtime, not the seed.
//
// The analyzer flags a `range` over a map when the loop body:
//
//   - appends to a slice declared outside the loop, unless the same slice
//     is passed to a sort (sort.* or slices.Sort*) later in the enclosing
//     function — the canonical collect-then-sort pattern passes clean;
//   - writes to an io.Writer or hash.Hash (method calls like Write and
//     WriteString, or fmt.Fprint*/io.WriteString/binary.Write with the
//     loop in scope) — a stream cannot be reordered after the fact;
//   - sends on a channel — consumers observe map order.
//
// Commutative folds (sums, counters, map-to-map copies, deletes) are not
// flagged. Intentional order-insensitive accumulation (e.g. feeding an
// order-independent set) carries //nglint:allow maporder <reason>.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"bitcoinng/internal/lint/analysis"
	"bitcoinng/internal/lint/astutil"
)

// Analyzer is the maporder check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flags range-over-map whose body appends to a slice (without a " +
		"later sort), writes to an io.Writer/hash, or sends on a channel: " +
		"map order would leak into deterministic output",
	Run: run,
}

// writerIface and hashWriter are built once: io.Writer's method set,
// constructed structurally so packages that never import io still check.
var writerIface = func() *types.Interface {
	byteSlice := types.NewSlice(types.Typ[types.Byte])
	results := types.NewTuple(
		types.NewVar(token.NoPos, nil, "", types.Typ[types.Int]),
		types.NewVar(token.NoPos, nil, "", types.Universe.Lookup("error").Type()),
	)
	sig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "", byteSlice)), results, false)
	m := types.NewFunc(token.NoPos, nil, "Write", sig)
	return types.NewInterfaceType([]*types.Func{m}, nil).Complete()
}()

// streamFuncs are package functions that write a stream through one of
// their arguments.
var streamFuncs = map[string]map[string]bool{
	"fmt":             {"Fprint": true, "Fprintf": true, "Fprintln": true},
	"io":              {"WriteString": true, "Copy": true},
	"encoding/binary": {"Write": true},
}

// streamMethods are method names that emit into an ordered stream when the
// receiver implements io.Writer (covers bytes.Buffer, strings.Builder,
// bufio.Writer, hash.Hash, wire.Writer...).
var streamMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		// Visit every function body so we know the enclosing function of
		// each range statement (needed for the sort-after-loop check).
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			checkFunc(pass, body)
			return true
		})
	}
	return nil
}

func checkFunc(pass *analysis.Pass, funcBody *ast.BlockStmt) {
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != funcBody {
			// Nested function literals get their own checkFunc visit
			// from run; don't double-report their range statements.
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, funcBody, rng)
		return true
	})
}

func checkMapRange(pass *analysis.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt) {
	reported := false
	report := func(pos token.Pos, format string, args ...any) {
		if !reported {
			pass.Reportf(pos, format, args...)
			reported = true
		}
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		switch v := n.(type) {
		case *ast.SendStmt:
			report(v.Pos(), "send on channel inside range over map: the receiver observes randomized map order; iterate sorted keys instead")
		case *ast.AssignStmt:
			if tgt := appendTarget(pass, v); tgt != nil {
				if declaredInside(tgt, rng) {
					return true
				}
				if !sortedAfter(pass, funcBody, rng, tgt) {
					report(v.Pos(),
						"append to %q inside range over map without a later sort: slice order is randomized per run; sort %q (sort.* / slices.Sort*) after the loop or iterate sorted keys",
						tgt.Name(), tgt.Name())
				}
			}
		case *ast.CallExpr:
			if pkg, fn, ok := astutil.PkgFuncCall(pass.Info, v); ok {
				if streamFuncs[pkg][fn] {
					report(v.Pos(), "%s.%s inside range over map writes a stream in randomized map order; iterate sorted keys instead", pkg, fn)
				}
				return true
			}
			if _, recvT, m, ok := astutil.MethodCall(pass.Info, v); ok && streamMethods[m] {
				if implementsWriter(recvT) {
					report(v.Pos(), "%s on an io.Writer inside range over map emits a stream in randomized map order; iterate sorted keys instead", m)
				}
			}
		}
		return true
	})
}

// appendTarget returns the object of x in `x = append(x, ...)` (or := /
// x[i] variants rooted at x), or nil when stmt is not a self-append.
func appendTarget(pass *analysis.Pass, stmt *ast.AssignStmt) types.Object {
	if len(stmt.Rhs) != 1 || len(stmt.Lhs) != 1 {
		return nil
	}
	call, ok := stmt.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" || astutil.Obj(pass.Info, id) != types.Universe.Lookup("append") {
		return nil
	}
	root := astutil.RootIdent(call.Args[0])
	if root == nil {
		return nil
	}
	return astutil.Obj(pass.Info, root)
}

// declaredInside reports whether obj's declaration lies inside the range
// statement (a loop-local accumulator resets every key, so map order cannot
// accumulate into it across iterations... it still escapes per-iteration,
// but per-iteration contents do not depend on sibling ordering).
func declaredInside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()
}

// sortFuncs recognizes the blessed reordering calls.
var sortFuncs = map[string]map[string]bool{
	"sort": {"Strings": true, "Ints": true, "Float64s": true, "Slice": true,
		"SliceStable": true, "Sort": true, "Stable": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// sortedAfter reports whether obj is passed to a sort call positioned after
// the range loop inside funcBody.
func sortedAfter(pass *analysis.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		pkg, fn, ok := astutil.PkgFuncCall(pass.Info, call)
		if !ok || !sortFuncs[pkg][fn] {
			return true
		}
		for _, arg := range call.Args {
			if root := astutil.RootIdent(astutil.Unwrap(pass.Info, arg)); root != nil {
				if astutil.Obj(pass.Info, root) == obj {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

func implementsWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if types.Implements(t, writerIface) {
		return true
	}
	if _, ok := t.Underlying().(*types.Pointer); !ok {
		if p := types.NewPointer(t); types.Implements(p, writerIface) {
			return true
		}
	}
	return false
}
