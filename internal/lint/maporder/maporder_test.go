package maporder_test

import (
	"testing"

	"bitcoinng/internal/lint/linttest"
	"bitcoinng/internal/lint/maporder"
)

func TestFixture(t *testing.T) {
	diags := linttest.Run(t, maporder.Analyzer, "mo")
	if len(diags) == 0 {
		t.Fatal("maporder fixture produced no diagnostics: the rule does not fire")
	}
}
