// Package analysis is a self-contained, stdlib-only equivalent of the core
// of golang.org/x/tools/go/analysis, shaped so the nglint analyzers could be
// ported to the upstream framework mechanically if the dependency ever
// becomes available. The build environment for this repository is hermetic
// (no module proxy), so the framework is vendored as ~100 lines rather than
// imported.
//
// An Analyzer inspects one type-checked package at a time and reports
// Diagnostics through its Pass. Orchestration — package loading, suppression
// via //nglint:allow annotations, exit codes — lives in internal/lint/nglint.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"bitcoinng/internal/lint/load"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //nglint:allow <name> <reason> annotations.
	Name string

	// Doc is a one-paragraph description of what the analyzer enforces
	// and why, shown by `nglint -list`.
	Doc string

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an Analyzer.
type Pass struct {
	Analyzer *Analyzer

	// Fset maps token.Pos values in Files to positions. It is shared by
	// every package in a load, so cross-package positions resolve too.
	Fset *token.FileSet

	// Files holds the package's parsed non-test source files. Test files
	// are never loaded: the determinism contract governs production code,
	// and tests legitimately use wall clocks and ad-hoc randomness.
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// PkgPath is the import path ("bitcoinng/internal/sim").
	PkgPath string

	// Info holds the type-checker's results for Files.
	Info *types.Info

	// Report delivers a diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// ModuleAnalyzer describes a static check that needs the whole module at
// once — interprocedural dataflow, cross-package parity diffing — rather
// than one package at a time. Module analyzers run after the per-package
// suite over the same load, so type information and positions are shared.
type ModuleAnalyzer struct {
	// Name identifies the analyzer in diagnostics and //nglint:allow
	// annotations, exactly like Analyzer.Name.
	Name string

	// Doc is shown by `nglint -list`.
	Doc string

	// Run applies the analyzer to the whole module.
	Run func(*ModulePass) error
}

// ModulePass carries every loaded module package to a ModuleAnalyzer.
type ModulePass struct {
	Analyzer *ModuleAnalyzer

	// Fset is the load's shared file set.
	Fset *token.FileSet

	// Pkgs holds every module package, sorted by import path.
	Pkgs []*load.Package

	// Report delivers a diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
