package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Kind classifies a nondeterminism source. Kinds form a bitmask so transfer
// edges can be filtered per kind if a client needs it.
type Kind uint8

const (
	KindWalltime Kind = 1 << iota // time.Now and friends
	KindRand                      // global / OS randomness
	KindMapOrder                  // map iteration order
	KindEnv                       // environment, pids, host identity
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindWalltime:
		return "wall-clock"
	case KindRand:
		return "randomness"
	case KindMapOrder:
		return "map-iteration-order"
	case KindEnv:
		return "environment"
	}
	return "tainted"
}

// Taint is one concrete nondeterminism source occurrence. It is comparable
// and used as a set key; Pos is the source site diagnostics anchor to.
type Taint struct {
	Kind Kind
	Pos  token.Pos
	What string // e.g. "time.Now", "range over map"
	Pkg  string // package path containing the source site
}

// pref marks "the value of parameter index, field" flowing through a
// function — the symbolic half of an abstract value. Field "" means the
// whole parameter.
type pref struct {
	index int
	field string
}

// item is one field's abstract value: concrete taints plus parameter
// references.
type item struct {
	taints map[Taint]bool
	prefs  map[pref]bool
}

func newItem() *item { return &item{taints: map[Taint]bool{}, prefs: map[pref]bool{}} }

func (it *item) empty() bool { return it == nil || (len(it.taints) == 0 && len(it.prefs) == 0) }

// merge unions src into it, returning whether it grew. kill drops MapOrder
// taints (the position-gated sort-sanitizer filter).
func (it *item) merge(src *item, killMapOrder bool) bool {
	if src == nil {
		return false
	}
	grew := false
	for t := range src.taints {
		if killMapOrder && t.Kind == KindMapOrder {
			continue
		}
		if !it.taints[t] {
			it.taints[t] = true
			grew = true
		}
	}
	for p := range src.prefs {
		if !it.prefs[p] {
			it.prefs[p] = true
			grew = true
		}
	}
	return grew
}

// value is a field-granular abstract value: field name → item, with ""
// holding the whole-value component. Field granularity is what keeps one
// tainted struct field (Result.WallTime) from condemning every read of the
// struct (res.Report) — the difference between a usable gate and an FP
// avalanche.
type value map[string]*item

func (v value) at(field string) *item {
	it, ok := v[field]
	if !ok {
		it = newItem()
		v[field] = it
	}
	return it
}

// flatten unions every field into one item.
func (v value) flatten() *item {
	out := newItem()
	for _, it := range v {
		out.merge(it, false)
	}
	return out
}

func (v value) empty() bool {
	for _, it := range v {
		if !it.empty() {
			return false
		}
	}
	return true
}

// readField models reading .field from v: the field's own item plus the
// whole-value component, with whole-parameter references specialized to the
// field (pref(i,"") observed through .f becomes pref(i,f), so sinks learn
// which field of the parameter they consume).
func (v value) readField(field string) value {
	out := value{}
	it := out.at("")
	it.merge(v[field], false)
	if whole := v[""]; whole != nil {
		for t := range whole.taints {
			it.taints[t] = true
		}
		for p := range whole.prefs {
			if p.field == "" {
				it.prefs[pref{p.index, field}] = true
			} else {
				it.prefs[p] = true
			}
		}
	}
	return out
}

// SinkRef records one reachable sink from a parameter: where it is, what it
// is, and the call chain (FuncIDs, starting at the summarized function)
// leading to it.
type SinkRef struct {
	Desc string
	Pos  token.Pos
	Path []FuncID
}

// Summary is the interprocedural contract of one function, grown
// monotonically to a fixpoint.
type Summary struct {
	// Results[j] maps field → concrete taints of result j.
	Results []map[string]map[Taint]bool
	// ParamTaints[i] maps field → concrete taints the function writes into
	// (reference-typed) parameter i.
	ParamTaints []map[string]map[Taint]bool
	// ParamToResult[i] reports that parameter i's value may flow into some
	// result.
	ParamToResult []bool
	// ParamToParam[i][j] reports that parameter i's value may be written
	// into (reference-typed) parameter j.
	ParamToParam []map[int]bool
	// ParamSinks[i] maps field → sinks the parameter('s field) reaches,
	// keyed by sink position for dedup.
	ParamSinks []map[string]map[token.Pos]SinkRef
}

func newSummary(nParams, nResults int) *Summary {
	s := &Summary{
		Results:       make([]map[string]map[Taint]bool, nResults),
		ParamTaints:   make([]map[string]map[Taint]bool, nParams),
		ParamToResult: make([]bool, nParams),
		ParamToParam:  make([]map[int]bool, nParams),
		ParamSinks:    make([]map[string]map[token.Pos]SinkRef, nParams),
	}
	for j := range s.Results {
		s.Results[j] = map[string]map[Taint]bool{}
	}
	for i := 0; i < nParams; i++ {
		s.ParamTaints[i] = map[string]map[Taint]bool{}
		s.ParamToParam[i] = map[int]bool{}
		s.ParamSinks[i] = map[string]map[token.Pos]SinkRef{}
	}
	return s
}

// size is the monotone change detector: summaries only grow.
func (s *Summary) size() int {
	n := 0
	for _, m := range s.Results {
		for _, ts := range m {
			n += len(ts)
		}
	}
	for _, m := range s.ParamTaints {
		for _, ts := range m {
			n += len(ts)
		}
	}
	for _, b := range s.ParamToResult {
		if b {
			n++
		}
	}
	for _, m := range s.ParamToParam {
		n += len(m)
	}
	for _, m := range s.ParamSinks {
		for _, refs := range m {
			n += len(refs)
		}
	}
	return n
}

// TaintedResults returns the kinds present across all result taints.
func (s *Summary) TaintedResults() Kind {
	var k Kind
	for _, m := range s.Results {
		for _, ts := range m {
			for t := range ts {
				k |= t.Kind
			}
		}
	}
	return k
}

// Finding is one concrete taint reaching one sink.
type Finding struct {
	Taint    Taint
	SinkDesc string
	SinkPos  token.Pos
	// Path is the call chain (FuncIDs) from the function where the taint
	// met the call boundary down to the sink's function; empty for sinks
	// in the same function as the taint.
	Path []FuncID
	// SameRange is set for MapOrder findings whose sink sits lexically
	// inside the very range statement that introduced the taint — the
	// case the syntactic maporder analyzer already owns.
	SameRange bool
}

// Config parameterizes the engine with a client's source/sink model.
type Config struct {
	// SourceCall classifies a call as introducing taint (beyond
	// propagation), e.g. time.Now() → KindWalltime.
	SourceCall func(f *Func, call *ast.CallExpr) (Taint, bool)
	// SinkCall classifies a call as a terminal sink, returning a
	// description and the argument indices (into call.Args) whose taint is
	// a finding. Index -1 names the method receiver.
	SinkCall func(f *Func, call *ast.CallExpr) (desc string, args []int, ok bool)
	// SinkComposite classifies a composite literal as a sink for its
	// element values (e.g. invariant snapshot structs).
	SinkComposite func(f *Func, lit *ast.CompositeLit) (desc string, ok bool)
	// Sanitizer classifies a call as order-restoring (sort.*), returning
	// the index of the argument it sorts.
	Sanitizer func(f *Func, call *ast.CallExpr) (arg int, ok bool)
	// UnorderedCallback classifies an unresolved call (interface dispatch,
	// function value) as invoking its func-typed arguments once per element
	// of an order-unspecified collection — Range-style iterators. The
	// engine then seeds KindMapOrder into the parameters of func-literal
	// arguments, exactly as a map range taints its loop variables. Only
	// consulted for callees without a summary: resolved module callees are
	// modelled precisely and need no callback approximation.
	UnorderedCallback func(f *Func, call *ast.CallExpr) (what string, ok bool)
	// InZone gates sink collection: only sinks whose own site is in-zone
	// are recorded. Taint sources are tracked everywhere.
	InZone func(pkgPath string) bool
}

// Engine runs the interprocedural taint analysis.
type Engine struct {
	Prog *Program
	Cfg  Config

	states   map[FuncID]*fnState
	findings map[[2]token.Pos]Finding
}

// Analyze computes all summaries and findings to a global fixpoint.
func Analyze(prog *Program, cfg Config) *Engine {
	e := &Engine{
		Prog:     prog,
		Cfg:      cfg,
		states:   map[FuncID]*fnState{},
		findings: map[[2]token.Pos]Finding{},
	}
	for _, f := range prog.Order {
		e.states[f.ID] = newFnState(e, f)
	}
	// Global fixpoint: summaries grow monotonically, so iterate until a
	// full pass changes nothing. The bound is a backstop; real modules
	// settle in a handful of passes.
	for pass := 0; pass < 64; pass++ {
		changed := false
		for _, f := range prog.Order {
			if e.states[f.ID].analyze() {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return e
}

// Summary returns the computed summary for id, or nil.
func (e *Engine) Summary(id FuncID) *Summary {
	if st, ok := e.states[id]; ok {
		return st.sum
	}
	return nil
}

// Findings returns all collected findings sorted by (taint pos, sink pos).
func (e *Engine) Findings() []Finding {
	out := make([]Finding, 0, len(e.findings))
	for _, f := range e.findings {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Taint.Pos != b.Taint.Pos {
			return a.Taint.Pos < b.Taint.Pos
		}
		return a.SinkPos < b.SinkPos
	})
	return out
}

func (e *Engine) addFinding(f Finding) {
	key := [2]token.Pos{f.Taint.Pos, f.SinkPos}
	if _, ok := e.findings[key]; !ok {
		e.findings[key] = f
	}
}

// killKey identifies a sanitizer target: root object plus first field.
type killKey struct {
	obj   types.Object
	field string
}

// fnState is the per-function analysis state, persistent across global
// passes (the environment and summary only grow, keeping the whole engine
// monotone).
type fnState struct {
	e   *Engine
	f   *Func
	sum *Summary
	env map[types.Object]value
	// kills maps sanitizer targets to the sanitizer call positions: a
	// MapOrder taint merged into the target at a position before some kill
	// position is dropped — the canonical collect-then-sort pattern.
	kills map[killKey][]token.Pos
	// ranges holds the positions of map-range statements lexically
	// enclosing the current walk point.
	ranges []token.Pos
	// rangeKeys pairs each enclosing map range's key variable with the
	// range position (== its taint's Pos): storing under s[key] launders
	// exactly that range's order taint, because map keys are unique so
	// each slot is written once regardless of iteration order.
	rangeKeys []rangeKey
	inZone    bool
	seeded    bool
}

func newFnState(e *Engine, f *Func) *fnState {
	return &fnState{
		e:      e,
		f:      f,
		sum:    newSummary(len(f.Params), len(f.Results)),
		env:    map[types.Object]value{},
		kills:  map[killKey][]token.Pos{},
		inZone: e.Cfg.InZone == nil || e.Cfg.InZone(f.Pkg.Path),
	}
}

// analyze walks the function body to a local fixpoint, returning whether
// the summary grew.
func (st *fnState) analyze() bool {
	if !st.seeded {
		st.seeded = true
		for i, p := range st.f.Params {
			v := value{}
			v.at("").prefs[pref{i, ""}] = true
			st.env[p] = v
		}
		st.collectKills(st.f.Decl.Body)
	}
	before := st.sum.size()
	// Local sweeps: assignments chain value through locals one hop per
	// sweep; loop until stable with a backstop for pathological chains.
	for sweep := 0; sweep < 32; sweep++ {
		grew := st.walkStmt(st.f.Decl.Body)
		if !grew {
			break
		}
	}
	return st.sum.size() > before
}

// collectKills pre-scans body for sanitizer calls so the kill filter is a
// static fact (insertion-time filtering keeps the fixpoint monotone — no
// taint is ever removed once admitted).
func (st *fnState) collectKills(body *ast.BlockStmt) {
	if st.e.Cfg.Sanitizer == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		idx, ok := st.e.Cfg.Sanitizer(st.f, call)
		if !ok || idx >= len(call.Args) {
			return true
		}
		if obj, field, ok := st.rootOf(call.Args[idx]); ok {
			k := killKey{obj, field}
			st.kills[k] = append(st.kills[k], call.Pos())
		}
		return true
	})
}

// killedAt reports whether MapOrder taint merged into (obj, field) at pos
// is neutralized by a later sanitizer call on the same target.
func (st *fnState) killedAt(obj types.Object, field string, pos token.Pos) bool {
	for _, k := range []killKey{{obj, field}, {obj, ""}} {
		for _, kp := range st.kills[k] {
			if kp > pos {
				return true
			}
		}
	}
	return false
}

// rootOf resolves an lvalue-ish expression to its root object and first
// field ("x" → (x,""), "x.f.g" → (x,f), "&x.f" → (x,f), "m[k]" → (m,"")).
func (st *fnState) rootOf(e ast.Expr) (types.Object, string, bool) {
	field := ""
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if v.Name == "_" {
				return nil, "", false
			}
			if obj := objOf(st.f.Pkg.Info, v); obj != nil {
				return obj, field, true
			}
			return nil, "", false
		case *ast.SelectorExpr:
			// Skip package-qualified selectors (pkg.Var): globals are out
			// of scope for the engine.
			if id, ok := v.X.(*ast.Ident); ok {
				if _, isPkg := st.f.Pkg.Info.Uses[id].(*types.PkgName); isPkg {
					return nil, "", false
				}
			}
			field = v.Sel.Name // innermost-so-far; loop ends at root, keeping the FIRST field
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.IndexExpr:
			field = ""
			e = v.X
		case *ast.SliceExpr:
			field = ""
			e = v.X
		default:
			return nil, "", false
		}
	}
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// mergeObj merges v into env[(obj, field)] at source position pos,
// applying the sanitizer kill filter. When mutating is set (the write went
// through a selector/index/deref, or composes a callee's parameter
// mutation — not a plain rebind of the identifier) and obj aliases a
// reference-typed parameter, the write escapes into the summary.
func (st *fnState) mergeObj(obj types.Object, field string, v value, pos token.Pos, mutating bool) bool {
	if obj == nil {
		return false
	}
	dst, ok := st.env[obj]
	if !ok {
		dst = value{}
		st.env[obj] = dst
	}
	kill := st.killedAt(obj, field, pos)
	grew := false
	if field == "" && !mutating {
		// Whole-object rebind: preserve the field structure of v.
		for f, it := range v {
			if dst.at(f).merge(it, kill || st.killedAt(obj, f, pos)) {
				grew = true
			}
		}
	} else {
		if dst.at(field).merge(v.flatten(), kill) {
			grew = true
		}
	}
	if !mutating {
		return grew
	}
	// Mutation through a parameter alias escapes the function.
	if whole := dst[""]; whole != nil {
		for p := range whole.prefs {
			if p.field != "" || !referenceLike(st.f.Params, p.index) {
				continue
			}
			flat := v.flatten()
			sf := field
			for t := range flat.taints {
				if kill && t.Kind == KindMapOrder {
					continue
				}
				m := st.sum.ParamTaints[p.index]
				if m[sf] == nil {
					m[sf] = map[Taint]bool{}
				}
				if !m[sf][t] {
					m[sf][t] = true
					grew = true
				}
			}
			for src := range flat.prefs {
				if !st.sum.ParamToParam[src.index][p.index] {
					st.sum.ParamToParam[src.index][p.index] = true
					grew = true
				}
			}
		}
	}
	return grew
}

// referenceLike reports whether param i's type lets writes escape to the
// caller (pointer, map, slice, chan, interface).
func referenceLike(params []*types.Var, i int) bool {
	if i >= len(params) {
		return false
	}
	switch params[i].Type().Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Interface:
		return true
	}
	return false
}
