package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// evalGrow evaluates e to an abstract value. The bool reports whether any
// persistent state (environment, summary, findings) grew as a side effect
// — calls inside expressions mutate arguments and hit sinks.
func (st *fnState) evalGrow(e ast.Expr) (value, bool) {
	if e == nil {
		return value{}, false
	}
	info := st.f.Pkg.Info
	switch v := e.(type) {
	case *ast.Ident:
		if obj := objOf(info, v); obj != nil {
			if val, ok := st.env[obj]; ok {
				return val, false
			}
		}
		return value{}, false
	case *ast.SelectorExpr:
		// Package-qualified selector (pkg.Var): globals are out of scope.
		if id, ok := v.X.(*ast.Ident); ok {
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				return value{}, false
			}
		}
		if obj, field, ok := st.rootOf(v); ok && field != "" {
			if val, ok := st.env[obj]; ok {
				return val.readField(field), false
			}
			return value{}, false
		}
		inner, grew := st.evalGrow(v.X)
		return inner.readField(v.Sel.Name), grew
	case *ast.CallExpr:
		vals, grew := st.evalMultiGrow(v, 1)
		return vals[0], grew
	case *ast.ParenExpr:
		return st.evalGrow(v.X)
	case *ast.StarExpr:
		return st.evalGrow(v.X)
	case *ast.UnaryExpr:
		if v.Op == token.ARROW { // channel receive: out of scope
			_, grew := st.evalGrow(v.X)
			return value{}, grew
		}
		return st.evalGrow(v.X)
	case *ast.BinaryExpr:
		lv, g1 := st.evalGrow(v.X)
		rv, g2 := st.evalGrow(v.Y)
		switch v.Op {
		case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ,
			token.LAND, token.LOR:
			// Comparisons/logic produce booleans: implicit (control) flows
			// are not tracked.
			return value{}, g1 || g2
		}
		out := value{}
		it := out.at("")
		it.merge(lv.flatten(), false)
		it.merge(rv.flatten(), false)
		return out, g1 || g2
	case *ast.IndexExpr:
		xv, g1 := st.evalGrow(v.X)
		iv, g2 := st.evalGrow(v.Index)
		out := value{}
		it := out.at("")
		it.merge(xv.flatten(), false)
		it.merge(iv.flatten(), false)
		return out, g1 || g2
	case *ast.IndexListExpr:
		return st.evalGrow(v.X)
	case *ast.SliceExpr:
		return st.evalGrow(v.X)
	case *ast.TypeAssertExpr:
		return st.evalGrow(v.X)
	case *ast.CompositeLit:
		return st.compositeLit(v)
	case *ast.FuncLit:
		// A closure body shares the enclosing environment (captures) —
		// walk it inline, over-approximating "it runs". Its own value
		// carries nothing.
		grew := st.walkStmt(v.Body)
		return value{}, grew
	case *ast.KeyValueExpr:
		return st.evalGrow(v.Value)
	}
	return value{}, false
}

// compositeLit builds a field-granular value for struct literals (so
// Result{WallTime: t} taints only the WallTime field) and a flat one for
// map/slice/array literals; it also applies the client's composite-sink
// hook (invariant snapshots).
func (st *fnState) compositeLit(lit *ast.CompositeLit) (value, bool) {
	info := st.f.Pkg.Info
	out := value{}
	grew := false
	isStruct := false
	var strct *types.Struct
	if t := info.TypeOf(lit); t != nil {
		strct, isStruct = t.Underlying().(*types.Struct)
	}
	anyTainted := false
	for i, elt := range lit.Elts {
		var ev value
		var g bool
		field := ""
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			ev, g = st.evalGrow(kv.Value)
			if isStruct {
				if id, ok := kv.Key.(*ast.Ident); ok {
					field = id.Name
				}
			} else {
				kvval, g2 := st.evalGrow(kv.Key)
				g = g || g2
				ev = value{"": ev.flatten()}
				ev.at("").merge(kvval.flatten(), false)
			}
		} else {
			ev, g = st.evalGrow(elt)
			if isStruct && strct != nil && i < strct.NumFields() {
				field = strct.Field(i).Name()
			}
		}
		grew = grew || g
		flat := ev.flatten()
		if !flat.empty() {
			anyTainted = len(flat.taints) > 0 || anyTainted
			out.at(field).merge(flat, false)
		}
	}
	if anyTainted && st.inZone && st.e.Cfg.SinkComposite != nil {
		if desc, ok := st.e.Cfg.SinkComposite(st.f, lit); ok {
			flat := out.flatten()
			for t := range flat.taints {
				st.e.addFinding(Finding{
					Taint: t, SinkDesc: desc, SinkPos: lit.Pos(),
					SameRange: st.inOwnRange(t),
				})
				grew = true
			}
		}
	}
	return out, grew
}

// inOwnRange reports whether t is the MapOrder taint of a map range
// lexically enclosing the current walk point.
func (st *fnState) inOwnRange(t Taint) bool {
	if t.Kind != KindMapOrder {
		return false
	}
	for _, p := range st.ranges {
		if p == t.Pos {
			return true
		}
	}
	return false
}

// evalMultiGrow evaluates an expression expected to produce n values
// (calls, type asserts, map indexes in tuple position).
func (st *fnState) evalMultiGrow(e ast.Expr, n int) ([]value, bool) {
	pad := func(vals []value, grew bool) ([]value, bool) {
		for len(vals) < n {
			vals = append(vals, value{})
		}
		return vals, grew
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		// v, ok := m[k] / x.(T) / <-ch: first value carries content.
		v, grew := st.evalGrow(e)
		return pad([]value{v}, grew)
	}
	return pad(st.call(call))
}

// call evaluates a call expression: conversions, builtins, sanitizers,
// sources, sinks, summarized module callees, and conservative pass-through
// for everything else (unresolved stdlib/interface calls keep taint alive
// through their results but introduce none and mutate nothing).
func (st *fnState) call(call *ast.CallExpr) ([]value, bool) {
	info := st.f.Pkg.Info
	grew := false
	g := func(b bool) {
		if b {
			grew = true
		}
	}

	// Type conversion T(x): pass-through.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		v, b := st.evalGrow(call.Args[0])
		return []value{v}, b
	}

	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isB := objOf(info, id).(*types.Builtin); isB {
			return st.builtin(id.Name, call)
		}
	}

	// Resolve the callee up front: an order-unspecified iterator callback
	// must be seeded before its func-literal body is walked, which happens
	// inline during argument evaluation below.
	callee := st.e.Prog.Callee(info, call)
	if callee == nil && st.e.Cfg.UnorderedCallback != nil {
		if what, ok := st.e.Cfg.UnorderedCallback(st.f, call); ok {
			t := Taint{
				Kind: KindMapOrder,
				Pos:  call.Pos(),
				What: what,
				Pkg:  st.f.Pkg.Path,
			}
			tv := value{}
			tv.at("").taints[t] = true
			for _, a := range call.Args {
				lit, isLit := a.(*ast.FuncLit)
				if !isLit || lit.Type.Params == nil {
					continue
				}
				for _, fld := range lit.Type.Params.List {
					for _, name := range fld.Names {
						if name.Name == "_" {
							continue
						}
						if obj := objOf(info, name); obj != nil {
							g(st.mergeObj(obj, "", tv, call.Pos(), false))
						}
					}
				}
			}
		}
	}

	// Evaluate arguments once (receiver first for method calls).
	var argvals []value
	recvOffset := 0
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if s, okSel := info.Selections[sel]; okSel && s.Kind() == types.MethodVal {
			rv, b := st.evalGrow(sel.X)
			g(b)
			argvals = append(argvals, rv)
			recvOffset = 1
		}
	}
	for _, a := range call.Args {
		av, b := st.evalGrow(a)
		g(b)
		argvals = append(argvals, av)
	}

	// Sanitizer calls (sort.*) were pre-scanned into the kill set; their
	// own evaluation contributes nothing further.
	if st.e.Cfg.Sanitizer != nil {
		if _, ok := st.e.Cfg.Sanitizer(st.f, call); ok {
			return []value{{}}, grew
		}
	}

	nResults := 1
	if tv, ok := info.Types[call]; ok {
		if tuple, isT := tv.Type.(*types.Tuple); isT {
			nResults = tuple.Len()
		}
	}

	// Terminal sinks: tainted arguments are findings; parameter-referencing
	// arguments become ParamSinks entries so callers inherit the sink.
	if st.inZone && st.e.Cfg.SinkCall != nil {
		if desc, idxs, ok := st.e.Cfg.SinkCall(st.f, call); ok {
			for _, idx := range idxs {
				ai := idx + recvOffset
				if idx == -1 {
					ai = 0
					if recvOffset == 0 {
						continue
					}
				}
				if ai >= len(argvals) {
					continue
				}
				flat := argvals[ai].flatten()
				for t := range flat.taints {
					st.e.addFinding(Finding{
						Taint: t, SinkDesc: desc, SinkPos: call.Pos(),
						SameRange: st.inOwnRange(t),
					})
					g(true)
				}
				for p := range flat.prefs {
					g(st.addParamSink(p, SinkRef{Desc: desc, Pos: call.Pos(), Path: []FuncID{st.f.ID}}))
				}
			}
		}
	}

	// Source calls introduce fresh taint on their result.
	if st.e.Cfg.SourceCall != nil {
		if t, ok := st.e.Cfg.SourceCall(st.f, call); ok {
			if t.Pkg == "" {
				t.Pkg = st.f.Pkg.Path
			}
			if !t.Pos.IsValid() {
				t.Pos = call.Pos()
			}
			out := value{}
			it := out.at("")
			it.taints[t] = true
			// Pass arguments through too: time.Since(start) both reads the
			// clock and consumes start.
			for _, av := range argvals[recvOffset:] {
				it.merge(av.flatten(), false)
			}
			res := make([]value, nResults)
			for j := range res {
				res[j] = out
			}
			return res, grew
		}
	}

	// Module callee with a summary: compose it.
	if callee != nil {
		res, b := st.compose(callee, argvals, call, recvOffset)
		return res, grew || b
	}

	// Unknown callee (stdlib, interface dispatch, function values):
	// conservative pass-through of arguments into results; no mutation, no
	// fresh taint.
	flat := newItem()
	for _, av := range argvals {
		flat.merge(av.flatten(), false)
	}
	res := make([]value, nResults)
	pass := value{"": flat}
	for j := range res {
		res[j] = pass
	}
	return res, grew
}

// builtin models the handful of builtins that move data.
func (st *fnState) builtin(name string, call *ast.CallExpr) ([]value, bool) {
	grew := false
	union := func(strip bool, args ...ast.Expr) value {
		out := value{}
		it := out.at("")
		for _, a := range args {
			v, b := st.evalGrow(a)
			grew = grew || b
			it.merge(v.flatten(), false)
		}
		if strip {
			return stripMapOrder(out)
		}
		return out
	}
	switch name {
	case "append":
		return []value{union(false, call.Args...)}, grew
	case "copy":
		if len(call.Args) == 2 {
			src, b := st.evalGrow(call.Args[1])
			grew = grew || b
			if obj, field, ok := st.rootOf(call.Args[0]); ok {
				grew = st.mergeObj(obj, field, src, call.Pos(), true) || grew
			}
		}
		return []value{{}}, grew
	case "min", "max":
		// Order-independent reductions: a map-range fold through min/max
		// yields the same result in any order.
		return []value{union(true, call.Args...)}, grew
	case "len", "cap", "delete", "clear", "close", "make", "new",
		"panic", "recover", "print", "println":
		for _, a := range call.Args {
			_, b := st.evalGrow(a)
			grew = grew || b
		}
		return []value{{}}, grew
	}
	return []value{union(false, call.Args...)}, grew
}

// addParamSink records that parameter p reaches ref.
func (st *fnState) addParamSink(p pref, ref SinkRef) bool {
	m := st.sum.ParamSinks[p.index]
	if m[p.field] == nil {
		m[p.field] = map[token.Pos]SinkRef{}
	}
	if _, ok := m[p.field][ref.Pos]; ok {
		return false
	}
	m[p.field][ref.Pos] = ref
	return true
}

// compose applies a callee's summary at a call site: result taints flow
// out, parameter mutations flow into argument roots, and the callee's
// reachable sinks fire for tainted arguments (emitting findings) or chain
// into this function's own ParamSinks for parameter-referencing arguments.
// recvOffset is 1 when argvals[0] is a method receiver.
func (st *fnState) compose(callee *Func, argvals []value, call *ast.CallExpr, recvOffset int) ([]value, bool) {
	grew := false
	g := func(b bool) {
		if b {
			grew = true
		}
	}
	sum := st.e.states[callee.ID].sum
	nP := len(callee.Params)

	// Callee parameter index → argument value / expression. The callee's
	// receiver (if any) is Params[0], and argvals holds the receiver first
	// for method calls — for method-expression calls T.M(recv, args...) the
	// receiver arrives positionally — so the index mapping is the identity
	// in every case. Variadic tails fold into the last parameter.
	argFor := func(i int) value {
		if i < 0 || i >= len(argvals) {
			return value{}
		}
		return argvals[i]
	}
	paramArg := func(q int) value {
		if callee.Sig.Variadic() && q == nP-1 {
			out := value{}
			it := out.at("")
			for i := q; i < len(argvals); i++ {
				it.merge(argFor(i).flatten(), false)
			}
			return out
		}
		return argFor(q)
	}
	paramExpr := func(q int) ast.Expr {
		if recvOffset == 1 {
			if q == 0 {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					return sel.X
				}
				return nil
			}
			q--
		}
		if q >= 0 && q < len(call.Args) {
			return call.Args[q]
		}
		return nil
	}

	// Sinks reachable from callee parameters.
	for q := 0; q < nP; q++ {
		fields := sum.ParamSinks[q]
		if len(fields) == 0 {
			continue
		}
		av := paramArg(q)
		for fq, refs := range fields {
			var it *item
			if fq == "" {
				it = av.flatten()
			} else {
				it = av.readField(fq).flatten()
			}
			if it.empty() {
				continue
			}
			for _, ref := range refs {
				for t := range it.taints {
					st.e.addFinding(Finding{
						Taint: t, SinkDesc: ref.Desc, SinkPos: ref.Pos,
						Path: ref.Path, SameRange: st.inOwnRange(t),
					})
					g(true)
				}
				for p := range it.prefs {
					chained := SinkRef{
						Desc: ref.Desc, Pos: ref.Pos,
						Path: append([]FuncID{st.f.ID}, ref.Path...),
					}
					g(st.addParamSink(p, chained))
				}
			}
		}
	}

	// Parameter mutations flow back into argument roots: the callee wrote
	// taints into param q's field — apply them to the argument's object
	// and, when the argument aliases one of our own reference parameters,
	// escalate into our own summary.
	applyMutation := func(q int, field string, taints map[Taint]bool) {
		it := newItem()
		for t := range taints {
			it.taints[t] = true
		}
		if argExpr := paramExpr(q); argExpr != nil {
			if obj, af, ok := st.rootOf(argExpr); ok {
				dstField := field
				if af != "" {
					dstField = af
				}
				g(st.mergeObj(obj, dstField, value{"": it}, call.Pos(), true))
			}
		}
		av := paramArg(q)
		if whole := av[""]; whole != nil {
			for p := range whole.prefs {
				if p.field != "" || !referenceLike(st.f.Params, p.index) {
					continue
				}
				m := st.sum.ParamTaints[p.index]
				if m[field] == nil {
					m[field] = map[Taint]bool{}
				}
				for t := range taints {
					if !m[field][t] {
						m[field][t] = true
						g(true)
					}
				}
			}
		}
	}
	for q := 0; q < nP; q++ {
		for field, taints := range sum.ParamTaints[q] {
			applyMutation(q, field, taints)
		}
		// Param→param edges move this call site's argument taint into the
		// destination argument (and chain symbolically for our params).
		for to := range sum.ParamToParam[q] {
			src := paramArg(q).flatten()
			if len(src.taints) > 0 {
				applyMutation(to, "", src.taints)
			}
			av := paramArg(to)
			if whole := av[""]; whole != nil {
				for p := range whole.prefs {
					if p.field != "" || !referenceLike(st.f.Params, p.index) {
						continue
					}
					for sp := range src.prefs {
						if !st.sum.ParamToParam[sp.index][p.index] {
							st.sum.ParamToParam[sp.index][p.index] = true
							g(true)
						}
					}
				}
			}
		}
	}

	// Results: concrete per-field taints plus coarse param→result flow.
	nR := len(callee.Results)
	if nR == 0 {
		nR = 1
	}
	res := make([]value, nR)
	for j := range res {
		res[j] = value{}
	}
	for j := 0; j < len(sum.Results) && j < nR; j++ {
		for f, ts := range sum.Results[j] {
			it := res[j].at(f)
			for t := range ts {
				it.taints[t] = true
			}
		}
	}
	for q := 0; q < nP; q++ {
		if !sum.ParamToResult[q] {
			continue
		}
		flat := paramArg(q).flatten()
		if flat.empty() {
			continue
		}
		for j := range res {
			res[j].at("").merge(flat, false)
		}
	}
	return res, grew
}
