// Package dataflow is the summary-based interprocedural analysis engine
// under the module-wide nglint analyzers (detflow, parity, errflow). It
// generalizes the shape locksafe pioneered — per-function facts propagated
// to a fixpoint — across packages: a Program indexes every function
// declaration in a load, resolves static call edges, and the taint engine
// (taint.go) computes per-function summaries (result taints, pointer-param
// mutations, param→result/param→param transfer, sink reachability with call
// paths) bottom-up with fixpoint iteration for recursion.
//
// Functions are keyed by FuncID strings ("pkgpath.Name" /
// "pkgpath.(Recv).Name") rather than types.Object identity: the loader
// deliberately keeps the first types.Package for importers while a full
// analysis load builds a fresh one, so the same declaration is represented
// by two distinct objects depending on which side of a package boundary it
// is observed from. String identity survives that split.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"bitcoinng/internal/lint/astutil"
	"bitcoinng/internal/lint/load"
)

// FuncID names a function declaration module-wide: "pkgpath.Name" for
// package functions, "pkgpath.(Recv).Name" for methods.
type FuncID string

// Func is one function declaration with its analysis context.
type Func struct {
	ID   FuncID
	Pkg  *load.Package
	Decl *ast.FuncDecl
	Sig  *types.Signature
	// Params lists the receiver (if any) followed by the declared
	// parameters, in the package's own type universe. Summary param
	// indices refer into this slice.
	Params []*types.Var
	// Results lists the declared result variables (named or not).
	Results []*types.Var
}

// Exported reports whether the function (and, for methods, its receiver
// type) is exported — i.e. whether its results are reachable from outside
// the package without going through another declaration.
func (f *Func) Exported() bool {
	if !f.Decl.Name.IsExported() {
		return false
	}
	if r := f.Sig.Recv(); r != nil {
		if n := astutil.Named(r.Type()); n != nil {
			return n.Obj().Exported()
		}
	}
	return true
}

// Program is a module-wide function index over one load.
type Program struct {
	Fset  *token.FileSet
	Pkgs  []*load.Package
	Funcs map[FuncID]*Func
	// Order holds every Func sorted by package path then declaration
	// position: fixpoint iteration and report emission walk this slice so
	// results are deterministic (the suite holds itself to the maporder
	// rule).
	Order []*Func
}

// NewProgram indexes every function declaration in pkgs.
func NewProgram(fset *token.FileSet, pkgs []*load.Package) *Program {
	p := &Program{Fset: fset, Pkgs: pkgs, Funcs: map[FuncID]*Func{}}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				sig := obj.Type().(*types.Signature)
				f := &Func{
					ID:   IDOf(obj),
					Pkg:  pkg,
					Decl: fd,
					Sig:  sig,
				}
				if r := sig.Recv(); r != nil {
					f.Params = append(f.Params, r)
				}
				for i := 0; i < sig.Params().Len(); i++ {
					f.Params = append(f.Params, sig.Params().At(i))
				}
				for i := 0; i < sig.Results().Len(); i++ {
					f.Results = append(f.Results, sig.Results().At(i))
				}
				p.Funcs[f.ID] = f
				p.Order = append(p.Order, f)
			}
		}
	}
	// pkgs arrive sorted by path and decls in file/position order, so
	// Order is already deterministic; no extra sort needed.
	return p
}

// IDOf derives the module-wide identity of a *types.Func.
func IDOf(fn *types.Func) FuncID {
	pkg := "builtin"
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		if n := astutil.Named(sig.Recv().Type()); n != nil {
			return FuncID(pkg + ".(" + n.Obj().Name() + ")." + fn.Name())
		}
		// Interface receiver or unnamed type: produce an ID that will not
		// match any declaration, so calls through it stay "unknown".
		return FuncID(pkg + ".(?)." + fn.Name())
	}
	return FuncID(pkg + "." + fn.Name())
}

// StaticCallee resolves the *types.Func a call statically invokes: a named
// function, a method on a concrete receiver, or an interface method (which
// NewProgram will not have indexed — such calls are treated as unknown).
// Returns nil for calls through function values, builtins, and conversions.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if s, ok := info.Selections[fun]; ok && s.Kind() == types.MethodVal {
			fn, _ := s.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// Callee resolves call to an indexed module function, or nil.
func (p *Program) Callee(info *types.Info, call *ast.CallExpr) *Func {
	fn := StaticCallee(info, call)
	if fn == nil {
		return nil
	}
	return p.Funcs[IDOf(fn)]
}
