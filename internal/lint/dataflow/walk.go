package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the intraprocedural half of the engine: an abstract
// interpreter over one function body. Statements are walked in source
// order; every contained expression is evaluated, so taint introduced by
// sources, returned by callee summaries, or seeded on map-range variables
// chains through locals into returns, parameter mutations, and sinks.
// Everything is monotone: values and summaries only grow, and the
// sanitizer filter is applied at insertion time from a pre-scanned kill
// set, so the local and global fixpoints both terminate.

// walkStmt processes one statement, returning whether any state grew.
func (st *fnState) walkStmt(s ast.Stmt) bool {
	grew := false
	g := func(b bool) {
		if b {
			grew = true
		}
	}
	switch v := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, s2 := range v.List {
			g(st.walkStmt(s2))
		}
	case *ast.ExprStmt:
		_, b := st.evalGrow(v.X)
		g(b)
	case *ast.AssignStmt:
		g(st.assign(v))
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Values) == 1 && len(vs.Names) > 1 {
					vals, b := st.evalMultiGrow(vs.Values[0], len(vs.Names))
					g(b)
					for i, name := range vs.Names {
						g(st.mergeObj(objOf(st.f.Pkg.Info, name), "", vals[i], name.Pos(), false))
					}
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						val, b := st.evalGrow(vs.Values[i])
						g(b)
						g(st.mergeObj(objOf(st.f.Pkg.Info, name), "", val, name.Pos(), false))
					}
				}
			}
		}
	case *ast.ReturnStmt:
		g(st.ret(v))
	case *ast.IfStmt:
		g(st.walkStmt(v.Init))
		_, b := st.evalGrow(v.Cond)
		g(b)
		g(st.walkStmt(v.Body))
		g(st.walkStmt(v.Else))
	case *ast.ForStmt:
		g(st.walkStmt(v.Init))
		if v.Cond != nil {
			_, b := st.evalGrow(v.Cond)
			g(b)
		}
		g(st.walkStmt(v.Post))
		g(st.walkStmt(v.Body))
	case *ast.RangeStmt:
		g(st.rangeStmt(v))
	case *ast.SwitchStmt:
		g(st.walkStmt(v.Init))
		if v.Tag != nil {
			_, b := st.evalGrow(v.Tag)
			g(b)
		}
		g(st.walkStmt(v.Body))
	case *ast.TypeSwitchStmt:
		g(st.walkStmt(v.Init))
		g(st.typeSwitch(v))
	case *ast.SelectStmt:
		g(st.walkStmt(v.Body))
	case *ast.CaseClause:
		for _, e := range v.List {
			_, b := st.evalGrow(e)
			g(b)
		}
		for _, s2 := range v.Body {
			g(st.walkStmt(s2))
		}
	case *ast.CommClause:
		g(st.walkStmt(v.Comm))
		for _, s2 := range v.Body {
			g(st.walkStmt(s2))
		}
	case *ast.SendStmt:
		_, b1 := st.evalGrow(v.Chan)
		_, b2 := st.evalGrow(v.Value)
		g(b1)
		g(b2)
	case *ast.IncDecStmt:
		_, b := st.evalGrow(v.X)
		g(b)
	case *ast.GoStmt:
		_, b := st.evalGrow(v.Call)
		g(b)
	case *ast.DeferStmt:
		_, b := st.evalGrow(v.Call)
		g(b)
	case *ast.LabeledStmt:
		g(st.walkStmt(v.Stmt))
	}
	return grew
}

// assign handles = / := / op= and tuple forms.
func (st *fnState) assign(a *ast.AssignStmt) bool {
	grew := false
	g := func(b bool) {
		if b {
			grew = true
		}
	}
	info := st.f.Pkg.Info

	// Compound assignment: x op= y. Commutative numeric/bitwise folds over
	// a map range are order-independent (sums, counters, masks), so
	// MapOrder taint is dropped from the folded-in value; string
	// concatenation is order-dependent and keeps it.
	if a.Tok != token.ASSIGN && a.Tok != token.DEFINE {
		rhs, b := st.evalGrow(a.Rhs[0])
		g(b)
		if st.commutativeFold(a) {
			rhs = stripMapOrder(rhs)
		}
		g(st.mergeLHS(a.Lhs[0], rhs, a.Pos()))
		return grew
	}

	// Tuple assignment from one multi-value expression.
	if len(a.Rhs) == 1 && len(a.Lhs) > 1 {
		vals, b := st.evalMultiGrow(a.Rhs[0], len(a.Lhs))
		g(b)
		for i, lhs := range a.Lhs {
			g(st.mergeLHS(lhs, vals[i], a.Pos()))
		}
		return grew
	}

	for i, lhs := range a.Lhs {
		if i >= len(a.Rhs) {
			break
		}
		rhs, b := st.evalGrow(a.Rhs[i])
		g(b)
		// Storing under the range's own key variable (out[k] = ... inside
		// `for k, v := range m`) launders that range's order taint: map keys
		// are unique, so each slot is written exactly once regardless of
		// iteration order. Only the owning range's taint is stripped —
		// content tainted by a different (e.g. nested) map range still
		// races: its last iteration wins the slot.
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			if id, ok := ix.Index.(*ast.Ident); ok {
				if obj := objOf(info, id); obj != nil {
					for _, k := range st.rangeKeys {
						if k.obj == obj {
							rhs = stripMapOrderAt(rhs, k.pos)
						}
					}
				}
			}
		}
		g(st.mergeLHS(lhs, rhs, a.Pos()))
	}
	return grew
}

// commutativeFold reports whether a compound assignment is an
// order-independent reduction (+= on numerics, |= &= ^= &^=, *=).
func (st *fnState) commutativeFold(a *ast.AssignStmt) bool {
	switch a.Tok {
	case token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.AND_NOT_ASSIGN, token.MUL_ASSIGN:
		return true
	case token.ADD_ASSIGN:
		if t := st.f.Pkg.Info.TypeOf(a.Lhs[0]); t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString == 0 {
				return true
			}
		}
	}
	return false
}

func stripMapOrder(v value) value {
	out := value{}
	for f, it := range v {
		dst := out.at(f)
		for t := range it.taints {
			if t.Kind != KindMapOrder {
				dst.taints[t] = true
			}
		}
		for p := range it.prefs {
			dst.prefs[p] = true
		}
	}
	return out
}

// stripMapOrderAt removes only the MapOrder taint introduced at pos (one
// specific range statement), leaving taints from other ranges intact.
func stripMapOrderAt(v value, pos token.Pos) value {
	out := value{}
	for f, it := range v {
		dst := out.at(f)
		for t := range it.taints {
			if t.Kind == KindMapOrder && t.Pos == pos {
				continue
			}
			dst.taints[t] = true
		}
		for p := range it.prefs {
			dst.prefs[p] = true
		}
	}
	return out
}

// rangeKey pairs a map range's key variable with the range position.
type rangeKey struct {
	obj types.Object
	pos token.Pos
}

// mergeLHS merges v into the lvalue target. Plain identifiers are rebinds;
// anything deeper (selector, index, deref) is a mutation of the root
// object, which escapes if the root aliases a reference parameter.
func (st *fnState) mergeLHS(lhs ast.Expr, v value, pos token.Pos) bool {
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return false
		}
		return st.mergeObj(objOf(st.f.Pkg.Info, id), "", v, pos, false)
	}
	obj, field, ok := st.rootOf(lhs)
	if !ok {
		return false
	}
	return st.mergeObj(obj, field, v, pos, true)
}

// ret merges returned values into the summary's result taints and
// param→result flows.
func (st *fnState) ret(r *ast.ReturnStmt) bool {
	grew := false
	g := func(b bool) {
		if b {
			grew = true
		}
	}
	var vals []value
	if len(r.Results) == 0 {
		// Bare return: named results carry the values.
		for _, rv := range st.f.Results {
			if v, ok := st.env[rv]; ok {
				vals = append(vals, v)
			} else {
				vals = append(vals, value{})
			}
		}
	} else if len(r.Results) == 1 && len(st.f.Results) > 1 {
		vs, b := st.evalMultiGrow(r.Results[0], len(st.f.Results))
		g(b)
		vals = vs
	} else {
		for _, e := range r.Results {
			v, b := st.evalGrow(e)
			g(b)
			vals = append(vals, v)
		}
	}
	for j, v := range vals {
		if j >= len(st.sum.Results) {
			break
		}
		for f, it := range v {
			for t := range it.taints {
				m := st.sum.Results[j]
				if m[f] == nil {
					m[f] = map[Taint]bool{}
				}
				if !m[f][t] {
					m[f][t] = true
					grew = true
				}
			}
			for p := range it.prefs {
				if !st.sum.ParamToResult[p.index] {
					st.sum.ParamToResult[p.index] = true
					grew = true
				}
			}
		}
	}
	return grew
}

// rangeStmt seeds loop variables. Ranging a map taints the key and value
// with KindMapOrder (plus whatever the map's content carries); ranging
// anything else passes content through. Sinks reached inside the map-range
// body are marked SameRange so the client can defer to the syntactic
// maporder analyzer.
func (st *fnState) rangeStmt(r *ast.RangeStmt) bool {
	grew := false
	g := func(b bool) {
		if b {
			grew = true
		}
	}
	src, b := st.evalGrow(r.X)
	g(b)
	info := st.f.Pkg.Info
	isMap := false
	if t := info.TypeOf(r.X); t != nil {
		_, isMap = t.Underlying().(*types.Map)
	}
	content := value{"": src.flatten()}
	if isMap {
		t := Taint{
			Kind: KindMapOrder,
			Pos:  r.Pos(),
			What: "range over map",
			Pkg:  st.f.Pkg.Path,
		}
		content.at("").taints[t] = true
	}
	bind := func(e ast.Expr) {
		if e == nil {
			return
		}
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			g(st.mergeObj(objOf(info, id), "", content, e.Pos(), false))
		}
	}
	bind(r.Key)
	bind(r.Value)
	if isMap {
		st.ranges = append(st.ranges, r.Pos())
		if id, ok := r.Key.(*ast.Ident); ok && id.Name != "_" {
			if obj := objOf(info, id); obj != nil {
				st.rangeKeys = append(st.rangeKeys, rangeKey{obj, r.Pos()})
				defer func() { st.rangeKeys = st.rangeKeys[:len(st.rangeKeys)-1] }()
			}
		}
		defer func() { st.ranges = st.ranges[:len(st.ranges)-1] }()
	}
	g(st.walkStmt(r.Body))
	return grew
}

// typeSwitch binds the per-clause implicit variable to the switched value.
func (st *fnState) typeSwitch(v *ast.TypeSwitchStmt) bool {
	grew := false
	g := func(b bool) {
		if b {
			grew = true
		}
	}
	info := st.f.Pkg.Info
	var subject value = value{}
	switch a := v.Assign.(type) {
	case *ast.ExprStmt:
		val, b := st.evalGrow(a.X)
		g(b)
		subject = val
	case *ast.AssignStmt:
		val, b := st.evalGrow(a.Rhs[0])
		g(b)
		subject = val
	}
	for _, s := range v.Body.List {
		cc, ok := s.(*ast.CaseClause)
		if !ok {
			continue
		}
		if obj := info.Implicits[cc]; obj != nil {
			g(st.mergeObj(obj, "", subject, cc.Pos(), false))
		}
		for _, s2 := range cc.Body {
			g(st.walkStmt(s2))
		}
	}
	return grew
}
