package nglint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bitcoinng/internal/lint/linttest"
	"bitcoinng/internal/lint/load"
	"bitcoinng/internal/lint/nglint"
)

func runFixture(t *testing.T, name string) []nglint.Finding {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	l := load.New("bitcoinng", linttest.ModuleRoot(t))
	pkg, err := l.LoadDir(name, filepath.Join(cwd, "testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	fs, err := nglint.RunPackage(l, pkg)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestJustifiedAllowsSuppress(t *testing.T) {
	fs := runFixture(t, "allowok")
	for _, f := range fs {
		t.Errorf("unexpected finding despite justified allow: %s", f)
	}
}

func TestDefectiveAllows(t *testing.T) {
	fs := runFixture(t, "allowbad")
	var got []string
	for _, f := range fs {
		got = append(got, f.Analyzer+": "+f.Message)
	}
	joined := strings.Join(got, "\n")

	// The empty-reason annotation is itself an error...
	if !strings.Contains(joined, "without a reason") {
		t.Errorf("missing empty-reason finding in:\n%s", joined)
	}
	// ...and does NOT suppress the underlying walltime finding.
	if !strings.Contains(joined, "walltime: time.Now") {
		t.Errorf("empty-reason allow suppressed the walltime finding:\n%s", joined)
	}
	if !strings.Contains(joined, "stale //nglint:allow walltime") {
		t.Errorf("missing stale-allow finding in:\n%s", joined)
	}
	if !strings.Contains(joined, `unknown analyzer "clockskew"`) {
		t.Errorf("missing unknown-analyzer finding in:\n%s", joined)
	}
	if len(fs) != 4 {
		t.Errorf("want exactly 4 findings (walltime + 3 annotation errors), got %d:\n%s", len(fs), joined)
	}
}

// TestSuiteIsComplete pins the advertised analyzer set.
func TestSuiteIsComplete(t *testing.T) {
	want := []string{"walltime", "globalrand", "maporder", "locksafe", "wiresym"}
	wantModule := []string{"detflow", "parity", "errflow"}
	if len(nglint.Analyzers) != len(want) {
		t.Fatalf("per-package suite has %d analyzers, want %d", len(nglint.Analyzers), len(want))
	}
	for i, a := range nglint.Analyzers {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc", a.Name)
		}
	}
	if len(nglint.ModuleAnalyzers) != len(wantModule) {
		t.Fatalf("module suite has %d analyzers, want %d", len(nglint.ModuleAnalyzers), len(wantModule))
	}
	for i, a := range nglint.ModuleAnalyzers {
		if a.Name != wantModule[i] {
			t.Errorf("module analyzer %d = %q, want %q", i, a.Name, wantModule[i])
		}
		if a.Doc == "" {
			t.Errorf("module analyzer %q has no doc", a.Name)
		}
	}
	doc := nglint.Doc()
	for _, w := range append(append([]string{}, want...), wantModule...) {
		if !strings.Contains(doc, w) {
			t.Errorf("Doc() missing %q", w)
		}
	}
}
