// Package allowok: every violation carries a justified annotation, so the
// runner must report nothing.
package allowok

import (
	"math/rand"
	"time"
)

// trailing form: comment on the violating line.
func uptime(start time.Time) time.Duration {
	return time.Since(start) //nglint:allow walltime operator-facing timing, never feeds a report
}

// standalone form: comment on the line above the violating line.
func jitter() int {
	//nglint:allow globalrand fixture exercising the standalone annotation form
	return rand.Intn(10)
}
