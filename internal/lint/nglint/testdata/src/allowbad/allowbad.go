// Package allowbad: every annotation here is defective — empty reason,
// stale target, unknown analyzer — and the underlying violations must
// still be reported.
package allowbad

import "time"

// empty reason: the walltime finding survives AND the annotation itself is
// a finding.
func emptyReason() time.Time {
	return time.Now() //nglint:allow walltime
}

// stale: nothing to suppress on the target line.
func stale() int {
	//nglint:allow walltime this line has no wall-clock read
	return 42
}

// unknown analyzer name.
func unknown() int {
	//nglint:allow clockskew not a real analyzer
	return 7
}
