// Package nglint orchestrates the determinism & protocol-safety analyzer
// suite: it loads module packages, runs every analyzer, and applies the
// //nglint:allow annotation convention.
//
// # Annotation convention
//
// An intentional violation carries a justification comment:
//
//	startWall := time.Now() //nglint:allow walltime operator-facing stderr timing
//
// or, on its own line, immediately above the site:
//
//	//nglint:allow walltime operator-facing stderr timing
//	startWall := time.Now()
//
// The annotation names the analyzer it silences and must carry a non-empty
// reason; an empty reason is itself a finding, as is an annotation that
// silences nothing (stale allows rot into lies) or names an unknown
// analyzer. One annotation covers one source line for one analyzer.
package nglint

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"

	"bitcoinng/internal/lint/analysis"
	"bitcoinng/internal/lint/detflow"
	"bitcoinng/internal/lint/errflow"
	"bitcoinng/internal/lint/globalrand"
	"bitcoinng/internal/lint/load"
	"bitcoinng/internal/lint/locksafe"
	"bitcoinng/internal/lint/maporder"
	"bitcoinng/internal/lint/parity"
	"bitcoinng/internal/lint/walltime"
	"bitcoinng/internal/lint/wiresym"
)

// Analyzers is the per-package suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	walltime.Analyzer,
	globalrand.Analyzer,
	maporder.Analyzer,
	locksafe.Analyzer,
	wiresym.Analyzer,
}

// ModuleAnalyzers is the whole-module suite: interprocedural dataflow and
// cross-package parity checks that need every package in one pass. They run
// after the per-package suite over the same load and share the //nglint:allow
// convention — an allow on the reported line suppresses the finding no matter
// which package the flow ends in.
var ModuleAnalyzers = []*analysis.ModuleAnalyzer{
	detflow.Analyzer,
	parity.Analyzer,
	errflow.Analyzer,
}

// Finding is one reportable lint result after allow filtering.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Run lints every package of the module rooted at moduleDir — the
// per-package suite, then the module suite — and returns the findings
// sorted by position.
func Run(modulePath, moduleDir string) ([]Finding, error) {
	l := load.New(modulePath, moduleDir)
	paths, err := l.ModulePackages()
	if err != nil {
		return nil, err
	}
	var pkgs []*load.Package
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return RunModule(l, pkgs)
}

// RunModule applies both suites to the loaded packages with allow filtering
// across the whole set: a module analyzer's finding can land in any package,
// so suppressions and staleness are resolved against every file at once.
func RunModule(l *load.Loader, pkgs []*load.Package) ([]Finding, error) {
	type rawDiag struct {
		analyzer string
		d        analysis.Diagnostic
	}
	var diags []rawDiag
	var allows []*allow
	for _, pkg := range pkgs {
		for _, a := range Analyzers {
			pass := &analysis.Pass{
				Analyzer: a,
				Fset:     l.Fset(),
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				PkgPath:  pkg.Path,
				Info:     pkg.Info,
				Report: func(d analysis.Diagnostic) {
					diags = append(diags, rawDiag{analyzer: a.Name, d: d})
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		allows = append(allows, collectAllows(l.Fset(), pkg)...)
	}
	for _, a := range ModuleAnalyzers {
		pass := &analysis.ModulePass{
			Analyzer: a,
			Fset:     l.Fset(),
			Pkgs:     pkgs,
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, rawDiag{analyzer: a.Name, d: d})
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}

	var out []Finding
	for _, rd := range diags {
		pos := l.Fset().Position(rd.d.Pos)
		if a := matchAllow(allows, rd.analyzer, pos); a != nil {
			a.used = true
			if a.reason != "" {
				continue // justified: suppressed
			}
			// Empty reason: the allow is invalid, keep the finding (the
			// empty-reason error is emitted below).
		}
		out = append(out, Finding{Pos: pos, Analyzer: rd.analyzer, Message: rd.d.Message})
	}
	out = append(out, allowHygiene(allows)...)
	sortFindings(out)
	return out, nil
}

// allowHygiene turns defective annotations into findings: unknown analyzer
// names, missing reasons, and allows that no longer suppress anything.
func allowHygiene(allows []*allow) []Finding {
	var out []Finding
	for _, a := range allows {
		switch {
		case !a.known:
			out = append(out, Finding{Pos: a.pos, Analyzer: "nglint",
				Message: fmt.Sprintf("//nglint:allow names unknown analyzer %q", a.rule)})
		case a.reason == "":
			out = append(out, Finding{Pos: a.pos, Analyzer: "nglint",
				Message: fmt.Sprintf("//nglint:allow %s without a reason: every suppression must say why the wall-clock/rand/order exception is sound", a.rule)})
		case !a.used:
			out = append(out, Finding{Pos: a.pos, Analyzer: "nglint",
				Message: fmt.Sprintf("stale //nglint:allow %s: no %s finding on the annotated line — delete it so suppressions stay honest", a.rule, a.rule)})
		}
	}
	return out
}

// RunPackage applies the per-package suite to one loaded package, including
// allow filtering. Module analyzers (detflow, parity, errflow) need the
// whole load at once and only run through Run/RunModule.
func RunPackage(l *load.Loader, pkg *load.Package) ([]Finding, error) {
	type rawDiag struct {
		analyzer string
		d        analysis.Diagnostic
	}
	var diags []rawDiag
	for _, a := range Analyzers {
		pass := &analysis.Pass{
			Analyzer: a,
			Fset:     l.Fset(),
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			PkgPath:  pkg.Path,
			Info:     pkg.Info,
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, rawDiag{analyzer: a.Name, d: d})
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
		}
	}

	allows := collectAllows(l.Fset(), pkg)
	var out []Finding
	for _, rd := range diags {
		pos := l.Fset().Position(rd.d.Pos)
		if a := matchAllow(allows, rd.analyzer, pos); a != nil {
			a.used = true
			if a.reason != "" {
				continue // justified: suppressed
			}
			// Empty reason: the allow is invalid, keep the finding (the
			// empty-reason error is emitted below).
		}
		out = append(out, Finding{Pos: pos, Analyzer: rd.analyzer, Message: rd.d.Message})
	}
	out = append(out, allowHygiene(allows)...)
	sortFindings(out)
	return out, nil
}

type allow struct {
	rule   string
	reason string
	known  bool
	pos    token.Position // of the comment
	file   string
	target int // source line the allow covers
	used   bool
}

var allowRe = regexp.MustCompile(`^//nglint:allow\s+(\S+)[ \t]*(.*)$`)

// collectAllows parses //nglint:allow comments. A trailing comment (code
// before it on the line) covers its own line; a standalone comment covers
// the next line.
func collectAllows(fset *token.FileSet, pkg *load.Package) []*allow {
	known := map[string]bool{}
	for _, a := range Analyzers {
		known[a.Name] = true
	}
	for _, a := range ModuleAnalyzers {
		known[a.Name] = true
	}
	var out []*allow
	for i, f := range pkg.Files {
		src := pkg.Src[pkg.Filenames[i]]
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				target := pos.Line
				if standalone(src, pos) {
					target = pos.Line + 1
				}
				out = append(out, &allow{
					rule:   m[1],
					reason: strings.TrimSpace(m[2]),
					known:  known[m[1]],
					pos:    pos,
					file:   pos.Filename,
					target: target,
				})
			}
		}
	}
	return out
}

// standalone reports whether only whitespace precedes the comment on its
// line.
func standalone(src []byte, pos token.Position) bool {
	off := pos.Offset
	for off > 0 && src[off-1] != '\n' {
		ch := src[off-1]
		if ch != ' ' && ch != '\t' {
			return false
		}
		off--
	}
	return true
}

func matchAllow(allows []*allow, analyzer string, pos token.Position) *allow {
	for _, a := range allows {
		if a.known && a.rule == analyzer && a.file == pos.Filename && a.target == pos.Line {
			return a
		}
	}
	return nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Doc returns the -list text.
func Doc() string {
	var b strings.Builder
	for _, a := range Analyzers {
		fmt.Fprintf(&b, "%-11s %s\n", a.Name, a.Doc)
	}
	for _, a := range ModuleAnalyzers {
		fmt.Fprintf(&b, "%-11s %s\n", a.Name, a.Doc)
	}
	return b.String()
}
