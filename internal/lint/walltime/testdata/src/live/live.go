// Package live is a walltime fixture outside the deterministic zone: wall
// clock reads are still findings, but phrased as needing an annotation.
package live

import "time"

func uptime(start time.Time) time.Duration {
	return time.Since(start) // want `reads the wall clock: annotate intentional live-harness sites`
}
