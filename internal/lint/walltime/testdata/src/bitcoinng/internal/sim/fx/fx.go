// Package fx is a walltime fixture analyzed under a deterministic-zone
// import path (bitcoinng/internal/sim/fx).
package fx

import "time"

func bad() {
	_ = time.Now()               // want `time\.Now in deterministic package`
	time.Sleep(time.Millisecond) // want `time\.Sleep in deterministic package`
	<-time.After(time.Second)    // want `time\.After in deterministic package`
	_ = time.Since(time.Time{})  // want `time\.Since in deterministic package`
	t := time.NewTicker(1)       // want `time\.NewTicker in deterministic package`
	t.Stop()
}

// ok: pure time.Duration / time.Time arithmetic never reads the clock.
func ok(d time.Duration) time.Duration {
	return 3 * d / time.Millisecond * time.Millisecond
}

// clock has a method named Now: method calls must not be confused with the
// time package's functions.
type clock struct{ now int64 }

func (c clock) Now() int64 { return c.now }

func okMethod(c clock) int64 { return c.Now() }

// shadow: a local identifier named time is not the time package.
func okShadow() int {
	time := struct{ Now func() int }{Now: func() int { return 7 }}
	return time.Now()
}
