package walltime_test

import (
	"testing"

	"bitcoinng/internal/lint/linttest"
	"bitcoinng/internal/lint/walltime"
)

func TestDeterministicZone(t *testing.T) {
	linttest.Run(t, walltime.Analyzer, "bitcoinng/internal/sim/fx")
}

func TestLiveZone(t *testing.T) {
	linttest.Run(t, walltime.Analyzer, "live")
}

func TestDeterministicPrefixes(t *testing.T) {
	for _, p := range []string{
		"bitcoinng/internal/sim",
		"bitcoinng/internal/simnet",
		"bitcoinng/internal/chain",
		"bitcoinng/internal/experiment",
		"bitcoinng/internal/load",
		"bitcoinng/internal/wire",
		"bitcoinng/internal/chaos",
	} {
		if !walltime.Deterministic(p) {
			t.Errorf("Deterministic(%q) = false, want true", p)
		}
	}
	for _, p := range []string{
		"bitcoinng/internal/p2p",    // live harness: wall clock is its job
		"bitcoinng",                 // cluster harness wraps p2p
		"bitcoinng/cmd/ngbench",     // CLI timing is operator-facing
		"bitcoinng/internal/simnetx", // prefix must match whole path segments
	} {
		if walltime.Deterministic(p) {
			t.Errorf("Deterministic(%q) = true, want false", p)
		}
	}
}
