// Package walltime forbids reading the wall clock in simulation code.
//
// Every result this reproduction reports — byte-identical reports at any
// parallelism, shared validation verdicts, seed-replayable chaos digests —
// depends on simulated time being the only time that exists inside the
// engines. One time.Now() on a hot path silently turns a deterministic run
// into a wall-clock-dependent one, and no fixed test seed is guaranteed to
// notice. The analyzer makes the rule structural: calls that read or wait on
// the wall clock are diagnostics everywhere in production code, and the few
// intentional sites (the live p2p harness's Runtime.Now, operator-facing
// stderr timing) must carry a justified //nglint:allow walltime annotation.
package walltime

import (
	"go/ast"
	"strings"

	"bitcoinng/internal/lint/analysis"
	"bitcoinng/internal/lint/astutil"
)

// banned is the set of time package functions that read or wait on the wall
// clock. Pure arithmetic on time.Duration/time.Time values is fine; only
// entry points that sample the clock (or schedule against it) are listed.
var banned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTicker": true,
	"NewTimer":  true,
}

// DeterministicPrefixes lists the package subtrees whose results must be a
// pure function of (config, seed). Wall-clock reads here are flagged as
// determinism hazards; elsewhere (live harness, CLIs, examples) they are
// still flagged, but as sites requiring an explicit justification, because
// the whole repository shares one annotation discipline.
var DeterministicPrefixes = []string{
	"bitcoinng/internal/sim",
	"bitcoinng/internal/simnet",
	"bitcoinng/internal/chain",
	"bitcoinng/internal/node",
	"bitcoinng/internal/mining",
	"bitcoinng/internal/mempool",
	"bitcoinng/internal/load",
	"bitcoinng/internal/experiment",
	"bitcoinng/internal/chaos",
	"bitcoinng/internal/invariant",
	"bitcoinng/internal/strategy",
	"bitcoinng/internal/utxo",
	"bitcoinng/internal/types",
	"bitcoinng/internal/wire",
	// Storage sits under the simulated nodes: a wall-clock read here (e.g.
	// stamping arrival times at Append instead of persisting the caller's)
	// would leak real time into replayed consensus state.
	"bitcoinng/internal/store",
	"bitcoinng/internal/blockstore",
}

// Deterministic reports whether pkgPath falls in the deterministic zone.
func Deterministic(pkgPath string) bool {
	for _, p := range DeterministicPrefixes {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// Analyzer is the walltime check.
var Analyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc: "forbids wall-clock reads (time.Now/Since/Until/Sleep/Tick/After/" +
		"AfterFunc/NewTicker/NewTimer) in production code; simulated time " +
		"from sim.Loop.Now is the only clock deterministic packages may " +
		"observe, and intentional live-harness sites need //nglint:allow " +
		"walltime <reason>",
	Run: run,
}

func run(pass *analysis.Pass) error {
	det := Deterministic(pass.PkgPath)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := astutil.PkgFuncCall(pass.Info, call)
			if !ok || pkg != "time" || !banned[name] {
				return true
			}
			if det {
				pass.Reportf(call.Pos(),
					"time.%s in deterministic package %s: simulation results must be a pure function of (config, seed); use the event loop's clock",
					name, pass.PkgPath)
			} else {
				pass.Reportf(call.Pos(),
					"time.%s reads the wall clock: annotate intentional live-harness sites with //nglint:allow walltime <reason>",
					name)
			}
			return true
		})
	}
	return nil
}
