// Package chain implements blockchain state management shared by every
// protocol in this repository: a block tree indexed by hash, pluggable fork
// choice (heaviest chain for Bitcoin and Bitcoin-NG, heaviest subtree for
// GHOST), and an active chain whose UTXO state advances and rolls back
// through reorganizations.
//
// The package is protocol-agnostic: protocol-specific validation (difficulty
// schedules, microblock signatures and spacing, coinbase economics, poison
// evidence) plugs in through the Protocol interface, and fork choice through
// the ForkChoice interface.
package chain

import (
	"fmt"
	"math/big"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
	"bitcoinng/internal/utxo"
)

// Node is a block in the tree together with its chain-cumulative metadata.
// The block body is accessed through Block(): everything fork choice,
// difficulty, and coinbase validation read per-node (hash, kind, time,
// target, weight, fees) is cached in fixed-size fields, so the body itself
// can be evicted once archived in a durable body store and transparently
// reloaded on demand — the tree's resident size then no longer grows with
// transaction volume.
type Node struct {
	// block is the body; nil when evicted (Block() reloads it from the
	// owning store's body archive).
	block types.Block
	store *Store

	// Cached header-derived fields, valid for the node's whole lifetime.
	hash   crypto.Hash
	kind   types.BlockKind
	time   int64
	target crypto.CompactTarget

	Parent *Node // nil for genesis

	// Height counts all blocks from genesis, microblocks included.
	Height uint64
	// KeyHeight counts only proof-of-work blocks (Bitcoin blocks or
	// Bitcoin-NG key blocks); it drives coinbase maturity and difficulty
	// retargeting.
	KeyHeight uint64
	// Weight is the cumulative work from genesis. Microblocks contribute
	// zero (§4.2: microblocks do not affect the weight of the chain).
	Weight *big.Int
	// KeyAncestor is the nearest ancestor (or self) that is a PoW/key
	// block; for a microblock it identifies the epoch's key block, whose
	// LeaderKey signs it.
	KeyAncestor *Node
	// ReceivedAt is the local arrival time in Unix nanoseconds (generation
	// time for self-mined blocks). It feeds the first-seen tie-break rule
	// and the §6 metrics.
	ReceivedAt int64
	// SubtreeWeight is the total work in the subtree rooted at this node,
	// itself included; GHOST's fork choice reads it (§9). It is only
	// maintained when the store's fork choice declares it needs subtree
	// weights (Store.EnableSubtreeWeights); otherwise it holds just the
	// node's own work.
	SubtreeWeight *big.Int
	// Invalid marks blocks that failed contextual validation on connect;
	// fork choice never adopts an invalid node or its descendants.
	Invalid bool

	children []*Node

	// undo is the block's recorded UTXO delta while connected (nil when
	// not on the active chain); feeTotal is the total fee the block
	// collected when it last connected (stable per block). Kept on the
	// node rather than in side maps: every connect touches them, and the
	// per-State maps they replaced were a measurable allocation source.
	undo     *utxo.Delta
	feeTotal types.Amount
}

// newNode builds a node with its header-derived caches populated.
func newNode(s *Store, b types.Block) *Node {
	return &Node{
		block:  b,
		store:  s,
		hash:   b.Hash(),
		kind:   b.Kind(),
		time:   b.Time(),
		target: BlockTarget(b),
	}
}

// DetachedNode builds a tree-less node around a block, with the cached
// header fields populated. Strategy and difficulty tests use it to assemble
// synthetic chains; production nodes are always created through NewStore or
// Insert. Callers fill Parent/KeyAncestor/heights themselves.
func DetachedNode(b types.Block) *Node { return newNode(nil, b) }

// Block returns the block body, reloading it from the attached body store
// if it was evicted. A reload failure panics: bodies are only evicted after
// the archive acknowledged them, so a miss means the durable store was
// externally truncated and the tree can no longer be served.
func (n *Node) Block() types.Block {
	if n.block == nil {
		b, err := n.store.bodies.Get(n.hash)
		if err != nil {
			panic(fmt.Sprintf("chain: reloading evicted body %s: %v", n.hash.Short(), err))
		}
		n.block = b
	}
	return n.block
}

// Hash returns the block hash.
func (n *Node) Hash() crypto.Hash { return n.hash }

// Kind returns the block kind without touching the body.
func (n *Node) Kind() types.BlockKind { return n.kind }

// Time returns the block's header timestamp without touching the body.
func (n *Node) Time() int64 { return n.time }

// Target returns the difficulty target the block committed to (zero for
// microblocks) without touching the body.
func (n *Node) Target() crypto.CompactTarget { return n.target }

// Children returns the node's children; callers must not mutate the slice.
func (n *Node) Children() []*Node { return n.children }

// IsAncestorOf reports whether n is an ancestor of (or equal to) m.
func (n *Node) IsAncestorOf(m *Node) bool {
	for m != nil && m.Height >= n.Height {
		if m == n {
			return true
		}
		m = m.Parent
	}
	return false
}

// AncestorAtHeight walks up from n to the ancestor at the given height.
func (n *Node) AncestorAtHeight(h uint64) *Node {
	for n != nil && n.Height > h {
		n = n.Parent
	}
	if n == nil || n.Height != h {
		return nil
	}
	return n
}

// BodySource serves archived block bodies back to the tree so resident
// bodies can be evicted. The file-backed chain index (internal/store) and
// the in-memory archive both satisfy it.
type BodySource interface {
	Contains(h crypto.Hash) bool
	Get(h crypto.Hash) (types.Block, error)
}

// Store is the block tree. It indexes every valid block ever seen, main
// chain or not ("Branches and blocks outside the main chain are called
// pruned", §3 — pruned blocks stay in the tree so late reorganizations can
// revive them).
type Store struct {
	genesis *Node
	nodes   map[crypto.Hash]*Node
	// bodies, when attached, allows EvictBodies to drop archived block
	// bodies from the tree; Node.Block reloads through it on demand.
	bodies BodySource
	// trackSubtree enables SubtreeWeight maintenance, which costs an
	// O(chain-length) big.Int walk per inserted PoW block. Maintenance is
	// on unless the fork choice declares it unneeded (chain.SubtreeWeighted
	// — the built-in heaviest-chain rule opts out); when off, SubtreeWeight
	// holds just the node's own work.
	trackSubtree bool
}

// NewStore creates a tree rooted at the genesis block.
func NewStore(genesis types.Block) *Store {
	s := &Store{nodes: make(map[crypto.Hash]*Node)}
	g := newNode(s, genesis)
	g.Weight = new(big.Int).Set(genesis.Work())
	g.SubtreeWeight = new(big.Int).Set(genesis.Work())
	g.KeyAncestor = g
	s.genesis = g
	s.nodes[g.hash] = g
	return s
}

// Genesis returns the root node.
func (s *Store) Genesis() *Node { return s.genesis }

// AttachBodySource wires a durable body archive, enabling EvictBodies.
func (s *Store) AttachBodySource(bs BodySource) { s.bodies = bs }

// EvictBodies drops the resident bodies of nodes at least keepDepth below
// tip whose bodies the attached archive holds, returning how many were
// dropped. The genesis body is never evicted (it predates the archive: only
// accepted blocks pass through the persistence hook). Eviction is
// semantically invisible — Node.Block reloads on demand — so it is safe to
// call at any quiescent point; without an attached body source it is a
// no-op.
func (s *Store) EvictBodies(tip *Node, keepDepth uint64) int {
	if s.bodies == nil || tip.Height < keepDepth {
		return 0
	}
	horizon := tip.Height - keepDepth
	evicted := 0
	// Map-iteration order is immaterial here: every qualifying body is
	// dropped, and Block() reloads transparently.
	for _, n := range s.nodes {
		if n.block == nil || n.Parent == nil || n.Height > horizon {
			continue
		}
		if !s.bodies.Contains(n.hash) {
			continue
		}
		n.block = nil
		evicted++
	}
	return evicted
}

// EnableSubtreeWeights turns on cumulative subtree-weight maintenance. It
// must be called before any Insert (chain.New does, when the fork choice
// needs it).
func (s *Store) EnableSubtreeWeights() {
	if len(s.nodes) > 1 {
		panic("chain: EnableSubtreeWeights after blocks were inserted")
	}
	s.trackSubtree = true
}

// Get returns the node for the hash, if the block is known.
func (s *Store) Get(h crypto.Hash) (*Node, bool) {
	n, ok := s.nodes[h]
	return n, ok
}

// Len returns the number of blocks in the tree.
func (s *Store) Len() int { return len(s.nodes) }

// Insert links a block under its parent and computes cumulative metadata.
// The parent must already be present and the block must not be. Returns the
// new node.
func (s *Store) Insert(b types.Block, receivedAt int64) *Node {
	parent := s.nodes[b.PrevHash()]
	if parent == nil {
		panic("chain: Insert called without parent present")
	}
	if _, dup := s.nodes[b.Hash()]; dup {
		panic("chain: Insert called with duplicate block")
	}
	work := b.Work()
	n := newNode(s, b)
	n.Parent = parent
	n.Height = parent.Height + 1
	n.KeyHeight = parent.KeyHeight
	n.ReceivedAt = receivedAt
	if work.Sign() == 0 {
		// Zero-work blocks (microblocks) share the parent's cumulative
		// weight; Weight values are read-only after creation.
		n.Weight = parent.Weight
	} else {
		n.Weight = new(big.Int).Add(parent.Weight, work)
	}
	if s.trackSubtree {
		// Own big.Int: descendants mutate it during propagation.
		n.SubtreeWeight = new(big.Int).Set(work)
	} else {
		// Untracked stores never mutate SubtreeWeight, so aliasing the
		// (possibly shared) work value is safe.
		n.SubtreeWeight = work
	}
	if n.kind == types.KindMicro {
		n.KeyAncestor = parent.KeyAncestor
	} else {
		n.KeyHeight++
		n.KeyAncestor = n
	}
	parent.children = append(parent.children, n)
	s.nodes[n.hash] = n
	// Propagate subtree weight to ancestors for GHOST.
	if s.trackSubtree && work.Sign() > 0 {
		for a := parent; a != nil; a = a.Parent {
			a.SubtreeWeight.Add(a.SubtreeWeight, work)
		}
	}
	return n
}

// CommonAncestor returns the deepest node on both a's and b's chains.
func CommonAncestor(a, b *Node) *Node {
	for a.Height > b.Height {
		a = a.Parent
	}
	for b.Height > a.Height {
		b = b.Parent
	}
	for a != b {
		a = a.Parent
		b = b.Parent
	}
	return a
}

// PathBetween returns the blocks strictly after ancestor up to and including
// tip, oldest first. ancestor must be an ancestor of tip.
func PathBetween(ancestor, tip *Node) []*Node {
	if ancestor == tip {
		return nil
	}
	path := make([]*Node, 0, tip.Height-ancestor.Height)
	for n := tip; n != ancestor; n = n.Parent {
		path = append(path, n)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// EpochFees sums the recorded fees of the microblocks in the epoch that ends
// just above keyParent's chain: walking up from `from` (inclusive) until the
// nearest PoW/key block (exclusive). Used by Bitcoin-NG coinbase validation
// (§4.4) — the fees of the previous leader's microblocks fund the 40/60
// split in the next key block's coinbase.
func EpochFees(from *Node) types.Amount {
	var total types.Amount
	for n := from; n != nil && n.Kind() == types.KindMicro; n = n.Parent {
		total += n.feeTotal
	}
	return total
}
