// Package chain implements blockchain state management shared by every
// protocol in this repository: a block tree indexed by hash, pluggable fork
// choice (heaviest chain for Bitcoin and Bitcoin-NG, heaviest subtree for
// GHOST), and an active chain whose UTXO state advances and rolls back
// through reorganizations.
//
// The package is protocol-agnostic: protocol-specific validation (difficulty
// schedules, microblock signatures and spacing, coinbase economics, poison
// evidence) plugs in through the Protocol interface, and fork choice through
// the ForkChoice interface.
package chain

import (
	"math/big"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
	"bitcoinng/internal/utxo"
)

// Node is a block in the tree together with its chain-cumulative metadata.
type Node struct {
	Block  types.Block
	Parent *Node // nil for genesis

	// Height counts all blocks from genesis, microblocks included.
	Height uint64
	// KeyHeight counts only proof-of-work blocks (Bitcoin blocks or
	// Bitcoin-NG key blocks); it drives coinbase maturity and difficulty
	// retargeting.
	KeyHeight uint64
	// Weight is the cumulative work from genesis. Microblocks contribute
	// zero (§4.2: microblocks do not affect the weight of the chain).
	Weight *big.Int
	// KeyAncestor is the nearest ancestor (or self) that is a PoW/key
	// block; for a microblock it identifies the epoch's key block, whose
	// LeaderKey signs it.
	KeyAncestor *Node
	// ReceivedAt is the local arrival time in Unix nanoseconds (generation
	// time for self-mined blocks). It feeds the first-seen tie-break rule
	// and the §6 metrics.
	ReceivedAt int64
	// SubtreeWeight is the total work in the subtree rooted at this node,
	// itself included; GHOST's fork choice reads it (§9). It is only
	// maintained when the store's fork choice declares it needs subtree
	// weights (Store.EnableSubtreeWeights); otherwise it holds just the
	// node's own work.
	SubtreeWeight *big.Int
	// Invalid marks blocks that failed contextual validation on connect;
	// fork choice never adopts an invalid node or its descendants.
	Invalid bool

	children []*Node

	// undo is the block's recorded UTXO delta while connected (nil when
	// not on the active chain); feeTotal is the total fee the block
	// collected when it last connected (stable per block). Kept on the
	// node rather than in side maps: every connect touches them, and the
	// per-State maps they replaced were a measurable allocation source.
	undo     *utxo.Delta
	feeTotal types.Amount
}

// Hash returns the block hash.
func (n *Node) Hash() crypto.Hash { return n.Block.Hash() }

// Children returns the node's children; callers must not mutate the slice.
func (n *Node) Children() []*Node { return n.children }

// IsAncestorOf reports whether n is an ancestor of (or equal to) m.
func (n *Node) IsAncestorOf(m *Node) bool {
	for m != nil && m.Height >= n.Height {
		if m == n {
			return true
		}
		m = m.Parent
	}
	return false
}

// AncestorAtHeight walks up from n to the ancestor at the given height.
func (n *Node) AncestorAtHeight(h uint64) *Node {
	for n != nil && n.Height > h {
		n = n.Parent
	}
	if n == nil || n.Height != h {
		return nil
	}
	return n
}

// Store is the block tree. It indexes every valid block ever seen, main
// chain or not ("Branches and blocks outside the main chain are called
// pruned", §3 — pruned blocks stay in the tree so late reorganizations can
// revive them).
type Store struct {
	genesis *Node
	nodes   map[crypto.Hash]*Node
	// trackSubtree enables SubtreeWeight maintenance, which costs an
	// O(chain-length) big.Int walk per inserted PoW block. Maintenance is
	// on unless the fork choice declares it unneeded (chain.SubtreeWeighted
	// — the built-in heaviest-chain rule opts out); when off, SubtreeWeight
	// holds just the node's own work.
	trackSubtree bool
}

// NewStore creates a tree rooted at the genesis block.
func NewStore(genesis types.Block) *Store {
	g := &Node{
		Block:         genesis,
		Height:        0,
		KeyHeight:     0,
		Weight:        new(big.Int).Set(genesis.Work()),
		SubtreeWeight: new(big.Int).Set(genesis.Work()),
	}
	g.KeyAncestor = g
	s := &Store{
		genesis: g,
		nodes:   map[crypto.Hash]*Node{genesis.Hash(): g},
	}
	return s
}

// Genesis returns the root node.
func (s *Store) Genesis() *Node { return s.genesis }

// EnableSubtreeWeights turns on cumulative subtree-weight maintenance. It
// must be called before any Insert (chain.New does, when the fork choice
// needs it).
func (s *Store) EnableSubtreeWeights() {
	if len(s.nodes) > 1 {
		panic("chain: EnableSubtreeWeights after blocks were inserted")
	}
	s.trackSubtree = true
}

// Get returns the node for the hash, if the block is known.
func (s *Store) Get(h crypto.Hash) (*Node, bool) {
	n, ok := s.nodes[h]
	return n, ok
}

// Len returns the number of blocks in the tree.
func (s *Store) Len() int { return len(s.nodes) }

// Insert links a block under its parent and computes cumulative metadata.
// The parent must already be present and the block must not be. Returns the
// new node.
func (s *Store) Insert(b types.Block, receivedAt int64) *Node {
	parent := s.nodes[b.PrevHash()]
	if parent == nil {
		panic("chain: Insert called without parent present")
	}
	if _, dup := s.nodes[b.Hash()]; dup {
		panic("chain: Insert called with duplicate block")
	}
	work := b.Work()
	n := &Node{
		Block:      b,
		Parent:     parent,
		Height:     parent.Height + 1,
		KeyHeight:  parent.KeyHeight,
		ReceivedAt: receivedAt,
	}
	if work.Sign() == 0 {
		// Zero-work blocks (microblocks) share the parent's cumulative
		// weight; Weight values are read-only after creation.
		n.Weight = parent.Weight
	} else {
		n.Weight = new(big.Int).Add(parent.Weight, work)
	}
	if s.trackSubtree {
		// Own big.Int: descendants mutate it during propagation.
		n.SubtreeWeight = new(big.Int).Set(work)
	} else {
		// Untracked stores never mutate SubtreeWeight, so aliasing the
		// (possibly shared) work value is safe.
		n.SubtreeWeight = work
	}
	if b.Kind() == types.KindMicro {
		n.KeyAncestor = parent.KeyAncestor
	} else {
		n.KeyHeight++
		n.KeyAncestor = n
	}
	parent.children = append(parent.children, n)
	s.nodes[b.Hash()] = n
	// Propagate subtree weight to ancestors for GHOST.
	if s.trackSubtree && work.Sign() > 0 {
		for a := parent; a != nil; a = a.Parent {
			a.SubtreeWeight.Add(a.SubtreeWeight, work)
		}
	}
	return n
}

// CommonAncestor returns the deepest node on both a's and b's chains.
func CommonAncestor(a, b *Node) *Node {
	for a.Height > b.Height {
		a = a.Parent
	}
	for b.Height > a.Height {
		b = b.Parent
	}
	for a != b {
		a = a.Parent
		b = b.Parent
	}
	return a
}

// PathBetween returns the blocks strictly after ancestor up to and including
// tip, oldest first. ancestor must be an ancestor of tip.
func PathBetween(ancestor, tip *Node) []*Node {
	if ancestor == tip {
		return nil
	}
	path := make([]*Node, 0, tip.Height-ancestor.Height)
	for n := tip; n != ancestor; n = n.Parent {
		path = append(path, n)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// EpochFees sums the recorded fees of the microblocks in the epoch that ends
// just above keyParent's chain: walking up from `from` (inclusive) until the
// nearest PoW/key block (exclusive). Used by Bitcoin-NG coinbase validation
// (§4.4) — the fees of the previous leader's microblocks fund the 40/60
// split in the next key block's coinbase.
func EpochFees(from *Node) types.Amount {
	var total types.Amount
	for n := from; n != nil && n.Block.Kind() == types.KindMicro; n = n.Parent {
		total += n.feeTotal
	}
	return total
}
