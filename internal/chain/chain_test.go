package chain

import (
	"errors"
	"math/rand"
	"testing"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
)

// openProtocol accepts any well-formed block; contextual economics are not
// enforced. Chain tests exercise the generic machinery; the real rules live
// in internal/bitcoin and internal/core and are tested there.
type openProtocol struct{}

func (openProtocol) RulesID() string { return "test/open" }

func (openProtocol) CheckBlock(st *State, parent *Node, b types.Block, now int64) error {
	switch blk := b.(type) {
	case *types.PowBlock:
		return blk.CheckWellFormed()
	case *types.KeyBlock:
		return blk.CheckWellFormed()
	case *types.MicroBlock:
		key, ok := parent.KeyAncestor.Block().(*types.KeyBlock)
		if !ok {
			return errors.New("microblock without key-block epoch")
		}
		return blk.CheckWellFormed(key.Header.LeaderKey)
	default:
		return errors.New("unknown block type")
	}
}

func (openProtocol) ConnectCheck(st *State, n *Node, fees []types.Amount) error { return nil }

func (openProtocol) PoisonTargets(st *State, parent *Node, b types.Block) (map[crypto.Hash]crypto.Hash, error) {
	return nil, nil
}

type fixture struct {
	t       *testing.T
	st      *State
	key     *crypto.PrivateKey
	genesis *types.PowBlock
	funded  []types.OutPoint
	now     int64
	height  uint64 // coinbase uniqueness counter
}

func newFixture(t *testing.T, random bool) *fixture {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	key, err := crypto.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	spec := types.GenesisSpec{
		TimeNanos: 0,
		Target:    crypto.EasiestTarget,
		Payouts: []types.TxOutput{
			{Value: 1000, To: key.Public().Addr()},
			{Value: 1000, To: key.Public().Addr()},
		},
	}
	genesis := types.GenesisBlock(spec)
	params := types.DefaultParams()
	params.RandomTieBreak = random
	st, err := New(genesis, params, openProtocol{}, &HeaviestChain{RandomTieBreak: random, Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	cbID := genesis.Txs[0].ID()
	return &fixture{
		t:       t,
		st:      st,
		key:     key,
		genesis: genesis,
		funded: []types.OutPoint{
			{TxID: cbID, Index: 0},
			{TxID: cbID, Index: 1},
		},
	}
}

// powBlock builds a simulated-PoW block on prev with optional extra txs.
func (f *fixture) powBlock(prev crypto.Hash, txs ...*types.Transaction) *types.PowBlock {
	f.height++
	all := append([]*types.Transaction{{
		Kind:    types.TxCoinbase,
		Outputs: []types.TxOutput{{Value: 50, To: f.key.Public().Addr()}},
		Height:  f.height,
	}}, txs...)
	f.now += 1e9
	return &types.PowBlock{
		Header: types.PowHeader{
			Prev:       prev,
			MerkleRoot: crypto.MerkleRoot(types.TxIDs(all)),
			TimeNanos:  f.now,
			Target:     crypto.EasiestTarget,
		},
		Txs:          all,
		SimulatedPoW: true,
	}
}

// keyBlock builds a simulated key block on prev for leader.
func (f *fixture) keyBlock(prev crypto.Hash, leader *crypto.PrivateKey) *types.KeyBlock {
	f.height++
	txs := []*types.Transaction{{
		Kind:    types.TxCoinbase,
		Outputs: []types.TxOutput{{Value: 50, To: leader.Public().Addr()}},
		Height:  f.height,
	}}
	f.now += 1e9
	return &types.KeyBlock{
		Header: types.KeyBlockHeader{
			Prev:       prev,
			MerkleRoot: crypto.MerkleRoot(types.TxIDs(txs)),
			TimeNanos:  f.now,
			Target:     crypto.EasiestTarget,
			LeaderKey:  leader.Public(),
		},
		Txs:          txs,
		SimulatedPoW: true,
	}
}

// microBlock builds a microblock on prev signed by leader.
func (f *fixture) microBlock(prev crypto.Hash, leader *crypto.PrivateKey, txs ...*types.Transaction) *types.MicroBlock {
	f.now += 1e6
	mb := &types.MicroBlock{
		Header: types.MicroBlockHeader{
			Prev:      prev,
			TxRoot:    crypto.MerkleRoot(types.TxIDs(txs)),
			TimeNanos: f.now,
		},
		Txs: txs,
	}
	mb.Header.Sign(leader)
	return mb
}

func (f *fixture) add(b types.Block) *AddResult {
	f.t.Helper()
	res, err := f.st.AddBlock(b, f.now)
	if err != nil {
		f.t.Fatalf("AddBlock(%s): %v", b.Hash().Short(), err)
	}
	return res
}

func (f *fixture) spend(from types.OutPoint, value types.Amount, to crypto.Address) *types.Transaction {
	tx := &types.Transaction{
		Kind:    types.TxRegular,
		Inputs:  []types.TxInput{{Prev: from}},
		Outputs: []types.TxOutput{{Value: value, To: to}},
	}
	tx.SignInput(0, f.key)
	return tx
}

func TestLinearExtension(t *testing.T) {
	f := newFixture(t, false)
	b1 := f.powBlock(f.genesis.Hash())
	res := f.add(b1)
	if res.Status != StatusMainChain || len(res.Connected) != 1 {
		t.Fatalf("b1: %v connected=%d", res.Status, len(res.Connected))
	}
	b2 := f.powBlock(b1.Hash())
	res = f.add(b2)
	if res.Status != StatusMainChain {
		t.Fatalf("b2 status %v", res.Status)
	}
	if f.st.Height() != 2 || f.st.Tip().Hash() != b2.Hash() {
		t.Errorf("tip height %d hash %s", f.st.Height(), f.st.Tip().Hash().Short())
	}
	if f.st.KeyHeight() != 2 {
		t.Errorf("key height %d", f.st.KeyHeight())
	}
	// Duplicate detection.
	res = f.add(b2)
	if res.Status != StatusDuplicate {
		t.Errorf("dup status %v", res.Status)
	}
}

func TestForkAndReorg(t *testing.T) {
	f := newFixture(t, false)
	b1 := f.powBlock(f.genesis.Hash())
	f.add(b1)
	// Side branch from genesis, same height: first-seen keeps b1.
	a1 := f.powBlock(f.genesis.Hash())
	res := f.add(a1)
	if res.Status != StatusSideChain {
		t.Fatalf("a1 status %v", res.Status)
	}
	if f.st.Tip().Hash() != b1.Hash() {
		t.Error("equal-weight fork displaced first-seen tip")
	}
	// Extending the side branch outweighs: reorg.
	a2 := f.powBlock(a1.Hash())
	res = f.add(a2)
	if res.Status != StatusMainChain {
		t.Fatalf("a2 status %v", res.Status)
	}
	if len(res.Disconnected) != 1 || res.Disconnected[0].Hash() != b1.Hash() {
		t.Errorf("disconnected %d blocks", len(res.Disconnected))
	}
	if len(res.Connected) != 2 {
		t.Errorf("connected %d blocks, want 2", len(res.Connected))
	}
	if f.st.Tip().Hash() != a2.Hash() {
		t.Error("tip not on new branch")
	}
}

func TestReorgMovesUTXOState(t *testing.T) {
	f := newFixture(t, false)
	dest := crypto.Address{9}
	spend := f.spend(f.funded[0], 400, dest)

	// Main chain: b1 carries the spend.
	b1 := f.powBlock(f.genesis.Hash(), spend)
	f.add(b1)
	if got := f.st.UTXO().BalanceOf(dest); got != 400 {
		t.Fatalf("balance after connect = %d", got)
	}
	// Competing branch without the spend wins.
	a1 := f.powBlock(f.genesis.Hash())
	a2 := f.powBlock(a1.Hash())
	f.add(a1)
	f.add(a2)
	if got := f.st.UTXO().BalanceOf(dest); got != 0 {
		t.Errorf("balance after reorg = %d, want 0 (tx back in limbo)", got)
	}
	// The original output is spendable again.
	if _, ok := f.st.UTXO().Lookup(f.funded[0]); !ok {
		t.Error("reorg did not restore spent output")
	}
}

func TestMicroblockWeightlessForkChoice(t *testing.T) {
	// The Figure 2 scenario: leader A's microblocks are pruned by leader
	// B's key block that did not hear them.
	f := newFixture(t, false)
	rng := rand.New(rand.NewSource(99))
	leaderA, _ := crypto.GenerateKey(rng)
	leaderB, _ := crypto.GenerateKey(rng)

	k1 := f.keyBlock(f.genesis.Hash(), leaderA)
	f.add(k1)
	m1 := f.microBlock(k1.Hash(), leaderA)
	m2 := f.microBlock(m1.Hash(), leaderA)
	if res := f.add(m1); res.Status != StatusMainChain {
		t.Fatalf("m1 status %v", res.Status)
	}
	if res := f.add(m2); res.Status != StatusMainChain {
		t.Fatalf("m2 status %v", res.Status)
	}
	if f.st.Height() != 3 || f.st.KeyHeight() != 1 {
		t.Fatalf("height %d keyheight %d", f.st.Height(), f.st.KeyHeight())
	}

	// B's key block extends m1 only (did not see m2): heavier than the
	// microblock tail, so m2 is pruned.
	k2 := f.keyBlock(m1.Hash(), leaderB)
	res := f.add(k2)
	if res.Status != StatusMainChain {
		t.Fatalf("k2 status %v", res.Status)
	}
	if len(res.Disconnected) != 1 || res.Disconnected[0].Hash() != m2.Hash() {
		t.Errorf("expected m2 pruned, disconnected=%d", len(res.Disconnected))
	}
	if f.st.Tip().Hash() != k2.Hash() {
		t.Error("tip not at k2")
	}
	// Microblocks contributed no weight: k2's chain weight equals 2 key
	// blocks' work regardless of the microblocks.
	if f.st.Tip().KeyHeight != 2 {
		t.Errorf("key height %d", f.st.Tip().KeyHeight)
	}
}

func TestMicroblockExtendsTipDespiteZeroWeight(t *testing.T) {
	f := newFixture(t, false)
	leader, _ := crypto.GenerateKey(rand.New(rand.NewSource(3)))
	k1 := f.keyBlock(f.genesis.Hash(), leader)
	f.add(k1)
	m1 := f.microBlock(k1.Hash(), leader)
	res := f.add(m1)
	if res.Status != StatusMainChain {
		t.Fatalf("equal-weight descendant not adopted: %v", res.Status)
	}
}

func TestOrphanAdoption(t *testing.T) {
	f := newFixture(t, false)
	b1 := f.powBlock(f.genesis.Hash())
	b2 := f.powBlock(b1.Hash())
	b3 := f.powBlock(b2.Hash())

	// Deliver out of order: b3, b2 orphaned until b1 arrives.
	if res := f.add(b3); res.Status != StatusOrphan {
		t.Fatalf("b3 status %v", res.Status)
	}
	if res := f.add(b2); res.Status != StatusOrphan {
		t.Fatalf("b2 status %v", res.Status)
	}
	res := f.add(b1)
	if res.Status != StatusMainChain {
		t.Fatalf("b1 status %v", res.Status)
	}
	if len(res.Connected) != 3 {
		t.Errorf("connected %d blocks, want 3 (cascade)", len(res.Connected))
	}
	if f.st.Tip().Hash() != b3.Hash() {
		t.Error("cascade did not reach b3")
	}
}

func TestInvalidConnectRestoresChain(t *testing.T) {
	f := newFixture(t, false)
	spend := f.spend(f.funded[0], 400, crypto.Address{1})
	doubleSpend := f.spend(f.funded[0], 300, crypto.Address{2})

	b1 := f.powBlock(f.genesis.Hash(), spend)
	f.add(b1)
	tipBefore := f.st.Tip().Hash()

	// A heavier branch whose second block double-spends: connect fails.
	a1 := f.powBlock(f.genesis.Hash(), doubleSpend)
	a2 := f.powBlock(a1.Hash(), spend) // conflicts with a1's double spend inputs? no: same input as doubleSpend
	f.add(a1)
	_, err := f.st.AddBlock(a2, f.now)
	if err == nil {
		t.Fatal("double-spending branch connected")
	}
	if f.st.Tip().Hash() != tipBefore {
		t.Errorf("tip moved to %s after failed reorg", f.st.Tip().Hash().Short())
	}
	// State is intact: the spend from b1 is still applied.
	if got := f.st.UTXO().BalanceOf(crypto.Address{1}); got != 400 {
		t.Errorf("balance = %d after failed reorg", got)
	}
}

func TestRandomTieBreakEventuallyTakesBoth(t *testing.T) {
	tookNew := false
	keptOld := false
	for seed := int64(0); seed < 32 && !(tookNew && keptOld); seed++ {
		rng := rand.New(rand.NewSource(seed))
		key, _ := crypto.GenerateKey(rng)
		genesis := types.GenesisBlock(types.GenesisSpec{Target: crypto.EasiestTarget})
		params := types.DefaultParams()
		st, err := New(genesis, params, openProtocol{}, &HeaviestChain{RandomTieBreak: true, Rand: rng})
		if err != nil {
			t.Fatal(err)
		}
		mk := func(h uint64) *types.PowBlock {
			txs := []*types.Transaction{{
				Kind:    types.TxCoinbase,
				Outputs: []types.TxOutput{{Value: 1, To: key.Public().Addr()}},
				Height:  h,
			}}
			return &types.PowBlock{
				Header: types.PowHeader{
					Prev:       genesis.Hash(),
					MerkleRoot: crypto.MerkleRoot(types.TxIDs(txs)),
					TimeNanos:  int64(h),
					Target:     crypto.EasiestTarget,
				},
				Txs:          txs,
				SimulatedPoW: true,
			}
		}
		b1, b2 := mk(1), mk(2)
		if _, err := st.AddBlock(b1, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := st.AddBlock(b2, 1); err != nil {
			t.Fatal(err)
		}
		switch st.Tip().Hash() {
		case b1.Hash():
			keptOld = true
		case b2.Hash():
			tookNew = true
		}
	}
	if !tookNew || !keptOld {
		t.Errorf("random tie-break never varied: tookNew=%v keptOld=%v", tookNew, keptOld)
	}
}

func TestGHOSTPrefersHeavySubtree(t *testing.T) {
	// Build: genesis -> a (subtree: a, a1, a2') and genesis -> b -> b1.
	// Chain lengths equal, but a's subtree has 3 blocks vs b's 2, so
	// GHOST picks a's side while heaviest-chain would tie.
	rng := rand.New(rand.NewSource(5))
	key, _ := crypto.GenerateKey(rng)
	genesis := types.GenesisBlock(types.GenesisSpec{Target: crypto.EasiestTarget})
	st, err := New(genesis, types.DefaultParams(), openProtocol{}, &GHOST{Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	var height uint64
	mk := func(prev crypto.Hash) *types.PowBlock {
		height++
		txs := []*types.Transaction{{
			Kind:    types.TxCoinbase,
			Outputs: []types.TxOutput{{Value: 1, To: key.Public().Addr()}},
			Height:  height,
		}}
		return &types.PowBlock{
			Header: types.PowHeader{
				Prev:       prev,
				MerkleRoot: crypto.MerkleRoot(types.TxIDs(txs)),
				TimeNanos:  int64(height),
				Target:     crypto.EasiestTarget,
			},
			Txs:          txs,
			SimulatedPoW: true,
		}
	}
	a := mk(genesis.Hash())
	a1 := mk(a.Hash())
	a2 := mk(a.Hash()) // sibling of a1: extra subtree weight under a
	b := mk(genesis.Hash())
	b1 := mk(b.Hash())
	for _, blk := range []*types.PowBlock{a, a1, a2, b, b1} {
		if _, err := st.AddBlock(blk, int64(height)); err != nil {
			t.Fatal(err)
		}
	}
	tip := st.Tip()
	if tip.Hash() != a1.Hash() && tip.Hash() != a2.Hash() {
		t.Errorf("GHOST tip %s not under heavy subtree", tip.Hash().Short())
	}
}

func TestEpochFees(t *testing.T) {
	f := newFixture(t, false)
	leader, _ := crypto.GenerateKey(rand.New(rand.NewSource(21)))
	k1 := f.keyBlock(f.genesis.Hash(), leader)
	f.add(k1)
	// Two microblocks carrying fee-paying transactions.
	tx1 := f.spend(f.funded[0], 900, crypto.Address{1}) // fee 100
	tx2 := f.spend(f.funded[1], 950, crypto.Address{2}) // fee 50
	m1 := f.microBlock(k1.Hash(), leader, tx1)
	m2 := f.microBlock(m1.Hash(), leader, tx2)
	f.add(m1)
	f.add(m2)

	got := EpochFees(f.st.Tip())
	if got != 150 {
		t.Errorf("EpochFees = %d, want 150", got)
	}
	// From the key block itself the epoch is empty.
	n, _ := f.st.Store().Get(k1.Hash())
	if got := EpochFees(n); got != 0 {
		t.Errorf("EpochFees at key block = %d", got)
	}
}

func TestMainChainListingAndContains(t *testing.T) {
	f := newFixture(t, false)
	b1 := f.powBlock(f.genesis.Hash())
	b2 := f.powBlock(b1.Hash())
	side := f.powBlock(f.genesis.Hash())
	f.add(b1)
	f.add(b2)
	f.add(side)

	mc := f.st.MainChain()
	if len(mc) != 3 {
		t.Fatalf("main chain length %d", len(mc))
	}
	if mc[0].Hash() != f.genesis.Hash() || mc[2].Hash() != b2.Hash() {
		t.Error("main chain misordered")
	}
	sideNode, _ := f.st.Store().Get(side.Hash())
	if f.st.MainChainContains(sideNode) {
		t.Error("side block reported on main chain")
	}
	b1Node, _ := f.st.Store().Get(b1.Hash())
	if !f.st.MainChainContains(b1Node) {
		t.Error("main block not reported on main chain")
	}
}

func TestCommonAncestorAndPath(t *testing.T) {
	f := newFixture(t, false)
	b1 := f.powBlock(f.genesis.Hash())
	b2 := f.powBlock(b1.Hash())
	a2 := f.powBlock(b1.Hash())
	f.add(b1)
	f.add(b2)
	f.add(a2)

	nb2, _ := f.st.Store().Get(b2.Hash())
	na2, _ := f.st.Store().Get(a2.Hash())
	anc := CommonAncestor(nb2, na2)
	if anc.Hash() != b1.Hash() {
		t.Errorf("common ancestor %s, want b1", anc.Hash().Short())
	}
	path := PathBetween(anc, nb2)
	if len(path) != 1 || path[0].Hash() != b2.Hash() {
		t.Error("PathBetween wrong")
	}
	if got := PathBetween(anc, anc); got != nil {
		t.Error("PathBetween(x,x) != nil")
	}
}

func TestStoreInsertPanics(t *testing.T) {
	f := newFixture(t, false)
	b1 := f.powBlock(f.genesis.Hash())
	f.add(b1)
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("duplicate insert", func() { f.st.Store().Insert(b1, 0) })
	orphan := f.powBlock(crypto.HashBytes([]byte("nowhere")))
	assertPanics("missing parent", func() { f.st.Store().Insert(orphan, 0) })
}
