package chain

import (
	"testing"
	"time"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
)

// syntheticKeyNode builds a bare key-block tree node for difficulty tests:
// the window walk only touches Parent, KeyAncestor, KeyHeight, and the block
// timestamp/target, so no chain state is needed.
func syntheticKeyNode(parent *Node, keyHeight uint64, at time.Duration, target crypto.CompactTarget) *Node {
	n := DetachedNode(&types.KeyBlock{
		Header: types.KeyBlockHeader{
			TimeNanos: int64(at),
			Target:    target,
		},
		SimulatedPoW: true,
	})
	n.Parent = parent
	n.KeyHeight = keyHeight
	n.KeyAncestor = n
	return n
}

// TestNextTargetRetargetBoundary pins the full-window schedule: at the first
// boundary of a window-4 schedule the walk spans exactly 3 intervals, and a
// chain mined 2x slower than the target doubles the target (ratio 2, inside
// the 4x clamp).
func TestNextTargetRetargetBoundary(t *testing.T) {
	params := types.DefaultParams()
	params.RetargetWindow = 4
	params.TargetBlockInterval = 100 * time.Second

	tgt := crypto.CompactTarget(0x1d00ffff)
	var tip *Node
	for kh := uint64(0); kh < 4; kh++ {
		// Blocks spaced 200s: twice the target interval.
		tip = syntheticKeyNode(tip, kh, time.Duration(kh)*200*time.Second, tgt)
	}
	// tip.KeyHeight == 3, so the next block (height 4) retargets.
	got := NextTarget(tip, params)
	want := crypto.Retarget(tgt, float64(3*200*time.Second), float64(3*100*time.Second))
	if got != want {
		t.Fatalf("boundary retarget: got %#x want %#x", uint32(got), uint32(want))
	}
	if got == tgt {
		t.Fatal("retarget did not adjust the target")
	}

	// Off-boundary heights keep the previous target unchanged.
	next := syntheticKeyNode(tip, 4, 4*200*time.Second, got)
	if off := NextTarget(next, params); off != got {
		t.Fatalf("off-boundary: got %#x want %#x", uint32(off), uint32(got))
	}
}

// TestNextTargetShortWindowCountsTraversedIntervals is the regression test
// for the window clamp: when the walk-back stops early at the tree root (a
// store rooted at a checkpoint rather than the true genesis), `expected`
// must count the intervals actually traversed, not assume a full w-1.
func TestNextTargetShortWindowCountsTraversedIntervals(t *testing.T) {
	params := types.DefaultParams()
	params.RetargetWindow = 4
	params.TargetBlockInterval = 100 * time.Second

	tgt := crypto.CompactTarget(0x1d00ffff)
	// Root the tree at key height 6: the next boundary (height 8) can only
	// walk back one interval before hitting the root.
	root := syntheticKeyNode(nil, 6, 0, tgt)
	tip := syntheticKeyNode(root, 7, 200*time.Second, tgt)

	got := NextTarget(tip, params)
	// One traversed interval of 200s against one expected interval of 100s:
	// ratio 2. The buggy version divided 200s by three expected intervals
	// (ratio 2/3) and tightened the target instead.
	want := crypto.Retarget(tgt, float64(200*time.Second), float64(100*time.Second))
	if got != want {
		t.Fatalf("short-window retarget: got %#x want %#x", uint32(got), uint32(want))
	}
	bad := crypto.Retarget(tgt, float64(200*time.Second), float64(3*100*time.Second))
	if got == bad {
		t.Fatal("short-window retarget still assumes w-1 intervals")
	}

	// Degenerate: a boundary exactly at the root traverses zero intervals
	// and must keep the target unchanged rather than divide by zero.
	soloRoot := syntheticKeyNode(nil, 3, 0, tgt)
	if got := NextTarget(soloRoot, params); got != tgt {
		t.Fatalf("zero-interval window: got %#x want %#x", uint32(got), uint32(tgt))
	}
}

// TestMedianTimePastUpperMedian pins the even-count behaviour to Bitcoin's
// rule: GetMedianTimePast sorts the collected timestamps and takes index
// count/2, which for an even count is the UPPER median. A short chain
// collects fewer than `window` timestamps, so the even case is reachable
// regardless of the configured window size.
func TestMedianTimePastUpperMedian(t *testing.T) {
	tgt := crypto.CompactTarget(0x1d00ffff)
	var tip *Node
	times := []time.Duration{10 * time.Second, 20 * time.Second, 30 * time.Second, 40 * time.Second}
	for i, at := range times {
		tip = syntheticKeyNode(tip, uint64(i), at, tgt)
	}

	// Even window equal to the chain length: upper median of {10,20,30,40}
	// is 30, not 20 (lower) and not 25 (midpoint).
	if got := MedianTimePast(tip, 4); got != int64(30*time.Second) {
		t.Fatalf("even-count median: got %v want %v", got, int64(30*time.Second))
	}
	// Odd window: the true median of {20,30,40} is 30.
	if got := MedianTimePast(tip, 3); got != int64(30*time.Second) {
		t.Fatalf("odd-count median: got %v want %v", got, int64(30*time.Second))
	}
	// Window larger than the chain: collects all 4 and stays on the upper
	// median rule.
	if got := MedianTimePast(tip, 11); got != int64(30*time.Second) {
		t.Fatalf("short-chain median: got %v want %v", got, int64(30*time.Second))
	}
}
