package chain

import (
	"encoding/binary"
	"math/big"
	"testing"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
)

// FuzzNextTarget drives the retargeting schedule with adversarial header
// histories: arbitrary key-block timestamps (decreasing, negative, huge)
// and arbitrary per-block compact targets, over windows crossing the
// genesis boundary. NextTarget must never panic, and whenever a retarget
// fires the result must stay within Bitcoin's 4x clamp of the previous
// target (the §5.2 mining-power-variation rule).
//
//	go test -fuzz=FuzzNextTarget -fuzztime=30s ./internal/chain
func FuzzNextTarget(f *testing.F) {
	f.Add(uint8(4), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add(uint8(0), []byte{})
	f.Add(uint8(16), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1, 2})
	f.Add(uint8(2), []byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, window uint8, raw []byte) {
		params := types.DefaultParams()
		params.RetargetWindow = int(window)

		genesis := types.GenesisBlock(types.GenesisSpec{Target: crypto.EasiestTarget})
		store := NewStore(genesis)

		// Each 10 raw bytes derive one key block: 8 bytes timestamp (any
		// int64), 2 bytes target offset folded into a valid compact range.
		parent := store.Genesis()
		for off := 0; off+10 <= len(raw) && parent.Height < 64; off += 10 {
			ts := int64(binary.LittleEndian.Uint64(raw[off : off+8]))
			tweak := binary.LittleEndian.Uint16(raw[off+8 : off+10])
			target := crypto.EasiestTarget - crypto.CompactTarget(tweak)

			prevTarget := BlockTarget(parent.KeyAncestor.Block())
			blk := &types.KeyBlock{
				Header: types.KeyBlockHeader{
					Prev:      parent.Hash(),
					TimeNanos: ts,
					Target:    target,
				},
				SimulatedPoW: true,
			}
			next := NextTarget(parent, params)
			// The schedule is defined at every height; off-retarget heights
			// must echo the last key target exactly.
			if w := params.RetargetWindow; w > 1 && (parent.KeyHeight+1)%uint64(w) != 0 {
				if next != prevTarget {
					t.Fatalf("height %d (window %d): target changed off-schedule: %#x -> %#x",
						parent.KeyHeight+1, w, uint32(prevTarget), uint32(next))
				}
			}
			// Whenever it moves, it stays within the 4x clamp (in target
			// terms the value scales by at most 4 either way; compact
			// rounding may add a hair, so compare against 5x bounds) — or
			// lands exactly on the 2^256-1 ceiling's compact rounding, which
			// Retarget clamps oversized targets (like EasiestTarget) to.
			old := prevTarget.Big()
			got := next.Big()
			hi := new(big.Int).Mul(old, big.NewInt(5))
			lo := new(big.Int).Div(old, big.NewInt(5))
			maxT := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 256), big.NewInt(1))
			ceiling := crypto.CompactFromBig(maxT).Big()
			inClamp := got.Cmp(hi) <= 0 && (lo.Sign() == 0 || got.Cmp(lo) >= 0)
			if !inClamp && got.Cmp(ceiling) != 0 {
				t.Fatalf("retarget outside clamp: %#x -> %#x", uint32(prevTarget), uint32(next))
			}
			store.Insert(blk, ts)
			parent, _ = store.Get(blk.Hash())
		}

		// MedianTimePast must be total on whatever chain we built.
		_ = MedianTimePast(parent, 11)
	})
}
