package chain

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
)

// TestArrivalOrderIndependence: whatever the delivery order, the node ends
// with the same block tree and a tip of maximal weight (first-seen
// tie-breaking legitimately picks different equal-weight tips for different
// orders, so the invariant is on weight, not identity). Orphan stashing must
// make out-of-order delivery converge.
func TestArrivalOrderIndependence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		key, err := crypto.GenerateKey(rng)
		if err != nil {
			return false
		}
		genesis := types.GenesisBlock(types.GenesisSpec{Target: crypto.EasiestTarget})
		params := types.DefaultParams()
		params.RandomTieBreak = false

		// Build a random tree of 12 blocks over genesis with branch factor
		// biased toward chains; heights differ so weights break ties.
		blocks := make([]*types.PowBlock, 0, 12)
		parents := []crypto.Hash{genesis.Hash()}
		var height uint64
		for i := 0; i < 12; i++ {
			height++
			prev := parents[rng.Intn(len(parents))]
			txs := []*types.Transaction{{
				Kind:    types.TxCoinbase,
				Outputs: []types.TxOutput{{Value: 1, To: key.Public().Addr()}},
				Height:  height,
			}}
			b := &types.PowBlock{
				Header: types.PowHeader{
					Prev:       prev,
					MerkleRoot: crypto.MerkleRoot(types.TxIDs(txs)),
					TimeNanos:  int64(height),
					Target:     crypto.EasiestTarget,
				},
				Txs:          txs,
				SimulatedPoW: true,
			}
			blocks = append(blocks, b)
			parents = append(parents, b.Hash())
		}

		build := func(order []int) *State {
			st, err := New(genesis, params, permissive{}, &HeaviestChain{})
			if err != nil {
				t.Fatal(err)
			}
			for _, idx := range order {
				// AddBlock may stash orphans and cascade later.
				st.AddBlock(blocks[idx], int64(idx))
			}
			return st
		}

		inOrder := make([]int, len(blocks))
		for i := range inOrder {
			inOrder[i] = i
		}
		shuffled := make([]int, len(blocks))
		copy(shuffled, inOrder)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})

		a := build(inOrder)
		b := build(shuffled)
		// Identical trees: every block present in both.
		if a.Store().Len() != len(blocks)+1 || b.Store().Len() != len(blocks)+1 {
			t.Logf("seed %d: tree sizes %d/%d, want %d", seed, a.Store().Len(), b.Store().Len(), len(blocks)+1)
			return false
		}
		// Both tips carry the maximal weight present in the tree.
		maxWeight := a.Store().Genesis().Weight
		for _, blk := range blocks {
			if n, ok := a.Store().Get(blk.Hash()); ok && n.Weight.Cmp(maxWeight) > 0 {
				maxWeight = n.Weight
			}
		}
		if a.Tip().Weight.Cmp(maxWeight) != 0 || b.Tip().Weight.Cmp(maxWeight) != 0 {
			t.Logf("seed %d: tip weights %v/%v, want %v", seed, a.Tip().Weight, b.Tip().Weight, maxWeight)
			return false
		}
		// UTXO state sizes agree for equal tips (cross-check reorg
		// bookkeeping when the orders happen to pick the same tip).
		if a.Tip().Hash() == b.Tip().Hash() && a.UTXO().Len() != b.UTXO().Len() {
			t.Logf("seed %d: same tip, different UTXO sizes", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// permissive accepts all well-formed blocks; used by property tests where
// economics are irrelevant. (chain_test.go's openProtocol validates
// microblock epochs; this one is for PoW-only trees with orphan delivery,
// where parent context may not exist yet at CheckBlock time.)
type permissive struct{}

func (permissive) RulesID() string { return "test/permissive" }

func (permissive) CheckBlock(st *State, parent *Node, b types.Block, now int64) error {
	return nil
}

func (permissive) ConnectCheck(st *State, n *Node, fees []types.Amount) error { return nil }

func (permissive) PoisonTargets(st *State, parent *Node, b types.Block) (map[crypto.Hash]crypto.Hash, error) {
	return nil, nil
}

// TestWeightMonotoneAlongChain checks that cumulative weight and heights
// never decrease from parent to child, for a randomly grown tree including
// microblocks.
func TestWeightMonotoneAlongChain(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	key, _ := crypto.GenerateKey(rng)
	genesis := types.GenesisBlock(types.GenesisSpec{Target: crypto.EasiestTarget})
	st, err := New(genesis, types.DefaultParams(), permissive{}, &HeaviestChain{})
	if err != nil {
		t.Fatal(err)
	}

	parents := []*Node{st.Store().Genesis()}
	var height uint64
	for i := 0; i < 60; i++ {
		height++
		parent := parents[rng.Intn(len(parents))]
		var blk types.Block
		if rng.Intn(3) == 0 && parent.KeyAncestor.Block().Kind() == types.KindKey {
			mb := &types.MicroBlock{
				Header: types.MicroBlockHeader{
					Prev:      parent.Hash(),
					TxRoot:    crypto.MerkleRoot(nil),
					TimeNanos: int64(height) * 1e9,
				},
			}
			mb.Header.Sign(key)
			blk = mb
		} else {
			txs := []*types.Transaction{{
				Kind:    types.TxCoinbase,
				Outputs: []types.TxOutput{{Value: 1, To: key.Public().Addr()}},
				Height:  height,
			}}
			kb := &types.KeyBlock{
				Header: types.KeyBlockHeader{
					Prev:       parent.Hash(),
					MerkleRoot: crypto.MerkleRoot(types.TxIDs(txs)),
					TimeNanos:  int64(height) * 1e9,
					Target:     crypto.EasiestTarget,
					LeaderKey:  key.Public(),
				},
				Txs:          txs,
				SimulatedPoW: true,
			}
			blk = kb
		}
		res, err := st.AddBlock(blk, int64(height))
		if err != nil {
			t.Fatal(err)
		}
		if res.Node != nil {
			parents = append(parents, res.Node)
		}
	}

	// Invariants over the whole tree.
	for _, n := range parents[1:] {
		p := n.Parent
		if n.Height != p.Height+1 {
			t.Fatalf("height not incremental at %s", n.Hash().Short())
		}
		if n.Weight.Cmp(p.Weight) < 0 {
			t.Fatalf("weight decreased at %s", n.Hash().Short())
		}
		if n.Block().Kind() == types.KindMicro {
			if n.Weight.Cmp(p.Weight) != 0 {
				t.Fatalf("microblock changed weight at %s", n.Hash().Short())
			}
			if n.KeyHeight != p.KeyHeight {
				t.Fatalf("microblock changed key height at %s", n.Hash().Short())
			}
		} else if n.KeyHeight != p.KeyHeight+1 {
			t.Fatalf("key block did not increment key height at %s", n.Hash().Short())
		}
		// Subtree weight at least own work.
		if n.SubtreeWeight.Cmp(n.Block().Work()) < 0 {
			t.Fatalf("subtree weight below own work at %s", n.Hash().Short())
		}
	}
}
