package chain

import (
	"sort"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
)

// BlockTarget returns the difficulty target a PoW-bearing block commits to;
// microblocks return the zero target (they carry no proof of work).
func BlockTarget(b types.Block) crypto.CompactTarget {
	switch blk := b.(type) {
	case *types.PowBlock:
		return blk.Header.Target
	case *types.KeyBlock:
		return blk.Header.Target
	default:
		return 0
	}
}

// blockSimulated reports whether the block's proof of work is simulated
// (scheduler-driven regtest mode, §7 "Simulated Mining").
func blockSimulated(b types.Block) bool {
	switch blk := b.(type) {
	case *types.PowBlock:
		return blk.SimulatedPoW
	case *types.KeyBlock:
		return blk.SimulatedPoW
	default:
		return false
	}
}

// MedianTimePast returns the median timestamp of the last `window` PoW/key
// blocks ending at n's key ancestor — Bitcoin's lower bound for new block
// timestamps (window 11 in the operational client).
func MedianTimePast(n *Node, window int) int64 {
	times := make([]int64, 0, window)
	k := n.KeyAncestor
	for k != nil && len(times) < window {
		times = append(times, k.Time())
		if k.Parent == nil {
			break
		}
		k = k.Parent.KeyAncestor
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2]
}

// NextTarget returns the required difficulty target for a PoW/key block
// extending parent, applying the retargeting schedule: every RetargetWindow
// key blocks the target scales by observed/expected window duration, clamped
// 4x as in Bitcoin (§5.2 discusses the consequences of this mechanism under
// mining power variation).
func NextTarget(parent *Node, params types.Params) crypto.CompactTarget {
	last := parent.KeyAncestor
	lastTarget := last.Target()
	w := params.RetargetWindow
	if w <= 1 {
		return lastTarget
	}
	nextHeight := parent.KeyHeight + 1
	if nextHeight%uint64(w) != 0 {
		return lastTarget
	}
	// Walk back w-1 key blocks to the window start. Short chains (the
	// first retarget after genesis) stop early; `expected` must count the
	// intervals actually traversed, not assume a full window, or the first
	// adjustment scales by an actual/expected ratio biased toward "too
	// fast" and overshoots the clamp.
	first := last
	intervals := 0
	for i := 0; i < w-1 && first.Parent != nil; i++ {
		first = first.Parent.KeyAncestor
		intervals++
	}
	if intervals == 0 {
		return lastTarget
	}
	actual := float64(last.Time() - first.Time())
	expected := float64(int64(intervals) * int64(params.TargetBlockInterval))
	return crypto.Retarget(lastTarget, actual, expected)
}
