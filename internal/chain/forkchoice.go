package chain

import "math/rand"

// ForkChoice selects the preferred tip after a block is added to the tree.
type ForkChoice interface {
	// Best returns the tip to adopt given the current tip and the newly
	// inserted node. Implementations must be deterministic given their
	// random source.
	Best(s *Store, current, added *Node) *Node
}

// SubtreeWeighted lets a fork choice declare whether it reads
// Node.SubtreeWeight; the store pays the per-insert ancestor walk that
// maintains subtree weights only when needed. Fork choices that do not
// implement the interface get the weights maintained (the safe default for
// custom rules); built-in rules that only compare cumulative chain weight
// opt out and skip the cost entirely.
type SubtreeWeighted interface {
	NeedsSubtreeWeight() bool
}

// HeaviestChain is the Bitcoin/Bitcoin-NG rule (§3, §4.1): adopt the chain
// representing the most aggregate work, breaking ties either uniformly at
// random (the paper's recommendation, after [21]) or by keeping the
// first-seen branch (the operational client's behaviour).
type HeaviestChain struct {
	// RandomTieBreak selects the tie rule.
	RandomTieBreak bool
	// Rand supplies tie-break coin flips; required when RandomTieBreak.
	Rand *rand.Rand
}

// NeedsSubtreeWeight implements SubtreeWeighted: heaviest-chain only
// compares cumulative weight, so the store can skip subtree maintenance.
func (h *HeaviestChain) NeedsSubtreeWeight() bool { return false }

// Best implements ForkChoice.
func (h *HeaviestChain) Best(s *Store, current, added *Node) *Node {
	switch added.Weight.Cmp(current.Weight) {
	case 1:
		return added
	case -1:
		return current
	}
	// Equal weight. A descendant of the current tip extends it without
	// adding work — Bitcoin-NG microblocks — and is always adopted.
	if current.IsAncestorOf(added) {
		return added
	}
	if added.IsAncestorOf(current) {
		return current
	}
	// A genuine equal-weight fork.
	if h.RandomTieBreak && h.Rand.Intn(2) == 0 {
		return added
	}
	return current
}

// GHOST is the heaviest-subtree rule of Sompolinsky et al. evaluated in §9:
// from genesis, repeatedly descend into the child whose subtree carries the
// most work, until reaching a leaf. Work not on the main chain still counts
// at the branch point.
type GHOST struct {
	// RandomTieBreak breaks equal-subtree ties randomly; otherwise the
	// earliest-received child wins.
	RandomTieBreak bool
	Rand           *rand.Rand
}

// NeedsSubtreeWeight implements SubtreeWeighted: GHOST's descent compares
// subtree weights, so the store must maintain them.
func (g *GHOST) NeedsSubtreeWeight() bool { return true }

// Best implements ForkChoice. The added node is unused: GHOST recomputes the
// greedy descent from the root, since a block anywhere in the tree can flip
// a branch decision.
func (g *GHOST) Best(s *Store, current, added *Node) *Node {
	n := s.Genesis()
	for {
		var best *Node
		for _, c := range n.children {
			if c.Invalid {
				continue
			}
			if best == nil {
				best = c
				continue
			}
			switch c.SubtreeWeight.Cmp(best.SubtreeWeight) {
			case 1:
				best = c
			case 0:
				if g.RandomTieBreak {
					if g.Rand.Intn(2) == 0 {
						best = c
					}
				} else if c.ReceivedAt < best.ReceivedAt {
					best = c
				}
			}
		}
		if best == nil {
			return n
		}
		n = best
	}
}
