package chain

import (
	"bytes"
	"errors"
	"fmt"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
	"bitcoinng/internal/utxo"
	"bitcoinng/internal/validate"
)

// Protocol supplies the protocol-specific validation the generic chain
// machinery calls out to. internal/bitcoin and internal/core implement it.
type Protocol interface {
	// RulesID is a stable identifier of the protocol's validation
	// semantics, including any flags that change them (e.g. whether
	// simulated proof of work is accepted). Together with the consensus
	// parameters it forms the connect-cache fingerprint, so two nodes
	// share cached connect verdicts exactly when their RulesID and Params
	// agree.
	RulesID() string

	// CheckBlock fully validates a block before it enters the tree, given
	// its resolved parent: intrinsic well-formedness (including microblock
	// signatures, which need the epoch's leader key from the parent
	// chain), timestamp rules, and the difficulty schedule. now is the
	// local clock in Unix nanoseconds.
	CheckBlock(st *State, parent *Node, b types.Block, now int64) error

	// ConnectCheck validates block economics after its transactions were
	// applied to the UTXO set: coinbase amounts against subsidy and fees
	// (fees[i] is the fee collected from transaction i). It must be a
	// pure function of the block and its ancestor chain — its verdict is
	// shared across nodes through the connect cache. Returning an error
	// rolls the application back and marks the block invalid.
	ConnectCheck(st *State, n *Node, fees []types.Amount) error

	// PoisonTargets verifies the fraud proofs of any poison transactions
	// in b and resolves each poison transaction ID to the culprit's
	// coinbase transaction ID. Protocols without poison transactions
	// return (nil, nil) for poison-free blocks and an error otherwise.
	// Like ConnectCheck, the verdict must depend only on the block and
	// its ancestor chain (everything the evidence may reference is, by
	// construction, in the connecting block's ancestry).
	PoisonTargets(st *State, parent *Node, b types.Block) (map[crypto.Hash]crypto.Hash, error)
}

// Status classifies the outcome of AddBlock.
type Status int

// AddBlock outcomes.
const (
	StatusInvalid   Status = iota // rejected by validation
	StatusDuplicate               // already known
	StatusOrphan                  // parent unknown; stashed for later
	StatusSideChain               // stored off the main chain
	StatusMainChain               // extended or became the main chain
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case StatusInvalid:
		return "invalid"
	case StatusDuplicate:
		return "duplicate"
	case StatusOrphan:
		return "orphan"
	case StatusSideChain:
		return "sidechain"
	case StatusMainChain:
		return "mainchain"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// AddResult reports what AddBlock did, including the main-chain delta so the
// caller can update its mempool and emit metric events. When stashed orphans
// become connectable, their effects are folded into the same result.
type AddResult struct {
	Status Status
	// Node is the tree node for the added block (nil for orphans,
	// duplicates, and invalid blocks).
	Node *Node
	// Added lists every block that entered the tree during the call: the
	// block itself plus any stashed orphans it unlocked. The relay and
	// metrics layers see each block exactly once through this list.
	Added []*Node
	// Connected lists blocks that joined the main chain, oldest first.
	Connected []*Node
	// Disconnected lists blocks that left the main chain, oldest first.
	Disconnected []*Node
}

// TipChanged reports whether the main chain moved.
func (r *AddResult) TipChanged() bool { return len(r.Connected) > 0 }

// maxOrphanBlocks bounds the orphan stash; beyond it the oldest parent
// bucket is dropped (the gossip layer will re-fetch if still needed).
const maxOrphanBlocks = 512

// Chain errors.
var (
	ErrUnknownParent = errors.New("chain: parent unknown")
	ErrKnownInvalid  = errors.New("chain: block previously marked invalid")
)

// UTXOStore is the ledger-state surface the chain machinery drives. It is
// exactly the contract extracted from *utxo.Set; internal/store adds a
// file-backed implementation (journaling paged table) so the ledger can
// exceed process RAM. Implementations must behave identically — the chaos
// differential byte-compares whole-run reports across backends.
type UTXOStore interface {
	// Read surface (wallets, invariants, fee resolvers).
	Lookup(op types.OutPoint) (utxo.Entry, bool)
	Len() int
	Range(fn func(op types.OutPoint, e utxo.Entry) bool)
	BalanceOf(addr crypto.Address) types.Amount
	Poisoned(coinbaseID crypto.Hash) bool
	// Mutation surface (connect/disconnect machinery). RedoBlock and
	// UndoBlock carry the block reference so journaling backends can label
	// op-log records.
	ApplyBlock(txs []*types.Transaction, ctx utxo.BlockContext) (*utxo.Delta, []types.Amount, error)
	RedoBlock(d *utxo.Delta, at utxo.BlockRef)
	UndoBlock(d *utxo.Delta, at utxo.BlockRef)
	// Stats exposes backend counters for the harness's quiescent-boundary
	// store metrics.
	Stats() utxo.Stats
}

// State is a node's view of the blockchain: the block tree, the active
// (main) chain, and the UTXO set at its tip. It is not safe for concurrent
// use; each protocol node drives one from its event loop.
type State struct {
	params   types.Params
	store    *Store
	protocol Protocol
	choice   ForkChoice

	utxoSet UTXOStore
	tip     *Node

	// cache, when set, memoizes connect outcomes process-wide under fp so
	// nodes sharing rules replay each block's delta instead of recomputing
	// it. fp is derived once at construction.
	cache *validate.Cache
	fp    validate.Fingerprint

	orphans      map[crypto.Hash][]types.Block // parent hash -> waiting blocks
	orphanCount  int
	invalidCount int
}

// Option configures a State at construction.
type Option func(*State)

// WithConnectCache threads a shared connect cache through the state; nil
// disables caching (every connect recomputes locally).
func WithConnectCache(c *validate.Cache) Option {
	return func(st *State) { st.cache = c }
}

// WithUTXOStore swaps the ledger storage backend; nil keeps the default
// in-memory set. The store must be empty (or freshly Reset) — New applies
// the genesis coinbase into it.
func WithUTXOStore(u UTXOStore) Option {
	return func(st *State) {
		if u != nil {
			st.utxoSet = u
		}
	}
}

// New creates a State rooted at the genesis block. The genesis coinbase is
// applied to the UTXO set (pre-funded experiment outputs live there).
func New(genesis types.Block, params types.Params, protocol Protocol, choice ForkChoice, opts ...Option) (*State, error) {
	st := &State{
		params:   params,
		store:    NewStore(genesis),
		protocol: protocol,
		choice:   choice,
		utxoSet:  utxo.New(),
		fp:       validate.FingerprintOf(protocol.RulesID(), params),
		orphans:  make(map[crypto.Hash][]types.Block),
	}
	for _, opt := range opts {
		opt(st)
	}
	// Fork choices that do not declare their needs get subtree weights
	// maintained: a custom rule reading Node.SubtreeWeight must keep
	// working even if it predates the SubtreeWeighted interface.
	track := true
	if sw, ok := choice.(SubtreeWeighted); ok {
		track = sw.NeedsSubtreeWeight()
	}
	if track {
		st.store.EnableSubtreeWeights()
	}
	st.tip = st.store.Genesis()

	// Genesis application goes through the cache too: experiment genesis
	// blocks carry hundreds of pre-funded outputs, and every node of a run
	// applies the same ones.
	key := validate.Key{Block: genesis.Hash(), Rules: st.fp}
	gref := utxo.BlockRef{Block: genesis.Hash()}
	if res, ok := st.lookupConnect(key); ok {
		if res.Err != nil {
			return nil, fmt.Errorf("chain: applying genesis: %w", res.Err)
		}
		st.utxoSet.RedoBlock(res.Delta, gref)
		st.tip.undo = res.Delta
		return st, nil
	}
	u, _, err := st.utxoSet.ApplyBlock(genesis.Transactions(), utxo.BlockContext{Height: 0, Params: params, Ref: gref})
	if err != nil {
		st.storeConnect(key, &validate.ConnectResult{Err: err})
		return nil, fmt.Errorf("chain: applying genesis: %w", err)
	}
	st.storeConnect(key, &validate.ConnectResult{Delta: u})
	st.tip.undo = u
	return st, nil
}

// lookupConnect consults the connect cache, if one is attached.
func (st *State) lookupConnect(key validate.Key) (*validate.ConnectResult, bool) {
	if st.cache == nil {
		return nil, false
	}
	return st.cache.Lookup(key)
}

// storeConnect memoizes a connect outcome, if a cache is attached.
func (st *State) storeConnect(key validate.Key, res *validate.ConnectResult) {
	if st.cache != nil {
		st.cache.Store(key, res)
	}
}

// ConnectCacheStats reports the attached cache's counters; zero Stats when
// no cache is attached.
func (st *State) ConnectCacheStats() validate.Stats {
	if st.cache == nil {
		return validate.Stats{}
	}
	return st.cache.Stats()
}

// Params returns the consensus parameters.
func (st *State) Params() types.Params { return st.params }

// Store exposes the underlying block tree (read-only use).
func (st *State) Store() *Store { return st.store }

// Tip returns the current main-chain tip.
func (st *State) Tip() *Node { return st.tip }

// UTXO returns the UTXO store at the current tip (read-only use).
func (st *State) UTXO() UTXOStore { return st.utxoSet }

// Compact bounds the tree's resident size for long runs: it evicts archived
// block bodies (when a body source is attached; see Store.AttachBodySource)
// and drops the undo deltas of main-chain blocks buried at least keepDepth
// below the tip. Compacted blocks can no longer be disconnected — a reorg
// deeper than keepDepth panics — so callers pick keepDepth well above any
// reorganization their scenario can produce. Returns (bodies evicted, undo
// records dropped).
func (st *State) Compact(keepDepth uint64) (int, int) {
	bodies := st.store.EvictBodies(st.tip, keepDepth)
	n := st.tip
	for i := uint64(0); i < keepDepth && n != nil; i++ {
		n = n.Parent
	}
	undos := 0
	for ; n != nil && n.Parent != nil; n = n.Parent {
		if n.undo == nil {
			// Compaction nils a contiguous suffix of the main chain, so
			// the first already-nil undo means everything below is done.
			break
		}
		n.undo = nil
		undos++
	}
	return bodies, undos
}

// FeeTotal returns the total fees collected by a block when it was
// connected; zero if it never connected.
func (st *State) FeeTotal(h crypto.Hash) types.Amount {
	n, ok := st.store.Get(h)
	if !ok {
		return 0
	}
	return n.feeTotal
}

// EpochFeesAt sums the recorded fees of the uninterrupted run of microblocks
// ending at n (walking up until the nearest PoW/key block). Bitcoin-NG's
// coinbase validation uses it to compute the previous epoch's fee pot.
func (st *State) EpochFeesAt(n *Node) types.Amount { return EpochFees(n) }

// Height returns the main-chain height.
func (st *State) Height() uint64 { return st.tip.Height }

// KeyHeight returns the main-chain PoW/key-block height.
func (st *State) KeyHeight() uint64 { return st.tip.KeyHeight }

// HasBlock reports whether the block is in the tree.
func (st *State) HasBlock(h crypto.Hash) bool {
	_, ok := st.store.Get(h)
	return ok
}

// MainChainContains reports whether the block is on the active chain.
func (st *State) MainChainContains(n *Node) bool {
	return st.tip.AncestorAtHeight(n.Height) == n
}

// AddBlock validates and stores a block received at time now (Unix
// nanoseconds), running fork choice and any resulting reorganization. When
// the block's parent is unknown the block is stashed and reconsidered once
// the parent arrives; the triggering AddBlock's result then includes the
// orphans' effects.
func (st *State) AddBlock(b types.Block, now int64) (*AddResult, error) {
	res := &AddResult{}
	err := st.addOne(b, now, res)
	if err != nil || res.Status == StatusOrphan || res.Status == StatusDuplicate {
		return res, err
	}
	// Cascade: orphans waiting on this block (and on blocks they unlock).
	st.adoptOrphans(b.Hash(), now, res)
	return res, nil
}

func (st *State) addOne(b types.Block, now int64, res *AddResult) error {
	h := b.Hash()
	if _, ok := st.store.Get(h); ok {
		res.Status = StatusDuplicate
		return nil
	}
	parent, ok := st.store.Get(b.PrevHash())
	if !ok {
		res.Status = StatusOrphan
		st.stashOrphan(b)
		return nil
	}
	if parent.Invalid {
		res.Status = StatusInvalid
		return ErrKnownInvalid
	}
	if err := st.protocol.CheckBlock(st, parent, b, now); err != nil {
		res.Status = StatusInvalid
		return err
	}
	n := st.store.Insert(b, now)
	res.Node = n
	res.Added = append(res.Added, n)

	best := st.choice.Best(st.store, st.tip, n)
	if best == st.tip {
		res.Status = StatusSideChain
		return nil
	}
	if err := st.reorgTo(best, res); err != nil {
		// The failing block was marked invalid and the previous chain
		// restored; surface the error but keep serving.
		res.Status = StatusInvalid
		return err
	}
	res.Status = StatusMainChain
	return nil
}

func (st *State) stashOrphan(b types.Block) {
	if st.orphanCount >= maxOrphanBlocks {
		// Drop an arbitrary bucket; gossip re-delivery recovers it.
		for parent, bucket := range st.orphans {
			st.orphanCount -= len(bucket)
			delete(st.orphans, parent)
			break
		}
	}
	// Duplicate stashes are harmless (addOne dedups on adoption).
	st.orphans[b.PrevHash()] = append(st.orphans[b.PrevHash()], b)
	st.orphanCount++
}

func (st *State) adoptOrphans(parent crypto.Hash, now int64, res *AddResult) {
	queue := []crypto.Hash{parent}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		bucket := st.orphans[h]
		if len(bucket) == 0 {
			continue
		}
		delete(st.orphans, h)
		st.orphanCount -= len(bucket)
		for _, b := range bucket {
			sub := &AddResult{}
			// Validation errors on orphans are swallowed: the sender
			// of an invalid orphan is long gone.
			if err := st.addOne(b, now, sub); err != nil {
				continue
			}
			res.Added = append(res.Added, sub.Added...)
			res.Connected = append(res.Connected, sub.Connected...)
			res.Disconnected = append(res.Disconnected, sub.Disconnected...)
			if sub.Status == StatusMainChain {
				res.Status = StatusMainChain
			}
			queue = append(queue, b.Hash())
		}
	}
}

// reorgTo moves the active chain to target, disconnecting back to the
// common ancestor and connecting forward. On a connect failure the failing
// block's subtree is marked invalid, the previous chain is restored, and
// fork choice re-runs over the remaining valid tree.
func (st *State) reorgTo(target *Node, res *AddResult) error {
	oldTip := st.tip
	anc := CommonAncestor(oldTip, target)

	// Disconnect oldTip..anc.
	down := PathBetween(anc, oldTip)
	for i := len(down) - 1; i >= 0; i-- {
		st.disconnectBlock(down[i])
	}

	// Connect anc..target.
	up := PathBetween(anc, target)
	for i, n := range up {
		if err := st.connectBlock(n); err != nil {
			// Roll back the partial connect and restore the old chain.
			for j := i - 1; j >= 0; j-- {
				st.disconnectBlock(up[j])
			}
			for _, m := range down {
				if cerr := st.connectBlock(m); cerr != nil {
					// The old chain was valid moments ago; failure here
					// means corrupted state, which cannot be served.
					panic(fmt.Sprintf("chain: cannot restore previous chain: %v", cerr))
				}
			}
			st.markInvalid(n)
			// Another branch may now be best; retry (terminates: every
			// retry permanently invalidates at least one node).
			if best := st.bestValidTip(); best != st.tip {
				if rerr := st.reorgTo(best, res); rerr == nil {
					return err // original cause, but chain moved on
				}
			}
			return err
		}
	}
	st.tip = target
	res.Disconnected = append(res.Disconnected, down...)
	res.Connected = append(res.Connected, up...)
	return nil
}

// connectBlock advances the UTXO set over n. The outcome is a pure function
// of (block hash, parent hash, rules fingerprint) — the block hash commits
// to the whole history below it — so it is memoized in the connect cache:
// the first node to connect a block computes, every later node (and every
// reorg that re-connects it) replays the recorded delta.
func (st *State) connectBlock(n *Node) error {
	h := n.Hash()
	key := validate.Key{Block: h, Parent: n.Parent.Hash(), Rules: st.fp}
	res, hit := st.lookupConnect(key)
	if !hit {
		res = st.computeConnect(n)
		st.storeConnect(key, res)
	}
	if res.Err != nil {
		return res.Err
	}
	if hit {
		st.utxoSet.RedoBlock(res.Delta, utxo.BlockRef{Block: h, Parent: key.Parent})
	}
	n.undo = res.Delta
	n.feeTotal = res.FeeTotal
	st.tip = n
	return nil
}

// computeConnect runs the full connect stage: poison evidence, transaction
// application, economic checks. On success the UTXO set is left advanced
// over the block (the recorded delta describes exactly that advance); on
// failure it is left untouched.
func (st *State) computeConnect(n *Node) *validate.ConnectResult {
	fail := func(err error) *validate.ConnectResult {
		return &validate.ConnectResult{Err: fmt.Errorf("block %s: %w", n.Hash().Short(), err)}
	}
	targets, err := st.protocol.PoisonTargets(st, n.Parent, n.Block())
	if err != nil {
		return fail(err)
	}
	ref := utxo.BlockRef{Block: n.Hash(), Parent: n.Parent.Hash()}
	ctx := utxo.BlockContext{
		Height:        n.KeyHeight,
		Params:        st.params,
		PoisonTargets: targets,
		Ref:           ref,
	}
	txs := n.Block().Transactions()
	u, fees, err := st.utxoSet.ApplyBlock(txs, ctx)
	if err != nil {
		return fail(err)
	}
	if err := st.protocol.ConnectCheck(st, n, fees); err != nil {
		st.utxoSet.UndoBlock(u, ref)
		return fail(err)
	}
	var total types.Amount
	for _, f := range fees {
		total += f
	}
	return &validate.ConnectResult{Delta: u, FeeTotal: total}
}

func (st *State) disconnectBlock(n *Node) {
	if n.undo == nil {
		panic("chain: disconnecting block without undo record (reorg deeper than the compaction horizon?)")
	}
	st.utxoSet.UndoBlock(n.undo, utxo.BlockRef{Block: n.Hash(), Parent: n.Parent.Hash()})
	n.undo = nil
	st.tip = n.Parent
}

// markInvalid flags n and its entire subtree invalid.
func (st *State) markInvalid(n *Node) {
	n.Invalid = true
	st.invalidCount++
	for _, c := range n.children {
		st.markInvalid(c)
	}
}

// bestValidTip linearly scans the tree for the best non-invalid tip using
// heaviest-weight/first-seen ordering. Only the rare invalid-block recovery
// path uses it. ReceivedAt is a caller-supplied timestamp and is not unique
// (two blocks can arrive at the same simulated nanosecond), so the fold
// breaks full ties on block hash: without that, the adopted tip after an
// invalidation would depend on map iteration order.
func (st *State) bestValidTip() *Node {
	best := st.store.Genesis()
	for _, n := range st.store.nodes { //nglint:allow detflow selection fold over the strict total order (weight, height, receivedAt, hash); the result is independent of iteration order
		if n.Invalid {
			continue
		}
		switch n.Weight.Cmp(best.Weight) {
		case 1:
			best = n
		case 0:
			if n.Height > best.Height ||
				(n.Height == best.Height && n.ReceivedAt < best.ReceivedAt) ||
				(n.Height == best.Height && n.ReceivedAt == best.ReceivedAt &&
					bytes.Compare(hashOf(n), hashOf(best)) < 0) {
				best = n
			}
		}
	}
	return best
}

// hashOf returns n's block hash as a slice for ordering comparisons.
func hashOf(n *Node) []byte {
	h := n.Hash()
	return h[:]
}

// MainChain returns the active chain from genesis to tip, inclusive.
func (st *State) MainChain() []*Node {
	out := make([]*Node, 0, st.tip.Height+1)
	for n := st.tip; n != nil; n = n.Parent {
		out = append(out, n)
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}
