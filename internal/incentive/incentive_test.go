package incentive

import (
	"math"
	"math/rand"
	"testing"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPaperBoundsAtQuarter(t *testing.T) {
	// §5.1: at α = 1/4, r_leader > 37% and r_leader < 43%.
	lo, hi, ok := Window(DefaultAlpha)
	if !ok {
		t.Fatal("window empty at α=1/4")
	}
	if !almost(lo, 0.3684, 0.001) {
		t.Errorf("lower bound = %.4f, paper: ≈0.37", lo)
	}
	if !almost(hi, 0.4286, 0.001) {
		t.Errorf("upper bound = %.4f, paper: ≈0.43", hi)
	}
	if !Compatible(0.40, DefaultAlpha) {
		t.Error("the protocol's 40% must be incentive compatible at α=1/4")
	}
}

func TestOptimalNetworkNoWindow(t *testing.T) {
	// §5.1 "Optimal Network Assumption": at α = 1/3 the bounds become
	// r > 45% and r < 40% — no intersection.
	lo, hi, ok := Window(OptimalNetworkAlpha)
	if ok {
		t.Errorf("window should be empty at α=1/3: [%.4f, %.4f]", lo, hi)
	}
	if !almost(lo, 0.4545, 0.001) {
		t.Errorf("lower bound = %.4f, paper: ≈0.45", lo)
	}
	if !almost(hi, 0.40, 0.001) {
		t.Errorf("upper bound = %.4f, paper: 0.40", hi)
	}
	if Compatible(0.40, OptimalNetworkAlpha) {
		t.Error("40% must not be compatible under the optimal network assumption")
	}
}

func TestBoundsMonotoneInAlpha(t *testing.T) {
	// A stronger attacker needs a larger leader share to stay honest and
	// tolerates a smaller one before deviating: the window shrinks.
	prevLo, prevHi := -1.0, 2.0
	for a := 0.05; a <= 0.45; a += 0.05 {
		lo, hi := LowerBound(a), UpperBound(a)
		if lo <= prevLo {
			t.Errorf("lower bound not increasing at α=%.2f", a)
		}
		if hi >= prevHi {
			t.Errorf("upper bound not decreasing at α=%.2f", a)
		}
		prevLo, prevHi = lo, hi
	}
}

func TestMonteCarloMatchesClosedFormInclusion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const trials = 400_000
	for _, alpha := range []float64{0.1, 0.25, 1.0 / 3.0} {
		// At the exact lower bound the attack EV equals the honest EV.
		r := LowerBound(alpha)
		attack := InclusionAttackEV(rng, alpha, r, trials)
		if !almost(attack, r, 0.005) {
			t.Errorf("α=%.2f: inclusion attack EV %.4f != honest %.4f at the bound", alpha, attack, r)
		}
		// Above the bound honesty wins.
		rHigh := r + 0.05
		attack = InclusionAttackEV(rng, alpha, rHigh, trials)
		if attack >= rHigh {
			t.Errorf("α=%.2f: attack EV %.4f >= honest %.4f above the bound", alpha, attack, rHigh)
		}
		// Below the bound attacking wins.
		rLow := r - 0.05
		attack = InclusionAttackEV(rng, alpha, rLow, trials)
		if attack <= rLow {
			t.Errorf("α=%.2f: attack EV %.4f <= honest %.4f below the bound", alpha, attack, rLow)
		}
	}
}

func TestMonteCarloMatchesClosedFormExtension(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const trials = 400_000
	for _, alpha := range []float64{0.1, 0.25, 1.0 / 3.0} {
		r := UpperBound(alpha)
		attack := ExtensionAttackEV(rng, alpha, r, trials)
		honest := HonestExtensionEV(r)
		if !almost(attack, honest, 0.005) {
			t.Errorf("α=%.2f: extension attack EV %.4f != honest %.4f at the bound", alpha, attack, honest)
		}
		// Below the bound (smaller r) honesty wins.
		rLow := r - 0.05
		if ExtensionAttackEV(rng, alpha, rLow, trials) >= HonestExtensionEV(rLow) {
			t.Errorf("α=%.2f: extension attack profitable below the bound", alpha)
		}
		// Above the bound the attack wins.
		rHigh := r + 0.05
		if ExtensionAttackEV(rng, alpha, rHigh, trials) <= HonestExtensionEV(rHigh) {
			t.Errorf("α=%.2f: extension attack unprofitable above the bound", alpha)
		}
	}
}

func TestTable(t *testing.T) {
	rows := Table([]float64{0.1, 0.25, 1.0 / 3.0})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !rows[0].WindowOpen || !rows[1].WindowOpen || rows[2].WindowOpen {
		t.Errorf("window flags wrong: %+v", rows)
	}
	if !rows[1].R40Valid || rows[2].R40Valid {
		t.Errorf("R40 flags wrong: %+v", rows)
	}
}
