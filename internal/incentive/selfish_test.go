package incentive

import (
	"math"
	"testing"
)

func TestSelfishThresholdMatchesClosedForm(t *testing.T) {
	for _, gamma := range []float64{0, 0.25, 0.5, 0.75, 1} {
		got := SelfishThreshold(gamma)
		want := SelfishThresholdClosedForm(gamma)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("γ=%.2f: bisection %.6f vs closed form %.6f", gamma, got, want)
		}
	}
}

func TestQuarterBoundAtRandomTieBreak(t *testing.T) {
	// The paper's model bounds the adversary at 1/4 (§2) because with
	// random tie-breaking (γ=1/2) selfish mining profits above 25%.
	got := SelfishThresholdClosedForm(0.5)
	if math.Abs(got-0.25) > 1e-9 {
		t.Errorf("threshold at γ=1/2 = %.4f, want 0.25", got)
	}
	// At γ=0 (attacker always loses races) the classic 1/3 bound.
	if got := SelfishThresholdClosedForm(0); math.Abs(got-1.0/3.0) > 1e-9 {
		t.Errorf("threshold at γ=0 = %.4f, want 1/3", got)
	}
}

func TestSelfishRevenueBehaviour(t *testing.T) {
	// Below threshold: honest at least as good. Above: selfish better.
	if SelfishProfitable(0.20, 0.5) {
		t.Error("selfish mining profitable at 20% with γ=1/2")
	}
	if !SelfishProfitable(0.30, 0.5) {
		t.Error("selfish mining unprofitable at 30% with γ=1/2")
	}
	// Revenue grows with alpha.
	prev := -1.0
	for a := 0.26; a < 0.45; a += 0.02 {
		rev := SelfishRevenue(a, 0.5)
		if rev <= prev {
			t.Errorf("revenue not increasing at α=%.2f", a)
		}
		prev = rev
	}
}

func TestWeightedMicroblocksLowerThreshold(t *testing.T) {
	// §5.1: "If microblocks had carried weight, an attacker could keep
	// secret microblocks and gain advantage". With weightless microblocks
	// (ε=0) the threshold stays at the baseline; any positive weight
	// strictly lowers it.
	base := SelfishThresholdClosedForm(0.5)
	if got := WeightedMicroblockAdvantage(0.5, 0, 10); math.Abs(got-base) > 1e-9 {
		t.Errorf("zero-weight microblocks changed the threshold: %v", got)
	}
	weighted := WeightedMicroblockAdvantage(0.5, 0.05, 10)
	if weighted >= base {
		t.Errorf("weighted microblocks did not lower the threshold: %.4f >= %.4f", weighted, base)
	}
	// Saturation: enough secret weight drives the threshold to 0 (γ→1).
	if got := WeightedMicroblockAdvantage(0.5, 1, 100); got > 1e-9 {
		t.Errorf("saturated advantage should zero the threshold, got %v", got)
	}
}
