// Package incentive reproduces the security analysis of §5.1: the
// closed-form bounds on r_leader — the fraction of a transaction fee the
// serializing leader keeps — that make honest behaviour the most profitable
// strategy, plus Monte-Carlo simulations of the two attacks that induce the
// bounds.
//
// With the attacker bounded by α = 1/4 of mining power the window is
// 37% < r_leader < 43%, so the protocol's 40% choice is incentive
// compatible. Under the optimal-network assumption (no message rushing,
// α = 1/3) the window is empty — the paper's observation that Bitcoin's
// blockchain is more resilient than Bitcoin-NG in that regime.
package incentive

import (
	"math/rand"
)

// DefaultAlpha is the paper's adversary bound: selfish mining caps safe
// mining power at 1/4 of the network (§2).
const DefaultAlpha = 0.25

// OptimalNetworkAlpha is the adversary bound under a zero-latency network
// where rushing is impossible; Bitcoin is believed selfish-mining-safe up to
// almost 1/3 there (§5.1 "Optimal Network Assumption").
const OptimalNetworkAlpha = 1.0 / 3.0

// LowerBound returns the minimum incentive-compatible r_leader for the
// transaction-inclusion attack (§5.1 "Transaction Inclusion"): a leader
// secretly mining on its own unpublished microblock must expect less than
// the honest 40% — α·1 + (1−α)·α·(1−r) < r, i.e. r > α(2−α)/(1+α−α²).
func LowerBound(alpha float64) float64 {
	return alpha * (2 - alpha) / (1 + alpha - alpha*alpha)
}

// UpperBound returns the maximum incentive-compatible r_leader for the
// longest-chain-extension attack (§5.1 "Longest Chain Extension"): a miner
// skipping the transaction's microblock to re-serialize it itself must
// expect less than extending honestly — r + α(1−r) < 1−r, i.e.
// r < (1−α)/(2−α).
func UpperBound(alpha float64) float64 {
	return (1 - alpha) / (2 - alpha)
}

// Window returns the incentive-compatible range of r_leader at the given
// attacker size, and whether it is non-empty.
func Window(alpha float64) (lo, hi float64, ok bool) {
	lo, hi = LowerBound(alpha), UpperBound(alpha)
	return lo, hi, lo < hi
}

// Compatible reports whether rLeader is incentive compatible at alpha.
func Compatible(rLeader, alpha float64) bool {
	lo, hi, ok := Window(alpha)
	return ok && rLeader > lo && rLeader < hi
}

// InclusionAttackEV estimates by Monte-Carlo the attacker's expected fee
// share in the transaction-inclusion attack: with probability α the leader
// mines the next key block on its secret microblock and keeps 100% of the
// fee; otherwise it waits for another miner to serialize the transaction and
// earns the next-leader share (1−r) with probability α.
func InclusionAttackEV(rng *rand.Rand, alpha, rLeader float64, trials int) float64 {
	var total float64
	for i := 0; i < trials; i++ {
		if rng.Float64() < alpha {
			total += 1.0
			continue
		}
		if rng.Float64() < alpha {
			total += 1.0 - rLeader
		}
	}
	return total / float64(trials)
}

// ExtensionAttackEV estimates by Monte-Carlo the attacker's expected fee
// share in the longest-chain-extension attack: the miner ignores the
// transaction's microblock, places the transaction in its own microblock
// (earning r), and with probability α also mines the subsequent key block
// (earning 1−r).
func ExtensionAttackEV(rng *rand.Rand, alpha, rLeader float64, trials int) float64 {
	var total float64
	for i := 0; i < trials; i++ {
		total += rLeader
		if rng.Float64() < alpha {
			total += 1.0 - rLeader
		}
	}
	return total / float64(trials)
}

// HonestInclusionEV is the honest leader's share: r_leader.
func HonestInclusionEV(rLeader float64) float64 { return rLeader }

// HonestExtensionEV is the honest miner's share when extending the
// transaction's microblock: the next-leader share, 1−r.
func HonestExtensionEV(rLeader float64) float64 { return 1 - rLeader }

// TableRow is one α entry of the §5.1 analysis table.
type TableRow struct {
	Alpha      float64
	Lower      float64 // r_leader must exceed this
	Upper      float64 // r_leader must stay below this
	WindowOpen bool    // non-empty range exists
	R40Valid   bool    // the protocol's 40% sits inside the window
}

// Table evaluates the bounds over a grid of attacker sizes.
func Table(alphas []float64) []TableRow {
	rows := make([]TableRow, len(alphas))
	for i, a := range alphas {
		lo, hi, ok := Window(a)
		rows[i] = TableRow{
			Alpha:      a,
			Lower:      lo,
			Upper:      hi,
			WindowOpen: ok,
			R40Valid:   Compatible(0.40, a),
		}
	}
	return rows
}
