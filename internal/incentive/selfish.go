package incentive

import "math"

// Selfish mining analysis (Eyal & Sirer, FC 2014 — the paper's reference
// [21]). Bitcoin-NG inherits Bitcoin's vulnerability profile because
// microblocks carry no weight (§5.1 "Heaviest Chain Extension"): withholding
// strategies operate on PoW blocks only, identically in both protocols. The
// closed-form revenue below quantifies the 1/4 bound both the paper's model
// (§2) and this repository's default adversary assume.

// SelfishRevenue returns the selfish miner's long-run revenue share for
// mining power alpha and tie-race propagation advantage gamma (the fraction
// of honest miners that mine on the attacker's branch during a 1-1 race).
// This is equation (8) of Eyal & Sirer.
func SelfishRevenue(alpha, gamma float64) float64 {
	a, g := alpha, gamma
	num := a*(1-a)*(1-a)*(4*a+g*(1-2*a)) - a*a*a
	den := 1 - a*(1+(2-a)*a)
	if den == 0 {
		return 1
	}
	return num / den
}

// SelfishProfitable reports whether selfish mining beats honest mining
// (revenue share above alpha) for the given parameters.
func SelfishProfitable(alpha, gamma float64) bool {
	return SelfishRevenue(alpha, gamma) > alpha
}

// SelfishThreshold returns the minimum mining power at which selfish mining
// becomes profitable for a given gamma, found by bisection. Eyal & Sirer's
// closed form is (1−γ)/(3−2γ): 1/4 at γ=1/2 (the protocol's random
// tie-breaking), 1/3 at γ=0, 0 at γ=1.
func SelfishThreshold(gamma float64) float64 {
	lo, hi := 0.0, 0.5
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if SelfishProfitable(mid, gamma) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2
}

// SelfishThresholdClosedForm is Eyal & Sirer's analytic threshold
// (1−γ)/(3−2γ), for cross-checking the bisection.
func SelfishThresholdClosedForm(gamma float64) float64 {
	return (1 - gamma) / (3 - 2*gamma)
}

// WeightedMicroblockAdvantage quantifies why microblocks must not carry
// weight (§5.1 "Heaviest Chain Extension"): if each microblock added
// epsilon·(key block work) to the chain weight, a withholding leader with
// k secret microblocks starts every race k·epsilon ahead, which lowers the
// effective selfish-mining threshold. The function returns the attacker
// power at which withholding becomes profitable when each secret microblock
// contributes that advantage, modeled as an increase of the attacker's
// race-win probability gamma toward 1.
func WeightedMicroblockAdvantage(gamma, epsilon float64, secretMicroblocks int) float64 {
	// Secret weight converts ties the attacker would lose into wins; the
	// effective gamma rises with the withheld weight and saturates at 1.
	boost := float64(secretMicroblocks) * epsilon
	g := gamma + (1-gamma)*math.Min(1, boost)
	return SelfishThresholdClosedForm(g)
}
