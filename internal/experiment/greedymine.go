package experiment

import (
	"fmt"
	"io"
	"time"

	"bitcoinng/internal/mining"
	"bitcoinng/internal/strategy"
)

// AttackPoint is one adversarial-sweep measurement: the attacker's revenue
// share at mining power Alpha, once mining honestly (the control) and once
// running the strategy under test. Honest play earns a revenue share that
// tracks α; a Gain above zero at some α means the deviation is profitable —
// the incentive failure the sweep exists to locate.
type AttackPoint struct {
	Alpha  float64
	Honest float64 // attacker revenue share in the honest control run
	Attack float64 // attacker revenue share under the strategy
}

// Gain is the attacker's revenue-share improvement over honest play.
func (p AttackPoint) Gain() float64 { return p.Attack - p.Honest }

// attackConfig is one adversarial execution: Bitcoin-NG in a fee-dominated
// regime (Subsidy 0 — §5.1's incentive analysis concerns fee revenue; a
// dominant subsidy would drown the fee-redistribution signal), the attacker
// at node 0 with mining share α pinned explicitly, and the honest remainder
// following the paper's exponential rank distribution over 1-α.
func attackConfig(scale Scale, alpha float64) Config {
	cfg := DefaultConfig(BitcoinNG, scale.Nodes, scale.Seed)
	cfg.Params.Subsidy = 0
	cfg.Params.MaxBlockSize = 20_000
	cfg.Params.TargetBlockInterval = 12 * time.Second
	cfg.Params.MicroblockInterval = 2 * time.Second
	// Revenue statistics accrue per key block (each epoch settles one fee
	// split), not per microblock, so scale.Blocks is interpreted as the
	// key-block budget and converted to the payload-block stop count the
	// runner uses.
	cfg.TargetBlocks = scale.Blocks *
		int(cfg.Params.TargetBlockInterval/cfg.Params.MicroblockInterval)
	cfg.MaxSimTime = 12 * time.Hour
	cfg.Parallelism = scale.Parallelism

	shares := make([]float64, scale.Nodes)
	shares[0] = alpha
	rest := mining.ExponentialShares(scale.Nodes-1, mining.DefaultExponent)
	for i, s := range rest {
		shares[i+1] = s * (1 - alpha)
	}
	cfg.MiningShares = shares
	return cfg
}

// AttackRevenueSweep measures the attacker-revenue-vs-α curve for a
// registered mining strategy: for each α it runs the honest control and the
// attack on identical networks (same seed, topology, workload, and honest
// power distribution) through the shared Sweep pool, and reads the
// attacker's revenue share from an honest node's final ledger.
func AttackRevenueSweep(scale Scale, strat string, alphas []float64) ([]AttackPoint, error) {
	if _, err := strategy.New(strat); err != nil {
		return nil, fmt.Errorf("attack sweep: %w", err)
	}
	if len(alphas) == 0 {
		alphas = []float64{0.10, 0.20, 0.30, 1.0 / 3, 0.40, 0.45}
	}
	// Honest control and attack run per α, flattened into one pool:
	// [honest α0, attack α0, honest α1, ...].
	cfgs := make([]Config, 0, 2*len(alphas))
	for _, a := range alphas {
		honest := attackConfig(scale, a)
		attack := attackConfig(scale, a)
		attack.Strategies = map[int]string{0: strat}
		cfgs = append(cfgs, honest, attack)
	}
	results, err := Sweep(cfgs, scale.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("attack sweep (%s): %w", strat, err)
	}
	points := make([]AttackPoint, len(alphas))
	for i, a := range alphas {
		points[i] = AttackPoint{
			Alpha:  a,
			Honest: results[2*i].RevenueShare(0),
			Attack: results[2*i+1].RevenueShare(0),
		}
	}
	return points, nil
}

// ProfitabilityThreshold returns the smallest swept α whose attack run beat
// the honest control; ok is false when the deviation never paid off in the
// swept range.
func ProfitabilityThreshold(points []AttackPoint) (alpha float64, ok bool) {
	for _, p := range points {
		if p.Gain() > 0 {
			return p.Alpha, true
		}
	}
	return 0, false
}

// FprintAttackSweep writes the attacker-revenue-vs-α table and the located
// profitability threshold. Everything written is a deterministic function of
// the sweep inputs, so runs can be diffed byte for byte across engines.
func FprintAttackSweep(w io.Writer, strat string, points []AttackPoint) {
	fmt.Fprintf(w, "Adversarial sweep — %s attacker revenue share vs mining power α (fee-only regime)\n", strat)
	fmt.Fprintf(w, "%8s %10s %10s %10s %12s\n", "alpha", "honest", strat, "gain", "profitable")
	for _, p := range points {
		fmt.Fprintf(w, "%8.4f %10.4f %10.4f %+10.4f %12v\n",
			p.Alpha, p.Honest, p.Attack, p.Gain(), p.Gain() > 0)
	}
	if alpha, ok := ProfitabilityThreshold(points); ok {
		fmt.Fprintf(w, "empirical profitability threshold: alpha ≈ %.4f (first swept α where %s beats honest)\n",
			alpha, strat)
	} else {
		fmt.Fprintf(w, "no profitable deviation found in the swept α range\n")
	}
}
