package experiment

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// TestBeyondRAMRunBounded is the storage engine's acceptance soak, the
// beyond-RAM companion of TestStreamingRunBoundedMemory: a long streaming
// run over file-backed stores with chain compaction must hold resident
// memory to the in-flight window — the release slack of the workload plus
// the uncompacted chain tail — while the full chain state accumulates on
// disk. Pre-signing the workload and keeping every block body plus UTXO
// entry resident would cost several hundred MB; the bounded run must stay
// under a budget well below that.
func TestBeyondRAMRunBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("memory soak")
	}
	dir := t.TempDir()
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	cfg := DefaultConfig(BitcoinNG, 4, 6)
	cfg.Offered = 200 // 30m at 200 tx/s: ~360k txs, ~170 MB of chain per node
	cfg.BandwidthBPS = 1e8
	cfg.Params.MicroblockInterval = 2 * time.Second
	cfg.Params.MaxBlockSize = 1_000_000
	cfg.TargetBlocks = 1 << 30
	cfg.MaxSimTime = 30 * time.Minute
	cfg.StoreURL = "file:" + dir
	// Evict bodies and undo records more than ~2 key epochs below the tip;
	// nothing in this fault-free run can reorg anywhere near that deep.
	cfg.CompactDepth = 64
	// Maintenance boundaries pace compaction, store syncs, and checkpoint
	// cycles; once a sim-minute keeps the uncompacted tail to ~30 blocks.
	cfg.InvariantInterval = time.Minute

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Load.Admitted < 300_000 {
		t.Fatalf("admitted only %d txs; soak did not reach streaming scale", res.Load.Admitted)
	}
	if res.Load.Confirmed == 0 {
		t.Fatal("soak confirmed nothing")
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	const budget = 200 << 20
	grew := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if grew > budget {
		t.Fatalf("heap grew %d MB over the soak; beyond-RAM mode is not bounded", grew>>20)
	}

	// The chain state the run produced must actually live on disk — block
	// archives, arrival-time sidecars, UTXO tables/journals/checkpoints —
	// and exceed the resident growth, or "beyond RAM" means nothing.
	var onDisk int64
	err = filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			onDisk += info.Size()
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if onDisk < 100<<20 {
		t.Fatalf("only %d MB of chain state on disk; run never left RAM scale", onDisk>>20)
	}
	if grew > 0 && onDisk < grew {
		t.Errorf("disk state (%d MB) below resident growth (%d MB); compaction is not shedding state",
			onDisk>>20, grew>>20)
	}

	// The store counters must have ridden the quiescent-boundary sampler:
	// file backends journal every delta and page their tables.
	stats := map[string]float64{}
	for _, s := range res.StoreStats {
		stats[s.Name] = s.Max
	}
	for _, name := range []string{"store-journal-records", "store-page-writes", "store-checkpoints"} {
		if stats[name] == 0 {
			t.Errorf("store backpressure series %q never sampled above zero", name)
		}
	}
}
