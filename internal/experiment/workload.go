// Package experiment is the evaluation harness: it assembles an emulated
// network of protocol nodes, drives a shared transaction workload (finite
// and pre-signed, or streamed under a pacing discipline), drives simulated
// mining, and computes the §6 metrics — reproducing the paper's 1000-node
// methodology (§7) at configurable scale. Sweep drivers regenerate each
// evaluation figure (§8).
package experiment

import (
	"fmt"
	"math"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/load"
	"bitcoinng/internal/types"
)

// Workload is the shared artificial transaction source. It is backed by a
// streaming lane-chained generator (internal/load): transactions are signed
// in batches on demand rather than all up front, so a run's offered load is
// no longer bounded by setup time or RAM. NewWorkload retains the classic
// eager shape (all transactions materialized in Txs) for finite runs and
// benchmarks; NewStreamWorkload leaves materialization to the views.
type Workload struct {
	Genesis *types.PowBlock
	// Txs is the eagerly materialized transaction list of a finite
	// NewWorkload; streaming workloads leave it nil and materialize lazily.
	Txs    []*types.Transaction
	TxSize int

	stream *load.Stream
}

// NewWorkload builds count transactions of exactly txSize bytes each (where
// txSize permits), chained per lane from genesis endowments owned by a
// workload key derived from seed. The genesis block funds them and is
// shared by every node.
func NewWorkload(seed int64, count, txSize int) (*Workload, error) {
	w, err := NewStreamWorkload(seed, txSize, 0, int64(count))
	if err != nil {
		return nil, err
	}
	w.Txs = make([]*types.Transaction, count)
	for i := range w.Txs {
		w.Txs[i] = w.stream.Tx(int64(i))
	}
	return w, nil
}

// NewStreamWorkload builds a lazily materialized workload: lanes spend
// chains (0 takes the load.DefaultLanes), maxTxs caps the stream (0 means
// unbounded). Views sign batches on demand as the simulation runs.
func NewStreamWorkload(seed int64, txSize, lanes int, maxTxs int64) (*Workload, error) {
	stream, err := load.NewStream(load.StreamConfig{
		Seed:   seed,
		TxSize: txSize,
		Lanes:  lanes,
		MaxTxs: maxTxs,
	})
	if err != nil {
		return nil, err
	}
	genesis := types.GenesisBlock(types.GenesisSpec{
		TimeNanos: 0,
		Target:    crypto.EasiestTarget,
		Payouts:   stream.GenesisPayouts(),
	})
	stream.Bind(genesis.Txs[0].ID(), 0)
	return &Workload{Genesis: genesis, TxSize: txSize, stream: stream}, nil
}

// Stream exposes the backing generator (release floor, occupancy).
func (w *Workload) Stream() *load.Stream { return w.stream }

// NewView returns a per-node pool view over the shared workload. Views
// implement node.TxPool with one bit of state per transaction, so a
// 1000-node experiment holds one copy of the workload plus 1000 bitmaps.
// The bitmaps are windowed: Compact drops fully confirmed low words once
// the stream's release floor passes them.
func (v *Workload) NewView() *WorkloadView {
	return &WorkloadView{w: v}
}

// WorkloadView is one node's pool over the shared workload. By default it
// offers the whole stream at once (the classic pre-loaded-mempool
// methodology); SetOpenLoop and SetClosedLoop impose a pacing discipline on
// how far into the stream Select may reach.
type WorkloadView struct {
	w *Workload

	// Pacing (at most one active): open loop offers index i at virtual
	// time OfferTime(rate, i); closed loop keeps `window` transactions
	// beyond this view's confirmed count.
	rate   float64
	now    func() int64
	window int64

	// confirmed is a windowed bitset: bit (i - 64*wordBase) of word i/64
	// tracks index i. Indices below 64*wordBase were compacted away and
	// read as confirmed.
	wordBase  int64
	confirmed []uint64
	// prefix is the first index not known confirmed (lazily advanced);
	// count is the total ever confirmed from this view's perspective.
	prefix int64
	count  int64
}

// SetOpenLoop makes Select offer transactions at rate tx/s of virtual time
// (clock reads the owning loop; on the sharded engine that is the node's
// shard-local clock, which is deterministic for the node's events).
func (v *WorkloadView) SetOpenLoop(rate float64, clock func() int64) {
	v.rate, v.now, v.window = rate, clock, 0
}

// SetClosedLoop makes Select keep at most window transactions beyond this
// view's confirmed count outstanding.
func (v *WorkloadView) SetClosedLoop(window int64) {
	v.rate, v.now, v.window = 0, nil, window
}

func (v *WorkloadView) bit(i int64) bool {
	wi := i/64 - v.wordBase
	if wi < 0 {
		return true // compacted below the floor: confirmed by definition
	}
	if wi >= int64(len(v.confirmed)) {
		return false
	}
	return v.confirmed[wi]&(1<<(uint64(i)%64)) != 0
}

// setBit marks i confirmed, reporting whether it was newly set.
func (v *WorkloadView) setBit(i int64) bool {
	wi := i/64 - v.wordBase
	if wi < 0 {
		return false
	}
	for wi >= int64(len(v.confirmed)) {
		v.confirmed = append(v.confirmed, 0)
	}
	mask := uint64(1) << (uint64(i) % 64)
	if v.confirmed[wi]&mask != 0 {
		return false
	}
	v.confirmed[wi] |= mask
	return true
}

// clearBit unmarks i, reporting whether it was set. Indices below the
// compaction floor stay confirmed: reinsertion there is best-effort lost,
// like a real mempool shedding under pressure.
func (v *WorkloadView) clearBit(i int64) bool {
	wi := i/64 - v.wordBase
	if wi < 0 || wi >= int64(len(v.confirmed)) {
		return false
	}
	mask := uint64(1) << (uint64(i) % 64)
	if v.confirmed[wi]&mask == 0 {
		return false
	}
	v.confirmed[wi] &^= mask
	return true
}

// Add implements node.TxPool; the workload is fixed, so loose additions are
// rejected (experiments do not relay transactions, §7).
func (v *WorkloadView) Add(tx *types.Transaction) error {
	return fmt.Errorf("experiment: workload pool is read-only")
}

// limit returns the first index Select may NOT offer yet under the active
// pacing discipline.
func (v *WorkloadView) limit() int64 {
	switch {
	case v.rate > 0:
		var t int64
		if v.now != nil {
			t = v.now()
		}
		return load.OfferedAt(v.rate, t)
	case v.window > 0:
		return v.count + v.window
	}
	return math.MaxInt64
}

// Select implements node.TxPool: unconfirmed transactions in index order up
// to maxBytes, materializing stream batches on demand but never past the
// pacing frontier — the bounded lookahead that keeps resident memory
// proportional to the in-flight window.
func (v *WorkloadView) Select(maxBytes int) []*types.Transaction {
	for v.bit(v.prefix) {
		v.prefix++
	}
	limit := v.limit()
	var out []*types.Transaction
	budget := maxBytes
	for i := v.prefix; i < limit && budget >= v.w.TxSize; i++ {
		if v.bit(i) {
			continue
		}
		tx := v.w.stream.Tx(i)
		if tx == nil {
			break // stream cap (or released slot) reached
		}
		size := tx.WireSize()
		if size > budget {
			break // identical sizes: nothing further fits either
		}
		out = append(out, tx)
		budget -= size
	}
	return out
}

// RemoveConfirmed implements node.TxPool: stream members carry their index
// in the padding stamp, so confirmation needs no pointer-identity map.
func (v *WorkloadView) RemoveConfirmed(txs []*types.Transaction) {
	for _, tx := range txs {
		i, ok := load.TxIndex(tx)
		if !ok {
			continue
		}
		if v.setBit(i) {
			v.count++
			for v.bit(v.prefix) {
				v.prefix++
			}
		}
	}
}

// Reinsert implements node.TxPool.
func (v *WorkloadView) Reinsert(txs []*types.Transaction) {
	for _, tx := range txs {
		i, ok := load.TxIndex(tx)
		if !ok {
			continue
		}
		if v.clearBit(i) {
			v.count--
			if i < v.prefix {
				v.prefix = i
			}
		}
	}
}

// Len implements node.TxPool: materialized transactions this view has not
// confirmed. (Unmaterialized stream tail is offered load, not pool depth.)
func (v *WorkloadView) Len() int {
	n := v.w.stream.Generated() - v.count
	if n < 0 {
		n = 0
	}
	return int(n)
}

// ConfirmedCount returns how many stream transactions this view has seen
// confirmed (monotone except for reorg reinserts).
func (v *WorkloadView) ConfirmedCount() int64 { return v.count }

// ConfirmedPrefix returns the first index this view does not know to be
// confirmed — the release-floor input.
func (v *WorkloadView) ConfirmedPrefix() int64 {
	for v.bit(v.prefix) {
		v.prefix++
	}
	return v.prefix
}

// Compact drops bitset words wholly below floor (the stream's release
// floor, which never passes any view's confirmed prefix minus slack). Word
// contents below the floor are all-ones by construction; dropping them
// keeps view memory proportional to the in-flight window.
func (v *WorkloadView) Compact(floor int64) {
	fw := floor / 64
	if fw <= v.wordBase {
		return
	}
	drop := fw - v.wordBase
	if drop >= int64(len(v.confirmed)) {
		v.confirmed = v.confirmed[:0]
	} else {
		n := copy(v.confirmed, v.confirmed[drop:])
		v.confirmed = v.confirmed[:n]
	}
	v.wordBase = fw
	if v.prefix < fw*64 {
		v.prefix = fw * 64
	}
}
