// Package experiment is the evaluation harness: it assembles an emulated
// network of protocol nodes, pre-loads identical artificial transaction
// workloads, drives simulated mining, and computes the §6 metrics —
// reproducing the paper's 1000-node methodology (§7) at configurable scale.
// Sweep drivers regenerate each evaluation figure (§8).
package experiment

import (
	"fmt"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/sim"
	"bitcoinng/internal/types"
	"bitcoinng/internal/validate"
)

// Workload is the shared artificial transaction set: identical-size,
// independent transactions spending distinct genesis outputs, built once and
// shared (by pointer) across every node's pool — the in-memory analogue of
// the paper's "top up the mempools of all nodes with the same set of
// independent transactions" (§7).
type Workload struct {
	Genesis *types.PowBlock
	Txs     []*types.Transaction
	TxSize  int

	index map[*types.Transaction]int32
}

// workloadValue and workloadFee fix each transaction's economics; the fee
// funds Bitcoin-NG's 40/60 split path.
const (
	workloadValue = types.Amount(10_000)
	workloadFee   = types.Amount(100)
)

// NewWorkload builds count transactions of exactly txSize bytes each (where
// txSize permits), spending genesis outputs owned by a workload key derived
// from seed. The genesis block funds them and is shared by every node.
func NewWorkload(seed int64, count, txSize int) (*Workload, error) {
	rng := sim.NewRand(seed, 0xf00d)
	key, err := crypto.GenerateKey(rng)
	if err != nil {
		return nil, fmt.Errorf("experiment: workload key: %w", err)
	}
	payouts := make([]types.TxOutput, count)
	for i := range payouts {
		payouts[i] = types.TxOutput{Value: workloadValue, To: key.Public().Addr()}
	}
	genesis := types.GenesisBlock(types.GenesisSpec{
		TimeNanos: 0,
		Target:    crypto.EasiestTarget,
		Payouts:   payouts,
	})
	cbID := genesis.Txs[0].ID()

	w := &Workload{
		Genesis: genesis,
		Txs:     make([]*types.Transaction, count),
		TxSize:  txSize,
		index:   make(map[*types.Transaction]int32, count),
	}
	for i := 0; i < count; i++ {
		tx := &types.Transaction{
			Kind:   types.TxRegular,
			Inputs: []types.TxInput{{Prev: types.OutPoint{TxID: cbID, Index: uint32(i)}}},
			Outputs: []types.TxOutput{{
				Value: workloadValue - workloadFee,
				To:    crypto.Address(crypto.HashBytes([]byte{byte(i), byte(i >> 8), byte(i >> 16)})),
			}},
		}
		padTo(tx, txSize)
		w.Txs[i] = tx
		w.index[tx] = int32(i)
	}
	// Sign and prime the derived-value caches (stage-1 stateless work) on
	// the parallel pool: transactions are independent, the barrier below
	// makes the parallelism invisible, and the event loop then only ever
	// sees warm caches.
	pool := validate.SharedPool()
	pool.Run(count, func(i int) { w.Txs[i].SignInput(0, key) })
	pool.WarmTransactions(w.Txs)
	return w, nil
}

// padTo sets tx.Padding so the serialized size hits target exactly where
// possible (off by at most the padding varint's growth otherwise).
// Transactions whose base size already exceeds target are left unpadded.
func padTo(tx *types.Transaction, target int) {
	tx.Padding = nil
	tx.Invalidate()
	base := tx.WireSize() // includes the 1-byte varint of empty padding
	want := target - base // extra bytes needed
	if want <= 0 {
		return
	}
	// n padding bytes cost n + (varintLen(n) - 1) extra. Start from the
	// closed-form guess and correct for varint boundaries.
	n := want
	if want > 0xfc {
		n = want - 2 // 3-byte varint
		if n > 0xffff {
			n = want - 4 // 5-byte varint
		}
	}
	for n > 0 && n+varintLen(n)-1 > want {
		n--
	}
	tx.Padding = make([]byte, n)
	tx.Invalidate()
}

func varintLen(n int) int {
	switch {
	case n < 0xfd:
		return 1
	case n <= 0xffff:
		return 3
	case n <= 0xffffffff:
		return 5
	default:
		return 9
	}
}

// NewView returns a per-node pool view over the shared workload. Views
// implement node.TxPool with one bit of state per transaction, so a
// 1000-node experiment holds one copy of the workload plus 1000 bitmaps.
func (w *Workload) NewView() *WorkloadView {
	return &WorkloadView{
		w:         w,
		confirmed: make([]uint64, (len(w.Txs)+63)/64),
		live:      len(w.Txs),
	}
}

// WorkloadView is one node's pool over the shared workload.
type WorkloadView struct {
	w         *Workload
	confirmed []uint64
	cursor    int32 // first possibly-unconfirmed index
	live      int
}

func (v *WorkloadView) bit(i int32) bool { return v.confirmed[i/64]&(1<<(uint(i)%64)) != 0 }
func (v *WorkloadView) set(i int32)      { v.confirmed[i/64] |= 1 << (uint(i) % 64) }
func (v *WorkloadView) clear(i int32)    { v.confirmed[i/64] &^= 1 << (uint(i) % 64) }

// Add implements node.TxPool; the workload is fixed, so loose additions are
// rejected (experiments do not relay transactions, §7).
func (v *WorkloadView) Add(tx *types.Transaction) error {
	return fmt.Errorf("experiment: workload pool is read-only")
}

// Select implements node.TxPool: unconfirmed transactions in index order up
// to maxBytes.
func (v *WorkloadView) Select(maxBytes int) []*types.Transaction {
	// Advance the cursor over the confirmed prefix.
	n := int32(len(v.w.Txs))
	for v.cursor < n && v.bit(v.cursor) {
		v.cursor++
	}
	var out []*types.Transaction
	budget := maxBytes
	for i := v.cursor; i < n && budget >= v.w.TxSize; i++ {
		if v.bit(i) {
			continue
		}
		tx := v.w.Txs[i]
		size := tx.WireSize()
		if size > budget {
			break // identical sizes: nothing further fits either
		}
		out = append(out, tx)
		budget -= size
	}
	return out
}

// RemoveConfirmed implements node.TxPool using pointer identity: blocks in
// the simulator carry the same transaction objects the workload created.
func (v *WorkloadView) RemoveConfirmed(txs []*types.Transaction) {
	for _, tx := range txs {
		if i, ok := v.w.index[tx]; ok && !v.bit(i) {
			v.set(i)
			v.live--
		}
	}
}

// Reinsert implements node.TxPool.
func (v *WorkloadView) Reinsert(txs []*types.Transaction) {
	for _, tx := range txs {
		if i, ok := v.w.index[tx]; ok && v.bit(i) {
			v.clear(i)
			v.live++
			if i < v.cursor {
				v.cursor = i
			}
		}
	}
}

// Len implements node.TxPool.
func (v *WorkloadView) Len() int { return v.live }
