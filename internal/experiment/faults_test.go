package experiment

import (
	"fmt"
	"testing"
	"time"

	"bitcoinng/internal/invariant"
	"bitcoinng/internal/scenario"
)

// TestRestartRecoversDurablePrefix pins the restart contract end to end: at
// the instant Restart returns, the rebuilt node's chain tree is exactly
// genesis plus its durable prefix (nothing lost, nothing invented — Persist
// fires on every block that enters the tree, so the archive and the tree
// are the same set), the persistence hook is rewired, and catch-up sync is
// already chasing the blocks the network minted while the node was down.
// The run must end with the node converged and the recovery invariants
// (durable-prefix, resync-convergence) clean.
func TestRestartRecoversDurablePrefix(t *testing.T) {
	cfg := DefaultConfig(BitcoinNG, 5, 99)
	cfg.Params.MaxBlockSize = 20_000
	cfg.Params.TargetBlockInterval = 30 * time.Second
	cfg.Params.MicroblockInterval = 5 * time.Second
	cfg.TargetBlocks = 15
	cfg.Invariants = invariant.Defaults(invariant.Options{
		ForkBound: 6, ConvergenceDepth: 2, SettleGrace: time.Minute,
	})
	cfg.InvariantInterval = 15 * time.Second

	var durableAtRestart, treeAtRestart int
	var syncKicked, converged, persistedAfter bool
	var finalState string
	cfg.Scenario = scenario.New(
		scenario.At(2*time.Minute, scenario.Crash(1)),
		scenario.At(4*time.Minute, scenario.Call("restart-and-check", func(rt scenario.Runtime) error {
			r := rt.(*runner)
			durable := r.indexes[1].Hashes()
			durableAtRestart = len(durable)
			if err := rt.Restart(1); err != nil {
				return err
			}
			base := r.clients[1].Base()
			treeAtRestart = base.State.Store().Len()
			for _, h := range durable {
				if !base.State.HasBlock(h) {
					t.Errorf("durable block %s missing from restarted chain", h.Short())
				}
			}
			syncKicked = base.Sync.Active()
			return nil
		})),
		scenario.At(9*time.Minute, scenario.Call("final-check", func(rt scenario.Runtime) error {
			r := rt.(*runner)
			b0, b1 := r.clients[0].Base(), r.clients[1].Base()
			// Microblocks keep flowing every 5s, so exact tip equality would
			// race live production; caught-up means the chains share their
			// prefix and differ only by in-flight blocks.
			lo, hi := b0.State.Tip(), b1.State.Tip()
			if lo.Height > hi.Height {
				lo, hi = hi, lo
			}
			// Pointer identity doesn't hold across two nodes' trees; compare
			// by hash.
			converged = hi.AncestorAtHeight(lo.Height).Hash() == lo.Hash() && hi.Height-lo.Height <= 4
			finalState = fmt.Sprintf("node0 h=%d kh=%d tip=%s | node1 h=%d kh=%d tip=%s sync=%v",
				b0.State.Height(), b0.State.KeyHeight(), b0.State.Tip().Hash().Short(),
				b1.State.Height(), b1.State.KeyHeight(), b1.State.Tip().Hash().Short(),
				b1.Sync.Active())
			persistedAfter = true
			for _, n := range b1.State.MainChain()[1:] {
				if !r.indexes[1].Contains(n.Hash()) {
					persistedAfter = false
				}
			}
			return nil
		})),
	)

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ScenarioErrors) != 0 {
		t.Fatalf("scenario errors: %v", res.ScenarioErrors)
	}
	if durableAtRestart == 0 {
		t.Error("node 1 had nothing durable at restart; the crash fired too early to exercise recovery")
	}
	if got, want := treeAtRestart, durableAtRestart+1; got != want {
		t.Errorf("restarted tree holds %d blocks, want exactly durable prefix + genesis = %d", got, want)
	}
	if !syncKicked {
		t.Error("restart did not kick catch-up sync")
	}
	if !converged {
		t.Errorf("restarted node never caught up to the network tip: %s", finalState)
	}
	if !persistedAfter {
		t.Error("blocks accepted after restart are not being persisted")
	}
	for _, v := range res.InvariantViolations {
		t.Errorf("invariant violation: %s", v)
	}
}

// TestCrashedNodeIsInert: while down, a node mines nothing, sends nothing,
// and receives nothing — and double Crash / Restart-of-a-running-node are
// step errors rather than silent corruption.
func TestCrashedNodeIsInert(t *testing.T) {
	cfg := DefaultConfig(BitcoinNG, 4, 7)
	cfg.Params.MaxBlockSize = 20_000
	cfg.Params.TargetBlockInterval = 30 * time.Second
	cfg.Params.MicroblockInterval = 5 * time.Second
	cfg.TargetBlocks = 10

	var heightAtCrash, heightAtRestart uint64
	cfg.Scenario = scenario.New(
		scenario.At(90*time.Second, scenario.Call("crash", func(rt scenario.Runtime) error {
			r := rt.(*runner)
			if err := rt.Restart(2); err == nil {
				t.Error("Restart of a running node did not error")
			}
			if err := rt.Crash(2); err != nil {
				return err
			}
			if err := rt.Crash(2); err == nil {
				t.Error("double Crash did not error")
			}
			heightAtCrash = r.clients[2].Base().State.Height()
			return nil
		})),
		scenario.At(4*time.Minute, scenario.Call("observe", func(rt scenario.Runtime) error {
			r := rt.(*runner)
			heightAtRestart = r.clients[2].Base().State.Height()
			return rt.Restart(2)
		})),
	)

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ScenarioErrors) != 0 {
		t.Fatalf("scenario errors: %v", res.ScenarioErrors)
	}
	if heightAtRestart != heightAtCrash {
		t.Errorf("crashed node's chain moved from height %d to %d while down",
			heightAtCrash, heightAtRestart)
	}
}
