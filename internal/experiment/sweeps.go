package experiment

import (
	"fmt"
	"time"

	"bitcoinng/internal/metrics"
	"bitcoinng/internal/stats"
)

// PayloadRate is the operational Bitcoin payload throughput the sweeps hold
// constant: 1 MB per 10-minute block ≈ 1667 bytes/second ≈ 3.5 transactions
// of 476 bytes per second (§7).
const PayloadRate = 1_000_000.0 / 600.0

// Scale sets the sweep's execution size. The paper runs 1000 nodes and
// 50–100 blocks per execution; laptop-scale benchmarks default lower and
// keep the same shape.
type Scale struct {
	Nodes  int
	Blocks int
	Seed   int64
	// Parallelism bounds how many sweep points run concurrently (the Sweep
	// worker pool); 0 takes GOMAXPROCS, 1 recovers the sequential driver.
	// Results are identical at any value: every point is an independent,
	// seed-deterministic execution.
	Parallelism int
}

// DefaultScale is the laptop benchmark scale.
func DefaultScale() Scale { return Scale{Nodes: 120, Blocks: 40, Seed: 1} }

// PaperScale matches the paper's testbed dimensions (heavy: minutes of wall
// time and gigabytes of memory per sweep point).
func PaperScale() Scale { return Scale{Nodes: 1000, Blocks: 100, Seed: 1} }

// Fig7Point is one Figure 7 measurement: propagation latency percentiles at
// one block size.
type Fig7Point struct {
	BlockSize int
	P25       time.Duration
	P50       time.Duration
	P75       time.Duration
}

// Figure7 reruns the propagation-vs-size experiment: Bitcoin at sizes
// 20–100 kB with the block interval scaled to hold payload throughput
// constant. The paper observes (and Decker & Wattenhofer measured) a linear
// relation; the returned fit quantifies it over the medians.
func Figure7(scale Scale, sizes []int) ([]Fig7Point, stats.Fit, error) {
	if len(sizes) == 0 {
		sizes = []int{20_000, 40_000, 60_000, 80_000, 100_000}
	}
	cfgs := make([]Config, len(sizes))
	for i, size := range sizes {
		cfg := DefaultConfig(Bitcoin, scale.Nodes, scale.Seed)
		cfg.TargetBlocks = scale.Blocks
		cfg.Params.MaxBlockSize = size
		cfg.Params.TargetBlockInterval = time.Duration(float64(size) / PayloadRate * float64(time.Second))
		cfgs[i] = cfg
	}
	results, err := Sweep(cfgs, scale.Parallelism)
	if err != nil {
		return nil, stats.Fit{}, fmt.Errorf("figure7: %w", err)
	}
	points := make([]Fig7Point, len(sizes))
	for i, res := range results {
		points[i] = Fig7Point{
			BlockSize: sizes[i],
			P25:       res.Report.PropagationP25,
			P50:       res.Report.PropagationP50,
			P75:       res.Report.PropagationP75,
		}
	}
	var xs, ys []float64
	for _, p := range points {
		xs = append(xs, float64(p.BlockSize))
		ys = append(ys, p.P50.Seconds())
	}
	return points, stats.LinearFit(xs, ys), nil
}

// Fig8Point is one Figure 8 column: both protocols measured at one x value
// (block frequency for 8a, block size for 8b).
type Fig8Point struct {
	// X is the sweep coordinate: blocks/sec (8a) or bytes (8b).
	X       float64
	Bitcoin *metrics.Report
	NG      *metrics.Report
}

// Figure8a reruns the frequency sweep (§8.1): payload throughput pinned at
// the operational rate while the block (Bitcoin) or microblock (NG)
// frequency varies; block size compensates. Key blocks stay at one per 100
// seconds, as in the paper.
func Figure8a(scale Scale, freqs []float64) ([]Fig8Point, error) {
	if len(freqs) == 0 {
		freqs = []float64{0.01, 0.02, 0.04, 0.1, 0.2, 0.4, 1.0}
	}
	// Both protocols at every frequency, flattened into one sweep so the
	// pool keeps every core busy: [bitcoin f0, ng f0, bitcoin f1, ...].
	cfgs := make([]Config, 0, 2*len(freqs))
	for _, f := range freqs {
		size := int(PayloadRate / f)
		if size < 600 {
			size = 600 // below one transaction per block nothing serializes
		}
		interval := time.Duration(float64(time.Second) / f)

		bcfg := DefaultConfig(Bitcoin, scale.Nodes, scale.Seed)
		bcfg.TargetBlocks = scale.Blocks
		bcfg.Params.MaxBlockSize = size
		bcfg.Params.TargetBlockInterval = interval

		ncfg := DefaultConfig(BitcoinNG, scale.Nodes, scale.Seed)
		ncfg.TargetBlocks = scale.Blocks
		ncfg.Params.MaxBlockSize = size
		ncfg.Params.TargetBlockInterval = 100 * time.Second
		ncfg.Params.MicroblockInterval = interval
		cfgs = append(cfgs, bcfg, ncfg)
	}
	results, err := Sweep(cfgs, scale.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("figure8a: %w", err)
	}
	points := make([]Fig8Point, len(freqs))
	for i, f := range freqs {
		points[i] = Fig8Point{X: f, Bitcoin: results[2*i].Report, NG: results[2*i+1].Report}
	}
	return points, nil
}

// Figure8b reruns the size sweep (§8.2) at high frequency: Bitcoin blocks
// every 10 s; NG microblocks every 10 s with key blocks every 100 s.
func Figure8b(scale Scale, sizes []int) ([]Fig8Point, error) {
	if len(sizes) == 0 {
		sizes = []int{1280, 2500, 5000, 10_000, 20_000, 40_000, 80_000}
	}
	cfgs := make([]Config, 0, 2*len(sizes))
	for _, size := range sizes {
		bcfg := DefaultConfig(Bitcoin, scale.Nodes, scale.Seed)
		bcfg.TargetBlocks = scale.Blocks
		bcfg.Params.MaxBlockSize = size
		bcfg.Params.TargetBlockInterval = 10 * time.Second

		ncfg := DefaultConfig(BitcoinNG, scale.Nodes, scale.Seed)
		ncfg.TargetBlocks = scale.Blocks
		ncfg.Params.MaxBlockSize = size
		ncfg.Params.TargetBlockInterval = 100 * time.Second
		ncfg.Params.MicroblockInterval = 10 * time.Second
		cfgs = append(cfgs, bcfg, ncfg)
	}
	results, err := Sweep(cfgs, scale.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("figure8b: %w", err)
	}
	points := make([]Fig8Point, len(sizes))
	for i, size := range sizes {
		points[i] = Fig8Point{X: float64(size), Bitcoin: results[2*i].Report, NG: results[2*i+1].Report}
	}
	return points, nil
}

// TieBreakAblation compares random vs first-seen fork-choice tie-breaking
// for Bitcoin at high frequency (DESIGN.md §5); the paper's footnote 2
// recommends random tie-breaking after [21].
func TieBreakAblation(scale Scale) (random, firstSeen *metrics.Report, err error) {
	mk := func(rand bool) Config {
		cfg := DefaultConfig(Bitcoin, scale.Nodes, scale.Seed)
		cfg.TargetBlocks = scale.Blocks
		cfg.Params.MaxBlockSize = 20_000
		cfg.Params.TargetBlockInterval = 10 * time.Second
		cfg.Params.RandomTieBreak = rand
		return cfg
	}
	results, err := Sweep([]Config{mk(true), mk(false)}, scale.Parallelism)
	if err != nil {
		return nil, nil, fmt.Errorf("tiebreak ablation: %w", err)
	}
	return results[0].Report, results[1].Report, nil
}

// KeyBlockIntervalAblation sweeps NG's key-block interval (DESIGN.md §5):
// §5.2 argues key-block frequency trades censorship resistance against
// key-block fork rate while microblocks keep serializing regardless.
func KeyBlockIntervalAblation(scale Scale, intervals []time.Duration) ([]Fig8Point, error) {
	if len(intervals) == 0 {
		intervals = []time.Duration{25 * time.Second, 50 * time.Second, 100 * time.Second, 200 * time.Second}
	}
	cfgs := make([]Config, len(intervals))
	for i, ki := range intervals {
		cfg := DefaultConfig(BitcoinNG, scale.Nodes, scale.Seed)
		cfg.TargetBlocks = scale.Blocks
		cfg.Params.MaxBlockSize = 20_000
		cfg.Params.TargetBlockInterval = ki
		cfg.Params.MicroblockInterval = 10 * time.Second
		cfgs[i] = cfg
	}
	results, err := Sweep(cfgs, scale.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("keyblock ablation: %w", err)
	}
	points := make([]Fig8Point, len(intervals))
	for i, ki := range intervals {
		points[i] = Fig8Point{X: ki.Seconds(), NG: results[i].Report}
	}
	return points, nil
}
