package experiment

import (
	"strings"
	"testing"
	"time"

	"bitcoinng/internal/scenario"
	"bitcoinng/internal/strategy"
)

// attackScale is small enough for the unit-test budget while still settling
// several fee splits per run.
func attackScale(parallelism int) Scale {
	return Scale{Nodes: 16, Blocks: 6, Seed: 5, Parallelism: parallelism}
}

// TestAttackSweepDeterministicAcrossEngines is the figure's acceptance gate
// in miniature: the formatted greedymine table must be byte-identical
// between the sequential engine and the sharded engine (which also runs the
// sweep pool concurrently).
func TestAttackSweepDeterministicAcrossEngines(t *testing.T) {
	alphas := []float64{0.2, 0.45}
	render := func(par int) string {
		points, err := AttackRevenueSweep(attackScale(par), strategy.GreedyMineName, alphas)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		var sb strings.Builder
		FprintAttackSweep(&sb, strategy.GreedyMineName, points)
		return sb.String()
	}
	seq := render(1)
	par := render(2)
	if seq != par {
		t.Errorf("attack sweep diverged across engines:\n--- sequential\n%s--- sharded\n%s", seq, par)
	}
	if !strings.Contains(seq, "greedymine") {
		t.Errorf("malformed sweep output:\n%s", seq)
	}
}

// TestAttackSweepShares: revenue shares are well-formed probabilities and
// the honest control distributes revenue at every α.
func TestAttackSweepShares(t *testing.T) {
	points, err := AttackRevenueSweep(attackScale(1), strategy.GreedyMineName, []float64{0.3})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Honest < 0 || p.Honest > 1 || p.Attack < 0 || p.Attack > 1 {
			t.Errorf("share out of range: %+v", p)
		}
	}
}

func TestAttackSweepUnknownStrategy(t *testing.T) {
	if _, err := AttackRevenueSweep(attackScale(1), "nope", nil); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestProfitabilityThreshold(t *testing.T) {
	points := []AttackPoint{
		{Alpha: 0.1, Honest: 0.1, Attack: 0.08},
		{Alpha: 0.3, Honest: 0.3, Attack: 0.35},
		{Alpha: 0.4, Honest: 0.4, Attack: 0.5},
	}
	if a, ok := ProfitabilityThreshold(points); !ok || a != 0.3 {
		t.Errorf("threshold = (%v, %v), want (0.3, true)", a, ok)
	}
	if _, ok := ProfitabilityThreshold(points[:1]); ok {
		t.Error("threshold found where no point is profitable")
	}
}

// TestExperimentStrategyValidation: bad assignments fail at build time.
func TestExperimentStrategyValidation(t *testing.T) {
	cfg := DefaultConfig(BitcoinNG, 4, 1)
	cfg.TargetBlocks = 1
	cfg.Strategies = map[int]string{9: "honest"}
	if _, err := Run(cfg); err == nil {
		t.Error("out-of-range strategy node accepted")
	}
	cfg.Strategies = map[int]string{0: "nope"}
	if _, err := Run(cfg); err == nil {
		t.Error("unknown strategy accepted")
	}
	cfg.Strategies = nil
	cfg.MiningShares = []float64{1, 2} // wrong length
	if _, err := Run(cfg); err == nil {
		t.Error("mis-sized mining shares accepted")
	}
}

// TestExperimentAdoptStrategyMidRun: the scenario step switches a node's
// strategy inside the measured harness, on both engines.
func TestExperimentAdoptStrategyMidRun(t *testing.T) {
	for _, par := range []int{1, 2} {
		cfg := DefaultConfig(BitcoinNG, 12, 3)
		cfg.TargetBlocks = 8
		cfg.Params.TargetBlockInterval = 30 * time.Second
		cfg.Params.MicroblockInterval = 5 * time.Second
		cfg.Parallelism = par
		cfg.Scenario = scenario.New(
			scenario.At(20*time.Second, scenario.AdoptStrategy(0, strategy.GreedyMineName)),
		)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if len(res.ScenarioErrors) > 0 {
			t.Errorf("parallelism %d scenario errors: %v", par, res.ScenarioErrors)
		}

		// Unknown strategies surface as step errors, not harness failures.
		cfg.Scenario = scenario.New(scenario.At(20*time.Second, scenario.AdoptStrategy(0, "nope")))
		res, err = Run(cfg)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if len(res.ScenarioErrors) != 1 {
			t.Errorf("parallelism %d: scenario errors = %v, want the rejected strategy", par, res.ScenarioErrors)
		}
	}
}
