package experiment

import (
	"fmt"
	"io"
	"time"

	"bitcoinng/internal/load"
)

// ThroughputPoint is one offered-load column: both protocols blasted at the
// same open-loop rate.
type ThroughputPoint struct {
	Rate    float64 // offered load, tx/s of virtual time
	Bitcoin *load.Report
	NG      *load.Report
}

// ThroughputCurve is the sustained-load figure: confirmed throughput and
// confirmation latency as offered load rises, with the saturation knee and
// ceiling per protocol. The paper's claim under test: Bitcoin saturates at
// the block-interval-bound rate (~3.5 tx/s at operational parameters) while
// NG's ceiling tracks the processing/bandwidth limit (§8).
type ThroughputCurve struct {
	Points []ThroughputPoint
	// Knee is the highest offered rate the protocol still served (confirmed
	// >= 90% of offered); 0 when it saturated below the lowest rate.
	BitcoinKnee, NGKnee float64
	// Ceiling is the highest confirmed tx/s observed anywhere on the curve.
	BitcoinCeiling, NGCeiling float64
}

// kneeFrac is the served fraction under which a point counts as saturated.
const kneeFrac = 0.9

// ThroughputSweep drives both protocols at each offered rate for the given
// virtual duration (default 15 minutes) and returns the resulting curve.
// Paper-faithful consensus parameters (100 s key blocks, 10 s microblocks,
// Bitcoin's 600 s blocks, 1 MB blocks) but with the network model lifted to
// 1 Mbit/s: the default 100 kbit/s caps relay at ~26 tx/s and would measure
// the pipe, not the protocols' serialization ceiling.
func ThroughputSweep(scale Scale, rates []float64, duration time.Duration) (*ThroughputCurve, error) {
	if len(rates) == 0 {
		rates = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
	}
	if duration <= 0 {
		duration = 15 * time.Minute
	}
	cfgs := make([]Config, 0, 2*len(rates))
	for _, rate := range rates {
		bcfg := DefaultConfig(Bitcoin, scale.Nodes, scale.Seed)
		bcfg.Params.TargetBlockInterval = 600 * time.Second

		ncfg := DefaultConfig(BitcoinNG, scale.Nodes, scale.Seed)
		ncfg.Params.TargetBlockInterval = 100 * time.Second
		ncfg.Params.MicroblockInterval = 10 * time.Second

		for _, cfg := range []*Config{&bcfg, &ncfg} {
			cfg.Offered = rate
			cfg.BandwidthBPS = 1_000_000
			// The run is time-bound: the block-count stop rule must never
			// fire first or points would measure different intervals.
			cfg.TargetBlocks = 1 << 30
			cfg.MaxSimTime = duration
			cfg.Grace = 30 * time.Second
		}
		cfgs = append(cfgs, bcfg, ncfg)
	}
	results, err := Sweep(cfgs, scale.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("throughput sweep: %w", err)
	}
	curve := &ThroughputCurve{Points: make([]ThroughputPoint, len(rates))}
	for i, rate := range rates {
		p := ThroughputPoint{
			Rate:    rate,
			Bitcoin: results[2*i].Load,
			NG:      results[2*i+1].Load,
		}
		curve.Points[i] = p
		if g := p.Bitcoin.ConfirmedPerSec(); g > curve.BitcoinCeiling {
			curve.BitcoinCeiling = g
		}
		if g := p.NG.ConfirmedPerSec(); g > curve.NGCeiling {
			curve.NGCeiling = g
		}
		if p.Bitcoin.ConfirmedPerSec() >= kneeFrac*rate {
			curve.BitcoinKnee = rate
		}
		if p.NG.ConfirmedPerSec() >= kneeFrac*rate {
			curve.NGKnee = rate
		}
	}
	return curve, nil
}

// Fprint renders the curve as a deterministic table (CI diffs it byte for
// byte across engine parallelism).
func (c *ThroughputCurve) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%10s | %12s %10s | %12s %10s\n",
		"offered/s", "btc conf/s", "btc p50", "ng conf/s", "ng p50")
	for _, p := range c.Points {
		fmt.Fprintf(w, "%10.1f | %12.2f %10v | %12.2f %10v\n",
			p.Rate,
			p.Bitcoin.ConfirmedPerSec(), p.Bitcoin.P50,
			p.NG.ConfirmedPerSec(), p.NG.P50)
	}
	fmt.Fprintf(w, "knee: bitcoin=%.1f/s ng=%.1f/s  ceiling: bitcoin=%.2f/s ng=%.2f/s\n",
		c.BitcoinKnee, c.NGKnee, c.BitcoinCeiling, c.NGCeiling)
}
