package experiment

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Sweep runs independent experiment configurations concurrently under a
// bounded worker pool and returns their results in input order. Each
// configuration owns its loop, network, workload, and collector, so sweep
// points are embarrassingly parallel; only the content-addressed connect
// cache is shared, and it is both concurrency-safe and result-neutral.
//
// parallelism bounds the number of concurrently executing points; 0 takes
// GOMAXPROCS. Configurations that leave Parallelism unset (0) are run on the
// single-threaded engine: with the pool already saturating the cores,
// intra-run sharding would only oversubscribe them. An explicitly set
// Parallelism is honored.
//
// On failures the returned slice still carries every successful result (nil
// at failed indices) and the error joins every failure, each wrapped with
// its point index.
func Sweep(cfgs []Config, parallelism int) ([]*Result, error) {
	if len(cfgs) == 0 {
		return nil, nil
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(cfgs) {
		parallelism = len(cfgs)
	}

	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(parallelism)
	for w := 0; w < parallelism; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cfgs) {
					return
				}
				cfg := cfgs[i]
				if cfg.Parallelism == 0 {
					cfg.Parallelism = 1
				}
				res, err := Run(cfg)
				if err != nil {
					errs[i] = fmt.Errorf("sweep point %d: %w", i, err)
					continue
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	return results, errors.Join(errs...)
}
