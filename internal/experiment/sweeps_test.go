package experiment

import (
	"testing"
	"time"
)

// tinyScale keeps sweep tests fast while preserving directions.
func tinyScale() Scale { return Scale{Nodes: 40, Blocks: 12, Seed: 2} }

// TestFigure7Linearity checks the Figure 7 claim at test scale: median
// propagation latency grows linearly with block size (the paper compares
// against Decker & Wattenhofer's measured linearity).
func TestFigure7Linearity(t *testing.T) {
	points, fit, err := Figure7(tinyScale(), []int{20_000, 50_000, 80_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].P50 <= points[i-1].P50 {
			t.Errorf("median propagation not increasing with size: %v", points)
		}
		if points[i].P25 > points[i].P50 || points[i].P50 > points[i].P75 {
			t.Errorf("percentiles out of order at %d bytes", points[i].BlockSize)
		}
	}
	if fit.Slope <= 0 {
		t.Errorf("fit slope %v, want positive", fit.Slope)
	}
	if fit.R2 < 0.98 {
		t.Errorf("R² = %.4f, propagation should be strongly linear in size", fit.R2)
	}
}

// TestFigure8aDirections checks the §8.1 headline at test scale: at high
// frequency Bitcoin's mining power utilization is materially below
// Bitcoin-NG's, and NG's consensus delay is below Bitcoin's.
func TestFigure8aDirections(t *testing.T) {
	points, err := Figure8a(tinyScale(), []float64{0.05, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	high := points[len(points)-1]
	if high.Bitcoin.MiningPowerUtilization >= high.NG.MiningPowerUtilization {
		t.Errorf("at 0.5 Hz: bitcoin MPU %.3f should be below NG's %.3f",
			high.Bitcoin.MiningPowerUtilization, high.NG.MiningPowerUtilization)
	}
	if high.NG.ConsensusDelay >= high.Bitcoin.ConsensusDelay {
		t.Errorf("at 0.5 Hz: NG consensus %v should beat bitcoin's %v",
			high.NG.ConsensusDelay, high.Bitcoin.ConsensusDelay)
	}
	// NG's consensus delay falls as microblock frequency rises.
	if points[1].NG.ConsensusDelay >= points[0].NG.ConsensusDelay {
		t.Errorf("NG consensus delay did not improve with frequency: %v -> %v",
			points[0].NG.ConsensusDelay, points[1].NG.ConsensusDelay)
	}
}

// TestFigure8bDirections checks the §8.2 headline at test scale: growing
// blocks at high frequency costs Bitcoin mining power while NG holds 1.0,
// and NG's throughput scales with size.
func TestFigure8bDirections(t *testing.T) {
	points, err := Figure8b(tinyScale(), []int{5_000, 60_000})
	if err != nil {
		t.Fatal(err)
	}
	small, big := points[0], points[1]
	if big.Bitcoin.MiningPowerUtilization >= small.Bitcoin.MiningPowerUtilization {
		t.Errorf("bitcoin MPU did not degrade with size: %.3f -> %.3f",
			small.Bitcoin.MiningPowerUtilization, big.Bitcoin.MiningPowerUtilization)
	}
	if big.NG.MiningPowerUtilization < 0.95 {
		t.Errorf("NG MPU fell to %.3f under big microblocks", big.NG.MiningPowerUtilization)
	}
	if big.NG.TxFrequency <= small.NG.TxFrequency {
		t.Errorf("NG throughput did not scale with size: %.2f -> %.2f",
			small.NG.TxFrequency, big.NG.TxFrequency)
	}
}

func TestAblationDrivers(t *testing.T) {
	random, firstSeen, err := TieBreakAblation(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if random.PowBlocks == 0 || firstSeen.PowBlocks == 0 {
		t.Error("ablation runs produced no blocks")
	}
	points, err := KeyBlockIntervalAblation(tinyScale(), []time.Duration{20 * time.Second, 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	// Microblock-rate-bound metrics stay in the same ballpark across key
	// intervals (§5.2: key frequency trades fork exposure, not throughput).
	a, b := points[0].NG.TxFrequency, points[1].NG.TxFrequency
	if a == 0 || b == 0 {
		t.Fatalf("no throughput measured: %v %v", a, b)
	}
	ratio := a / b
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("throughput should not depend strongly on key interval: %.2f vs %.2f", a, b)
	}
}

func TestFormatters(t *testing.T) {
	// Smoke the printers over a real (tiny) run so format regressions fail
	// loudly rather than garbling benchmark output.
	cfg := DefaultConfig(Bitcoin, 20, 1)
	cfg.TargetBlocks = 5
	cfg.Params.MaxBlockSize = 10_000
	cfg.Params.TargetBlockInterval = 20 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb stringsBuilder
	FprintReport(&sb, "test", res.Report)
	FprintRunStats(&sb, res)
	FprintFig8(&sb, "t", "x", []Fig8Point{{X: 1, Bitcoin: res.Report}})
	if sb.Len() == 0 {
		t.Error("formatters wrote nothing")
	}
}

// stringsBuilder avoids importing strings just for the smoke test.
type stringsBuilder struct{ buf []byte }

func (s *stringsBuilder) Write(p []byte) (int, error) {
	s.buf = append(s.buf, p...)
	return len(p), nil
}
func (s *stringsBuilder) Len() int { return len(s.buf) }
