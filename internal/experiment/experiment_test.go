package experiment

import (
	"testing"
	"time"

	"bitcoinng/internal/types"
)

func TestWorkloadConstruction(t *testing.T) {
	w, err := NewWorkload(1, 100, 476)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Txs) != 100 {
		t.Fatalf("txs = %d", len(w.Txs))
	}
	for i, tx := range w.Txs {
		if tx.WireSize() != 476 {
			t.Fatalf("tx %d size %d, want 476", i, tx.WireSize())
		}
		if err := tx.CheckWellFormed(); err != nil {
			t.Fatalf("tx %d invalid: %v", i, err)
		}
	}
	// Deterministic: same seed, same IDs.
	w2, err := NewWorkload(1, 100, 476)
	if err != nil {
		t.Fatal(err)
	}
	if w.Txs[42].ID() != w2.Txs[42].ID() {
		t.Error("workload not deterministic")
	}
	if w.Genesis.Hash() != w2.Genesis.Hash() {
		t.Error("genesis not deterministic")
	}
}

func TestWorkloadViewPoolSemantics(t *testing.T) {
	w, err := NewWorkload(2, 10, 476)
	if err != nil {
		t.Fatal(err)
	}
	v := w.NewView()
	if v.Len() != 10 {
		t.Fatalf("len = %d", v.Len())
	}
	// Selection respects the budget and order.
	sel := v.Select(3 * 476)
	if len(sel) != 3 || sel[0] != w.Txs[0] {
		t.Fatalf("select = %d txs", len(sel))
	}
	// Confirm the first two; selection moves on.
	v.RemoveConfirmed(w.Txs[:2])
	if v.Len() != 8 {
		t.Fatalf("len after confirm = %d", v.Len())
	}
	sel = v.Select(476)
	if len(sel) != 1 || sel[0] != w.Txs[2] {
		t.Fatal("selection did not skip confirmed prefix")
	}
	// Double-confirm is idempotent.
	v.RemoveConfirmed(w.Txs[:2])
	if v.Len() != 8 {
		t.Error("double confirm changed length")
	}
	// Reorg reinserts.
	v.Reinsert(w.Txs[:1])
	if v.Len() != 9 {
		t.Fatalf("len after reinsert = %d", v.Len())
	}
	sel = v.Select(476)
	if len(sel) != 1 || sel[0] != w.Txs[0] {
		t.Error("reinserted tx not selectable")
	}
	// Foreign transactions are ignored, additions rejected.
	foreign := &types.Transaction{Kind: types.TxRegular}
	v.RemoveConfirmed([]*types.Transaction{foreign})
	if v.Len() != 9 {
		t.Error("foreign confirm changed view")
	}
	if err := v.Add(foreign); err == nil {
		t.Error("read-only pool accepted Add")
	}
}

func smallScale() Scale { return Scale{Nodes: 30, Blocks: 15, Seed: 7} }

func TestRunBitcoinSmall(t *testing.T) {
	cfg := DefaultConfig(Bitcoin, 30, 7)
	cfg.TargetBlocks = 15
	cfg.Params.MaxBlockSize = 20_000
	cfg.Params.TargetBlockInterval = 60 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	if r.PowBlocks < 15 {
		t.Errorf("generated %d pow blocks, want >= 15", r.PowBlocks)
	}
	if r.MiningPowerUtilization < 0.85 {
		t.Errorf("MPU = %.3f at 60s intervals, want near 1", r.MiningPowerUtilization)
	}
	if r.TxFrequency <= 0 {
		t.Error("no transactions serialized")
	}
	if r.ConsensusDelay <= 0 {
		t.Error("consensus delay not measured")
	}
	if res.Events == 0 || res.SimTime == 0 {
		t.Error("run accounting empty")
	}
}

func TestRunBitcoinNGSmall(t *testing.T) {
	cfg := DefaultConfig(BitcoinNG, 30, 7)
	cfg.TargetBlocks = 20
	cfg.Params.MaxBlockSize = 20_000
	cfg.Params.TargetBlockInterval = 60 * time.Second
	cfg.Params.MicroblockInterval = 5 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	if r.Blocks <= r.PowBlocks {
		t.Error("no microblocks generated")
	}
	// Microblock forks don't count against MPU (§8 "Metrics").
	if r.MiningPowerUtilization < 0.8 {
		t.Errorf("NG MPU = %.3f", r.MiningPowerUtilization)
	}
	if r.TxFrequency <= 0 {
		t.Error("no transactions serialized")
	}
}

func TestRunGHOSTSmall(t *testing.T) {
	cfg := DefaultConfig(GHOST, 20, 7)
	cfg.TargetBlocks = 10
	cfg.Params.MaxBlockSize = 10_000
	cfg.Params.TargetBlockInterval = 30 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.PowBlocks < 10 {
		t.Errorf("generated %d blocks", res.Report.PowBlocks)
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	mk := func() *Result {
		cfg := DefaultConfig(Bitcoin, 20, 3)
		cfg.TargetBlocks = 8
		cfg.Params.MaxBlockSize = 10_000
		cfg.Params.TargetBlockInterval = 30 * time.Second
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	if a.Events != b.Events {
		t.Errorf("event counts differ: %d vs %d", a.Events, b.Events)
	}
	if a.Report.Blocks != b.Report.Blocks ||
		a.Report.ConsensusDelay != b.Report.ConsensusDelay ||
		a.Report.Fairness != b.Report.Fairness {
		t.Errorf("reports differ for identical seeds:\n%+v\n%+v", a.Report, b.Report)
	}
}

// TestHighFrequencyDegradesBitcoinNotNG is the paper's headline claim (§8.1)
// at test scale: pushing Bitcoin's block interval down wrecks its mining
// power utilization while Bitcoin-NG, whose contention is confined to key
// blocks, stays near optimal.
func TestHighFrequencyDegradesBitcoinNotNG(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run comparison")
	}
	btc := DefaultConfig(Bitcoin, 40, 11)
	btc.TargetBlocks = 40
	btc.Params.MaxBlockSize = 5_000
	btc.Params.TargetBlockInterval = 2 * time.Second // far below propagation
	bres, err := Run(btc)
	if err != nil {
		t.Fatal(err)
	}

	ng := DefaultConfig(BitcoinNG, 40, 11)
	ng.TargetBlocks = 40
	ng.Params.MaxBlockSize = 5_000
	ng.Params.TargetBlockInterval = 100 * time.Second
	ng.Params.MicroblockInterval = 2 * time.Second
	nres, err := Run(ng)
	if err != nil {
		t.Fatal(err)
	}

	if bres.Report.MiningPowerUtilization > 0.9 {
		t.Errorf("bitcoin MPU = %.3f at 2s blocks; expected heavy fork loss",
			bres.Report.MiningPowerUtilization)
	}
	if nres.Report.MiningPowerUtilization < 0.9 {
		t.Errorf("NG MPU = %.3f; microblock frequency must not cost mining power",
			nres.Report.MiningPowerUtilization)
	}
	if nres.Report.MiningPowerUtilization <= bres.Report.MiningPowerUtilization {
		t.Errorf("NG MPU (%.3f) should beat Bitcoin's (%.3f) at high frequency",
			nres.Report.MiningPowerUtilization, bres.Report.MiningPowerUtilization)
	}
}
