package experiment

import (
	"fmt"
	"runtime"
	"time"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/invariant"
	"bitcoinng/internal/load"
	"bitcoinng/internal/metrics"
	"bitcoinng/internal/mining"
	"bitcoinng/internal/node"
	"bitcoinng/internal/protocol"
	"bitcoinng/internal/scenario"
	"bitcoinng/internal/sim"
	"bitcoinng/internal/simnet"
	"bitcoinng/internal/store"
	"bitcoinng/internal/strategy"
	"bitcoinng/internal/types"
	"bitcoinng/internal/utxo"
	"bitcoinng/internal/validate"
)

// Protocol selects which client the experiment runs; any name registered in
// internal/protocol is valid.
type Protocol = protocol.Protocol

// Protocols under evaluation.
const (
	Bitcoin   = protocol.Bitcoin
	BitcoinNG = protocol.BitcoinNG
	GHOST     = protocol.GHOST
)

// Config describes one experiment execution.
type Config struct {
	Protocol Protocol
	// Nodes is the network size; the paper runs 1000 (15% of the
	// operational Bitcoin network of the time).
	Nodes int
	// Seed makes the run reproducible: topology, latencies, mining, and
	// tie-breaking all derive from it.
	Seed int64
	// Params are the consensus parameters under test. MaxBlockSize is the
	// experiment's block (or microblock) size; TargetBlockInterval the
	// PoW/key block interval; MicroblockInterval the NG microblock rate.
	Params types.Params
	// TxSize is the identical artificial transaction size; the default 476
	// bytes gives Bitcoin's operational 3.5 tx/s at 1 MB per 10 minutes
	// (§7 "No Transaction Propagation").
	TxSize int
	// WorkloadCount caps the workload at this many transactions; zero sizes
	// it automatically from TargetBlocks and MaxBlockSize (or leaves the
	// stream unbounded when a pacing discipline below is active).
	WorkloadCount int
	// Offered, when > 0, switches the workload to open-loop pacing: every
	// node's view offers transactions at this rate (tx/s of virtual time)
	// instead of exposing the whole workload at once. The stream then signs
	// batches on demand and releases confirmed slots, so offered load is
	// unbounded by RAM.
	Offered float64
	// ClosedLoopWindow, when > 0 (and Offered is 0), switches the workload
	// to closed-loop pacing: each view keeps at most this many transactions
	// beyond its confirmed count outstanding.
	ClosedLoopWindow int
	// StreamLanes overrides the workload's lane count (chain parallelism of
	// the streaming generator); zero takes load.DefaultLanes.
	StreamLanes int
	// TargetBlocks stops the run once this many payload blocks (Bitcoin
	// blocks / NG microblocks) have been generated; the paper uses 50-100.
	TargetBlocks int
	// Grace lets the tail of the run propagate before measuring.
	Grace time.Duration
	// MaxSimTime hard-stops a run regardless of block count.
	MaxSimTime time.Duration
	// MiningExponent shapes the power distribution (Figure 6); the
	// paper's fit is 0.27.
	MiningExponent float64
	// BandwidthBPS and Latency override the network model; zero/nil keep
	// the paper's 100 kbit/s and the default latency histogram.
	BandwidthBPS float64
	Latency      simnet.LatencyModel
	// Censors lists node indices that, while leading, publish empty
	// microblocks — the §5.2 "Censorship Resistance" DoS behaviour.
	Censors []int
	// Strategies assigns registered mining strategies (internal/strategy)
	// by node index; unlisted nodes run honest. The adversarial sweeps set
	// e.g. {0: "greedymine"}.
	Strategies map[int]string
	// MiningShares fixes each node's fraction of the network's mining
	// power explicitly (normalized over the sum); nil draws the paper's
	// exponential rank distribution shaped by MiningExponent. The
	// adversarial sweeps pin the attacker's α this way.
	MiningShares []float64
	// Scenario, if set, is armed at run start: each step fires at its
	// offset from virtual time zero. The run does not stop before the
	// scenario's last step, even once TargetBlocks is reached.
	Scenario *scenario.Scenario
	// DisableConnectCache turns off the shared connect cache, making every
	// node re-validate every block locally — the pre-cache behaviour, kept
	// for determinism cross-checks and micro-benchmarks. Reports are
	// byte-identical either way.
	DisableConnectCache bool
	// Parallelism selects the number of event-loop shards the run executes
	// on: nodes are partitioned across that many goroutines under the
	// conservative windowed engine (sim.ShardedLoop). 0 takes GOMAXPROCS; 1
	// recovers the classic single-threaded loop. Reports are byte-identical
	// at any value for the same seed (the CI determinism gate enforces it).
	Parallelism int
	// Invariants, when non-empty, are checked online against every node's
	// chain state: at every InvariantInterval of virtual time (evaluated at
	// the runner's slice boundaries, where both engines are quiescent) and
	// once more at run end. Violations land in Result.InvariantViolations;
	// they do not stop the run. Checks are read-only and engine-agnostic, so
	// results stay byte-identical at any Parallelism.
	Invariants []invariant.Invariant
	// InvariantInterval spaces the online checks; zero takes the key-block
	// interval.
	InvariantInterval time.Duration
	// StoreURL selects every node's storage backend via the internal/store
	// locator syntax: "" or "mem:" for the RAM-bound fast path, "file:<dir>"
	// for file backends rooted at dir, "file:" for a throwaway temporary
	// root removed at run end. Reports are byte-identical across backends
	// for the same (config, seed) — the chaos differential enforces it.
	StoreURL string
	// CompactDepth, when > 0, bounds resident chain state for long runs: at
	// every maintenance boundary each node evicts archived block bodies and
	// drops undo records buried at least this deep below its tip (bodies
	// reload transparently from the chain index). A reorg deeper than
	// CompactDepth panics, so pick it well above anything the scenario can
	// cause. With a file StoreURL this is the beyond-RAM mode: resident
	// state stays bounded while the chain grows on disk.
	CompactDepth uint64
}

// DefaultConfig is a paper-faithful configuration at the given scale.
func DefaultConfig(protocol Protocol, nodes int, seed int64) Config {
	params := types.DefaultParams()
	params.RetargetWindow = 0 // fixed difficulty: the scheduler sets rates
	params.CoinbaseMaturity = 100
	return Config{
		Protocol:       protocol,
		Nodes:          nodes,
		Seed:           seed,
		Params:         params,
		TxSize:         476,
		TargetBlocks:   60,
		Grace:          30 * time.Second,
		MaxSimTime:     6 * time.Hour,
		MiningExponent: mining.DefaultExponent,
	}
}

// Result bundles an execution's outputs.
type Result struct {
	Config   Config
	Report   *metrics.Report
	NetStats simnet.Stats
	// Events is the number of simulation events executed.
	Events uint64
	// WallTime is the host time the simulation took.
	WallTime time.Duration
	// SimTime is the virtual duration of the run.
	SimTime time.Duration
	// ScenarioErrors collects failures from scheduled scenario steps, in
	// firing order.
	ScenarioErrors []error
	// InvariantViolations collects online invariant failures (when
	// Config.Invariants is set), deduplicated by (invariant, node) in
	// first-observation order.
	InvariantViolations []invariant.Violation
	// Load summarizes offered vs confirmed throughput and confirmation
	// latency when a pacing discipline was active (Offered or
	// ClosedLoopWindow); nil otherwise. Like the Report it is a pure
	// function of (config, seed).
	Load *load.Report
	// Backpressure samples per-stage queue depths (mempool depth, pending
	// block fetches, signing-lookahead occupancy) at the maintenance
	// boundaries; deterministic at any Parallelism.
	Backpressure []metrics.BackpressureStat
	// StoreStats samples the fleet-aggregated storage counters (logical
	// entry ops, page-cache hits/misses, page and journal traffic,
	// checkpoints) at the same maintenance boundaries. Unlike Backpressure
	// it rides OUTSIDE the determinism digest: the counters are identical
	// across Parallelism but legitimately differ with the connect cache on
	// vs off (a cache hit replays a delta instead of re-validating, a
	// different backend op sequence), while the Report does not.
	StoreStats []metrics.BackpressureStat
	// Revenue is each node's mining revenue at run end — the UTXO balance
	// of its reward address in the view of the reference node (the
	// lowest-index node running honest, so an attacker's private ledger
	// does not inflate its own score). Node addresses receive only
	// coinbase outputs (subsidy + fee shares, net of poison revocations),
	// so the balance IS the revenue.
	Revenue []types.Amount
}

// RevenueShare returns node's fraction of the total revenue distributed in
// the run; zero when nothing was distributed.
func (r *Result) RevenueShare(node int) float64 {
	if r.Revenue == nil || node < 0 || node >= len(r.Revenue) {
		return 0
	}
	var total types.Amount
	for _, v := range r.Revenue {
		total += v
	}
	if total == 0 {
		return 0
	}
	return float64(r.Revenue[node]) / float64(total)
}

// engine abstracts the event substrate a run executes on: the classic
// single-threaded loop, or the sharded windowed engine. Either way the
// driver only observes the simulation at quiescent points (between runFor
// slices), where recorder buffers and outboxes have been flushed.
type engine interface {
	// loopFor returns the loop that owns node i; envs, miners, and timers
	// of that node schedule against it.
	loopFor(i int) *sim.Loop
	now() int64
	executed() uint64
	runFor(d time.Duration)
	// scheduleAt registers a driver-level callback at an absolute virtual
	// time: scenario steps, which may touch any node or global network
	// state. It fires with all shards aligned at exactly that instant.
	scheduleAt(at int64, fn func())
	close()
}

// seqEngine is the classic engine: one loop, driver callbacks are ordinary
// timers.
type seqEngine struct{ loop *sim.Loop }

func (e seqEngine) loopFor(int) *sim.Loop          { return e.loop }
func (e seqEngine) now() int64                     { return e.loop.Now() }
func (e seqEngine) executed() uint64               { return e.loop.Executed() }
func (e seqEngine) runFor(d time.Duration)         { e.loop.RunFor(d) }
func (e seqEngine) scheduleAt(at int64, fn func()) { e.loop.At(at, fn) }
func (e seqEngine) close()                         {}

// shardEngine wraps sim.ShardedLoop: cross-shard deliveries and recorder
// buffers flush at every window barrier, and scenario steps run as global
// events (re-deriving the lookahead afterwards, in case they rescaled
// latencies).
type shardEngine struct {
	sl      *sim.ShardedLoop
	shardOf []int
	net     *simnet.Network
}

func (e *shardEngine) loopFor(i int) *sim.Loop { return e.sl.Shard(e.shardOf[i]) }
func (e *shardEngine) now() int64              { return e.sl.Now() }
func (e *shardEngine) executed() uint64        { return e.sl.Executed() }
func (e *shardEngine) runFor(d time.Duration)  { e.sl.RunFor(d) }
func (e *shardEngine) scheduleAt(at int64, fn func()) {
	e.sl.ScheduleGlobal(at, func() {
		fn()
		e.refreshLookahead()
	})
}
func (e *shardEngine) close() { e.sl.Close() }

func (e *shardEngine) refreshLookahead() {
	if la := e.net.MinCrossShardLatency(); la > 0 {
		e.sl.SetLookahead(la)
	}
}

// runner holds one assembled experiment. It implements scenario.Runtime, so
// a Config's Scenario scripts partitions, churn, and attacks against it.
type runner struct {
	cfg       Config
	eng       engine
	net       *simnet.Network
	collector *metrics.Collector
	workload  *Workload
	views     []*WorkloadView
	bp        *metrics.Backpressure
	clients   []protocol.Client
	miners    []*mining.Miner
	addrs     []crypto.Address // per-node reward address (revenue accounting)
	payload   types.BlockKind  // which kind counts toward TargetBlocks
	scenErrs  []error

	// Crash/recovery state. envs, keys, recFor, censors, and cache are the
	// per-node assembly inputs Restart needs to rebuild a client in place;
	// indexes are the durable chain archives that survive a Crash, and
	// utxos the matching ledger stores (Reset and replayed on Restart).
	envs      []*simnet.NodeEnv
	keys      []*crypto.PrivateKey
	factory   *store.Factory
	utxos     []store.UTXO
	indexes   []store.ChainIndex
	storeBP   *metrics.Backpressure
	recFor    func(i int) node.Recorder
	censors   map[int]bool
	cache     *validate.Cache
	down      []bool
	restartAt []int64 // per node, virtual time of the latest Restart (0 = never)

	// Online invariant checking (nil when Config.Invariants is empty).
	invEng *invariant.Engine
	// partition is the current group assignment (nil while the network is
	// whole); lastDisruption timestamps the most recent partition, heal,
	// latency rescale, or strategy switch, which gates the consistency
	// invariants' settle grace.
	partition      []int
	lastDisruption int64
}

// Run executes one experiment.
func Run(cfg Config) (*Result, error) {
	r, err := build(cfg)
	if err != nil {
		return nil, err
	}
	return r.run()
}

func build(cfg Config) (*runner, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("experiment: need at least 2 nodes")
	}
	if cfg.TargetBlocks <= 0 {
		cfg.TargetBlocks = 60
	}
	if cfg.TxSize <= 0 {
		cfg.TxSize = 476
	}
	if cfg.MaxSimTime <= 0 {
		cfg.MaxSimTime = 6 * time.Hour
	}
	if cfg.Scenario != nil && cfg.Scenario.Duration() > cfg.MaxSimTime {
		return nil, fmt.Errorf("experiment: scenario's last step at %v exceeds MaxSimTime %v",
			cfg.Scenario.Duration(), cfg.MaxSimTime)
	}
	censors, err := protocol.CensorSet(cfg.Nodes, cfg.Censors)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	strategies, err := strategy.ForNodes(cfg.Nodes, cfg.Strategies)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	if cfg.MiningExponent == 0 {
		cfg.MiningExponent = mining.DefaultExponent
	}
	if cfg.MiningShares != nil && len(cfg.MiningShares) != cfg.Nodes {
		return nil, fmt.Errorf("experiment: %d mining shares for %d nodes",
			len(cfg.MiningShares), cfg.Nodes)
	}

	// Engine selection: how many event-loop shards the run executes on.
	shards := cfg.Parallelism
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards < 1 {
		shards = 1
	}
	if shards > cfg.Nodes {
		shards = cfg.Nodes
	}

	netCfg := simnet.DefaultConfig(cfg.Nodes, cfg.Seed)
	if cfg.BandwidthBPS > 0 {
		netCfg.BandwidthBPS = cfg.BandwidthBPS
	}
	if cfg.Latency != nil {
		netCfg.Latency = cfg.Latency
	}

	var eng engine
	var network *simnet.Network
	var shardOf []int
	if shards > 1 {
		sl := sim.NewShardedLoop(0, shards)
		shardOf = make([]int, cfg.Nodes)
		for i := range shardOf {
			shardOf[i] = i * shards / cfg.Nodes
		}
		network = simnet.New(sl.Shard(0), netCfg)
		network.Shard(shardLoops(sl), shardOf)
		if la := network.MinCrossShardLatency(); la > 0 {
			sl.SetLookahead(la)
			sl.OnBarrier(network.FlushOutboxes)
			eng = &shardEngine{sl: sl, shardOf: shardOf, net: network}
		} else {
			// Degenerate topology (zero-latency cross-shard links): the
			// windowed engine has no lookahead to exploit — run sequential.
			sl.Close()
			shards = 1
		}
	}
	if eng == nil {
		loop := sim.NewLoop(0)
		network = simnet.New(loop, netCfg)
		eng = seqEngine{loop: loop}
	}

	paced := cfg.Offered > 0 || cfg.ClosedLoopWindow > 0
	maxTxs := int64(cfg.WorkloadCount)
	if maxTxs == 0 && !paced {
		// Classic methodology: a finite pre-sized workload, enough to keep
		// blocks full for the whole run plus slack.
		count := cfg.TargetBlocks * (cfg.Params.MaxBlockSize/cfg.TxSize + 1) * 3 / 2
		if count < 64 {
			count = 64
		}
		maxTxs = int64(count)
	}
	workload, err := NewStreamWorkload(cfg.Seed, cfg.TxSize, cfg.StreamLanes, maxTxs)
	if err != nil {
		eng.close()
		return nil, err
	}
	collector := metrics.NewCollector(workload.Genesis, 0)
	recFor := func(i int) node.Recorder { return collector }
	if se, ok := eng.(*shardEngine); ok {
		sharded := metrics.NewSharded(collector, shards)
		se.sl.OnBarrier(sharded.Flush)
		recFor = func(i int) node.Recorder { return sharded.Shard(shardOf[i]) }
	}
	cache := validate.Shared()
	if cfg.DisableConnectCache {
		cache = nil
	}

	factory, err := store.NewFactory(cfg.StoreURL)
	if err != nil {
		eng.close()
		return nil, fmt.Errorf("experiment: %w", err)
	}

	r := &runner{
		cfg:       cfg,
		eng:       eng,
		net:       network,
		collector: collector,
		workload:  workload,
		bp:        metrics.NewBackpressure(),
		storeBP:   metrics.NewBackpressure(),
		payload:   protocol.Payload(cfg.Protocol),
		factory:   factory,
		recFor:    recFor,
		censors:   censors,
		cache:     cache,
		down:      make([]bool, cfg.Nodes),
		restartAt: make([]int64, cfg.Nodes),
	}

	shares := cfg.MiningShares
	if shares == nil {
		shares = mining.ExponentialShares(cfg.Nodes, cfg.MiningExponent)
	} else {
		var sum float64
		for _, s := range shares {
			if s < 0 {
				r.closeStores()
				eng.close()
				return nil, fmt.Errorf("experiment: negative mining share %v", s)
			}
			sum += s
		}
		if sum <= 0 {
			r.closeStores()
			eng.close()
			return nil, fmt.Errorf("experiment: mining shares sum to zero")
		}
		normalized := make([]float64, len(shares))
		for i, s := range shares {
			normalized[i] = s / sum
		}
		shares = normalized
	}
	totalRate := 1.0 / cfg.Params.TargetBlockInterval.Seconds()

	for i := 0; i < cfg.Nodes; i++ {
		loop := eng.loopFor(i)
		env := simnet.NewNodeEnv(loop, network, i, cfg.Seed)
		key, err := crypto.GenerateKey(sim.NewRand(cfg.Seed, uint64(0x10000+i)))
		if err != nil {
			r.closeStores()
			eng.close()
			return nil, err
		}
		ustore, err := factory.NewUTXO(storeName(i))
		if err != nil {
			r.closeStores()
			eng.close()
			return nil, fmt.Errorf("experiment: node %d: %w", i, err)
		}
		index, err := factory.NewChainIndex(storeName(i))
		if err != nil {
			ustore.Close()
			r.closeStores()
			eng.close()
			return nil, fmt.Errorf("experiment: node %d: %w", i, err)
		}
		r.utxos = append(r.utxos, ustore)
		r.indexes = append(r.indexes, index)
		client, err := protocol.Build(env, protocol.Spec{
			Protocol:           cfg.Protocol,
			Params:             cfg.Params,
			Key:                key,
			Genesis:            workload.Genesis,
			Recorder:           recFor(i),
			SimulatedMining:    true,
			CensorTransactions: censors[i],
			ConnectCache:       cache,
			Strategy:           strategies[i],
			UTXO:               ustore,
		})
		if err != nil {
			r.closeStores()
			eng.close()
			return nil, err
		}
		env.Deliver(client.HandleMessage)
		view := workload.NewView()
		if cfg.Offered > 0 {
			view.SetOpenLoop(cfg.Offered, loop.Now)
		} else if cfg.ClosedLoopWindow > 0 {
			view.SetClosedLoop(int64(cfg.ClosedLoopWindow))
		}
		client.Base().Pool = view
		client.Base().Persist = index
		// The chain index doubles as the body archive Compact evicts
		// against: every accepted block lands there via Persist first.
		client.Base().State.Store().AttachBodySource(index)
		r.views = append(r.views, view)

		// The onFind closure indexes r.clients so a Restart's replacement
		// client takes over mining without touching the miner (whose rng
		// stream must keep drawing from where it was). Finds while the node
		// is down are discarded — a crashed box mines nothing.
		i := i
		m := mining.NewMiner(loop, sim.NewRand(cfg.Seed, uint64(0x20000+i)),
			func() {
				if !r.down[i] {
					r.clients[i].MineBlock()
				}
			})
		m.SetRate(shares[i] * totalRate)
		r.clients = append(r.clients, client)
		r.miners = append(r.miners, m)
		r.addrs = append(r.addrs, key.Public().Addr())
		r.envs = append(r.envs, env)
		r.keys = append(r.keys, key)
	}
	return r, nil
}

// storeName labels a node's stores inside the factory root.
func storeName(i int) string { return fmt.Sprintf("n%04d", i) }

// closeStores releases every per-node store and the factory (removing an
// ephemeral file root). Errors are swallowed: it runs at teardown, after
// every measurement has been taken.
func (r *runner) closeStores() {
	for _, u := range r.utxos {
		_ = u.Close() // teardown: results are already extracted
	}
	for _, ix := range r.indexes {
		_ = ix.Close() // teardown: results are already extracted
	}
	_ = r.factory.Close() // teardown: removes the ephemeral root, best-effort
}

// shardLoops collects a ShardedLoop's per-shard loops.
func shardLoops(sl *sim.ShardedLoop) []*sim.Loop {
	loops := make([]*sim.Loop, sl.Shards())
	for i := range loops {
		loops[i] = sl.Shard(i)
	}
	return loops
}

// Size implements scenario.Runtime.
func (r *runner) Size() int { return len(r.clients) }

// Partition implements scenario.Runtime.
func (r *runner) Partition(groups ...[]int) error {
	assignment, err := simnet.PartitionAssignment(len(r.clients), groups)
	if err != nil {
		return fmt.Errorf("experiment: %w", err)
	}
	r.net.SetPartition(assignment)
	r.partition = assignment
	r.lastDisruption = r.eng.now()
	return nil
}

// Heal implements scenario.Runtime.
func (r *runner) Heal() {
	r.net.SetPartition(nil)
	r.partition = nil
	r.lastDisruption = r.eng.now()
}

// SetMiningRate implements scenario.Runtime.
func (r *runner) SetMiningRate(node int, blocksPerSec float64) error {
	if node < 0 || node >= len(r.miners) {
		return fmt.Errorf("experiment: node %d out of range (network size %d)", node, len(r.miners))
	}
	r.miners[node].SetRate(blocksPerSec)
	r.miners[node].Start()
	return nil
}

// ScaleLatency implements scenario.Runtime.
func (r *runner) ScaleLatency(factor float64) error {
	if factor <= 0 {
		return fmt.Errorf("experiment: latency factor %v must be > 0", factor)
	}
	r.net.ScaleLatency(factor)
	r.lastDisruption = r.eng.now()
	return nil
}

// AdoptStrategy implements scenario.Runtime: switch one node's mining
// strategy mid-run.
func (r *runner) AdoptStrategy(node int, name string) error {
	if node < 0 || node >= len(r.clients) {
		return fmt.Errorf("experiment: node %d out of range (network size %d)", node, len(r.clients))
	}
	if err := protocol.AdoptStrategy(r.clients[node], name); err != nil {
		return fmt.Errorf("experiment: node %d (%s): %w", node, r.cfg.Protocol, err)
	}
	r.lastDisruption = r.eng.now()
	return nil
}

// Crash implements scenario.Runtime: tear down node i's in-memory state and
// detach it from the network. The client object, its chain tree, mempool
// view, pending fetches, and relay queues are abandoned wholesale; bumping
// the env generation neuters every timer the old incarnation armed (the
// microblock schedule, fetch backoffs, tx flushes), and the network marks
// the node down so sends to and from it vanish. Only the durable block
// archive survives for Restart. Runs at quiescent points only (scenario
// steps fire via scheduleAt).
func (r *runner) Crash(i int) error {
	if i < 0 || i >= len(r.clients) {
		return fmt.Errorf("experiment: node %d out of range (network size %d)", i, len(r.clients))
	}
	if r.down[i] {
		return fmt.Errorf("experiment: node %d is already down", i)
	}
	r.down[i] = true
	r.miners[i].Stop()
	r.envs[i].Bump()
	r.net.SetNodeDown(i, true)
	r.lastDisruption = r.eng.now()
	return nil
}

// Restart implements scenario.Runtime: rebuild node i from its durable
// prefix and rejoin it. The replacement client is assembled exactly like the
// original (same key, same env — so its random stream continues where it
// left off — same recorder and censor flag, its CONFIGURED strategy rather
// than anything adopted mid-run), the archive replays straight into its
// chain (no gossip, no metric events: those fired in the first life), and
// catch-up sync chases whatever the network minted while the node was down.
func (r *runner) Restart(i int) error {
	if i < 0 || i >= len(r.clients) {
		return fmt.Errorf("experiment: node %d out of range (network size %d)", i, len(r.clients))
	}
	if !r.down[i] {
		return fmt.Errorf("experiment: node %d is not down", i)
	}
	strat, err := strategy.New(r.cfg.Strategies[i])
	if err != nil {
		return fmt.Errorf("experiment: restart node %d: %w", i, err)
	}
	// The ledger store is rebuilt from the chain index: the replay below
	// re-applies every persisted block, so the store must start empty. (The
	// harness does not trust a possibly-torn UTXO state across a crash; the
	// chain index IS the durable truth.)
	if err := r.utxos[i].Reset(); err != nil {
		return fmt.Errorf("experiment: restart node %d: reset store: %w", i, err)
	}
	client, err := protocol.Build(r.envs[i], protocol.Spec{
		Protocol:           r.cfg.Protocol,
		Params:             r.cfg.Params,
		Key:                r.keys[i],
		Genesis:            r.workload.Genesis,
		Recorder:           r.recFor(i),
		SimulatedMining:    true,
		CensorTransactions: r.censors[i],
		ConnectCache:       r.cache,
		Strategy:           strat,
		UTXO:               r.utxos[i],
	})
	if err != nil {
		return fmt.Errorf("experiment: restart node %d: %w", i, err)
	}
	base := client.Base()
	now := r.eng.now()
	// Replay the durable prefix directly into the chain: append order is
	// parent-before-child for everything this node ever accepted, so the
	// tree reassembles without orphan churn. Blocks whose lineage was never
	// persisted (none, by construction) would simply stash as orphans. Each
	// block carries its original arrival time, so the first-seen tie-break
	// resolves exactly as it did in the first life.
	if err := r.indexes[i].Replay(func(b types.Block, receivedAt int64) error {
		_, err := base.State.AddBlock(b, receivedAt)
		return err
	}); err != nil {
		return fmt.Errorf("experiment: restart node %d: replay: %w", i, err)
	}
	base.Pool = r.views[i]
	base.Persist = r.indexes[i]
	base.State.Store().AttachBodySource(r.indexes[i])
	// Re-evaluate leadership against the recovered tip (the tip-change hook
	// never fired during the direct replay): a restarted mid-epoch leader
	// resumes microblock production, everyone else stays a follower.
	if base.OnTipChange != nil {
		base.OnTipChange(nil)
	}
	r.clients[i] = client
	r.down[i] = false
	r.restartAt[i] = now
	r.envs[i].Deliver(client.HandleMessage)
	r.net.SetNodeDown(i, false)
	r.miners[i].Start()
	base.Sync.Start(-1)
	r.lastDisruption = now
	return nil
}

// SetLoss implements scenario.Runtime: install (or with zeros clear) the
// network-wide lossy-link fault model.
func (r *runner) SetLoss(drop, duplicate, reorder float64) error {
	for _, p := range []float64{drop, duplicate, reorder} {
		if p < 0 || p > 1 {
			return fmt.Errorf("experiment: loss probability %v outside [0,1]", p)
		}
	}
	r.net.SetLoss(simnet.Loss{Drop: drop, Duplicate: duplicate, Reorder: reorder})
	r.lastDisruption = r.eng.now()
	return nil
}

// Leader implements scenario.Runtime: the first running node that considers
// itself the current epoch leader, or -1.
func (r *runner) Leader() int {
	for i, c := range r.clients {
		if r.down[i] {
			continue
		}
		if l, ok := c.(protocol.Leader); ok && l.IsLeader() {
			return i
		}
	}
	return -1
}

// snapshot assembles the invariant engine's view of every node. It is only
// called at quiescent points (slice boundaries and run end), where no event
// is mutating chain state on any shard.
func (r *runner) snapshot(final bool) *invariant.Snapshot {
	s := &invariant.Snapshot{
		Now:            r.eng.now(),
		Final:          final,
		Params:         r.cfg.Params,
		Partitioned:    r.partition != nil,
		LastDisruption: r.lastDisruption,
		Nodes:          make([]invariant.NodeState, len(r.clients)),
	}
	for i, c := range r.clients {
		group := 0
		if r.partition != nil {
			group = r.partition[i]
		}
		name := strategy.HonestName
		if sc, ok := c.(protocol.Strategic); ok {
			name = sc.StrategyName()
		}
		s.Nodes[i] = invariant.NodeState{
			ID:          i,
			Chain:       c.Base().State,
			Strategy:    name,
			Group:       group,
			Down:        r.down[i],
			LastRestart: r.restartAt[i],
			Durable:     r.indexes[i],
		}
	}
	return s
}

// Equivocate implements scenario.Runtime: the leader signs two conflicting
// microblocks, one published normally, the other slipped to a neighbor.
func (r *runner) Equivocate(leader int, txA, txB *types.Transaction) error {
	if leader < 0 || leader >= len(r.clients) {
		return fmt.Errorf("experiment: node %d out of range (network size %d)", leader, len(r.clients))
	}
	if r.down[leader] {
		return fmt.Errorf("experiment: node %d is down and cannot equivocate", leader)
	}
	victim := r.clients[protocol.EquivocationVictim(leader, len(r.clients))]
	_, _, err := protocol.PublishEquivocation(leader, r.clients[leader], victim, txA, txB)
	if err != nil {
		return fmt.Errorf("experiment: node %d (%s): %w", leader, r.cfg.Protocol, err)
	}
	return nil
}

func (r *runner) run() (*Result, error) {
	defer r.eng.close()
	//nglint:allow detflow WallTime reaches only the operator-facing stats block of FprintRunStats, never digests or reports that are diffed across runs
	startWall := time.Now() //nglint:allow walltime measures real runtime for Result.WallTime (operator info); never feeds the simulation
	var scenarioUntil int64
	if r.cfg.Scenario != nil {
		scenarioUntil = int64(r.cfg.Scenario.Duration())
		r.cfg.Scenario.Schedule(
			func(d time.Duration, fn func()) { r.eng.scheduleAt(int64(d), fn) }, r,
			func(ts scenario.TimedStep, err error) {
				r.scenErrs = append(r.scenErrs,
					fmt.Errorf("experiment: scenario step %q at %v: %w", ts.Step.Name, ts.Offset, err))
			})
	}
	for _, m := range r.miners {
		m.Start()
	}
	// Advance in slices, checking the stop rule between them. The slicing is
	// part of a run's observable schedule (the run ends at a slice
	// boundary), so both engines use identical slices: the sharded engine
	// subdivides them into lookahead windows internally.
	step := r.cfg.Params.TargetBlockInterval / 4
	if r.payload == types.KindMicro && r.cfg.Params.MicroblockInterval < step {
		step = r.cfg.Params.MicroblockInterval
	}
	if step <= 0 {
		step = time.Second
	}
	// Online invariant checks happen at slice boundaries, which both engines
	// hit at identical virtual times, so violation timestamps (and therefore
	// reports) stay byte-identical across engine choices.
	if len(r.cfg.Invariants) > 0 {
		r.invEng = invariant.NewEngine(r.cfg.Invariants...)
	}
	checkEvery := r.cfg.InvariantInterval
	if checkEvery <= 0 {
		checkEvery = r.cfg.Params.TargetBlockInterval
	}
	if checkEvery <= 0 {
		checkEvery = time.Second // degenerate params; same guard as step
	}
	nextCheck := int64(checkEvery)
	deadline := int64(r.cfg.MaxSimTime)
	for r.eng.now() < deadline {
		if r.eng.now() >= scenarioUntil &&
			r.collector.CountKind(r.payload) >= r.cfg.TargetBlocks {
			break
		}
		r.eng.runFor(step)
		if r.eng.now() >= nextCheck {
			// Slice boundaries are quiescent on both engines, so invariant
			// checks and workload maintenance (release floor, backpressure
			// sampling) observe identical state at identical virtual times.
			if r.invEng != nil {
				r.invEng.Check(r.snapshot(false))
			}
			r.maintain()
			for nextCheck <= r.eng.now() {
				nextCheck += int64(checkEvery)
			}
		}
	}
	// Stop mining and let in-flight blocks propagate.
	for _, m := range r.miners {
		m.Stop()
	}
	grace := r.cfg.Grace
	if grace <= 0 {
		grace = 30 * time.Second
	}
	r.eng.runFor(grace)

	end := r.eng.now()
	var violations []invariant.Violation
	if r.invEng != nil {
		r.invEng.Check(r.snapshot(true))
		violations = r.invEng.Violations()
	}
	r.maintain()
	opts := metrics.DefaultAnalyzeOptions(end)
	report := r.collector.Analyze(opts)
	res := &Result{
		Config:   r.cfg,
		Report:   report,
		NetStats: r.net.Stats(),
		Events:   r.eng.executed(),
		//nglint:allow detflow WallTime reaches only the operator-facing stats block of FprintRunStats, never digests or reports that are diffed across runs
		WallTime:            time.Since(startWall), //nglint:allow walltime measures real runtime for Result.WallTime (operator info); never feeds the simulation
		SimTime:             time.Duration(end),
		ScenarioErrors:      r.scenErrs,
		InvariantViolations: violations,
		Load:                r.loadReport(end),
		Backpressure:        r.bp.Stats(),
		StoreStats:          r.storeBP.Stats(),
		Revenue:             r.revenue(),
	}
	// Teardown only after every measurement (revenue ranges over the UTXO
	// stores) has been extracted.
	r.closeStores()
	return res, nil
}

// maintain runs at quiescent slice boundaries: it samples the backpressure
// counters and advances the stream's release floor to the slowest view's
// confirmed prefix minus a reorg slack, freeing confirmed transactions and
// compacting view bitmaps so long runs hold only the in-flight window.
func (r *runner) maintain() {
	stream := r.workload.Stream()
	minPrefix := stream.Generated()
	maxDepth := 0
	for _, v := range r.views {
		if p := v.ConfirmedPrefix(); p < minPrefix {
			minPrefix = p
		}
		if d := v.Len(); d > maxDepth {
			maxDepth = d
		}
	}
	fetches, relayQueue := 0, 0
	for i, c := range r.clients {
		if r.down[i] {
			continue // a crashed node's abandoned client has no live queues
		}
		fetches += c.Base().Gossip.PendingFetches()
		relayQueue += c.Base().Gossip.QueuedTxs()
	}
	r.bp.Record("mempool-depth-max", float64(maxDepth))
	r.bp.Record("pending-fetches", float64(fetches))
	r.bp.Record("relay-queue", float64(relayQueue))
	r.bp.Record("lookahead-occupancy", float64(stream.Occupancy()))
	r.maintainStores()

	if len(r.views) == 0 {
		return
	}
	// Slack: enough confirmed history to survive any reorg a scenario can
	// plausibly cause before the next maintenance boundary.
	slack := int64(4 * (r.cfg.Params.MaxBlockSize/r.cfg.TxSize + 1))
	if floor := minPrefix - slack; floor > 0 {
		stream.Release(floor)
		released := stream.Released()
		for _, v := range r.views {
			v.Compact(released)
		}
	}
}

// maintainStores runs inside maintain, at the same quiescent boundaries: it
// samples the fleet-aggregated storage counters into the store backpressure
// series, flushes file-backed stores (which is also what paces their
// checkpoint cycle), and — when CompactDepth is set — evicts each live node's
// deep chain history so resident state stays bounded on long runs.
func (r *runner) maintainStores() {
	var agg utxo.Stats
	for _, u := range r.utxos {
		agg.Add(u.Stats())
	}
	r.storeBP.Record("store-gets", float64(agg.Gets))
	r.storeBP.Record("store-puts", float64(agg.Puts))
	r.storeBP.Record("store-deletes", float64(agg.Deletes))
	r.storeBP.Record("store-cache-hits", float64(agg.CacheHits))
	r.storeBP.Record("store-cache-misses", float64(agg.CacheMisses))
	r.storeBP.Record("store-page-reads", float64(agg.PageReads))
	r.storeBP.Record("store-page-writes", float64(agg.PageWrites))
	r.storeBP.Record("store-journal-records", float64(agg.JournalRecords))
	r.storeBP.Record("store-journal-bytes", float64(agg.JournalBytes))
	r.storeBP.Record("store-checkpoints", float64(agg.Checkpoints))

	if !r.factory.InMemory() {
		// A down node's stores are left alone: its UTXO journal tail is the
		// torn state the next Restart deliberately resets.
		for i := range r.utxos {
			if r.down[i] {
				continue
			}
			if err := r.utxos[i].Sync(); err != nil {
				panic(fmt.Sprintf("experiment: node %d: store sync: %v", i, err))
			}
			if err := r.indexes[i].Sync(); err != nil {
				panic(fmt.Sprintf("experiment: node %d: index sync: %v", i, err))
			}
		}
	}
	if r.cfg.CompactDepth > 0 {
		for i, c := range r.clients {
			if r.down[i] {
				continue
			}
			c.Base().State.Compact(r.cfg.CompactDepth)
		}
	}
}

// loadReport summarizes offered vs confirmed throughput when a pacing
// discipline was active, from the reference node's final main chain.
func (r *runner) loadReport(end int64) *load.Report {
	if r.cfg.Offered <= 0 && r.cfg.ClosedLoopWindow <= 0 {
		return nil
	}
	stream := r.workload.Stream()
	confs := load.Confirmations(r.clients[r.referenceNode()].Base().State.Tip())
	mode, offered := load.Closed, stream.Generated()
	if r.cfg.Offered > 0 {
		mode = load.Open
		if due := load.OfferedAt(r.cfg.Offered, end); due > offered {
			offered = due
		}
	}
	return load.BuildReport(mode, r.cfg.Offered, int64(r.cfg.ClosedLoopWindow),
		time.Duration(end), offered, stream.Generated(), confs)
}

// revenue reads every node's reward-address balance in the view of the
// reference node: the lowest-index node whose LIVE strategy is honest (a
// scenario may have adopted an attack strategy mid-run), so an attacker's
// withheld private ledger never inflates its own score. All-adversarial runs
// fall back to node 0. One pass over the reference UTXO set covers every
// address — paper-scale runs have a thousand of them.
func (r *runner) revenue() []types.Amount {
	ref := r.referenceNode()
	nodeOf := make(map[crypto.Address]int, len(r.addrs))
	for i, addr := range r.addrs {
		nodeOf[addr] = i
	}
	out := make([]types.Amount, len(r.addrs))
	r.clients[ref].Base().State.UTXO().Range(func(_ types.OutPoint, e utxo.Entry) bool {
		if i, ok := nodeOf[e.To]; ok && !e.Revoked {
			out[i] += e.Value
		}
		return true
	})
	return out
}

// referenceNode picks the lowest-index node whose LIVE strategy is honest
// (all-adversarial runs fall back to node 0): the observer whose chain the
// revenue and load measurements read.
func (r *runner) referenceNode() int {
	for i, c := range r.clients {
		if r.down[i] {
			continue // a crashed node's frozen chain is no observer
		}
		name := strategy.HonestName
		if sc, ok := c.(protocol.Strategic); ok {
			name = sc.StrategyName()
		}
		if name == strategy.HonestName {
			return i
		}
	}
	return 0
}
