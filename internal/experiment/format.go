package experiment

import (
	"fmt"
	"io"
	"time"

	"bitcoinng/internal/metrics"
	"bitcoinng/internal/stats"
)

// FprintReport writes one run's §6 metrics in the layout the benchmark
// tables share.
func FprintReport(w io.Writer, label string, r *metrics.Report) {
	fmt.Fprintf(w, "%-22s consensus=%8.2fs fairness=%5.3f mpu=%5.3f prune90=%8.2fs win90=%7.2fs tx/s=%6.2f forks/blk=%5.3f\n",
		label,
		r.ConsensusDelay.Seconds(),
		r.Fairness,
		r.MiningPowerUtilization,
		r.TimeToPrune.Seconds(),
		r.TimeToWin.Seconds(),
		r.TxFrequency,
		r.ForksPerPowBlock,
	)
}

// FprintFig7 writes the Figure 7 series and its linear fit.
func FprintFig7(w io.Writer, points []Fig7Point, fit stats.Fit) {
	fmt.Fprintln(w, "Figure 7 — block propagation latency vs block size (Bitcoin)")
	fmt.Fprintf(w, "%10s %12s %12s %12s\n", "size[B]", "p25[s]", "p50[s]", "p75[s]")
	for _, p := range points {
		fmt.Fprintf(w, "%10d %12.2f %12.2f %12.2f\n",
			p.BlockSize, p.P25.Seconds(), p.P50.Seconds(), p.P75.Seconds())
	}
	fmt.Fprintf(w, "linear fit over medians: latency[s] = %.3g*size + %.3g, R²=%.4f\n",
		fit.Slope, fit.Intercept, fit.R2)
}

// FprintFig8 writes one Figure 8 sweep as the six-panel table the paper
// plots, one row per sweep point and protocol.
func FprintFig8(w io.Writer, title, xLabel string, points []Fig8Point) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%12s %-10s %12s %9s %7s %10s %9s %8s\n",
		xLabel, "protocol", "consensus[s]", "fairness", "mpu", "prune90[s]", "win90[s]", "tx/s")
	row := func(x float64, name string, r *metrics.Report) {
		if r == nil {
			return
		}
		fmt.Fprintf(w, "%12.4g %-10s %12.2f %9.3f %7.3f %10.2f %9.2f %8.2f\n",
			x, name,
			r.ConsensusDelay.Seconds(), r.Fairness, r.MiningPowerUtilization,
			r.TimeToPrune.Seconds(), r.TimeToWin.Seconds(), r.TxFrequency)
	}
	for _, p := range points {
		row(p.X, "bitcoin", p.Bitcoin)
		row(p.X, "ng", p.NG)
	}
}

// FprintRunStats writes simulation accounting for one result.
func FprintRunStats(w io.Writer, res *Result) {
	fmt.Fprintf(w, "sim: %v virtual in %v wall, %d events, %d msgs, %.1f MB sent\n",
		res.SimTime.Round(time.Second), res.WallTime.Round(time.Millisecond),
		res.Events, res.NetStats.MessagesSent, float64(res.NetStats.BytesSent)/1e6)
}
