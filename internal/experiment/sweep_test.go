package experiment

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sweepCfg(seed int64, blocks int) Config {
	cfg := DefaultConfig(Bitcoin, 16, seed)
	cfg.TargetBlocks = blocks
	cfg.Params.TargetBlockInterval = 30 * time.Second
	return cfg
}

// TestSweepOrderAndDeterminism: a concurrent sweep returns results in input
// order, identical to running the points one by one.
func TestSweepOrderAndDeterminism(t *testing.T) {
	cfgs := []Config{sweepCfg(1, 3), sweepCfg(2, 4), sweepCfg(3, 5), sweepCfg(4, 3), sweepCfg(5, 4)}

	var want []*Result
	for _, cfg := range cfgs {
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}
	got, err := Sweep(cfgs, 4) // forced pool width despite GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Config.Seed != cfgs[i].Seed {
			t.Errorf("result %d carries seed %d, want %d", i, got[i].Config.Seed, cfgs[i].Seed)
		}
		if !reflect.DeepEqual(got[i].Report, want[i].Report) {
			t.Errorf("result %d report diverged under the pool:\nseq: %+v\npool: %+v",
				i, want[i].Report, got[i].Report)
		}
	}
}

// TestSweepAggregatesErrors: failed points surface wrapped with their index,
// successful points still return.
func TestSweepAggregatesErrors(t *testing.T) {
	bad := sweepCfg(1, 3)
	bad.Nodes = 1 // below the 2-node minimum: Run fails
	bad2 := sweepCfg(2, 3)
	bad2.Nodes = 0
	cfgs := []Config{sweepCfg(3, 3), bad, sweepCfg(4, 3), bad2}

	results, err := Sweep(cfgs, 2)
	if err == nil {
		t.Fatal("want aggregated error")
	}
	if results[0] == nil || results[2] == nil {
		t.Error("successful points missing from results")
	}
	if results[1] != nil || results[3] != nil {
		t.Error("failed points returned results")
	}
	msg := err.Error()
	if !strings.Contains(msg, "sweep point 1") || !strings.Contains(msg, "sweep point 3") {
		t.Errorf("error lacks point indices: %v", msg)
	}
	var joined interface{ Unwrap() []error }
	if !errors.As(err, &joined) || len(joined.Unwrap()) != 2 {
		t.Errorf("want 2 joined errors, got %v", msg)
	}
}

// TestSweepEmpty returns cleanly with no work.
func TestSweepEmpty(t *testing.T) {
	results, err := Sweep(nil, 4)
	if err != nil || results != nil {
		t.Fatalf("Sweep(nil) = %v, %v", results, err)
	}
}
