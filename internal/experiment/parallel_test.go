package experiment

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"bitcoinng/internal/scenario"
)

// adversarialConfig is a small but hostile run: censors, a partition with
// heal, a latency spike, and leader equivocation, exercising every global
// control path the sharded engine must serialize at barriers.
func adversarialConfig(p Protocol, parallelism int) Config {
	cfg := DefaultConfig(p, 48, 7)
	cfg.TargetBlocks = 12
	cfg.Params.MaxBlockSize = 6000
	cfg.Params.TargetBlockInterval = 60 * time.Second
	cfg.Params.MicroblockInterval = 5 * time.Second
	cfg.Censors = []int{3}
	cfg.Parallelism = parallelism
	sc := scenario.New(
		scenario.At(40*time.Second, scenario.LatencySpike(3)),
		scenario.At(60*time.Second, scenario.LatencySpike(1)),
		scenario.At(80*time.Second, scenario.Partition([]int{0, 1, 2, 3, 4, 5, 6, 7})),
		scenario.At(140*time.Second, scenario.Heal()),
	)
	cfg.Scenario = sc
	return cfg
}

// reportKey flattens the deterministic parts of a Result for comparison.
func reportKey(t *testing.T, res *Result) string {
	t.Helper()
	var sb strings.Builder
	FprintReport(&sb, "run", res.Report)
	return sb.String()
}

// TestShardedRunMatchesSequential is the engine's core guarantee: the same
// seed produces an identical report (and identical full metrics struct, net
// stats, and event count) on the single-threaded loop and on the sharded
// engine at several shard counts.
func TestShardedRunMatchesSequential(t *testing.T) {
	for _, proto := range []Protocol{Bitcoin, BitcoinNG} {
		seq, err := Run(adversarialConfig(proto, 1))
		if err != nil {
			t.Fatalf("%s sequential: %v", proto, err)
		}
		if len(seq.ScenarioErrors) > 0 {
			t.Fatalf("%s sequential scenario errors: %v", proto, seq.ScenarioErrors)
		}
		if seq.Report.Blocks == 0 {
			t.Fatalf("%s sequential: empty run", proto)
		}
		for _, par := range []int{2, 4} {
			got, err := Run(adversarialConfig(proto, par))
			if err != nil {
				t.Fatalf("%s parallelism %d: %v", proto, par, err)
			}
			if !reflect.DeepEqual(got.Report, seq.Report) {
				t.Errorf("%s parallelism %d report diverged:\nseq: %+v\npar: %+v",
					proto, par, seq.Report, got.Report)
			}
			if got.NetStats != seq.NetStats {
				t.Errorf("%s parallelism %d net stats diverged: %+v vs %+v",
					proto, par, got.NetStats, seq.NetStats)
			}
			if got.Events != seq.Events {
				t.Errorf("%s parallelism %d events %d, want %d",
					proto, par, got.Events, seq.Events)
			}
			if got.SimTime != seq.SimTime {
				t.Errorf("%s parallelism %d sim time %v, want %v",
					proto, par, got.SimTime, seq.SimTime)
			}
			if k1, k2 := reportKey(t, seq), reportKey(t, got); k1 != k2 {
				t.Errorf("%s parallelism %d formatted report diverged:\n%s\n%s",
					proto, par, k1, k2)
			}
		}
	}
}

// TestShardedRunWithEquivocation covers the driver-initiated send path:
// a Call step publishing conflicting microblocks at a barrier.
func TestShardedRunWithEquivocation(t *testing.T) {
	mk := func(par int) Config {
		cfg := DefaultConfig(BitcoinNG, 32, 11)
		cfg.TargetBlocks = 10
		cfg.Params.MaxBlockSize = 4000
		cfg.Params.TargetBlockInterval = 50 * time.Second
		cfg.Params.MicroblockInterval = 5 * time.Second
		cfg.Parallelism = par
		cfg.Scenario = scenario.New(
			scenario.At(70*time.Second, scenario.Equivocate(0, nil, nil)),
		)
		return cfg
	}
	seq, err := Run(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(mk(3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Report, par.Report) {
		t.Errorf("equivocation run diverged:\nseq: %+v\npar: %+v", seq.Report, par.Report)
	}
	if len(seq.ScenarioErrors) != len(par.ScenarioErrors) {
		t.Errorf("scenario errors differ: %v vs %v", seq.ScenarioErrors, par.ScenarioErrors)
	}
}

// TestParallelismDefaults: explicit parallelism above the node count is
// clamped and still runs.
func TestParallelismClamped(t *testing.T) {
	cfg := DefaultConfig(Bitcoin, 4, 1)
	cfg.TargetBlocks = 2
	cfg.Params.TargetBlockInterval = 30 * time.Second
	cfg.Parallelism = 64
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Blocks == 0 {
		t.Fatal("clamped run produced no blocks")
	}
}

// TestShardedOverlappingLatencySpikes pins the LatencySpike contract on the
// sharded engine: spikes are absolute factors that replace one another, the
// lookahead is re-derived at the barrier after every spike (2x widens it,
// the 5x overlap widens it further, 1 restores it), and the report stays
// byte-identical to the sequential engine's.
func TestShardedOverlappingLatencySpikes(t *testing.T) {
	mk := func(par int) Config {
		cfg := DefaultConfig(BitcoinNG, 32, 13)
		cfg.TargetBlocks = 10
		cfg.Params.MaxBlockSize = 6000
		cfg.Params.TargetBlockInterval = 60 * time.Second
		cfg.Params.MicroblockInterval = 5 * time.Second
		cfg.Parallelism = par
		cfg.Scenario = scenario.New(
			scenario.At(30*time.Second, scenario.LatencySpike(2)),
			scenario.At(50*time.Second, scenario.LatencySpike(5)), // overlap: absolute 5x, not 10x
			scenario.At(70*time.Second, scenario.LatencySpike(1)), // spike -> restore
		)
		return cfg
	}
	seq, err := Run(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.ScenarioErrors) > 0 {
		t.Fatalf("sequential scenario errors: %v", seq.ScenarioErrors)
	}
	for _, par := range []int{2, 4} {
		got, err := Run(mk(par))
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !reflect.DeepEqual(got.Report, seq.Report) {
			t.Errorf("parallelism %d report diverged under overlapping spikes:\nseq: %+v\npar: %+v",
				par, seq.Report, got.Report)
		}
		if got.NetStats != seq.NetStats {
			t.Errorf("parallelism %d net stats diverged: %+v vs %+v", par, got.NetStats, seq.NetStats)
		}
	}

	// A non-positive spike factor surfaces as a scenario step error on both
	// engines instead of corrupting the lookahead.
	for _, par := range []int{1, 4} {
		cfg := mk(par)
		cfg.Scenario = scenario.New(scenario.At(30*time.Second, scenario.LatencySpike(0)))
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if len(res.ScenarioErrors) != 1 {
			t.Errorf("parallelism %d: scenario errors = %v, want exactly the rejected spike", par, res.ScenarioErrors)
		}
	}
}
