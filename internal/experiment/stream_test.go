package experiment

import (
	"runtime"
	"testing"
	"time"

	"bitcoinng/internal/types"
)

// TestViewBitsetWordBoundaries exercises indices straddling 64-bit word
// edges: 63/64 and 127/128 must land in different words without cross-talk.
func TestViewBitsetWordBoundaries(t *testing.T) {
	w, err := NewStreamWorkload(21, 476, 8, 512)
	if err != nil {
		t.Fatal(err)
	}
	v := w.NewView()
	for _, i := range []int64{63, 64, 127, 128} {
		tx := w.Stream().Tx(i)
		v.RemoveConfirmed([]*types.Transaction{tx})
		if v.ConfirmedCount() == 0 {
			t.Fatalf("index %d did not confirm", i)
		}
	}
	if v.ConfirmedCount() != 4 {
		t.Fatalf("confirmed = %d, want 4", v.ConfirmedCount())
	}
	// Neighbors stay unconfirmed: prefix must still be 0.
	if p := v.ConfirmedPrefix(); p != 0 {
		t.Fatalf("prefix = %d, want 0", p)
	}
	// Confirm 0..62: prefix advances exactly to 65 (63 and 64 were set).
	var batch []*types.Transaction
	for i := int64(0); i < 63; i++ {
		batch = append(batch, w.Stream().Tx(i))
	}
	v.RemoveConfirmed(batch)
	if p := v.ConfirmedPrefix(); p != 65 {
		t.Fatalf("prefix = %d, want 65", p)
	}
}

// TestViewDoubleConfirmAndReinsertIdempotence: re-confirming is a no-op;
// double reinsert is a no-op; counts never drift.
func TestViewDoubleConfirmAndReinsertIdempotence(t *testing.T) {
	w, err := NewStreamWorkload(22, 476, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	v := w.NewView()
	tx := w.Stream().Tx(5)
	txs := []*types.Transaction{tx}
	v.RemoveConfirmed(txs)
	v.RemoveConfirmed(txs) // duplicate confirm
	if v.ConfirmedCount() != 1 {
		t.Fatalf("confirmed = %d after double confirm, want 1", v.ConfirmedCount())
	}
	v.Reinsert(txs)
	v.Reinsert(txs) // duplicate reinsert
	if v.ConfirmedCount() != 0 {
		t.Fatalf("confirmed = %d after double reinsert, want 0", v.ConfirmedCount())
	}
	// The transaction is offerable again exactly once.
	got := v.Select(1 << 20)
	seen := 0
	for _, x := range got {
		if x == tx {
			seen++
		}
	}
	if seen != 1 {
		t.Fatalf("reinserted tx offered %d times, want 1", seen)
	}
}

// TestViewCompactFloor: compaction drops whole words, treats dropped
// indices as confirmed, and ignores reinserts below the floor (best-effort
// lost, like a real mempool shedding).
func TestViewCompactFloor(t *testing.T) {
	w, err := NewStreamWorkload(23, 476, 8, 512)
	if err != nil {
		t.Fatal(err)
	}
	v := w.NewView()
	var batch []*types.Transaction
	for i := int64(0); i < 200; i++ {
		batch = append(batch, w.Stream().Tx(i))
	}
	v.RemoveConfirmed(batch)
	v.Compact(130) // word floor: 130/64 = word 2, indices < 128 dropped
	if len(v.confirmed) == 0 {
		t.Fatal("compaction dropped live words")
	}
	if p := v.ConfirmedPrefix(); p != 200 {
		t.Fatalf("prefix = %d after compact, want 200", p)
	}
	// Reinsert below the floor: silently lost.
	v.Reinsert([]*types.Transaction{w.Stream().Tx(5)})
	if v.ConfirmedCount() != 200 {
		t.Fatal("reinsert below the compaction floor must be a no-op")
	}
	// Reinsert above the floor still works.
	v.Reinsert([]*types.Transaction{w.Stream().Tx(150)})
	if v.ConfirmedCount() != 199 || v.ConfirmedPrefix() != 150 {
		t.Fatalf("reinsert above floor broken: count=%d prefix=%d", v.ConfirmedCount(), v.ConfirmedPrefix())
	}
	// Compact never regresses.
	v.Compact(0)
	if v.ConfirmedPrefix() != 150 {
		t.Fatal("zero-floor compact must not move state")
	}
}

// TestPacedRunDeterministicAcrossEngines is the tentpole's determinism
// gate in miniature: an open-loop streaming run must produce byte-identical
// load reports and backpressure series at parallelism 1 vs 4, and with the
// connect cache off.
func TestPacedRunDeterministicAcrossEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism check")
	}
	mk := func(parallelism int, cacheOff bool) *Result {
		cfg := DefaultConfig(BitcoinNG, 12, 4)
		cfg.Offered = 12
		cfg.BandwidthBPS = 1e6
		cfg.TargetBlocks = 1 << 30
		cfg.MaxSimTime = 10 * time.Minute
		cfg.Parallelism = parallelism
		cfg.DisableConnectCache = cacheOff
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := mk(1, false)
	for _, c := range []struct {
		name string
		res  *Result
	}{
		{"parallelism-4", mk(4, false)},
		{"cache-off", mk(1, true)},
	} {
		name, res := c.name, c.res
		if *res.Load != *base.Load {
			t.Errorf("%s: load report diverged:\n  base %+v\n  got  %+v", name, base.Load, res.Load)
		}
		if len(res.Backpressure) != len(base.Backpressure) {
			t.Fatalf("%s: backpressure series count diverged", name)
		}
		for i := range base.Backpressure {
			if res.Backpressure[i] != base.Backpressure[i] {
				t.Errorf("%s: backpressure %q diverged: %+v vs %+v",
					name, base.Backpressure[i].Name, base.Backpressure[i], res.Backpressure[i])
			}
		}
		if res.Report.TxFrequency != base.Report.TxFrequency {
			t.Errorf("%s: ledger throughput diverged", name)
		}
	}
}

// TestStreamingRunBoundedMemory is the acceptance soak: a run whose
// offered load would have pre-signed far beyond a sane RAM budget completes
// with the resident window bounded by the release floor.
func TestStreamingRunBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("memory soak")
	}
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	// The bounded lookahead admits only as fast as confirmations progress,
	// so reaching streaming scale needs service capacity above the offered
	// rate: 1 MB microblocks every 2s serialize ~1000 tx/s, comfortably
	// above the 400 tx/s offered here.
	cfg := DefaultConfig(BitcoinNG, 8, 6)
	cfg.Offered = 400 // 45m at 400 tx/s: ~1.0M txs, far beyond a pre-sign budget
	cfg.BandwidthBPS = 1e8
	cfg.Params.MicroblockInterval = 2 * time.Second
	cfg.Params.MaxBlockSize = 1_000_000
	cfg.TargetBlocks = 1 << 30
	cfg.MaxSimTime = 45 * time.Minute
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Load.Admitted < 1_000_000 {
		t.Fatalf("admitted only %d txs; soak did not reach streaming scale", res.Load.Admitted)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	// Pre-signing 1M 476-byte transactions held ~0.5 GB of payload plus
	// per-object overhead. The streaming run must stay well under that: the
	// resident window is the release slack (a few blockfuls), not the run.
	const budget = 300 << 20
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > budget {
		t.Fatalf("heap grew %d MB over the soak; streaming window is not bounded", grew>>20)
	}
	if res.Load.Confirmed == 0 {
		t.Fatal("soak confirmed nothing")
	}
}
