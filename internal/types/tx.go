// Package types defines the ledger data structures shared by every protocol
// in this repository: transactions over a UTXO model, Bitcoin proof-of-work
// blocks, and Bitcoin-NG key blocks and microblocks (§3, §4 of the paper).
//
// Types carry only intrinsic validation (well-formedness, signatures,
// proof-of-work checks against their own header). Contextual validation —
// double spends, fee splits, maturity — lives in internal/utxo and
// internal/chain.
package types

import (
	"errors"
	"fmt"
	"sync/atomic"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/wire"
)

// Amount is a currency quantity in base units (the analogue of satoshis).
type Amount int64

// MaxAmount bounds any single output value; it mirrors Bitcoin's 21M coin
// cap expressed in base units and protects the validator from overflow.
const MaxAmount Amount = 21_000_000 * 100_000_000

// TxKind discriminates the transaction variants.
type TxKind uint8

// Transaction kinds.
const (
	TxRegular  TxKind = iota // value transfer between addresses
	TxCoinbase               // block reward; first transaction of a PoW/key block
	TxPoison                 // Bitcoin-NG fraud proof (§4.5)
)

// String returns the kind name.
func (k TxKind) String() string {
	switch k {
	case TxRegular:
		return "regular"
	case TxCoinbase:
		return "coinbase"
	case TxPoison:
		return "poison"
	default:
		return fmt.Sprintf("txkind(%d)", uint8(k))
	}
}

// OutPoint names one output of a prior transaction.
type OutPoint struct {
	TxID  crypto.Hash
	Index uint32
}

// String renders the outpoint as txid:index.
func (o OutPoint) String() string {
	return fmt.Sprintf("%s:%d", o.TxID.Short(), o.Index)
}

// TxInput spends an existing output. PubKey must hash to the address the
// spent output pays, and Sig must be a valid signature of the transaction's
// SigHash under PubKey.
type TxInput struct {
	Prev   OutPoint
	PubKey crypto.PublicKey
	Sig    crypto.Signature
}

// TxOutput pays Value to an address.
type TxOutput struct {
	Value Amount
	To    crypto.Address
}

// PoisonEvidence is the fraud proof carried by a poison transaction: the
// header of the first microblock in the pruned branch, demonstrating that
// the accused leader signed two microblocks extending the same predecessor
// (§4.5). Culprit names the key block whose leader is being punished.
type PoisonEvidence struct {
	Culprit  crypto.Hash      // hash of the cheating leader's key block
	Pruned   MicroBlockHeader // signed header from the pruned branch
	Conflict crypto.Hash      // hash of the main-chain microblock with the same Prev
}

// Transaction is a ledger entry. The zero value is not valid; construct
// transactions with the builder functions or the wallet package.
type Transaction struct {
	Kind    TxKind
	Inputs  []TxInput
	Outputs []TxOutput

	// Height makes coinbase transactions at different heights distinct
	// (Bitcoin embeds the height in the coinbase script for the same
	// reason). Zero for other kinds.
	Height uint64

	// Evidence is set on poison transactions only.
	Evidence *PoisonEvidence

	// Padding inflates the serialized size so experiment workloads can use
	// identical-size artificial transactions (§7 "No Transaction
	// Propagation"); it carries no meaning.
	Padding []byte

	// Derived values are cached because simulated nodes share transaction
	// objects: hashing, size, signature checks, and input-address
	// derivation then cost once per network instead of once per node.
	// Transactions are immutable once signed; code that mutates a
	// transaction afterwards (tamper tests) must call Invalidate.
	//
	// The caches are atomic because the sharded event loop validates shared
	// objects from several shard goroutines at once: every cached value is a
	// pure function of the (immutable) transaction, so racing fills compute
	// the same value and either store wins.
	cachedID   atomic.Pointer[crypto.Hash]
	cachedSize atomic.Int32
	sigOK      atomic.Bool
	inputAddrs atomic.Pointer[[]crypto.Address]
}

// Invalidate drops every cached derived value. Call it after mutating a
// transaction that has already been hashed, sized, or signature-checked.
func (t *Transaction) Invalidate() {
	t.cachedID.Store(nil)
	t.cachedSize.Store(0)
	t.sigOK.Store(false)
	t.inputAddrs.Store(nil)
}

// Transaction shape limits.
const (
	MaxTxInputs  = 1 << 12
	MaxTxOutputs = 1 << 12
	MaxTxPadding = 1 << 16
)

// Validation errors.
var (
	ErrNoOutputs       = errors.New("types: transaction has no outputs")
	ErrBadValue        = errors.New("types: output value out of range")
	ErrCoinbaseInputs  = errors.New("types: coinbase must have no inputs")
	ErrMissingInputs   = errors.New("types: regular transaction needs inputs")
	ErrMissingEvidence = errors.New("types: poison transaction needs evidence")
	ErrStrayEvidence   = errors.New("types: non-poison transaction carries evidence")
)

// EncodeWire implements wire.Encoder.
func (t *Transaction) EncodeWire(w *wire.Writer) {
	w.Uint8(uint8(t.Kind))
	w.VarInt(uint64(len(t.Inputs)))
	for i := range t.Inputs {
		in := &t.Inputs[i]
		w.Bytes32(in.Prev.TxID)
		w.Uint32(in.Prev.Index)
		w.Raw(in.PubKey[:])
		w.Raw(in.Sig[:])
	}
	w.VarInt(uint64(len(t.Outputs)))
	for i := range t.Outputs {
		out := &t.Outputs[i]
		w.Int64(int64(out.Value))
		w.Bytes32(crypto.Hash(out.To))
	}
	w.Uint64(t.Height)
	if t.Evidence != nil {
		w.Bool(true)
		w.Bytes32(t.Evidence.Culprit)
		t.Evidence.Pruned.EncodeWire(w)
		w.Bytes32(t.Evidence.Conflict)
	} else {
		w.Bool(false)
	}
	w.VarBytes(t.Padding)
}

// DecodeWire implements wire.Decoder.
func (t *Transaction) DecodeWire(r *wire.Reader) {
	t.Kind = TxKind(r.Uint8())
	nIn := r.Length(MaxTxInputs)
	t.Inputs = make([]TxInput, nIn)
	for i := range t.Inputs {
		in := &t.Inputs[i]
		in.Prev.TxID = r.Bytes32()
		in.Prev.Index = r.Uint32()
		copy(in.PubKey[:], r.Raw(crypto.PublicKeySize))
		copy(in.Sig[:], r.Raw(crypto.SignatureSize))
	}
	nOut := r.Length(MaxTxOutputs)
	t.Outputs = make([]TxOutput, nOut)
	for i := range t.Outputs {
		out := &t.Outputs[i]
		out.Value = Amount(r.Int64())
		out.To = crypto.Address(r.Bytes32())
	}
	t.Height = r.Uint64()
	if r.Bool() {
		ev := &PoisonEvidence{}
		ev.Culprit = r.Bytes32()
		ev.Pruned.DecodeWire(r)
		ev.Conflict = r.Bytes32()
		t.Evidence = ev
	} else {
		t.Evidence = nil
	}
	t.Padding = r.VarBytes(MaxTxPadding)
	t.Invalidate()
}

// ID returns the transaction hash over its full serialization. The result
// is cached; see Invalidate.
func (t *Transaction) ID() crypto.Hash {
	if p := t.cachedID.Load(); p != nil {
		return *p
	}
	id := crypto.HashBytes(wire.Encode(t))
	t.cachedID.Store(&id)
	return id
}

// WireSize returns the serialized size in bytes; the network model charges
// this size when a transaction or its enclosing block crosses a link. The
// result is cached; see Invalidate.
func (t *Transaction) WireSize() int {
	if s := t.cachedSize.Load(); s != 0 {
		return int(s)
	}
	s := len(wire.Encode(t))
	t.cachedSize.Store(int32(s))
	return s
}

// InputAddr returns the address input i spends from (the hash of its public
// key), cached per transaction.
func (t *Transaction) InputAddr(i int) crypto.Address {
	if p := t.inputAddrs.Load(); p != nil {
		return (*p)[i]
	}
	addrs := make([]crypto.Address, len(t.Inputs))
	for j := range t.Inputs {
		addrs[j] = t.Inputs[j].PubKey.Addr()
	}
	t.inputAddrs.Store(&addrs)
	return addrs[i]
}

// SigHash returns the digest inputs sign: the transaction serialized with
// every input signature zeroed, so signatures cover everything else
// (including all other inputs and outputs). The copy is built field by field
// rather than by struct assignment so the atomic cache fields are not copied.
func (t *Transaction) SigHash() crypto.Hash {
	c := Transaction{
		Kind:     t.Kind,
		Inputs:   make([]TxInput, len(t.Inputs)),
		Outputs:  t.Outputs,
		Height:   t.Height,
		Evidence: t.Evidence,
		Padding:  t.Padding,
	}
	copy(c.Inputs, t.Inputs)
	for i := range c.Inputs {
		c.Inputs[i].Sig = crypto.Signature{}
	}
	return crypto.HashBytes(wire.Encode(&c))
}

// OutputSum returns the total of all output values.
func (t *Transaction) OutputSum() Amount {
	var sum Amount
	for i := range t.Outputs {
		sum += t.Outputs[i].Value
	}
	return sum
}

// CheckWellFormed performs context-free validation: shape constraints and
// input signature verification. It does not check whether inputs exist or
// are unspent (that needs the UTXO set).
func (t *Transaction) CheckWellFormed() error {
	if len(t.Outputs) == 0 {
		return ErrNoOutputs
	}
	for i := range t.Outputs {
		v := t.Outputs[i].Value
		if v < 0 || v > MaxAmount {
			return fmt.Errorf("%w: output %d value %d", ErrBadValue, i, v)
		}
	}
	switch t.Kind {
	case TxCoinbase:
		if len(t.Inputs) != 0 {
			return ErrCoinbaseInputs
		}
		if t.Evidence != nil {
			return ErrStrayEvidence
		}
	case TxPoison:
		if t.Evidence == nil {
			return ErrMissingEvidence
		}
	case TxRegular:
		if len(t.Inputs) == 0 {
			return ErrMissingInputs
		}
		if t.Evidence != nil {
			return ErrStrayEvidence
		}
	default:
		return fmt.Errorf("types: unknown transaction kind %d", t.Kind)
	}
	if t.Kind != TxCoinbase && t.Height != 0 {
		return fmt.Errorf("types: %s transaction carries height", t.Kind)
	}
	if len(t.Inputs) > 0 && !t.sigOK.Load() {
		sighash := t.SigHash()
		for i := range t.Inputs {
			in := &t.Inputs[i]
			if !in.PubKey.Verify(sighash[:], in.Sig) {
				return fmt.Errorf("types: input %d signature invalid", i)
			}
		}
		t.sigOK.Store(true)
	}
	return nil
}

// SignInput signs input i of the transaction with priv and stores the
// signature and public key in place. Call after all inputs and outputs are
// final: any later mutation invalidates the signature.
func (t *Transaction) SignInput(i int, priv *crypto.PrivateKey) {
	t.Invalidate()
	t.Inputs[i].PubKey = priv.Public()
	t.Inputs[i].Sig = crypto.Signature{}
	sighash := t.SigHash()
	t.Inputs[i].Sig = priv.Sign(sighash[:])
}

// TxIDs returns the hashes of the given transactions, in order; the Merkle
// root of a block is computed over this list.
func TxIDs(txs []*Transaction) []crypto.Hash {
	ids := make([]crypto.Hash, len(txs))
	for i, tx := range txs {
		ids[i] = tx.ID()
	}
	return ids
}
