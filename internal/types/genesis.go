package types

import (
	"bitcoinng/internal/crypto"
)

// GenesisSpec configures deterministic genesis construction. Every node in
// an experiment builds the identical genesis block from the same spec ("The
// first block, dubbed the genesis block, is defined as part of the
// protocol", §3).
type GenesisSpec struct {
	// TimeNanos is the genesis timestamp; simulation time starts here.
	TimeNanos int64
	// Target is the initial difficulty target.
	Target crypto.CompactTarget
	// Payouts pre-funds addresses so experiment workloads have outputs to
	// spend (the paper pre-loads the chain with artificial transactions,
	// §7 "No Transaction Propagation").
	Payouts []TxOutput
}

// GenesisBlock builds the canonical genesis block for the spec. It is a
// simulated-PoW block so it needs no mining; its coinbase mints the
// pre-funded outputs. Genesis is a PowBlock for every protocol — for
// Bitcoin-NG it acts as the zeroth key block with no microblock rights
// (no leader key), so the chain properly starts with a real key block.
func GenesisBlock(spec GenesisSpec) *PowBlock {
	coinbase := &Transaction{
		Kind:    TxCoinbase,
		Outputs: spec.Payouts,
		Height:  0,
	}
	if len(coinbase.Outputs) == 0 {
		// A coinbase must pay someone; burn to the zero address.
		coinbase.Outputs = []TxOutput{{Value: 0, To: crypto.Address{}}}
	}
	txs := []*Transaction{coinbase}
	return &PowBlock{
		Header: PowHeader{
			Prev:       crypto.ZeroHash,
			MerkleRoot: crypto.MerkleRoot(TxIDs(txs)),
			TimeNanos:  spec.TimeNanos,
			Target:     spec.Target,
			Nonce:      0,
		},
		Txs:          txs,
		SimulatedPoW: true,
	}
}
