package types

import (
	"testing"
	"testing/quick"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/wire"
)

// Decode/encode must be an identity on whatever random bytes happen to
// decode — the property that guarantees a block's hash is stable across a
// relay hop regardless of who serialized it.

func decodeEncodeIdentity(b []byte, d interface {
	wire.Decoder
	wire.Encoder
}) bool {
	if err := wire.Decode(b, d); err != nil {
		return true // rejection is fine; silent mutation is not
	}
	out := wire.Encode(d)
	if len(out) != len(b) {
		return false
	}
	for i := range out {
		if out[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPowBlockDecodeJunkProperty(t *testing.T) {
	f := func(b []byte) bool { return decodeEncodeIdentity(b, new(PowBlock)) }
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestKeyBlockDecodeJunkProperty(t *testing.T) {
	f := func(b []byte) bool { return decodeEncodeIdentity(b, new(KeyBlock)) }
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMicroBlockDecodeJunkProperty(t *testing.T) {
	f := func(b []byte) bool { return decodeEncodeIdentity(b, new(MicroBlock)) }
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// FuzzBlockWire is the native-fuzzer form of the identity property, across
// all three block kinds plus loose transactions from one input: whatever
// bytes decode must re-encode to the same bytes. Backed by a committed
// corpus; `make fuzz` runs a short campaign.
//
//	go test -fuzz=FuzzBlockWire -fuzztime=30s ./internal/types
func FuzzBlockWire(f *testing.F) {
	key := testKey(f, 3)
	mb := &MicroBlock{Header: MicroBlockHeader{TimeNanos: 9}}
	mb.Header.TxRoot = crypto.MerkleRoot(TxIDs(nil))
	mb.Header.Sign(key)
	f.Add(wire.Encode(mb))
	f.Add(wire.Encode(GenesisBlock(GenesisSpec{Target: crypto.EasiestTarget})))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if !decodeEncodeIdentity(raw, new(PowBlock)) {
			t.Fatal("PowBlock decode/encode not an identity")
		}
		if !decodeEncodeIdentity(raw, new(KeyBlock)) {
			t.Fatal("KeyBlock decode/encode not an identity")
		}
		if !decodeEncodeIdentity(raw, new(MicroBlock)) {
			t.Fatal("MicroBlock decode/encode not an identity")
		}
		if !decodeEncodeIdentity(raw, new(Transaction)) {
			t.Fatal("Transaction decode/encode not an identity")
		}
	})
}

// TestTruncationAlwaysRejected: every strict prefix of a valid block's
// serialization must fail to decode — no partial parse can be mistaken for
// a shorter valid block.
func TestTruncationAlwaysRejected(t *testing.T) {
	key := testKey(t, 77)
	tx := makeSignedTx(t, key, OutPoint{Index: 5}, 10, 5)
	mb := &MicroBlock{
		Header: MicroBlockHeader{TimeNanos: 9},
		Txs:    []*Transaction{tx},
	}
	mb.Header.TxRoot = crypto.MerkleRoot(TxIDs(mb.Txs))
	mb.Header.Sign(key)
	full := wire.Encode(mb)
	for cut := 0; cut < len(full); cut++ {
		var out MicroBlock
		if err := wire.Decode(full[:cut], &out); err == nil {
			t.Fatalf("prefix of length %d decoded successfully", cut)
		}
	}
}
